// Package reaper is the public API of this repository: a full reproduction
// of "The Reach Profiler (REAPER): Enabling the Mitigation of DRAM Retention
// Failures via Profiling at Aggressive Conditions" (Patel, Kim, Mutlu,
// ISCA 2017) as a Go library.
//
// The paper's experiments ran on 368 real LPDDR4 chips inside a thermal
// chamber; this library substitutes a behavioural DRAM device model
// calibrated to the paper's published statistics (see DESIGN.md), so every
// experiment — characterization, reach-condition tradeoffs, ECC budgeting,
// profile longevity, and end-to-end system evaluation — runs end to end on
// a laptop.
//
// # Quick start
//
//	st, _ := reaper.NewStation(reaper.ChipConfig{
//		CapacityBits: 1 << 30, // 1 Gbit test chip
//		Vendor:       reaper.VendorB(),
//		Seed:         42,
//	})
//	result, _ := reaper.Profile(st, 1.024, reaper.ReachConditions{DeltaInterval: 0.25},
//		reaper.Options{Iterations: 16, FreshRandomPerIteration: true})
//	truth := reaper.Truth(st, 1.024, 45)
//	fmt.Println(reaper.Coverage(result.Failures, truth))
//
// The subsystems are re-exported here by alias; their full documentation
// lives in the internal packages:
//
//   - internal/dram     — the LPDDR4 device retention model
//   - internal/thermal  — the PID-controlled thermal chamber
//   - internal/memctrl  — the SoftMC-style test station
//   - internal/patterns — retention-test data patterns
//   - internal/core     — brute-force and reach profiling + metrics
//   - internal/ecc      — UBER/RBER analysis and a SECDED(72,64) codec
//   - internal/longevity — the Equation 7 profile-longevity model
//   - internal/mitigate — ArchShield / RAIDR / row map-out / cell remap
//   - internal/perfmodel, internal/power, internal/workload,
//     internal/sysperf — the end-to-end evaluation substrate
package reaper

import (
	"context"
	"fmt"

	"reaper/internal/core"
	"reaper/internal/dram"
	"reaper/internal/ecc"
	"reaper/internal/longevity"
	"reaper/internal/memctrl"
	"reaper/internal/module"
	"reaper/internal/patterns"
	"reaper/internal/thermal"
)

// Re-exported types. The aliases make the internal implementations usable
// by downstream importers of this module.
type (
	// Device is the simulated LPDDR4 chip.
	Device = dram.Device
	// Geometry describes a chip's bank/row/word organization.
	Geometry = dram.Geometry
	// VendorParams calibrates a device's retention statistics.
	VendorParams = dram.VendorParams
	// Station is the SoftMC-style test station a profiler drives.
	Station = memctrl.Station
	// Chamber is the PID-controlled thermal chamber.
	Chamber = thermal.Chamber
	// Pattern is a retention-test data pattern.
	Pattern = patterns.Pattern
	// FailureSet is a set of failing cell addresses.
	FailureSet = core.FailureSet
	// Options configures a profiling run.
	Options = core.Options
	// Result is a profiling run's outcome.
	Result = core.Result
	// ReachConditions are the deltas above target conditions to profile at.
	ReachConditions = core.ReachConditions
	// TradeoffConfig and TradeoffPoint drive the Figure 9/10 exploration.
	TradeoffConfig = core.TradeoffConfig
	TradeoffPoint  = core.TradeoffPoint
	// ECCCode is a k-bit-correcting code for the UBER model.
	ECCCode = ecc.Code
	// LongevityModel evaluates Equation 7 (time before reprofiling).
	LongevityModel = longevity.Model
	// Module is a multi-chip DRAM module; it satisfies the same profiling
	// interface as Station, so Profile/BruteForce run on it unchanged.
	Module = module.Module
	// TestStation is the profiling-facing hardware interface implemented
	// by both Station and Module.
	TestStation = core.TestStation
)

// VendorA is calibrated vendor profile A (paper Equation 1, Section 5).
func VendorA() VendorParams { return dram.VendorA() }

// VendorB is calibrated vendor profile B, the paper's representative chip.
func VendorB() VendorParams { return dram.VendorB() }

// VendorC is calibrated vendor profile C, the most temperature-sensitive.
func VendorC() VendorParams { return dram.VendorC() }

// NoECC is the no-correction baseline (paper Table 1).
func NoECC() ECCCode { return ecc.NoECC() }

// SECDED is single-error-correct double-error-detect ECC (paper Table 1).
func SECDED() ECCCode { return ecc.SECDED() }

// ECC2 is two-error-correcting ECC (paper Table 1).
func ECC2() ECCCode { return ecc.ECC2() }

// Standard UBER targets (paper Section 6.2.2).
const (
	UBERConsumer   = ecc.UBERConsumer
	UBEREnterprise = ecc.UBEREnterprise
)

// RefTempC is the reference ambient temperature (45°C) of the paper's
// characterization.
const RefTempC = dram.RefTempC

// ChipConfig configures a simulated chip and its test station.
type ChipConfig struct {
	// CapacityBits sizes the chip; the geometry uses 8 banks and 2KB rows
	// (paper Table 2). Default: 64 Mbit (a fast test-scale chip).
	CapacityBits int64
	// Vendor selects the retention calibration; default VendorB (the
	// paper's representative chip vendor).
	Vendor VendorParams
	// Seed makes the chip (and every experiment on it) reproducible.
	Seed uint64
	// WeakScale amplifies weak-cell density for scaled-down chips so they
	// carry statistically meaningful failure populations. Default 20 for
	// sub-Gbit chips, 1 otherwise.
	WeakScale float64
	// WithThermalChamber couples the station to a simulated PID thermal
	// chamber (temperature changes then take realistic settle time and
	// carry sensor noise). Without it temperature changes are ideal and
	// instantaneous.
	WithThermalChamber bool
	// DisableVRT / DisableDPD build ablated devices for model studies.
	DisableVRT bool
	DisableDPD bool
}

// NewStation builds a simulated chip and the test station driving it.
func NewStation(cfg ChipConfig) (*Station, error) {
	if cfg.CapacityBits == 0 {
		cfg.CapacityBits = 64 << 20
	}
	if cfg.Vendor.Name == "" {
		cfg.Vendor = VendorB()
	}
	if cfg.WeakScale == 0 {
		if cfg.CapacityBits < 1<<30 {
			cfg.WeakScale = 20
		} else {
			cfg.WeakScale = 1
		}
	}
	dev, err := dram.NewDevice(dram.Config{
		Geometry:   dram.GeometryForBits(cfg.CapacityBits),
		Vendor:     cfg.Vendor,
		Seed:       cfg.Seed,
		WeakScale:  cfg.WeakScale,
		DisableVRT: cfg.DisableVRT,
		DisableDPD: cfg.DisableDPD,
	})
	if err != nil {
		return nil, err
	}
	var chamber *thermal.Chamber
	if cfg.WithThermalChamber {
		ccfg := thermal.DefaultChamberConfig()
		ccfg.Seed = cfg.Seed ^ 0xC4A3
		chamber, err = thermal.NewChamber(ccfg)
		if err != nil {
			return nil, err
		}
		if _, ok := chamber.SettleTo(RefTempC, 0.25, 7200); !ok {
			return nil, fmt.Errorf("reaper: thermal chamber failed to settle")
		}
	}
	return memctrl.NewStation(dev, chamber, memctrl.DefaultTiming())
}

// NewModule builds a multi-chip module of identically configured (but
// independently seeded) chips behind one controller and optional chamber.
func NewModule(chips int, cfg ChipConfig) (*Module, error) {
	if chips <= 0 {
		return nil, fmt.Errorf("reaper: module needs at least one chip")
	}
	if cfg.CapacityBits == 0 {
		cfg.CapacityBits = 64 << 20
	}
	if cfg.Vendor.Name == "" {
		cfg.Vendor = VendorB()
	}
	if cfg.WeakScale == 0 {
		if cfg.CapacityBits < 1<<30 {
			cfg.WeakScale = 20
		} else {
			cfg.WeakScale = 1
		}
	}
	devs := make([]*dram.Device, chips)
	for i := range devs {
		d, err := dram.NewDevice(dram.Config{
			Geometry:   dram.GeometryForBits(cfg.CapacityBits),
			Vendor:     cfg.Vendor,
			Seed:       cfg.Seed + uint64(i)*7919,
			WeakScale:  cfg.WeakScale,
			DisableVRT: cfg.DisableVRT,
			DisableDPD: cfg.DisableDPD,
		})
		if err != nil {
			return nil, err
		}
		devs[i] = d
	}
	var chamber *thermal.Chamber
	if cfg.WithThermalChamber {
		ccfg := thermal.DefaultChamberConfig()
		ccfg.Seed = cfg.Seed ^ 0xC4A3
		var err error
		chamber, err = thermal.NewChamber(ccfg)
		if err != nil {
			return nil, err
		}
		if _, ok := chamber.SettleTo(RefTempC, 0.25, 7200); !ok {
			return nil, fmt.Errorf("reaper: thermal chamber failed to settle")
		}
	}
	return module.New(devs, chamber, memctrl.DefaultTiming())
}

// BruteForce runs the paper's Algorithm 1 at the given refresh interval
// (seconds) — the baseline profiling mechanism. st may be a Station or a
// Module.
func BruteForce(st TestStation, tREFI float64, opt Options) (*Result, error) {
	return core.BruteForce(st, tREFI, opt)
}

// Profile runs reach profiling: Algorithm 1 executed at target conditions
// plus the reach deltas (longer interval and/or higher temperature), the
// paper's contribution. Zero deltas degenerate to BruteForce. st may be a
// Station or a Module.
func Profile(st TestStation, targetInterval float64, reach ReachConditions, opt Options) (*Result, error) {
	return core.Reach(st, targetInterval, reach, opt)
}

// Truth returns the simulator's ground-truth failing-cell set at the target
// conditions — the scoring reference only a model (not hardware) can provide.
func Truth(st *Station, targetInterval, targetTempC float64) *FailureSet {
	return core.Truth(st, targetInterval, targetTempC)
}

// Coverage is the fraction of true failures the profile found — the
// paper's primary profiling quality metric.
func Coverage(found, truth *FailureSet) float64 { return core.Coverage(found, truth) }

// FalsePositiveRate is the fraction of profiled cells that are not true
// failures at target conditions, the cost axis of the tradeoff figures.
func FalsePositiveRate(found, truth *FailureSet) float64 {
	return core.FalsePositiveRate(found, truth)
}

// ExploreTradeoffs sweeps a grid of reach conditions and measures coverage,
// false positive rate, and runtime at each (the paper's Figures 9 and 10).
// Cancelling ctx aborts the grid.
func ExploreTradeoffs(ctx context.Context, mkStation func() (*Station, error), cfg TradeoffConfig) ([]TradeoffPoint, error) {
	return core.ExploreTradeoffs(ctx, mkStation, cfg)
}

// StandardPatterns returns the six canonical retention-test patterns and
// their inverses (12 total).
func StandardPatterns(seed uint64) []Pattern { return patterns.StandardWithInverses(seed) }
