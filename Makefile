GO ?= go

.PHONY: all build vet test race check bench bench-go bench-parallel bench-fleet benchdiff fleet-quick soak-quick soak-resume-quick serve-quick lint lint-json lint-fixtures

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# race runs the full suite under the race detector. The determinism tests
# (internal/experiments, internal/module, internal/parallel) drive the
# worker pool at workers=8, so this exercises the parallel fleet paths.
# Race instrumentation slows the experiments suite well past go test's
# default 10m per-package timeout, hence the explicit -timeout.
race:
	$(GO) test -race -timeout 45m ./...

# soak-quick runs a short deterministic fault-injection soak (2 chips,
# 48 simulated hours, pinned seed) and fails if the resilience controller
# lets any chip's UBER exceed the budget (cmd/soak exits non-zero).
soak-quick:
	$(GO) run ./cmd/soak -quick -seed 1 -out /dev/null

# soak-resume-quick is the crash-safe-resume drill (DESIGN.md section 8):
# run the quick soak with checkpointing and stop at the first barrier
# (exit 4, resumable interrupt), resume it, and require the resumed report
# to be byte-identical to an uninterrupted run of the same seed.
RESUME_DIR := /tmp/reaper-resume-quick
soak-resume-quick:
	rm -rf $(RESUME_DIR) && mkdir -p $(RESUME_DIR)
	$(GO) build -o $(RESUME_DIR)/soak ./cmd/soak
	$(RESUME_DIR)/soak -quick -seed 1 -out $(RESUME_DIR)/ref.json
	$(RESUME_DIR)/soak -quick -seed 1 -checkpoint-dir $(RESUME_DIR)/ckpt \
		-checkpoint-every 8 -stop-after-checkpoints 1 -out /dev/null; \
		status=$$?; test $$status -eq 4 || \
		{ echo "soak-resume-quick: want exit 4 (resumable interrupt), got $$status"; exit 1; }
	$(RESUME_DIR)/soak -quick -seed 1 -checkpoint-dir $(RESUME_DIR)/ckpt \
		-checkpoint-every 8 -resume -out $(RESUME_DIR)/resumed.json
	cmp $(RESUME_DIR)/ref.json $(RESUME_DIR)/resumed.json
	@echo "soak-resume-quick: resumed report byte-identical to uninterrupted run"

# fleet-quick is the lazy-execution byte-identity gate: sweep one small
# population through the legacy, sharded, and dense executors at 1 and
# default workers and require every JSON report byte-identical
# (DESIGN.md section 10). Exits non-zero on any divergence.
fleet-quick:
	$(GO) run ./cmd/benchfleet -parity

# serve-quick is the profiling-service smoke test: cmd/reaperd -selftest
# starts the daemon on a loopback port, submits a small test program twice
# through the Go client, and requires both result documents byte-identical
# and structurally sound (API.md "Determinism contract"). Exits non-zero
# on any mismatch.
serve-quick:
	$(GO) run ./cmd/reaperd -selftest

# lint runs reaperlint, the repo's own determinism-and-safety analyzer suite
# (see DESIGN.md "Invariants"). Exits non-zero on any unsuppressed finding.
lint:
	$(GO) run ./cmd/reaperlint -md ./...

# lint-json runs the same suite and also writes the stable machine-readable
# report (sorted findings + fired suppressions) that CI uploads as an
# artifact. Override LINT_JSON to choose the output path.
LINT_JSON ?= reaperlint.json
lint-json:
	$(GO) run ./cmd/reaperlint -md -json $(LINT_JSON) ./...

# lint-fixtures runs the analyzer fixture tests only (fast; -short skips the
# whole-repo scan that `make lint` already performs). Runs under -race like
# the rest of `make check`: the fixture loader is shared across subtests.
lint-fixtures:
	$(GO) test -race -short ./internal/lint

check: build vet lint race fleet-quick soak-quick soak-resume-quick serve-quick

# bench regenerates BENCH_device.json: the device read-path microbenchmarks
# (ReadCompareAll / RestoreAll) at three weak-cell densities, with the
# pre-sparse-index seed numbers pinned alongside for comparison.
bench:
	$(GO) run ./cmd/benchdevice -out BENCH_device.json

# bench-go runs every go-test benchmark once (compile/behavior smoke, not a
# measurement).
bench-go:
	$(GO) test -bench . -benchtime 1x ./...

# bench-parallel regenerates BENCH_parallel.json: sequential vs parallel
# wall-clock for the population, tradeoff and banked-device sweeps plus
# device read-path microbenchmarks.
bench-parallel:
	$(GO) run ./cmd/benchparallel -out BENCH_parallel.json

# bench-fleet regenerates BENCH_fleet.json: dense bytes-per-chip resident
# plus lazy shard-sweep peak heap and chips/sec at 1k/100k/1M chips. The 1M
# row takes minutes; CI smokes the same path with -quick instead.
bench-fleet:
	$(GO) run ./cmd/benchfleet -out BENCH_fleet.json

# benchdiff measures fresh device and fleet baselines and compares them
# against the committed BENCH_device.json / BENCH_fleet.json, failing on
# >25% ns/op regressions in named micros — and, for the fleet rows, >25%
# bytes/op growth (peak heap or resident bytes per chip: the lazy-execution
# budget). Timing-sensitive: advisory on shared/loaded machines.
benchdiff:
	$(GO) run ./cmd/benchdevice -out /tmp/reaper-bench-fresh.json
	$(GO) run ./cmd/benchdiff -baseline BENCH_device.json -fresh /tmp/reaper-bench-fresh.json -max-regress 0.25
	$(GO) run ./cmd/benchfleet -quick -out /tmp/reaper-bench-fleet-fresh.json
	$(GO) run ./cmd/benchdiff -baseline BENCH_fleet.json -fresh /tmp/reaper-bench-fleet-fresh.json -max-regress 0.25 -max-bytes-regress 0.25
