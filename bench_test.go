// Benchmark harness: one testing.B per table and figure of the paper's
// evaluation. Each benchmark regenerates its experiment on the simulated
// substrate and reports the headline quantities via b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// reproduces the entire evaluation. EXPERIMENTS.md records paper-vs-measured
// for every entry. Benchmarks run reduced-scale configurations sized to
// finish in seconds; the cmd/ tools expose the full-scale versions.
package reaper

import (
	"context"
	"testing"

	"reaper/internal/core"
	"reaper/internal/dram"
	"reaper/internal/ecc"
	"reaper/internal/experiments"
	"reaper/internal/longevity"
	"reaper/internal/memctrl"
	"reaper/internal/mitigate"
	"reaper/internal/perfmodel"
	"reaper/internal/scrub"
)

// benchChip returns the scale-model chip benchmarks use.
func benchChip(seed uint64) experiments.ChipSpec {
	c := experiments.DefaultChipSpec(seed)
	c.Bits = 32 << 20
	c.WeakScale = 20
	return c
}

// BenchmarkFig2RetentionDistribution regenerates Figure 2: BER versus
// refresh interval with unique/repeat/non-repeat categorization across the
// three vendors.
func BenchmarkFig2RetentionDistribution(b *testing.B) {
	cfg := experiments.DefaultFig2Config()
	cfg.Iterations = 3
	cfg.Chip = func(v dram.VendorParams, seed uint64) experiments.ChipSpec {
		c := benchChip(seed)
		c.Vendor = v
		return c
	}
	var rows []experiments.Fig2Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Fig2RetentionDistribution(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	// Report vendor B's BER at 1024 ms (paper anchor ~1.43e-7).
	for _, r := range rows {
		if r.Vendor == "B" && r.IntervalS == 1.024 {
			b.ReportMetric(r.BER*1e9, "BER1024ms-e9")
		}
	}
}

// BenchmarkFig3VRTAccumulation regenerates Figure 3: continuous brute-force
// profiling at 2048 ms with VRT-driven steady-state failure accumulation.
func BenchmarkFig3VRTAccumulation(b *testing.B) {
	cfg := experiments.Fig3Config{
		Chip:          experiments.ChipSpec{Bits: 16 << 20, WeakScale: 100, Vendor: dram.VendorB(), Seed: 3},
		IntervalS:     2.048,
		Iterations:    80,
		TotalSimHours: 48,
	}
	var res *experiments.Fig3Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.Fig3VRTAccumulation(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.SteadyStateCellsPerHour, "newcells/hr")
	b.ReportMetric(res.PerIterationMean, "fails/iter")
}

// BenchmarkFig4AccumulationRates regenerates Figure 4: steady-state
// accumulation rate versus interval, power-law fit per vendor.
func BenchmarkFig4AccumulationRates(b *testing.B) {
	cfg := experiments.Fig4Config{
		Intervals:  []float64{2.048, 2.896, 4.096},
		Iterations: 30,
		SimHours:   36,
		Seed:       4,
		ChipBits:   8 << 20,
		WeakScale:  150,
	}
	var rows []experiments.Fig4Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Fig4AccumulationRates(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.Vendor == "B" {
			b.ReportMetric(r.Fit.B, "fit-exponent-B")
		}
	}
}

// BenchmarkFig5PatternCoverage regenerates Figure 5: per-data-pattern
// failure discovery coverage (the random pattern leads on LPDDR4).
func BenchmarkFig5PatternCoverage(b *testing.B) {
	cfg := experiments.Fig5Config{
		IntervalS:  2.048,
		Iterations: 32,
		Seed:       5,
		Vendors:    []dram.VendorParams{dram.VendorB()},
		ChipBits:   16 << 20,
		WeakScale:  30,
	}
	var rows []experiments.Fig5Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Fig5PatternCoverage(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.Pattern == "random" {
			b.ReportMetric(r.Coverage, "random-coverage")
		}
	}
	if !experiments.Fig5RandomWins(rows) {
		b.Fatal("random pattern did not win; Observation 3 violated")
	}
}

// BenchmarkFig6CellCDFs regenerates Figure 6: per-cell normal failure CDFs
// and the lognormal sigma population.
func BenchmarkFig6CellCDFs(b *testing.B) {
	cfg := experiments.DefaultFig6Config()
	cfg.Chip.Bits = 16 << 20
	cfg.Chip.WeakScale = 30
	cfg.SampleCells = 16
	var res *experiments.Fig6Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.Fig6CellCDFs(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.MedianKS, "median-KS")
	b.ReportMetric(res.FracSigmaBelow200ms, "sigma<200ms-frac")
}

// BenchmarkFig7TemperatureShift regenerates Figure 7: the (mu, sigma)
// distributions shifting left and narrowing with temperature.
func BenchmarkFig7TemperatureShift(b *testing.B) {
	chip := benchChip(7)
	var rows []experiments.Fig7Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Fig7TemperatureShift(chip, []float64{40, 45, 50, 55})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].MedianMuS/rows[len(rows)-1].MedianMuS, "mu-shrink-40to55C")
}

// BenchmarkFig8CombinedDistribution regenerates Figure 8: temperature and
// refresh interval as interchangeable reach knobs.
func BenchmarkFig8CombinedDistribution(b *testing.B) {
	chip := benchChip(8)
	var res *experiments.Fig8Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.Fig8CombinedDistribution(chip,
			[]float64{40, 45, 50, 55}, []float64{0.512, 1.024, 2.048, 4.096})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.EquivalentDeltaIntervalPer10C, "sec-per-10C")
}

// BenchmarkFig9ReachTradeoff regenerates Figure 9: coverage and false
// positive rate across the reach-condition grid.
func BenchmarkFig9ReachTradeoff(b *testing.B) {
	cfg := experiments.DefaultFig9Config()
	cfg.Chip = benchChip(9)
	cfg.DeltaIntervals = []float64{0, 0.128, 0.25, 0.5}
	cfg.DeltaTemps = []float64{0, 5}
	cfg.Iterations = 8
	cfg.MaxIterations = 32
	var h experiments.HeadlineResult
	for i := 0; i < b.N; i++ {
		points, err := experiments.Fig9Fig10Tradeoff(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		h, err = experiments.Headline(points)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(h.Coverage, "coverage@+250ms")
	b.ReportMetric(h.FalsePositiveRate, "FPR@+250ms")
}

// BenchmarkFig10RuntimeContours regenerates Figure 10: profiling runtime to
// the coverage goal, normalized to brute force, across reach conditions.
func BenchmarkFig10RuntimeContours(b *testing.B) {
	cfg := experiments.DefaultFig9Config()
	cfg.Chip = benchChip(10)
	cfg.DeltaIntervals = []float64{0, 0.25, 0.5, 1.0}
	cfg.DeltaTemps = []float64{0}
	cfg.Iterations = 8
	cfg.MaxIterations = 48
	var best float64
	var at250 float64
	for i := 0; i < b.N; i++ {
		points, err := experiments.Fig9Fig10Tradeoff(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		best = 0
		for _, p := range points {
			if s := p.Speedup(); s > best {
				best = s
			}
			if p.Reach.DeltaInterval == 0.25 && p.Reach.DeltaTempC == 0 {
				at250 = p.Speedup()
			}
		}
	}
	b.ReportMetric(at250, "speedup@+250ms")
	b.ReportMetric(best, "speedup-best")
}

// BenchmarkHeadlineReachSpeedup measures the paper's Section 6.1.2 headline
// claim in isolation: reach profiling at +250 ms versus brute force.
func BenchmarkHeadlineReachSpeedup(b *testing.B) {
	cfg := experiments.DefaultFig9Config()
	cfg.Chip = benchChip(11)
	cfg.DeltaIntervals = []float64{0, 0.25}
	cfg.DeltaTemps = []float64{0}
	cfg.Iterations = 16
	cfg.MaxIterations = 48
	var h experiments.HeadlineResult
	for i := 0; i < b.N; i++ {
		points, err := experiments.Fig9Fig10Tradeoff(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		h, err = experiments.Headline(points)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(h.Coverage, "coverage")
	b.ReportMetric(h.FalsePositiveRate, "FPR")
	b.ReportMetric(h.Speedup, "speedup-x")
}

// BenchmarkTable1TolerableRBER regenerates Table 1: tolerable RBER and bit
// error budgets per ECC strength.
func BenchmarkTable1TolerableRBER(b *testing.B) {
	var rows []experiments.Table1Row
	for i := 0; i < b.N; i++ {
		rows = experiments.Table1TolerableRBER(ecc.UBERConsumer)
	}
	b.ReportMetric(rows[1].TolerableRBER*1e9, "SECDED-RBER-e9")
	b.ReportMetric(rows[1].TolerableErrors[2], "SECDED-errors@2GB")
}

// BenchmarkLongevityExample reproduces the Section 6.2.3 worked example:
// 2GB + SECDED + 1024 ms @ 45°C + 99% coverage => ~2.3 days with the
// paper's Table 1 budget.
func BenchmarkLongevityExample(b *testing.B) {
	m := longevity.Model{
		Code:       ecc.SECDED(),
		TargetUBER: ecc.UBERConsumer,
		Bytes:      2 << 30,
		Vendor:     dram.VendorB(),
		TempC:      45,
	}
	var days float64
	for i := 0; i < b.N; i++ {
		d, err := m.LongevityWithBudget(1.024, 0.99, 65)
		if err != nil {
			b.Fatal(err)
		}
		days = d.Hours() / 24
	}
	b.ReportMetric(days, "days")
}

// BenchmarkEq9ProfilingRuntime reproduces the Section 7.3.1 runtime
// examples: ~3.01 minutes for 32x8Gb and ~19.8 minutes for 32x64Gb.
func BenchmarkEq9ProfilingRuntime(b *testing.B) {
	c8 := perfmodel.RoundConfig{
		TREFI: 1.024, NumPatterns: 6, NumIterations: 6,
		TotalBytes: 32 * (8 << 30) / 8,
	}
	c64 := c8
	c64.TotalBytes = 32 * (64 << 30) / 8
	var m8, m64 float64
	for i := 0; i < b.N; i++ {
		m8 = c8.RoundSeconds() / 60
		m64 = c64.RoundSeconds() / 60
	}
	b.ReportMetric(m8, "min-8Gb")
	b.ReportMetric(m64, "min-64Gb")
}

// BenchmarkFig11ProfilingTimeFraction regenerates Figure 11: fraction of
// system time spent profiling across profiling intervals and chip sizes.
func BenchmarkFig11ProfilingTimeFraction(b *testing.B) {
	cfg := experiments.DefaultFig11Config()
	var rows []experiments.Fig11Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Fig11Fig12ProfilingOverhead(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.ChipGb == 64 && r.IntervalHours == 4 {
			b.ReportMetric(r.BruteFraction, "brute@64Gb-4h")
			b.ReportMetric(r.ReaperFrac, "reaper@64Gb-4h")
		}
	}
}

// BenchmarkFig12ProfilingPower regenerates Figure 12: average DRAM power of
// the profiling traffic itself.
func BenchmarkFig12ProfilingPower(b *testing.B) {
	cfg := experiments.DefaultFig11Config()
	var rows []experiments.Fig11Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Fig11Fig12ProfilingOverhead(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.ChipGb == 64 && r.IntervalHours == 4 {
			b.ReportMetric(r.BruteProfilingW, "brute-W@64Gb-4h")
			b.ReportMetric(r.ReaperProfilingW, "reaper-W@64Gb-4h")
		}
	}
}

// BenchmarkUBERIndependenceValidation checks the Equation-5 independence
// assumption empirically: predicted vs measured multi-bit word failure
// rates agree, so Table 1's arithmetic transfers to the device model.
func BenchmarkUBERIndependenceValidation(b *testing.B) {
	cfg := experiments.DefaultUBERValidationConfig()
	cfg.Rounds = 200
	var res *experiments.UBERValidationResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.UBERValidation(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Ratio, "measured/predicted")
	b.ReportMetric(float64(res.WordsTested), "words")
}

// BenchmarkPopulationAverages aggregates the headline reach-profiling
// metrics over a fleet of chips per vendor, mirroring the paper's
// 368-chip population claims (every chip shows the same trends).
func BenchmarkPopulationAverages(b *testing.B) {
	cfg := experiments.DefaultPopulationConfig()
	var results []experiments.PopulationResult
	for i := 0; i < b.N; i++ {
		var err error
		results, err = experiments.PopulationSweep(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range results {
		if !r.AllChipsAgree {
			b.Fatalf("vendor %s fleet diverged from the paper's trend", r.Vendor)
		}
		if r.Vendor == "B" {
			b.ReportMetric(r.CoverageMean, "covB")
			b.ReportMetric(r.FPRMean, "fprB")
		}
	}
}

// BenchmarkAblationVRT isolates VRT's causal role (DESIGN.md section 5):
// with VRT disabled, post-discovery failure accumulation collapses and
// offline profiling would suffice.
func BenchmarkAblationVRT(b *testing.B) {
	chip := experiments.ChipSpec{Bits: 16 << 20, WeakScale: 100, Vendor: dram.VendorB(), Seed: 101}
	var res *experiments.VRTAblationResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.AblationVRT(context.Background(), chip, 2.048, 50, 30)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.NewCellsPerHourWithVRT, "with-VRT/hr")
	b.ReportMetric(res.NewCellsPerHourWithoutVRT, "no-VRT/hr")
}

// BenchmarkAblationDPD isolates DPD's causal role: without it a single
// pattern pair reaches full coverage; with it multiple patterns are
// mandatory (Corollary 3).
func BenchmarkAblationDPD(b *testing.B) {
	chip := experiments.ChipSpec{Bits: 16 << 20, WeakScale: 30, Vendor: dram.VendorB(), Seed: 102}
	var res *experiments.DPDAblationResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.AblationDPD(context.Background(), chip, 1.024, 8)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.SinglePatternCoverageWithDPD, "cov-with-DPD")
	b.ReportMetric(res.SinglePatternCoverageWithoutDPD, "cov-no-DPD")
}

// BenchmarkAblationReachKnobs verifies Section 5.5's interchangeability of
// the two reach knobs: +0.5 s of interval, +5°C of temperature, and the
// half-and-half combination land at comparable coverage.
func BenchmarkAblationReachKnobs(b *testing.B) {
	chip := experiments.ChipSpec{Bits: 16 << 20, WeakScale: 30, Vendor: dram.VendorB(), Seed: 103}
	var res *experiments.KnobAblationResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.AblationReachKnobs(context.Background(), chip, 1.024, 0.5, 5, 8)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.IntervalOnly.Coverage, "cov-interval")
	b.ReportMetric(res.TempOnly.Coverage, "cov-temp")
	b.ReportMetric(res.Combined.Coverage, "cov-combined")
}

// BenchmarkPassiveVsActiveProfiling contrasts AVATAR-style ECC scrubbing
// (passive, Section 3.2) against one active reach profile on an identical
// chip: the scrubber only sees failures under resident data, the active
// profiler tests worst-case patterns deliberately.
func BenchmarkPassiveVsActiveProfiling(b *testing.B) {
	var passive, active float64
	for i := 0; i < b.N; i++ {
		dev, err := dram.NewDevice(dram.Config{
			Geometry:  dram.Geometry{Banks: 8, RowsPerBank: 64, WordsPerRow: 256},
			Vendor:    dram.VendorB(),
			Seed:      505,
			WeakScale: 20,
		})
		if err != nil {
			b.Fatal(err)
		}
		st, err := memctrl.NewStation(dev, nil, memctrl.DefaultTiming())
		if err != nil {
			b.Fatal(err)
		}
		truth := core.Truth(st, 2.048, 45)
		geom := st.Device().Geometry()
		mem, err := scrub.NewECCMemory(st)
		if err != nil {
			b.Fatal(err)
		}
		scr, err := scrub.NewScrubber(mem)
		if err != nil {
			b.Fatal(err)
		}
		// Benign resident data: each truth cell's word stores the cell's
		// discharged value.
		chargedOf := map[uint64]uint8{}
		for _, c := range st.Device().Cells(st.Clock()) {
			chargedOf[c.Bit] = c.ChargedVal
		}
		for _, bit := range truth.Sorted() {
			a := geom.AddrOf(bit)
			val := uint64(0)
			if chargedOf[bit] == 0 {
				val = ^uint64(0)
			}
			if err := mem.Write(mitigate.WordAddr{Bank: a.Bank, Row: a.Row, Word: a.Word}, val); err != nil {
				b.Fatal(err)
			}
		}
		st.SetRefreshInterval(2.048)
		for h := 0; h < 24; h++ {
			st.Wait(3600)
			if _, err := scr.Scrub(); err != nil {
				b.Fatal(err)
			}
		}
		passive = scr.WordCoverage(truth, st)

		st2, err := memctrl.NewStation(mustDevice(b, 505), nil, memctrl.DefaultTiming())
		if err != nil {
			b.Fatal(err)
		}
		prof, err := core.Reach(st2, 2.048, core.ReachConditions{DeltaInterval: 0.25},
			core.Options{Iterations: 16, FreshRandomPerIteration: true})
		if err != nil {
			b.Fatal(err)
		}
		active = core.Coverage(prof.Failures, core.Truth(st2, 2.048, 45))
	}
	b.ReportMetric(passive, "passive-coverage")
	b.ReportMetric(active, "active-coverage")
}

func mustDevice(b *testing.B, seed uint64) *dram.Device {
	dev, err := dram.NewDevice(dram.Config{
		Geometry:  dram.Geometry{Banks: 8, RowsPerBank: 64, WordsPerRow: 256},
		Vendor:    dram.VendorB(),
		Seed:      seed,
		WeakScale: 20,
	})
	if err != nil {
		b.Fatal(err)
	}
	return dev
}

// BenchmarkClassificationFallacy quantifies the paper's Section 5.5 claim
// that cells cannot be classified weak/strong: cells labelled strong by a
// finite observation window keep failing later.
func BenchmarkClassificationFallacy(b *testing.B) {
	cfg := experiments.DefaultClassificationConfig()
	cfg.ObserveIterations = 16
	cfg.ObserveHours = 8
	var res *experiments.ClassificationResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.ClassificationFallacy(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.LateFailures), "late-failures")
	b.ReportMetric(res.LateFailureRatio, "late/weak-ratio")
}

// BenchmarkFig13EndToEnd regenerates Figure 13: end-to-end performance and
// DRAM power across refresh intervals for brute force, REAPER, and ideal
// profiling on the trace-driven system simulator.
func BenchmarkFig13EndToEnd(b *testing.B) {
	cfg := experiments.DefaultFig13Config()
	cfg.ChipGbs = []int{64}
	cfg.Mixes = 8
	cfg.InstructionsPerCore = 400_000
	var cells []experiments.Fig13Cell
	for i := 0; i < b.N; i++ {
		var err error
		cells, err = experiments.Fig13EndToEnd(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	if c, ok := experiments.FindCell(cells, 64, 1.024, "reaper"); ok {
		b.ReportMetric(c.PerfGain.Mean*100, "reaper@1024ms-%")
	}
	if c, ok := experiments.FindCell(cells, 64, 1.024, "brute"); ok {
		b.ReportMetric(c.PerfGain.Mean*100, "brute@1024ms-%")
	}
	if c, ok := experiments.FindCell(cells, 64, 1.280, "brute"); ok {
		b.ReportMetric(c.PerfGain.Mean*100, "brute@1280ms-%")
	}
	if c, ok := experiments.FindCell(cells, 64, 0, "ideal"); ok {
		b.ReportMetric(c.PerfGain.Mean*100, "noref-%")
		b.ReportMetric(c.PowerReduction.Mean*100, "noref-power-%")
	}
}
