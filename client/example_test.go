package client_test

import (
	"context"
	"fmt"
	"net/http/httptest"
	"time"

	"reaper/client"
	"reaper/internal/reaperd"
)

// ExampleClient_Submit submits a small device program to an in-process
// reaperd, waits for it, and reads the result — the submit→poll→result
// loop every service consumer runs.
func ExampleClient_Submit() {
	// Production deployments run cmd/reaperd and point New at its -addr;
	// the example hosts the same server in-process.
	srv := reaperd.New(reaperd.Config{JobWorkers: 2})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- srv.Serve(ctx) }()
	defer func() { cancel(); <-served }()

	c := client.New(ts.URL)
	st, err := c.Submit(ctx, []byte(`{
	  "version": 1,
	  "name": "example",
	  "seed": 42,
	  "fleet": {"bits": 1048576, "weak_scale": 40},
	  "stages": [
	    {"type": "write_pattern", "pattern": "checker"},
	    {"type": "disable_refresh"},
	    {"type": "wait", "seconds": 2},
	    {"type": "enable_refresh"},
	    {"type": "read_compare"}
	  ],
	  "output": {}
	}`))
	if err != nil {
		fmt.Println("submit failed:", err)
		return
	}
	fin, err := c.Wait(ctx, st.ID, time.Millisecond)
	if err != nil {
		fmt.Println("wait failed:", err)
		return
	}
	res, err := c.Result(ctx, fin.ID)
	if err != nil {
		fmt.Println("result failed:", err)
		return
	}
	fmt.Println("state:", fin.State)
	fmt.Println("kind:", res.Kind)
	fmt.Println("chips:", len(res.Chips))
	fmt.Println("stages:", len(res.Chips[0].Stages))
	// Output:
	// state: done
	// kind: device
	// chips: 1
	// stages: 5
}
