package client_test

import (
	"bytes"
	"context"
	"errors"
	"net/http/httptest"
	"testing"
	"time"

	"reaper/client"
	"reaper/internal/reaperd"
)

const program = `{
  "version": 1,
  "name": "client-smoke",
  "seed": 7,
  "fleet": {"bits": 1048576, "weak_scale": 40},
  "stages": [
    {"type": "write_pattern", "pattern": "checker"},
    {"type": "disable_refresh"},
    {"type": "wait", "seconds": 2},
    {"type": "enable_refresh"},
    {"type": "read_compare"}
  ],
  "output": {"failing_bits": 4}
}`

// startService runs a full server (HTTP + scheduler) for the test.
func startService(t *testing.T) *client.Client {
	t.Helper()
	s := reaperd.New(reaperd.Config{JobWorkers: 2})
	ts := httptest.NewServer(s.Handler())
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- s.Serve(ctx) }()
	t.Cleanup(func() {
		cancel()
		<-served
		ts.Close()
	})
	return client.New(ts.URL).WithHTTPClient(ts.Client())
}

// TestRoundTrip drives submit → wait → result → events → list end to end
// and checks byte-identical results for a resubmission.
func TestRoundTrip(t *testing.T) {
	c := startService(t)
	ctx := context.Background()

	st, err := c.Submit(ctx, []byte(program))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if st.State != reaperd.StateQueued || st.Name != "client-smoke" {
		t.Fatalf("queued status: %+v", st)
	}
	fin, err := c.Wait(ctx, st.ID, time.Millisecond)
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if fin.State != reaperd.StateDone {
		t.Fatalf("state %s (error %q)", fin.State, fin.Error)
	}
	res, err := c.Result(ctx, st.ID)
	if err != nil {
		t.Fatalf("Result: %v", err)
	}
	if res.Kind != "device" || len(res.Chips) != 1 {
		t.Fatalf("result: %+v", res)
	}
	first, err := c.ResultBytes(ctx, st.ID)
	if err != nil {
		t.Fatalf("ResultBytes: %v", err)
	}

	res2, err := c.Run(ctx, []byte(program), time.Millisecond)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res2.Seed != res.Seed {
		t.Fatalf("second run seed %d != %d", res2.Seed, res.Seed)
	}
	list, err := c.List(ctx)
	if err != nil {
		t.Fatalf("List: %v", err)
	}
	if len(list) != 2 {
		t.Fatalf("list length %d, want 2", len(list))
	}
	second, err := c.ResultBytes(ctx, list[1].ID)
	if err != nil {
		t.Fatalf("ResultBytes(second): %v", err)
	}
	if !bytes.Equal(first, second) {
		t.Fatalf("resubmission result differs")
	}

	events, err := c.Events(ctx, st.ID)
	if err != nil {
		t.Fatalf("Events: %v", err)
	}
	if len(events) == 0 || events[0].Kind != "accepted" {
		t.Fatalf("events: %+v", events)
	}
}

// TestAPIErrors checks the error envelope surfaces as *APIError.
func TestAPIErrors(t *testing.T) {
	c := startService(t)
	ctx := context.Background()

	_, err := c.Submit(ctx, []byte(`{"version":1,"seed":1,"stages":[{"type":"warp_drive"}]}`))
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != 400 {
		t.Fatalf("invalid submit: %v", err)
	}
	if _, err := c.Status(ctx, "p999999"); !errors.As(err, &apiErr) || apiErr.StatusCode != 404 {
		t.Fatalf("unknown status: %v", err)
	}
	if _, err := c.ResultBytes(ctx, "p999999"); !errors.As(err, &apiErr) || apiErr.StatusCode != 404 {
		t.Fatalf("unknown result: %v", err)
	}
}

// TestWaitHonorsContext checks Wait returns promptly on cancellation.
func TestWaitHonorsContext(t *testing.T) {
	s := reaperd.New(reaperd.Config{}) // scheduler not running: program stays queued
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	c := client.New(ts.URL).WithHTTPClient(ts.Client())

	st, err := c.Submit(context.Background(), []byte(program))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.Wait(ctx, st.ID, time.Millisecond); !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait on cancelled ctx: %v", err)
	}
}
