// Package client is the Go client for the reaperd profiling service
// (internal/reaperd, cmd/reaperd): submit declarative test programs, poll
// their status, and fetch results over the HTTP/JSON API documented in
// API.md.
//
// The client is a thin, dependency-free wrapper over net/http. It adds no
// randomness and no retries of its own, so the service's determinism
// contract passes through untouched: submitting the same program bytes
// twice yields byte-identical result documents.
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"reaper/internal/reaperd"
	"reaper/internal/telemetry"
	"reaper/internal/testprog"
)

// Client talks to one reaperd server. The zero value is not usable;
// construct with New.
type Client struct {
	base string
	http *http.Client
}

// New returns a client for the server at baseURL (e.g.
// "http://127.0.0.1:8377"). The URL must not include the /v1 prefix.
func New(baseURL string) *Client {
	return &Client{base: strings.TrimRight(baseURL, "/"), http: http.DefaultClient}
}

// WithHTTPClient swaps the underlying *http.Client (custom transports,
// timeouts, httptest clients) and returns c for chaining.
func (c *Client) WithHTTPClient(h *http.Client) *Client {
	c.http = h
	return c
}

// APIError is a non-2xx response from the server, carrying the decoded
// {"error": ...} envelope.
type APIError struct {
	// StatusCode is the HTTP status the server answered with.
	StatusCode int
	// Message is the server's error description.
	Message string
}

// Error renders the status code and server message.
func (e *APIError) Error() string {
	return fmt.Sprintf("reaperd: %d: %s", e.StatusCode, e.Message)
}

// do issues one request and returns the response body, translating non-2xx
// responses into *APIError.
func (c *Client) do(ctx context.Context, method, path string, body []byte) ([]byte, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return nil, fmt.Errorf("client: build %s %s: %w", method, path, err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, fmt.Errorf("client: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("client: read %s %s: %w", method, path, err)
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		var er reaperd.ErrorResponse
		if json.Unmarshal(out, &er) == nil && er.Error != "" {
			return nil, &APIError{StatusCode: resp.StatusCode, Message: er.Error}
		}
		return nil, &APIError{StatusCode: resp.StatusCode, Message: strings.TrimSpace(string(out))}
	}
	return out, nil
}

// decode unmarshals a JSON body into v.
func decode[T any](body []byte) (T, error) {
	var v T
	if err := json.Unmarshal(body, &v); err != nil {
		return v, fmt.Errorf("client: decode response: %w", err)
	}
	return v, nil
}

// Submit posts a test-program document (raw JSON, see API.md for the
// schema) and returns its queued Status. The server validates strictly;
// rejected programs surface as an *APIError with status 400.
func (c *Client) Submit(ctx context.Context, program []byte) (reaperd.Status, error) {
	body, err := c.do(ctx, http.MethodPost, "/v1/programs", program)
	if err != nil {
		return reaperd.Status{}, err
	}
	return decode[reaperd.Status](body)
}

// Status fetches one program's current Status.
func (c *Client) Status(ctx context.Context, id string) (reaperd.Status, error) {
	body, err := c.do(ctx, http.MethodGet, "/v1/programs/"+id, nil)
	if err != nil {
		return reaperd.Status{}, err
	}
	return decode[reaperd.Status](body)
}

// List fetches every submitted program in submission order.
func (c *Client) List(ctx context.Context) ([]reaperd.Status, error) {
	body, err := c.do(ctx, http.MethodGet, "/v1/programs", nil)
	if err != nil {
		return nil, err
	}
	list, err := decode[reaperd.ProgramList](body)
	if err != nil {
		return nil, err
	}
	return list.Programs, nil
}

// ResultBytes fetches a done program's raw result document — the exact
// bytes the determinism contract speaks about.
func (c *Client) ResultBytes(ctx context.Context, id string) ([]byte, error) {
	return c.do(ctx, http.MethodGet, "/v1/programs/"+id+"/result", nil)
}

// Result fetches and decodes a done program's result document.
func (c *Client) Result(ctx context.Context, id string) (*testprog.Result, error) {
	body, err := c.ResultBytes(ctx, id)
	if err != nil {
		return nil, err
	}
	res, err := decode[*testprog.Result](body)
	if err != nil {
		return nil, err
	}
	return res, nil
}

// Cancel requests cancellation and returns the resulting Status. Cancel is
// idempotent; cancelling a finished program leaves it untouched.
func (c *Client) Cancel(ctx context.Context, id string) (reaperd.Status, error) {
	body, err := c.do(ctx, http.MethodPost, "/v1/programs/"+id+"/cancel", nil)
	if err != nil {
		return reaperd.Status{}, err
	}
	return decode[reaperd.Status](body)
}

// Events fetches the program's progress events (JSONL on the wire). The
// stream is live observability: accepted/started/finished markers plus one
// progress event per completed unit.
func (c *Client) Events(ctx context.Context, id string) ([]telemetry.Event, error) {
	body, err := c.do(ctx, http.MethodGet, "/v1/programs/"+id+"/events", nil)
	if err != nil {
		return nil, err
	}
	var events []telemetry.Event
	sc := bufio.NewScanner(bytes.NewReader(body))
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var ev telemetry.Event
		if err := json.Unmarshal(line, &ev); err != nil {
			return nil, fmt.Errorf("client: decode event %q: %w", line, err)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("client: scan events: %w", err)
	}
	return events, nil
}

// Wait polls the program's status every poll interval (<= 0 means 50ms)
// until it reaches a terminal state (done, failed, cancelled) or ctx is
// cancelled. It returns the terminal Status; reaching "failed" or
// "cancelled" is not an error — inspect Status.State.
func (c *Client) Wait(ctx context.Context, id string, poll time.Duration) (reaperd.Status, error) {
	if poll <= 0 {
		poll = 50 * time.Millisecond
	}
	for {
		st, err := c.Status(ctx, id)
		if err != nil {
			return reaperd.Status{}, err
		}
		switch st.State {
		case reaperd.StateDone, reaperd.StateFailed, reaperd.StateCancelled:
			return st, nil
		}
		select {
		case <-ctx.Done():
			return st, ctx.Err()
		case <-time.After(poll):
		}
	}
}

// Run is the submit→wait→result round trip: it submits the program, waits
// for a terminal state, and returns the decoded result. A failed or
// cancelled program returns an error quoting its state.
func (c *Client) Run(ctx context.Context, program []byte, poll time.Duration) (*testprog.Result, error) {
	st, err := c.Submit(ctx, program)
	if err != nil {
		return nil, err
	}
	fin, err := c.Wait(ctx, st.ID, poll)
	if err != nil {
		return nil, err
	}
	if fin.State != reaperd.StateDone {
		return nil, fmt.Errorf("client: program %s finished %s: %s", fin.ID, fin.State, fin.Error)
	}
	return c.Result(ctx, fin.ID)
}
