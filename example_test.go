package reaper_test

import (
	"fmt"

	"reaper"
)

// ExampleProfile shows the core REAPER flow: build a simulated chip,
// reach-profile it above the target conditions, and score the result
// against the simulator's ground truth.
func ExampleProfile() {
	st, err := reaper.NewStation(reaper.ChipConfig{
		CapacityBits: 64 << 20,
		Vendor:       reaper.VendorB(),
		Seed:         7,
	})
	if err != nil {
		panic(err)
	}
	const target = 1.024 // seconds
	res, err := reaper.Profile(st, target,
		reaper.ReachConditions{DeltaInterval: 0.25},
		reaper.Options{Iterations: 8, FreshRandomPerIteration: true})
	if err != nil {
		panic(err)
	}
	truth := reaper.Truth(st, target, reaper.RefTempC)
	fmt.Printf("coverage >= 0.90: %v\n", reaper.Coverage(res.Failures, truth) >= 0.90)
	fmt.Printf("false positives exist: %v\n", reaper.FalsePositiveRate(res.Failures, truth) > 0)
	// Output:
	// coverage >= 0.90: true
	// false positives exist: true
}

// ExampleECCCode shows the Table 1 arithmetic: how many failing cells an
// ECC strength tolerates at a target reliability.
func ExampleECCCode() {
	secded := reaper.SECDED()
	errors := secded.TolerableBitErrors(reaper.UBERConsumer, 2<<30)
	fmt.Printf("SECDED at 2GB tolerates tens of failing cells: %v\n", errors > 40 && errors < 130)
	// Output:
	// SECDED at 2GB tolerates tens of failing cells: true
}

// ExampleBruteForce contrasts the Algorithm 1 baseline with reach
// profiling on identically seeded chips.
func ExampleBruteForce() {
	mk := func() *reaper.Station {
		st, err := reaper.NewStation(reaper.ChipConfig{CapacityBits: 64 << 20, Seed: 11})
		if err != nil {
			panic(err)
		}
		return st
	}
	opt := reaper.Options{Iterations: 8, FreshRandomPerIteration: true}
	const target = 1.024

	stA := mk()
	truth := reaper.Truth(stA, target, reaper.RefTempC)
	brute, _ := reaper.BruteForce(stA, target, opt)

	stB := mk()
	rp, _ := reaper.Profile(stB, target, reaper.ReachConditions{DeltaInterval: 0.25}, opt)

	fmt.Printf("reach finds more of the truth: %v\n",
		reaper.Coverage(rp.Failures, truth) > reaper.Coverage(brute.Failures, truth))
	// Output:
	// reach finds more of the truth: true
}
