package reaper

import (
	"context"
	"testing"
)

func TestNewStationDefaults(t *testing.T) {
	st, err := NewStation(ChipConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if st.Device().Geometry().TotalBits() < 64<<20 {
		t.Errorf("default chip too small: %v bits", st.Device().Geometry().TotalBits())
	}
	if st.Device().Vendor().Name != "B" {
		t.Errorf("default vendor = %s, want B", st.Device().Vendor().Name)
	}
	if st.Device().WeakCellCount() == 0 {
		t.Error("no weak cells on default chip")
	}
}

func TestFacadeEndToEnd(t *testing.T) {
	st, err := NewStation(ChipConfig{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	const target = 1.024
	res, err := Profile(st, target, ReachConditions{DeltaInterval: 0.25},
		Options{Iterations: 8, FreshRandomPerIteration: true})
	if err != nil {
		t.Fatal(err)
	}
	truth := Truth(st, target, RefTempC)
	cov := Coverage(res.Failures, truth)
	fpr := FalsePositiveRate(res.Failures, truth)
	if cov < 0.9 {
		t.Errorf("facade reach coverage = %v, want >= 0.9", cov)
	}
	if fpr <= 0 || fpr >= 1 {
		t.Errorf("facade FPR = %v, want in (0,1)", fpr)
	}
	brute, err := BruteForce(NewStationOrDie(t, 7), target, Options{Iterations: 8, FreshRandomPerIteration: true})
	if err != nil {
		t.Fatal(err)
	}
	if Coverage(brute.Failures, truth) >= cov {
		t.Error("brute force should not beat reach coverage")
	}
}

// NewStationOrDie is a test helper mirroring NewStation.
func NewStationOrDie(t *testing.T, seed uint64) *Station {
	t.Helper()
	st, err := NewStation(ChipConfig{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestNewStationWithChamber(t *testing.T) {
	st, err := NewStation(ChipConfig{Seed: 2, WithThermalChamber: true})
	if err != nil {
		t.Fatal(err)
	}
	amb := st.Ambient()
	if amb < 44 || amb > 46 {
		t.Errorf("chambered station ambient = %v, want ~45", amb)
	}
}

func TestNewStationAblations(t *testing.T) {
	st, err := NewStation(ChipConfig{Seed: 3, DisableVRT: true, DisableDPD: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range st.Device().Cells(0) {
		if c.VRT || c.DPDSens != 0 {
			t.Fatal("ablation flags not honoured")
		}
	}
}

func TestVendorAccessors(t *testing.T) {
	if VendorA().Name != "A" || VendorB().Name != "B" || VendorC().Name != "C" {
		t.Error("vendor accessors wrong")
	}
	if NoECC().K != 0 || SECDED().K != 1 || ECC2().K != 2 {
		t.Error("ECC accessors wrong")
	}
	if len(StandardPatterns(1)) != 12 {
		t.Error("StandardPatterns should return 12 patterns")
	}
}

func TestNewModuleViaFacade(t *testing.T) {
	if _, err := NewModule(0, ChipConfig{}); err == nil {
		t.Error("zero-chip module not rejected")
	}
	m, err := NewModule(3, ChipConfig{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if m.Chips() != 3 {
		t.Fatalf("chips = %d", m.Chips())
	}
	res, err := Profile(m, 1.024, ReachConditions{DeltaInterval: 0.25},
		Options{Iterations: 4, FreshRandomPerIteration: true})
	if err != nil {
		t.Fatal(err)
	}
	truth, err := m.Truth(1.024, RefTempC)
	if err != nil {
		t.Fatal(err)
	}
	if cov := Coverage(res.Failures, truth); cov < 0.8 {
		t.Errorf("module coverage via facade = %v", cov)
	}
}

func TestExploreTradeoffsViaFacade(t *testing.T) {
	mk := func() (*Station, error) { return NewStation(ChipConfig{Seed: 9}) }
	pts, err := ExploreTradeoffs(context.Background(), mk, TradeoffConfig{
		TargetInterval: 1.024,
		TargetTempC:    RefTempC,
		DeltaIntervals: []float64{0, 0.25},
		DeltaTemps:     []float64{0},
		Iterations:     4,
		CoverageGoal:   0.9,
		MaxIterations:  16,
		Options:        Options{FreshRandomPerIteration: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("got %d points", len(pts))
	}
	if pts[1].Speedup() <= 1 {
		t.Errorf("reach speedup via facade = %v, want > 1", pts[1].Speedup())
	}
}
