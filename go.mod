module reaper

go 1.22
