package telemetry

import "context"

// ctxKey keys the registry in a context.
type ctxKey struct{}

// WithRegistry returns a context carrying the registry, for instrumentation
// points (internal/parallel, the experiment harnesses) whose call chains
// already thread a context and should not grow a telemetry parameter.
func WithRegistry(ctx context.Context, r *Registry) context.Context {
	if ctx == nil || r == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, r)
}

// FromContext returns the registry carried by ctx, or nil (the no-op
// registry) when none is attached.
func FromContext(ctx context.Context) *Registry {
	if ctx == nil {
		return nil
	}
	r, _ := ctx.Value(ctxKey{}).(*Registry)
	return r
}
