package telemetry

// Opt-in runtime profiling hooks for the command-line front-ends: an HTTP
// server exposing net/http/pprof (plus the live metrics snapshot), and
// one-call CPU/heap profile capture. None of this touches simulated state —
// it observes the *host* process, which is exactly why it lives behind
// flags (-pprof-addr, -cpuprofile, -heapprofile) instead of being wired
// into experiments.

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	runtimepprof "runtime/pprof"
)

// Server is a running diagnostics HTTP server (see StartServer).
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// StartServer listens on addr (e.g. "localhost:6060"; ":0" picks a free
// port) and serves the standard pprof endpoints under /debug/pprof/ plus,
// when reg is non-nil, the registry's live snapshot as JSON under /metrics.
// The server runs until Close; it uses its own mux, so importing this
// package never pollutes http.DefaultServeMux.
func StartServer(addr string, reg *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: pprof listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	if reg != nil {
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			// Serving a snapshot is best-effort diagnostics; a write error
			// here means the client hung up.
			_ = reg.Snapshot().WriteJSON(w)
		})
	}
	s := &Server{ln: ln, srv: &http.Server{Handler: mux}}
	//lint:ignore naked-goroutine host-process diagnostics accept loop; nothing it serves flows back into simulated state
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the address the server is actually listening on (useful
// with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the server down.
func (s *Server) Close() error { return s.srv.Close() }

// StartCPUProfile begins writing a CPU profile to path and returns the
// function that stops the profile and closes the file.
func StartCPUProfile(path string) (stop func() error, err error) {
	f, err := os.Create(path) //lint:ignore raw-artifact-write live profile stream: runtime/pprof writes incrementally, cannot buffer then rename
	if err != nil {
		return nil, fmt.Errorf("telemetry: cpu profile: %w", err)
	}
	if err := runtimepprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("telemetry: cpu profile: %w", err)
	}
	return func() error {
		runtimepprof.StopCPUProfile()
		return f.Close()
	}, nil
}

// WriteHeapProfile writes the current heap profile to path.
func WriteHeapProfile(path string) error {
	f, err := os.Create(path) //lint:ignore raw-artifact-write host-process profile, not a campaign artifact a resume would trust
	if err != nil {
		return fmt.Errorf("telemetry: heap profile: %w", err)
	}
	if err := runtimepprof.WriteHeapProfile(f); err != nil {
		f.Close()
		return fmt.Errorf("telemetry: heap profile: %w", err)
	}
	return f.Close()
}
