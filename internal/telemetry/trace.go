package telemetry

import (
	"encoding/json"
	"io"
	"slices"
	"strings"
	"sync"
)

// Event is one structured trace record. Clock is logical (simulated)
// time in seconds since the emitting station's epoch — never wall time —
// so traces replay bit-for-bit at a pinned seed. Seq is the emission index
// within the event's tracer, and Source names the tracer after a Merge
// (e.g. "chip0"); both keep merged fleet traces totally ordered.
type Event struct {
	Clock  float64 `json:"clock"`
	Source string  `json:"source,omitempty"`
	Kind   string  `json:"kind"`
	Detail string  `json:"detail,omitempty"`
	Attrs  []Label `json:"attrs,omitempty"`
	Seq    int64   `json:"seq"`
}

// Tracer is a bounded ring buffer of trace events. It records arrival
// order, so each tracer must have a single logical owner (one chip, one
// station, one command); deterministic fleet traces come from one tracer
// per chip merged with Merge. The nil Tracer is a no-op.
type Tracer struct {
	mu      sync.Mutex
	cap     int
	events  []Event // ring storage
	next    int     // ring write position once len(events) == cap
	seq     int64
	dropped int64
}

// DefaultTraceCapacity bounds a tracer when the caller passes a
// non-positive capacity.
const DefaultTraceCapacity = 4096

// NewTracer returns a tracer keeping the most recent capacity events
// (DefaultTraceCapacity when capacity <= 0).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &Tracer{cap: capacity}
}

// Emit appends one event, evicting the oldest when the ring is full. Clock
// is the emitter's simulated time in seconds.
func (t *Tracer) Emit(clock float64, kind, detail string, attrs ...Label) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	e := Event{Clock: clock, Kind: kind, Detail: detail, Attrs: attrs, Seq: t.seq}
	t.seq++
	if len(t.events) < t.cap {
		t.events = append(t.events, e)
		return
	}
	t.events[t.next] = e
	t.next = (t.next + 1) % t.cap
	t.dropped++
}

// Events returns the buffered events, oldest first.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, 0, len(t.events))
	out = append(out, t.events[t.next:]...)
	out = append(out, t.events[:t.next]...)
	return out
}

// Dropped returns how many events the ring has evicted.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Trace pairs a source name with its event stream, for Merge.
type Trace struct {
	Source string
	Events []Event
}

// Merge combines per-source event streams into one deterministic timeline:
// each event is stamped with its source, and the result is ordered by
// (clock, source, seq). Because every input stream is itself deterministic,
// the merged trace is byte-identical regardless of the worker interleaving
// that produced the streams.
func Merge(traces ...Trace) []Event {
	var n int
	for _, tr := range traces {
		n += len(tr.Events)
	}
	out := make([]Event, 0, n)
	for _, tr := range traces {
		for _, e := range tr.Events {
			e.Source = tr.Source
			out = append(out, e)
		}
	}
	slices.SortFunc(out, func(a, b Event) int {
		switch {
		case a.Clock < b.Clock:
			return -1
		case a.Clock > b.Clock:
			return 1
		}
		if a.Source != b.Source {
			return strings.Compare(a.Source, b.Source)
		}
		switch {
		case a.Seq < b.Seq:
			return -1
		case a.Seq > b.Seq:
			return 1
		}
		return 0
	})
	return out
}

// WriteJSONL writes events one JSON object per line — the -trace-out file
// format, loadable with `jq` or a line-at-a-time reader.
func WriteJSONL(w io.Writer, events []Event) error {
	for _, e := range events {
		enc, err := json.Marshal(e)
		if err != nil {
			return err
		}
		enc = append(enc, '\n')
		if _, err := w.Write(enc); err != nil {
			return err
		}
	}
	return nil
}
