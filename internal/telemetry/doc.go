// Package telemetry is the repository's observability layer: a stdlib-only,
// allocation-light metrics registry, a structured event trace ring buffer,
// and opt-in runtime profiling hooks (pprof). It exists so a multi-week soak
// campaign or a tradeoff sweep can be *watched* — scrub pressure, VRT escape
// rates, reach-decision histograms, pool throughput — instead of judged only
// from the single JSON blob emitted at the end.
//
// # The determinism contract
//
// Everything this repository pins — golden snapshots, figure tables, the
// soak survival report — is byte-identical for a fixed seed at any worker
// count, and telemetry must not be the component that breaks that. The
// package therefore follows three rules:
//
//   - Logical time only. Metrics and trace events are stamped with simulated
//     clocks (station seconds, profiling rounds, scrub windows), never the
//     wall clock. The package imports neither "time" nor anything else that
//     could observe the host.
//
//   - Commutative aggregation. Counters and histograms mutate only by
//     integer atomic adds (histogram sums are accumulated in fixed-point
//     micro-units), so concurrent updates from an internal/parallel pool
//     reach the same final state regardless of interleaving. Snapshot output
//     is sorted by metric name and canonical label set, so serialization is
//     byte-identical for workers=1 and workers=8.
//
//   - Single-writer gauges and tracers. A gauge is last-write-wins and a
//     tracer records arrival order, so each must have exactly one logical
//     owner. Per-instance label sets (for gauges) and per-chip tracers
//     merged with Merge (for traces) keep concurrent fleets deterministic.
//
// Metrics whose value depends on the worker count (actual goroutines
// launched, live pool occupancy) are deliberately not recorded anywhere in
// this repository: they would poison the workers=1 vs workers=8 golden
// comparison. Throughput is instead observed through worker-count-invariant
// series (jobs queued/completed, jobs per batch).
//
// # Typical use
//
//	reg := telemetry.New()
//	ctx := telemetry.WithRegistry(ctx, reg)       // pool + harness metrics
//	mgr.Instrument(reg, tracer, telemetry.L("chip", "0"))
//	...
//	snap := reg.Snapshot()                        // sorted, stable
//	err := snap.WriteJSON(f)
//
// A nil *Registry, *Counter, *Gauge, *Histogram, or *Tracer is a valid
// no-op, so instrumented code never branches on "is telemetry enabled".
package telemetry
