package telemetry

import (
	"encoding/json"
	"io"
	"math"
	"slices"
	"strings"
)

// CounterSnapshot is one counter series in a Snapshot.
type CounterSnapshot struct {
	Name   string  `json:"name"`
	Labels []Label `json:"labels,omitempty"`
	Value  int64   `json:"value"`
}

// GaugeSnapshot is one gauge series in a Snapshot.
type GaugeSnapshot struct {
	Name   string  `json:"name"`
	Labels []Label `json:"labels,omitempty"`
	Value  float64 `json:"value"`
}

// Bucket is one histogram cell: the count of observations at or below the
// upper bound LE that did not fit an earlier (smaller) bucket. Buckets are
// non-cumulative; observations above the last bound land in the histogram's
// Overflow count, so there is no +Inf bound to serialize.
type Bucket struct {
	LE    float64 `json:"le"`
	Count int64   `json:"count"`
}

// HistogramSnapshot is one histogram series in a Snapshot.
type HistogramSnapshot struct {
	Name     string   `json:"name"`
	Labels   []Label  `json:"labels,omitempty"`
	Count    int64    `json:"count"`
	Sum      float64  `json:"sum"`
	Buckets  []Bucket `json:"buckets,omitempty"`
	Overflow int64    `json:"overflow,omitempty"`
}

// Snapshot is a point-in-time copy of a registry, ordered by metric name
// and then canonical label set, so its JSON encoding is byte-identical for
// identical metric values regardless of registration or update order.
type Snapshot struct {
	Counters   []CounterSnapshot   `json:"counters,omitempty"`
	Gauges     []GaugeSnapshot     `json:"gauges,omitempty"`
	Histograms []HistogramSnapshot `json:"histograms,omitempty"`
}

// labelsLess orders two canonical label sets lexicographically.
func labelsLess(a, b []Label) int {
	return slices.CompareFunc(a, b, func(x, y Label) int {
		if x.Key != y.Key {
			return strings.Compare(x.Key, y.Key)
		}
		return strings.Compare(x.Value, y.Value)
	})
}

// Snapshot copies the registry's current state. Concurrent writers may race
// individual reads (a counter bumped mid-snapshot), but a snapshot taken
// after all writers have finished — the only pinned case — is exact.
func (r *Registry) Snapshot() *Snapshot {
	snap := &Snapshot{}
	if r == nil {
		return snap
	}
	r.mu.Lock()
	ms := make([]*metric, 0, len(r.metrics))
	for _, m := range r.metrics {
		ms = append(ms, m)
	}
	r.mu.Unlock()
	slices.SortFunc(ms, func(a, b *metric) int {
		if a.name != b.name {
			return strings.Compare(a.name, b.name)
		}
		return labelsLess(a.labels, b.labels)
	})
	for _, m := range ms {
		switch m.kind {
		case KindCounter:
			snap.Counters = append(snap.Counters, CounterSnapshot{
				Name: m.name, Labels: m.labels, Value: m.count.Load(),
			})
		case KindGauge:
			snap.Gauges = append(snap.Gauges, GaugeSnapshot{
				Name: m.name, Labels: m.labels,
				Value: math.Float64frombits(m.gaugeBits.Load()),
			})
		case KindHistogram:
			hs := HistogramSnapshot{
				Name: m.name, Labels: m.labels,
				Count:    m.count.Load(),
				Sum:      float64(m.sumMicros.Load()) / 1e6,
				Overflow: m.overflow.Load(),
			}
			for i, b := range m.bounds {
				hs.Buckets = append(hs.Buckets, Bucket{LE: b, Count: m.cells[i].Load()})
			}
			snap.Histograms = append(snap.Histograms, hs)
		}
	}
	return snap
}

// WriteJSON writes the snapshot as indented JSON with a trailing newline —
// the -metrics-out file format.
func (s *Snapshot) WriteJSON(w io.Writer) error {
	enc, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	_, err = w.Write(enc)
	return err
}

// Counter returns the snapshotted value of the named counter series, or 0
// if absent — a convenience for tests and report assembly.
func (s *Snapshot) Counter(name string, labels ...Label) int64 {
	cl := canonicalLabels(labels)
	for _, c := range s.Counters {
		if c.Name == name && labelsLess(c.Labels, cl) == 0 {
			return c.Value
		}
	}
	return 0
}
