package telemetry

import (
	"math"
	"slices"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one key=value dimension of a metric or trace event. Labels are
// plain pairs (never maps) so no code path ever iterates a map to render
// them.
type Label struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Kind classifies a metric.
type Kind string

// The three metric kinds the registry supports.
const (
	KindCounter   Kind = "counter"
	KindGauge     Kind = "gauge"
	KindHistogram Kind = "histogram"
)

// metric is the shared storage behind every handle type. Counters and
// histogram cells mutate only through atomic integer adds, so concurrent
// writers from a worker pool commute; gauges are last-write-wins and need a
// single logical owner (see the package comment).
type metric struct {
	name   string
	kind   Kind
	labels []Label // sorted by key, then value

	count     atomic.Int64 // counter value; histogram observation count
	gaugeBits atomic.Uint64
	sumMicros atomic.Int64 // histogram sum, fixed-point micro-units

	bounds   []float64 // histogram upper bounds, strictly increasing
	cells    []atomic.Int64
	overflow atomic.Int64 // observations above the last bound
}

// Counter is a monotonically increasing integer metric. The nil Counter is
// a no-op.
type Counter struct{ m *metric }

// Add increases the counter by n (negative n is ignored: counters are
// monotone).
func (c *Counter) Add(n int64) {
	if c == nil || c.m == nil || n <= 0 {
		return
	}
	c.m.count.Add(n)
}

// Inc increases the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil || c.m == nil {
		return 0
	}
	return c.m.count.Load()
}

// Gauge is a last-write-wins float metric. Gauges must have a single
// logical owner (use per-instance labels when many instances report); the
// nil Gauge is a no-op.
type Gauge struct{ m *metric }

// Set records the gauge's current value.
func (g *Gauge) Set(v float64) {
	if g == nil || g.m == nil {
		return
	}
	g.m.gaugeBits.Store(math.Float64bits(v))
}

// Value returns the last value Set.
func (g *Gauge) Value() float64 {
	if g == nil || g.m == nil {
		return 0
	}
	return math.Float64frombits(g.m.gaugeBits.Load())
}

// Histogram is a fixed-bucket distribution metric. Observations land in the
// first bucket whose upper bound is >= the value; values above every bound
// are counted in the overflow cell. The sum is accumulated in fixed-point
// micro-units so concurrent observation order cannot perturb it. The nil
// Histogram is a no-op.
type Histogram struct{ m *metric }

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil || h.m == nil {
		return
	}
	m := h.m
	m.count.Add(1)
	m.sumMicros.Add(int64(math.Round(v * 1e6)))
	for i, b := range m.bounds {
		if v <= b {
			m.cells[i].Add(1)
			return
		}
	}
	m.overflow.Add(1)
}

// Count returns the number of observations so far.
func (h *Histogram) Count() int64 {
	if h == nil || h.m == nil {
		return 0
	}
	return h.m.count.Load()
}

// Registry holds the metrics of one run. Handles are get-or-create: asking
// twice for the same (name, labels) returns the same storage. The nil
// *Registry is a valid no-op registry — every handle it returns discards
// writes — so instrumented code never branches on "is telemetry enabled".
type Registry struct {
	mu      sync.Mutex
	metrics map[string]*metric
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{metrics: make(map[string]*metric)}
}

// canonicalLabels returns a sorted copy of labels.
func canonicalLabels(labels []Label) []Label {
	if len(labels) == 0 {
		return nil
	}
	out := slices.Clone(labels)
	slices.SortFunc(out, func(a, b Label) int {
		if a.Key != b.Key {
			return strings.Compare(a.Key, b.Key)
		}
		return strings.Compare(a.Value, b.Value)
	})
	return out
}

// metricKey builds the registry key for a name and canonical label set.
func metricKey(name string, labels []Label) string {
	var b strings.Builder
	b.WriteString(name)
	for _, l := range labels {
		b.WriteByte(0)
		b.WriteString(l.Key)
		b.WriteByte(1)
		b.WriteString(l.Value)
	}
	return b.String()
}

// lookup returns the metric for (name, labels), creating it with the given
// kind and bounds on first use. A kind conflict (the name+labels exist with
// a different kind, or a histogram re-registered with different bounds)
// yields nil, which the handle types treat as a no-op — an instrumentation
// bug must not crash or corrupt a campaign.
func (r *Registry) lookup(kind Kind, name string, bounds []float64, labels []Label) *metric {
	if r == nil {
		return nil
	}
	cl := canonicalLabels(labels)
	key := metricKey(name, cl)
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[key]; ok {
		if m.kind != kind || (kind == KindHistogram && !slices.Equal(m.bounds, bounds)) {
			return nil
		}
		return m
	}
	m := &metric{name: name, kind: kind, labels: cl, bounds: bounds}
	if kind == KindHistogram {
		m.cells = make([]atomic.Int64, len(bounds))
	}
	r.metrics[key] = m
	return m
}

// Counter returns the counter for (name, labels), creating it on first use.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	return &Counter{m: r.lookup(KindCounter, name, nil, labels)}
}

// Gauge returns the gauge for (name, labels), creating it on first use.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	return &Gauge{m: r.lookup(KindGauge, name, nil, labels)}
}

// Histogram returns the histogram for (name, labels) with the given bucket
// upper bounds, creating it on first use. Bounds are sorted and deduplicated;
// an empty bounds slice yields a count+sum-only histogram.
func (r *Registry) Histogram(name string, bounds []float64, labels ...Label) *Histogram {
	if len(bounds) > 0 {
		bounds = slices.Clone(bounds)
		slices.Sort(bounds)
		bounds = slices.Compact(bounds)
	}
	return &Histogram{m: r.lookup(KindHistogram, name, bounds, labels)}
}
