package telemetry

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeHistogramBasics(t *testing.T) {
	reg := New()
	c := reg.Counter("jobs_total", L("figure", "fig9"))
	c.Inc()
	c.Add(4)
	c.Add(-7) // counters are monotone; negative adds are dropped
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if got := reg.Counter("jobs_total", L("figure", "fig9")).Value(); got != 5 {
		t.Errorf("re-lookup returned fresh storage: %d", got)
	}

	g := reg.Gauge("interval_ms")
	g.Set(1024)
	g.Set(512)
	if got := g.Value(); got != 512 {
		t.Errorf("gauge = %v, want 512", got)
	}

	h := reg.Histogram("latency", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 3, 9} {
		h.Observe(v)
	}
	snap := reg.Snapshot()
	if len(snap.Histograms) != 1 {
		t.Fatalf("want 1 histogram, got %d", len(snap.Histograms))
	}
	hs := snap.Histograms[0]
	if hs.Count != 5 || hs.Overflow != 1 {
		t.Errorf("count/overflow = %d/%d, want 5/1", hs.Count, hs.Overflow)
	}
	wantCells := []int64{2, 1, 1} // <=1: {0.5,1}; <=2: {1.5}; <=4: {3}
	for i, b := range hs.Buckets {
		if b.Count != wantCells[i] {
			t.Errorf("bucket le=%v count = %d, want %d", b.LE, b.Count, wantCells[i])
		}
	}
	if hs.Sum != 15 {
		t.Errorf("sum = %v, want 15", hs.Sum)
	}
}

func TestNilRegistryAndHandlesAreNoOps(t *testing.T) {
	var reg *Registry
	reg.Counter("c").Inc()
	reg.Gauge("g").Set(1)
	reg.Histogram("h", []float64{1}).Observe(2)
	snap := reg.Snapshot()
	if len(snap.Counters)+len(snap.Gauges)+len(snap.Histograms) != 0 {
		t.Error("nil registry produced metrics")
	}
	var tr *Tracer
	tr.Emit(0, "kind", "detail")
	if tr.Events() != nil || tr.Dropped() != 0 {
		t.Error("nil tracer recorded events")
	}
}

func TestKindConflictYieldsNoOpHandle(t *testing.T) {
	reg := New()
	reg.Counter("m").Inc()
	g := reg.Gauge("m") // same name, different kind
	g.Set(3)
	if got := g.Value(); got != 0 {
		t.Errorf("conflicting gauge retained value %v", got)
	}
	h1 := reg.Histogram("h", []float64{1, 2})
	h1.Observe(1)
	h2 := reg.Histogram("h", []float64{1, 2, 3}) // different bounds
	h2.Observe(1)
	if got := h1.Count(); got != 1 {
		t.Errorf("original histogram count = %d, want 1", got)
	}
	if got := h2.Count(); got != 0 {
		t.Errorf("conflicting histogram recorded %d observations", got)
	}
}

// TestSnapshotDeterministicOrder registers series in two different orders
// and checks the serialized snapshots are byte-identical.
func TestSnapshotDeterministicOrder(t *testing.T) {
	build := func(order []int) string {
		reg := New()
		series := []func(){
			func() { reg.Counter("b_total", L("x", "1")).Add(2) },
			func() { reg.Counter("b_total", L("x", "0")).Add(3) },
			func() { reg.Counter("a_total").Add(1) },
			func() { reg.Gauge("z", L("chip", "1")).Set(4) },
			func() { reg.Histogram("h", []float64{1}).Observe(0.5) },
		}
		for _, i := range order {
			series[i]()
		}
		var buf bytes.Buffer
		if err := reg.Snapshot().WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	a := build([]int{0, 1, 2, 3, 4})
	b := build([]int{4, 3, 2, 1, 0})
	if a != b {
		t.Errorf("snapshot depends on registration order:\n%s\nvs\n%s", a, b)
	}
	if !strings.Contains(a, `"a_total"`) {
		t.Errorf("snapshot missing series:\n%s", a)
	}
}

// TestConcurrentWritersConverge is the race-detector coverage for the
// registry: many goroutines hammer the same counter and histogram (and
// per-writer gauges), and the final snapshot must equal the sequential
// outcome regardless of interleaving. Test files are exempt from the
// naked-goroutine rule; shipped code reaches this path through
// internal/parallel.
func TestConcurrentWritersConverge(t *testing.T) {
	const writers, perWriter = 16, 1000
	reg := New()
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := reg.Counter("hits_total")
			h := reg.Histogram("obs", []float64{250, 500, 750})
			g := reg.Gauge("last", L("writer", string(rune('a'+w))))
			for i := 0; i < perWriter; i++ {
				c.Inc()
				h.Observe(float64(i))
				g.Set(float64(i))
			}
		}(w)
	}
	wg.Wait()
	snap := reg.Snapshot()
	if got := snap.Counter("hits_total"); got != writers*perWriter {
		t.Errorf("counter = %d, want %d", got, writers*perWriter)
	}
	if len(snap.Histograms) != 1 {
		t.Fatalf("want 1 histogram, got %d", len(snap.Histograms))
	}
	h := snap.Histograms[0]
	if h.Count != writers*perWriter {
		t.Errorf("histogram count = %d, want %d", h.Count, writers*perWriter)
	}
	// Each writer observes 0..999: 251 land <=250, 250 each in the next two
	// cells, 249 overflow.
	want := []int64{251 * writers, 250 * writers, 250 * writers}
	for i, b := range h.Buckets {
		if b.Count != want[i] {
			t.Errorf("bucket le=%v = %d, want %d", b.LE, b.Count, want[i])
		}
	}
	if h.Overflow != 249*writers {
		t.Errorf("overflow = %d, want %d", h.Overflow, 249*writers)
	}
	if len(snap.Gauges) != writers {
		t.Errorf("want %d gauge series, got %d", writers, len(snap.Gauges))
	}
	for _, g := range snap.Gauges {
		if g.Value != perWriter-1 {
			t.Errorf("gauge %v = %v, want %d", g.Labels, g.Value, perWriter-1)
		}
	}
}
