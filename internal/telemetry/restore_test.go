package telemetry

import (
	"bytes"
	"fmt"
	"testing"

	"reaper/internal/checkpoint"
)

// TestRegistryRestoreRoundTrip checks the resume contract: snapshotting a
// registry, serializing the snapshot with the checkpoint codec, restoring
// it into a fresh registry and snapshotting again yields byte-identical
// JSON — and metrics keep counting from their restored values.
func TestRegistryRestoreRoundTrip(t *testing.T) {
	r := New()
	r.Counter("soak_chips_total").Add(8)
	r.Counter("scrub_corrected_total", L("chip", "3")).Add(1234)
	r.Gauge("firmware_degrade_level", L("chip", "0")).Set(2)
	r.Gauge("soak_uber_worst").Set(1.7e-5)
	h := r.Histogram("profiling_round_seconds", []float64{1, 10, 100}, L("chip", "1"))
	for _, v := range []float64{0.5, 3, 42, 999, 7} {
		h.Observe(v)
	}

	snap := r.Snapshot()
	enc := checkpoint.NewEncoder()
	snap.EncodeState(enc)

	decoded, err := DecodeSnapshot(checkpoint.NewDecoder(enc.Data()))
	if err != nil {
		t.Fatal(err)
	}
	fresh := New()
	fresh.RestoreSnapshot(decoded)

	var want, got bytes.Buffer
	if err := snap.WriteJSON(&want); err != nil {
		t.Fatal(err)
	}
	if err := fresh.Snapshot().WriteJSON(&got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want.Bytes(), got.Bytes()) {
		t.Errorf("restored snapshot differs:\nwant %s\ngot  %s", want.String(), got.String())
	}

	// Restored metrics continue from where the original left off.
	fresh.Counter("soak_chips_total").Inc()
	if v := fresh.Counter("soak_chips_total").Value(); v != 9 {
		t.Errorf("counter after restore+inc = %d, want 9", v)
	}
	fresh.Histogram("profiling_round_seconds", []float64{1, 10, 100}, L("chip", "1")).Observe(5)
	if c := fresh.Histogram("profiling_round_seconds", []float64{1, 10, 100}, L("chip", "1")).Count(); c != 6 {
		t.Errorf("histogram count after restore+observe = %d, want 6", c)
	}
}

// TestTracerRestoreRoundTrip exercises both the non-full and the wrapped
// ring: a restored tracer must return the same Events() and keep evicting
// in the same order as its never-serialized twin.
func TestTracerRestoreRoundTrip(t *testing.T) {
	for _, emitted := range []int{3, 8, 13} {
		orig := NewTracer(8)
		twin := NewTracer(8)
		for i := 0; i < emitted; i++ {
			clock := float64(i) * 10
			orig.Emit(clock, "tick", fmt.Sprintf("n=%d", i), L("i", fmt.Sprint(i)))
			twin.Emit(clock, "tick", fmt.Sprintf("n=%d", i), L("i", fmt.Sprint(i)))
		}

		enc := checkpoint.NewEncoder()
		orig.EncodeState(enc)
		restored := NewTracer(8)
		if err := restored.RestoreState(checkpoint.NewDecoder(enc.Data())); err != nil {
			t.Fatalf("emitted=%d: %v", emitted, err)
		}

		// Keep emitting into both; the streams must stay identical.
		for i := 0; i < 5; i++ {
			clock := float64(emitted+i) * 10
			twin.Emit(clock, "post", "")
			restored.Emit(clock, "post", "")
		}
		if tw, re := fmt.Sprint(twin.Events()), fmt.Sprint(restored.Events()); tw != re {
			t.Errorf("emitted=%d: events diverge:\ntwin     %s\nrestored %s", emitted, tw, re)
		}
		if twin.Dropped() != restored.Dropped() {
			t.Errorf("emitted=%d: dropped %d vs %d", emitted, twin.Dropped(), restored.Dropped())
		}
	}
}

func TestTracerRestoreNil(t *testing.T) {
	enc := checkpoint.NewEncoder()
	var nilTracer *Tracer
	nilTracer.EncodeState(enc)
	fresh := NewTracer(4)
	if err := fresh.RestoreState(checkpoint.NewDecoder(enc.Data())); err != nil {
		t.Fatal(err)
	}
	if len(fresh.Events()) != 0 {
		t.Error("restoring a nil tracer state mutated the target")
	}
}
