package telemetry

import (
	"fmt"
	"math"

	"reaper/internal/checkpoint"
)

// This file is the checkpoint surface of the telemetry layer. A resumed
// campaign must report the same counters, gauges, histograms and traces as
// an uninterrupted one, so the registry and per-chip tracers are serialized
// at every checkpoint barrier and rebuilt exactly on resume.

// sanity ceilings for decoded collection lengths: values beyond these
// indicate a corrupted blob, not a real campaign.
const (
	maxRestoreSeries = 1 << 20
	maxRestoreEvents = 1 << 24
	maxRestoreLabels = 1 << 10
)

// RestoreSnapshot loads a snapshot's series into the registry, creating
// each metric and overwriting its value. It is intended for a fresh
// registry at resume time; restoring over live metrics overwrites counts.
func (r *Registry) RestoreSnapshot(s *Snapshot) {
	if r == nil || s == nil {
		return
	}
	for _, c := range s.Counters {
		if m := r.lookup(KindCounter, c.Name, nil, c.Labels); m != nil {
			m.count.Store(c.Value)
		}
	}
	for _, g := range s.Gauges {
		if m := r.lookup(KindGauge, g.Name, nil, g.Labels); m != nil {
			m.gaugeBits.Store(math.Float64bits(g.Value))
		}
	}
	for _, h := range s.Histograms {
		bounds := make([]float64, len(h.Buckets))
		for i, b := range h.Buckets {
			bounds[i] = b.LE
		}
		m := r.lookup(KindHistogram, h.Name, bounds, h.Labels)
		if m == nil {
			continue
		}
		m.count.Store(h.Count)
		// Observe accumulates in fixed-point micro-units; Sum is the
		// micro-unit total divided by 1e6, so rounding recovers it exactly
		// (totals stay far below 2^53 micro-units).
		m.sumMicros.Store(int64(math.Round(h.Sum * 1e6)))
		for i := range h.Buckets {
			m.cells[i].Store(h.Buckets[i].Count)
		}
		m.overflow.Store(h.Overflow)
	}
}

func encodeLabels(e *checkpoint.Encoder, labels []Label) {
	e.Len(len(labels))
	for _, l := range labels {
		e.Str(l.Key)
		e.Str(l.Value)
	}
}

func decodeLabels(d *checkpoint.Decoder) []Label {
	n := d.Len(maxRestoreLabels)
	if n == 0 {
		return nil
	}
	out := make([]Label, n)
	for i := range out {
		out[i].Key = d.Str()
		out[i].Value = d.Str()
	}
	return out
}

// EncodeState serializes the snapshot with the checkpoint binary codec
// (JSON cannot carry non-finite gauge values bit-exactly).
func (s *Snapshot) EncodeState(e *checkpoint.Encoder) {
	e.Section("telemetry.snapshot")
	e.Len(len(s.Counters))
	for _, c := range s.Counters {
		e.Str(c.Name)
		encodeLabels(e, c.Labels)
		e.I64(c.Value)
	}
	e.Len(len(s.Gauges))
	for _, g := range s.Gauges {
		e.Str(g.Name)
		encodeLabels(e, g.Labels)
		e.F64(g.Value)
	}
	e.Len(len(s.Histograms))
	for _, h := range s.Histograms {
		e.Str(h.Name)
		encodeLabels(e, h.Labels)
		e.I64(h.Count)
		e.F64(h.Sum)
		e.I64(h.Overflow)
		e.Len(len(h.Buckets))
		for _, b := range h.Buckets {
			e.F64(b.LE)
			e.I64(b.Count)
		}
	}
}

// DecodeSnapshot reads a snapshot serialized by EncodeState.
func DecodeSnapshot(d *checkpoint.Decoder) (*Snapshot, error) {
	s := &Snapshot{}
	d.Section("telemetry.snapshot")
	nc := d.Len(maxRestoreSeries)
	for i := 0; i < nc; i++ {
		var c CounterSnapshot
		c.Name = d.Str()
		c.Labels = decodeLabels(d)
		c.Value = d.I64()
		s.Counters = append(s.Counters, c)
	}
	ng := d.Len(maxRestoreSeries)
	for i := 0; i < ng; i++ {
		var g GaugeSnapshot
		g.Name = d.Str()
		g.Labels = decodeLabels(d)
		g.Value = d.F64()
		s.Gauges = append(s.Gauges, g)
	}
	nh := d.Len(maxRestoreSeries)
	for i := 0; i < nh; i++ {
		var h HistogramSnapshot
		h.Name = d.Str()
		h.Labels = decodeLabels(d)
		h.Count = d.I64()
		h.Sum = d.F64()
		h.Overflow = d.I64()
		nb := d.Len(maxRestoreSeries)
		for j := 0; j < nb; j++ {
			var b Bucket
			b.LE = d.F64()
			b.Count = d.I64()
			h.Buckets = append(h.Buckets, b)
		}
		s.Histograms = append(s.Histograms, h)
	}
	if err := d.Err(); err != nil {
		return nil, fmt.Errorf("telemetry: snapshot decode: %w", err)
	}
	return s, nil
}

// EncodeState serializes the tracer's ring (oldest first), sequence counter
// and drop count.
func (t *Tracer) EncodeState(e *checkpoint.Encoder) {
	e.Section("telemetry.tracer")
	if t == nil {
		e.Bool(false)
		return
	}
	e.Bool(true)
	t.mu.Lock()
	defer t.mu.Unlock()
	e.Int(t.cap)
	e.I64(t.seq)
	e.I64(t.dropped)
	ordered := append(append([]Event(nil), t.events[t.next:]...), t.events[:t.next]...)
	e.Len(len(ordered))
	for _, ev := range ordered {
		e.F64(ev.Clock)
		e.Str(ev.Source)
		e.Str(ev.Kind)
		e.Str(ev.Detail)
		encodeLabels(e, ev.Attrs)
		e.I64(ev.Seq)
	}
}

// RestoreState loads a tracer state serialized by EncodeState into t,
// replacing its buffer. The restored ring has its oldest event at index 0
// (next = 0), which is observation-equivalent to the original ring: Events
// returns the same sequence and subsequent Emits evict in the same order.
func (t *Tracer) RestoreState(d *checkpoint.Decoder) error {
	d.Section("telemetry.tracer")
	present := d.Bool()
	if !present {
		if err := d.Err(); err != nil {
			return fmt.Errorf("telemetry: tracer decode: %w", err)
		}
		return nil
	}
	capacity := d.Int()
	seq := d.I64()
	dropped := d.I64()
	n := d.Len(maxRestoreEvents)
	events := make([]Event, 0, n)
	for i := 0; i < n; i++ {
		var ev Event
		ev.Clock = d.F64()
		ev.Source = d.Str()
		ev.Kind = d.Str()
		ev.Detail = d.Str()
		ev.Attrs = decodeLabels(d)
		ev.Seq = d.I64()
		events = append(events, ev)
	}
	if err := d.Err(); err != nil {
		return fmt.Errorf("telemetry: tracer decode: %w", err)
	}
	if t == nil {
		return nil
	}
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	if len(events) > capacity {
		events = events[len(events)-capacity:]
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.cap = capacity
	t.events = events
	t.next = 0
	t.seq = seq
	t.dropped = dropped
	return nil
}
