package telemetry

import (
	"bytes"
	"context"
	"net/http"
	"strings"
	"testing"
)

func TestTracerRingEviction(t *testing.T) {
	tr := NewTracer(3)
	for i := 0; i < 5; i++ {
		tr.Emit(float64(i), "tick", "")
	}
	evs := tr.Events()
	if len(evs) != 3 {
		t.Fatalf("want 3 buffered events, got %d", len(evs))
	}
	for i, e := range evs {
		if want := float64(i + 2); e.Clock != want {
			t.Errorf("event %d clock = %v, want %v (oldest-first after eviction)", i, e.Clock, want)
		}
	}
	if tr.Dropped() != 2 {
		t.Errorf("dropped = %d, want 2", tr.Dropped())
	}
	if evs[0].Seq != 2 || evs[2].Seq != 4 {
		t.Errorf("seq not preserved across eviction: %+v", evs)
	}
}

func TestMergeIsDeterministicTimeline(t *testing.T) {
	a := NewTracer(0)
	b := NewTracer(0)
	a.Emit(1.0, "x", "")
	a.Emit(3.0, "x", "")
	b.Emit(1.0, "y", "")
	b.Emit(2.0, "y", "", L("cells", "4"))
	merged := Merge(Trace{"chip1", b.Events()}, Trace{"chip0", a.Events()})
	var got []string
	for _, e := range merged {
		got = append(got, e.Source+":"+e.Kind)
	}
	want := "chip0:x chip1:y chip1:y chip0:x" // clock order, source breaks ties
	if strings.Join(got, " ") != want {
		t.Errorf("merged order = %v, want %s", got, want)
	}

	var buf bytes.Buffer
	if err := WriteJSONL(&buf, merged); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("want 4 JSONL lines, got %d", len(lines))
	}
	if !strings.Contains(lines[2], `"attrs":[{"key":"cells","value":"4"}]`) {
		t.Errorf("attrs not serialized: %s", lines[2])
	}
}

func TestContextCarriesRegistry(t *testing.T) {
	if FromContext(context.Background()) != nil {
		t.Error("empty context returned a registry")
	}
	reg := New()
	ctx := WithRegistry(context.Background(), reg)
	if FromContext(ctx) != reg {
		t.Error("registry did not round-trip through context")
	}
	if got := WithRegistry(ctx, nil); got != ctx {
		t.Error("nil registry should leave the context untouched")
	}
}

func TestPprofServerServesMetrics(t *testing.T) {
	reg := New()
	reg.Counter("up").Inc()
	srv, err := StartServer("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"up"`) {
		t.Errorf("/metrics missing counter: %s", buf.String())
	}
	resp2, err := http.Get("http://" + srv.Addr() + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Errorf("pprof cmdline status = %d", resp2.StatusCode)
	}
}
