package core

import (
	"testing"

	"reaper/internal/memctrl"
	"reaper/internal/patterns"
)

func TestRefreshRandomsReplacesOnlyRandoms(t *testing.T) {
	ps := []patterns.Pattern{
		patterns.Solid0(),
		patterns.Random(1),
		patterns.Invert(patterns.Random(1)),
		patterns.Checkerboard(),
	}
	out1 := refreshRandoms(ps, 9, 1)
	out2 := refreshRandoms(ps, 9, 2)
	// Fixed patterns are passed through untouched.
	if out1[0] != ps[0] || out1[3] != ps[3] {
		t.Error("fixed patterns were replaced")
	}
	// Random patterns change between iterations.
	if out1[1].Word(0, 0) == out2[1].Word(0, 0) &&
		out1[1].Word(1, 1) == out2[1].Word(1, 1) {
		t.Error("random pattern did not refresh across iterations")
	}
	// The inverted random stays the inverse of nothing in particular but
	// must still be an inverted random (name check).
	if name := out1[2].Name(); len(name) < 7 || name[:7] != "~random" {
		t.Errorf("inverted random renamed to %q", name)
	}
	// Same (seed, iteration) is reproducible.
	again := refreshRandoms(ps, 9, 1)
	if again[1].Word(3, 4) != out1[1].Word(3, 4) {
		t.Error("refreshRandoms not deterministic")
	}
}

func TestOptionsFillDefaults(t *testing.T) {
	var o Options
	o.fill()
	if o.Iterations != 16 {
		t.Errorf("default iterations = %d, want 16", o.Iterations)
	}
	if len(o.Patterns) != 12 {
		t.Errorf("default patterns = %d, want 12", len(o.Patterns))
	}
	// Explicit values are preserved.
	o2 := Options{Iterations: 3, Patterns: []patterns.Pattern{patterns.Solid0()}}
	o2.fill()
	if o2.Iterations != 3 || len(o2.Patterns) != 1 {
		t.Error("fill overwrote explicit options")
	}
}

func TestDiffStats(t *testing.T) {
	after := memStats(10, 20, 30, 40, 5, 6, 700, 800)
	before := memStats(1, 2, 3, 4, 1, 1, 100, 100)
	d := diffStats(after, before)
	if d.WriteSeconds != 9 || d.ReadSeconds != 18 || d.WaitSeconds != 27 ||
		d.IdleSeconds != 36 || d.WritePasses != 4 || d.ReadPasses != 5 ||
		d.BytesWritten != 600 || d.BytesRead != 700 {
		t.Errorf("diffStats wrong: %+v", d)
	}
}

// memStats builds a memctrl.Stats for diff tests.
func memStats(w, r, wait, idle float64, wp, rp int, bw, br int64) (s memctrl.Stats) {
	s.WriteSeconds, s.ReadSeconds, s.WaitSeconds, s.IdleSeconds = w, r, wait, idle
	s.WritePasses, s.ReadPasses = wp, rp
	s.BytesWritten, s.BytesRead = bw, br
	return s
}
