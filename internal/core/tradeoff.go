package core

import (
	"context"
	"fmt"

	"reaper/internal/memctrl"
	"reaper/internal/parallel"
	"reaper/internal/telemetry"
)

// TradeoffConfig drives the reach-condition exploration of the paper's
// Section 6.1: a grid of (Δ refresh interval, Δ temperature) reach
// conditions evaluated for coverage, false positive rate (Figure 9), and
// profiling runtime to a coverage goal (Figure 10).
type TradeoffConfig struct {
	// TargetInterval (seconds) and TargetTempC are the conditions the
	// system will actually operate at.
	TargetInterval float64
	TargetTempC    float64

	// DeltaIntervals and DeltaTemps define the reach grid. Include 0 in
	// both to get the brute-force reference point.
	DeltaIntervals []float64
	DeltaTemps     []float64

	// Iterations is where coverage and false positive rate are sampled
	// (the paper uses 16 iterations of 6 patterns and their inverses).
	Iterations int

	// CoverageGoal is the coverage at which runtime is measured (the
	// paper's Figure 10 uses 90%).
	CoverageGoal float64

	// MaxIterations caps the runtime search. Defaults to 4*Iterations.
	MaxIterations int

	// Options is the base profiling configuration (patterns, seed).
	Options Options

	// Reference selects what coverage and false positives are scored
	// against. The default, ReferenceEmpirical, follows the paper's
	// Figure 9/10 methodology: the reference set is the result of
	// brute-force profiling at the *target* conditions for Iterations
	// rounds, so the (0,0) grid point has coverage 1 and FPR 0 by
	// construction. ReferenceOracle scores against the simulator's ground
	// truth instead (impossible on real hardware, useful for model
	// analysis).
	Reference ReferenceMode

	// Workers bounds the worker pool evaluating grid points concurrently;
	// <= 0 means one worker per CPU. Every grid point profiles its own
	// freshly constructed station (mkStation), so results are identical at
	// any worker count.
	Workers int
}

// ReferenceMode selects the scoring reference for tradeoff exploration.
type ReferenceMode int

const (
	// ReferenceEmpirical scores against a brute-force profile taken at the
	// target conditions (the paper's methodology).
	ReferenceEmpirical ReferenceMode = iota
	// ReferenceOracle scores against the device model's latent ground
	// truth.
	ReferenceOracle
)

func (c *TradeoffConfig) fill() error {
	if c.TargetInterval <= 0 {
		return fmt.Errorf("core: tradeoff target interval must be positive")
	}
	if c.Iterations == 0 {
		c.Iterations = 16
	}
	if c.CoverageGoal == 0 {
		c.CoverageGoal = 0.90
	}
	if c.CoverageGoal <= 0 || c.CoverageGoal > 1 {
		return fmt.Errorf("core: coverage goal %v out of (0,1]", c.CoverageGoal)
	}
	if c.MaxIterations == 0 {
		c.MaxIterations = 4 * c.Iterations
	}
	if len(c.DeltaIntervals) == 0 || len(c.DeltaTemps) == 0 {
		return fmt.Errorf("core: empty reach grid")
	}
	return nil
}

// TradeoffPoint is the measured outcome at one reach condition. The JSON
// field names follow the repository-wide lower_snake_case convention
// (API.md "Naming convention") shared with internal/benchfmt and
// internal/testprog.
type TradeoffPoint struct {
	Reach ReachConditions `json:"reach"`

	// Coverage and FalsePositiveRate are sampled after
	// TradeoffConfig.Iterations iterations, scored against the reference
	// at the *target* conditions (empirical brute-force profile or oracle,
	// per TradeoffConfig.Reference).
	Coverage          float64 `json:"coverage"`
	FalsePositiveRate float64 `json:"false_positive_rate"`

	// RuntimeSeconds is the simulated profiling time until CoverageGoal
	// was reached (or until MaxIterations, if it never was).
	RuntimeSeconds float64 `json:"runtime_seconds"`
	// RuntimeRelative is RuntimeSeconds normalized to the brute-force
	// point (Δ = 0, 0); the paper's Figure 10 contours. Zero until
	// normalized by ExploreTradeoffs.
	RuntimeRelative float64 `json:"runtime_relative"`
	// IterationsToGoal is how many iterations the goal took.
	IterationsToGoal int `json:"iterations_to_goal"`
	// ReachedGoal reports whether the coverage goal was attained within
	// MaxIterations.
	ReachedGoal bool `json:"reached_goal"`
	// TruthSize is the reference failing-cell count at the target.
	TruthSize int `json:"truth_size"`
}

// Speedup returns the runtime speedup over brute force (1/RuntimeRelative).
func (p TradeoffPoint) Speedup() float64 {
	if p.RuntimeRelative <= 0 {
		return 0
	}
	return 1 / p.RuntimeRelative
}

// ExploreTradeoffs measures every point of the reach grid. mkStation must
// return a freshly constructed station over an *identically seeded* device
// each call, so that every grid point profiles the same chip from the same
// initial state. Points are returned in row-major order: for each delta
// temperature, each delta interval. Cancelling ctx aborts the grid.
func ExploreTradeoffs(ctx context.Context, mkStation func() (*memctrl.Station, error), cfg TradeoffConfig) ([]TradeoffPoint, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}

	// Build the scoring reference first: every grid point scores against the
	// same brute-force profile at target conditions.
	var reference *FailureSet
	if cfg.Reference == ReferenceEmpirical {
		st, err := mkStation()
		if err != nil {
			return nil, fmt.Errorf("core: mkStation: %w", err)
		}
		if st.Ambient() != cfg.TargetTempC {
			st.SetAmbient(cfg.TargetTempC)
		}
		refOpt := cfg.Options
		refOpt.fill()
		refOpt.Iterations = cfg.Iterations
		refOpt.OnIteration = nil
		refRes, err := BruteForce(st, cfg.TargetInterval, refOpt)
		if err != nil {
			return nil, err
		}
		reference = refRes.Failures
	}

	// Grid points are independent — each profiles a fresh identically-seeded
	// station and only reads the shared reference — so fan them out on the
	// pool in row-major submission order.
	nI := len(cfg.DeltaIntervals)
	points, err := parallel.Map(ctx, len(cfg.DeltaTemps)*nI, cfg.Workers,
		func(_ context.Context, job int) (TradeoffPoint, error) {
			dT := cfg.DeltaTemps[job/nI]
			dI := cfg.DeltaIntervals[job%nI]
			st, err := mkStation()
			if err != nil {
				return TradeoffPoint{}, fmt.Errorf("core: mkStation: %w", err)
			}
			return measurePoint(st, cfg, reference, ReachConditions{DeltaInterval: dI, DeltaTempC: dT})
		})
	if err != nil {
		return nil, err
	}
	var bruteRuntime float64
	for _, pt := range points {
		if pt.Reach.DeltaInterval == 0 && pt.Reach.DeltaTempC == 0 {
			bruteRuntime = pt.RuntimeSeconds
		}
	}
	if bruteRuntime > 0 {
		for i := range points {
			points[i].RuntimeRelative = points[i].RuntimeSeconds / bruteRuntime
		}
	}

	// Grid-level telemetry is recorded here, sequentially over the ordered
	// result slice, so the snapshot is identical at any worker count.
	if reg := telemetry.FromContext(ctx); reg != nil {
		covHist := reg.Histogram("core_tradeoff_coverage", unitFractionBounds)
		fprHist := reg.Histogram("core_tradeoff_false_positive_rate", unitFractionBounds)
		for _, pt := range points {
			reg.Counter("core_tradeoff_points_total").Inc()
			if pt.ReachedGoal {
				reg.Counter("core_tradeoff_goal_reached_total").Inc()
			}
			covHist.Observe(pt.Coverage)
			fprHist.Observe(pt.FalsePositiveRate)
		}
	}
	return points, nil
}

// unitFractionBounds buckets coverage and false-positive-rate observations.
var unitFractionBounds = []float64{0.5, 0.8, 0.9, 0.95, 0.99, 1}

func measurePoint(st *memctrl.Station, cfg TradeoffConfig, reference *FailureSet, reach ReachConditions) (TradeoffPoint, error) {
	if st.Ambient() != cfg.TargetTempC {
		st.SetAmbient(cfg.TargetTempC)
	}
	truth := reference
	if truth == nil { // ReferenceOracle
		truth = Truth(st, cfg.TargetInterval, cfg.TargetTempC)
	}
	pt := TradeoffPoint{Reach: reach, TruthSize: truth.Len()}

	opt := cfg.Options
	opt.fill()
	opt.Iterations = cfg.MaxIterations
	// Grid points run concurrently; a tracer is single-owner, so profiling
	// trace events are dropped here (the commutative Telemetry counters are
	// kept — they aggregate identically at any worker count).
	opt.Tracer = nil
	var runtimeStart float64
	sampled := false
	opt.OnIteration = func(r *Result) bool {
		cov := Coverage(r.Failures, truth)
		if r.Iterations == cfg.Iterations {
			pt.Coverage = cov
			pt.FalsePositiveRate = FalsePositiveRate(r.Failures, truth)
			sampled = true
		}
		if !pt.ReachedGoal && cov >= cfg.CoverageGoal {
			pt.ReachedGoal = true
			pt.IterationsToGoal = r.Iterations
			pt.RuntimeSeconds = r.Records[len(r.Records)-1].ClockSeconds - runtimeStart
		}
		// Keep going until both measurements are in hand.
		return !(sampled && pt.ReachedGoal)
	}

	// Record the clock before profiling begins (after any temperature
	// settle, which Reach performs internally; settle time is charged to
	// the run's stats but runtime-to-goal measures the profiling loop,
	// matching the paper's per-round runtime model).
	orig := st.Ambient()
	if reach.DeltaTempC > 0 {
		st.SetAmbient(orig + reach.DeltaTempC)
	}
	runtimeStart = st.Clock()
	res, err := BruteForce(st, cfg.TargetInterval+reach.DeltaInterval, opt)
	if reach.DeltaTempC > 0 {
		st.SetAmbient(orig)
	}
	if err != nil {
		return pt, err
	}
	if !sampled {
		// Run ended before the sampling iteration (should not happen since
		// MaxIterations >= Iterations, but stay safe).
		pt.Coverage = Coverage(res.Failures, truth)
		pt.FalsePositiveRate = FalsePositiveRate(res.Failures, truth)
	}
	if !pt.ReachedGoal {
		pt.IterationsToGoal = res.Iterations
		pt.RuntimeSeconds = res.RuntimeSeconds()
	}
	return pt, nil
}
