package core

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestProfileSerializationRoundTrip(t *testing.T) {
	f := func(bits []uint64) bool {
		s := FromBits(bits)
		var buf bytes.Buffer
		if _, err := s.WriteTo(&buf); err != nil {
			return false
		}
		back, err := ReadFailureSet(&buf)
		if err != nil {
			return false
		}
		if back.Len() != s.Len() {
			return false
		}
		for _, b := range s.Sorted() {
			if !back.Contains(b) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestProfileSerializationEmpty(t *testing.T) {
	var buf bytes.Buffer
	if _, err := NewFailureSet().WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFailureSet(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 0 {
		t.Errorf("empty round trip has %d cells", back.Len())
	}
}

func TestProfileSerializationCompact(t *testing.T) {
	// Clustered addresses (the realistic case) compress to a few bytes
	// per cell.
	s := NewFailureSet()
	for i := uint64(0); i < 10000; i++ {
		s.Add(i*137 + 1<<30)
	}
	var buf bytes.Buffer
	n, err := s.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if int64(buf.Len()) != n {
		t.Errorf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	perCell := float64(buf.Len()) / 10000
	if perCell > 3 {
		t.Errorf("%.2f bytes/cell, want < 3 for clustered profiles", perCell)
	}
}

func TestReadFailureSetRejectsGarbage(t *testing.T) {
	if _, err := ReadFailureSet(strings.NewReader("")); err == nil {
		t.Error("empty stream accepted")
	}
	if _, err := ReadFailureSet(strings.NewReader("XXXX....")); err == nil {
		t.Error("bad magic accepted")
	}
	// Truncated stream: valid header claiming entries that are missing.
	var buf bytes.Buffer
	s := NewFailureSet(1, 2, 3)
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-1]
	if _, err := ReadFailureSet(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated stream accepted")
	}
	// Duplicate entry (zero delta after the first).
	bad := []byte{'R', 'P', 'R', '1', 2, 5, 0}
	if _, err := ReadFailureSet(bytes.NewReader(bad)); err == nil {
		t.Error("duplicate address accepted")
	}
}

func TestProfileSerializationThroughProfiler(t *testing.T) {
	// End-to-end: profile, persist, reload, and verify the reloaded
	// profile scores identically.
	st := newStation(t, 30)
	res, err := Reach(st, 1.024, ReachConditions{DeltaInterval: 0.25},
		Options{Iterations: 4, FreshRandomPerIteration: true})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := res.Failures.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFailureSet(&buf)
	if err != nil {
		t.Fatal(err)
	}
	truth := Truth(st, 1.024, 45)
	if Coverage(back, truth) != Coverage(res.Failures, truth) {
		t.Error("reloaded profile scores differently")
	}
}
