package core

import (
	"testing"
	"testing/quick"
)

func TestFailureSetBasics(t *testing.T) {
	s := NewFailureSet(1, 2, 3)
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	if !s.Contains(2) || s.Contains(4) {
		t.Error("Contains wrong")
	}
	if !s.Add(4) {
		t.Error("Add of new element returned false")
	}
	if s.Add(4) {
		t.Error("Add of existing element returned true")
	}
	if got := s.AddAll([]uint64{4, 5, 6}); got != 2 {
		t.Errorf("AddAll returned %d, want 2", got)
	}
}

func TestFailureSetSorted(t *testing.T) {
	s := NewFailureSet(9, 1, 5)
	got := s.Sorted()
	want := []uint64{1, 5, 9}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Sorted = %v", got)
		}
	}
}

func TestFailureSetAlgebra(t *testing.T) {
	a := NewFailureSet(1, 2, 3)
	b := NewFailureSet(3, 4)
	if u := a.Union(b); u.Len() != 4 {
		t.Errorf("Union len = %d", u.Len())
	}
	if i := a.Intersect(b); i.Len() != 1 || !i.Contains(3) {
		t.Errorf("Intersect wrong: %v", i.Sorted())
	}
	if d := a.Diff(b); d.Len() != 2 || d.Contains(3) {
		t.Errorf("Diff wrong: %v", d.Sorted())
	}
	// Operands must be unchanged.
	if a.Len() != 3 || b.Len() != 2 {
		t.Error("set algebra mutated operands")
	}
}

func TestFailureSetClone(t *testing.T) {
	a := NewFailureSet(1)
	c := a.Clone()
	c.Add(2)
	if a.Contains(2) {
		t.Error("Clone shares storage")
	}
}

func TestSetAlgebraProperties(t *testing.T) {
	mk := func(bits []uint64) *FailureSet { return FromBits(bits) }
	f := func(xs, ys []uint64) bool {
		a, b := mk(xs), mk(ys)
		u := a.Union(b)
		i := a.Intersect(b)
		// Inclusion-exclusion.
		if u.Len()+i.Len() != a.Len()+b.Len() {
			return false
		}
		// Diff + intersect partitions a.
		if a.Diff(b).Len()+i.Len() != a.Len() {
			return false
		}
		// Intersection is symmetric.
		return b.Intersect(a).Len() == i.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCoverage(t *testing.T) {
	truth := NewFailureSet(1, 2, 3, 4)
	found := NewFailureSet(1, 2, 99)
	if got := Coverage(found, truth); got != 0.5 {
		t.Errorf("Coverage = %v, want 0.5", got)
	}
	if Coverage(found, NewFailureSet()) != 1 {
		t.Error("empty truth should give coverage 1")
	}
	if Coverage(found, nil) != 1 {
		t.Error("nil truth should give coverage 1")
	}
	if Coverage(NewFailureSet(), truth) != 0 {
		t.Error("empty found should give coverage 0")
	}
}

func TestFalsePositiveRate(t *testing.T) {
	truth := NewFailureSet(1, 2)
	found := NewFailureSet(1, 2, 3, 4)
	if got := FalsePositiveRate(found, truth); got != 0.5 {
		t.Errorf("FPR = %v, want 0.5", got)
	}
	if FalsePositiveRate(NewFailureSet(), truth) != 0 {
		t.Error("empty found should give FPR 0")
	}
	if FalsePositiveRate(nil, truth) != 0 {
		t.Error("nil found should give FPR 0")
	}
	if FalsePositiveRate(truth, truth) != 0 {
		t.Error("perfect profile should give FPR 0")
	}
}
