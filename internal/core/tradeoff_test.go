package core

import (
	"context"
	"testing"
)

func TestTradeoffConfigValidation(t *testing.T) {
	mk := mkStation(20)
	bad := TradeoffConfig{TargetInterval: 0}
	if _, err := ExploreTradeoffs(context.Background(), mk, bad); err == nil {
		t.Error("zero target interval not rejected")
	}
	bad = TradeoffConfig{TargetInterval: 1, DeltaIntervals: nil, DeltaTemps: []float64{0}}
	if _, err := ExploreTradeoffs(context.Background(), mk, bad); err == nil {
		t.Error("empty grid not rejected")
	}
	bad = TradeoffConfig{TargetInterval: 1, CoverageGoal: 1.5,
		DeltaIntervals: []float64{0}, DeltaTemps: []float64{0}}
	if _, err := ExploreTradeoffs(context.Background(), mk, bad); err == nil {
		t.Error("coverage goal > 1 not rejected")
	}
}

func TestExploreTradeoffsGrid(t *testing.T) {
	cfg := TradeoffConfig{
		TargetInterval: 1.024,
		TargetTempC:    45,
		DeltaIntervals: []float64{0, 0.25, 0.5},
		DeltaTemps:     []float64{0},
		Iterations:     6,
		CoverageGoal:   0.9,
		MaxIterations:  30,
		Options:        Options{FreshRandomPerIteration: true, Seed: 5},
	}
	points, err := ExploreTradeoffs(context.Background(), mkStation(21), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("got %d points, want 3", len(points))
	}

	brute := points[0]
	if brute.Reach.DeltaInterval != 0 || brute.Reach.DeltaTempC != 0 {
		t.Fatalf("first point is not the brute-force reference: %+v", brute.Reach)
	}
	if brute.RuntimeRelative != 1 {
		t.Errorf("brute-force relative runtime = %v, want 1", brute.RuntimeRelative)
	}
	if brute.TruthSize == 0 {
		t.Fatal("empty truth")
	}
	// With the empirical reference, the brute-force point scores perfectly
	// against itself (paper Figure 9 at (0,0)).
	if brute.Coverage != 1 || brute.FalsePositiveRate != 0 {
		t.Errorf("brute-force reference point: cov=%v fpr=%v, want 1/0",
			brute.Coverage, brute.FalsePositiveRate)
	}

	// Coverage must stay high along the reach axis; false positives appear.
	for i := 1; i < len(points); i++ {
		if points[i].Coverage < 0.90 {
			t.Errorf("reach coverage dropped too low at point %d: %v",
				i, points[i].Coverage)
		}
	}
	last := points[len(points)-1]
	if last.Coverage < 0.95 {
		t.Errorf("+500ms reach coverage = %v, want > 0.95", last.Coverage)
	}
	if last.FalsePositiveRate <= brute.FalsePositiveRate {
		t.Errorf("reach FPR %v not above brute-force FPR %v",
			last.FalsePositiveRate, brute.FalsePositiveRate)
	}

	// Reach profiling must reach the coverage goal in fewer or equal
	// iterations, and with RuntimeRelative <= ~1.
	if last.ReachedGoal && brute.ReachedGoal &&
		last.IterationsToGoal > brute.IterationsToGoal {
		t.Errorf("reach needed more iterations to goal: %d vs %d",
			last.IterationsToGoal, brute.IterationsToGoal)
	}
	for _, p := range points {
		if p.RuntimeSeconds <= 0 {
			t.Errorf("point %+v has non-positive runtime", p.Reach)
		}
	}
}

func TestReachSpeedupHeadline(t *testing.T) {
	// The paper's headline: profiling ~250ms above the target runs faster
	// to the same coverage than brute force at the target. On the small
	// test chip we check the direction and that the speedup is material.
	cfg := TradeoffConfig{
		TargetInterval: 1.024,
		TargetTempC:    45,
		DeltaIntervals: []float64{0, 0.25},
		DeltaTemps:     []float64{0},
		Iterations:     8,
		CoverageGoal:   0.95,
		MaxIterations:  80,
		Options:        Options{FreshRandomPerIteration: true, Seed: 9},
	}
	points, err := ExploreTradeoffs(context.Background(), mkStation(22), cfg)
	if err != nil {
		t.Fatal(err)
	}
	brute, reach := points[0], points[1]
	if !reach.ReachedGoal {
		t.Fatalf("reach profiling did not reach 95%% coverage in %d iterations", cfg.MaxIterations)
	}
	if reach.Speedup() < 1.3 {
		t.Errorf("reach speedup = %vx (brute %v s, reach %v s); want >= 1.3x",
			reach.Speedup(), brute.RuntimeSeconds, reach.RuntimeSeconds)
	}
}

func TestTradeoffPointSpeedupDegenerate(t *testing.T) {
	p := TradeoffPoint{}
	if p.Speedup() != 0 {
		t.Error("zero relative runtime should give zero speedup")
	}
	p.RuntimeRelative = 0.5
	if p.Speedup() != 2 {
		t.Error("Speedup should be 1/RuntimeRelative")
	}
}
