package core

import (
	"math"
	"testing"

	"reaper/internal/dram"
	"reaper/internal/memctrl"
	"reaper/internal/patterns"
)

// newStation builds a small, amplified chip for profiling tests. Each call
// with the same seed reproduces the identical chip and stochastic stream.
func newStation(t testing.TB, seed uint64) *memctrl.Station {
	t.Helper()
	st, err := mkStation(seed)()
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func mkStation(seed uint64) func() (*memctrl.Station, error) {
	return func() (*memctrl.Station, error) {
		dev, err := dram.NewDevice(dram.Config{
			Geometry:  dram.Geometry{Banks: 8, RowsPerBank: 64, WordsPerRow: 256},
			Vendor:    dram.VendorB(),
			Seed:      seed,
			WeakScale: 20,
		})
		if err != nil {
			return nil, err
		}
		return memctrl.NewStation(dev, nil, memctrl.DefaultTiming())
	}
}

func TestBruteForceValidation(t *testing.T) {
	st := newStation(t, 1)
	if _, err := BruteForce(nil, 1, Options{}); err == nil {
		t.Error("nil station not rejected")
	}
	if _, err := BruteForce(st, 0, Options{}); err == nil {
		t.Error("zero interval not rejected")
	}
	if _, err := BruteForce(st, -1, Options{}); err == nil {
		t.Error("negative interval not rejected")
	}
}

func TestBruteForceFindsFailures(t *testing.T) {
	st := newStation(t, 2)
	res, err := BruteForce(st, 2.048, Options{Iterations: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failures.Len() == 0 {
		t.Fatal("no failures found at 2048ms")
	}
	if res.Iterations != 4 {
		t.Errorf("Iterations = %d, want 4", res.Iterations)
	}
	// 4 iterations x 12 standard patterns.
	if len(res.Records) != 48 {
		t.Errorf("Records = %d, want 48", len(res.Records))
	}
	if res.ProfilingInterval != 2.048 {
		t.Errorf("ProfilingInterval = %v", res.ProfilingInterval)
	}
}

func TestBruteForceRuntimeMatchesEquation9(t *testing.T) {
	st := newStation(t, 3)
	bytes := st.Device().Geometry().TotalBytes()
	pass := st.Timing().PassSeconds(bytes)
	const iters = 3
	res, err := BruteForce(st, 1.024, Options{Iterations: iters})
	if err != nil {
		t.Fatal(err)
	}
	// Equation 9: (T_REFI + T_wr + T_rd) * N_dp * N_it.
	ndp := 12.0
	want := (1.024 + 2*pass) * ndp * iters
	if math.Abs(res.RuntimeSeconds()-want) > 1e-6 {
		t.Errorf("runtime = %v, want Eq 9's %v", res.RuntimeSeconds(), want)
	}
	if math.Abs(res.Stats.WaitSeconds-1.024*ndp*iters) > 1e-9 {
		t.Errorf("wait seconds = %v", res.Stats.WaitSeconds)
	}
}

func TestBruteForceCoverageGrowsWithIterations(t *testing.T) {
	st := newStation(t, 4)
	truth := Truth(st, 2.048, 45)
	if truth.Len() < 50 {
		t.Fatalf("truth too small: %d", truth.Len())
	}
	var covAt1, covAtEnd float64
	_, err := BruteForce(st, 2.048, Options{
		Iterations:              12,
		FreshRandomPerIteration: true,
		OnIteration: func(r *Result) bool {
			cov := Coverage(r.Failures, truth)
			if r.Iterations == 1 {
				covAt1 = cov
			}
			covAtEnd = cov
			return true
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if covAtEnd <= covAt1 {
		t.Errorf("coverage did not grow: %v -> %v", covAt1, covAtEnd)
	}
	if covAtEnd < 0.5 {
		t.Errorf("brute-force coverage after 12 iterations only %v", covAtEnd)
	}
}

func TestOnIterationEarlyStop(t *testing.T) {
	st := newStation(t, 5)
	res, err := BruteForce(st, 1.024, Options{
		Iterations:  16,
		OnIteration: func(r *Result) bool { return r.Iterations < 3 },
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 3 {
		t.Errorf("early stop at %d iterations, want 3", res.Iterations)
	}
}

func TestReachValidation(t *testing.T) {
	st := newStation(t, 6)
	if _, err := Reach(st, 1.024, ReachConditions{DeltaInterval: -0.1}, Options{}); err == nil {
		t.Error("negative delta interval not rejected")
	}
	if _, err := Reach(st, 1.024, ReachConditions{DeltaTempC: -1}, Options{}); err == nil {
		t.Error("negative delta temp not rejected")
	}
}

func TestReachBeatsBruteForceCoverage(t *testing.T) {
	const target = 1.024
	const iters = 8

	stBrute := newStation(t, 7)
	truth := Truth(stBrute, target, 45)
	brute, err := BruteForce(stBrute, target, Options{Iterations: iters, FreshRandomPerIteration: true})
	if err != nil {
		t.Fatal(err)
	}

	stReach := newStation(t, 7)
	reach, err := Reach(stReach, target, ReachConditions{DeltaInterval: 0.25}, Options{Iterations: iters, FreshRandomPerIteration: true})
	if err != nil {
		t.Fatal(err)
	}

	covB := Coverage(brute.Failures, truth)
	covR := Coverage(reach.Failures, truth)
	if covR <= covB {
		t.Errorf("reach coverage %v not above brute-force %v", covR, covB)
	}
	if covR < 0.95 {
		t.Errorf("reach coverage %v below 95%% at +250ms", covR)
	}
	// Reach must produce false positives (that is its cost).
	fpr := FalsePositiveRate(reach.Failures, truth)
	if fpr <= 0 {
		t.Error("reach profiling produced no false positives; model suspect")
	}
	if fpr > 0.8 {
		t.Errorf("reach FPR %v absurdly high at +250ms", fpr)
	}
	if reach.ProfilingInterval != target+0.25 {
		t.Errorf("reach profiled at %v", reach.ProfilingInterval)
	}
}

func TestReachTemperatureRestored(t *testing.T) {
	st := newStation(t, 8)
	before := st.Ambient()
	_, err := Reach(st, 1.024, ReachConditions{DeltaTempC: 5}, Options{Iterations: 1})
	if err != nil {
		t.Fatal(err)
	}
	if st.Ambient() != before {
		t.Errorf("ambient not restored: %v -> %v", before, st.Ambient())
	}
}

func TestReachHigherTemperatureIncreasesCoverage(t *testing.T) {
	const target = 1.024
	const iters = 6

	base := newStation(t, 9)
	truth := Truth(base, target, 45)
	brute, err := BruteForce(base, target, Options{Iterations: iters})
	if err != nil {
		t.Fatal(err)
	}

	hot := newStation(t, 9)
	reach, err := Reach(hot, target, ReachConditions{DeltaTempC: 5}, Options{Iterations: iters})
	if err != nil {
		t.Fatal(err)
	}
	if Coverage(reach.Failures, truth) <= Coverage(brute.Failures, truth) {
		t.Errorf("temperature reach did not raise coverage: %v vs %v",
			Coverage(reach.Failures, truth), Coverage(brute.Failures, truth))
	}
}

func TestFreshRandomPerIterationFindsMore(t *testing.T) {
	// With only random patterns, refreshing the seed each iteration must
	// discover at least as many unique failures as a frozen seed.
	run := func(fresh bool) int {
		st := newStation(t, 10)
		res, err := BruteForce(st, 2.048, Options{
			Patterns:                []patterns.Pattern{patterns.Random(1), patterns.Invert(patterns.Random(1))},
			Iterations:              10,
			FreshRandomPerIteration: fresh,
			Seed:                    99,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Failures.Len()
	}
	frozen := run(false)
	fresh := run(true)
	if fresh <= frozen {
		t.Errorf("fresh random patterns found %d, frozen found %d; expected fresh > frozen",
			fresh, frozen)
	}
}

func TestRecordsTrackNewVsRepeat(t *testing.T) {
	st := newStation(t, 11)
	res, err := BruteForce(st, 2.048, Options{Iterations: 3})
	if err != nil {
		t.Fatal(err)
	}
	totalNew := 0
	for _, rec := range res.Records {
		if rec.NewFailures > rec.Failures {
			t.Fatalf("record %+v has more new than total", rec)
		}
		totalNew += rec.NewFailures
	}
	if totalNew != res.Failures.Len() {
		t.Errorf("sum of new failures %d != cumulative set %d", totalNew, res.Failures.Len())
	}
	// Clock must be monotonically increasing across records.
	prev := 0.0
	for _, rec := range res.Records {
		if rec.ClockSeconds <= prev {
			t.Fatal("record clocks not increasing")
		}
		prev = rec.ClockSeconds
	}
}

func TestTruthStableAcrossSameSeed(t *testing.T) {
	a := Truth(newStation(t, 12), 1.024, 45)
	b := Truth(newStation(t, 12), 1.024, 45)
	if a.Len() != b.Len() {
		t.Errorf("truth not reproducible: %d vs %d", a.Len(), b.Len())
	}
	if a.Len() == 0 {
		t.Fatal("empty truth at 1024ms")
	}
}
