package core

import (
	"fmt"
	"strings"

	"reaper/internal/dram"
	"reaper/internal/memctrl"
	"reaper/internal/patterns"
	"reaper/internal/telemetry"
)

// TestStation is the hardware interface profiling needs: the SoftMC-style
// write-pattern / refresh-control / wait / read-compare operations plus
// time accounting and temperature control. memctrl.Station implements it
// for one chip; module.Module implements it for a multi-chip module.
type TestStation interface {
	WritePattern(p dram.RowData)
	DisableRefresh()
	EnableRefresh()
	Wait(seconds float64)
	ReadCompare() []uint64
	Clock() float64
	Stats() memctrl.Stats
	Ambient() float64
	SetAmbient(tempC float64) float64
}

// memctrl.Station must satisfy TestStation.
var _ TestStation = (*memctrl.Station)(nil)

// Options configures a profiling run (both brute-force and reach).
type Options struct {
	// Patterns are the data patterns tested each iteration. Nil selects
	// the standard six patterns and their inverses (Section 3.2).
	Patterns []patterns.Pattern

	// Iterations is the number of testing rounds (Algorithm 1's
	// num_iterations). The paper's tradeoff analysis uses 16. Defaults to
	// 16 when zero.
	Iterations int

	// FreshRandomPerIteration re-seeds the random pattern(s) every
	// iteration so each round explores new neighbourhood data, as the
	// paper's methodology does. Only patterns created by
	// patterns.Random are affected.
	FreshRandomPerIteration bool

	// Seed drives the fresh random patterns.
	Seed uint64

	// OnIteration, if non-nil, is invoked after each iteration with the
	// cumulative result so far; returning false stops profiling early.
	// Used by the tradeoff explorer to stop at a coverage goal.
	OnIteration func(r *Result) bool

	// Telemetry, when non-nil, receives the core_profiling_* metrics (round
	// and pass counters, new-failures-per-pass distribution, simulated
	// seconds). All writes are commutative, so sharing one registry across
	// concurrent runs is safe and deterministic.
	Telemetry *telemetry.Registry

	// Tracer, when non-nil, receives round-start / iteration / round-end
	// trace events stamped with the station's simulated clock. A tracer is
	// single-owner: never share one across concurrent profiling runs (the
	// tradeoff explorer strips it for exactly that reason).
	Tracer *telemetry.Tracer
}

func (o *Options) fill() {
	if o.Iterations == 0 {
		o.Iterations = 16
	}
	if len(o.Patterns) == 0 {
		o.Patterns = patterns.StandardWithInverses(o.Seed)
	}
}

// IterationRecord summarizes one pass of one data pattern during profiling.
type IterationRecord struct {
	Iteration   int
	PatternName string
	// Failures is the number of cells that failed this pass.
	Failures int
	// NewFailures is how many of them had not been seen before in this run.
	NewFailures int
	// ClockSeconds is the simulated time at the end of the pass.
	ClockSeconds float64
}

// Result is the outcome of a profiling run.
type Result struct {
	// Failures is the cumulative set of failing cells discovered.
	Failures *FailureSet
	// Records holds one entry per (iteration, pattern) pass.
	Records []IterationRecord
	// Stats is the simulated-time accounting for the run (Equation 9's
	// terms come out of it).
	Stats memctrl.Stats
	// ProfilingInterval and ProfilingTempC are the conditions profiling
	// actually ran at (for reach profiling these exceed the target).
	ProfilingInterval float64
	ProfilingTempC    float64
	// Iterations actually executed (may be less than requested when
	// OnIteration stopped the run).
	Iterations int
}

// RuntimeSeconds returns the total simulated time the run consumed.
func (r *Result) RuntimeSeconds() float64 { return r.Stats.Total() }

// BruteForce runs the paper's Algorithm 1 on the station: for each
// iteration and each data pattern, write the pattern everywhere, disable
// refresh, wait for tREFI, re-enable refresh, and collect the failures.
// tREFI is in seconds.
func BruteForce(st TestStation, tREFI float64, opt Options) (*Result, error) {
	if st == nil {
		return nil, fmt.Errorf("core: nil station")
	}
	if tREFI <= 0 {
		return nil, fmt.Errorf("core: non-positive profiling interval %v", tREFI)
	}
	opt.fill()

	res := &Result{
		Failures:          NewFailureSet(),
		ProfilingInterval: tREFI,
		ProfilingTempC:    st.Ambient(),
	}
	before := st.Stats()
	// Stations backed by the sparse active-window index (both station kinds
	// are) expose cumulative disposition counters; record this round's delta
	// so the dram_index_* series track how much per-cell work the index
	// avoided. Deltas are sums of per-chip counters, hence worker-count
	// invariant.
	ix, hasIx := st.(interface{ IndexStats() dram.IndexStats })
	var ixBefore dram.IndexStats
	if hasIx {
		ixBefore = ix.IndexStats()
	}
	// Likewise for the incremental round cache and banked-sweep counters; both
	// are deterministic and worker-count invariant by construction.
	ic, hasIc := st.(interface{ IncrStats() dram.IncrStats })
	var icBefore dram.IncrStats
	if hasIc {
		icBefore = ic.IncrStats()
	}
	bk, hasBk := st.(interface{ BankStats() dram.BankStats })
	var bkBefore dram.BankStats
	if hasBk {
		bkBefore = bk.BankStats()
	}

	reg := opt.Telemetry
	reg.Counter("core_profiling_rounds_total").Inc()
	newPerPass := reg.Histogram("core_profiling_new_failures_per_pass", newFailureBounds)
	opt.Tracer.Emit(st.Clock(), "round-start",
		fmt.Sprintf("interval=%gs temp=%gC iterations=%d patterns=%d",
			tREFI, st.Ambient(), opt.Iterations, len(opt.Patterns)))

	for it := 1; it <= opt.Iterations; it++ {
		ps := opt.Patterns
		if opt.FreshRandomPerIteration {
			ps = refreshRandoms(ps, opt.Seed, it)
		}
		for _, p := range ps {
			st.WritePattern(p)
			st.DisableRefresh()
			st.Wait(tREFI)
			st.EnableRefresh()
			fails := st.ReadCompare()
			added := res.Failures.AddAll(fails)
			reg.Counter("core_profiling_passes_total", telemetry.L("pattern", patternLabel(p.Name()))).Inc()
			newPerPass.Observe(float64(added))
			res.Records = append(res.Records, IterationRecord{
				Iteration:    it,
				PatternName:  p.Name(),
				Failures:     len(fails),
				NewFailures:  added,
				ClockSeconds: st.Clock(),
			})
		}
		res.Iterations = it
		opt.Tracer.Emit(st.Clock(), "iteration",
			fmt.Sprintf("iter=%d unique_failures=%d", it, res.Failures.Len()))
		if opt.OnIteration != nil && !opt.OnIteration(res) {
			break
		}
	}
	res.Stats = diffStats(st.Stats(), before)
	if hasIx {
		d := ix.IndexStats().Sub(ixBefore)
		reg.Counter("dram_index_cells_skipped_total").Add(int64(d.Skipped))
		reg.Counter("dram_index_cells_flipped_total").Add(int64(d.Flipped))
		reg.Counter("dram_index_cells_sampled_total").Add(int64(d.Sampled))
		reg.Counter("dram_index_cells_slowpath_total").Add(int64(d.Slowpath))
	}
	if hasIc {
		d := ic.IncrStats().Sub(icBefore)
		reg.Counter("dram_incr_sweeps_fast_total").Add(int64(d.FastSweeps))
		reg.Counter("dram_incr_sweeps_full_total").Add(int64(d.FullSweeps))
		reg.Counter("dram_incr_cells_reused_total").Add(int64(d.ReusedCells))
		reg.Counter("dram_incr_cells_dirty_total").Add(int64(d.DirtyCells))
	}
	if hasBk {
		d := bk.BankStats().Sub(bkBefore)
		reg.Counter("dram_bank_sweeps_total").Add(int64(d.BankedSweeps))
		reg.Counter("dram_bank_shards_total").Add(int64(d.BankShards))
	}
	reg.Histogram("core_profiling_round_seconds", roundSecondsBounds).Observe(res.RuntimeSeconds())
	opt.Tracer.Emit(st.Clock(), "round-end",
		fmt.Sprintf("iterations=%d unique_failures=%d sim_seconds=%.3f",
			res.Iterations, res.Failures.Len(), res.RuntimeSeconds()))
	return res, nil
}

// Histogram bounds for the profiling metrics: new failures discovered per
// pass (geometric, zero-heavy once a profile converges) and simulated
// seconds per round.
var (
	newFailureBounds   = []float64{0, 1, 4, 16, 64, 256, 1024}
	roundSecondsBounds = []float64{1, 10, 60, 600, 3600, 36000}
)

// patternLabel collapses a parameterized pattern name — random(0x…), or its
// inverse — to its family, so the per-pattern pass counter keeps a bounded
// label set instead of one series per random seed.
func patternLabel(name string) string {
	if i := strings.IndexByte(name, '('); i >= 0 {
		return name[:i]
	}
	return name
}

// refreshRandoms replaces every random pattern (and inverted random) with a
// freshly seeded one, leaving the fixed patterns intact.
func refreshRandoms(ps []patterns.Pattern, seed uint64, iteration int) []patterns.Pattern {
	out := make([]patterns.Pattern, len(ps))
	for i, p := range ps {
		name := p.Name()
		fresh := seed ^ uint64(iteration)*0x9e3779b97f4a7c15 ^ uint64(i)
		switch {
		case len(name) >= 6 && name[:6] == "random":
			out[i] = patterns.Random(fresh)
		case len(name) >= 7 && name[:7] == "~random":
			out[i] = patterns.Invert(patterns.Random(fresh))
		default:
			out[i] = p
		}
	}
	return out
}

func diffStats(after, before memctrl.Stats) memctrl.Stats {
	return memctrl.Stats{
		WriteSeconds: after.WriteSeconds - before.WriteSeconds,
		ReadSeconds:  after.ReadSeconds - before.ReadSeconds,
		WaitSeconds:  after.WaitSeconds - before.WaitSeconds,
		IdleSeconds:  after.IdleSeconds - before.IdleSeconds,
		WritePasses:  after.WritePasses - before.WritePasses,
		ReadPasses:   after.ReadPasses - before.ReadPasses,
		BytesWritten: after.BytesWritten - before.BytesWritten,
		BytesRead:    after.BytesRead - before.BytesRead,
	}
}

// ReachConditions specify how far profiling conditions exceed the target
// conditions (the paper's Δ refresh interval and Δ temperature axes of
// Figures 9 and 10).
type ReachConditions struct {
	// DeltaInterval is added to the target refresh interval, in seconds.
	DeltaInterval float64 `json:"delta_interval_s"`
	// DeltaTempC is added to the target ambient temperature, in °C.
	DeltaTempC float64 `json:"delta_temp_c"`
}

// Reach runs reach profiling: it raises the station's ambient temperature by
// reach.DeltaTempC, profiles at target interval + reach.DeltaInterval using
// Algorithm 1, and restores the original ambient afterwards. With zero reach
// deltas it degenerates to brute-force profiling at the target conditions.
func Reach(st TestStation, targetInterval float64, reach ReachConditions, opt Options) (*Result, error) {
	if reach.DeltaInterval < 0 || reach.DeltaTempC < 0 {
		return nil, fmt.Errorf("core: reach deltas must be non-negative, got %+v", reach)
	}
	orig := st.Ambient()
	if reach.DeltaTempC > 0 {
		st.SetAmbient(orig + reach.DeltaTempC)
	}
	res, err := BruteForce(st, targetInterval+reach.DeltaInterval, opt)
	if reach.DeltaTempC > 0 {
		st.SetAmbient(orig)
	}
	return res, err
}

// Truth queries the station's device oracle for the ground-truth failing set
// at the given target conditions, evaluated at the station's current
// simulated time. This is only possible on the simulator — it is how
// profiler quality is scored.
func Truth(st *memctrl.Station, targetInterval, targetTempC float64) *FailureSet {
	bits := st.Device().TrueFailingSet(targetInterval, targetTempC, st.Clock(), dram.OracleThreshold)
	return FromBits(bits)
}
