package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Profile persistence: mitigation mechanisms store the failing-cell set
// (ArchShield keeps its FaultMap in a reserved DRAM region; a host OS would
// keep it on disk across reboots). The format is a compact sorted
// delta-varint stream with a header and a length, so profiles for
// multi-gigabit devices stay small and load in one pass.

// profileMagic identifies the serialization format.
var profileMagic = [4]byte{'R', 'P', 'R', '1'}

// WriteTo serializes the set: magic, uvarint count, then uvarint deltas of
// the sorted addresses. It returns the number of bytes written.
func (s *FailureSet) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	n := int64(0)
	m, err := bw.Write(profileMagic[:])
	n += int64(m)
	if err != nil {
		return n, err
	}
	var buf [binary.MaxVarintLen64]byte
	put := func(v uint64) error {
		k := binary.PutUvarint(buf[:], v)
		m, err := bw.Write(buf[:k])
		n += int64(m)
		return err
	}
	sorted := s.Sorted()
	if err := put(uint64(len(sorted))); err != nil {
		return n, err
	}
	prev := uint64(0)
	for i, bit := range sorted {
		delta := bit
		if i > 0 {
			delta = bit - prev
		}
		if err := put(delta); err != nil {
			return n, err
		}
		prev = bit
	}
	if err := bw.Flush(); err != nil {
		return n, err
	}
	return n, nil
}

// ReadFailureSet deserializes a profile written by WriteTo.
func ReadFailureSet(r io.Reader) (*FailureSet, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("core: profile header: %w", err)
	}
	if magic != profileMagic {
		return nil, fmt.Errorf("core: not a profile stream (magic %q)", magic)
	}
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("core: profile count: %w", err)
	}
	const maxProfile = 1 << 32
	if count > maxProfile {
		return nil, fmt.Errorf("core: profile claims %d cells, refusing", count)
	}
	out := &FailureSet{m: make(map[uint64]struct{}, count)}
	prev := uint64(0)
	for i := uint64(0); i < count; i++ {
		delta, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("core: profile entry %d: %w", i, err)
		}
		if i > 0 && delta == 0 {
			return nil, fmt.Errorf("core: profile entry %d: duplicate address", i)
		}
		bit := prev + delta
		if i > 0 && bit < prev {
			return nil, fmt.Errorf("core: profile entry %d: address overflow", i)
		}
		out.m[bit] = struct{}{}
		prev = bit
	}
	return out, nil
}
