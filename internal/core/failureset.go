// Package core implements the paper's contribution: DRAM retention failure
// profiling. It provides the brute-force baseline (Algorithm 1), reach
// profiling (Section 6 — profiling at a longer refresh interval and/or
// higher temperature than the target conditions), the three evaluation
// metrics (coverage, false positive rate, runtime), and the tradeoff
// explorer that regenerates the paper's Figures 9 and 10.
package core

import "slices"

// FailureSet is a set of failing cell addresses (global bit indices).
// The zero value is not usable; construct with NewFailureSet.
type FailureSet struct {
	m map[uint64]struct{}
}

// NewFailureSet returns an empty set, optionally pre-populated with bits.
func NewFailureSet(bits ...uint64) *FailureSet {
	s := &FailureSet{m: make(map[uint64]struct{}, len(bits))}
	for _, b := range bits {
		s.m[b] = struct{}{}
	}
	return s
}

// FromBits builds a set from a slice of bit addresses.
func FromBits(bits []uint64) *FailureSet { return NewFailureSet(bits...) }

// Len returns the number of cells in the set.
func (s *FailureSet) Len() int { return len(s.m) }

// Contains reports membership.
func (s *FailureSet) Contains(bit uint64) bool {
	_, ok := s.m[bit]
	return ok
}

// Add inserts a cell and reports whether it was new.
func (s *FailureSet) Add(bit uint64) bool {
	if _, ok := s.m[bit]; ok {
		return false
	}
	s.m[bit] = struct{}{}
	return true
}

// AddAll inserts all bits and returns how many were new.
func (s *FailureSet) AddAll(bits []uint64) int {
	added := 0
	for _, b := range bits {
		if s.Add(b) {
			added++
		}
	}
	return added
}

// Union returns a new set containing every cell in s or t.
func (s *FailureSet) Union(t *FailureSet) *FailureSet {
	out := NewFailureSet()
	for b := range s.m {
		out.m[b] = struct{}{}
	}
	for b := range t.m {
		out.m[b] = struct{}{}
	}
	return out
}

// Intersect returns a new set containing every cell in both s and t.
func (s *FailureSet) Intersect(t *FailureSet) *FailureSet {
	small, big := s, t
	if big.Len() < small.Len() {
		small, big = big, small
	}
	out := NewFailureSet()
	for b := range small.m {
		if big.Contains(b) {
			out.m[b] = struct{}{}
		}
	}
	return out
}

// Diff returns a new set containing the cells of s not in t.
func (s *FailureSet) Diff(t *FailureSet) *FailureSet {
	out := NewFailureSet()
	for b := range s.m {
		if !t.Contains(b) {
			out.m[b] = struct{}{}
		}
	}
	return out
}

// Clone returns an independent copy.
func (s *FailureSet) Clone() *FailureSet {
	out := &FailureSet{m: make(map[uint64]struct{}, len(s.m))}
	for b := range s.m {
		out.m[b] = struct{}{}
	}
	return out
}

// Sorted returns the cell addresses in ascending order.
func (s *FailureSet) Sorted() []uint64 {
	out := make([]uint64, 0, len(s.m))
	for b := range s.m {
		out = append(out, b)
	}
	slices.Sort(out)
	return out
}

// Metrics: the three quantities the paper evaluates every profiling
// mechanism on (Section 1 and Section 6).

// Coverage returns |found ∩ truth| / |truth|: the fraction of all possible
// failing cells at the target conditions that the profiler discovered.
// A nil or empty truth set yields coverage 1 (nothing to find).
func Coverage(found, truth *FailureSet) float64 {
	if truth == nil || truth.Len() == 0 {
		return 1
	}
	return float64(found.Intersect(truth).Len()) / float64(truth.Len())
}

// FalsePositiveRate returns |found \ truth| / |found|: the fraction of
// discovered cells that never fail at the target conditions. An empty found
// set yields 0.
func FalsePositiveRate(found, truth *FailureSet) float64 {
	if found == nil || found.Len() == 0 {
		return 0
	}
	return float64(found.Diff(truth).Len()) / float64(found.Len())
}
