// Package exitcode defines the uniform process exit codes shared by the
// reaper command-line tools, so scripts and CI can distinguish "the
// campaign ran and the fleet failed its criterion" from "the tool could not
// run" from "stop requested, resume later" without parsing logs. The full
// table is documented in OBSERVABILITY.md.
package exitcode

const (
	// OK: the run completed and every acceptance criterion was met.
	OK = 0
	// Violated: the run completed but the survival/acceptance criterion
	// was violated (e.g. a soak fleet exceeded its UBER budget).
	Violated = 1
	// ConfigError: configuration or runtime error; the run did not produce
	// a usable report.
	ConfigError = 2
	// PartialCoverage: the run completed but one or more shards were
	// quarantined after exhausting their retry budget; the report covers
	// only the surviving shards and enumerates the quarantined ones.
	PartialCoverage = 3
	// Interrupted: a checkpointed campaign stopped at a segment barrier on
	// request (SIGINT/SIGTERM or -stop-after-checkpoints). The checkpoint
	// directory holds a complete snapshot; rerun with -resume to continue.
	Interrupted = 4
)
