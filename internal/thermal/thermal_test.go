package thermal

import (
	"math"
	"testing"
)

func newTestChamber(t *testing.T) *Chamber {
	t.Helper()
	c, err := NewChamber(DefaultChamberConfig())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewChamberValidation(t *testing.T) {
	cfg := DefaultChamberConfig()
	cfg.TimeConstant = 0
	if _, err := NewChamber(cfg); err == nil {
		t.Error("zero time constant not rejected")
	}
	cfg = DefaultChamberConfig()
	cfg.MinTempC, cfg.MaxTempC = 50, 40
	if _, err := NewChamber(cfg); err == nil {
		t.Error("inverted range not rejected")
	}
}

func TestSetTargetClampsToReliableRange(t *testing.T) {
	c := newTestChamber(t)
	if got := c.SetTarget(80); got != 55 {
		t.Errorf("SetTarget(80) = %v, want 55 (paper's max)", got)
	}
	if got := c.SetTarget(10); got != 40 {
		t.Errorf("SetTarget(10) = %v, want 40 (paper's min)", got)
	}
	if got := c.SetTarget(45); got != 45 {
		t.Errorf("SetTarget(45) = %v, want 45", got)
	}
	if c.Target() != 45 {
		t.Error("Target not persisted")
	}
}

func TestChamberSettlesWithinPaperAccuracy(t *testing.T) {
	c := newTestChamber(t)
	for _, target := range []float64{45, 55, 40, 50} {
		elapsed, ok := c.SettleTo(target, 0.25, 3600)
		if !ok {
			t.Fatalf("chamber failed to settle at %v°C within an hour", target)
		}
		if elapsed <= 0 {
			t.Fatal("settle time must be positive")
		}
		// Hold for 10 minutes and verify the band is maintained.
		worst := 0.0
		for i := 0; i < 600; i++ {
			c.Step(1)
			if d := math.Abs(c.Ambient() - target); d > worst {
				worst = d
			}
		}
		// 0.25°C control accuracy plus a little sensor noise.
		if worst > 0.45 {
			t.Errorf("ambient deviated %v°C from %v°C while holding", worst, target)
		}
	}
}

func TestDeviceTempOffset(t *testing.T) {
	c := newTestChamber(t)
	if _, ok := c.SettleTo(45, 0.25, 3600); !ok {
		t.Fatal("no settle")
	}
	sum := 0.0
	const n = 500
	for i := 0; i < n; i++ {
		c.Step(1)
		sum += c.DeviceTemp()
	}
	mean := sum / n
	// Device held 15°C above the 45°C ambient.
	if math.Abs(mean-60) > 0.5 {
		t.Errorf("device temp mean = %v, want ~60", mean)
	}
}

func TestStepSubdividesLongIntervals(t *testing.T) {
	a := newTestChamber(t)
	b := newTestChamber(t)
	a.SetTarget(50)
	b.SetTarget(50)
	// One big step vs many small ones must land in the same neighbourhood
	// (the big step is internally subdivided, so the plant cannot jump).
	a.Step(600)
	for i := 0; i < 600; i++ {
		b.Step(1)
	}
	if math.Abs(a.ambient-b.ambient) > 1 {
		t.Errorf("subdivided step diverged: %v vs %v", a.ambient, b.ambient)
	}
}

func TestSettleToGivesUp(t *testing.T) {
	c := newTestChamber(t)
	elapsed, ok := c.SettleTo(55, 0.01, 3) // unreachable in 3 seconds
	if ok {
		t.Error("SettleTo claimed success in 3 seconds")
	}
	if elapsed < 3 {
		t.Errorf("elapsed = %v, want >= 3", elapsed)
	}
}

func TestPIDClampsOutput(t *testing.T) {
	p := PID{Kp: 100, Ki: 10, Kd: 0, OutMin: -1, OutMax: 1}
	if out := p.Update(1000, 1); out != 1 {
		t.Errorf("saturated high output = %v, want 1", out)
	}
	if out := p.Update(-1000, 1); out != -1 {
		t.Errorf("saturated low output = %v, want -1", out)
	}
}

func TestPIDAntiWindup(t *testing.T) {
	p := PID{Kp: 0.1, Ki: 1, Kd: 0, OutMin: -1, OutMax: 1}
	// Drive hard into saturation for a long time.
	for i := 0; i < 1000; i++ {
		p.Update(10, 1)
	}
	// With anti-windup the integrator must not have accumulated 10*1000;
	// after the error flips sign the output must leave saturation quickly.
	steps := 0
	for ; steps < 50; steps++ {
		if p.Update(-10, 1) < 1 {
			break
		}
	}
	if steps >= 50 {
		t.Error("integrator wound up: output stuck at saturation after error reversal")
	}
}

func TestPIDZeroDt(t *testing.T) {
	p := PID{Kp: 1, OutMin: -1, OutMax: 1}
	if out := p.Update(0.5, 0); out != 0.5 {
		t.Errorf("zero-dt update = %v, want proportional-only 0.5", out)
	}
}

func TestPIDReset(t *testing.T) {
	p := PID{Kp: 1, Ki: 1, OutMin: -10, OutMax: 10}
	p.Update(5, 1)
	p.Update(5, 1)
	p.Reset()
	if out := p.Update(0, 1); out != 0 {
		t.Errorf("after Reset, zero error gives %v, want 0", out)
	}
}
