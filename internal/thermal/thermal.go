// Package thermal models the paper's thermally controlled DRAM testing
// infrastructure (Section 4): ambient temperature is maintained by heaters
// and fans driven by a microcontroller PID loop to within 0.25°C over a
// reliable range of 40–55°C, and the DRAM device itself is held 15°C above
// ambient by a local heating source that smooths out self-heating.
//
// The model is a first-order thermal plant (heat capacity plus leakage to
// the room) under a PID controller with anti-windup, plus bounded sensor
// noise. Reach profiling's temperature knob acts through this model: an
// experiment commands a setpoint, steps simulated time, and the *device*
// temperature that results feeds the retention model.
package thermal

import (
	"fmt"

	"reaper/internal/rng"
)

// PID is a discrete-time PID controller with output clamping and integral
// anti-windup (the integrator freezes while the output is saturated).
type PID struct {
	Kp, Ki, Kd     float64
	OutMin, OutMax float64

	integ   float64
	prevErr float64
	primed  bool
}

// Update advances the controller by dt seconds given the current error
// (setpoint - measurement) and returns the clamped actuator command.
func (p *PID) Update(err, dt float64) float64 {
	if dt <= 0 {
		return clamp(p.Kp*err+p.integ, p.OutMin, p.OutMax)
	}
	deriv := 0.0
	if p.primed {
		deriv = (err - p.prevErr) / dt
	}
	p.prevErr = err
	p.primed = true

	raw := p.Kp*err + p.integ + p.Ki*err*dt + p.Kd*deriv
	out := clamp(raw, p.OutMin, p.OutMax)
	// Anti-windup: only integrate when not pushing further into saturation.
	if raw == out || (raw > out && err < 0) || (raw < out && err > 0) {
		p.integ += p.Ki * err * dt
	}
	return out
}

// Reset clears the controller state.
func (p *PID) Reset() {
	p.integ = 0
	p.prevErr = 0
	p.primed = false
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// ChamberConfig configures a thermal chamber.
type ChamberConfig struct {
	// RoomTempC is the lab temperature the chamber leaks heat to.
	RoomTempC float64
	// TimeConstant is the plant time constant in seconds (how quickly the
	// chamber approaches equilibrium).
	TimeConstant float64
	// HeaterGainC / CoolerGainC are the equilibrium temperature deltas (°C
	// above/below room) at full heater / full fan drive.
	HeaterGainC float64
	CoolerGainC float64
	// SensorNoiseC is the standard deviation of the temperature sensor
	// noise in °C.
	SensorNoiseC float64
	// DeviceOffsetC is how far above ambient the DRAM device is held by
	// its local heater (the paper uses 15°C).
	DeviceOffsetC float64
	// MinTempC / MaxTempC bound the reliable setpoint range (paper: 40-55).
	MinTempC, MaxTempC float64
	Seed               uint64
}

// DefaultChamberConfig returns a configuration matching the paper's
// infrastructure parameters.
func DefaultChamberConfig() ChamberConfig {
	return ChamberConfig{
		RoomTempC:     25,
		TimeConstant:  60,
		HeaterGainC:   45,
		CoolerGainC:   10,
		SensorNoiseC:  0.05,
		DeviceOffsetC: 15,
		MinTempC:      40,
		MaxTempC:      55,
		Seed:          1,
	}
}

// Chamber is the PID-controlled thermal chamber plus the locally heated
// device under test.
type Chamber struct {
	cfg      ChamberConfig
	pid      PID
	setpoint float64
	ambient  float64 // true plant temperature
	src      *rng.Source
}

// NewChamber builds a chamber initially at room temperature with the
// setpoint at the bottom of the reliable range.
func NewChamber(cfg ChamberConfig) (*Chamber, error) {
	if cfg.TimeConstant <= 0 || cfg.HeaterGainC <= 0 || cfg.CoolerGainC <= 0 {
		return nil, fmt.Errorf("thermal: invalid chamber config %+v", cfg)
	}
	if cfg.MaxTempC <= cfg.MinTempC {
		return nil, fmt.Errorf("thermal: invalid setpoint range [%v, %v]", cfg.MinTempC, cfg.MaxTempC)
	}
	c := &Chamber{
		cfg:      cfg,
		ambient:  cfg.RoomTempC,
		setpoint: cfg.MinTempC,
		src:      rng.New(cfg.Seed),
	}
	// Gains tuned for the default plant; scale with the time constant so
	// the loop stays stable for other plants.
	c.pid = PID{
		Kp:     0.4,
		Ki:     0.4 / cfg.TimeConstant * 4,
		Kd:     0.05 * cfg.TimeConstant / 60,
		OutMin: -1,
		OutMax: 1,
	}
	return c, nil
}

// SetTarget commands a new ambient setpoint, clamped to the reliable range.
// It returns the clamped setpoint.
func (c *Chamber) SetTarget(tempC float64) float64 {
	c.setpoint = clamp(tempC, c.cfg.MinTempC, c.cfg.MaxTempC)
	return c.setpoint
}

// Target returns the current setpoint.
func (c *Chamber) Target() float64 { return c.setpoint }

// Step advances the chamber by dt seconds of simulated time. Long intervals
// are internally subdivided so the control loop stays well sampled.
func (c *Chamber) Step(dt float64) {
	const tick = 1.0 // seconds per control-loop iteration
	for dt > 0 {
		h := tick
		if dt < h {
			h = dt
		}
		c.stepOnce(h)
		dt -= h
	}
}

func (c *Chamber) stepOnce(dt float64) {
	measured := c.Ambient()
	u := c.pid.Update(c.setpoint-measured, dt)
	// u > 0 drives the heater, u < 0 the fans; the plant relaxes toward
	// the equilibrium implied by the actuator command.
	target := c.cfg.RoomTempC
	if u >= 0 {
		target += u * c.cfg.HeaterGainC
	} else {
		target += u * c.cfg.CoolerGainC
	}
	c.ambient += (target - c.ambient) * dt / c.cfg.TimeConstant
}

// Ambient returns the measured ambient temperature (true plant temperature
// plus sensor noise).
func (c *Chamber) Ambient() float64 {
	return c.ambient + c.src.Norm()*c.cfg.SensorNoiseC
}

// DeviceTemp returns the temperature of the device under test: ambient plus
// the local-heater offset, with residual jitter well inside the paper's
// 0.25°C control accuracy.
func (c *Chamber) DeviceTemp() float64 {
	return c.ambient + c.cfg.DeviceOffsetC + c.src.Norm()*c.cfg.SensorNoiseC
}

// Settled reports whether the true ambient temperature is within tol °C of
// the setpoint.
func (c *Chamber) Settled(tol float64) bool {
	d := c.ambient - c.setpoint
	if d < 0 {
		d = -d
	}
	return d <= tol
}

// SettleTo commands a setpoint and steps the chamber until it settles within
// tol, returning the simulated seconds that took. It gives up (returning the
// elapsed time and false) after maxSeconds.
func (c *Chamber) SettleTo(tempC, tol, maxSeconds float64) (float64, bool) {
	c.SetTarget(tempC)
	elapsed := 0.0
	// Require the chamber to hold the band for a sustained window, not
	// just cross through it.
	const holdNeeded = 30.0
	held := 0.0
	for elapsed < maxSeconds {
		c.Step(1)
		elapsed++
		if c.Settled(tol) {
			held++
			if held >= holdNeeded {
				return elapsed, true
			}
		} else {
			held = 0
		}
	}
	return elapsed, false
}
