package thermal

import (
	"math"
	"testing"
)

func TestExcursionWaveform(t *testing.T) {
	e := Excursion{StartSeconds: 100, PeakDeltaC: 10, TauSeconds: 600}
	if err := e.Validate(); err != nil {
		t.Fatal(err)
	}
	if d := e.DeltaAt(50); d != 0 {
		t.Fatalf("delta before onset = %v", d)
	}
	if d := e.DeltaAt(100); math.Abs(d-10) > 1e-12 {
		t.Fatalf("delta at onset = %v, want 10", d)
	}
	// One time constant later the offset has decayed to 1/e.
	if d := e.DeltaAt(700); math.Abs(d-10/math.E) > 1e-9 {
		t.Fatalf("delta after tau = %v, want %v", d, 10/math.E)
	}
	if e.Expired(100, 0.25) {
		t.Fatal("excursion expired at onset")
	}
	if !e.Expired(100+600*8, 0.25) {
		t.Fatal("excursion not expired after 8 tau")
	}
	if e.Expired(0, 0.25) {
		t.Fatal("excursion expired before onset")
	}
	if (Excursion{TauSeconds: 0}).Validate() == nil {
		t.Fatal("zero tau not rejected")
	}
}

func TestExcursionNegativeStep(t *testing.T) {
	e := Excursion{PeakDeltaC: -5, TauSeconds: 300}
	if d := e.DeltaAt(0); math.Abs(d+5) > 1e-12 {
		t.Fatalf("negative step delta = %v", d)
	}
	if !e.Expired(300*10, 0.25) {
		t.Fatal("negative excursion never expires")
	}
}

func TestChamberRejectsDisturbance(t *testing.T) {
	c, err := NewChamber(DefaultChamberConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.SettleTo(45, 0.25, 3600); !ok {
		t.Fatal("chamber never settled")
	}
	c.Disturb(8)
	if c.Settled(1) {
		t.Fatal("disturbance did not move the plant")
	}
	// The PID loop pulls the plant back within a few time constants.
	recovered := false
	for i := 0; i < 1200; i++ {
		c.Step(1)
		if c.Settled(0.25) {
			recovered = true
			break
		}
	}
	if !recovered {
		t.Fatal("PID loop failed to reject an 8°C disturbance within 20 minutes")
	}
}
