package thermal

import (
	"fmt"
	"math"
)

// Excursion models a transient ambient-temperature disturbance: an
// instantaneous step of PeakDeltaC at StartSeconds that relaxes back to the
// baseline exponentially with time constant TauSeconds — an HVAC failure, a
// hot aisle event, or a door opening. Equation 1 makes even a few degrees
// significant: at the paper's ~0.2/°C coefficients a +10°C excursion
// roughly 7x-es the failure rate while it lasts.
//
// An Excursion is a pure waveform; the fault injector applies it to a
// station's ambient, and a Chamber can be kicked with Disturb for
// closed-loop experiments.
type Excursion struct {
	// StartSeconds is the simulated time the excursion begins.
	StartSeconds float64
	// PeakDeltaC is the initial temperature step in °C (may be negative).
	PeakDeltaC float64
	// TauSeconds is the exponential relaxation time constant.
	TauSeconds float64
}

// Validate reports whether the excursion parameters are usable.
func (e Excursion) Validate() error {
	if e.TauSeconds <= 0 {
		return fmt.Errorf("thermal: non-positive excursion tau %v", e.TauSeconds)
	}
	return nil
}

// DeltaAt returns the excursion's temperature offset at simulated time now:
// zero before onset, then PeakDeltaC * exp(-(now-start)/tau).
func (e Excursion) DeltaAt(now float64) float64 {
	if now < e.StartSeconds || e.TauSeconds <= 0 {
		return 0
	}
	return e.PeakDeltaC * math.Exp(-(now-e.StartSeconds)/e.TauSeconds)
}

// Expired reports whether the excursion has decayed below absTolC degrees
// at simulated time now (always false before onset).
func (e Excursion) Expired(now, absTolC float64) bool {
	if now < e.StartSeconds {
		return false
	}
	return math.Abs(e.DeltaAt(now)) < absTolC
}

// Disturb kicks the chamber's true plant temperature by deltaC without
// moving the setpoint — the open-loop disturbance an Excursion's onset
// represents. Subsequent Step calls show the PID loop rejecting it.
func (c *Chamber) Disturb(deltaC float64) {
	c.ambient += deltaC
}
