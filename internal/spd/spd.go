// Package spd implements the paper's Section 6.3: the per-chip
// characterization data needed to choose good reach conditions for a real
// system, in a form a vendor could ship in the on-DIMM serial presence
// detect (SPD) ROM — and a planner that turns that data plus system
// constraints into concrete reach conditions.
//
// Characterize measures a chip the way a vendor (or a user with a test
// station) would: bit-error-rate counts at two intervals fix the BER power
// law, counts at two temperatures fix the Equation 1 coefficient, and a
// small reach-condition grid samples the coverage/false-positive/runtime
// tradeoff space. The result serializes to JSON (the SPD payload) and
// PlanReach answers "what reach conditions should this system profile at?".
package spd

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"

	"reaper/internal/core"
	"reaper/internal/memctrl"
)

// TradeoffSample is one measured reach-condition point.
type TradeoffSample struct {
	DeltaInterval     float64 `json:"delta_interval_s"`
	DeltaTempC        float64 `json:"delta_temp_c"`
	Coverage          float64 `json:"coverage"`
	FalsePositiveRate float64 `json:"false_positive_rate"`
	RuntimeRel        float64 `json:"runtime_rel"`
}

// Characterization is the SPD payload: compact per-chip retention
// statistics.
type Characterization struct {
	Vendor string `json:"vendor"`
	// BERAnchor and BERExponent fit BER(t) = BERAnchor*(t/1.024s)^BERExponent
	// at the 45°C reference.
	BERAnchor   float64 `json:"ber_anchor"`
	BERExponent float64 `json:"ber_exponent"`
	// TempCoeff is the Equation 1 exponential temperature coefficient.
	TempCoeff float64 `json:"temp_coeff"`
	// ReferenceInterval is the target interval the tradeoff samples were
	// measured at.
	ReferenceInterval float64          `json:"reference_interval_s"`
	Samples           []TradeoffSample `json:"samples"`
}

// BER evaluates the fitted bit error rate at interval t (seconds) and
// ambient temperature tempC.
func (c *Characterization) BER(t, tempC float64) float64 {
	if t <= 0 {
		return 0
	}
	return c.BERAnchor * math.Pow(t/1.024, c.BERExponent) * math.Exp(c.TempCoeff*(tempC-45))
}

// Save writes the characterization as JSON.
func (c *Characterization) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(c)
}

// Load reads a characterization from JSON.
func Load(r io.Reader) (*Characterization, error) {
	var c Characterization
	if err := json.NewDecoder(r).Decode(&c); err != nil {
		return nil, fmt.Errorf("spd: decode: %w", err)
	}
	if c.BERAnchor <= 0 || c.BERExponent <= 0 {
		return nil, fmt.Errorf("spd: invalid characterization (anchor %v, exponent %v)",
			c.BERAnchor, c.BERExponent)
	}
	return &c, nil
}

// CharacterizeConfig drives a characterization run.
type CharacterizeConfig struct {
	// Intervals are the two (or more) intervals the BER fit uses.
	Intervals []float64
	// Temps are the two (or more) ambient temperatures for the Equation 1
	// coefficient, measured at Intervals[len-1].
	Temps []float64
	// Iterations per measurement point.
	Iterations int
	// ReferenceInterval and the reach grid for the tradeoff samples.
	ReferenceInterval float64
	DeltaIntervals    []float64
	DeltaTemps        []float64
	// WeakScale is the device's weak-cell amplification; counts are
	// normalized through it so the SPD reports real-device BER.
	WeakScale float64
	Seed      uint64
}

// DefaultCharacterizeConfig returns a quick but usable setup.
func DefaultCharacterizeConfig() CharacterizeConfig {
	return CharacterizeConfig{
		Intervals:         []float64{1.024, 2.048},
		Temps:             []float64{45, 50},
		Iterations:        4,
		ReferenceInterval: 1.024,
		DeltaIntervals:    []float64{0, 0.128, 0.25, 0.5},
		DeltaTemps:        []float64{0, 5},
		WeakScale:         20,
		Seed:              1,
	}
}

// Characterize measures a chip. mkStation must return a fresh station over
// an identically seeded device each call.
func Characterize(ctx context.Context, mkStation func() (*memctrl.Station, error), cfg CharacterizeConfig) (*Characterization, error) {
	if len(cfg.Intervals) < 2 || len(cfg.Temps) < 2 {
		return nil, fmt.Errorf("spd: need >= 2 intervals and >= 2 temps")
	}
	if cfg.WeakScale <= 0 {
		cfg.WeakScale = 1
	}
	st, err := mkStation()
	if err != nil {
		return nil, err
	}
	bits := float64(st.Device().Geometry().TotalBits()) * cfg.WeakScale
	vendor := st.Device().Vendor().Name

	count := func(interval, tempC float64) (float64, error) {
		st.SetAmbient(tempC)
		res, err := core.BruteForce(st, interval, core.Options{
			Iterations:              cfg.Iterations,
			FreshRandomPerIteration: true,
			Seed:                    cfg.Seed,
		})
		if err != nil {
			return 0, err
		}
		return float64(res.Failures.Len()), nil
	}

	// BER power law from the interval sweep at 45°C.
	lo, err := count(cfg.Intervals[0], 45)
	if err != nil {
		return nil, err
	}
	hi, err := count(cfg.Intervals[len(cfg.Intervals)-1], 45)
	if err != nil {
		return nil, err
	}
	if lo <= 0 || hi <= lo {
		return nil, fmt.Errorf("spd: degenerate interval counts %v, %v", lo, hi)
	}
	exponent := math.Log(hi/lo) /
		math.Log(cfg.Intervals[len(cfg.Intervals)-1]/cfg.Intervals[0])
	anchor := lo / bits * math.Pow(1.024/cfg.Intervals[0], exponent)

	// Equation 1 coefficient from the temperature sweep.
	tLo, err := count(cfg.Intervals[len(cfg.Intervals)-1], cfg.Temps[0])
	if err != nil {
		return nil, err
	}
	tHi, err := count(cfg.Intervals[len(cfg.Intervals)-1], cfg.Temps[len(cfg.Temps)-1])
	if err != nil {
		return nil, err
	}
	if tLo <= 0 || tHi <= tLo {
		return nil, fmt.Errorf("spd: degenerate temperature counts %v, %v", tLo, tHi)
	}
	tempCoeff := math.Log(tHi/tLo) / (cfg.Temps[len(cfg.Temps)-1] - cfg.Temps[0])

	c := &Characterization{
		Vendor:            vendor,
		BERAnchor:         anchor,
		BERExponent:       exponent,
		TempCoeff:         tempCoeff,
		ReferenceInterval: cfg.ReferenceInterval,
	}

	// Tradeoff samples via the core explorer on fresh stations.
	points, err := core.ExploreTradeoffs(ctx, mkStation, core.TradeoffConfig{
		TargetInterval: cfg.ReferenceInterval,
		TargetTempC:    45,
		DeltaIntervals: cfg.DeltaIntervals,
		DeltaTemps:     cfg.DeltaTemps,
		Iterations:     8,
		CoverageGoal:   0.95,
		MaxIterations:  32,
		Options:        core.Options{FreshRandomPerIteration: true, Seed: cfg.Seed},
	})
	if err != nil {
		return nil, err
	}
	for _, p := range points {
		c.Samples = append(c.Samples, TradeoffSample{
			DeltaInterval:     p.Reach.DeltaInterval,
			DeltaTempC:        p.Reach.DeltaTempC,
			Coverage:          p.Coverage,
			FalsePositiveRate: p.FalsePositiveRate,
			RuntimeRel:        p.RuntimeRelative,
		})
	}
	return c, nil
}

// Constraints bound the reach conditions a system can accept (Section
// 6.1.2: the mitigation mechanism fixes the tolerable false positive rate,
// reliability fixes the coverage floor).
type Constraints struct {
	MinCoverage          float64
	MaxFalsePositiveRate float64
	// MaxDeltaTempC caps the temperature knob (0 = temperature cannot be
	// manipulated on this system, the REAPER implementation's assumption).
	MaxDeltaTempC float64
}

// PlanReach picks, among the measured samples satisfying the constraints,
// the reach conditions with the lowest profiling runtime. It returns an
// error when no sample qualifies.
func (c *Characterization) PlanReach(con Constraints) (core.ReachConditions, TradeoffSample, error) {
	best := -1
	for i, s := range c.Samples {
		if s.Coverage < con.MinCoverage {
			continue
		}
		if s.FalsePositiveRate > con.MaxFalsePositiveRate {
			continue
		}
		if s.DeltaTempC > con.MaxDeltaTempC {
			continue
		}
		if best < 0 || s.RuntimeRel < c.Samples[best].RuntimeRel {
			best = i
		}
	}
	if best < 0 {
		return core.ReachConditions{}, TradeoffSample{},
			fmt.Errorf("spd: no measured reach condition satisfies coverage >= %v, FPR <= %v, ΔT <= %v",
				con.MinCoverage, con.MaxFalsePositiveRate, con.MaxDeltaTempC)
	}
	s := c.Samples[best]
	return core.ReachConditions{DeltaInterval: s.DeltaInterval, DeltaTempC: s.DeltaTempC}, s, nil
}
