package spd

import (
	"bytes"
	"context"
	"math"
	"strings"
	"testing"

	"reaper/internal/core"
	"reaper/internal/dram"
	"reaper/internal/memctrl"
)

func mkStation(seed uint64) func() (*memctrl.Station, error) {
	return func() (*memctrl.Station, error) {
		dev, err := dram.NewDevice(dram.Config{
			Geometry:  dram.Geometry{Banks: 8, RowsPerBank: 64, WordsPerRow: 256},
			Vendor:    dram.VendorB(),
			Seed:      seed,
			WeakScale: 20,
		})
		if err != nil {
			return nil, err
		}
		return memctrl.NewStation(dev, nil, memctrl.DefaultTiming())
	}
}

func characterized(t *testing.T) *Characterization {
	t.Helper()
	cfg := DefaultCharacterizeConfig()
	c, err := Characterize(context.Background(), mkStation(11), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCharacterizeRecoversCalibration(t *testing.T) {
	c := characterized(t)
	v := dram.VendorB()
	if c.Vendor != "B" {
		t.Errorf("vendor = %s", c.Vendor)
	}
	// The measured BER exponent should be near the calibrated 2.8. The
	// measurement sees single-run multi-pattern union counts, so allow a
	// generous band.
	if math.Abs(c.BERExponent-v.BERExponent) > 1.0 {
		t.Errorf("measured BER exponent = %v, calibrated %v", c.BERExponent, v.BERExponent)
	}
	// The measured Equation 1 coefficient near the calibrated 0.20.
	if math.Abs(c.TempCoeff-v.TempCoeff) > 0.08 {
		t.Errorf("measured temp coeff = %v, calibrated %v", c.TempCoeff, v.TempCoeff)
	}
	// The fitted BER at 1024ms within a factor ~2 of calibration.
	got := c.BER(1.024, 45)
	if got < v.BERAt1024ms/2 || got > v.BERAt1024ms*3 {
		t.Errorf("fitted BER@1024ms = %v, calibrated %v", got, v.BERAt1024ms)
	}
	if c.BER(0, 45) != 0 {
		t.Error("BER at t=0 must be 0")
	}
	if len(c.Samples) != 8 {
		t.Errorf("samples = %d, want 8 (4 intervals x 2 temps)", len(c.Samples))
	}
}

func TestCharacterizeValidation(t *testing.T) {
	cfg := DefaultCharacterizeConfig()
	cfg.Intervals = []float64{1.024}
	if _, err := Characterize(context.Background(), mkStation(1), cfg); err == nil {
		t.Error("single interval not rejected")
	}
	cfg = DefaultCharacterizeConfig()
	cfg.Temps = []float64{45}
	if _, err := Characterize(context.Background(), mkStation(1), cfg); err == nil {
		t.Error("single temperature not rejected")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	c := characterized(t)
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "ber_anchor") {
		t.Error("JSON payload missing expected fields")
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.BERAnchor != c.BERAnchor || back.BERExponent != c.BERExponent ||
		back.TempCoeff != c.TempCoeff || len(back.Samples) != len(c.Samples) {
		t.Error("round trip lost data")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("not json")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := Load(strings.NewReader(`{"ber_anchor":0}`)); err == nil {
		t.Error("degenerate payload accepted")
	}
}

func TestPlanReachPicksCheapestFeasible(t *testing.T) {
	c := &Characterization{
		BERAnchor: 1e-7, BERExponent: 2.8,
		Samples: []TradeoffSample{
			{DeltaInterval: 0, Coverage: 1.0, FalsePositiveRate: 0, RuntimeRel: 1.0},
			{DeltaInterval: 0.25, Coverage: 0.99, FalsePositiveRate: 0.4, RuntimeRel: 0.4},
			{DeltaInterval: 0.5, Coverage: 0.999, FalsePositiveRate: 0.6, RuntimeRel: 0.3},
			{DeltaInterval: 0.25, DeltaTempC: 5, Coverage: 0.999, FalsePositiveRate: 0.7, RuntimeRel: 0.2},
		},
	}
	// FPR cap of 0.5 excludes the cheaper high-FPR points.
	reach, s, err := c.PlanReach(Constraints{MinCoverage: 0.98, MaxFalsePositiveRate: 0.5, MaxDeltaTempC: 10})
	if err != nil {
		t.Fatal(err)
	}
	if reach.DeltaInterval != 0.25 || reach.DeltaTempC != 0 || s.RuntimeRel != 0.4 {
		t.Errorf("planned %+v (%+v), want the +250ms point", reach, s)
	}
	// Allowing higher FPR and temperature picks the fastest point.
	reach, _, err = c.PlanReach(Constraints{MinCoverage: 0.98, MaxFalsePositiveRate: 0.8, MaxDeltaTempC: 10})
	if err != nil {
		t.Fatal(err)
	}
	if reach.DeltaTempC != 5 {
		t.Errorf("planned %+v, want the +5°C point", reach)
	}
	// A system that cannot heat its DRAM is restricted to ΔT = 0.
	reach, _, err = c.PlanReach(Constraints{MinCoverage: 0.98, MaxFalsePositiveRate: 0.8, MaxDeltaTempC: 0})
	if err != nil {
		t.Fatal(err)
	}
	if reach.DeltaTempC != 0 || reach.DeltaInterval != 0.5 {
		t.Errorf("planned %+v, want the +500ms interval-only point", reach)
	}
	// Impossible constraints are reported (drop the self-scoring
	// brute-force point, which trivially has coverage 1 and FPR 0).
	noBrute := &Characterization{Samples: c.Samples[1:]}
	if _, _, err := noBrute.PlanReach(Constraints{MinCoverage: 0.9999, MaxFalsePositiveRate: 0.01}); err == nil {
		t.Error("infeasible constraints not rejected")
	}
}

func TestPlanReachOnMeasuredChip(t *testing.T) {
	c := characterized(t)
	reach, sample, err := c.PlanReach(Constraints{
		MinCoverage:          0.95,
		MaxFalsePositiveRate: 0.6,
		MaxDeltaTempC:        0,
	})
	if err != nil {
		t.Fatal(err)
	}
	if reach.DeltaInterval <= 0 {
		t.Errorf("planned reach %+v should extend the interval", reach)
	}
	if sample.RuntimeRel >= 1 {
		t.Errorf("planned point not faster than brute force: %+v", sample)
	}
	// The plan must actually work: profile a fresh chip at the planned
	// conditions and verify the promised coverage against ground truth.
	st, err := mkStation(11)()
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Reach(st, c.ReferenceInterval, reach,
		core.Options{Iterations: 8, FreshRandomPerIteration: true})
	if err != nil {
		t.Fatal(err)
	}
	truth := core.Truth(st, c.ReferenceInterval, 45)
	if cov := core.Coverage(res.Failures, truth); cov < 0.9 {
		t.Errorf("planned conditions delivered coverage %v, want >= 0.9", cov)
	}
}
