package faultinject

import (
	"math"
	"reflect"
	"testing"

	"reaper/internal/dram"
	"reaper/internal/memctrl"
	"reaper/internal/mitigate"
)

func newStation(t testing.TB, seed uint64) *memctrl.Station {
	t.Helper()
	dev, err := dram.NewDevice(dram.Config{
		Geometry:  dram.Geometry{Banks: 8, RowsPerBank: 64, WordsPerRow: 256},
		Vendor:    dram.VendorB(),
		Seed:      seed,
		WeakScale: 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := memctrl.NewStation(dev, nil, memctrl.DefaultTiming())
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestScenarioValidation(t *testing.T) {
	st := newStation(t, 1)
	bad := []Scenario{
		{Seed: 1, VRTBurstMeanHours: -1},
		{Seed: 1, RoundAbortProb: 1},
		{Seed: 1, TargetedArrivalFraction: 2},
		{Seed: 1, TempExcursionMeanHours: 1}, // missing tau
	}
	for i, sc := range bad {
		if _, err := New(st, 1.024, sc); err == nil {
			t.Errorf("scenario %d not rejected", i)
		}
	}
	if _, err := New(nil, 1.024, DefaultScenario(1, 1.024)); err == nil {
		t.Error("nil station not rejected")
	}
	if _, err := New(st, 0, DefaultScenario(1, 1.024)); err == nil {
		t.Error("zero target not rejected")
	}
}

func TestAllChannelsFireUnderDefaultScenario(t *testing.T) {
	st := newStation(t, 2)
	sc := DefaultScenario(7, 1.024)
	sc.SpareDrainMeanHours = 24
	sc.SpareDrainWords = 8
	inj, err := New(st, 1.024, sc)
	if err != nil {
		t.Fatal(err)
	}
	shield, err := mitigate.NewArchShield(st, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	inj.AttachShield(shield)
	before := shield.SpareWordsLeft()
	weakBefore := st.Device().WeakCellCount()

	inj.RunFor(14 * 24 * 3600) // two simulated weeks
	counts := inj.Counts()
	for _, kind := range []string{"vrt-burst", "dpd-flip", "temp-excursion", "temp-restore",
		"weak-arrival", "spare-drain"} {
		if counts[kind] == 0 {
			t.Errorf("channel %q never fired in two weeks: %v", kind, counts)
		}
	}
	if st.Device().WeakCellCount() <= weakBefore {
		t.Error("no weak cells arrived over two weeks")
	}
	if shield.SpareWordsLeft() >= before {
		t.Error("spare drain consumed nothing")
	}
	// The excursions must have decayed away: ambient back at base.
	if amb := st.Ambient(); math.Abs(amb-45) > 0.2 {
		t.Errorf("ambient = %v after soak, want ~45 (excursion not restored)", amb)
	}
	// Targeted arrivals land in the reserved segment.
	g := st.Device().Geometry()
	inSpare := 0
	for _, c := range st.Device().Cells(0) {
		a := g.AddrOf(c.Bit)
		if shield.InReservedSegment(mitigate.WordAddr{Bank: a.Bank, Row: a.Row, Word: a.Word}) {
			inSpare++
		}
	}
	if inSpare == 0 {
		t.Error("no weak cells in the reserved segment despite targeted arrivals")
	}
}

func TestExcursionRaisesAndRestoresAmbient(t *testing.T) {
	st := newStation(t, 3)
	sc := Scenario{
		Seed:                    5,
		TempExcursionMeanHours:  2,
		TempExcursionPeakC:      10,
		TempExcursionTauSeconds: 1800,
	}
	inj, err := New(st, 1.024, sc)
	if err != nil {
		t.Fatal(err)
	}
	base := st.Ambient()
	sawHot := false
	for i := 0; i < 48; i++ {
		inj.RunFor(900)
		if st.Ambient() > base+2 {
			sawHot = true
		}
	}
	if !sawHot {
		t.Error("ambient never rose during excursion windows")
	}
}

func TestRoundGateAbortsAtConfiguredRate(t *testing.T) {
	st := newStation(t, 4)
	sc := Scenario{Seed: 9, RoundAbortProb: 0.3}
	inj, err := New(st, 1.024, sc)
	if err != nil {
		t.Fatal(err)
	}
	gate := inj.RoundGate()
	aborts := 0
	for i := 0; i < 1000; i++ {
		if gate() != nil {
			aborts++
		}
	}
	if aborts < 250 || aborts > 350 {
		t.Errorf("aborts = %d/1000 at p=0.3, want ~300", aborts)
	}
	if inj.Counts()["round-abort"] != aborts {
		t.Error("abort events not logged")
	}
}

// TestInjectorDeterministicAcrossStationUse is the regression the package
// exists for: the injector's fault sequence depends only on the scenario
// seed, not on how much the station's own RNG was exercised in between.
func TestInjectorDeterministicAcrossStationUse(t *testing.T) {
	run := func(extraLoad bool) ([]Event, []dram.CellInfo) {
		st := newStation(t, 6)
		inj, err := New(st, 1.024, DefaultScenario(11, 1.024))
		if err != nil {
			t.Fatal(err)
		}
		for day := 0; day < 3; day++ {
			inj.RunFor(24 * 3600)
			if extraLoad {
				// Reads consume station-RNG draws for marginal cells;
				// they must not shift any injected fault.
				st.ReadCompare()
			}
		}
		return inj.Events(), st.Device().Cells(0)
	}
	ev1, _ := run(false)
	ev2, cells2 := run(true)
	if !reflect.DeepEqual(ev1, ev2) {
		t.Fatalf("event logs differ with station load:\n%v\nvs\n%v", ev1, ev2)
	}
	// And a replay with the same load is bit-identical including the
	// injected weak-cell population.
	ev3, cells3 := run(true)
	if !reflect.DeepEqual(ev2, ev3) {
		t.Fatal("event log not reproducible")
	}
	if !reflect.DeepEqual(cells2, cells3) {
		t.Fatal("weak-cell population not reproducible")
	}
}
