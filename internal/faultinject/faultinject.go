// Package faultinject perturbs a running station with the retention-failure
// hazards the paper's Section 2.3 identifies as the reasons profiling can
// never be a one-shot activity: variable retention time state flips
// (§2.3.1), data pattern dependence changes on rewrite (§2.3.2), ambient
// temperature excursions (Equation 1), and the slow arrival of new weak
// cells over a device's lifetime (Figure 4). It also models two systems
// hazards of online profiling itself: profiling-round aborts (the host
// reclaims the memory controller mid-round) and mitigation capacity
// exhaustion (ArchShield's spare segment filling up).
//
// Everything is driven by splittable RNG streams derived from one scenario
// seed — one independent stream per fault channel — so a campaign replays
// bit-for-bit for a fixed seed regardless of what other code does with the
// station's own RNG, and regardless of worker count when many chips soak
// in parallel (each chip owns its injector).
package faultinject

import (
	"fmt"
	"math"

	"reaper/internal/dram"
	"reaper/internal/memctrl"
	"reaper/internal/mitigate"
	"reaper/internal/rng"
	"reaper/internal/telemetry"
	"reaper/internal/thermal"
)

// Scenario configures the fault channels. A zero mean/rate disables the
// channel. All times are in hours of simulated clock.
type Scenario struct {
	// Seed drives every channel's stream (split per channel).
	Seed uint64 `json:"seed"`

	// VRT escape bursts (§2.3.1): every ~VRTBurstMeanHours, force up to
	// VRTBurstCells VRT cells into their low-retention state, modelling a
	// cluster of cells whose short state escaped the last profile.
	VRTBurstMeanHours float64 `json:"vrt_burst_mean_hours"`
	VRTBurstCells     int     `json:"vrt_burst_cells"`

	// DPD flips (§2.3.2): every ~DPDFlipMeanHours, rescramble the
	// coupling signature of up to DPDFlipCells cells, so data written
	// after the flip stresses them differently than profiling did.
	DPDFlipMeanHours float64 `json:"dpd_flip_mean_hours"`
	DPDFlipCells     int     `json:"dpd_flip_cells"`

	// Ambient temperature excursions (Equation 1): every
	// ~TempExcursionMeanHours, step the ambient by TempExcursionPeakC and
	// let it decay back with time constant TempExcursionTauSeconds.
	TempExcursionMeanHours  float64 `json:"temp_excursion_mean_hours"`
	TempExcursionPeakC      float64 `json:"temp_excursion_peak_c"`
	TempExcursionTauSeconds float64 `json:"temp_excursion_tau_seconds"`

	// New weak-cell arrival (Figure 4): a Poisson process at
	// WeakArrivalPerHour cells/hour. ArrivalMaxMuFactor caps each
	// arrival's retention time at that multiple of the target interval
	// (so arrivals actually matter at the operating point).
	// TargetedArrivalFraction of arrivals land inside the mitigation
	// mechanism's reserved spare segment, where remapping can never
	// protect them — the paper's mitigation mechanisms still rely on ECC
	// for exactly this residue.
	WeakArrivalPerHour      float64 `json:"weak_arrival_per_hour"`
	ArrivalMaxMuFactor      float64 `json:"arrival_max_mu_factor"`
	TargetedArrivalFraction float64 `json:"targeted_arrival_fraction"`

	// VRTLowMuFactor caps the low-state retention of burst-forced cells
	// at this multiple of the target interval.
	VRTLowMuFactor float64 `json:"vrt_low_mu_factor"`

	// Round aborts: each profiling round is independently aborted with
	// RoundAbortProb (wire RoundGate into firmware.Config.PreRound).
	RoundAbortProb float64 `json:"round_abort_prob"`

	// Spare drain: every ~SpareDrainMeanHours, consume SpareDrainWords
	// of the attached ArchShield's spare segment (competing consumers of
	// mitigation capacity), eventually exhausting it.
	SpareDrainMeanHours float64 `json:"spare_drain_mean_hours"`
	SpareDrainWords     uint64  `json:"spare_drain_words"`
}

// DefaultScenario is the standard soak scenario for a system operating at
// targetInterval: all of Section 2.3's hazards on, at rates that stress a
// multi-week soak without instantly overwhelming SECDED.
func DefaultScenario(seed uint64, targetInterval float64) Scenario {
	_ = targetInterval
	return Scenario{
		Seed:                    seed,
		VRTBurstMeanHours:       6,
		VRTBurstCells:           4,
		DPDFlipMeanHours:        8,
		DPDFlipCells:            6,
		TempExcursionMeanHours:  12,
		TempExcursionPeakC:      8,
		TempExcursionTauSeconds: 1800,
		WeakArrivalPerHour:      0.75,
		ArrivalMaxMuFactor:      0.6,
		TargetedArrivalFraction: 0.4,
		VRTLowMuFactor:          1,
		RoundAbortProb:          0.1,
	}
}

// Validate rejects malformed scenarios.
func (sc Scenario) Validate() error {
	if sc.VRTBurstMeanHours < 0 || sc.DPDFlipMeanHours < 0 ||
		sc.TempExcursionMeanHours < 0 || sc.WeakArrivalPerHour < 0 ||
		sc.SpareDrainMeanHours < 0 {
		return fmt.Errorf("faultinject: negative channel rate")
	}
	if sc.RoundAbortProb < 0 || sc.RoundAbortProb >= 1 {
		return fmt.Errorf("faultinject: round abort probability %v out of [0,1)", sc.RoundAbortProb)
	}
	if sc.TargetedArrivalFraction < 0 || sc.TargetedArrivalFraction > 1 {
		return fmt.Errorf("faultinject: targeted arrival fraction %v out of [0,1]", sc.TargetedArrivalFraction)
	}
	if sc.TempExcursionMeanHours > 0 && sc.TempExcursionTauSeconds <= 0 {
		return fmt.Errorf("faultinject: excursions need a positive tau")
	}
	return nil
}

// Event is one injected fault, stamped with the station clock.
type Event struct {
	ClockHours float64 `json:"clock_hours"`
	Kind       string  `json:"kind"`
	Detail     string  `json:"detail"`
	Cells      int     `json:"cells,omitempty"`
}

// Fault channel indices; each owns an independent RNG stream so adding or
// disabling one channel never shifts another's draw sequence.
const (
	chVRTBurst = iota
	chDPDFlip
	chExcursion
	chArrival
	chSpareDrain
	chAbort
	numChannels
)

var channelNames = [numChannels]string{
	"vrt-burst", "dpd-flip", "temp-excursion", "weak-arrival", "spare-drain", "round-abort",
}

// Injector drives a scenario against one station. Not safe for concurrent
// use; in a fleet soak each chip owns its own injector.
type Injector struct {
	st     *memctrl.Station //lint:serialized-elsewhere station wiring; the stack is rebuilt by construction before RestoreState
	sc     Scenario
	target float64 //lint:serialized-elsewhere pure function of the Scenario; recomputed by construction

	streams [numChannels]*rng.Source
	nextAt  [numChannels]float64 // station clock of next fire; +Inf = off

	shield      *mitigate.ArchShield //lint:serialized-elsewhere component wiring; re-attached by construction before RestoreState
	baseAmbient float64
	excursion   *thermal.Excursion
	excNextAt   float64 // next decay update for the active excursion

	events []Event
	counts map[string]int

	// Telemetry (see Instrument); nil on an uninstrumented injector.
	tele       *telemetry.Registry //lint:serialized-elsewhere telemetry wiring; re-attached by Instrument, nil-safe when absent
	tracer     *telemetry.Tracer   //lint:serialized-elsewhere telemetry wiring; the tracer checkpoints through its own codec
	teleLabels []telemetry.Label   //lint:serialized-elsewhere telemetry wiring; re-attached by Instrument, nil-safe when absent
}

// New builds an injector for a station operating at targetInterval. The
// station must be chamber-less (injected excursions set the ambient
// directly; a PID chamber would fight them on its own timescale).
func New(st *memctrl.Station, targetInterval float64, sc Scenario) (*Injector, error) {
	if st == nil {
		return nil, fmt.Errorf("faultinject: nil station")
	}
	if targetInterval <= 0 {
		return nil, fmt.Errorf("faultinject: non-positive target interval")
	}
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	if sc.ArrivalMaxMuFactor == 0 {
		sc.ArrivalMaxMuFactor = 0.6
	}
	if sc.VRTLowMuFactor == 0 {
		sc.VRTLowMuFactor = 1
	}
	root := rng.New(sc.Seed)
	inj := &Injector{
		st:          st,
		sc:          sc,
		target:      targetInterval,
		baseAmbient: st.Ambient(),
		excNextAt:   math.Inf(1),
		counts:      map[string]int{},
	}
	for i := range inj.streams {
		inj.streams[i] = root.Split(uint64(i) + 1)
	}
	now := st.Clock()
	inj.nextAt[chVRTBurst] = inj.schedule(chVRTBurst, now, sc.VRTBurstMeanHours*3600)
	inj.nextAt[chDPDFlip] = inj.schedule(chDPDFlip, now, sc.DPDFlipMeanHours*3600)
	inj.nextAt[chExcursion] = inj.schedule(chExcursion, now, sc.TempExcursionMeanHours*3600)
	inj.nextAt[chSpareDrain] = inj.schedule(chSpareDrain, now, sc.SpareDrainMeanHours*3600)
	if sc.WeakArrivalPerHour > 0 {
		inj.nextAt[chArrival] = inj.schedule(chArrival, now, 3600/sc.WeakArrivalPerHour)
	} else {
		inj.nextAt[chArrival] = math.Inf(1)
	}
	inj.nextAt[chAbort] = math.Inf(1) // fired by RoundGate, not by the clock
	return inj, nil
}

// schedule draws the channel's next fire time, or +Inf when disabled.
func (inj *Injector) schedule(ch int, now, meanSeconds float64) float64 {
	if meanSeconds <= 0 {
		return math.Inf(1)
	}
	return now + inj.streams[ch].Exp(meanSeconds)
}

// AttachShield connects the mitigation mechanism so targeted arrivals can
// land in its reserved segment and the spare-drain channel can consume it.
func (inj *Injector) AttachShield(sh *mitigate.ArchShield) { inj.shield = sh }

// Instrument attaches a telemetry registry and (optionally) a tracer: every
// injected fault increments faultinject_events_total{channel} (and
// faultinject_cells_injected_total{channel} when cells were touched) and is
// mirrored into the trace ring as a "fault-injection" event. Counters are
// commutative across injectors sharing a registry; a tracer is single-owner
// (one per injector). The labels are stamped on trace events only — e.g.
// chip=3 in a fleet soak.
func (inj *Injector) Instrument(reg *telemetry.Registry, tracer *telemetry.Tracer, labels ...telemetry.Label) {
	inj.tele = reg
	inj.tracer = tracer
	inj.teleLabels = labels
}

// Events returns a copy of the injected-fault log.
func (inj *Injector) Events() []Event {
	out := make([]Event, len(inj.events))
	copy(out, inj.events)
	return out
}

// Counts returns per-kind fault counts.
func (inj *Injector) Counts() map[string]int {
	out := make(map[string]int, len(inj.counts))
	for k, v := range inj.counts {
		out[k] = v
	}
	return out
}

func (inj *Injector) log(kind, detail string, cells int) {
	inj.counts[kind]++
	inj.events = append(inj.events, Event{
		ClockHours: inj.st.Clock() / 3600,
		Kind:       kind,
		Detail:     detail,
		Cells:      cells,
	})
	inj.tele.Counter("faultinject_events_total", telemetry.L("channel", kind)).Inc()
	if cells > 0 {
		inj.tele.Counter("faultinject_cells_injected_total", telemetry.L("channel", kind)).Add(int64(cells))
	}
	inj.tracer.Emit(inj.st.Clock(), "fault-injection", kind+": "+detail, inj.teleLabels...)
}

// RoundGate returns a hook for firmware.Config.PreRound: each call aborts
// the round with probability RoundAbortProb, drawing from the abort
// channel's own stream.
func (inj *Injector) RoundGate() func() error {
	return func() error {
		if inj.streams[chAbort].Bernoulli(inj.sc.RoundAbortProb) {
			inj.log(channelNames[chAbort], "profiling pass preempted", 0)
			return fmt.Errorf("faultinject: profiling round aborted")
		}
		return nil
	}
}

// RunFor advances the station clock by seconds, firing every fault whose
// time falls inside the window (in clock order, ties broken by channel
// index). The station ends exactly seconds later.
func (inj *Injector) RunFor(seconds float64) {
	inj.RunUntil(inj.st.Clock() + seconds)
}

// RunUntil advances the station clock to the absolute time until.
func (inj *Injector) RunUntil(until float64) {
	for {
		now := inj.st.Clock()
		if now >= until {
			return
		}
		ch, at := inj.nextFire()
		if at > until {
			inj.st.Wait(until - now)
			return
		}
		if at > now {
			inj.st.Wait(at - now)
		}
		inj.fire(ch)
	}
}

// nextFire returns the earliest pending fire (channel, clock time); the
// excursion decay updater competes as a pseudo-channel after the real ones.
func (inj *Injector) nextFire() (int, float64) {
	best, at := -1, math.Inf(1)
	for ch, t := range inj.nextAt {
		if t < at {
			best, at = ch, t
		}
	}
	if inj.excNextAt < at {
		return numChannels, inj.excNextAt
	}
	return best, at
}

func (inj *Injector) fire(ch int) {
	now := inj.st.Clock()
	dev := inj.st.Device()
	switch ch {
	case chVRTBurst:
		bits := dev.ForceVRTLowBurst(inj.streams[ch], inj.sc.VRTBurstCells,
			inj.sc.VRTLowMuFactor*inj.target, now)
		inj.log(channelNames[ch], fmt.Sprintf("%d VRT cells forced low", len(bits)), len(bits))
		inj.nextAt[ch] = inj.schedule(ch, now, inj.sc.VRTBurstMeanHours*3600)
	case chDPDFlip:
		bits := dev.RescrambleDPD(inj.streams[ch], inj.sc.DPDFlipCells)
		inj.log(channelNames[ch], fmt.Sprintf("%d coupling signatures rescrambled", len(bits)), len(bits))
		inj.nextAt[ch] = inj.schedule(ch, now, inj.sc.DPDFlipMeanHours*3600)
	case chExcursion:
		inj.excursion = &thermal.Excursion{
			StartSeconds: now,
			PeakDeltaC:   inj.sc.TempExcursionPeakC,
			TauSeconds:   inj.sc.TempExcursionTauSeconds,
		}
		inj.st.SetAmbient(inj.baseAmbient + inj.excursion.DeltaAt(now))
		inj.excNextAt = now + inj.sc.TempExcursionTauSeconds/4
		inj.log(channelNames[ch], fmt.Sprintf("+%.1f °C step, tau %.0f s",
			inj.sc.TempExcursionPeakC, inj.sc.TempExcursionTauSeconds), 0)
		inj.nextAt[ch] = inj.schedule(ch, now, inj.sc.TempExcursionMeanHours*3600)
	case chArrival:
		inj.fireArrival(now)
		inj.nextAt[ch] = inj.schedule(ch, now, 3600/inj.sc.WeakArrivalPerHour)
	case chSpareDrain:
		if inj.shield != nil {
			got := inj.shield.ConsumeSpares(inj.sc.SpareDrainWords)
			inj.log(channelNames[ch], fmt.Sprintf("%d spare words consumed, %d left",
				got, inj.shield.SpareWordsLeft()), 0)
		}
		inj.nextAt[ch] = inj.schedule(ch, now, inj.sc.SpareDrainMeanHours*3600)
	case numChannels: // excursion decay update
		exc := inj.excursion
		if exc == nil {
			inj.excNextAt = math.Inf(1)
			return
		}
		if exc.Expired(now, 0.1) {
			inj.st.SetAmbient(inj.baseAmbient)
			inj.excursion = nil
			inj.excNextAt = math.Inf(1)
			inj.log("temp-restore", fmt.Sprintf("ambient back to %.1f °C", inj.baseAmbient), 0)
			return
		}
		inj.st.SetAmbient(inj.baseAmbient + exc.DeltaAt(now))
		inj.excNextAt = now + exc.TauSeconds/4
	}
}

// fireArrival injects one new weak cell: uniformly random, or (for the
// targeted fraction, when a shield is attached) inside the reserved spare
// segment where remapping cannot protect it.
func (inj *Injector) fireArrival(now float64) {
	dev := inj.st.Device()
	src := inj.streams[chArrival]
	maxMu := inj.sc.ArrivalMaxMuFactor * inj.target
	targeted := inj.shield != nil && src.Bernoulli(inj.sc.TargetedArrivalFraction)
	if !targeted {
		bits := dev.InjectWeakCells(src, 1, maxMu, now)
		inj.log(channelNames[chArrival], fmt.Sprintf("random arrival at %v", bits), len(bits))
		return
	}
	g := dev.Geometry()
	var wa mitigate.WordAddr
	if targets := inj.shield.RemapTargets(); len(targets) > 0 {
		// Aim at a spare word that holds remapped live data — the words
		// Install can never protect again.
		wa = targets[src.Intn(len(targets))]
	} else {
		for attempt := 0; attempt < 64; attempt++ {
			wa = mitigate.WordAddr{
				Bank: src.Intn(g.Banks),
				Row:  src.Intn(g.RowsPerBank),
				Word: src.Intn(g.WordsPerRow),
			}
			if inj.shield.InReservedSegment(wa) {
				break
			}
		}
	}
	bit := g.BitIndex(dram.Addr{Bank: wa.Bank, Row: wa.Row, Word: wa.Word, Bit: src.Intn(64)})
	if dev.InjectWeakCellAt(src, bit, maxMu, now) {
		inj.log(channelNames[chArrival],
			fmt.Sprintf("targeted arrival in spare segment at bit %d", bit), 1)
	} else {
		inj.log(channelNames[chArrival], "targeted arrival collided with existing weak cell", 0)
	}
}
