package faultinject

import (
	"sync"

	"reaper/internal/rng"
)

// CrashPlan is the crash-injection harness for checkpointed campaigns: a
// seed-driven schedule of worker kills. Each (segment, chip) pair draws an
// independent Bernoulli decision from a seed-derived stream, so the schedule
// is a pure function of the seed — independent of worker count, execution
// order, and retries — and a crash-injected run is reproducible exactly.
//
// A drawn crash fires at most once: the retry of a killed shard observes
// Fire() == false and completes, which is precisely the recovery path the
// checkpoint layer must prove byte-identical to an uninterrupted run.
type CrashPlan struct {
	seed uint64
	prob float64

	mu     sync.Mutex
	fired  map[[2]int]bool
	poison map[int]bool
}

// NewCrashPlan builds a plan that kills each (segment, chip) execution with
// the given probability. prob <= 0 never fires; prob >= 1 kills every shard
// once.
func NewCrashPlan(seed uint64, prob float64) *CrashPlan {
	return &CrashPlan{seed: seed, prob: prob, fired: map[[2]int]bool{}, poison: map[int]bool{}}
}

// PoisonChips marks chips whose every execution crashes, never latched:
// unlike a transient kill, a poisoned shard fails each retry too, so it
// exhausts its attempt budget and lands in quarantine.
func (p *CrashPlan) PoisonChips(chips ...int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, c := range chips {
		p.poison[c] = true
	}
}

// Fire reports whether the worker running the given segment of the given
// chip should be killed now. The decision is deterministic per (segment,
// chip); the first true is latched so the shard's retry survives.
func (p *CrashPlan) Fire(segment, chip int) bool {
	if p == nil {
		return false
	}
	p.mu.Lock()
	poisoned := p.poison[chip]
	p.mu.Unlock()
	if poisoned {
		return true
	}
	if p.prob <= 0 {
		return false
	}
	// A derived stream per (segment, chip): one draw, no shared state, so
	// concurrent shards never contend on a generator.
	salt := uint64(segment)*0x9e3779b97f4a7c15 + uint64(chip) + 1
	if rng.Derive(p.seed, salt).Float64() >= p.prob {
		return false
	}
	key := [2]int{segment, chip}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.fired[key] {
		return false
	}
	p.fired[key] = true
	return true
}

// Fired returns how many crashes the plan has injected so far.
func (p *CrashPlan) Fired() int {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.fired)
}
