package faultinject

import (
	"fmt"
	"sort"

	"reaper/internal/checkpoint"
	"reaper/internal/thermal"
)

// Checkpoint surface of the injector: every channel's stream position and
// next fire time (which can be +Inf — the binary codec carries it as a bit
// pattern), the active thermal excursion, and the fault log. The scenario
// and target interval are construction parameters covered by the campaign
// identity hash; the seed is written as an in-band guard.

const (
	maxRestoreEvents = 1 << 24
	maxRestoreCounts = 1 << 16
)

// EncodeState serializes the injector's mutable state.
func (inj *Injector) EncodeState(e *checkpoint.Encoder) {
	e.Section("faultinject.injector")
	e.U64(inj.sc.Seed)
	for _, s := range inj.streams {
		st := s.State()
		e.U64(st[0])
		e.U64(st[1])
		e.U64(st[2])
		e.U64(st[3])
	}
	for _, t := range inj.nextAt {
		e.F64(t)
	}
	e.F64(inj.baseAmbient)
	if inj.excursion == nil {
		e.Bool(false)
	} else {
		e.Bool(true)
		e.F64(inj.excursion.StartSeconds)
		e.F64(inj.excursion.PeakDeltaC)
		e.F64(inj.excursion.TauSeconds)
	}
	e.F64(inj.excNextAt)
	e.Len(len(inj.events))
	for _, ev := range inj.events {
		e.F64(ev.ClockHours)
		e.Str(ev.Kind)
		e.Str(ev.Detail)
		e.Int(ev.Cells)
	}
	kinds := make([]string, 0, len(inj.counts))
	for k := range inj.counts {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	e.Len(len(kinds))
	for _, k := range kinds {
		e.Str(k)
		e.Int(inj.counts[k])
	}
}

// RestoreState loads state serialized by EncodeState into a freshly
// constructed injector for the same scenario (New draws initial fire times;
// this overwrites both the stream positions and the schedule).
func (inj *Injector) RestoreState(d *checkpoint.Decoder) error {
	d.Section("faultinject.injector")
	if seed := d.U64(); d.Err() == nil && seed != inj.sc.Seed {
		return fmt.Errorf("faultinject: restore: blob seed %#x, injector seed %#x", seed, inj.sc.Seed)
	}
	for _, s := range inj.streams {
		s.SetState([4]uint64{d.U64(), d.U64(), d.U64(), d.U64()})
	}
	for ch := range inj.nextAt {
		inj.nextAt[ch] = d.F64()
	}
	inj.baseAmbient = d.F64()
	inj.excursion = nil
	if d.Bool() {
		inj.excursion = &thermal.Excursion{
			StartSeconds: d.F64(),
			PeakDeltaC:   d.F64(),
			TauSeconds:   d.F64(),
		}
	}
	inj.excNextAt = d.F64()
	n := d.Len(maxRestoreEvents)
	if d.Err() != nil {
		return d.Err()
	}
	inj.events = make([]Event, 0, n)
	for i := 0; i < n; i++ {
		inj.events = append(inj.events, Event{
			ClockHours: d.F64(),
			Kind:       d.Str(),
			Detail:     d.Str(),
			Cells:      d.Int(),
		})
	}
	nc := d.Len(maxRestoreCounts)
	if d.Err() != nil {
		return d.Err()
	}
	inj.counts = make(map[string]int, nc)
	for i := 0; i < nc; i++ {
		k := d.Str()
		inj.counts[k] = d.Int()
	}
	return d.Err()
}
