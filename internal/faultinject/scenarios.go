package faultinject

import (
	"fmt"
	"sort"
)

// Named fault-scenario presets shared by cmd/soak's -scenario flag and the
// test-program "soak" stage (internal/testprog), so a scenario named in a
// JSON program is bit-identical to the same name on the command line.
//
// Each preset derives from DefaultScenario with the caller's seed and scales
// the hazard rates; "default" returns nil, meaning "let the soak harness use
// its own default derivation" (which is bit-identical to passing no scenario
// at all).
var namedScenarios = map[string]func(seed uint64, targetInterval float64) *Scenario{
	// The standard soak hazards, unchanged.
	"default": func(uint64, float64) *Scenario { return nil },
	// Half-rate hazards and no round aborts: a benign deployment.
	"quiet": func(seed uint64, target float64) *Scenario {
		sc := DefaultScenario(seed, target)
		sc.VRTBurstMeanHours *= 2
		sc.DPDFlipMeanHours *= 2
		sc.TempExcursionMeanHours *= 2
		sc.WeakArrivalPerHour /= 2
		sc.RoundAbortProb = 0
		return &sc
	},
	// Double-rate hazards, hotter excursions, frequent aborts: a hostile
	// thermal environment.
	"harsh": func(seed uint64, target float64) *Scenario {
		sc := DefaultScenario(seed, target)
		sc.VRTBurstMeanHours /= 2
		sc.DPDFlipMeanHours /= 2
		sc.TempExcursionMeanHours /= 2
		sc.TempExcursionPeakC += 4
		sc.WeakArrivalPerHour *= 2
		sc.RoundAbortProb = 0.25
		return &sc
	},
}

// NamedScenario builds the preset scenario registered under name, derived
// from DefaultScenario(seed, targetInterval). The "default" preset returns
// (nil, nil): callers should pass the nil through so the harness applies its
// own default derivation. Unknown names report an error listing the valid
// preset names.
func NamedScenario(name string, seed uint64, targetInterval float64) (*Scenario, error) {
	mk, ok := namedScenarios[name]
	if !ok {
		return nil, fmt.Errorf("faultinject: unknown scenario %q; valid scenarios: %v",
			name, ScenarioNames())
	}
	return mk(seed, targetInterval), nil
}

// ScenarioNames returns the registered preset names in sorted order.
func ScenarioNames() []string {
	names := make([]string, 0, len(namedScenarios))
	for name := range namedScenarios {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
