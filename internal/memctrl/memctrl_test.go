package memctrl

import (
	"math"
	"testing"

	"reaper/internal/dram"
	"reaper/internal/patterns"
	"reaper/internal/thermal"
)

func testStation(t *testing.T, chamber bool) *Station {
	t.Helper()
	dev, err := dram.NewDevice(dram.Config{
		Geometry:  dram.Geometry{Banks: 8, RowsPerBank: 64, WordsPerRow: 256},
		Vendor:    dram.VendorB(),
		Seed:      7,
		WeakScale: 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	var ch *thermal.Chamber
	if chamber {
		ch, err = thermal.NewChamber(thermal.DefaultChamberConfig())
		if err != nil {
			t.Fatal(err)
		}
		ch.SettleTo(45, 0.25, 3600)
	}
	st, err := NewStation(dev, ch, DefaultTiming())
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestClockMonotonic(t *testing.T) {
	var c Clock
	c.Advance(1.5)
	c.Advance(0)
	if c.Now() != 1.5 {
		t.Errorf("Now = %v", c.Now())
	}
	defer func() {
		if recover() == nil {
			t.Error("negative Advance did not panic")
		}
	}()
	c.Advance(-1)
}

func TestDefaultTimingMatchesPaperAnchor(t *testing.T) {
	tm := DefaultTiming()
	// Paper: a full read or write pass over 2GB takes ~0.125s.
	got := tm.PassSeconds(2 << 30)
	if math.Abs(got-0.125) > 1e-9 {
		t.Errorf("2GB pass = %v s, want 0.125", got)
	}
	// And it must scale linearly with capacity (the paper scales the
	// 0.125s figure by DRAM size).
	if r := tm.PassSeconds(64<<30) / got; math.Abs(r-32) > 1e-9 {
		t.Errorf("capacity scaling = %v, want 32", r)
	}
	if tm.Efficiency <= 0 || tm.Efficiency > 1 {
		t.Errorf("implied efficiency %v out of range", tm.Efficiency)
	}
}

func TestNewStationValidation(t *testing.T) {
	if _, err := NewStation(nil, nil, DefaultTiming()); err == nil {
		t.Error("nil device not rejected")
	}
	dev, _ := dram.NewDevice(dram.Config{
		Geometry: dram.Geometry{Banks: 1, RowsPerBank: 1, WordsPerRow: 1},
		Vendor:   dram.VendorB(),
	})
	if _, err := NewStation(dev, nil, Timing{}); err == nil {
		t.Error("zero timing not rejected")
	}
	bad := DefaultTiming()
	bad.Efficiency = 1.5
	if _, err := NewStation(dev, nil, bad); err == nil {
		t.Error("over-unity efficiency not rejected")
	}
}

func TestAlgorithm1LoopAccounting(t *testing.T) {
	st := testStation(t, false)
	bytes := st.Device().Geometry().TotalBytes()
	pass := st.Timing().PassSeconds(bytes)

	p := patterns.Checkerboard()
	st.DisableRefresh()
	st.WritePattern(p)
	st.Wait(2.048)
	fails := st.ReadCompare()
	st.EnableRefresh()

	if len(fails) == 0 {
		t.Error("no failures at 2048ms")
	}
	stats := st.Stats()
	if math.Abs(stats.WriteSeconds-pass) > 1e-12 || stats.WritePasses != 1 {
		t.Errorf("write accounting wrong: %+v", stats)
	}
	if math.Abs(stats.ReadSeconds-pass) > 1e-12 || stats.ReadPasses != 1 {
		t.Errorf("read accounting wrong: %+v", stats)
	}
	if math.Abs(stats.WaitSeconds-2.048) > 1e-12 {
		t.Errorf("wait accounting wrong: %+v", stats)
	}
	if stats.BytesWritten != bytes || stats.BytesRead != bytes {
		t.Errorf("byte accounting wrong: %+v", stats)
	}
	wantTotal := 2*pass + 2.048
	if math.Abs(stats.Total()-wantTotal) > 1e-9 {
		t.Errorf("Total = %v, want %v", stats.Total(), wantTotal)
	}
	if math.Abs(st.Clock()-wantTotal) > 1e-9 {
		t.Errorf("clock = %v, want %v", st.Clock(), wantTotal)
	}
}

func TestRefreshProtectsDuringEnabledWait(t *testing.T) {
	st := testStation(t, false)
	st.WritePattern(patterns.Random(3))
	st.Wait(2.048) // refresh enabled: no retention loss
	if fails := st.ReadCompare(); len(fails) != 0 {
		t.Errorf("%d failures despite refresh being enabled", len(fails))
	}
	stats := st.Stats()
	if stats.IdleSeconds < 2 || stats.WaitSeconds != 0 {
		t.Errorf("enabled-refresh wait misclassified: %+v", stats)
	}
}

func TestDisableEnableRefresh(t *testing.T) {
	st := testStation(t, false)
	if !st.RefreshEnabled() {
		t.Error("refresh should start enabled")
	}
	st.DisableRefresh()
	if st.RefreshEnabled() || st.Device().AutoRefresh() != 0 {
		t.Error("DisableRefresh did not take")
	}
	st.EnableRefresh()
	if !st.RefreshEnabled() || st.Device().AutoRefresh() != st.Timing().DefaultTREFI {
		t.Error("EnableRefresh did not restore default interval")
	}
}

func TestSetRefreshInterval(t *testing.T) {
	st := testStation(t, false)
	st.SetRefreshInterval(0.512)
	if !st.RefreshEnabled() || st.Device().AutoRefresh() != 0.512 {
		t.Error("SetRefreshInterval(0.512) did not take")
	}
	st.SetRefreshInterval(0)
	if st.RefreshEnabled() {
		t.Error("SetRefreshInterval(0) should disable refresh")
	}
}

func TestWaitZeroOrNegativeIsNoOp(t *testing.T) {
	st := testStation(t, false)
	before := st.Clock()
	st.Wait(0)
	st.Wait(-5)
	if st.Clock() != before {
		t.Error("zero/negative wait advanced the clock")
	}
}

func TestSetAmbientWithoutChamberIsInstant(t *testing.T) {
	st := testStation(t, false)
	before := st.Clock()
	got := st.SetAmbient(55)
	if got != 55 || st.Ambient() != 55 {
		t.Errorf("SetAmbient = %v, ambient = %v", got, st.Ambient())
	}
	if st.Clock() != before {
		t.Error("chamberless SetAmbient consumed time")
	}
}

func TestSetAmbientWithChamberSettles(t *testing.T) {
	st := testStation(t, true)
	before := st.Clock()
	st.SetAmbient(50)
	if st.Clock() == before {
		t.Error("chamber settle consumed no simulated time")
	}
	if math.Abs(st.Ambient()-50) > 0.6 {
		t.Errorf("ambient after settle = %v, want ~50", st.Ambient())
	}
	if st.Stats().IdleSeconds <= 0 {
		t.Error("settle time not charged as idle")
	}
}

func TestChamberCouplingAffectsFailures(t *testing.T) {
	st := testStation(t, true)
	count := func() int {
		total := 0
		for i := 0; i < 4; i++ {
			st.DisableRefresh()
			st.WritePattern(patterns.Random(uint64(i)))
			st.Wait(1.024)
			total += len(st.ReadCompare())
			st.EnableRefresh()
		}
		return total
	}
	at45 := count()
	st.SetAmbient(55)
	at55 := count()
	if at55 <= at45*3 {
		t.Errorf("chamber temperature had too little effect: %d @45C vs %d @55C", at45, at55)
	}
}

func TestResetStats(t *testing.T) {
	st := testStation(t, false)
	st.WritePattern(patterns.Solid0())
	st.ResetStats()
	if st.Stats().Total() != 0 {
		t.Error("ResetStats did not zero accounting")
	}
	if st.Clock() == 0 {
		t.Error("ResetStats must not reset the clock")
	}
}
