package memctrl

import (
	"testing"

	"reaper/internal/patterns"
)

func TestTraceRecordsAlgorithm1Loop(t *testing.T) {
	st := testStation(t, false)
	tr := NewTrace(0)
	st.AttachTrace(tr)

	st.WritePattern(patterns.Checkerboard())
	st.DisableRefresh()
	st.Wait(1.024)
	st.EnableRefresh()
	st.ReadCompare()

	cmds := tr.Commands()
	wantKinds := []CmdKind{CmdWritePass, CmdRefreshOff, CmdWait, CmdRefreshOn, CmdReadPass}
	if len(cmds) != len(wantKinds) {
		t.Fatalf("got %d commands, want %d: %v", len(cmds), len(wantKinds), cmds)
	}
	for i, k := range wantKinds {
		if cmds[i].Kind != k {
			t.Errorf("command %d = %v, want %v", i, cmds[i].Kind, k)
		}
	}
	if err := VerifyTrace(tr, st.Timing(), st.Device().Geometry().TotalBytes()); err != nil {
		t.Errorf("valid trace rejected: %v", err)
	}
	windows := tr.WaitWindows()
	if len(windows) != 1 || windows[0] != 1.024 {
		t.Errorf("wait windows = %v, want [1.024]", windows)
	}
}

func TestTraceVerifiesFullProfilingRun(t *testing.T) {
	// The headline use: verify that an entire profiling run toggles
	// refresh and paces commands exactly as Algorithm 1 demands — the
	// simulated equivalent of the paper's logic-analyzer check.
	st := testStation(t, false)
	tr := NewTrace(0)
	st.AttachTrace(tr)
	// Algorithm 1 inlined: 2 iterations over the 12 standard patterns.
	for it := 0; it < 2; it++ {
		for _, p := range patterns.StandardWithInverses(uint64(it)) {
			st.WritePattern(p)
			st.DisableRefresh()
			st.Wait(0.512)
			st.EnableRefresh()
			st.ReadCompare()
		}
	}
	if err := VerifyTrace(tr, st.Timing(), st.Device().Geometry().TotalBytes()); err != nil {
		t.Fatalf("profiling trace failed verification: %v", err)
	}
	// 2 iterations x 12 patterns: every retention window is 512ms.
	windows := tr.WaitWindows()
	if len(windows) != 24 {
		t.Fatalf("got %d retention windows, want 24", len(windows))
	}
	for _, w := range windows {
		if w != 0.512 {
			t.Fatalf("retention window = %v, want 0.512", w)
		}
	}
}

func TestTraceBounded(t *testing.T) {
	tr := NewTrace(3)
	for i := 0; i < 10; i++ {
		tr.add(Command{Kind: CmdWait, Start: float64(i), End: float64(i)})
	}
	if tr.Len() != 3 {
		t.Errorf("bounded trace kept %d commands, want 3", tr.Len())
	}
	if tr.Commands()[0].Start != 7 {
		t.Error("bounded trace did not keep the newest commands")
	}
}

func TestTraceNilSafe(t *testing.T) {
	st := testStation(t, false)
	// No trace attached: operations must not panic.
	st.WritePattern(patterns.Solid0())
	st.DisableRefresh()
	st.Wait(0.1)
	st.EnableRefresh()
	st.ReadCompare()
}

func TestVerifyTraceCatchesViolations(t *testing.T) {
	timing := DefaultTiming()
	const bytes = 2 << 30
	pass := timing.PassSeconds(bytes)

	if err := VerifyTrace(nil, timing, bytes); err == nil {
		t.Error("nil trace accepted")
	}

	// Overlapping commands.
	tr := NewTrace(0)
	tr.add(Command{Kind: CmdWritePass, Start: 0, End: pass})
	tr.add(Command{Kind: CmdReadPass, Start: pass / 2, End: pass/2 + pass})
	if err := VerifyTrace(tr, timing, bytes); err == nil {
		t.Error("overlapping commands accepted")
	}

	// Pass with the wrong duration (too fast for the bus).
	tr = NewTrace(0)
	tr.add(Command{Kind: CmdWritePass, Start: 0, End: pass / 2})
	if err := VerifyTrace(tr, timing, bytes); err == nil {
		t.Error("impossibly fast pass accepted")
	}

	// Double refresh disable.
	tr = NewTrace(0)
	tr.add(Command{Kind: CmdRefreshOff, Start: 0, End: 0})
	tr.add(Command{Kind: CmdRefreshOff, Start: 1, End: 1})
	if err := VerifyTrace(tr, timing, bytes); err == nil {
		t.Error("double refresh-off accepted")
	}

	// Enable while already enabled (power-up state is enabled).
	tr = NewTrace(0)
	tr.add(Command{Kind: CmdRefreshOn, Start: 0, End: 0, Interval: 0.064})
	if err := VerifyTrace(tr, timing, bytes); err == nil {
		t.Error("double refresh-on accepted")
	}

	// Refresh enabled with a nonsense interval.
	tr = NewTrace(0)
	tr.add(Command{Kind: CmdRefreshOff, Start: 0, End: 0})
	tr.add(Command{Kind: CmdRefreshOn, Start: 1, End: 1, Interval: 0})
	if err := VerifyTrace(tr, timing, bytes); err == nil {
		t.Error("zero refresh interval accepted")
	}

	// Command ending before it starts.
	tr = NewTrace(0)
	tr.add(Command{Kind: CmdWait, Start: 5, End: 4, Interval: 1})
	if err := VerifyTrace(tr, timing, bytes); err == nil {
		t.Error("time-reversed command accepted")
	}
}

func TestCmdKindStrings(t *testing.T) {
	kinds := []CmdKind{CmdWritePass, CmdReadPass, CmdWriteWord, CmdReadWord,
		CmdRefreshOn, CmdRefreshOff, CmdWait}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || seen[s] {
			t.Errorf("bad or duplicate kind string %q", s)
		}
		seen[s] = true
	}
	if CmdKind(99).String() == "" {
		t.Error("unknown kind should still render")
	}
}
