package memctrl

import (
	"fmt"
	"math"
)

// This file implements the command-bus tracing and verification that stands
// in for the paper's logic analyzer (Section 4: "Our infrastructure
// provides precise control over DRAM commands, which we verified via a
// logic analyzer by probing the DRAM command bus"). When tracing is
// enabled, every station operation emits command records; the Verifier
// checks the invariants a retention test depends on — above all, that NO
// refresh activity occurs inside a refresh-disabled wait window, and that
// data passes take the time the configured bandwidth implies.

// CmdKind enumerates traced command-bus events.
type CmdKind int

const (
	// CmdWritePass is a whole-device data-pattern write pass.
	CmdWritePass CmdKind = iota
	// CmdReadPass is a whole-device read-and-compare pass.
	CmdReadPass
	// CmdWriteWord is a single random write access.
	CmdWriteWord
	// CmdReadWord is a single random read access.
	CmdReadWord
	// CmdRefreshOn marks a refresh-enable transition; its Interval field
	// carries the new refresh interval.
	CmdRefreshOn
	// CmdRefreshOff marks a refresh-disable transition.
	CmdRefreshOff
	// CmdWait marks an idle/wait window; Interval carries its length.
	CmdWait
)

// String names the command kind as it appears in rendered traces.
func (k CmdKind) String() string {
	switch k {
	case CmdWritePass:
		return "WRITE-PASS"
	case CmdReadPass:
		return "READ-PASS"
	case CmdWriteWord:
		return "WRITE"
	case CmdReadWord:
		return "READ"
	case CmdRefreshOn:
		return "REF-ON"
	case CmdRefreshOff:
		return "REF-OFF"
	case CmdWait:
		return "WAIT"
	default:
		return fmt.Sprintf("CmdKind(%d)", int(k))
	}
}

// Command is one traced command-bus event.
type Command struct {
	Kind CmdKind
	// Start and End are simulated seconds.
	Start, End float64
	// Interval is kind-specific (refresh interval or wait length).
	Interval float64
}

// Trace is a bounded in-memory command log.
type Trace struct {
	cmds []Command
	max  int
}

// NewTrace builds a trace keeping at most max commands (older entries are
// dropped). max <= 0 means unbounded.
func NewTrace(max int) *Trace { return &Trace{max: max} }

func (t *Trace) add(c Command) {
	if t == nil {
		return
	}
	t.cmds = append(t.cmds, c)
	if t.max > 0 && len(t.cmds) > t.max {
		t.cmds = t.cmds[len(t.cmds)-t.max:]
	}
}

// Commands returns the recorded log.
func (t *Trace) Commands() []Command { return append([]Command(nil), t.cmds...) }

// Len returns the number of recorded commands.
func (t *Trace) Len() int { return len(t.cmds) }

// AttachTrace starts recording the station's command bus into tr. Passing
// nil detaches.
func (s *Station) AttachTrace(tr *Trace) { s.trace = tr }

// VerifyTrace checks the recorded command stream against the station's
// timing configuration and the retention-test invariants:
//
//  1. commands are totally ordered in time and never overlap;
//  2. every whole-device pass takes exactly the bandwidth-implied time;
//  3. refresh-control transitions alternate consistently (no double
//     enable/disable);
//  4. no wait window while refresh is disabled contains refresh activity
//     (the invariant the paper's logic analyzer existed to establish).
//
// It returns nil when every invariant holds.
func VerifyTrace(tr *Trace, timing Timing, deviceBytes int64) error {
	if tr == nil {
		return fmt.Errorf("memctrl: nil trace")
	}
	pass := timing.PassSeconds(deviceBytes)
	prevEnd := math.Inf(-1)
	refreshOn := true // stations power up with refresh enabled
	for i, c := range tr.cmds {
		if c.End < c.Start {
			return fmt.Errorf("memctrl: command %d (%v) ends before it starts", i, c.Kind)
		}
		if c.Start < prevEnd-1e-12 {
			return fmt.Errorf("memctrl: command %d (%v) overlaps its predecessor", i, c.Kind)
		}
		prevEnd = c.End
		switch c.Kind {
		case CmdWritePass, CmdReadPass:
			if math.Abs((c.End-c.Start)-pass) > 1e-9 {
				return fmt.Errorf("memctrl: command %d (%v) took %vs, want the bandwidth-implied %vs",
					i, c.Kind, c.End-c.Start, pass)
			}
		case CmdRefreshOff:
			if !refreshOn {
				return fmt.Errorf("memctrl: command %d disables refresh twice", i)
			}
			refreshOn = false
		case CmdRefreshOn:
			if refreshOn {
				return fmt.Errorf("memctrl: command %d enables refresh twice", i)
			}
			if c.Interval <= 0 {
				return fmt.Errorf("memctrl: command %d enables refresh with interval %v", i, c.Interval)
			}
			refreshOn = true
		case CmdWait:
			if c.Interval < 0 {
				return fmt.Errorf("memctrl: command %d waits negative time", i)
			}
		}
	}
	return nil
}

// WaitWindows extracts the refresh-disabled wait windows from a trace: the
// retention windows of Algorithm 1. Each returned value is the window
// length in seconds.
func (t *Trace) WaitWindows() []float64 {
	var out []float64
	refreshOn := true
	for _, c := range t.cmds {
		switch c.Kind {
		case CmdRefreshOff:
			refreshOn = false
		case CmdRefreshOn:
			refreshOn = true
		case CmdWait:
			if !refreshOn {
				out = append(out, c.Interval)
			}
		}
	}
	return out
}
