// Package memctrl provides the command-level memory-controller substrate the
// profiler runs on: a simulated clock, LPDDR4 bandwidth/latency accounting,
// refresh control, and a Station that couples a dram.Device to a
// thermal.Chamber behind the same write-pattern / disable-refresh / wait /
// read-and-compare interface the paper's FPGA infrastructure (SoftMC-style)
// exposes (Section 4, Algorithm 1).
//
// All time is simulated: a six-day characterization run advances the Clock
// by six days while costing milliseconds of wall time. The Station charges
// every operation the same latency terms the paper's runtime model
// (Equation 9) charges — T_REFI waits plus whole-device pattern write and
// read passes — so profiling runtime measurements come out of the same
// bookkeeping real hardware would impose.
package memctrl

import (
	"fmt"

	"reaper/internal/dram"
	"reaper/internal/thermal"
)

// Clock is simulated time in seconds since power-up.
type Clock struct {
	now float64
}

// Now returns the current simulated time in seconds.
func (c *Clock) Now() float64 { return c.now }

// Advance moves simulated time forward by d seconds. Negative d panics:
// simulated time is monotonic.
func (c *Clock) Advance(d float64) {
	if d < 0 {
		//lint:ignore no-panic monotonic-clock invariant: a negative advance is a simulator bug, never input
		panic("memctrl: clock cannot move backwards")
	}
	c.now += d
}

// Timing captures the interface-level LPDDR4 parameters used to charge
// realistic latencies for whole-device data passes.
type Timing struct {
	// BandwidthBytesPerSec is the peak interface bandwidth.
	BandwidthBytesPerSec float64
	// Efficiency is the achievable fraction of peak bandwidth during a
	// streaming test pass (accounting for command overheads, bank
	// conflicts, and comparison work).
	Efficiency float64
	// DefaultTREFI is the JEDEC default refresh interval in seconds.
	DefaultTREFI float64
	// AccessSeconds is the latency charged for a single random word
	// access (activate + column access + precharge).
	AccessSeconds float64
}

// DefaultTiming returns LPDDR4-3200 timing with 4 x16 channels (Table 2 of
// the paper). The efficiency is calibrated so a full write or read pass over
// 2GB takes 0.125 s, the empirical figure the paper measures on its
// infrastructure (Section 7.3.1 footnote).
func DefaultTiming() Timing {
	const peak = 4 * 2 * 3200e6 // 4 channels x 2 bytes/transfer x 3200 MT/s
	const target = 2 * (1 << 30) / 0.125
	return Timing{
		BandwidthBytesPerSec: peak,
		Efficiency:           target / peak,
		DefaultTREFI:         0.064,
		AccessSeconds:        60e-9,
	}
}

// PassSeconds returns the time to stream-write or stream-read bytes of DRAM
// once (one data-pattern pass over a device of that capacity).
func (t Timing) PassSeconds(bytes int64) float64 {
	return float64(bytes) / (t.BandwidthBytesPerSec * t.Efficiency)
}

// Stats accounts where a Station's simulated time went, in the terms of the
// paper's Equation 9.
type Stats struct {
	WriteSeconds float64 // time spent writing data patterns (T_wr)
	ReadSeconds  float64 // time spent reading and comparing (T_rd)
	WaitSeconds  float64 // time spent waiting with refresh paused (T_REFI)
	IdleSeconds  float64 // time spent waiting with refresh enabled
	WritePasses  int
	ReadPasses   int
	BytesWritten int64
	BytesRead    int64
}

// Total returns all simulated seconds the station consumed.
func (s Stats) Total() float64 {
	return s.WriteSeconds + s.ReadSeconds + s.WaitSeconds + s.IdleSeconds
}

// Station couples a device, a clock, timing, and (optionally) a thermal
// chamber into the test interface profilers drive.
type Station struct {
	dev     *dram.Device     //lint:serialized-elsewhere the device checkpoints through its own EncodeState/RestoreState pair
	chamber *thermal.Chamber //lint:serialized-elsewhere may be nil (temperature fixed); thermal state rides on the device's tempC
	clock   Clock
	timing  Timing //lint:serialized-elsewhere pure function of the construction parameters
	refresh bool
	stats   Stats
	trace   *Trace //lint:serialized-elsewhere observability ring buffer; not simulated state, empty after resume by design
}

// NewStation builds a station for the device. chamber may be nil, in which
// case the device keeps whatever temperature it was configured with and
// SetAmbient adjusts it instantly (an idealized isothermal setup).
func NewStation(dev *dram.Device, chamber *thermal.Chamber, timing Timing) (*Station, error) {
	if dev == nil {
		return nil, fmt.Errorf("memctrl: nil device")
	}
	if timing.BandwidthBytesPerSec <= 0 || timing.Efficiency <= 0 || timing.Efficiency > 1 {
		return nil, fmt.Errorf("memctrl: invalid timing %+v", timing)
	}
	if timing.DefaultTREFI <= 0 {
		return nil, fmt.Errorf("memctrl: invalid default tREFI %v", timing.DefaultTREFI)
	}
	s := &Station{dev: dev, chamber: chamber, timing: timing, refresh: true}
	dev.SetAutoRefresh(timing.DefaultTREFI)
	s.syncTemp()
	return s, nil
}

// Device returns the device under test.
func (s *Station) Device() *dram.Device { return s.dev }

// IndexStats returns the device's cumulative sparse-index disposition
// counters (how full-device sweeps skipped, flipped, sampled, or slow-pathed
// weak cells). The profiler records per-round deltas from it.
func (s *Station) IndexStats() dram.IndexStats { return s.dev.IndexStats() }

// IncrStats returns the device's cumulative incremental round-cache counters
// (sweeps served from cached classifications vs classified in full). The
// profiler records per-round deltas from it.
func (s *Station) IncrStats() dram.IncrStats { return s.dev.IncrStats() }

// BankStats returns the device's cumulative banked-sweep counters. Shards are
// counted logically (per bank), so the series is worker-count invariant.
func (s *Station) BankStats() dram.BankStats { return s.dev.BankStats() }

// SetSweepWorkers bounds the goroutines the device may shard a full sweep
// across in BankStreams mode; results are byte-identical at every setting.
func (s *Station) SetSweepWorkers(n int) { s.dev.SetSweepWorkers(n) }

// Clock returns the current simulated time in seconds.
func (s *Station) Clock() float64 { return s.clock.Now() }

// Timing returns the station's timing parameters.
func (s *Station) Timing() Timing { return s.timing }

// Stats returns the accumulated time accounting.
func (s *Station) Stats() Stats { return s.stats }

// ResetStats zeroes the time accounting (the clock keeps running).
func (s *Station) ResetStats() { s.stats = Stats{} }

// advance moves simulated time, the chamber, and the device temperature
// forward together.
func (s *Station) advance(d float64) {
	s.clock.Advance(d)
	if s.chamber != nil {
		s.chamber.Step(d)
	}
	s.syncTemp()
}

func (s *Station) syncTemp() {
	if s.chamber != nil {
		s.dev.SetTemperature(s.chamber.DeviceTemp() - 15)
	}
}

// Note on temperatures: the retention model is calibrated against *ambient*
// temperature (the paper quotes all conditions as ambient, with the device
// held ambient+15°C). syncTemp therefore feeds ambient = deviceTemp-15 to
// the device.

// SetAmbient commands the chamber to a new ambient setpoint and waits for it
// to settle (the simulated settle time is charged as idle time). Without a
// chamber the change is instantaneous. It returns the achieved ambient
// temperature.
func (s *Station) SetAmbient(tempC float64) float64 {
	if s.chamber == nil {
		s.dev.SetTemperature(tempC)
		return tempC
	}
	start := s.clock.Now()
	s.chamber.SetTarget(tempC)
	for !s.chamber.Settled(0.25) && s.clock.Now()-start < 3600 {
		s.advance(1)
	}
	// Hold briefly so the device's local heater tracks.
	s.advance(30)
	s.stats.IdleSeconds += s.clock.Now() - start
	return s.chamber.Target()
}

// Ambient returns the current ambient temperature at the device.
func (s *Station) Ambient() float64 { return s.dev.Temperature() }

// DisableRefresh pauses auto-refresh (Algorithm 1 line 6).
func (s *Station) DisableRefresh() {
	if s.refresh {
		s.trace.add(Command{Kind: CmdRefreshOff, Start: s.clock.Now(), End: s.clock.Now()})
	}
	s.refresh = false
	s.dev.SetAutoRefresh(0)
}

// EnableRefresh resumes auto-refresh at the default interval (line 8). The
// first refresh sweep after a refresh-paused window reads every row and
// restores what it read — cells that decayed during the pause are locked in
// as wrong values (the paper's Figure 1c) until their rows are rewritten.
func (s *Station) EnableRefresh() {
	if !s.refresh {
		s.dev.RestoreAll(s.clock.Now())
		s.trace.add(Command{Kind: CmdRefreshOn, Start: s.clock.Now(), End: s.clock.Now(),
			Interval: s.timing.DefaultTREFI})
	}
	s.refresh = true
	s.dev.SetAutoRefresh(s.timing.DefaultTREFI)
}

// RefreshEnabled reports whether auto-refresh is running.
func (s *Station) RefreshEnabled() bool { return s.refresh }

// SetRefreshInterval runs auto-refresh at a non-default interval (used by
// multi-rate refresh mechanisms). interval <= 0 disables refresh.
func (s *Station) SetRefreshInterval(interval float64) {
	if interval <= 0 {
		s.DisableRefresh()
		return
	}
	if !s.refresh {
		s.dev.RestoreAll(s.clock.Now())
		s.trace.add(Command{Kind: CmdRefreshOn, Start: s.clock.Now(), End: s.clock.Now(),
			Interval: interval})
	}
	s.refresh = true
	s.dev.SetAutoRefresh(interval)
}

// WritePattern streams a data pattern into the whole device (Algorithm 1
// line 5), charging one full write pass of latency.
func (s *Station) WritePattern(p dram.RowData) {
	start := s.clock.Now()
	d := s.timing.PassSeconds(s.dev.Geometry().TotalBytes())
	s.advance(d)
	s.dev.WriteAll(p, s.clock.Now())
	s.stats.WriteSeconds += d
	s.stats.WritePasses++
	s.stats.BytesWritten += s.dev.Geometry().TotalBytes()
	s.trace.add(Command{Kind: CmdWritePass, Start: start, End: s.clock.Now()})
}

// Wait lets seconds of simulated time pass (Algorithm 1 line 7 when refresh
// is disabled; idle time otherwise).
func (s *Station) Wait(seconds float64) {
	if seconds <= 0 {
		return
	}
	start := s.clock.Now()
	s.advance(seconds)
	if s.refresh {
		s.stats.IdleSeconds += seconds
	} else {
		s.stats.WaitSeconds += seconds
	}
	s.trace.add(Command{Kind: CmdWait, Start: start, End: s.clock.Now(), Interval: seconds})
}

// WriteWord performs a single random word write (used by mitigation
// mechanisms operating on live data), charging one access latency.
func (s *Station) WriteWord(bank, row, word int, val uint64) error {
	start := s.clock.Now()
	s.advance(s.timing.AccessSeconds)
	s.trace.add(Command{Kind: CmdWriteWord, Start: start, End: s.clock.Now()})
	return s.dev.WriteWord(bank, row, word, val, s.clock.Now())
}

// ReadWord performs a single random word read, charging one access latency.
func (s *Station) ReadWord(bank, row, word int) (uint64, error) {
	start := s.clock.Now()
	s.advance(s.timing.AccessSeconds)
	s.trace.add(Command{Kind: CmdReadWord, Start: start, End: s.clock.Now()})
	return s.dev.ReadWord(bank, row, word, s.clock.Now())
}

// SaveData streams the device's entire contents out to (notional)
// secondary storage, charging one full read pass, and returns the snapshot.
// The read restores every row, so cells that had already decayed are saved
// (and locked in) with their corrupted values — saving cannot heal data.
// This is the paper's footnote-4 save step before a profiling round.
func (s *Station) SaveData() *dram.ContentSnapshot {
	start := s.clock.Now()
	d := s.timing.PassSeconds(s.dev.Geometry().TotalBytes())
	s.advance(d)
	s.dev.RestoreAll(s.clock.Now())
	snap := s.dev.SnapshotContent()
	s.stats.ReadSeconds += d
	s.stats.ReadPasses++
	s.stats.BytesRead += s.dev.Geometry().TotalBytes()
	s.trace.add(Command{Kind: CmdReadPass, Start: start, End: s.clock.Now()})
	return snap
}

// RestoreData streams a snapshot back into the device, charging one full
// write pass — the paper's footnote-4 restore step after profiling.
func (s *Station) RestoreData(snap *dram.ContentSnapshot) error {
	start := s.clock.Now()
	d := s.timing.PassSeconds(s.dev.Geometry().TotalBytes())
	s.advance(d)
	if err := s.dev.RestoreContent(snap, s.clock.Now()); err != nil {
		return err
	}
	s.stats.WriteSeconds += d
	s.stats.WritePasses++
	s.stats.BytesWritten += s.dev.Geometry().TotalBytes()
	s.trace.add(Command{Kind: CmdWritePass, Start: start, End: s.clock.Now()})
	return nil
}

// ReadCompare streams the whole device out, compares against the written
// content, and returns the failing bit addresses (Algorithm 1 line 9),
// charging one full read pass of latency.
func (s *Station) ReadCompare() []uint64 {
	start := s.clock.Now()
	d := s.timing.PassSeconds(s.dev.Geometry().TotalBytes())
	s.advance(d)
	fails := s.dev.ReadCompareAll(s.clock.Now())
	s.stats.ReadSeconds += d
	s.stats.ReadPasses++
	s.stats.BytesRead += s.dev.Geometry().TotalBytes()
	s.trace.add(Command{Kind: CmdReadPass, Start: start, End: s.clock.Now()})
	return fails
}
