package memctrl

import (
	"reaper/internal/checkpoint"
)

// Checkpoint surface of the station: the simulated clock, the refresh flag,
// and the time accounting. The device's own state (including its refresh
// interval) lives in the dram checkpoint blob, and the command trace is a
// debugging aid that checkpointed campaigns do not attach — neither is
// serialized here.

// EncodeState serializes the station's mutable state.
func (s *Station) EncodeState(e *checkpoint.Encoder) {
	e.Section("memctrl.station")
	e.F64(s.clock.now)
	e.Bool(s.refresh)
	e.F64(s.stats.WriteSeconds)
	e.F64(s.stats.ReadSeconds)
	e.F64(s.stats.WaitSeconds)
	e.F64(s.stats.IdleSeconds)
	e.Int(s.stats.WritePasses)
	e.Int(s.stats.ReadPasses)
	e.I64(s.stats.BytesWritten)
	e.I64(s.stats.BytesRead)
}

// RestoreState loads state serialized by EncodeState into a freshly
// constructed station over the (separately restored) device.
func (s *Station) RestoreState(d *checkpoint.Decoder) error {
	d.Section("memctrl.station")
	s.clock.now = d.F64()
	s.refresh = d.Bool()
	s.stats.WriteSeconds = d.F64()
	s.stats.ReadSeconds = d.F64()
	s.stats.WaitSeconds = d.F64()
	s.stats.IdleSeconds = d.F64()
	s.stats.WritePasses = d.Int()
	s.stats.ReadPasses = d.Int()
	s.stats.BytesWritten = d.I64()
	s.stats.BytesRead = d.I64()
	return d.Err()
}
