package sysperf

import (
	"math"
	"testing"

	"reaper/internal/workload"
)

func cfgFor(t testing.TB, chipGb int, tREFI float64) Config {
	t.Helper()
	cfg, err := DefaultConfig(chipGb, tREFI)
	if err != nil {
		t.Fatal(err)
	}
	cfg.InstructionsPerCore = 500_000
	return cfg
}

func mixNamed(t testing.TB, names ...string) []workload.Spec {
	t.Helper()
	mix := make([]workload.Spec, len(names))
	for i, n := range names {
		s, err := workload.ByName(n)
		if err != nil {
			t.Fatal(err)
		}
		mix[i] = s
	}
	return mix
}

func TestTimingForChip(t *testing.T) {
	prev := 0.0
	for _, gb := range []int{8, 16, 32, 64} {
		tm, err := TimingForChip(gb)
		if err != nil {
			t.Fatal(err)
		}
		if tm.TRFC <= prev {
			t.Errorf("tRFC must grow with density: %v at %dGb", tm.TRFC, gb)
		}
		prev = tm.TRFC
	}
	if _, err := TimingForChip(7); err == nil {
		t.Error("unsupported density not rejected")
	}
}

func TestConfigValidate(t *testing.T) {
	cfg := cfgFor(t, 8, 0.064)
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := cfg
	bad.MSHRs = 0
	if bad.Validate() == nil {
		t.Error("zero MSHRs not rejected")
	}
	bad = cfg
	bad.DependentFraction = 2
	if bad.Validate() == nil {
		t.Error("dependent fraction > 1 not rejected")
	}
	bad = cfg
	bad.Timing.TRCD = 0
	if bad.Validate() == nil {
		t.Error("zero tRCD not rejected")
	}
}

func TestSimulateBasics(t *testing.T) {
	mix := mixNamed(t, "mcf", "gcc", "lbm", "povray")
	res, err := Simulate(mix, cfgFor(t, 8, 0.064))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.IPC) != 4 {
		t.Fatalf("IPC count = %d", len(res.IPC))
	}
	for i, ipc := range res.IPC {
		if ipc <= 0 || ipc > mix[i].BaseIPC {
			t.Errorf("core %d (%s) IPC = %v, must be in (0, %v]", i, mix[i].Name, ipc, mix[i].BaseIPC)
		}
	}
	if res.Traffic.Reads+res.Traffic.Writes == 0 {
		t.Error("no DRAM traffic recorded")
	}
	if res.Traffic.Activations == 0 || res.Traffic.RowHits == 0 {
		t.Errorf("traffic should include both activations and row hits: %+v", res.Traffic)
	}
	if res.DurationSec <= 0 {
		t.Error("non-positive duration")
	}
	if _, err := Simulate(nil, cfgFor(t, 8, 0.064)); err == nil {
		t.Error("empty mix not rejected")
	}
}

func TestSimulateDeterministic(t *testing.T) {
	mix := mixNamed(t, "mcf", "soplex")
	cfg := cfgFor(t, 8, 0.064)
	a, err := Simulate(mix, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(mix, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.IPC {
		if a.IPC[i] != b.IPC[i] {
			t.Fatal("simulation not deterministic")
		}
	}
}

func TestMemoryBoundCoresSufferMore(t *testing.T) {
	mix := mixNamed(t, "mcf", "povray")
	res, err := Simulate(mix, cfgFor(t, 8, 0.064))
	if err != nil {
		t.Fatal(err)
	}
	mcfSlowdown := res.IPC[0] / mix[0].BaseIPC
	povraySlowdown := res.IPC[1] / mix[1].BaseIPC
	if mcfSlowdown >= povraySlowdown {
		t.Errorf("memory-bound mcf retained %v of its IPC vs compute-bound povray's %v",
			mcfSlowdown, povraySlowdown)
	}
}

func TestLongerRefreshIntervalHelps(t *testing.T) {
	mix := mixNamed(t, "mcf", "lbm", "milc", "libquantum")
	base, err := Simulate(mix, cfgFor(t, 64, 0.064))
	if err != nil {
		t.Fatal(err)
	}
	relaxed, err := Simulate(mix, cfgFor(t, 64, 1.024))
	if err != nil {
		t.Fatal(err)
	}
	noref, err := Simulate(mix, cfgFor(t, 64, 0))
	if err != nil {
		t.Fatal(err)
	}
	sum := func(r Result) float64 {
		s := 0.0
		for _, v := range r.IPC {
			s += v
		}
		return s
	}
	if !(sum(base) < sum(relaxed) && sum(relaxed) <= sum(noref)*1.0001) {
		t.Errorf("throughput not ordered with refresh relief: 64ms=%v 1024ms=%v noref=%v",
			sum(base), sum(relaxed), sum(noref))
	}
	// On 64Gb chips the no-refresh gain must be material (the paper sees
	// ~19% weighted-speedup gains; demand >5% throughput here).
	if g := sum(noref)/sum(base) - 1; g < 0.05 {
		t.Errorf("no-refresh throughput gain on 64Gb = %v, want > 0.05", g)
	}
}

func TestRefreshHurtsMoreOnDenserChips(t *testing.T) {
	mix := mixNamed(t, "mcf", "lbm", "milc", "libquantum")
	gain := func(gb int) float64 {
		base, err := Simulate(mix, cfgFor(t, gb, 0.064))
		if err != nil {
			t.Fatal(err)
		}
		noref, err := Simulate(mix, cfgFor(t, gb, 0))
		if err != nil {
			t.Fatal(err)
		}
		s := func(r Result) float64 {
			v := 0.0
			for _, x := range r.IPC {
				v += x
			}
			return v
		}
		return s(noref)/s(base) - 1
	}
	g8, g64 := gain(8), gain(64)
	if g64 <= g8 {
		t.Errorf("refresh relief gain should grow with density: 8Gb=%v 64Gb=%v", g8, g64)
	}
}

func TestWeightedSpeedup(t *testing.T) {
	mix := mixNamed(t, "mcf", "gcc")
	cfg := cfgFor(t, 8, 0.064)
	shared, err := Simulate(mix, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cache := NewAloneIPCCache(cfg)
	ws, err := WeightedSpeedup(shared, mix, cache.IPC)
	if err != nil {
		t.Fatal(err)
	}
	// Each term is <= ~1 (sharing cannot beat running alone, modulo noise),
	// so WS for 2 cores lies in (0, 2.1].
	if ws <= 0 || ws > 2.1 {
		t.Errorf("weighted speedup = %v out of range", ws)
	}
	// Mismatched lengths rejected.
	if _, err := WeightedSpeedup(shared, mix[:1], cache.IPC); err == nil {
		t.Error("length mismatch not rejected")
	}
}

func TestAloneIPCCacheMemoizes(t *testing.T) {
	cfg := cfgFor(t, 8, 0.064)
	cache := NewAloneIPCCache(cfg)
	spec, _ := workload.ByName("mcf")
	a, err := cache.IPC(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := cache.IPC(spec)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("cache returned different values")
	}
	if math.IsNaN(a) || a <= 0 {
		t.Errorf("alone IPC = %v", a)
	}
}

func TestRefreshWindowSkipping(t *testing.T) {
	cfg := cfgFor(t, 64, 0.064)
	d := newDRAM(cfg)
	p := cfg.refPeriodNs()
	// A request landing inside the first refresh window must be pushed to
	// its end.
	if got := d.skipRefreshWindows(0, cfg.Timing.TRFC/2); got != cfg.Timing.TRFC {
		t.Errorf("start inside window -> %v, want %v", got, cfg.Timing.TRFC)
	}
	// A request between windows is untouched.
	mid := p / 2
	if got := d.skipRefreshWindows(0, mid); got != mid {
		t.Errorf("start between windows -> %v, want %v", got, mid)
	}
	// With refresh disabled, nothing moves.
	cfg2 := cfgFor(t, 64, 0)
	d2 := newDRAM(cfg2)
	if got := d2.skipRefreshWindows(0, 123); got != 123 {
		t.Error("disabled refresh still displaced request")
	}
}

func TestFRFCFSBeatsFCFSUnderContention(t *testing.T) {
	// With several cores hammering the same channels, row-hit-first
	// scheduling must not lose throughput versus strict arrival order —
	// and for row-friendly mixes it should win.
	mix := mixNamed(t, "libquantum", "lbm", "libquantum", "lbm")
	fr := cfgFor(t, 8, 0.064)
	fc := fr
	fc.Scheduler = SchedFCFS
	a, err := Simulate(mix, fr)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(mix, fc)
	if err != nil {
		t.Fatal(err)
	}
	sum := func(r Result) float64 {
		s := 0.0
		for _, v := range r.IPC {
			s += v
		}
		return s
	}
	if sum(a) < sum(b)*0.999 {
		t.Errorf("FR-FCFS throughput %v below FCFS %v", sum(a), sum(b))
	}
	// FR-FCFS must convert more accesses into row hits.
	if a.Traffic.RowHits < b.Traffic.RowHits {
		t.Errorf("FR-FCFS row hits %d below FCFS %d", a.Traffic.RowHits, b.Traffic.RowHits)
	}
	t.Logf("FR-FCFS: IPC %.3f, hits %d; FCFS: IPC %.3f, hits %d",
		sum(a), a.Traffic.RowHits, sum(b), b.Traffic.RowHits)
}

func TestSchedulerReordersRowHits(t *testing.T) {
	// Direct engine check: with a miss and a row hit both queued behind a
	// busy bank, FR-FCFS services the hit first; FCFS services by age.
	cfg := cfgFor(t, 8, 0)
	cfg.Channels = 1
	cfg.BanksPerChannel = 1
	mk := func(pol SchedulerPolicy) *dram {
		c := cfg
		c.Scheduler = pol
		d := newDRAM(c)
		// Open row 0 and occupy the bank.
		d.service(0, 0, false)
		return d
	}

	// FR-FCFS: enqueue miss (row 1, older) then hit (row 0, younger).
	d := mk(SchedFRFCFS)
	missID := d.enqueue(1, 1, false)
	hitID := d.enqueue(2, 0, false)
	hitDone := d.resolve(hitID)
	missDone := d.resolve(missID)
	if hitDone >= missDone {
		t.Errorf("FR-FCFS did not prioritize the row hit: hit %v, miss %v", hitDone, missDone)
	}

	// FCFS: the older miss goes first.
	d = mk(SchedFCFS)
	missID = d.enqueue(1, 1, false)
	hitID = d.enqueue(2, 0, false)
	hitDone = d.resolve(hitID)
	missDone = d.resolve(missID)
	if missDone >= hitDone {
		t.Errorf("FCFS did not honour arrival order: miss %v, hit %v", missDone, hitDone)
	}
}

func TestClosedRowPolicy(t *testing.T) {
	mix := mixNamed(t, "libquantum") // very row-buffer friendly
	open := cfgFor(t, 8, 0)
	closed := open
	closed.ClosedRowPolicy = true
	ro, err := Simulate(mix, open)
	if err != nil {
		t.Fatal(err)
	}
	rc, err := Simulate(mix, closed)
	if err != nil {
		t.Fatal(err)
	}
	// Closed-row never records row hits and pays more per access for a
	// locality-heavy workload.
	if rc.Traffic.RowHits != 0 {
		t.Errorf("closed-row policy recorded %d row hits", rc.Traffic.RowHits)
	}
	if ro.Traffic.RowHits == 0 {
		t.Error("open-row policy recorded no row hits for libquantum")
	}
	if rc.IPC[0] >= ro.IPC[0] {
		t.Errorf("closed-row IPC %v not below open-row %v for a row-friendly workload",
			rc.IPC[0], ro.IPC[0])
	}
}

func TestRowHitFasterThanMiss(t *testing.T) {
	cfg := cfgFor(t, 8, 0) // no refresh noise
	d := newDRAM(cfg)
	// First access to row 0: a miss (activation).
	t1 := d.service(0, 0, false)
	// Second access, same row, after the bank is free: a hit.
	t2start := t1 + 100
	t2 := d.service(t2start, 0, false) - t2start
	missLatency := t1
	if t2 >= missLatency {
		t.Errorf("row hit latency %v not below miss latency %v", t2, missLatency)
	}
	if d.stats.RowHits != 1 || d.stats.Activations != 1 {
		t.Errorf("stats wrong: %+v", d.stats)
	}
}
