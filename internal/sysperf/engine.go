package sysperf

// The queued memory engine: requests are enqueued at issue time and
// scheduled per channel by the configured policy. FR-FCFS (the paper's
// Table 2 scheduler) prefers row-buffer hits over older requests; FCFS
// services strictly in arrival order. Banks proceed in parallel: the
// scheduler always dispatches the request that can start earliest, so a
// busy bank never delays traffic to an idle one.
//
// Scheduling is lazy: a channel's queue is only drained when some core
// needs one of its completions (MSHR pressure, a dependent load, or the end
// of its instruction budget). Requests issued by other cores after that
// point — which on hardware could still win arbitration — are not
// considered; the window is at most one inter-miss gap per core, which
// keeps the approximation tight at simulation cost O(requests log requests).

// SchedulerPolicy selects the memory scheduling policy.
type SchedulerPolicy int

const (
	// SchedFRFCFS is first-ready, first-come-first-served (default).
	SchedFRFCFS SchedulerPolicy = iota
	// SchedFCFS services requests strictly in arrival order per channel.
	SchedFCFS
)

// pendingReq is one enqueued memory request.
type pendingReq struct {
	id      int64
	arrival float64 // ns
	row     uint64
	write   bool
}

// enqueue registers a request and returns its id.
func (d *dram) enqueue(arrival float64, row uint64, write bool) int64 {
	id := d.nextID
	d.nextID++
	ch := int(row % uint64(d.cfg.Channels))
	d.pending[ch] = append(d.pending[ch], pendingReq{
		id: id, arrival: arrival, row: row, write: write,
	})
	d.channelOf[id] = ch
	return id
}

// resolve drains the owning channel until the request completes and returns
// its completion time. The completion record is consumed.
func (d *dram) resolve(id int64) float64 {
	if t, ok := d.completed[id]; ok {
		delete(d.completed, id)
		return t
	}
	ch := d.channelOf[id]
	for {
		d.scheduleNext(ch)
		if t, ok := d.completed[id]; ok {
			delete(d.completed, id)
			delete(d.channelOf, id)
			return t
		}
	}
}

// scheduleNext dispatches one request from the channel queue.
func (d *dram) scheduleNext(ch int) {
	q := d.pending[ch]
	if len(q) == 0 {
		//lint:ignore no-panic engine-internal invariant: callers check queue emptiness before scheduling
		panic("sysperf: scheduleNext on empty queue")
	}
	t := d.cfg.Timing

	bankOf := func(row uint64) int {
		return int(row / uint64(d.cfg.Channels) % uint64(d.cfg.BanksPerChannel))
	}
	bankRowOf := func(row uint64) uint64 {
		return row / uint64(d.cfg.Channels) / uint64(d.cfg.BanksPerChannel)
	}

	best := -1
	var bestStart float64
	var bestHit bool
	for i, req := range q {
		bank := bankOf(req.row)
		start := req.arrival
		if r := d.bankReady[ch][bank]; r > start {
			start = r
		}
		start = d.skipRefreshWindows(ch, start)
		hit := !d.cfg.ClosedRowPolicy && d.openRow[ch][bank] == bankRowOf(req.row)+1

		take := false
		switch {
		case best < 0:
			take = true
		case d.cfg.Scheduler == SchedFCFS:
			take = req.arrival < q[best].arrival ||
				(req.arrival == q[best].arrival && req.id < q[best].id)
		default: // FR-FCFS: earliest possible start; hits break ties, then age.
			switch {
			case start < bestStart:
				take = true
			case start == bestStart && hit && !bestHit:
				take = true
			case start == bestStart && hit == bestHit &&
				(req.arrival < q[best].arrival ||
					(req.arrival == q[best].arrival && req.id < q[best].id)):
				take = true
			}
		}
		if take {
			best, bestStart, bestHit = i, start, hit
		}
	}

	req := q[best]
	bank := bankOf(req.row)
	// Recompute the chosen request's timing (FCFS may pick a request whose
	// bank is not the earliest available).
	start := req.arrival
	if r := d.bankReady[ch][bank]; r > start {
		start = r
	}
	start = d.skipRefreshWindows(ch, start)

	var svc float64
	switch {
	case d.cfg.ClosedRowPolicy:
		svc = t.TRCD + t.TCL + t.TBURST
		d.stats.Activations++
	case d.openRow[ch][bank] == bankRowOf(req.row)+1:
		svc = t.TCL + t.TBURST
		d.stats.RowHits++
	default:
		svc = t.TRP + t.TRCD + t.TCL + t.TBURST
		d.openRow[ch][bank] = bankRowOf(req.row) + 1
		d.stats.Activations++
	}
	done := start + svc
	d.bankReady[ch][bank] = done
	if req.write {
		d.stats.Writes++
	} else {
		d.stats.Reads++
	}
	d.completed[req.id] = done

	// Remove from the queue preserving order.
	d.pending[ch] = append(q[:best], q[best+1:]...)
}
