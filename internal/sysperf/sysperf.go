// Package sysperf is a trace-driven multi-core system performance simulator —
// the Ramulator-equivalent substrate behind the paper's end-to-end
// evaluation (Section 7.2, Table 2). It models:
//
//   - N cores, each executing a synthetic benchmark stream (workload
//     package) at its compute-bound IPC, with a bounded number of
//     outstanding misses (MSHRs) and a fraction of serializing
//     (dependent) misses;
//   - a multi-channel DRAM subsystem with per-bank row buffers, open- or
//     closed-row policies, and FR-FCFS request scheduling (Table 2): row
//     hits cost column access only and are prioritized over older misses;
//   - refresh interference: each channel issues an all-bank refresh every
//     tREFI/8192 and is blocked for tRFC, which grows with chip density —
//     the mechanism that makes refresh overhead (and the benefit of longer
//     refresh intervals) scale with capacity.
//
// Multi-core results are reported as weighted speedup (sum of each core's
// shared-mode IPC over its alone-mode IPC), the paper's metric.
package sysperf

import (
	"fmt"
	"sync"

	"reaper/internal/rng"
	"reaper/internal/workload"
)

// Timing holds DRAM timing parameters in nanoseconds.
type Timing struct {
	TRCD   float64 // activate to column command
	TRP    float64 // precharge
	TCL    float64 // column access latency
	TBURST float64 // data burst
	TRFC   float64 // refresh command duration (all-bank)
}

// TimingForChip returns LPDDR4-3200 timings with the refresh command
// duration scaled by chip density. The tRFC values follow the projection
// that refresh latency grows with capacity (the scaling trend the paper and
// RAIDR highlight as the core of the refresh problem).
func TimingForChip(chipGb int) (Timing, error) {
	t := Timing{TRCD: 18, TRP: 18, TCL: 17, TBURST: 10}
	switch chipGb {
	case 8:
		t.TRFC = 350
	case 16:
		t.TRFC = 530
	case 32:
		t.TRFC = 800
	case 64:
		t.TRFC = 1200
	default:
		return Timing{}, fmt.Errorf("sysperf: unsupported chip density %dGb", chipGb)
	}
	return t, nil
}

// Config describes the simulated system (the paper's Table 2 by default).
type Config struct {
	// CPUFreqGHz is the core clock (paper: 4 GHz).
	CPUFreqGHz float64
	// MSHRs bounds outstanding misses per core (paper: 8).
	MSHRs int
	// DependentFraction is the fraction of misses the core cannot overlap
	// (pointer chasing, branch-feeding loads); they serialize execution.
	DependentFraction float64
	// Channels and BanksPerChannel shape the DRAM subsystem (paper: 4
	// channels, 8 banks).
	Channels        int
	BanksPerChannel int
	// Timing is the DRAM timing set.
	Timing Timing
	// TREFI is the per-row refresh interval in seconds; <= 0 disables
	// refresh entirely.
	TREFI float64
	// ClosedRowPolicy precharges banks after every access (the paper's
	// Table 2 uses the open-row policy for single-core and closed-row for
	// multi-core runs; the default here is open-row).
	ClosedRowPolicy bool
	// Scheduler selects the memory scheduling policy; the zero value is
	// FR-FCFS (the paper's Table 2 scheduler).
	Scheduler SchedulerPolicy
	// InstructionsPerCore is the simulation length.
	InstructionsPerCore int64
	// Seed drives the workload streams and dependence sampling.
	Seed uint64
}

// DefaultConfig returns the paper's Table 2 system for the given chip
// density and refresh interval.
func DefaultConfig(chipGb int, tREFI float64) (Config, error) {
	timing, err := TimingForChip(chipGb)
	if err != nil {
		return Config{}, err
	}
	return Config{
		CPUFreqGHz:          4,
		MSHRs:               8,
		DependentFraction:   0.35,
		Channels:            4,
		BanksPerChannel:     8,
		Timing:              timing,
		TREFI:               tREFI,
		InstructionsPerCore: 2_000_000,
		Seed:                1,
	}, nil
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.CPUFreqGHz <= 0 || c.MSHRs <= 0 || c.Channels <= 0 ||
		c.BanksPerChannel <= 0 || c.InstructionsPerCore <= 0 {
		return fmt.Errorf("sysperf: invalid config %+v", c)
	}
	if c.DependentFraction < 0 || c.DependentFraction > 1 {
		return fmt.Errorf("sysperf: dependent fraction %v out of [0,1]", c.DependentFraction)
	}
	if c.Timing.TRCD <= 0 || c.Timing.TRP <= 0 || c.Timing.TCL <= 0 || c.Timing.TBURST <= 0 {
		return fmt.Errorf("sysperf: invalid timing %+v", c.Timing)
	}
	return nil
}

// refPeriodNs returns the time between refresh commands per channel, or 0
// when refresh is disabled. JEDEC distributes 8192 refresh commands across
// one tREFI window.
func (c Config) refPeriodNs() float64 {
	if c.TREFI <= 0 {
		return 0
	}
	return c.TREFI * 1e9 / 8192
}

// dram models the shared DRAM subsystem state during one simulation.
type dram struct {
	cfg       Config
	bankReady [][]float64 // [channel][bank] ready time (ns)
	openRow   [][]uint64  // [channel][bank] open row (+1; 0 = none)
	stats     TrafficStats

	// Queued-engine state (see engine.go).
	pending   [][]pendingReq // per channel
	completed map[int64]float64
	channelOf map[int64]int
	nextID    int64
}

// TrafficStats counts DRAM command traffic for the power model.
type TrafficStats struct {
	Reads       int64
	Writes      int64
	Activations int64
	RowHits     int64
}

func newDRAM(cfg Config) *dram {
	d := &dram{
		cfg:       cfg,
		completed: make(map[int64]float64),
		channelOf: make(map[int64]int),
	}
	d.bankReady = make([][]float64, cfg.Channels)
	d.openRow = make([][]uint64, cfg.Channels)
	d.pending = make([][]pendingReq, cfg.Channels)
	for ch := range d.bankReady {
		d.bankReady[ch] = make([]float64, cfg.BanksPerChannel)
		d.openRow[ch] = make([]uint64, cfg.BanksPerChannel)
	}
	return d
}

// skipRefreshWindows pushes a start time past any refresh windows on the
// channel. Refresh window k occupies [k*P, k*P + tRFC).
func (d *dram) skipRefreshWindows(ch int, start float64) float64 {
	p := d.cfg.refPeriodNs()
	if p <= 0 {
		return start
	}
	for {
		k := float64(int64(start / p))
		winStart := k * p
		winEnd := winStart + d.cfg.Timing.TRFC
		if start >= winStart && start < winEnd {
			start = winEnd
			continue
		}
		return start
	}
}

// service enqueues one request and immediately resolves it — the degenerate
// single-request path used by unit tests; the core loop uses enqueue/resolve
// directly so the scheduler can reorder.
func (d *dram) service(arrivalNs float64, row uint64, write bool) float64 {
	return d.resolve(d.enqueue(arrivalNs, row, write))
}

// core models one core's execution state.
type core struct {
	stream      *workload.Stream
	src         *rng.Source
	timeNs      float64
	instrDone   int64
	outstanding []int64 // ids of in-flight misses (<= MSHRs)
}

// retireEarliest resolves every outstanding miss, blocks the core until the
// earliest completion, and frees that MSHR.
func (c *core) retireEarliest(mem *dram, resolved map[int64]float64) {
	bestIdx := -1
	var bestDone float64
	for i, id := range c.outstanding {
		done, ok := resolved[id]
		if !ok {
			done = mem.resolve(id)
			resolved[id] = done
		}
		if bestIdx < 0 || done < bestDone {
			bestIdx, bestDone = i, done
		}
	}
	if bestIdx < 0 {
		return
	}
	delete(resolved, c.outstanding[bestIdx])
	c.outstanding = append(c.outstanding[:bestIdx], c.outstanding[bestIdx+1:]...)
	if bestDone > c.timeNs {
		c.timeNs = bestDone
	}
}

// Result reports one simulation's outcome.
type Result struct {
	// IPC is the per-core achieved instructions per cycle.
	IPC []float64
	// CycleCount is the per-core cycles to finish its instruction budget.
	Cycles []float64
	// Traffic is the DRAM command volume of the run.
	Traffic TrafficStats
	// DurationSec is the simulated wall time of the longest core.
	DurationSec float64
}

// Simulate runs the mix to completion and returns per-core IPCs.
func Simulate(mix []workload.Spec, cfg Config) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	if len(mix) == 0 {
		return Result{}, fmt.Errorf("sysperf: empty mix")
	}
	mem := newDRAM(cfg)
	cores := make([]*core, len(mix))
	for i, spec := range mix {
		stream, err := workload.NewStream(spec, cfg.Seed+uint64(i)*7919)
		if err != nil {
			return Result{}, err
		}
		cores[i] = &core{
			stream: stream,
			src:    rng.New(cfg.Seed ^ (uint64(i)+1)*0x9e3779b97f4a7c15),
		}
	}
	ghz := cfg.CPUFreqGHz
	// resolved caches completion times of in-flight misses that were
	// scheduled while chasing some other request's completion.
	resolved := make(map[int64]float64)

	active := len(cores)
	for active > 0 {
		// Advance the core that is earliest in simulated time, so the
		// shared request queues see issues in approximately global order.
		var c *core
		for _, cand := range cores {
			if cand.instrDone >= cfg.InstructionsPerCore {
				continue
			}
			if c == nil || cand.timeNs < c.timeNs {
				c = cand
			}
		}
		req := c.stream.Next()
		c.timeNs += float64(req.InstrGap) / c.stream.Spec().BaseIPC / ghz
		c.instrDone += int64(req.InstrGap)

		if c.instrDone >= cfg.InstructionsPerCore {
			// Drain outstanding misses.
			for len(c.outstanding) > 0 {
				c.retireEarliest(mem, resolved)
			}
			active--
			continue
		}

		// MSHR limit: block until the earliest in-flight miss returns.
		if len(c.outstanding) >= cfg.MSHRs {
			c.retireEarliest(mem, resolved)
		}
		id := mem.enqueue(c.timeNs, req.Row, req.Write)
		if c.src.Bernoulli(cfg.DependentFraction) {
			// Serializing miss: execution waits for the data.
			done := mem.resolve(id)
			if done > c.timeNs {
				c.timeNs = done
			}
		} else {
			c.outstanding = append(c.outstanding, id)
		}
	}

	res := Result{
		IPC:     make([]float64, len(cores)),
		Cycles:  make([]float64, len(cores)),
		Traffic: mem.stats,
	}
	for i, c := range cores {
		cycles := c.timeNs * ghz
		res.Cycles[i] = cycles
		res.IPC[i] = float64(cfg.InstructionsPerCore) / cycles
		if sec := c.timeNs * 1e-9; sec > res.DurationSec {
			res.DurationSec = sec
		}
	}
	return res, nil
}

// WeightedSpeedup evaluates the paper's multiprogrammed metric: each core's
// shared-mode IPC divided by its alone-mode IPC on the same configuration,
// summed over cores. aloneIPC supplies (and may cache) the alone-mode IPC
// per spec.
func WeightedSpeedup(shared Result, mix []workload.Spec, aloneIPC func(workload.Spec) (float64, error)) (float64, error) {
	if len(shared.IPC) != len(mix) {
		return 0, fmt.Errorf("sysperf: result/mix length mismatch")
	}
	ws := 0.0
	for i, spec := range mix {
		alone, err := aloneIPC(spec)
		if err != nil {
			return 0, err
		}
		if alone <= 0 {
			return 0, fmt.Errorf("sysperf: non-positive alone IPC for %s", spec.Name)
		}
		ws += shared.IPC[i] / alone
	}
	return ws, nil
}

// AloneIPCCache memoizes alone-mode runs per (spec, config) so mix sweeps do
// not repeat them. It is safe for concurrent use: Simulate is a pure
// function of (spec, config), so losing a fill race just recomputes the
// same value — cached results are independent of call order.
type AloneIPCCache struct {
	cfg   Config
	mu    sync.Mutex
	cache map[string]float64
}

// NewAloneIPCCache builds a cache bound to one configuration.
func NewAloneIPCCache(cfg Config) *AloneIPCCache {
	return &AloneIPCCache{cfg: cfg, cache: make(map[string]float64)}
}

// IPC returns the alone-mode IPC of a spec under the cache's configuration.
func (a *AloneIPCCache) IPC(spec workload.Spec) (float64, error) {
	a.mu.Lock()
	v, ok := a.cache[spec.Name]
	a.mu.Unlock()
	if ok {
		return v, nil
	}
	res, err := Simulate([]workload.Spec{spec}, a.cfg)
	if err != nil {
		return 0, err
	}
	a.mu.Lock()
	a.cache[spec.Name] = res.IPC[0]
	a.mu.Unlock()
	return res.IPC[0], nil
}
