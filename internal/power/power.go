// Package power is a DRAMPower-style energy model for LPDDR4: energy per
// command (activate/precharge, read, write, refresh) plus capacity-dependent
// background power. It substitutes for the DRAMPower tool the paper uses to
// evaluate DRAM power (Section 7.2), with public LPDDR4-class constants.
//
// Two paper results rest on it: Figure 12 (the power cost of profiling
// itself, which is tiny because profiling time is dominated by waiting with
// refresh disabled) and the bottom half of Figure 13 (DRAM power reduction
// from longer refresh intervals, up to ~40-50% at large capacities where
// refresh dominates).
package power

import "fmt"

// Params holds the energy-per-operation constants.
type Params struct {
	// ActivatePJ is the energy of one row activate+precharge pair.
	ActivatePJ float64
	// ReadPJPerByte / WritePJPerByte are the per-byte access energies
	// (I/O plus array).
	ReadPJPerByte  float64
	WritePJPerByte float64
	// RefreshPJPerRow is the energy to refresh one row.
	RefreshPJPerRow float64
	// BackgroundBaseW is the fixed per-module background power (interface
	// clocking, PLLs, controller-side termination) independent of
	// capacity.
	BackgroundBaseW float64
	// BackgroundMWPerGB is the capacity-proportional standby power
	// (leakage, peripheral logic).
	BackgroundMWPerGB float64
	// RowBytes is the row size used to convert capacity to row counts.
	RowBytes int64
}

// DefaultParams returns LPDDR4-class constants for a 32-chip module.
// Because refresh energy scales with the number of rows (capacity) while a
// large part of background power is fixed per module, the refresh share of
// total power grows with density — ~15% for a 32GB (32 x 8Gb) module and
// ~45% for a 256GB (32 x 64Gb) module at the default 64 ms interval,
// matching the paper's motivation ("up to 50%" for dense devices) and the
// Figure 13 power reductions.
func DefaultParams() Params {
	return Params{
		ActivatePJ:        15000, // 15 nJ per ACT+PRE pair
		ReadPJPerByte:     25,
		WritePJPerByte:    25,
		RefreshPJPerRow:   12200, // 12.2 nJ per row refresh -> ~0.1 W/GB at 64 ms
		BackgroundBaseW:   16,
		BackgroundMWPerGB: 60,
		RowBytes:          2048,
	}
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	if p.ActivatePJ < 0 || p.ReadPJPerByte < 0 || p.WritePJPerByte < 0 ||
		p.RefreshPJPerRow < 0 || p.BackgroundBaseW < 0 ||
		p.BackgroundMWPerGB < 0 || p.RowBytes <= 0 {
		return fmt.Errorf("power: invalid params %+v", p)
	}
	return nil
}

// RefreshWatts returns the average power spent refreshing a device of the
// given capacity at per-row refresh interval tREFI (seconds). tREFI <= 0
// means refresh is disabled and costs nothing.
func (p Params) RefreshWatts(bytes int64, tREFI float64) float64 {
	if tREFI <= 0 || bytes <= 0 {
		return 0
	}
	rows := float64(bytes) / float64(p.RowBytes)
	refreshesPerSec := rows / tREFI
	return refreshesPerSec * p.RefreshPJPerRow * 1e-12
}

// BackgroundWatts returns the standby power: the fixed per-module component
// plus the capacity-proportional component.
func (p Params) BackgroundWatts(bytes int64) float64 {
	return p.BackgroundBaseW + p.BackgroundMWPerGB*1e-3*float64(bytes)/(1<<30)
}

// AccessEnergyJoules returns the energy of a traffic volume.
func (p Params) AccessEnergyJoules(bytesRead, bytesWritten, activations int64) float64 {
	return (float64(bytesRead)*p.ReadPJPerByte +
		float64(bytesWritten)*p.WritePJPerByte +
		float64(activations)*p.ActivatePJ) * 1e-12
}

// AccessWatts converts a traffic volume over an interval to average power.
func (p Params) AccessWatts(bytesRead, bytesWritten, activations int64, intervalSeconds float64) float64 {
	if intervalSeconds <= 0 {
		return 0
	}
	return p.AccessEnergyJoules(bytesRead, bytesWritten, activations) / intervalSeconds
}

// Breakdown is an average-power decomposition of a DRAM subsystem.
type Breakdown struct {
	BackgroundW float64
	RefreshW    float64
	AccessW     float64
}

// TotalW returns the sum of the components.
func (b Breakdown) TotalW() float64 { return b.BackgroundW + b.RefreshW + b.AccessW }

// SystemPower returns the power breakdown of a DRAM subsystem of the given
// capacity refreshed at tREFI, serving the given steady access traffic
// (bytes/s and activations/s).
func (p Params) SystemPower(bytes int64, tREFI float64, readBps, writeBps, activationsPerSec float64) Breakdown {
	return Breakdown{
		BackgroundW: p.BackgroundWatts(bytes),
		RefreshW:    p.RefreshWatts(bytes, tREFI),
		AccessW: (readBps*p.ReadPJPerByte +
			writeBps*p.WritePJPerByte +
			activationsPerSec*p.ActivatePJ) * 1e-12,
	}
}

// ReductionVsBaseline returns the fractional power reduction of a breakdown
// relative to a baseline breakdown (Figure 13 bottom's metric).
func ReductionVsBaseline(baseline, other Breakdown) float64 {
	if baseline.TotalW() <= 0 {
		return 0
	}
	return 1 - other.TotalW()/baseline.TotalW()
}
