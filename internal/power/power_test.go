package power

import (
	"math"
	"testing"

	"reaper/internal/perfmodel"
)

func TestValidate(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultParams()
	bad.RowBytes = 0
	if bad.Validate() == nil {
		t.Error("zero row size not rejected")
	}
	bad = DefaultParams()
	bad.ReadPJPerByte = -1
	if bad.Validate() == nil {
		t.Error("negative energy not rejected")
	}
}

func TestRefreshWattsScaling(t *testing.T) {
	p := DefaultParams()
	base := p.RefreshWatts(8<<30, 0.064)
	if base <= 0 {
		t.Fatal("refresh power must be positive")
	}
	// Linear in capacity.
	if r := p.RefreshWatts(64<<30, 0.064) / base; math.Abs(r-8) > 1e-9 {
		t.Errorf("capacity scaling = %v, want 8", r)
	}
	// Inverse in interval.
	if r := base / p.RefreshWatts(8<<30, 0.128); math.Abs(r-2) > 1e-9 {
		t.Errorf("interval scaling = %v, want 2", r)
	}
	// Disabled refresh costs nothing.
	if p.RefreshWatts(8<<30, 0) != 0 {
		t.Error("disabled refresh should cost 0")
	}
}

func TestRefreshShareGrowsWithCapacity(t *testing.T) {
	// The motivation of the paper: refresh is a large share of DRAM power
	// at high densities. The share at default tREFI must grow with
	// capacity and be substantial (tens of percent) for a 64Gb-class
	// module while modest for 8Gb.
	p := DefaultParams()
	share := func(bytes int64) float64 {
		b := p.SystemPower(bytes, 0.064, 0, 0, 0)
		return b.RefreshW / b.TotalW()
	}
	s8 := share(8 << 30 / 8 * 32)   // 32 x 8Gb chips
	s64 := share(64 << 30 / 8 * 32) // 32 x 64Gb chips
	if s64 <= s8 {
		t.Errorf("refresh share did not grow with capacity: %v vs %v", s8, s64)
	}
	if s64 < 0.3 || s64 > 0.7 {
		t.Errorf("64Gb refresh share = %v, want paper-like 0.3-0.7", s64)
	}
}

func TestBackgroundWatts(t *testing.T) {
	p := DefaultParams()
	got := p.BackgroundWatts(2 << 30)
	want := p.BackgroundBaseW + p.BackgroundMWPerGB*2e-3
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("background = %v, want %v", got, want)
	}
}

func TestAccessEnergyAndWatts(t *testing.T) {
	p := DefaultParams()
	e := p.AccessEnergyJoules(1000, 2000, 3)
	want := (1000*p.ReadPJPerByte + 2000*p.WritePJPerByte + 3*p.ActivatePJ) * 1e-12
	if math.Abs(e-want) > 1e-20 {
		t.Errorf("energy = %v, want %v", e, want)
	}
	if w := p.AccessWatts(1000, 2000, 3, 2); math.Abs(w-e/2) > 1e-20 {
		t.Errorf("watts = %v, want %v", w, e/2)
	}
	if p.AccessWatts(1, 1, 1, 0) != 0 {
		t.Error("zero interval should give zero watts")
	}
}

func TestProfilingPowerIsTiny(t *testing.T) {
	// Figure 12's claim: profiling power is negligible because a round is
	// dominated by waiting, not accessing. One brute-force round every 4
	// hours on 32x8Gb must cost far less than 1% of the module's baseline
	// power.
	p := DefaultParams()
	bytes := int64(32 * (8 << 30) / 8)
	round := perfmodel.RoundConfig{
		TREFI: 1.024, NumPatterns: 6, NumIterations: 16, TotalBytes: bytes,
	}
	cmds := round.Commands(p.RowBytes)
	profilingW := p.AccessWatts(cmds.BytesRead, cmds.BytesWritten, cmds.RowActivations, 4*3600)
	baseline := p.SystemPower(bytes, 0.064, 0, 0, 0).TotalW()
	if profilingW/baseline > 0.01 {
		t.Errorf("profiling power %v W is %v of baseline %v W; want < 1%%",
			profilingW, profilingW/baseline, baseline)
	}
	if profilingW <= 0 {
		t.Error("profiling power must still be positive")
	}
}

func TestSystemPowerBreakdown(t *testing.T) {
	p := DefaultParams()
	b := p.SystemPower(8<<30, 0.064, 1e9, 5e8, 1e6)
	if b.BackgroundW <= 0 || b.RefreshW <= 0 || b.AccessW <= 0 {
		t.Errorf("all components should be positive: %+v", b)
	}
	if math.Abs(b.TotalW()-(b.BackgroundW+b.RefreshW+b.AccessW)) > 1e-12 {
		t.Error("TotalW inconsistent")
	}
}

func TestReductionVsBaseline(t *testing.T) {
	p := DefaultParams()
	bytes := int64(32 * (64 << 30) / 8)
	base := p.SystemPower(bytes, 0.064, 0, 0, 0)
	noRef := p.SystemPower(bytes, 0, 0, 0, 0)
	red := ReductionVsBaseline(base, noRef)
	// Eliminating refresh on a 64Gb-class module should cut a large
	// fraction of DRAM power (paper: ~41% average).
	if red < 0.3 || red > 0.7 {
		t.Errorf("no-refresh reduction = %v, want 0.3-0.7", red)
	}
	// Longer interval reduces power monotonically.
	r512 := ReductionVsBaseline(base, p.SystemPower(bytes, 0.512, 0, 0, 0))
	r1024 := ReductionVsBaseline(base, p.SystemPower(bytes, 1.024, 0, 0, 0))
	if !(0 < r512 && r512 < r1024 && r1024 < red) {
		t.Errorf("reductions not ordered: %v %v %v", r512, r1024, red)
	}
	if ReductionVsBaseline(Breakdown{}, noRef) != 0 {
		t.Error("zero baseline should give zero reduction")
	}
}
