// Package workload generates synthetic multiprogrammed workloads standing in
// for the paper's SPEC CPU2006 mixes (Section 7.2: 20 heterogeneous 4-core
// mixes built by randomly selecting 4 benchmarks). Each benchmark is a
// deterministic stream of last-level-cache misses characterized by its miss
// intensity (MPKI), row-buffer locality, write fraction, and compute-bound
// IPC — the knobs that determine how sensitive it is to DRAM refresh
// interference.
package workload

import (
	"fmt"

	"reaper/internal/rng"
)

// Spec characterizes one benchmark's memory behaviour.
type Spec struct {
	// Name labels the benchmark (SPEC-inspired).
	Name string
	// MPKI is last-level-cache misses per thousand instructions.
	MPKI float64
	// RowLocality is the probability that a miss targets the same DRAM
	// row as the core's previous miss (row-buffer friendliness).
	RowLocality float64
	// WriteFraction is the fraction of misses that are writebacks.
	WriteFraction float64
	// BaseIPC is the instructions per cycle the core sustains when every
	// miss hits an ideal zero-latency memory.
	BaseIPC float64
	// FootprintRows is the number of distinct DRAM rows the benchmark
	// touches.
	FootprintRows int
}

// Validate reports whether the spec is usable.
func (s Spec) Validate() error {
	if s.MPKI < 0 || s.RowLocality < 0 || s.RowLocality > 1 ||
		s.WriteFraction < 0 || s.WriteFraction > 1 ||
		s.BaseIPC <= 0 || s.FootprintRows <= 0 {
		return fmt.Errorf("workload: invalid spec %+v", s)
	}
	return nil
}

// Benchmarks returns the benchmark suite: SPEC CPU2006-inspired
// characterizations spanning memory-bound (mcf, lbm, milc) to compute-bound
// (povray, gamess) behaviour. The MPKI and locality values follow published
// characterizations of the suite.
func Benchmarks() []Spec {
	return []Spec{
		{Name: "mcf", MPKI: 32, RowLocality: 0.20, WriteFraction: 0.25, BaseIPC: 1.2, FootprintRows: 1 << 16},
		{Name: "lbm", MPKI: 25, RowLocality: 0.55, WriteFraction: 0.45, BaseIPC: 1.5, FootprintRows: 1 << 15},
		{Name: "milc", MPKI: 18, RowLocality: 0.35, WriteFraction: 0.30, BaseIPC: 1.4, FootprintRows: 1 << 15},
		{Name: "libquantum", MPKI: 22, RowLocality: 0.75, WriteFraction: 0.20, BaseIPC: 1.6, FootprintRows: 1 << 14},
		{Name: "omnetpp", MPKI: 12, RowLocality: 0.25, WriteFraction: 0.30, BaseIPC: 1.3, FootprintRows: 1 << 15},
		{Name: "soplex", MPKI: 15, RowLocality: 0.40, WriteFraction: 0.25, BaseIPC: 1.4, FootprintRows: 1 << 15},
		{Name: "gcc", MPKI: 6, RowLocality: 0.45, WriteFraction: 0.30, BaseIPC: 1.8, FootprintRows: 1 << 14},
		{Name: "sphinx3", MPKI: 10, RowLocality: 0.50, WriteFraction: 0.15, BaseIPC: 1.6, FootprintRows: 1 << 14},
		{Name: "astar", MPKI: 5, RowLocality: 0.35, WriteFraction: 0.25, BaseIPC: 1.7, FootprintRows: 1 << 13},
		{Name: "bzip2", MPKI: 3, RowLocality: 0.55, WriteFraction: 0.30, BaseIPC: 2.0, FootprintRows: 1 << 13},
		{Name: "perlbench", MPKI: 1.5, RowLocality: 0.60, WriteFraction: 0.25, BaseIPC: 2.2, FootprintRows: 1 << 12},
		{Name: "gamess", MPKI: 0.5, RowLocality: 0.70, WriteFraction: 0.15, BaseIPC: 2.5, FootprintRows: 1 << 11},
		{Name: "povray", MPKI: 0.3, RowLocality: 0.70, WriteFraction: 0.10, BaseIPC: 2.6, FootprintRows: 1 << 11},
		{Name: "h264ref", MPKI: 2, RowLocality: 0.65, WriteFraction: 0.20, BaseIPC: 2.1, FootprintRows: 1 << 12},
	}
}

// ByName returns the benchmark with the given name.
func ByName(name string) (Spec, error) {
	for _, s := range Benchmarks() {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("workload: unknown benchmark %q", name)
}

// Mixes builds n multiprogrammed mixes of perMix randomly selected
// benchmarks each (with replacement across mixes, without replacement
// within a mix when possible), reproducing the paper's methodology of 20
// random 4-benchmark mixes.
func Mixes(n, perMix int, seed uint64) [][]Spec {
	if n <= 0 || perMix <= 0 {
		return nil
	}
	suite := Benchmarks()
	src := rng.New(seed)
	mixes := make([][]Spec, n)
	perm := make([]int, len(suite))
	for i := range mixes {
		src.Perm(perm)
		mix := make([]Spec, perMix)
		for j := 0; j < perMix; j++ {
			mix[j] = suite[perm[j%len(suite)]]
		}
		mixes[i] = mix
	}
	return mixes
}

// Request is one memory request emitted by a Stream.
type Request struct {
	// InstrGap is the number of instructions executed since the previous
	// request.
	InstrGap int
	// Row is the DRAM row id targeted (dense in [0, FootprintRows)).
	Row uint64
	// Write marks writebacks.
	Write bool
}

// Stream deterministically generates a benchmark's miss stream.
type Stream struct {
	spec    Spec
	src     *rng.Source
	lastRow uint64
}

// NewStream builds a stream for the spec. Identical (spec, seed) pairs
// produce identical streams.
func NewStream(spec Spec, seed uint64) (*Stream, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	s := &Stream{spec: spec, src: rng.New(seed)}
	s.lastRow = s.src.Uint64n(uint64(spec.FootprintRows))
	return s, nil
}

// Spec returns the stream's benchmark characterization.
func (s *Stream) Spec() Spec { return s.spec }

// Next returns the next memory request. For MPKI == 0 it returns gaps of
// one million instructions with no real locality pressure (a nearly
// memory-idle core).
func (s *Stream) Next() Request {
	meanGap := 1e6
	if s.spec.MPKI > 0 {
		meanGap = 1000 / s.spec.MPKI
	}
	gap := int(s.src.Exp(meanGap)) + 1
	row := s.lastRow
	if !s.src.Bernoulli(s.spec.RowLocality) {
		row = s.src.Uint64n(uint64(s.spec.FootprintRows))
	}
	s.lastRow = row
	return Request{
		InstrGap: gap,
		Row:      row,
		Write:    s.src.Bernoulli(s.spec.WriteFraction),
	}
}
