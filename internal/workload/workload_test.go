package workload

import (
	"math"
	"testing"
)

func TestBenchmarksValid(t *testing.T) {
	suite := Benchmarks()
	if len(suite) < 10 {
		t.Fatalf("suite too small: %d", len(suite))
	}
	names := make(map[string]bool)
	for _, s := range suite {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
		if names[s.Name] {
			t.Errorf("duplicate benchmark %s", s.Name)
		}
		names[s.Name] = true
	}
}

func TestSuiteSpansIntensities(t *testing.T) {
	// The suite must include both memory-bound and compute-bound programs
	// for heterogeneous mixes.
	var min, max float64 = math.Inf(1), 0
	for _, s := range Benchmarks() {
		if s.MPKI < min {
			min = s.MPKI
		}
		if s.MPKI > max {
			max = s.MPKI
		}
	}
	if min > 1 || max < 20 {
		t.Errorf("MPKI range [%v, %v] too narrow", min, max)
	}
}

func TestByName(t *testing.T) {
	s, err := ByName("mcf")
	if err != nil || s.Name != "mcf" {
		t.Fatalf("ByName(mcf) = %+v, %v", s, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown name not rejected")
	}
}

func TestSpecValidate(t *testing.T) {
	bad := Spec{Name: "x", MPKI: -1, BaseIPC: 1, FootprintRows: 1}
	if bad.Validate() == nil {
		t.Error("negative MPKI not rejected")
	}
	bad = Spec{Name: "x", RowLocality: 1.5, BaseIPC: 1, FootprintRows: 1}
	if bad.Validate() == nil {
		t.Error("locality > 1 not rejected")
	}
	bad = Spec{Name: "x", BaseIPC: 0, FootprintRows: 1}
	if bad.Validate() == nil {
		t.Error("zero IPC not rejected")
	}
}

func TestMixesShapeAndDeterminism(t *testing.T) {
	a := Mixes(20, 4, 7)
	b := Mixes(20, 4, 7)
	if len(a) != 20 {
		t.Fatalf("got %d mixes", len(a))
	}
	for i := range a {
		if len(a[i]) != 4 {
			t.Fatalf("mix %d has %d members", i, len(a[i]))
		}
		for j := range a[i] {
			if a[i][j].Name != b[i][j].Name {
				t.Fatal("mixes not deterministic")
			}
		}
		// Within a mix, no duplicates (perMix < suite size).
		seen := map[string]bool{}
		for _, s := range a[i] {
			if seen[s.Name] {
				t.Errorf("mix %d has duplicate %s", i, s.Name)
			}
			seen[s.Name] = true
		}
	}
	// Different seeds differ.
	c := Mixes(20, 4, 8)
	same := true
	for i := range a {
		for j := range a[i] {
			if a[i][j].Name != c[i][j].Name {
				same = false
			}
		}
	}
	if same {
		t.Error("different seeds gave identical mixes")
	}
	if Mixes(0, 4, 1) != nil || Mixes(4, 0, 1) != nil {
		t.Error("degenerate mix requests should return nil")
	}
}

func TestStreamDeterminism(t *testing.T) {
	spec, _ := ByName("mcf")
	a, err := NewStream(spec, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := NewStream(spec, 3)
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatal("streams diverged")
		}
	}
}

func TestStreamRejectsBadSpec(t *testing.T) {
	if _, err := NewStream(Spec{}, 1); err == nil {
		t.Error("zero spec not rejected")
	}
}

func TestStreamMPKIStatistics(t *testing.T) {
	spec, _ := ByName("libquantum") // MPKI 22
	s, _ := NewStream(spec, 4)
	const n = 50000
	totalInstr := 0
	for i := 0; i < n; i++ {
		r := s.Next()
		if r.InstrGap < 1 {
			t.Fatal("gap must be at least 1 instruction")
		}
		totalInstr += r.InstrGap
	}
	mpki := float64(n) / float64(totalInstr) * 1000
	if math.Abs(mpki-spec.MPKI) > spec.MPKI*0.1 {
		t.Errorf("measured MPKI = %v, want ~%v", mpki, spec.MPKI)
	}
}

func TestStreamRowLocality(t *testing.T) {
	spec, _ := ByName("libquantum") // locality 0.75
	s, _ := NewStream(spec, 5)
	const n = 50000
	same := 0
	prev := s.Next().Row
	for i := 0; i < n; i++ {
		r := s.Next()
		if r.Row == prev {
			same++
		}
		prev = r.Row
	}
	frac := float64(same) / n
	// Random re-picks can also land on the same row, so frac >= locality.
	if frac < 0.72 || frac > 0.82 {
		t.Errorf("same-row fraction = %v, want ~0.75", frac)
	}
}

func TestStreamWriteFraction(t *testing.T) {
	spec, _ := ByName("lbm") // write fraction 0.45
	s, _ := NewStream(spec, 6)
	const n = 50000
	writes := 0
	for i := 0; i < n; i++ {
		if s.Next().Write {
			writes++
		}
	}
	frac := float64(writes) / n
	if math.Abs(frac-0.45) > 0.02 {
		t.Errorf("write fraction = %v, want 0.45", frac)
	}
}

func TestStreamRowsWithinFootprint(t *testing.T) {
	spec, _ := ByName("gamess")
	s, _ := NewStream(spec, 7)
	for i := 0; i < 10000; i++ {
		if r := s.Next(); r.Row >= uint64(spec.FootprintRows) {
			t.Fatalf("row %d outside footprint %d", r.Row, spec.FootprintRows)
		}
	}
}
