package patterns

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse reconstructs a Pattern from its Name() string. The returned value
// compares == to the original for every pattern this package constructs
// (all pattern types are comparable and carry only their parameters), which
// is what lets checkpointed device state re-identify cached round content
// after a resume: the round cache is keyed by pattern value identity.
func Parse(name string) (Pattern, error) {
	if rest, ok := strings.CutPrefix(name, "~"); ok {
		inner, err := Parse(rest)
		if err != nil {
			return nil, err
		}
		return Invert(inner), nil
	}
	switch name {
	case "solid0":
		return Solid0(), nil
	case "solid1":
		return Solid1(), nil
	case "checker":
		return Checkerboard(), nil
	case "colstripe":
		return ColStripe(), nil
	case "rowstripe":
		return RowStripe(), nil
	case "walk1":
		return WalkingOnes(), nil
	}
	if rest, ok := strings.CutPrefix(name, "random("); ok {
		hex, ok := strings.CutSuffix(rest, ")")
		if !ok {
			return nil, fmt.Errorf("patterns: malformed name %q", name)
		}
		seed, err := strconv.ParseUint(hex, 0, 64)
		if err != nil {
			return nil, fmt.Errorf("patterns: malformed random seed in %q: %w", name, err)
		}
		return Random(seed), nil
	}
	return nil, fmt.Errorf("patterns: unknown pattern name %q", name)
}
