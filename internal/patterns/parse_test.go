package patterns

import "testing"

// TestParseRoundTrip pins the identity contract Parse exists for: the
// parsed pattern is == to the original (not merely behaviorally equal), for
// every pattern the repository constructs, so round-cache keys built from
// pattern values survive a checkpoint/restore cycle.
func TestParseRoundTrip(t *testing.T) {
	var all []Pattern
	all = append(all, StandardWithInverses(0xBEEF)...)
	all = append(all, Solid1(), Invert(Solid1()), Random(0), Invert(Random(^uint64(0))))
	for _, p := range all {
		got, err := Parse(p.Name())
		if err != nil {
			t.Errorf("Parse(%q): %v", p.Name(), err)
			continue
		}
		if got != p {
			t.Errorf("Parse(%q) = %#v, not == to original %#v", p.Name(), got, p)
		}
		if got.Name() != p.Name() {
			t.Errorf("Parse(%q).Name() = %q", p.Name(), got.Name())
		}
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	for _, name := range []string{"", "plaid", "random(", "random(xyz)", "~", "~plaid"} {
		if _, err := Parse(name); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", name)
		}
	}
}
