// Package patterns implements the data patterns used for DRAM retention
// failure testing. The paper (Section 3.2, citing Liu+ ISCA'13 and Khan+
// SIGMETRICS'14) identifies solid 1s/0s, checkerboards, row/column stripes,
// walking 1s/0s, random data, and their inverses as the effective patterns;
// Figure 5 shows their relative failure-discovery coverage on LPDDR4.
//
// A Pattern deterministically defines the 64-bit word stored at every
// (row, word) location, which lets the device model re-derive stored content
// without materializing it. Pattern satisfies dram.RowData structurally.
package patterns

import "fmt"

// Pattern is deterministic row content with a display name.
type Pattern interface {
	// Word returns the content of the given word of the given global row.
	Word(globalRow uint32, word int) uint64
	// Name identifies the pattern, e.g. "checker" or "~rowstripe".
	Name() string
}

type solid struct{ val uint64 }

func (s solid) Word(uint32, int) uint64 { return s.val }
func (s solid) Name() string {
	if s.val == 0 {
		return "solid0"
	}
	return "solid1"
}

// Solid0 is the all-zeros data pattern.
func Solid0() Pattern { return solid{0} }

// Solid1 is the all-ones data pattern.
func Solid1() Pattern { return solid{^uint64(0)} }

type checker struct{}

func (checker) Word(row uint32, _ int) uint64 {
	if row%2 == 0 {
		return 0xAAAAAAAAAAAAAAAA
	}
	return 0x5555555555555555
}
func (checker) Name() string { return "checker" }

// Checkerboard alternates bits within each row and flips phase between
// adjacent rows, maximizing the number of charged-next-to-discharged
// neighbour pairs.
func Checkerboard() Pattern { return checker{} }

type colStripe struct{}

func (colStripe) Word(uint32, int) uint64 { return 0xAAAAAAAAAAAAAAAA }
func (colStripe) Name() string            { return "colstripe" }

// ColStripe stores alternating bit columns, identical in every row.
func ColStripe() Pattern { return colStripe{} }

type rowStripe struct{}

func (rowStripe) Word(row uint32, _ int) uint64 {
	if row%2 == 0 {
		return ^uint64(0)
	}
	return 0
}
func (rowStripe) Name() string { return "rowstripe" }

// RowStripe stores alternating all-ones and all-zeros rows.
func RowStripe() Pattern { return rowStripe{} }

type walking struct{}

func (walking) Word(row uint32, word int) uint64 {
	return 1 << ((uint(row) + uint(word)) % 64)
}
func (walking) Name() string { return "walk1" }

// WalkingOnes stores a single 1 bit marching through a field of 0s, with the
// position advancing by one bit per word and per row.
func WalkingOnes() Pattern { return walking{} }

type random struct{ seed uint64 }

func (r random) Word(row uint32, word int) uint64 {
	x := r.seed ^ uint64(row)*0x9e3779b97f4a7c15 ^ uint64(word)*0xc2b2ae3d27d4eb4f
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}
func (r random) Name() string { return fmt.Sprintf("random(%#x)", r.seed) }

// Random returns a reproducible pseudo-random pattern: every (row, word)
// location holds a stable hash of (seed, row, word). Distinct seeds give
// independent patterns, which is how profiling explores fresh neighbourhood
// data each iteration.
func Random(seed uint64) Pattern { return random{seed} }

type inverted struct{ p Pattern }

func (i inverted) Word(row uint32, word int) uint64 { return ^i.p.Word(row, word) }
func (i inverted) Name() string                     { return "~" + i.p.Name() }

// Invert returns the bitwise inverse of a pattern. Testing a pattern and its
// inverse covers both true-cells (which lose 1s) and anti-cells (which lose
// 0s).
func Invert(p Pattern) Pattern {
	if i, ok := p.(inverted); ok {
		return i.p
	}
	return inverted{p}
}

// Standard returns the six canonical test patterns without inverses:
// solid 0s, checkerboard, column stripe, row stripe, walking 1s, and a
// random pattern derived from seed.
func Standard(seed uint64) []Pattern {
	return []Pattern{
		Solid0(),
		Checkerboard(),
		ColStripe(),
		RowStripe(),
		WalkingOnes(),
		Random(seed),
	}
}

// StandardWithInverses returns the six canonical patterns and their six
// inverses (12 total), the full set the paper's brute-force profiling runs.
func StandardWithInverses(seed uint64) []Pattern {
	base := Standard(seed)
	out := make([]Pattern, 0, 2*len(base))
	for _, p := range base {
		out = append(out, p, Invert(p))
	}
	return out
}

// Names returns the display names of a pattern list.
func Names(ps []Pattern) []string {
	out := make([]string, len(ps))
	for i, p := range ps {
		out[i] = p.Name()
	}
	return out
}
