package patterns

import (
	"math/bits"
	"testing"
	"testing/quick"
)

func TestSolid(t *testing.T) {
	if Solid0().Word(3, 7) != 0 {
		t.Error("solid0 not zero")
	}
	if Solid1().Word(0, 0) != ^uint64(0) {
		t.Error("solid1 not all ones")
	}
	if Solid0().Name() != "solid0" || Solid1().Name() != "solid1" {
		t.Error("solid names wrong")
	}
}

func TestCheckerboardAlternates(t *testing.T) {
	p := Checkerboard()
	even := p.Word(0, 0)
	odd := p.Word(1, 0)
	if even != ^odd {
		t.Errorf("checker rows not inverted: %x vs %x", even, odd)
	}
	// Within a row, adjacent bits must differ.
	if even&(even>>1) != 0 || (^even)&((^even)>>1) != 0 {
		t.Errorf("checker row has adjacent equal bits: %x", even)
	}
}

func TestColStripeConstantAcrossRows(t *testing.T) {
	p := ColStripe()
	if p.Word(0, 0) != p.Word(5, 3) {
		t.Error("colstripe varies across rows")
	}
	if bits.OnesCount64(p.Word(0, 0)) != 32 {
		t.Error("colstripe should have 32 ones per word")
	}
}

func TestRowStripe(t *testing.T) {
	p := RowStripe()
	if p.Word(0, 0) != ^uint64(0) || p.Word(1, 0) != 0 {
		t.Error("rowstripe rows wrong")
	}
}

func TestWalkingOnesSingleBit(t *testing.T) {
	p := WalkingOnes()
	for row := uint32(0); row < 100; row++ {
		for word := 0; word < 8; word++ {
			if bits.OnesCount64(p.Word(row, word)) != 1 {
				t.Fatalf("walking ones has %d bits set at (%d,%d)",
					bits.OnesCount64(p.Word(row, word)), row, word)
			}
		}
	}
	// The bit must actually move between adjacent words.
	if p.Word(0, 0) == p.Word(0, 1) {
		t.Error("walking bit does not walk")
	}
}

func TestRandomDeterministicAndSeedSensitive(t *testing.T) {
	a := Random(1)
	b := Random(1)
	c := Random(2)
	f := func(row uint32, word uint16) bool {
		w := int(word)
		return a.Word(row, w) == b.Word(row, w)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := 0; i < 100; i++ {
		if a.Word(uint32(i), i) == c.Word(uint32(i), i) {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different random seeds agreed on %d/100 words", same)
	}
}

func TestRandomBitBalance(t *testing.T) {
	p := Random(99)
	ones := 0
	const words = 10000
	for i := 0; i < words; i++ {
		ones += bits.OnesCount64(p.Word(uint32(i/64), i%64))
	}
	frac := float64(ones) / (words * 64)
	if frac < 0.49 || frac > 0.51 {
		t.Errorf("random pattern ones fraction = %v, want ~0.5", frac)
	}
}

func TestInvertRoundTrip(t *testing.T) {
	f := func(row uint32, word uint16, seed uint64) bool {
		p := Random(seed)
		w := int(word)
		inv := Invert(p)
		if inv.Word(row, w) != ^p.Word(row, w) {
			return false
		}
		// Double inversion returns the original pattern value.
		return Invert(inv).Word(row, w) == p.Word(row, w)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestInvertName(t *testing.T) {
	if Invert(Solid0()).Name() != "~solid0" {
		t.Errorf("inverted name = %q", Invert(Solid0()).Name())
	}
}

func TestStandardSets(t *testing.T) {
	std := Standard(1)
	if len(std) != 6 {
		t.Fatalf("Standard has %d patterns, want 6", len(std))
	}
	all := StandardWithInverses(1)
	if len(all) != 12 {
		t.Fatalf("StandardWithInverses has %d patterns, want 12", len(all))
	}
	// Each even index is followed by its inverse.
	for i := 0; i < len(all); i += 2 {
		if all[i+1].Word(7, 3) != ^all[i].Word(7, 3) {
			t.Errorf("pattern %d's successor is not its inverse", i)
		}
	}
	names := Names(all)
	seen := make(map[string]bool)
	for _, n := range names {
		if seen[n] {
			t.Errorf("duplicate pattern name %q", n)
		}
		seen[n] = true
	}
}
