package mitigate

import (
	"fmt"
	"sort"

	"reaper/internal/core"
	"reaper/internal/dram"
)

// RAIDR implements retention-aware intelligent DRAM refresh (Liu et al.,
// ISCA'12; the paper's Section 7.1.2): rows are grouped into bins by the
// retention time of their weakest cell, and each bin is refreshed at its own
// interval instead of refreshing everything at the worst-case rate. REAPER
// supplies the per-interval failing-cell profiles the binning is built from.
type RAIDR struct {
	geom dram.Geometry
	// bins holds the candidate refresh intervals in ascending order;
	// bins[0] is the safe default every unprofiled row gets.
	bins []float64
	// rowBin maps every global row to an index into bins.
	rowBin []int
}

// NewRAIDR builds a binning structure. bins must be ascending positive
// refresh intervals (seconds); bins[0] is the default (safe) interval.
func NewRAIDR(geom dram.Geometry, bins []float64) (*RAIDR, error) {
	if err := geom.Validate(); err != nil {
		return nil, err
	}
	if len(bins) < 2 {
		return nil, fmt.Errorf("mitigate: RAIDR needs at least 2 bins")
	}
	if !sort.Float64sAreSorted(bins) {
		return nil, fmt.Errorf("mitigate: RAIDR bins must be ascending: %v", bins)
	}
	if bins[0] <= 0 {
		return nil, fmt.Errorf("mitigate: RAIDR bins must be positive")
	}
	r := &RAIDR{
		geom:   geom,
		bins:   append([]float64(nil), bins...),
		rowBin: make([]int, geom.TotalRows()),
	}
	return r, nil
}

// Assign bins every row using per-interval failure profiles: profileAt(t)
// must return the set of cells that fail when refreshed every t seconds
// (typically a reach-profiling result at target interval t). A row is placed
// in the longest bin at which none of its cells fail; rows with failures
// even at bins[1] stay at the default bins[0].
func (r *RAIDR) Assign(profileAt func(interval float64) *core.FailureSet) error {
	if profileAt == nil {
		return fmt.Errorf("mitigate: nil profile source")
	}
	// Mark, for each row, the failing bins from longest down.
	rowFailsAt := make([][]bool, r.geom.TotalRows())
	for bi := 1; bi < len(r.bins); bi++ {
		prof := profileAt(r.bins[bi])
		if prof == nil {
			return fmt.Errorf("mitigate: nil profile for bin %v", r.bins[bi])
		}
		for _, bit := range prof.Sorted() {
			a := r.geom.AddrOf(bit)
			gr := r.geom.GlobalRow(a.Bank, a.Row)
			if rowFailsAt[gr] == nil {
				rowFailsAt[gr] = make([]bool, len(r.bins))
			}
			rowFailsAt[gr][bi] = true
		}
	}
	for gr := range r.rowBin {
		fails := rowFailsAt[gr]
		best := len(r.bins) - 1
		if fails != nil {
			// Failing at bin i disqualifies bins >= i (longer intervals
			// are supersets of failures).
			best = len(r.bins) - 1
			for bi := 1; bi < len(r.bins); bi++ {
				if fails[bi] {
					best = bi - 1
					break
				}
			}
		}
		r.rowBin[gr] = best
	}
	return nil
}

// BinOf returns the refresh interval assigned to a row.
func (r *RAIDR) BinOf(bank, row int) float64 {
	return r.bins[r.rowBin[r.geom.GlobalRow(bank, row)]]
}

// BinCounts returns how many rows sit in each bin.
func (r *RAIDR) BinCounts() []int {
	counts := make([]int, len(r.bins))
	for _, b := range r.rowBin {
		counts[b]++
	}
	return counts
}

// RefreshOpsPerSecond returns the row-refresh rate the binning implies.
func (r *RAIDR) RefreshOpsPerSecond() float64 {
	ops := 0.0
	for _, b := range r.rowBin {
		ops += 1 / r.bins[b]
	}
	return ops
}

// BaselineOpsPerSecond returns the row-refresh rate when every row uses the
// given single interval.
func (r *RAIDR) BaselineOpsPerSecond(interval float64) float64 {
	return float64(r.geom.TotalRows()) / interval
}

// Savings returns the fraction of refresh operations eliminated relative to
// refreshing every row at baselineInterval.
func (r *RAIDR) Savings(baselineInterval float64) float64 {
	base := r.BaselineOpsPerSecond(baselineInterval)
	if base <= 0 {
		return 0
	}
	s := 1 - r.RefreshOpsPerSecond()/base
	if s < 0 {
		return 0
	}
	return s
}

// Bins returns the configured bin intervals.
func (r *RAIDR) Bins() []float64 { return append([]float64(nil), r.bins...) }
