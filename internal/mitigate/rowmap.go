package mitigate

import (
	"fmt"

	"reaper/internal/core"
	"reaper/internal/dram"
)

// RowMapOut is the simplest mitigation the paper sketches in Section 1: the
// memory controller removes every row containing a failing cell from the
// system address space. Its cost is lost capacity, which makes it the
// mechanism most intolerant to false positives (each false positive can
// discard an entire healthy row).
type RowMapOut struct {
	geom     dram.Geometry
	excluded map[uint32]struct{}
}

// NewRowMapOut builds an empty map-out table for the geometry.
func NewRowMapOut(geom dram.Geometry) (*RowMapOut, error) {
	if err := geom.Validate(); err != nil {
		return nil, err
	}
	return &RowMapOut{geom: geom, excluded: make(map[uint32]struct{})}, nil
}

// Exclude removes every row containing a cell from the failure set. It
// returns the number of newly excluded rows.
func (m *RowMapOut) Exclude(failures *core.FailureSet) int {
	added := 0
	for _, bit := range failures.Sorted() {
		a := m.geom.AddrOf(bit)
		gr := m.geom.GlobalRow(a.Bank, a.Row)
		if _, done := m.excluded[gr]; !done {
			m.excluded[gr] = struct{}{}
			added++
		}
	}
	return added
}

// Usable reports whether a row is still part of the address space.
func (m *RowMapOut) Usable(bank, row int) bool {
	_, gone := m.excluded[m.geom.GlobalRow(bank, row)]
	return !gone
}

// LostRows returns how many rows have been mapped out.
func (m *RowMapOut) LostRows() int { return len(m.excluded) }

// CapacityLoss returns the fraction of device capacity mapped out.
func (m *RowMapOut) CapacityLoss() float64 {
	return float64(len(m.excluded)) / float64(m.geom.TotalRows())
}

// CellRemap is a SECRET-style mechanism (Lin et al., ICCD'12; the paper's
// Section 3.1): individual failing cells are remapped to known-good spare
// cells, so the cost per failure — true or false positive — is exactly one
// spare cell.
type CellRemap struct {
	spares int
	remap  map[uint64]int // failing bit -> spare index
}

// NewCellRemap builds a remapper with the given spare-cell budget.
func NewCellRemap(spares int) (*CellRemap, error) {
	if spares <= 0 {
		return nil, fmt.Errorf("mitigate: spare budget must be positive")
	}
	return &CellRemap{spares: spares, remap: make(map[uint64]int)}, nil
}

// Install allocates a spare for every cell in the failure set, returning an
// error when the budget is exhausted. Installing twice is idempotent for
// already-remapped cells.
func (c *CellRemap) Install(failures *core.FailureSet) error {
	for _, bit := range failures.Sorted() {
		if _, done := c.remap[bit]; done {
			continue
		}
		if len(c.remap) >= c.spares {
			return fmt.Errorf("mitigate: spare cells exhausted after %d remaps", len(c.remap))
		}
		c.remap[bit] = len(c.remap)
	}
	return nil
}

// Redirect returns the spare index for a failing bit, if remapped.
func (c *CellRemap) Redirect(bit uint64) (int, bool) {
	idx, ok := c.remap[bit]
	return idx, ok
}

// Used reports how many spares are consumed.
func (c *CellRemap) Used() int { return len(c.remap) }

// Capacity reports the total spare budget.
func (c *CellRemap) Capacity() int { return c.spares }
