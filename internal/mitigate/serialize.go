package mitigate

import (
	"fmt"
	"sort"

	"reaper/internal/checkpoint"
)

// Checkpoint surface of ArchShield: the remap table and the spare allocation
// cursor. The segment bounds are derived from the constructor arguments and
// are written only as guards against restoring into a differently shaped
// shield.

const maxRestoreRemaps = 1 << 28

// EncodeState serializes the shield's mutable state.
func (a *ArchShield) EncodeState(e *checkpoint.Encoder) {
	e.Section("mitigate.archshield")
	e.U64(uint64(a.reservedFromRow))
	e.U64(a.spareLimit)
	e.U64(a.nextSpare)
	keys := make([]uint64, 0, len(a.remap))
	for k := range a.remap {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	e.Len(len(keys))
	for _, k := range keys {
		e.U64(k)
		e.U64(a.remap[k])
	}
}

// RestoreState loads state serialized by EncodeState into a freshly
// constructed shield with the same geometry and reserve fraction.
func (a *ArchShield) RestoreState(d *checkpoint.Decoder) error {
	d.Section("mitigate.archshield")
	from, limit := uint32(d.U64()), d.U64()
	if d.Err() == nil && (from != a.reservedFromRow || limit != a.spareLimit) {
		return fmt.Errorf("mitigate: restore: segment [%d, %d) does not match shield [%d, %d)",
			from, limit, a.reservedFromRow, a.spareLimit)
	}
	a.nextSpare = d.U64()
	n := d.Len(maxRestoreRemaps)
	if d.Err() != nil {
		return d.Err()
	}
	a.remap = make(map[uint64]uint64, n)
	for i := 0; i < n; i++ {
		k := d.U64()
		a.remap[k] = d.U64()
	}
	return d.Err()
}
