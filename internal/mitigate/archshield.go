// Package mitigate implements the retention failure mitigation mechanisms
// the paper combines REAPER with (Section 7.1): ArchShield-style word
// remapping backed by a reserved DRAM segment, RAIDR-style multi-rate
// refresh binning, row map-out, and SECRET-style individual cell remapping.
//
// Each mechanism consumes the failing-cell set a profiler produces and makes
// extended-refresh-interval operation safe for the cells it covers. Their
// capacity and overhead expose the cost of false positives: every spurious
// cell in the profile occupies mitigation resources.
package mitigate

import (
	"fmt"
	"slices"

	"reaper/internal/core"
	"reaper/internal/dram"
	"reaper/internal/memctrl"
)

// WordAddr identifies one 64-bit word in a device.
type WordAddr struct {
	Bank, Row, Word int
}

// ArchShield remaps words containing known-faulty cells into a reserved
// segment of DRAM (the FaultMap region), following Nair et al. [ISCA'13] as
// used in the paper's Section 7.1.1. The reserved segment is assumed to be
// verified strong (in the real design it is ECC-protected and scrubbed).
type ArchShield struct {
	st   *memctrl.Station //lint:serialized-elsewhere station wiring; the stack is rebuilt by construction before RestoreState
	geom dram.Geometry    //lint:serialized-elsewhere copied from the station's device geometry at construction

	// reservedFromRow is the first reserved global row; rows at or beyond
	// it hold remapped words and are not part of the visible address space.
	reservedFromRow uint32
	remap           map[uint64]uint64 // faulty word index -> spare word index
	nextSpare       uint64
	spareLimit      uint64
}

// NewArchShield reserves reserveFraction of the device's rows (the paper
// uses 4%) as the spare segment. The reserved rows are taken from the top of
// the global row space.
func NewArchShield(st *memctrl.Station, reserveFraction float64) (*ArchShield, error) {
	if st == nil {
		return nil, fmt.Errorf("mitigate: nil station")
	}
	if reserveFraction <= 0 || reserveFraction >= 1 {
		return nil, fmt.Errorf("mitigate: reserve fraction %v out of (0,1)", reserveFraction)
	}
	geom := st.Device().Geometry()
	total := uint32(geom.TotalRows())
	reserved := uint32(float64(total) * reserveFraction)
	if reserved < 1 {
		reserved = 1
	}
	a := &ArchShield{
		st:              st,
		geom:            geom,
		reservedFromRow: total - reserved,
		remap:           make(map[uint64]uint64),
	}
	a.nextSpare = uint64(a.reservedFromRow) * uint64(geom.WordsPerRow)
	a.spareLimit = uint64(total) * uint64(geom.WordsPerRow)
	return a, nil
}

// wordIndex converts an address to a flat word index.
func (a *ArchShield) wordIndex(addr WordAddr) uint64 {
	gr := a.geom.GlobalRow(addr.Bank, addr.Row)
	return uint64(gr)*uint64(a.geom.WordsPerRow) + uint64(addr.Word)
}

func (a *ArchShield) addrOfWordIndex(w uint64) WordAddr {
	gr := uint32(w / uint64(a.geom.WordsPerRow))
	return WordAddr{
		Bank: int(gr) / a.geom.RowsPerBank,
		Row:  int(gr) % a.geom.RowsPerBank,
		Word: int(w % uint64(a.geom.WordsPerRow)),
	}
}

// InReservedSegment reports whether an address lies in the spare segment.
func (a *ArchShield) InReservedSegment(addr WordAddr) bool {
	return a.geom.GlobalRow(addr.Bank, addr.Row) >= a.reservedFromRow
}

// Install consumes a profiled failing-cell set: every visible word that
// contains a failing cell is remapped to a fresh spare word. Spare words
// that the profile itself marks as faulty are skipped during allocation (as
// the real design verifies its spare region). It returns an error if the
// spare segment runs out (the cost of excessive false positives).
// Installing twice extends the existing map (already-remapped words are
// kept).
func (a *ArchShield) Install(failures *core.FailureSet) error {
	// Every word touched by a profiled failure — including words inside
	// the reserved segment — is unusable as a spare.
	faulty := make(map[uint64]struct{})
	for _, bit := range failures.Sorted() {
		addr := a.geom.AddrOf(bit)
		faulty[a.wordIndex(WordAddr{Bank: addr.Bank, Row: addr.Row, Word: addr.Word})] = struct{}{}
	}
	allocSpare := func() (uint64, bool) {
		for a.nextSpare < a.spareLimit {
			s := a.nextSpare
			a.nextSpare++
			if _, bad := faulty[s]; !bad {
				return s, true
			}
		}
		return 0, false
	}
	for _, bit := range failures.Sorted() {
		addr := a.geom.AddrOf(bit)
		wa := WordAddr{Bank: addr.Bank, Row: addr.Row, Word: addr.Word}
		if a.InReservedSegment(wa) {
			continue
		}
		wi := a.wordIndex(wa)
		if _, done := a.remap[wi]; done {
			continue
		}
		spare, ok := allocSpare()
		if !ok {
			return fmt.Errorf("mitigate: ArchShield spare segment exhausted after %d remaps", len(a.remap))
		}
		a.remap[wi] = spare
	}
	return nil
}

// resolve returns the physical address backing a visible address.
func (a *ArchShield) resolve(addr WordAddr) WordAddr {
	if spare, ok := a.remap[a.wordIndex(addr)]; ok {
		return a.addrOfWordIndex(spare)
	}
	return addr
}

// Resolve returns the physical address currently backing a visible address
// (the address itself when the word is not remapped). Exposed so other
// layers that bypass Read/Write — the ECC scrubber routing its sweeps
// through the fault map, or a fault injector aiming at the physical cells a
// word resides in — can follow the remapping.
func (a *ArchShield) Resolve(addr WordAddr) WordAddr { return a.resolve(addr) }

// ConsumeSpares permanently retires up to n spare words from the reserved
// segment and returns how many were actually consumed (less than n when the
// segment runs dry). It models mitigation capacity exhaustion: in a real
// deployment spares are spent by other subsystems too (post-package repair,
// earlier profiles' false positives), and a fault scenario uses this to
// drive Install into its spare-segment-exhausted error path.
func (a *ArchShield) ConsumeSpares(n uint64) uint64 {
	left := a.spareLimit - a.nextSpare
	if n > left {
		n = left
	}
	a.nextSpare += n
	return n
}

// RemapTargets returns the physical spare-segment addresses currently
// backing remapped words, in ascending word-index order. A fault injector
// uses this to aim new weak cells at the words where the mitigation
// mechanism concentrated live data — the adversarial worst case for spare
// segment reliability, since Install never remaps reserved-segment words.
func (a *ArchShield) RemapTargets() []WordAddr {
	spares := make([]uint64, 0, len(a.remap))
	for _, spare := range a.remap {
		spares = append(spares, spare)
	}
	slices.Sort(spares)
	out := make([]WordAddr, len(spares))
	for i, s := range spares {
		out[i] = a.addrOfWordIndex(s)
	}
	return out
}

// Write stores a word through the fault map.
func (a *ArchShield) Write(addr WordAddr, val uint64) error {
	if a.InReservedSegment(addr) {
		return fmt.Errorf("mitigate: address %+v is in the reserved segment", addr)
	}
	p := a.resolve(addr)
	return a.st.WriteWord(p.Bank, p.Row, p.Word, val)
}

// Read loads a word through the fault map.
func (a *ArchShield) Read(addr WordAddr) (uint64, error) {
	if a.InReservedSegment(addr) {
		return 0, fmt.Errorf("mitigate: address %+v is in the reserved segment", addr)
	}
	p := a.resolve(addr)
	return a.st.ReadWord(p.Bank, p.Row, p.Word)
}

// RemappedWords returns the number of words currently remapped.
func (a *ArchShield) RemappedWords() int { return len(a.remap) }

// SpareWordsLeft returns the remaining spare capacity.
func (a *ArchShield) SpareWordsLeft() uint64 { return a.spareLimit - a.nextSpare }

// CapacityOverhead returns the fraction of device capacity consumed by the
// reserved segment.
func (a *ArchShield) CapacityOverhead() float64 {
	total := uint32(a.geom.TotalRows())
	return float64(total-a.reservedFromRow) / float64(total)
}
