package mitigate

import (
	"testing"

	"reaper/internal/core"
	"reaper/internal/dram"
)

func TestArchShieldResolve(t *testing.T) {
	st := newStation(t, 5)
	a, err := NewArchShield(st, 0.04)
	if err != nil {
		t.Fatal(err)
	}
	geom := st.Device().Geometry()
	wa := WordAddr{Bank: 1, Row: 2, Word: 3}
	if got := a.Resolve(wa); got != wa {
		t.Fatalf("unremapped resolve = %+v, want identity", got)
	}
	bit := geom.BitIndex(dram.Addr{Bank: wa.Bank, Row: wa.Row, Word: wa.Word, Bit: 7})
	if err := a.Install(core.NewFailureSet(bit)); err != nil {
		t.Fatal(err)
	}
	p := a.Resolve(wa)
	if p == wa {
		t.Fatal("remapped word resolves to itself")
	}
	if !a.InReservedSegment(p) {
		t.Fatalf("resolved address %+v not in the reserved segment", p)
	}
	// Resolve must agree with the Read/Write data path: a write through the
	// fault map lands at the resolved physical word.
	if err := a.Write(wa, 0xDEAD); err != nil {
		t.Fatal(err)
	}
	got, err := st.ReadWord(p.Bank, p.Row, p.Word)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0xDEAD {
		t.Fatalf("physical word = %#x, want 0xDEAD", got)
	}
}

func TestArchShieldConsumeSpares(t *testing.T) {
	st := newStation(t, 6)
	a, err := NewArchShield(st, 0.04)
	if err != nil {
		t.Fatal(err)
	}
	left := a.SpareWordsLeft()
	if got := a.ConsumeSpares(10); got != 10 {
		t.Fatalf("consumed %d, want 10", got)
	}
	if a.SpareWordsLeft() != left-10 {
		t.Fatalf("spares left = %d, want %d", a.SpareWordsLeft(), left-10)
	}
	// Draining everything forces Install into its exhaustion error path.
	if got := a.ConsumeSpares(left); got != left-10 {
		t.Fatalf("over-consume returned %d, want %d", got, left-10)
	}
	if a.SpareWordsLeft() != 0 {
		t.Fatalf("spares left = %d after draining", a.SpareWordsLeft())
	}
	geom := st.Device().Geometry()
	bit := geom.BitIndex(dram.Addr{Bank: 0, Row: 1, Word: 0, Bit: 0})
	if err := a.Install(core.NewFailureSet(bit)); err == nil {
		t.Fatal("Install with an exhausted spare segment did not error")
	}
}
