package mitigate

import (
	"math"
	"testing"

	"reaper/internal/core"
	"reaper/internal/dram"
)

// rapidFixture builds a RAPID over a tiny geometry with hand-made profiles:
// row 0 fails at 128ms, row 1 at 256ms, rows 2+ never fail.
func rapidFixture(t *testing.T) (*RAPID, dram.Geometry) {
	t.Helper()
	geom := dram.Geometry{Banks: 1, RowsPerBank: 8, WordsPerRow: 4}
	failAt := map[float64]*core.FailureSet{
		0.128: core.NewFailureSet(geom.BitIndex(dram.Addr{Row: 0})),
		0.256: core.NewFailureSet(
			geom.BitIndex(dram.Addr{Row: 0}),
			geom.BitIndex(dram.Addr{Row: 1})),
		0.512: core.NewFailureSet(
			geom.BitIndex(dram.Addr{Row: 0}),
			geom.BitIndex(dram.Addr{Row: 1})),
	}
	r, err := NewRAPID(geom, 0.064, []float64{0.128, 0.256, 0.512},
		func(l float64) *core.FailureSet { return failAt[l] })
	if err != nil {
		t.Fatal(err)
	}
	return r, geom
}

func TestNewRAPIDValidation(t *testing.T) {
	geom := dram.Geometry{Banks: 1, RowsPerBank: 4, WordsPerRow: 2}
	empty := func(float64) *core.FailureSet { return core.NewFailureSet() }
	if _, err := NewRAPID(dram.Geometry{}, 0.064, []float64{0.1}, empty); err == nil {
		t.Error("bad geometry not rejected")
	}
	if _, err := NewRAPID(geom, 0, []float64{0.1}, empty); err == nil {
		t.Error("zero default interval not rejected")
	}
	if _, err := NewRAPID(geom, 0.064, nil, empty); err == nil {
		t.Error("no levels not rejected")
	}
	if _, err := NewRAPID(geom, 0.064, []float64{0.2, 0.1}, empty); err == nil {
		t.Error("descending levels not rejected")
	}
	if _, err := NewRAPID(geom, 0.064, []float64{0.1}, nil); err == nil {
		t.Error("nil profile source not rejected")
	}
}

func TestRAPIDSafeIntervals(t *testing.T) {
	r, _ := rapidFixture(t)
	// Row 0 fails at the lowest level: only the default is safe.
	if got := r.RowSafeInterval(0); got != 0.064 {
		t.Errorf("row 0 safe interval = %v, want 0.064", got)
	}
	// Row 1 first fails at 256ms: 128ms is its longest safe level.
	if got := r.RowSafeInterval(1); got != 0.128 {
		t.Errorf("row 1 safe interval = %v, want 0.128", got)
	}
	// Clean rows are unbounded.
	if got := r.RowSafeInterval(5); !math.IsInf(got, 1) {
		t.Errorf("clean row safe interval = %v, want +Inf", got)
	}
}

func TestRAPIDAllocatesStrongestFirst(t *testing.T) {
	r, _ := rapidFixture(t)
	rows, err := r.Allocate(6)
	if err != nil {
		t.Fatal(err)
	}
	// The six clean rows (2..7) must come before the weak ones.
	for _, row := range rows {
		if row == 0 || row == 1 {
			t.Fatalf("weak row %d allocated while clean rows remained", row)
		}
	}
	// With only clean rows allocated, the system can cap its own interval.
	if got := r.SafeRefreshInterval(2.048); got != 2.048 {
		t.Errorf("safe interval with clean rows = %v, want the 2.048 cap", got)
	}
	// Allocating more pulls in row 1 (128ms) then row 0 (64ms).
	if _, err := r.Allocate(1); err != nil {
		t.Fatal(err)
	}
	if got := r.SafeRefreshInterval(2.048); got != 0.128 {
		t.Errorf("safe interval after 7 rows = %v, want 0.128", got)
	}
	if _, err := r.Allocate(1); err != nil {
		t.Fatal(err)
	}
	if got := r.SafeRefreshInterval(2.048); got != 0.064 {
		t.Errorf("safe interval after all rows = %v, want 0.064", got)
	}
	if r.AllocatedRows() != 8 {
		t.Errorf("allocated = %d, want 8", r.AllocatedRows())
	}
}

func TestRAPIDExhaustionAndRollback(t *testing.T) {
	r, _ := rapidFixture(t)
	if _, err := r.Allocate(9); err == nil {
		t.Error("over-allocation not rejected")
	}
	// The failed allocation must not leak rows.
	if r.AllocatedRows() != 0 {
		t.Errorf("failed allocation leaked %d rows", r.AllocatedRows())
	}
	if _, err := r.Allocate(8); err != nil {
		t.Errorf("full allocation after rollback failed: %v", err)
	}
	if _, err := r.Allocate(0); err == nil {
		t.Error("zero-size allocation not rejected")
	}
}

func TestRAPIDFreeAndReuse(t *testing.T) {
	r, _ := rapidFixture(t)
	rows, err := r.Allocate(8)
	if err != nil {
		t.Fatal(err)
	}
	// Free everything; re-allocating a small working set must again pick
	// strong rows and recover a long safe interval.
	r.Free(rows)
	if r.AllocatedRows() != 0 {
		t.Errorf("free left %d rows allocated", r.AllocatedRows())
	}
	small, err := r.Allocate(3)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range small {
		if row == 0 || row == 1 {
			t.Fatalf("weak row %d reused while clean rows were free", row)
		}
	}
	if got := r.SafeRefreshInterval(1.024); got != 1.024 {
		t.Errorf("safe interval after reuse = %v, want the cap", got)
	}
	// Freeing unallocated rows is harmless.
	r.Free([]uint32{0})
}

func TestRAPIDWithRealProfiles(t *testing.T) {
	st := newStation(t, 9)
	geom := st.Device().Geometry()
	levels := []float64{0.512, 1.024, 2.048}
	profiles := make(map[float64]*core.FailureSet)
	for _, l := range levels {
		res, err := core.Reach(st, l, core.ReachConditions{DeltaInterval: 0.25},
			core.Options{Iterations: 8, FreshRandomPerIteration: true, Seed: uint64(l * 1e4)})
		if err != nil {
			t.Fatal(err)
		}
		profiles[l] = res.Failures
	}
	r, err := NewRAPID(geom, 0.064, levels, func(l float64) *core.FailureSet { return profiles[l] })
	if err != nil {
		t.Fatal(err)
	}
	// Allocate half the rows: RAPID's premise is that a half-full memory
	// runs at a much longer interval than the worst-case 64ms.
	if _, err := r.Allocate(geom.TotalRows() / 2); err != nil {
		t.Fatal(err)
	}
	safe := r.SafeRefreshInterval(2.048)
	if safe < 0.512 {
		t.Errorf("half-allocated safe interval = %v, want >= 0.512", safe)
	}
	// A full memory is limited by its weakest row.
	if _, err := r.Allocate(geom.TotalRows() - geom.TotalRows()/2); err != nil {
		t.Fatal(err)
	}
	full := r.SafeRefreshInterval(2.048)
	if full > safe {
		t.Errorf("full allocation interval %v above half allocation %v", full, safe)
	}
}
