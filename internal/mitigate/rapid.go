package mitigate

import (
	"cmp"
	"fmt"
	"math"
	"slices"

	"reaper/internal/core"
	"reaper/internal/dram"
)

// RAPID implements retention-aware placement in DRAM (Venkatesan et al.,
// HPCA'06; the paper's Section 3.1): software allocates data to the rows
// with the longest retention first, and the refresh interval tracks the
// weakest *allocated* row — so a lightly loaded system refreshes very
// rarely, and the interval degrades gracefully as weaker rows are pressed
// into service.
type RAPID struct {
	geom dram.Geometry
	// safeInterval[r] is the longest profiled-safe refresh interval for
	// global row r (+Inf when the row never showed a failure).
	safeInterval []float64
	// strongestFirst is the allocation order: row indices sorted by
	// descending safe interval.
	strongestFirst []uint32
	nextAlloc      int
	allocated      map[uint32]bool
	freed          []uint32 // freed rows, reused before advancing nextAlloc
	// defaultInterval is the JEDEC interval used when nothing better is
	// known.
	defaultInterval float64
}

// NewRAPID builds an allocator. levels are the profiled refresh intervals
// in ascending order; profileAt(t) returns the failing cells at interval t.
// A row's safe interval is the longest level strictly below its first
// failing level (+Inf if it never fails; defaultInterval if it fails even
// at the lowest profiled level).
func NewRAPID(geom dram.Geometry, defaultInterval float64, levels []float64, profileAt func(float64) *core.FailureSet) (*RAPID, error) {
	if err := geom.Validate(); err != nil {
		return nil, err
	}
	if defaultInterval <= 0 {
		return nil, fmt.Errorf("mitigate: RAPID default interval must be positive")
	}
	if len(levels) == 0 || !slices.IsSorted(levels) || levels[0] <= 0 {
		return nil, fmt.Errorf("mitigate: RAPID needs ascending positive levels, got %v", levels)
	}
	if profileAt == nil {
		return nil, fmt.Errorf("mitigate: nil profile source")
	}
	r := &RAPID{
		geom:            geom,
		safeInterval:    make([]float64, geom.TotalRows()),
		allocated:       make(map[uint32]bool),
		defaultInterval: defaultInterval,
	}
	for i := range r.safeInterval {
		r.safeInterval[i] = math.Inf(1)
	}
	// Walk levels from longest to shortest so each row ends at the
	// smallest level it fails at.
	firstFail := make([]float64, geom.TotalRows())
	for i := range firstFail {
		firstFail[i] = math.Inf(1)
	}
	for _, level := range levels {
		prof := profileAt(level)
		if prof == nil {
			return nil, fmt.Errorf("mitigate: nil profile for level %v", level)
		}
		for _, bit := range prof.Sorted() {
			a := geom.AddrOf(bit)
			gr := geom.GlobalRow(a.Bank, a.Row)
			if level < firstFail[gr] {
				firstFail[gr] = level
			}
		}
	}
	for gr := range r.safeInterval {
		ff := firstFail[gr]
		if math.IsInf(ff, 1) {
			continue // never failed: stays +Inf
		}
		// Longest profiled level strictly below the first failure.
		safe := defaultInterval
		for _, level := range levels {
			if level < ff {
				safe = level
			}
		}
		r.safeInterval[gr] = safe
	}
	r.strongestFirst = make([]uint32, geom.TotalRows())
	for i := range r.strongestFirst {
		r.strongestFirst[i] = uint32(i)
	}
	slices.SortStableFunc(r.strongestFirst, func(a, b uint32) int {
		return cmp.Compare(r.safeInterval[b], r.safeInterval[a])
	})
	return r, nil
}

// Allocate reserves the n strongest available rows and returns their global
// row indices. It fails when fewer than n rows remain.
func (r *RAPID) Allocate(n int) ([]uint32, error) {
	if n <= 0 {
		return nil, fmt.Errorf("mitigate: RAPID allocation size must be positive")
	}
	var out []uint32
	// Reuse freed rows first (they are at least as strong as the next
	// fresh row was when they were handed out; re-sort for strength).
	slices.SortStableFunc(r.freed, func(a, b uint32) int {
		return cmp.Compare(r.safeInterval[b], r.safeInterval[a])
	})
	for len(out) < n && len(r.freed) > 0 {
		row := r.freed[0]
		r.freed = r.freed[1:]
		r.allocated[row] = true
		out = append(out, row)
	}
	for len(out) < n && r.nextAlloc < len(r.strongestFirst) {
		row := r.strongestFirst[r.nextAlloc]
		r.nextAlloc++
		if r.allocated[row] {
			continue
		}
		r.allocated[row] = true
		out = append(out, row)
	}
	if len(out) < n {
		// Roll back the partial allocation.
		for _, row := range out {
			delete(r.allocated, row)
			r.freed = append(r.freed, row)
		}
		return nil, fmt.Errorf("mitigate: RAPID out of rows (%d requested, %d available)",
			n, len(out))
	}
	return out, nil
}

// Free releases rows back to the allocator.
func (r *RAPID) Free(rows []uint32) {
	for _, row := range rows {
		if r.allocated[row] {
			delete(r.allocated, row)
			r.freed = append(r.freed, row)
		}
	}
}

// AllocatedRows returns how many rows are currently allocated.
func (r *RAPID) AllocatedRows() int { return len(r.allocated) }

// SafeRefreshInterval returns the refresh interval the current allocation
// permits: the minimum safe interval across allocated rows. With nothing
// allocated it returns maxInterval (the system's cap for an idle memory),
// and the result is also capped at maxInterval.
func (r *RAPID) SafeRefreshInterval(maxInterval float64) float64 {
	min := math.Inf(1)
	for row := range r.allocated {
		if s := r.safeInterval[row]; s < min {
			min = s
		}
	}
	if min > maxInterval {
		return maxInterval
	}
	return min
}

// RowSafeInterval exposes one row's profiled-safe interval.
func (r *RAPID) RowSafeInterval(row uint32) float64 { return r.safeInterval[row] }
