package mitigate

import (
	"testing"

	"reaper/internal/core"
	"reaper/internal/dram"
	"reaper/internal/memctrl"
)

func newStation(t testing.TB, seed uint64) *memctrl.Station {
	t.Helper()
	dev, err := dram.NewDevice(dram.Config{
		Geometry:  dram.Geometry{Banks: 8, RowsPerBank: 64, WordsPerRow: 256},
		Vendor:    dram.VendorB(),
		Seed:      seed,
		WeakScale: 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := memctrl.NewStation(dev, nil, memctrl.DefaultTiming())
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestNewArchShieldValidation(t *testing.T) {
	st := newStation(t, 1)
	if _, err := NewArchShield(nil, 0.04); err == nil {
		t.Error("nil station not rejected")
	}
	if _, err := NewArchShield(st, 0); err == nil {
		t.Error("zero reserve not rejected")
	}
	if _, err := NewArchShield(st, 1); err == nil {
		t.Error("full reserve not rejected")
	}
}

func TestArchShieldReservedSegment(t *testing.T) {
	st := newStation(t, 2)
	a, err := NewArchShield(st, 0.04)
	if err != nil {
		t.Fatal(err)
	}
	if got := a.CapacityOverhead(); got < 0.03 || got > 0.06 {
		t.Errorf("capacity overhead = %v, want ~0.04", got)
	}
	geom := st.Device().Geometry()
	last := WordAddr{Bank: geom.Banks - 1, Row: geom.RowsPerBank - 1, Word: 0}
	if !a.InReservedSegment(last) {
		t.Error("top row should be reserved")
	}
	if a.InReservedSegment(WordAddr{}) {
		t.Error("first row should be visible")
	}
	if err := a.Write(last, 1); err == nil {
		t.Error("write into reserved segment not rejected")
	}
	if _, err := a.Read(last); err == nil {
		t.Error("read from reserved segment not rejected")
	}
}

func TestArchShieldRemapRedirects(t *testing.T) {
	st := newStation(t, 3)
	a, err := NewArchShield(st, 0.04)
	if err != nil {
		t.Fatal(err)
	}
	geom := st.Device().Geometry()
	// Fabricate a failure in bank 0, row 1, word 2, bit 5.
	bit := geom.BitIndex(dram.Addr{Bank: 0, Row: 1, Word: 2, Bit: 5})
	if err := a.Install(core.NewFailureSet(bit)); err != nil {
		t.Fatal(err)
	}
	if a.RemappedWords() != 1 {
		t.Fatalf("remapped words = %d, want 1", a.RemappedWords())
	}
	addr := WordAddr{Bank: 0, Row: 1, Word: 2}
	if err := a.Write(addr, 0xabcdef); err != nil {
		t.Fatal(err)
	}
	got, err := a.Read(addr)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0xabcdef {
		t.Fatalf("read back %x", got)
	}
	// The physical (faulty) word must not have been written.
	raw, err := st.ReadWord(0, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if raw == 0xabcdef {
		t.Error("write was not redirected away from the faulty word")
	}
}

func TestArchShieldIdempotentInstall(t *testing.T) {
	st := newStation(t, 4)
	a, _ := NewArchShield(st, 0.04)
	geom := st.Device().Geometry()
	bits := core.NewFailureSet(
		geom.BitIndex(dram.Addr{Bank: 0, Row: 0, Word: 0, Bit: 0}),
		geom.BitIndex(dram.Addr{Bank: 0, Row: 0, Word: 0, Bit: 7}), // same word
	)
	if err := a.Install(bits); err != nil {
		t.Fatal(err)
	}
	if a.RemappedWords() != 1 {
		t.Errorf("two failures in one word should remap once, got %d", a.RemappedWords())
	}
	before := a.SpareWordsLeft()
	if err := a.Install(bits); err != nil {
		t.Fatal(err)
	}
	if a.SpareWordsLeft() != before {
		t.Error("reinstall consumed spares")
	}
}

func TestArchShieldCapacityExhaustion(t *testing.T) {
	st := newStation(t, 5)
	// Tiny reserve: 1 row = 256 spare words.
	a, err := NewArchShield(st, 0.002)
	if err != nil {
		t.Fatal(err)
	}
	geom := st.Device().Geometry()
	fails := core.NewFailureSet()
	for i := 0; i < 300; i++ { // more faulty words than spares
		fails.Add(geom.BitIndex(dram.Addr{Bank: 0, Row: i / 250, Word: i % 250, Bit: 0}))
	}
	if err := a.Install(fails); err == nil {
		t.Error("spare exhaustion not reported")
	}
}

func TestArchShieldEndToEndWithREAPER(t *testing.T) {
	// The paper's Section 7.1.1 flow: reach-profile the chip, install the
	// failures into ArchShield, run at the extended refresh interval, and
	// verify data integrity — while the unprotected device corrupts.
	const target = 1.024
	st := newStation(t, 6)
	prof, err := core.Reach(st, target, core.ReachConditions{DeltaInterval: 0.5},
		core.Options{Iterations: 16, FreshRandomPerIteration: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if prof.Failures.Len() == 0 {
		t.Fatal("profile found nothing")
	}

	shield, err := NewArchShield(st, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if err := shield.Install(prof.Failures); err != nil {
		t.Fatal(err)
	}

	// Words that contain true failing cells at the target conditions.
	truth := core.Truth(st, target, 45)
	geom := st.Device().Geometry()
	var victims []WordAddr
	seen := map[WordAddr]bool{}
	for _, bit := range truth.Sorted() {
		a := geom.AddrOf(bit)
		wa := WordAddr{Bank: a.Bank, Row: a.Row, Word: a.Word}
		if !seen[wa] && !shield.InReservedSegment(wa) {
			seen[wa] = true
			victims = append(victims, wa)
		}
		if len(victims) >= 60 {
			break
		}
	}
	if len(victims) < 10 {
		t.Fatalf("too few victim words: %d", len(victims))
	}

	// Operate at the extended interval.
	st.SetRefreshInterval(target)
	for i, wa := range victims {
		if err := shield.Write(wa, 0x1111111111111111*uint64(i%15+1)); err != nil {
			t.Fatal(err)
		}
	}
	st.Wait(600) // ten minutes at the extended refresh interval
	corrupted := 0
	for i, wa := range victims {
		got, err := shield.Read(wa)
		if err != nil {
			t.Fatal(err)
		}
		if got != 0x1111111111111111*uint64(i%15+1) {
			corrupted++
		}
	}
	if corrupted != 0 {
		t.Errorf("%d/%d shielded words corrupted at %vs refresh", corrupted, len(victims), target)
	}

	// Control: the same experiment without the shield must corrupt.
	st2 := newStation(t, 6)
	st2.SetRefreshInterval(target)
	for i, wa := range victims {
		if err := st2.WriteWord(wa.Bank, wa.Row, wa.Word, 0x1111111111111111*uint64(i%15+1)); err != nil {
			t.Fatal(err)
		}
	}
	st2.Wait(600)
	rawCorrupted := 0
	for i, wa := range victims {
		got, err := st2.ReadWord(wa.Bank, wa.Row, wa.Word)
		if err != nil {
			t.Fatal(err)
		}
		if got != 0x1111111111111111*uint64(i%15+1) {
			rawCorrupted++
		}
	}
	if rawCorrupted == 0 {
		t.Error("unprotected device did not corrupt at the extended interval; experiment vacuous")
	}
}

func TestRAIDRValidation(t *testing.T) {
	geom := dram.Geometry{Banks: 2, RowsPerBank: 16, WordsPerRow: 4}
	if _, err := NewRAIDR(geom, []float64{0.064}); err == nil {
		t.Error("single bin not rejected")
	}
	if _, err := NewRAIDR(geom, []float64{0.128, 0.064}); err == nil {
		t.Error("descending bins not rejected")
	}
	if _, err := NewRAIDR(geom, []float64{0, 0.064}); err == nil {
		t.Error("zero bin not rejected")
	}
	if _, err := NewRAIDR(dram.Geometry{}, []float64{0.064, 0.128}); err == nil {
		t.Error("bad geometry not rejected")
	}
}

func TestRAIDRAssignAndSavings(t *testing.T) {
	geom := dram.Geometry{Banks: 1, RowsPerBank: 8, WordsPerRow: 4}
	r, err := NewRAIDR(geom, []float64{0.064, 0.128, 0.256})
	if err != nil {
		t.Fatal(err)
	}
	// Row 0 fails at 128ms (must stay at 64ms), row 1 fails only at 256ms
	// (can run at 128ms), the rest are clean (256ms).
	failAt128 := core.NewFailureSet(geom.BitIndex(dram.Addr{Row: 0}))
	failAt256 := core.NewFailureSet(
		geom.BitIndex(dram.Addr{Row: 0}),
		geom.BitIndex(dram.Addr{Row: 1}),
	)
	err = r.Assign(func(t float64) *core.FailureSet {
		if t == 0.128 {
			return failAt128
		}
		return failAt256
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := r.BinOf(0, 0); got != 0.064 {
		t.Errorf("row 0 bin = %v, want 0.064", got)
	}
	if got := r.BinOf(0, 1); got != 0.128 {
		t.Errorf("row 1 bin = %v, want 0.128", got)
	}
	if got := r.BinOf(0, 2); got != 0.256 {
		t.Errorf("row 2 bin = %v, want 0.256", got)
	}
	counts := r.BinCounts()
	if counts[0] != 1 || counts[1] != 1 || counts[2] != 6 {
		t.Errorf("bin counts = %v", counts)
	}
	savings := r.Savings(0.064)
	// ops = 1/0.064 + 1/0.128 + 6/0.256 = 15.625+7.8125+23.4375 = 46.875
	// baseline = 8/0.064 = 125 -> savings = 0.625.
	if savings < 0.62 || savings > 0.63 {
		t.Errorf("savings = %v, want 0.625", savings)
	}
	if r.Assign(nil) == nil {
		t.Error("nil profile source not rejected")
	}
}

func TestRAIDRWithRealProfiles(t *testing.T) {
	st := newStation(t, 7)
	geom := st.Device().Geometry()
	bins := []float64{0.064, 0.512, 1.024, 2.048}
	r, err := NewRAIDR(geom, bins)
	if err != nil {
		t.Fatal(err)
	}
	profiles := make(map[float64]*core.FailureSet)
	for _, b := range bins[1:] {
		res, err := core.Reach(st, b, core.ReachConditions{DeltaInterval: 0.25},
			core.Options{Iterations: 8, FreshRandomPerIteration: true, Seed: uint64(b * 1000)})
		if err != nil {
			t.Fatal(err)
		}
		profiles[b] = res.Failures
	}
	if err := r.Assign(func(t float64) *core.FailureSet { return profiles[t] }); err != nil {
		t.Fatal(err)
	}
	savings := r.Savings(0.064)
	// Most rows hold no weak cell at 2048ms, so savings should be large
	// (RAIDR's premise).
	if savings < 0.5 {
		t.Errorf("RAIDR savings = %v, want > 0.5", savings)
	}
	counts := r.BinCounts()
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != geom.TotalRows() {
		t.Errorf("bin counts sum %d != rows %d", total, geom.TotalRows())
	}
}

func TestRowMapOut(t *testing.T) {
	geom := dram.Geometry{Banks: 2, RowsPerBank: 8, WordsPerRow: 4}
	m, err := NewRowMapOut(geom)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewRowMapOut(dram.Geometry{}); err == nil {
		t.Error("bad geometry not rejected")
	}
	fails := core.NewFailureSet(
		geom.BitIndex(dram.Addr{Bank: 0, Row: 3, Word: 1, Bit: 9}),
		geom.BitIndex(dram.Addr{Bank: 0, Row: 3, Word: 2, Bit: 1}), // same row
		geom.BitIndex(dram.Addr{Bank: 1, Row: 5}),
	)
	if added := m.Exclude(fails); added != 2 {
		t.Errorf("Exclude added %d rows, want 2", added)
	}
	if m.Usable(0, 3) || m.Usable(1, 5) {
		t.Error("excluded rows still usable")
	}
	if !m.Usable(0, 0) {
		t.Error("clean row unusable")
	}
	if m.LostRows() != 2 {
		t.Errorf("LostRows = %d", m.LostRows())
	}
	if got := m.CapacityLoss(); got != 2.0/16 {
		t.Errorf("CapacityLoss = %v", got)
	}
	// Re-excluding is idempotent.
	if added := m.Exclude(fails); added != 0 {
		t.Errorf("re-Exclude added %d", added)
	}
}

func TestRowMapOutFalsePositiveCost(t *testing.T) {
	// The cost of false positives for row map-out: every spurious cell in
	// a distinct row discards a full healthy row.
	geom := dram.Geometry{Banks: 1, RowsPerBank: 100, WordsPerRow: 4}
	m, _ := NewRowMapOut(geom)
	truth := core.NewFailureSet(geom.BitIndex(dram.Addr{Row: 0}))
	falsePos := core.NewFailureSet()
	for i := 1; i <= 30; i++ {
		falsePos.Add(geom.BitIndex(dram.Addr{Row: i}))
	}
	m.Exclude(truth.Union(falsePos))
	if m.LostRows() != 31 {
		t.Errorf("LostRows = %d, want 31", m.LostRows())
	}
	if m.CapacityLoss() < 0.3 {
		t.Errorf("30%% false positives should cost ~31%% capacity, got %v", m.CapacityLoss())
	}
}

func TestCellRemap(t *testing.T) {
	if _, err := NewCellRemap(0); err == nil {
		t.Error("zero budget not rejected")
	}
	c, err := NewCellRemap(3)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Install(core.NewFailureSet(10, 20)); err != nil {
		t.Fatal(err)
	}
	if c.Used() != 2 || c.Capacity() != 3 {
		t.Errorf("Used/Capacity = %d/%d", c.Used(), c.Capacity())
	}
	if _, ok := c.Redirect(10); !ok {
		t.Error("remapped cell not redirected")
	}
	if _, ok := c.Redirect(99); ok {
		t.Error("unmapped cell redirected")
	}
	// Idempotent for existing cells.
	if err := c.Install(core.NewFailureSet(10, 20, 30)); err != nil {
		t.Fatal(err)
	}
	if c.Used() != 3 {
		t.Errorf("Used = %d, want 3", c.Used())
	}
	// Budget exhaustion.
	if err := c.Install(core.NewFailureSet(40)); err == nil {
		t.Error("budget exhaustion not reported")
	}
}
