package module

import (
	"math"
	"testing"

	"reaper/internal/core"
	"reaper/internal/dram"
	"reaper/internal/memctrl"
	"reaper/internal/thermal"
)

func devices(t testing.TB, n int, baseSeed uint64) []*dram.Device {
	t.Helper()
	out := make([]*dram.Device, n)
	for i := range out {
		d, err := dram.NewDevice(dram.Config{
			Geometry:  dram.Geometry{Banks: 8, RowsPerBank: 32, WordsPerRow: 256},
			Vendor:    dram.VendorB(),
			Seed:      baseSeed + uint64(i),
			WeakScale: 20,
		})
		if err != nil {
			t.Fatal(err)
		}
		out[i] = d
	}
	return out
}

func testModule(t testing.TB, chips int, seed uint64) *Module {
	t.Helper()
	m, err := New(devices(t, chips, seed), nil, memctrl.DefaultTiming())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestGlobalBitRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		chip int
		bit  uint64
	}{{0, 0}, {3, 12345}, {31, 1<<48 - 1}} {
		g := GlobalBit(tc.chip, tc.bit)
		chip, bit := SplitBit(g)
		if chip != tc.chip || bit != tc.bit {
			t.Errorf("round trip (%d,%d) -> (%d,%d)", tc.chip, tc.bit, chip, bit)
		}
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, nil, memctrl.DefaultTiming()); err == nil {
		t.Error("empty module not rejected")
	}
	devs := devices(t, 2, 1)
	if _, err := New([]*dram.Device{devs[0], nil}, nil, memctrl.DefaultTiming()); err == nil {
		t.Error("nil device not rejected")
	}
	other, err := dram.NewDevice(dram.Config{
		Geometry: dram.Geometry{Banks: 4, RowsPerBank: 32, WordsPerRow: 256},
		Vendor:   dram.VendorB(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New([]*dram.Device{devs[0], other}, nil, memctrl.DefaultTiming()); err == nil {
		t.Error("mismatched geometry not rejected")
	}
	if _, err := New(devs, nil, memctrl.Timing{}); err == nil {
		t.Error("zero timing not rejected")
	}
}

func TestModulePassTimeScalesWithChips(t *testing.T) {
	m1 := testModule(t, 1, 10)
	m4 := testModule(t, 4, 10)
	m1.WritePattern(zeroPattern{})
	m4.WritePattern(zeroPattern{})
	if r := m4.Stats().WriteSeconds / m1.Stats().WriteSeconds; math.Abs(r-4) > 1e-9 {
		t.Errorf("pass time scaling = %v, want 4 (Eq 9's capacity scaling)", r)
	}
	if m4.TotalBytes() != 4*m1.TotalBytes() {
		t.Error("capacity accounting wrong")
	}
	if m4.Chips() != 4 {
		t.Error("chip count wrong")
	}
}

type zeroPattern struct{}

func (zeroPattern) Word(uint32, int) uint64 { return 0 }
func (zeroPattern) Name() string            { return "zero" }

func TestModuleProfilingFindsPerChipFailures(t *testing.T) {
	m := testModule(t, 4, 20)
	res, err := core.BruteForce(m, 2.048, core.Options{
		Iterations: 4, FreshRandomPerIteration: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failures.Len() == 0 {
		t.Fatal("no failures on the module")
	}
	// Failures must come from several chips.
	chipsSeen := map[int]bool{}
	for _, g := range res.Failures.Sorted() {
		chip, bit := SplitBit(g)
		if chip < 0 || chip >= m.Chips() {
			t.Fatalf("failure at invalid chip %d", chip)
		}
		if bit >= uint64(m.Device(chip).Geometry().TotalBits()) {
			t.Fatalf("failure at invalid bit %d", bit)
		}
		chipsSeen[chip] = true
	}
	if len(chipsSeen) < 3 {
		t.Errorf("failures from only %d chips, want spread across the module", len(chipsSeen))
	}
}

func TestModuleReachProfilingAndTruth(t *testing.T) {
	m := testModule(t, 2, 30)
	truth, err := m.Truth(1.024, 45)
	if err != nil {
		t.Fatal(err)
	}
	if truth.Len() == 0 {
		t.Fatal("empty module truth")
	}
	res, err := core.Reach(m, 1.024, core.ReachConditions{DeltaInterval: 0.25},
		core.Options{Iterations: 12, FreshRandomPerIteration: true})
	if err != nil {
		t.Fatal(err)
	}
	cov := core.Coverage(res.Failures, truth)
	if cov < 0.9 {
		t.Errorf("module reach coverage = %v, want >= 0.9", cov)
	}
	if fpr := core.FalsePositiveRate(res.Failures, truth); fpr <= 0 {
		t.Error("module reach produced no false positives")
	}
}

func TestModuleRefreshControl(t *testing.T) {
	m := testModule(t, 2, 40)
	m.WritePattern(zeroPattern{})
	m.Wait(2.048) // refresh on: no loss
	if fails := m.ReadCompare(); len(fails) != 0 {
		t.Errorf("%d failures with refresh enabled", len(fails))
	}
	m.SetRefreshInterval(0.512)
	for _, want := range []float64{0.512, 0.512} {
		if m.Device(0).AutoRefresh() != want {
			t.Errorf("chip refresh interval = %v, want %v", m.Device(0).AutoRefresh(), want)
		}
	}
	m.SetRefreshInterval(0)
	if m.Device(1).AutoRefresh() != 0 {
		t.Error("disable via SetRefreshInterval(0) did not take")
	}
	m.EnableRefresh()
	if m.Device(0).AutoRefresh() != m.timing.DefaultTREFI {
		t.Error("EnableRefresh did not restore the default interval")
	}
}

func TestModuleTemperature(t *testing.T) {
	m := testModule(t, 2, 50)
	if got := m.SetAmbient(55); got != 55 {
		t.Errorf("SetAmbient = %v", got)
	}
	if m.Device(0).Temperature() != 55 || m.Device(1).Temperature() != 55 {
		t.Error("temperature did not propagate to all chips")
	}
	if m.Ambient() != 55 {
		t.Error("Ambient readback wrong")
	}
}

func TestModuleWithChamber(t *testing.T) {
	ch, err := thermal.NewChamber(thermal.DefaultChamberConfig())
	if err != nil {
		t.Fatal(err)
	}
	ch.SettleTo(45, 0.25, 3600)
	m, err := New(devices(t, 2, 60), ch, memctrl.DefaultTiming())
	if err != nil {
		t.Fatal(err)
	}
	before := m.Clock()
	m.SetAmbient(50)
	if m.Clock() == before {
		t.Error("chambered module settle consumed no time")
	}
	if a := m.Ambient(); math.Abs(a-50) > 0.6 {
		t.Errorf("ambient after settle = %v", a)
	}
}
