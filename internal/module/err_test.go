package module

import (
	"errors"
	"testing"

	"reaper/internal/parallel"
)

// panicPattern is a RowData whose content lookup panics, simulating a bug
// inside a per-chip simulation running on a worker goroutine.
type panicPattern struct{}

func (panicPattern) Word(uint32, int) uint64 { panic("panicPattern: boom") }

func TestModuleLatchesWorkerPanicAsError(t *testing.T) {
	m := testModule(t, 2, 9)
	if m.Err() != nil {
		t.Fatalf("fresh module has latched error %v", m.Err())
	}
	m.WritePattern(panicPattern{})
	// Let enough simulated time pass that the read's active band is
	// non-empty (the sparse read path only evaluates row content for cells
	// whose failure probability can be nonzero). ReadCompare then evaluates
	// the pattern on worker goroutines; the panic must come back as a
	// latched error, not a process crash.
	m.DisableRefresh()
	m.Wait(8)
	_ = m.ReadCompare()
	err := m.Err()
	if err == nil {
		t.Fatal("worker panic was not latched on Err")
	}
	var pe *parallel.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("latched error %T is not a *parallel.PanicError", err)
	}
	// The latch is sticky: the first error survives later clean passes.
	if m.Err() != err {
		t.Fatal("latched error did not stick")
	}
}
