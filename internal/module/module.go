// Package module models a multi-chip DRAM module: several devices sharing
// one test controller, clock, and (optional) thermal chamber, as in the
// paper's infrastructure (Section 7 evaluates modules of 32 chips). A
// Module implements core.TestStation, so every profiler in this repository
// runs on it unchanged; failing cells are reported in a module-global
// address space (chip index folded into the high bits).
package module

import (
	"context"
	"fmt"

	"reaper/internal/core"
	"reaper/internal/dram"
	"reaper/internal/memctrl"
	"reaper/internal/parallel"
	"reaper/internal/telemetry"
	"reaper/internal/thermal"
)

// chipShift positions the chip index in the global bit address. 48 bits of
// per-chip address space covers any realistic device.
const chipShift = 48

// GlobalBit composes a module-global cell address.
func GlobalBit(chip int, bit uint64) uint64 {
	return uint64(chip)<<chipShift | bit
}

// SplitBit decomposes a module-global cell address.
func SplitBit(global uint64) (chip int, bit uint64) {
	return int(global >> chipShift), global & (1<<chipShift - 1)
}

// Module is a set of identical-geometry devices behind one controller.
type Module struct {
	devs    []*dram.Device
	chamber *thermal.Chamber
	clock   memctrl.Clock
	timing  memctrl.Timing
	refresh bool
	stats   memctrl.Stats
	ambient float64
	workers int
	err     error
	tele    *telemetry.Registry
}

// New builds a module over the devices. All devices must share a geometry.
// chamber may be nil (isothermal, instantaneous temperature changes).
func New(devs []*dram.Device, chamber *thermal.Chamber, timing memctrl.Timing) (*Module, error) {
	if len(devs) == 0 {
		return nil, fmt.Errorf("module: no devices")
	}
	geom := devs[0].Geometry()
	if geom.TotalBits() >= 1<<chipShift {
		return nil, fmt.Errorf("module: device too large for the global address space")
	}
	for i, d := range devs {
		if d == nil {
			return nil, fmt.Errorf("module: nil device %d", i)
		}
		if d.Geometry() != geom {
			return nil, fmt.Errorf("module: device %d geometry %v differs from %v",
				i, d.Geometry(), geom)
		}
	}
	if timing.BandwidthBytesPerSec <= 0 || timing.Efficiency <= 0 || timing.Efficiency > 1 ||
		timing.DefaultTREFI <= 0 {
		return nil, fmt.Errorf("module: invalid timing %+v", timing)
	}
	m := &Module{devs: devs, chamber: chamber, timing: timing, refresh: true,
		ambient: devs[0].Temperature()}
	for _, d := range devs {
		d.SetAutoRefresh(timing.DefaultTREFI)
	}
	m.syncTemp()
	return m, nil
}

// SetWorkers bounds the worker pool used for per-chip bulk operations
// (ReadCompare, refresh restores, Truth); <= 0 means one worker per CPU.
// Each chip is a disjoint simulated device with its own RNG, so results are
// identical at any worker count.
func (m *Module) SetWorkers(n int) { m.workers = n }

// SetTelemetry attaches a registry: each full-module write and read pass
// records the module_* counters (passes, bytes moved, failing cells seen).
// The counters are worker-count invariant — they count passes, never the
// per-chip fan-out underneath them.
func (m *Module) SetTelemetry(reg *telemetry.Registry) { m.tele = reg }

// forEachChip runs fn over every device on the module's worker pool. The
// per-chip simulations have no error path of their own; the returned error
// is a pool failure — a panic in fn captured as a *parallel.PanicError — so
// it is not lost on a worker goroutine.
func (m *Module) forEachChip(fn func(ci int, dev *dram.Device)) error {
	// The chip fan-out runs microsecond-scale device steps inside the
	// core.TestStation methods, whose signatures cannot carry a ctx;
	// cancellation happens at experiment granularity above this layer.
	//lint:ignore ctx-first TestStation interface methods cannot carry a ctx; cancellation is experiment-granular
	return parallel.ForEach(context.Background(), len(m.devs), m.workers,
		func(_ context.Context, ci int) error {
			fn(ci, m.devs[ci])
			return nil
		})
}

// fail latches the first chip-pool error raised inside a core.TestStation
// method, whose signatures cannot carry it. Err surfaces it to callers.
func (m *Module) fail(err error) {
	if m.err == nil {
		m.err = err
	}
}

// Err returns the first error a TestStation-interface operation encountered
// (nil when all operations succeeded). The interface methods EnableRefresh,
// SetRefreshInterval, WritePattern and ReadCompare cannot return errors
// without breaking every profiler; they latch failures here instead, and
// callers driving a module directly should check Err after a campaign.
func (m *Module) Err() error { return m.err }

// Chips returns the number of devices in the module.
func (m *Module) Chips() int { return len(m.devs) }

// Device returns one chip.
func (m *Module) Device(i int) *dram.Device { return m.devs[i] }

// TotalBytes returns the module capacity.
func (m *Module) TotalBytes() int64 {
	return int64(len(m.devs)) * m.devs[0].Geometry().TotalBytes()
}

// Clock returns simulated seconds.
func (m *Module) Clock() float64 { return m.clock.Now() }

// Stats returns the accumulated time accounting.
func (m *Module) Stats() memctrl.Stats { return m.stats }

func (m *Module) advance(d float64) {
	m.clock.Advance(d)
	if m.chamber != nil {
		m.chamber.Step(d)
	}
	m.syncTemp()
}

func (m *Module) syncTemp() {
	t := m.ambient
	if m.chamber != nil {
		t = m.chamber.DeviceTemp() - 15
	}
	for _, d := range m.devs {
		d.SetTemperature(t)
	}
}

// Ambient returns the module's ambient temperature.
func (m *Module) Ambient() float64 {
	if m.chamber == nil {
		return m.ambient
	}
	return m.devs[0].Temperature()
}

// SetAmbient changes the ambient temperature (settling through the chamber
// when present).
func (m *Module) SetAmbient(tempC float64) float64 {
	if m.chamber == nil {
		m.ambient = tempC
		m.syncTemp()
		return tempC
	}
	start := m.clock.Now()
	m.chamber.SetTarget(tempC)
	for !m.chamber.Settled(0.25) && m.clock.Now()-start < 3600 {
		m.advance(1)
	}
	m.advance(30)
	m.stats.IdleSeconds += m.clock.Now() - start
	return m.chamber.Target()
}

// DisableRefresh pauses auto-refresh on every chip.
func (m *Module) DisableRefresh() {
	m.refresh = false
	for _, d := range m.devs {
		d.SetAutoRefresh(0)
	}
}

// EnableRefresh resumes auto-refresh at the default interval, locking in
// any failures that accumulated while paused (see memctrl.Station).
func (m *Module) EnableRefresh() {
	if !m.refresh {
		now := m.clock.Now()
		if err := m.forEachChip(func(_ int, d *dram.Device) { d.RestoreAll(now) }); err != nil {
			m.fail(err)
		}
	}
	m.refresh = true
	for _, d := range m.devs {
		d.SetAutoRefresh(m.timing.DefaultTREFI)
	}
}

// SetRefreshInterval runs auto-refresh at a non-default interval on every
// chip; interval <= 0 disables refresh.
func (m *Module) SetRefreshInterval(interval float64) {
	if interval <= 0 {
		m.DisableRefresh()
		return
	}
	if !m.refresh {
		now := m.clock.Now()
		if err := m.forEachChip(func(_ int, d *dram.Device) { d.RestoreAll(now) }); err != nil {
			m.fail(err)
		}
	}
	m.refresh = true
	for _, d := range m.devs {
		d.SetAutoRefresh(interval)
	}
}

// WritePattern streams a pattern into every chip. The chips fill in
// parallel across their channels, so the pass is charged at module
// bandwidth over the module's capacity — the same time-per-capacity scaling
// the paper's Equation 9 uses.
func (m *Module) WritePattern(p dram.RowData) {
	d := m.timing.PassSeconds(m.TotalBytes())
	m.advance(d)
	now := m.clock.Now()
	if err := m.forEachChip(func(_ int, dev *dram.Device) { dev.WriteAll(p, now) }); err != nil {
		m.fail(err)
	}
	m.stats.WriteSeconds += d
	m.stats.WritePasses++
	m.stats.BytesWritten += m.TotalBytes()
	m.tele.Counter("module_write_passes_total").Inc()
	m.tele.Counter("module_bytes_written_total").Add(m.TotalBytes())
}

// Wait lets simulated time pass.
func (m *Module) Wait(seconds float64) {
	if seconds <= 0 {
		return
	}
	m.advance(seconds)
	if m.refresh {
		m.stats.IdleSeconds += seconds
	} else {
		m.stats.WaitSeconds += seconds
	}
}

// ReadCompare reads every chip back and returns the failing cells as
// module-global addresses. Chips are read on the worker pool; each chip's
// failure list is ascending and the chip index occupies the high address
// bits, so concatenating the per-chip lists in chip order yields the
// globally sorted result without a final sort.
func (m *Module) ReadCompare() []uint64 {
	d := m.timing.PassSeconds(m.TotalBytes())
	m.advance(d)
	now := m.clock.Now()
	perChip := make([][]uint64, len(m.devs))
	err := m.forEachChip(func(ci int, dev *dram.Device) {
		bits := dev.ReadCompareAll(now)
		global := make([]uint64, len(bits))
		for i, bit := range bits {
			global[i] = GlobalBit(ci, bit)
		}
		perChip[ci] = global
	})
	if err != nil {
		m.fail(err)
	}
	var fails []uint64
	for _, g := range perChip {
		fails = append(fails, g...)
	}
	m.stats.ReadSeconds += d
	m.stats.ReadPasses++
	m.stats.BytesRead += m.TotalBytes()
	m.tele.Counter("module_read_passes_total").Inc()
	m.tele.Counter("module_bytes_read_total").Add(m.TotalBytes())
	m.tele.Counter("module_failing_cells_seen_total").Add(int64(len(fails)))
	return fails
}

// IndexStats returns the module-wide sparse-index disposition counters: the
// element-wise sum over chips. Counter sums are commutative, so the result
// is identical at every worker count.
func (m *Module) IndexStats() dram.IndexStats {
	var total dram.IndexStats
	for _, dev := range m.devs {
		total = total.Add(dev.IndexStats())
	}
	return total
}

// IncrStats returns the module-wide incremental round-cache counters: the
// element-wise sum over chips.
func (m *Module) IncrStats() dram.IncrStats {
	var total dram.IncrStats
	for _, dev := range m.devs {
		total = total.Add(dev.IncrStats())
	}
	return total
}

// BankStats returns the module-wide banked-sweep counters: the element-wise
// sum over chips.
func (m *Module) BankStats() dram.BankStats {
	var total dram.BankStats
	for _, dev := range m.devs {
		total = total.Add(dev.BankStats())
	}
	return total
}

// SetSweepWorkers bounds the goroutines each chip may shard a full sweep
// across in BankStreams mode. Intra-chip sharding composes with the module's
// own cross-chip worker pool; results are byte-identical at every setting.
func (m *Module) SetSweepWorkers(n int) {
	for _, dev := range m.devs {
		dev.SetSweepWorkers(n)
	}
}

// Truth returns the module-wide ground-truth failing set at the target
// conditions (the union of every chip's oracle, chip-offset). The error is
// a worker-pool failure (a panic inside a chip simulation, converted by
// internal/parallel); there is no per-chip error path.
func (m *Module) Truth(targetInterval, targetTempC float64) (*core.FailureSet, error) {
	now := m.clock.Now()
	perChip := make([][]uint64, len(m.devs))
	err := m.forEachChip(func(ci int, dev *dram.Device) {
		perChip[ci] = dev.TrueFailingSet(targetInterval, targetTempC, now, dram.OracleThreshold)
	})
	if err != nil {
		return nil, err
	}
	out := core.NewFailureSet()
	for ci, bits := range perChip {
		for _, bit := range bits {
			out.Add(GlobalBit(ci, bit))
		}
	}
	return out, nil
}

// Module must satisfy the profiling interface.
var _ core.TestStation = (*Module)(nil)
