// Package module models a multi-chip DRAM module: several devices sharing
// one test controller, clock, and (optional) thermal chamber, as in the
// paper's infrastructure (Section 7 evaluates modules of 32 chips). A
// Module implements core.TestStation, so every profiler in this repository
// runs on it unchanged; failing cells are reported in a module-global
// address space (chip index folded into the high bits).
package module

import (
	"fmt"
	"sort"

	"reaper/internal/core"
	"reaper/internal/dram"
	"reaper/internal/memctrl"
	"reaper/internal/thermal"
)

// chipShift positions the chip index in the global bit address. 48 bits of
// per-chip address space covers any realistic device.
const chipShift = 48

// GlobalBit composes a module-global cell address.
func GlobalBit(chip int, bit uint64) uint64 {
	return uint64(chip)<<chipShift | bit
}

// SplitBit decomposes a module-global cell address.
func SplitBit(global uint64) (chip int, bit uint64) {
	return int(global >> chipShift), global & (1<<chipShift - 1)
}

// Module is a set of identical-geometry devices behind one controller.
type Module struct {
	devs    []*dram.Device
	chamber *thermal.Chamber
	clock   memctrl.Clock
	timing  memctrl.Timing
	refresh bool
	stats   memctrl.Stats
	ambient float64
}

// New builds a module over the devices. All devices must share a geometry.
// chamber may be nil (isothermal, instantaneous temperature changes).
func New(devs []*dram.Device, chamber *thermal.Chamber, timing memctrl.Timing) (*Module, error) {
	if len(devs) == 0 {
		return nil, fmt.Errorf("module: no devices")
	}
	geom := devs[0].Geometry()
	if geom.TotalBits() >= 1<<chipShift {
		return nil, fmt.Errorf("module: device too large for the global address space")
	}
	for i, d := range devs {
		if d == nil {
			return nil, fmt.Errorf("module: nil device %d", i)
		}
		if d.Geometry() != geom {
			return nil, fmt.Errorf("module: device %d geometry %v differs from %v",
				i, d.Geometry(), geom)
		}
	}
	if timing.BandwidthBytesPerSec <= 0 || timing.Efficiency <= 0 || timing.Efficiency > 1 ||
		timing.DefaultTREFI <= 0 {
		return nil, fmt.Errorf("module: invalid timing %+v", timing)
	}
	m := &Module{devs: devs, chamber: chamber, timing: timing, refresh: true,
		ambient: devs[0].Temperature()}
	for _, d := range devs {
		d.SetAutoRefresh(timing.DefaultTREFI)
	}
	m.syncTemp()
	return m, nil
}

// Chips returns the number of devices in the module.
func (m *Module) Chips() int { return len(m.devs) }

// Device returns one chip.
func (m *Module) Device(i int) *dram.Device { return m.devs[i] }

// TotalBytes returns the module capacity.
func (m *Module) TotalBytes() int64 {
	return int64(len(m.devs)) * m.devs[0].Geometry().TotalBytes()
}

// Clock returns simulated seconds.
func (m *Module) Clock() float64 { return m.clock.Now() }

// Stats returns the accumulated time accounting.
func (m *Module) Stats() memctrl.Stats { return m.stats }

func (m *Module) advance(d float64) {
	m.clock.Advance(d)
	if m.chamber != nil {
		m.chamber.Step(d)
	}
	m.syncTemp()
}

func (m *Module) syncTemp() {
	t := m.ambient
	if m.chamber != nil {
		t = m.chamber.DeviceTemp() - 15
	}
	for _, d := range m.devs {
		d.SetTemperature(t)
	}
}

// Ambient returns the module's ambient temperature.
func (m *Module) Ambient() float64 {
	if m.chamber == nil {
		return m.ambient
	}
	return m.devs[0].Temperature()
}

// SetAmbient changes the ambient temperature (settling through the chamber
// when present).
func (m *Module) SetAmbient(tempC float64) float64 {
	if m.chamber == nil {
		m.ambient = tempC
		m.syncTemp()
		return tempC
	}
	start := m.clock.Now()
	m.chamber.SetTarget(tempC)
	for !m.chamber.Settled(0.25) && m.clock.Now()-start < 3600 {
		m.advance(1)
	}
	m.advance(30)
	m.stats.IdleSeconds += m.clock.Now() - start
	return m.chamber.Target()
}

// DisableRefresh pauses auto-refresh on every chip.
func (m *Module) DisableRefresh() {
	m.refresh = false
	for _, d := range m.devs {
		d.SetAutoRefresh(0)
	}
}

// EnableRefresh resumes auto-refresh at the default interval, locking in
// any failures that accumulated while paused (see memctrl.Station).
func (m *Module) EnableRefresh() {
	if !m.refresh {
		for _, d := range m.devs {
			d.RestoreAll(m.clock.Now())
		}
	}
	m.refresh = true
	for _, d := range m.devs {
		d.SetAutoRefresh(m.timing.DefaultTREFI)
	}
}

// SetRefreshInterval runs auto-refresh at a non-default interval on every
// chip; interval <= 0 disables refresh.
func (m *Module) SetRefreshInterval(interval float64) {
	if interval <= 0 {
		m.DisableRefresh()
		return
	}
	if !m.refresh {
		for _, d := range m.devs {
			d.RestoreAll(m.clock.Now())
		}
	}
	m.refresh = true
	for _, d := range m.devs {
		d.SetAutoRefresh(interval)
	}
}

// WritePattern streams a pattern into every chip. The chips fill in
// parallel across their channels, so the pass is charged at module
// bandwidth over the module's capacity — the same time-per-capacity scaling
// the paper's Equation 9 uses.
func (m *Module) WritePattern(p dram.RowData) {
	d := m.timing.PassSeconds(m.TotalBytes())
	m.advance(d)
	for _, dev := range m.devs {
		dev.WriteAll(p, m.clock.Now())
	}
	m.stats.WriteSeconds += d
	m.stats.WritePasses++
	m.stats.BytesWritten += m.TotalBytes()
}

// Wait lets simulated time pass.
func (m *Module) Wait(seconds float64) {
	if seconds <= 0 {
		return
	}
	m.advance(seconds)
	if m.refresh {
		m.stats.IdleSeconds += seconds
	} else {
		m.stats.WaitSeconds += seconds
	}
}

// ReadCompare reads every chip back and returns the failing cells as
// module-global addresses.
func (m *Module) ReadCompare() []uint64 {
	d := m.timing.PassSeconds(m.TotalBytes())
	m.advance(d)
	var fails []uint64
	for ci, dev := range m.devs {
		for _, bit := range dev.ReadCompareAll(m.clock.Now()) {
			fails = append(fails, GlobalBit(ci, bit))
		}
	}
	m.stats.ReadSeconds += d
	m.stats.ReadPasses++
	m.stats.BytesRead += m.TotalBytes()
	sort.Slice(fails, func(i, j int) bool { return fails[i] < fails[j] })
	return fails
}

// Truth returns the module-wide ground-truth failing set at the target
// conditions (the union of every chip's oracle, chip-offset).
func (m *Module) Truth(targetInterval, targetTempC float64) *core.FailureSet {
	out := core.NewFailureSet()
	for ci, dev := range m.devs {
		for _, bit := range dev.TrueFailingSet(targetInterval, targetTempC, m.clock.Now(), dram.OracleThreshold) {
			out.Add(GlobalBit(ci, bit))
		}
	}
	return out
}

// Module must satisfy the profiling interface.
var _ core.TestStation = (*Module)(nil)
