package module

import (
	"reflect"
	"testing"

	"reaper/internal/patterns"
)

// TestModuleParallelDeterministic runs identical profiling passes on two
// identically seeded modules — one with a single worker, one with eight —
// and requires byte-identical failure lists and truth sets. Each chip owns
// its own device and RNG, so the per-chip pool must not change any result.
func TestModuleParallelDeterministic(t *testing.T) {
	run := func(workers int) ([][]uint64, []uint64) {
		m := testModule(t, 4, 77)
		m.SetWorkers(workers)
		var passes [][]uint64
		for _, p := range []patterns.Pattern{
			patterns.Solid1(), patterns.Checkerboard(), patterns.Random(5),
		} {
			m.WritePattern(p)
			m.DisableRefresh()
			m.Wait(2.048)
			m.EnableRefresh()
			passes = append(passes, m.ReadCompare())
		}
		truth, err := m.Truth(1.024, 45)
		if err != nil {
			t.Fatal(err)
		}
		return passes, truth.Sorted()
	}
	seqPasses, seqTruth := run(1)
	parPasses, parTruth := run(8)
	if !reflect.DeepEqual(seqPasses, parPasses) {
		t.Fatal("ReadCompare results differ between workers=1 and workers=8")
	}
	if !reflect.DeepEqual(seqTruth, parTruth) {
		t.Fatal("Truth differs between workers=1 and workers=8")
	}
	// The concatenated global failure lists must come back sorted (the
	// no-final-sort fast path relies on chip-major address composition).
	for _, pass := range parPasses {
		for i := 1; i < len(pass); i++ {
			if pass[i-1] > pass[i] {
				t.Fatalf("ReadCompare result not sorted at %d", i)
			}
		}
	}
}
