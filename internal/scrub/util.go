package scrub

import (
	"slices"

	"reaper/internal/dram"
	"reaper/internal/mitigate"
)

func sortSlice(addrs []mitigate.WordAddr, less func(a, b mitigate.WordAddr) bool) {
	slices.SortFunc(addrs, func(a, b mitigate.WordAddr) int {
		switch {
		case less(a, b):
			return -1
		case less(b, a):
			return 1
		default:
			return 0
		}
	})
}

// toDRAMAddr converts a word address to the dram.Addr of its first bit.
func toDRAMAddr(a mitigate.WordAddr) dram.Addr {
	return dram.Addr{Bank: a.Bank, Row: a.Row, Word: a.Word, Bit: 0}
}
