package scrub

import (
	"sort"

	"reaper/internal/dram"
	"reaper/internal/mitigate"
)

func sortSlice(addrs []mitigate.WordAddr, less func(a, b mitigate.WordAddr) bool) {
	sort.Slice(addrs, func(i, j int) bool { return less(addrs[i], addrs[j]) })
}

// toDRAMAddr converts a word address to the dram.Addr of its first bit.
func toDRAMAddr(a mitigate.WordAddr) dram.Addr {
	return dram.Addr{Bank: a.Bank, Row: a.Row, Word: a.Word, Bit: 0}
}
