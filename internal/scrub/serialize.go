package scrub

import (
	"bytes"
	"fmt"

	"reaper/internal/checkpoint"
	"reaper/internal/core"
	"reaper/internal/mitigate"
)

// Checkpoint surfaces of the ECC memory and the scrubber. The station and
// address mapper are construction wiring and are re-attached by the caller;
// what round-trips here is the controller-side check-bit store, the
// accumulated AVATAR profile, and the per-pass history.

const (
	maxRestoreWords   = 1 << 28
	maxRestoreReports = 1 << 24
)

func encodeAddr(e *checkpoint.Encoder, a mitigate.WordAddr) {
	e.Int(a.Bank)
	e.Int(a.Row)
	e.Int(a.Word)
}

func decodeAddr(d *checkpoint.Decoder) mitigate.WordAddr {
	return mitigate.WordAddr{Bank: d.Int(), Row: d.Int(), Word: d.Int()}
}

// EncodeState serializes the ECC check-bit store.
func (m *ECCMemory) EncodeState(e *checkpoint.Encoder) {
	e.Section("scrub.eccmem")
	written := m.Written() // deterministic order
	e.Len(len(written))
	for _, a := range written {
		encodeAddr(e, a)
		e.Byte(m.checks[a])
	}
}

// RestoreState loads a check-bit store serialized by EncodeState.
func (m *ECCMemory) RestoreState(d *checkpoint.Decoder) error {
	d.Section("scrub.eccmem")
	n := d.Len(maxRestoreWords)
	if d.Err() != nil {
		return d.Err()
	}
	m.checks = make(map[mitigate.WordAddr]uint8, n)
	for i := 0; i < n; i++ {
		a := decodeAddr(d)
		m.checks[a] = d.Byte()
	}
	return d.Err()
}

// EncodeState serializes the scrubber's profile, counters and history.
func (s *Scrubber) EncodeState(e *checkpoint.Encoder) error {
	e.Section("scrub.scrubber")
	var buf bytes.Buffer
	if _, err := s.profile.WriteTo(&buf); err != nil {
		return fmt.Errorf("scrub: encode profile: %w", err)
	}
	e.Bytes(buf.Bytes())
	e.Int(s.UncorrectableTotal)
	e.Int(s.Rounds)
	e.Len(len(s.history))
	for _, rep := range s.history {
		e.Int(rep.WordsScanned)
		e.Int(rep.Corrected)
		e.Int(rep.Uncorrectable)
		e.Len(len(rep.Uncorrectables))
		for _, a := range rep.Uncorrectables {
			encodeAddr(e, a)
		}
	}
	return nil
}

// RestoreState loads scrubber state serialized by EncodeState. Telemetry
// wiring is untouched; re-attach it with Instrument as on construction.
func (s *Scrubber) RestoreState(d *checkpoint.Decoder) error {
	d.Section("scrub.scrubber")
	blob := d.Bytes()
	if d.Err() != nil {
		return d.Err()
	}
	profile, err := core.ReadFailureSet(bytes.NewReader(blob))
	if err != nil {
		return fmt.Errorf("scrub: restore profile: %w", err)
	}
	s.profile = profile
	s.UncorrectableTotal = d.Int()
	s.Rounds = d.Int()
	n := d.Len(maxRestoreReports)
	if d.Err() != nil {
		return d.Err()
	}
	s.history = make([]ScrubReport, 0, n)
	for i := 0; i < n; i++ {
		rep := ScrubReport{
			WordsScanned:  d.Int(),
			Corrected:     d.Int(),
			Uncorrectable: d.Int(),
		}
		nu := d.Len(maxRestoreWords)
		if d.Err() != nil {
			return d.Err()
		}
		for j := 0; j < nu; j++ {
			rep.Uncorrectables = append(rep.Uncorrectables, decodeAddr(d))
		}
		s.history = append(s.history, rep)
	}
	return d.Err()
}
