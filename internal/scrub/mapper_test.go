package scrub

import (
	"testing"

	"reaper/internal/core"
	"reaper/internal/dram"
	"reaper/internal/ecc"
	"reaper/internal/mitigate"
)

func TestECCMemoryMapperFollowsRemap(t *testing.T) {
	st := newStation(t, 7)
	shield, err := mitigate.NewArchShield(st, 0.04)
	if err != nil {
		t.Fatal(err)
	}
	mem, _ := NewECCMemory(st)
	mem.SetMapper(shield.Resolve)

	addr := mitigate.WordAddr{Bank: 2, Row: 4, Word: 8}
	if err := mem.Write(addr, 0xabad1dea); err != nil {
		t.Fatal(err)
	}

	// Remap the word out from under the ECC layer, migrate the data (the
	// system's job on a real remap), and verify reads follow the map.
	geom := st.Device().Geometry()
	bit := geom.BitIndex(dram.Addr{Bank: addr.Bank, Row: addr.Row, Word: addr.Word, Bit: 0})
	if err := shield.Install(core.NewFailureSet(bit)); err != nil {
		t.Fatal(err)
	}
	if shield.Resolve(addr) == addr {
		t.Fatal("word was not remapped")
	}
	if err := mem.Write(addr, 0xabad1dea); err != nil {
		t.Fatal(err)
	}
	val, status, err := mem.Read(addr)
	if err != nil {
		t.Fatal(err)
	}
	if val != 0xabad1dea || status != ecc.Clean {
		t.Fatalf("read through mapper = %#x status %v", val, status)
	}

	// The physical backing word in the spare segment holds the data.
	p := shield.Resolve(addr)
	got, err := st.ReadWord(p.Bank, p.Row, p.Word)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0xabad1dea {
		t.Fatalf("spare word = %#x, want data at resolved address", got)
	}
}

func TestScrubberHistoryAndUncorrectables(t *testing.T) {
	st := newStation(t, 8)
	mem, _ := NewECCMemory(st)
	scr, err := NewScrubber(mem)
	if err != nil {
		t.Fatal(err)
	}
	// Find a word with >= 2 true-cells failing at aggressive conditions and
	// stress it: SECDED decodes a double-bit error, which the report must
	// name.
	truth := core.Truth(st, 4.096, 45)
	geom := st.Device().Geometry()
	stable := map[uint64]bool{} // non-VRT true-cells: deterministic at long elapsed
	for _, c := range st.Device().Cells(st.Clock()) {
		stable[c.Bit] = c.ChargedVal == 1 && !c.VRT
	}
	perWord := map[mitigate.WordAddr]int{}
	for _, bit := range truth.Sorted() {
		if !stable[bit] {
			continue
		}
		a := geom.AddrOf(bit)
		perWord[mitigate.WordAddr{Bank: a.Bank, Row: a.Row, Word: a.Word}]++
	}
	var victim mitigate.WordAddr
	found := false
	for _, bit := range truth.Sorted() {
		a := geom.AddrOf(bit)
		wa := mitigate.WordAddr{Bank: a.Bank, Row: a.Row, Word: a.Word}
		if perWord[wa] >= 2 {
			victim, found = wa, true
			break
		}
	}
	if !found {
		t.Skip("no multi-cell word at this seed")
	}
	if err := mem.Write(victim, ^uint64(0)); err != nil {
		t.Fatal(err)
	}
	// With refresh paused, 30 s of leakage puts every truth cell far past
	// mu + 3.5 sigma under any data pattern: both cells fail with
	// probability 1, so the scrub decodes a double-bit error.
	st.DisableRefresh()
	st.Wait(30)
	rep, err := scr.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Uncorrectable == 0 {
		t.Fatal("no uncorrectable error on a word with two failed cells")
	}
	if len(rep.Uncorrectables) != rep.Uncorrectable {
		t.Fatalf("report lists %d addrs for %d UEs",
			len(rep.Uncorrectables), rep.Uncorrectable)
	}
	if rep.Uncorrectables[0] != victim {
		t.Fatalf("UE at %+v, want %+v", rep.Uncorrectables[0], victim)
	}
	hist := scr.History()
	if len(hist) != scr.Rounds {
		t.Fatalf("history has %d entries for %d rounds", len(hist), scr.Rounds)
	}
	totalUE := 0
	for _, h := range hist {
		totalUE += h.Uncorrectable
	}
	if totalUE != scr.UncorrectableTotal {
		t.Fatalf("history UEs %d != running total %d", totalUE, scr.UncorrectableTotal)
	}
}
