// Package scrub implements an AVATAR-style ECC-scrubbing profiler (Qureshi
// et al., DSN'15), the passive alternative the paper analyzes in Section
// 3.2: every memory word is protected by SECDED ECC, a scrubber
// periodically sweeps memory, corrects single-bit errors, and records the
// failing addresses as a retention profile.
//
// The paper's criticism — which this package makes demonstrable — is that
// scrubbing is *passive*: it only observes failures under the data that
// happens to be stored. A row that scrubs clean can be rewritten with an
// unfavourable data pattern (DPD, Section 2.3.2) and then accumulate a
// multi-bit error before the next scrub, which SECDED cannot correct.
// Active profiling (REAPER) tests worst-case patterns deliberately and
// finds those cells in advance.
package scrub

import (
	"fmt"

	"reaper/internal/core"
	"reaper/internal/ecc"
	"reaper/internal/memctrl"
	"reaper/internal/mitigate"
	"reaper/internal/telemetry"
)

// ECCMemory overlays SECDED(72,64) on a station: the 64 data bits live in
// the simulated device, the 8 check bits in controller-side storage
// (modelling the ECC DIMM's extra devices, which this testbed does not
// simulate at cell level).
type ECCMemory struct {
	st     *memctrl.Station //lint:serialized-elsewhere station wiring; the stack is rebuilt by construction before RestoreState
	checks map[mitigate.WordAddr]uint8
	mapper func(mitigate.WordAddr) mitigate.WordAddr //lint:serialized-elsewhere remap closure; re-attached by SetMapper when the shield is rebuilt
}

// NewECCMemory wraps a station.
func NewECCMemory(st *memctrl.Station) (*ECCMemory, error) {
	if st == nil {
		return nil, fmt.Errorf("scrub: nil station")
	}
	return &ECCMemory{st: st, checks: make(map[mitigate.WordAddr]uint8)}, nil
}

// SetMapper routes every device access through an address translation —
// typically ArchShield.Resolve, so ECC-protected words follow their
// remapping into the spare segment. ECC state stays keyed by the logical
// address; translation happens at access time, so words remapped after
// being written keep their protection (the data at the new physical
// location must be rewritten by the caller, as on a real migration).
func (m *ECCMemory) SetMapper(mapper func(mitigate.WordAddr) mitigate.WordAddr) {
	m.mapper = mapper
}

// physical translates a logical word address to its current backing word.
func (m *ECCMemory) physical(addr mitigate.WordAddr) mitigate.WordAddr {
	if m.mapper == nil {
		return addr
	}
	return m.mapper(addr)
}

// Write stores a word with ECC.
func (m *ECCMemory) Write(addr mitigate.WordAddr, val uint64) error {
	w := ecc.EncodeSECDED(val)
	p := m.physical(addr)
	if err := m.st.WriteWord(p.Bank, p.Row, p.Word, w.Data); err != nil {
		return err
	}
	m.checks[addr] = w.Check
	return nil
}

// Read loads a word through ECC decode. It returns the best-effort value
// and the decode status; Corrected values are NOT written back (that is the
// scrubber's job).
func (m *ECCMemory) Read(addr mitigate.WordAddr) (uint64, ecc.DecodeStatus, error) {
	check, ok := m.checks[addr]
	if !ok {
		return 0, ecc.Clean, fmt.Errorf("scrub: word %+v was never written", addr)
	}
	p := m.physical(addr)
	data, err := m.st.ReadWord(p.Bank, p.Row, p.Word)
	if err != nil {
		return 0, ecc.Clean, err
	}
	val, status, _ := ecc.DecodeSECDED(ecc.Word72{Data: data, Check: check})
	return val, status, nil
}

// Written returns the addresses currently under ECC protection, in
// deterministic order.
func (m *ECCMemory) Written() []mitigate.WordAddr {
	out := make([]mitigate.WordAddr, 0, len(m.checks))
	for a := range m.checks {
		out = append(out, a)
	}
	sortAddrs(out)
	return out
}

func sortAddrs(addrs []mitigate.WordAddr) {
	less := func(a, b mitigate.WordAddr) bool {
		if a.Bank != b.Bank {
			return a.Bank < b.Bank
		}
		if a.Row != b.Row {
			return a.Row < b.Row
		}
		return a.Word < b.Word
	}
	// Insertion-free: delegate to the shared slices.SortFunc wrapper.
	sortSlice(addrs, less)
}

// ScrubReport summarizes one scrub pass. It is the per-window ECC telemetry
// a resilience controller consumes: corrected (CE) and uncorrectable (UE)
// counts plus the exact words that were SECDED-fatal this pass.
type ScrubReport struct {
	WordsScanned  int
	Corrected     int
	Uncorrectable int
	// Uncorrectables lists the logical addresses of the words that decoded
	// as double-bit errors this pass, in deterministic (ascending) order.
	Uncorrectables []mitigate.WordAddr
}

// Scrubber periodically sweeps the ECC memory, repairs single-bit errors by
// rewriting the corrected data, and accumulates the profile of addresses
// observed to fail — the AVATAR retention profile.
type Scrubber struct {
	mem     *ECCMemory       //lint:serialized-elsewhere memory wiring; the stack is rebuilt by construction before RestoreState
	profile *core.FailureSet // failing *word* bit addresses (first bit of word)
	// UncorrectableTotal counts double-bit (SECDED-fatal) events seen.
	UncorrectableTotal int
	// Rounds counts completed scrub passes.
	Rounds int
	// history holds the per-pass reports, oldest first.
	history []ScrubReport

	// Telemetry (see Instrument); nil on an uninstrumented scrubber.
	tele       *telemetry.Registry //lint:serialized-elsewhere telemetry wiring; re-attached by Instrument, nil-safe when absent
	tracer     *telemetry.Tracer   //lint:serialized-elsewhere telemetry wiring; the tracer checkpoints through its own codec
	teleLabels []telemetry.Label   //lint:serialized-elsewhere telemetry wiring; re-attached by Instrument, nil-safe when absent
}

// NewScrubber builds a scrubber over an ECC memory.
func NewScrubber(mem *ECCMemory) (*Scrubber, error) {
	if mem == nil {
		return nil, fmt.Errorf("scrub: nil memory")
	}
	return &Scrubber{mem: mem, profile: core.NewFailureSet()}, nil
}

// Instrument attaches a telemetry registry and (optionally) a tracer: each
// Scrub pass records scrub_passes_total, scrub_words_scanned_total,
// scrub_corrected_total, and scrub_uncorrectable_total, and emits one
// "scrub-pass" trace event stamped with the station clock. Counters are
// commutative across scrubbers sharing a registry; a tracer is
// single-owner. The labels are stamped on trace events (e.g. chip=3).
func (s *Scrubber) Instrument(reg *telemetry.Registry, tracer *telemetry.Tracer, labels ...telemetry.Label) {
	s.tele = reg
	s.tracer = tracer
	s.teleLabels = labels
}

// Scrub sweeps every written word once. Corrected words are rewritten with
// clean data; uncorrectable words are left in place (the system would crash
// or page them out) but still recorded in the profile.
func (s *Scrubber) Scrub() (ScrubReport, error) {
	var rep ScrubReport
	geom := s.mem.st.Device().Geometry()
	for _, addr := range s.mem.Written() {
		val, status, err := s.mem.Read(addr)
		if err != nil {
			return rep, err
		}
		rep.WordsScanned++
		switch status {
		case ecc.Corrected:
			rep.Corrected++
			s.recordWord(geom.BitIndex(toDRAMAddr(addr)))
			if err := s.mem.Write(addr, val); err != nil {
				return rep, err
			}
		case ecc.DoubleError:
			rep.Uncorrectable++
			s.UncorrectableTotal++
			rep.Uncorrectables = append(rep.Uncorrectables, addr)
			s.recordWord(geom.BitIndex(toDRAMAddr(addr)))
		}
	}
	s.Rounds++
	s.history = append(s.history, rep)
	s.tele.Counter("scrub_passes_total").Inc()
	s.tele.Counter("scrub_words_scanned_total").Add(int64(rep.WordsScanned))
	s.tele.Counter("scrub_corrected_total").Add(int64(rep.Corrected))
	s.tele.Counter("scrub_uncorrectable_total").Add(int64(rep.Uncorrectable))
	s.tracer.Emit(s.mem.st.Clock(), "scrub-pass",
		fmt.Sprintf("scanned=%d corrected=%d uncorrectable=%d",
			rep.WordsScanned, rep.Corrected, rep.Uncorrectable), s.teleLabels...)
	return rep, nil
}

// History returns the per-pass scrub reports accumulated so far, oldest
// first — the correctable-error-per-window telemetry stream the firmware
// resilience controller compares against its longevity budget.
func (s *Scrubber) History() []ScrubReport {
	out := make([]ScrubReport, len(s.history))
	copy(out, s.history)
	return out
}

func (s *Scrubber) recordWord(bit uint64) { s.profile.Add(bit) }

// Profile returns the set of word base addresses (as bit indices) the
// scrubber has observed failing. Note the granularity difference from
// active profiling: the scrubber sees words, not cells, and only under the
// stored data.
func (s *Scrubber) Profile() *core.FailureSet { return s.profile.Clone() }

// WordCoverage scores the scrubber's profile against a ground-truth cell
// set at word granularity: the fraction of truth cells whose containing
// word is in the scrubber's profile.
func (s *Scrubber) WordCoverage(truth *core.FailureSet, st *memctrl.Station) float64 {
	if truth.Len() == 0 {
		return 1
	}
	geom := st.Device().Geometry()
	hit := 0
	for _, bit := range truth.Sorted() {
		a := geom.AddrOf(bit)
		a.Bit = 0
		if s.profile.Contains(geom.BitIndex(a)) {
			hit++
		}
	}
	return float64(hit) / float64(truth.Len())
}
