package scrub

import (
	"testing"

	"reaper/internal/core"
	"reaper/internal/dram"
	"reaper/internal/ecc"
	"reaper/internal/memctrl"
	"reaper/internal/mitigate"
)

func newStation(t testing.TB, seed uint64) *memctrl.Station {
	t.Helper()
	dev, err := dram.NewDevice(dram.Config{
		Geometry:  dram.Geometry{Banks: 8, RowsPerBank: 64, WordsPerRow: 256},
		Vendor:    dram.VendorB(),
		Seed:      seed,
		WeakScale: 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := memctrl.NewStation(dev, nil, memctrl.DefaultTiming())
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestECCMemoryValidation(t *testing.T) {
	if _, err := NewECCMemory(nil); err == nil {
		t.Error("nil station not rejected")
	}
	mem, err := NewECCMemory(newStation(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewScrubber(nil); err == nil {
		t.Error("nil memory not rejected")
	}
	if _, _, err := mem.Read(mitigate.WordAddr{Bank: 0, Row: 0, Word: 0}); err == nil {
		t.Error("read of never-written word not rejected")
	}
}

func TestECCMemoryRoundTrip(t *testing.T) {
	mem, _ := NewECCMemory(newStation(t, 2))
	addr := mitigate.WordAddr{Bank: 1, Row: 2, Word: 3}
	if err := mem.Write(addr, 0xfeedfacecafebeef); err != nil {
		t.Fatal(err)
	}
	val, status, err := mem.Read(addr)
	if err != nil {
		t.Fatal(err)
	}
	if val != 0xfeedfacecafebeef || status != ecc.Clean {
		t.Fatalf("read %x status %v", val, status)
	}
	if n := len(mem.Written()); n != 1 {
		t.Errorf("Written = %d, want 1", n)
	}
}

func TestECCMemoryCorrectsRetentionFlip(t *testing.T) {
	st := newStation(t, 3)
	mem, _ := NewECCMemory(st)
	// Find a word containing exactly one strong-probability failing cell.
	truth := core.Truth(st, 2.048, 45)
	geom := st.Device().Geometry()
	perWord := map[mitigate.WordAddr]int{}
	for _, bit := range truth.Sorted() {
		a := geom.AddrOf(bit)
		perWord[mitigate.WordAddr{Bank: a.Bank, Row: a.Row, Word: a.Word}]++
	}
	// Deterministically pick the first single-cell word whose cell is a
	// true-cell (charged value 1), so storing all-ones stresses it.
	chargedOf := map[uint64]uint8{}
	for _, c := range st.Device().Cells(st.Clock()) {
		chargedOf[c.Bit] = c.ChargedVal
	}
	var victim mitigate.WordAddr
	found := false
	for _, bit := range truth.Sorted() {
		a := geom.AddrOf(bit)
		wa := mitigate.WordAddr{Bank: a.Bank, Row: a.Row, Word: a.Word}
		if perWord[wa] == 1 && chargedOf[bit] == 1 {
			victim, found = wa, true
			break
		}
	}
	if !found {
		t.Skip("no single-cell word available")
	}
	st.SetRefreshInterval(2.048)
	if err := mem.Write(victim, ^uint64(0)); err != nil {
		t.Fatal(err)
	}
	// Let the cell fail (repeated extended-refresh cycles make it nearly
	// certain), then read through ECC: it must correct.
	st.Wait(300)
	sawCorrection := false
	for i := 0; i < 20 && !sawCorrection; i++ {
		_, status, err := mem.Read(victim)
		if err != nil {
			t.Fatal(err)
		}
		if status == ecc.Corrected {
			sawCorrection = true
		}
		st.Wait(60)
	}
	if !sawCorrection {
		t.Error("no corrected read observed on a failing word")
	}
}

func TestScrubberFindsAndRepairsFailures(t *testing.T) {
	st := newStation(t, 4)
	mem, _ := NewECCMemory(st)
	scr, err := NewScrubber(mem)
	if err != nil {
		t.Fatal(err)
	}
	// Protect a spread of words that contain true failing cells.
	truth := core.Truth(st, 2.048, 45)
	geom := st.Device().Geometry()
	n := 0
	for _, bit := range truth.Sorted() {
		a := geom.AddrOf(bit)
		wa := mitigate.WordAddr{Bank: a.Bank, Row: a.Row, Word: a.Word}
		if err := mem.Write(wa, 0xAAAAAAAAAAAAAAAA); err != nil {
			t.Fatal(err)
		}
		n++
		if n >= 150 {
			break
		}
	}
	st.SetRefreshInterval(2.048)
	st.Wait(600)
	rep, err := scr.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if rep.WordsScanned != n {
		t.Errorf("scanned %d, want %d", rep.WordsScanned, n)
	}
	if rep.Corrected == 0 {
		t.Error("scrub corrected nothing despite extended-interval operation")
	}
	if scr.Profile().Len() == 0 {
		t.Error("scrubber accumulated no profile")
	}
	if scr.Rounds != 1 {
		t.Errorf("rounds = %d", scr.Rounds)
	}
	// A second immediate scrub should find (almost) everything repaired:
	// strictly fewer corrections than the first pass.
	rep2, err := scr.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Corrected >= rep.Corrected {
		t.Errorf("repairs did not take: %d then %d corrections", rep.Corrected, rep2.Corrected)
	}
}

func TestScrubberIsPassiveMissesDPDFailures(t *testing.T) {
	// The paper's Section 3.2 criticism, made concrete: under benign data
	// the scrubber sees few failures; an active (reach) profile of the
	// same chip at the same target finds far more possible failing cells,
	// because it deliberately tests many patterns.
	st := newStation(t, 5)
	mem, _ := NewECCMemory(st)
	scr, _ := NewScrubber(mem)

	truth := core.Truth(st, 2.048, 45)
	geom := st.Device().Geometry()
	// Protect the words of every truth cell with data equal to each
	// cell's DISCHARGED value: leakage cannot corrupt them, modelling a
	// benign resident data pattern.
	cells := st.Device().Cells(st.Clock())
	chargedOf := map[uint64]uint8{}
	for _, c := range cells {
		chargedOf[c.Bit] = c.ChargedVal
	}
	for _, bit := range truth.Sorted() {
		a := geom.AddrOf(bit)
		wa := mitigate.WordAddr{Bank: a.Bank, Row: a.Row, Word: a.Word}
		var val uint64
		if chargedOf[bit] == 0 {
			// Anti-cell: store 1 so it holds its charged... inverse:
			// store the value that does NOT stress it (charged=0 means
			// storing 0 can decay; store 1).
			val = ^uint64(0)
		} else {
			val = 0
		}
		if err := mem.Write(wa, val); err != nil {
			t.Fatal(err)
		}
	}
	st.SetRefreshInterval(2.048)
	// A day of operation with hourly scrubs under benign data.
	for h := 0; h < 24; h++ {
		st.Wait(3600)
		if _, err := scr.Scrub(); err != nil {
			t.Fatal(err)
		}
	}
	passiveCoverage := scr.WordCoverage(truth, st)

	// Active profiling on an identical chip.
	st2 := newStation(t, 5)
	prof, err := core.Reach(st2, 2.048, core.ReachConditions{DeltaInterval: 0.25},
		core.Options{Iterations: 16, FreshRandomPerIteration: true})
	if err != nil {
		t.Fatal(err)
	}
	activeCoverage := core.Coverage(prof.Failures, core.Truth(st2, 2.048, 45))

	if passiveCoverage > 0.3 {
		t.Errorf("passive scrubbing coverage under benign data = %v; should be low", passiveCoverage)
	}
	if activeCoverage < 0.9 {
		t.Errorf("active profiling coverage = %v; should be high", activeCoverage)
	}
	if activeCoverage <= passiveCoverage {
		t.Error("active profiling did not beat passive scrubbing")
	}
}

func TestScrubberUncorrectableDoubleErrors(t *testing.T) {
	// Words containing two failing cells defeat SECDED when both flip
	// between scrubs — the failure mode active profiling avoids by
	// remapping such words in advance.
	st := newStation(t, 6)
	mem, _ := NewECCMemory(st)
	scr, _ := NewScrubber(mem)
	truth := core.Truth(st, 4.096, 45)
	geom := st.Device().Geometry()
	perWord := map[mitigate.WordAddr][]uint64{}
	for _, bit := range truth.Sorted() {
		a := geom.AddrOf(bit)
		wa := mitigate.WordAddr{Bank: a.Bank, Row: a.Row, Word: a.Word}
		perWord[wa] = append(perWord[wa], bit)
	}
	cells := st.Device().Cells(st.Clock())
	chargedOf := map[uint64]uint8{}
	for _, c := range cells {
		chargedOf[c.Bit] = c.ChargedVal
	}
	protected := 0
	for wa, bits := range perWord {
		if len(bits) < 2 {
			continue
		}
		// Store data that stresses every failing cell in the word.
		var val uint64
		for _, bit := range bits {
			a := geom.AddrOf(bit)
			if chargedOf[bit] == 1 {
				val |= 1 << uint(a.Bit)
			}
		}
		if err := mem.Write(wa, val); err != nil {
			t.Fatal(err)
		}
		protected++
	}
	if protected == 0 {
		t.Skip("no multi-cell words on this chip")
	}
	st.SetRefreshInterval(4.096)
	st.Wait(1800)
	rep, err := scr.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Uncorrectable == 0 {
		t.Errorf("no uncorrectable errors among %d double-cell words after 30min at 4096ms", protected)
	}
	if scr.UncorrectableTotal != rep.Uncorrectable {
		t.Error("uncorrectable totals inconsistent")
	}
}

func TestWordCoverageEmptyTruth(t *testing.T) {
	st := newStation(t, 7)
	mem, _ := NewECCMemory(st)
	scr, _ := NewScrubber(mem)
	if got := scr.WordCoverage(core.NewFailureSet(), st); got != 1 {
		t.Errorf("empty truth coverage = %v, want 1", got)
	}
}
