package benchfmt

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestWriteFileNormalizesNilSlices pins the null-vs-[] schema fix: a baseline
// with absent sections must marshal them as empty lists, never null.
func TestWriteFileNormalizesNilSlices(t *testing.T) {
	b := NewBaseline()
	b.GeneratedAt = "2026-01-01T00:00:00Z"
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := b.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), "null") {
		t.Fatalf("baseline marshalled a null section:\n%s", data)
	}
	for _, want := range []string{`"sweeps": []`, `"micro": []`, `"seed_micro": []`} {
		if !strings.Contains(string(data), want) {
			t.Fatalf("baseline missing %s:\n%s", want, data)
		}
	}
}

// TestBaselineRoundTrip checks a fully populated baseline survives
// WriteFile + ReadFile unchanged.
func TestBaselineRoundTrip(t *testing.T) {
	b := NewBaseline()
	b.GeneratedAt = "2026-01-01T00:00:00Z"
	b.Sweeps = []SweepResult{{Name: "s", SequentialSec: 2, ParallelSec: 1, Workers: 4, Speedup: 2}}
	b.Micro = []MicroResult{{Name: "m", NsPerOp: 123.5, AllocsPerOp: 3, BytesPerOp: 48}}
	b.SeedMicro = []MicroResult{{Name: "m", NsPerOp: 999, AllocsPerOp: 9, BytesPerOp: 96}}
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := b.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := json.Marshal(b)
	round, _ := json.Marshal(got)
	if string(want) != string(round) {
		t.Fatalf("round trip changed the baseline:\nwrote: %s\nread:  %s", want, round)
	}
}

// TestCommittedBaselinesParse unmarshals both committed BENCH schemas: the
// files at the repo root must always load through this package, and their
// sections must be lists (the "sweeps": null regression).
func TestCommittedBaselinesParse(t *testing.T) {
	for _, name := range []string{"BENCH_device.json", "BENCH_parallel.json"} {
		b, err := ReadFile(filepath.Join("..", "..", name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if b.GoVersion == "" || b.NumCPU == 0 || b.GeneratedAt == "" {
			t.Fatalf("%s: header incomplete: %+v", name, b)
		}
		if b.Sweeps == nil || b.Micro == nil || b.SeedMicro == nil {
			t.Fatalf("%s: contains a null section (sweeps=%v micro=%v seed_micro=%v)",
				name, b.Sweeps == nil, b.Micro == nil, b.SeedMicro == nil)
		}
		if len(b.Micro) == 0 {
			t.Fatalf("%s: no microbenchmark rows", name)
		}
		for _, m := range b.Micro {
			if m.Name == "" || m.NsPerOp <= 0 {
				t.Fatalf("%s: malformed micro row %+v", name, m)
			}
		}
	}
}
