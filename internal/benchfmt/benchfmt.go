// Package benchfmt defines the machine-readable benchmark baseline schema
// shared by cmd/benchparallel (BENCH_parallel.json) and cmd/benchdevice
// (BENCH_device.json). Keeping the types in one place guarantees the two
// files stay shape-compatible, so tooling that tracks the repo's perf
// trajectory can parse either.
package benchfmt

import (
	"encoding/json"
	"os"
	"runtime"
	"testing"

	"reaper/internal/checkpoint"
)

// SweepResult is one workload measured sequentially and in parallel.
type SweepResult struct {
	Name          string  `json:"name"`
	SequentialSec float64 `json:"sequential_sec"`
	ParallelSec   float64 `json:"parallel_sec"`
	Workers       int     `json:"workers"`
	Speedup       float64 `json:"speedup"`
}

// MicroResult is a single-threaded hot-path microbenchmark.
type MicroResult struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// Baseline is the BENCH_*.json schema.
type Baseline struct {
	GeneratedAt string `json:"generated_at"`
	GoVersion   string `json:"go_version"`
	// NumCPU, GOOS, GOARCH and GOMAXPROCS record the machine shape the
	// numbers were measured on; speedup rows are only meaningful relative
	// to them (a 1-CPU runner cannot show parallel wins, and the JSON must
	// say so rather than imply a hardware-independent ratio).
	NumCPU     int           `json:"num_cpu"`
	GOOS       string        `json:"goos"`
	GOARCH     string        `json:"goarch"`
	GOMAXPROCS int           `json:"gomaxprocs"`
	Sweeps     []SweepResult `json:"sweeps"`
	Micro      []MicroResult `json:"micro"`
	// SeedMicro pins the pre-optimization numbers (same benchmarks, same
	// machine class) so the JSON records the reduction, not just the
	// current value.
	SeedMicro []MicroResult `json:"seed_micro"`
}

// NewBaseline returns a Baseline stamped with the Go version and machine
// shape. The caller fills GeneratedAt (wall-clock access stays in cmd/ so
// this package remains usable from simulation code under the repo's
// nondeterm-time lint rule).
func NewBaseline() Baseline {
	return Baseline{
		GoVersion:  runtime.Version(),
		NumCPU:     runtime.NumCPU(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
}

// Micro converts a testing.BenchmarkResult into a named MicroResult.
func Micro(name string, r testing.BenchmarkResult) MicroResult {
	return MicroResult{
		Name:        name,
		NsPerOp:     float64(r.NsPerOp()),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
}

// WriteFile marshals the baseline as indented JSON (trailing newline) to
// path. Nil slices are normalized to empty first so absent sections marshal
// as [] rather than null — consumers of the schema (benchdiff, external
// trackers) get a list either way.
func (b *Baseline) WriteFile(path string) error {
	if b.Sweeps == nil {
		b.Sweeps = []SweepResult{}
	}
	if b.Micro == nil {
		b.Micro = []MicroResult{}
	}
	if b.SeedMicro == nil {
		b.SeedMicro = []MicroResult{}
	}
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	return checkpoint.WriteFileAtomic(path, data, 0o644)
}

// ReadFile parses a BENCH_*.json baseline.
func ReadFile(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, err
	}
	return &b, nil
}
