package experiments

import (
	"context"
	"fmt"
	"math"

	"reaper/internal/dram"
	"reaper/internal/ecc"
	"reaper/internal/longevity"
	"reaper/internal/parallel"
	"reaper/internal/perfmodel"
	"reaper/internal/power"
	"reaper/internal/stats"
	"reaper/internal/sysperf"
	"reaper/internal/workload"
)

// ---------------------------------------------------------------------------
// Table 1: tolerable RBER and tolerable bit-error counts per ECC strength.
// ---------------------------------------------------------------------------

// Table1Row is one ECC strength's budget line.
type Table1Row struct {
	Code          ecc.Code
	TolerableRBER float64
	// TolerableErrors is indexed like Table1Sizes.
	TolerableErrors []float64
}

// Table1Sizes are the paper's capacity columns.
var Table1Sizes = []int64{512 << 20, 1 << 30, 2 << 30, 4 << 30, 8 << 30}

// Table1TolerableRBER evaluates the paper's Table 1 for the given UBER
// target.
func Table1TolerableRBER(targetUBER float64) []Table1Row {
	var rows []Table1Row
	for _, code := range ecc.StandardCodes() {
		r := Table1Row{Code: code, TolerableRBER: code.TolerableRBER(targetUBER)}
		for _, sz := range Table1Sizes {
			r.TolerableErrors = append(r.TolerableErrors, code.TolerableBitErrors(targetUBER, sz))
		}
		rows = append(rows, r)
	}
	return rows
}

// Table1Render renders the rows.
func Table1Render(rows []Table1Row) *Table {
	t := &Table{
		Title:  "Table 1: tolerable RBER and bit errors (UBER 1e-15)",
		Header: []string{"code", "tolerable RBER", "512MB", "1GB", "2GB", "4GB", "8GB"},
		Caption: "paper: 1.0e-15 / 3.8e-9 / 6.9e-7 tolerable RBER; our exact Eq 6 solver " +
			"lands within ~1.5x (see EXPERIMENTS.md)",
	}
	for _, r := range rows {
		cells := []string{r.Code.Name, fmt.Sprintf("%.2e", r.TolerableRBER)}
		for _, e := range r.TolerableErrors {
			cells = append(cells, fmt.Sprintf("%.3g", e))
		}
		t.AddRow(cells...)
	}
	return t
}

// ---------------------------------------------------------------------------
// Figures 11 and 12: profiling time fraction and profiling power across
// online profiling intervals and chip densities.
// ---------------------------------------------------------------------------

// Fig11Row is one (chip size, profiling interval) sample.
type Fig11Row struct {
	ChipGb        int
	IntervalHours float64
	BruteFraction float64
	ReaperFrac    float64
	// Fig12 companions: average DRAM power consumed by the profiling
	// traffic itself.
	BruteProfilingW  float64
	ReaperProfilingW float64
}

// Fig11Config drives the sweep (the paper's Figure 11/12 assumptions:
// 32-chip modules, 16 iterations of 6 data patterns at 1024 ms, REAPER at
// its 2.5x speedup).
type Fig11Config struct {
	ChipGbs        []int
	IntervalHours  []float64
	TREFI          float64
	NumPatterns    int
	NumIterations  int
	ChipsPerModule int
	ReaperSpeedup  float64
}

// DefaultFig11Config mirrors the paper.
func DefaultFig11Config() Fig11Config {
	return Fig11Config{
		ChipGbs:        []int{8, 16, 32, 64},
		IntervalHours:  []float64{1, 2, 4, 8, 16, 32},
		TREFI:          1.024,
		NumPatterns:    6,
		NumIterations:  16,
		ChipsPerModule: 32,
		ReaperSpeedup:  2.5,
	}
}

// Fig11Fig12ProfilingOverhead evaluates both figures analytically.
func Fig11Fig12ProfilingOverhead(cfg Fig11Config) ([]Fig11Row, error) {
	p := power.DefaultParams()
	var rows []Fig11Row
	for _, gb := range cfg.ChipGbs {
		bytes := int64(cfg.ChipsPerModule) * int64(gb) * (1 << 30) / 8
		brute := perfmodel.RoundConfig{
			TREFI: cfg.TREFI, NumPatterns: cfg.NumPatterns,
			NumIterations: cfg.NumIterations, TotalBytes: bytes,
		}
		if err := brute.Validate(); err != nil {
			return nil, err
		}
		reaper := brute
		reaper.SpeedupFactor = cfg.ReaperSpeedup
		cmds := brute.Commands(p.RowBytes)
		for _, h := range cfg.IntervalHours {
			sec := h * 3600
			rows = append(rows, Fig11Row{
				ChipGb:        gb,
				IntervalHours: h,
				BruteFraction: brute.OverheadFraction(sec),
				ReaperFrac:    reaper.OverheadFraction(sec),
				BruteProfilingW: p.AccessWatts(
					cmds.BytesRead, cmds.BytesWritten, cmds.RowActivations, sec),
				// REAPER runs fewer effective passes per round (the 2.5x
				// speedup shortens the round), so its traffic-per-interval
				// shrinks by the same factor.
				ReaperProfilingW: p.AccessWatts(
					cmds.BytesRead, cmds.BytesWritten, cmds.RowActivations, sec) / cfg.ReaperSpeedup,
			})
		}
	}
	return rows, nil
}

// Fig11Table renders the rows.
func Fig11Table(rows []Fig11Row) *Table {
	t := &Table{
		Title:  "Figures 11-12: profiling time fraction and profiling power (32-chip modules)",
		Header: []string{"chip", "interval", "brute frac", "REAPER frac", "brute W", "REAPER W"},
		Caption: "paper anchor: 64Gb @ 4h -> 22.7% brute / 9.1% REAPER; profiling power is " +
			"negligible next to the module's tens of watts",
	}
	for _, r := range rows {
		t.AddRow(fmt.Sprintf("%dGb", r.ChipGb), fmt.Sprintf("%gh", r.IntervalHours),
			Pct(r.BruteFraction), Pct(r.ReaperFrac),
			fmt.Sprintf("%.4f", r.BruteProfilingW), fmt.Sprintf("%.4f", r.ReaperProfilingW))
	}
	return t
}

// ---------------------------------------------------------------------------
// Figure 13: end-to-end system performance and DRAM power across refresh
// intervals, for brute-force profiling, REAPER, and ideal (zero-overhead)
// profiling.
// ---------------------------------------------------------------------------

// CadenceModel selects how the online profiling interval is derived.
type CadenceModel int

const (
	// CadencePaperImplied uses the profiling cadence implied by the
	// overheads the paper reports in Figures 11/13 (a power law in the
	// refresh interval anchored at ~9.4 h @ 1024 ms). The paper's own
	// Section 6.2.3 longevity example implies a much laxer cadence; the
	// two are mutually inconsistent, and this model reproduces the
	// figure. See EXPERIMENTS.md.
	CadencePaperImplied CadenceModel = iota
	// CadenceLongevity derives the cadence from the Equation 7 longevity
	// model with full coverage (the paper's stated best-case assumption).
	CadenceLongevity
)

// PaperImpliedCadenceHours is the online profiling interval the paper's
// reported Figure 13 overheads imply, as a function of the target refresh
// interval (seconds).
func PaperImpliedCadenceHours(tREFI float64) float64 {
	return 9.4 * math.Pow(tREFI/1.024, -3.85)
}

// Fig13Config drives the end-to-end evaluation.
type Fig13Config struct {
	ChipGbs   []int
	Intervals []float64 // target refresh intervals; 0 means no refresh
	// Mixes is the number of random 4-core workload mixes (paper: 20).
	Mixes   int
	PerMix  int
	Cadence CadenceModel
	// InstructionsPerCore bounds each simulation.
	InstructionsPerCore int64
	NumPatterns         int
	NumIterations       int
	ChipsPerModule      int
	ReaperSpeedup       float64
	Vendor              dram.VendorParams
	Seed                uint64

	// Workers bounds the pool simulating workload mixes concurrently; <= 0
	// means one worker per CPU. Each mix simulation is pure, so results are
	// identical at any worker count.
	Workers int
}

// DefaultFig13Config mirrors the paper's setup at bench scale.
func DefaultFig13Config() Fig13Config {
	return Fig13Config{
		ChipGbs:             []int{8, 64},
		Intervals:           []float64{0.128, 0.256, 0.512, 0.768, 1.024, 1.280, 1.536, 0},
		Mixes:               20,
		PerMix:              4,
		Cadence:             CadencePaperImplied,
		InstructionsPerCore: 1_000_000,
		NumPatterns:         6,
		NumIterations:       16,
		ChipsPerModule:      32,
		ReaperSpeedup:       2.5,
		Vendor:              dram.VendorB(),
		Seed:                13,
	}
}

// Fig13Cell is the distribution of a metric across workload mixes for one
// (chip size, interval, mechanism).
type Fig13Cell struct {
	ChipGb    int
	IntervalS float64 // 0 = no refresh
	Mechanism string  // "brute", "reaper", "ideal"
	// PerfGain is the box over mixes of weighted-speedup improvement vs
	// the 64 ms baseline, including profiling overhead.
	PerfGain stats.BoxStats
	// PowerReduction is the box over mixes of DRAM power reduction vs the
	// 64 ms baseline.
	PowerReduction stats.BoxStats
	// OverheadFraction is the profiling time fraction applied.
	OverheadFraction float64
	// CadenceHours is the online profiling interval used.
	CadenceHours float64
}

// Fig13EndToEnd runs the full evaluation: simulate every mix at the
// baseline and at each target interval, apply Equation 8 with each
// mechanism's profiling overhead, and evaluate DRAM power from the measured
// traffic.
func Fig13EndToEnd(ctx context.Context, cfg Fig13Config) ([]Fig13Cell, error) {
	if cfg.Mixes <= 0 || cfg.PerMix <= 0 {
		return nil, fmt.Errorf("experiments: invalid mix config")
	}
	mixes := workload.Mixes(cfg.Mixes, cfg.PerMix, cfg.Seed)
	pp := power.DefaultParams()
	var cells []Fig13Cell

	for _, gb := range cfg.ChipGbs {
		moduleBytes := int64(cfg.ChipsPerModule) * int64(gb) * (1 << 30) / 8

		// Alone-mode IPCs are taken at the 64 ms baseline and used as the
		// fixed denominator for every interval, so the weighted-speedup
		// ratio reflects the actual throughput change (the paper
		// normalizes all results to the 64 ms baseline).
		baseCfg, err := sysperf.DefaultConfig(gb, 0.064)
		if err != nil {
			return nil, err
		}
		baseCfg.InstructionsPerCore = cfg.InstructionsPerCore
		baseCfg.Seed = cfg.Seed
		baseAlone := sysperf.NewAloneIPCCache(baseCfg)

		type simOut struct {
			ws    []float64 // weighted speedup per mix
			power []float64 // average DRAM power per mix (W)
		}
		runAll := func(tREFI float64) (simOut, error) {
			scfg, err := sysperf.DefaultConfig(gb, tREFI)
			if err != nil {
				return simOut{}, err
			}
			scfg.InstructionsPerCore = cfg.InstructionsPerCore
			scfg.Seed = cfg.Seed
			// Mixes are independent pure simulations; fan them out.
			type mixOut struct{ ws, power float64 }
			per, err := parallel.Map(ctx, len(mixes), cfg.Workers,
				func(_ context.Context, i int) (mixOut, error) {
					mix := mixes[i]
					res, err := sysperf.Simulate(mix, scfg)
					if err != nil {
						return mixOut{}, err
					}
					ws, err := sysperf.WeightedSpeedup(res, mix, baseAlone.IPC)
					if err != nil {
						return mixOut{}, err
					}
					// Scale request traffic to the module: the simulator's
					// requests are 64B cache lines.
					dur := res.DurationSec
					rbps := float64(res.Traffic.Reads) * 64 / dur
					wbps := float64(res.Traffic.Writes) * 64 / dur
					aps := float64(res.Traffic.Activations) / dur
					b := pp.SystemPower(moduleBytes, tREFI, rbps, wbps, aps)
					return mixOut{ws: ws, power: b.TotalW()}, nil
				})
			if err != nil {
				return simOut{}, err
			}
			var out simOut
			for _, m := range per {
				out.ws = append(out.ws, m.ws)
				out.power = append(out.power, m.power)
			}
			return out, nil
		}

		base, err := runAll(0.064)
		if err != nil {
			return nil, err
		}

		for _, interval := range cfg.Intervals {
			relaxed, err := runAll(interval)
			if err != nil {
				return nil, err
			}

			// Profiling overheads for this interval (none when refresh is
			// disabled entirely, since "no refresh" is the upper-bound bar
			// the paper draws without profiling).
			overBrute, overReaper, cadence := 0.0, 0.0, math.Inf(1)
			if interval > 0 {
				switch cfg.Cadence {
				case CadenceLongevity:
					m := longevity.Model{
						Code:       ecc.SECDED(),
						TargetUBER: ecc.UBERConsumer,
						Bytes:      moduleBytes,
						Vendor:     cfg.Vendor,
						TempC:      45,
					}
					d, err := m.Longevity(interval, 1.0)
					if err != nil {
						// Coverage cannot keep up: profile continuously.
						cadence = 0
					} else {
						cadence = d.Hours()
					}
				default:
					cadence = PaperImpliedCadenceHours(interval)
				}
				round := perfmodel.RoundConfig{
					TREFI: interval, NumPatterns: cfg.NumPatterns,
					NumIterations: cfg.NumIterations, TotalBytes: moduleBytes,
				}
				overBrute = round.OverheadFraction(cadence * 3600)
				round.SpeedupFactor = cfg.ReaperSpeedup
				overReaper = round.OverheadFraction(cadence * 3600)
			}

			mech := []struct {
				name string
				over float64
			}{
				{"brute", overBrute},
				{"reaper", overReaper},
				{"ideal", 0},
			}
			for _, m := range mech {
				var gains, reductions []float64
				for i := range mixes {
					idealGain := relaxed.ws[i] / base.ws[i]
					gains = append(gains, perfmodel.RealIPC(idealGain, m.over)-1)
					reductions = append(reductions, 1-relaxed.power[i]/base.power[i])
				}
				cells = append(cells, Fig13Cell{
					ChipGb:           gb,
					IntervalS:        interval,
					Mechanism:        m.name,
					PerfGain:         stats.Box(gains),
					PowerReduction:   stats.Box(reductions),
					OverheadFraction: m.over,
					CadenceHours:     cadence,
				})
			}
		}
	}
	return cells, nil
}

// Fig13Table renders the cells.
func Fig13Table(cells []Fig13Cell) *Table {
	t := &Table{
		Title: "Figure 13: end-to-end performance gain and DRAM power reduction vs 64ms baseline",
		Header: []string{"chip", "tREFI", "mech", "perf mean", "perf max", "power mean",
			"overhead", "cadence"},
		Caption: "paper (64Gb): REAPER best point 512ms (+16.3% avg); at 1024ms REAPER +13.5% " +
			"vs brute +7.5%; at 1280ms brute goes negative (-5.4%) while REAPER stays +8.6%",
	}
	for _, c := range cells {
		interval := "no-ref"
		if c.IntervalS > 0 {
			interval = Ms(c.IntervalS)
		}
		cadence := "-"
		if !math.IsInf(c.CadenceHours, 1) && c.IntervalS > 0 {
			cadence = fmt.Sprintf("%.1fh", c.CadenceHours)
		}
		t.AddRow(fmt.Sprintf("%dGb", c.ChipGb), interval, c.Mechanism,
			Pct(c.PerfGain.Mean), Pct(c.PerfGain.Max),
			Pct(c.PowerReduction.Mean), Pct(c.OverheadFraction), cadence)
	}
	return t
}

// FindCell locates a cell in a Fig13 result set.
func FindCell(cells []Fig13Cell, gb int, interval float64, mech string) (Fig13Cell, bool) {
	for _, c := range cells {
		if c.ChipGb == gb && c.IntervalS == interval && c.Mechanism == mech {
			return c, true
		}
	}
	return Fig13Cell{}, false
}
