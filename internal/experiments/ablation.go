package experiments

import (
	"context"

	"reaper/internal/core"
	"reaper/internal/parallel"
	"reaper/internal/patterns"
)

// Ablation experiments: rebuild the chip with one retention phenomenon
// removed and show which of the paper's design conclusions it is
// responsible for. These go beyond the paper's own evaluation (DESIGN.md
// section 5) but directly test its causal claims.

// VRTAblationResult contrasts failure accumulation with and without VRT.
type VRTAblationResult struct {
	// NewCellsPerHourWithVRT / WithoutVRT are steady-state accumulation
	// rates after the base population is discovered.
	NewCellsPerHourWithVRT    float64
	NewCellsPerHourWithoutVRT float64
}

// AblationVRT measures post-discovery failure accumulation on a chip with
// VRT and on an identical chip without it. To separate genuine *new*
// failures from the long discovery tail of the base population, the base
// population is first exhausted with an aggressive reach profile (+1 s, 20
// iterations); accumulation is then counted against that baseline over
// simHours of periodic testing. Without VRT the failing population is
// finite and accumulation collapses — one-time offline profiling would
// suffice; with VRT it never does (Corollary 2: online profiling is
// required *because of* VRT).
func AblationVRT(ctx context.Context, chip ChipSpec, intervalS float64, iterations int, simHours float64) (*VRTAblationResult, error) {
	run := func(disable bool) (float64, error) {
		c := chip
		c.DisableVRT = disable
		st, err := c.NewStation()
		if err != nil {
			return 0, err
		}
		// Exhaust the base population.
		seen, err := core.Reach(st, intervalS, core.ReachConditions{DeltaInterval: 1.0},
			core.Options{Iterations: 20, FreshRandomPerIteration: true, Seed: c.Seed})
		if err != nil {
			return 0, err
		}
		known := seen.Failures.Clone()
		// Periodic testing over simHours; count arrivals beyond the
		// exhausted baseline.
		gap := simHours * 3600 / float64(iterations)
		start := st.Clock()
		newCells := 0
		for it := 0; it < iterations; it++ {
			r, err := core.BruteForce(st, intervalS, core.Options{
				Iterations:              1,
				FreshRandomPerIteration: true,
				Seed:                    uint64(it) * 7919,
			})
			if err != nil {
				return 0, err
			}
			for _, b := range r.Failures.Sorted() {
				if known.Add(b) {
					newCells++
				}
			}
			if idle := gap - r.RuntimeSeconds(); idle > 0 {
				st.Wait(idle)
			}
		}
		hours := (st.Clock() - start) / 3600
		return float64(newCells) / hours, nil
	}
	// The two arms build independent chips; run them as parallel thunks.
	var with, without float64
	err := parallel.Do(ctx, 0,
		func(context.Context) error { var e error; with, e = run(false); return e },
		func(context.Context) error { var e error; without, e = run(true); return e },
	)
	if err != nil {
		return nil, err
	}
	return &VRTAblationResult{
		NewCellsPerHourWithVRT:    with,
		NewCellsPerHourWithoutVRT: without,
	}, nil
}

// DPDAblationResult contrasts single-pattern coverage with and without data
// pattern dependence.
type DPDAblationResult struct {
	// SinglePatternCoverageWithDPD / WithoutDPD are the coverages achieved
	// by testing only one pattern pair (solid 0s/1s), scored against the
	// multi-pattern ground truth.
	SinglePatternCoverageWithDPD    float64
	SinglePatternCoverageWithoutDPD float64
}

// AblationDPD profiles with a single pattern pair on a chip with DPD and on
// an identical chip without it. Without DPD one pattern pair suffices; with
// DPD it cannot reach the worst-case-pattern population (Corollary 3:
// multiple data patterns are required *because of* DPD).
func AblationDPD(ctx context.Context, chip ChipSpec, intervalS float64, iterations int) (*DPDAblationResult, error) {
	run := func(disable bool) (float64, error) {
		c := chip
		c.DisableDPD = disable
		c.DisableVRT = true // isolate the DPD effect
		st, err := c.NewStation()
		if err != nil {
			return 0, err
		}
		truth := core.Truth(st, intervalS, 45)
		// Profile slightly above target so per-read probabilities are
		// high and the remaining gap is purely pattern coverage.
		res, err := core.Reach(st, intervalS, core.ReachConditions{DeltaInterval: 0.25}, core.Options{
			Patterns:   []patterns.Pattern{patterns.Solid0(), patterns.Solid1()},
			Iterations: iterations,
		})
		if err != nil {
			return 0, err
		}
		return core.Coverage(res.Failures, truth), nil
	}
	var with, without float64
	err := parallel.Do(ctx, 0,
		func(context.Context) error { var e error; with, e = run(false); return e },
		func(context.Context) error { var e error; without, e = run(true); return e },
	)
	if err != nil {
		return nil, err
	}
	return &DPDAblationResult{
		SinglePatternCoverageWithDPD:    with,
		SinglePatternCoverageWithoutDPD: without,
	}, nil
}

// KnobPoint is one reach-knob measurement.
type KnobPoint struct {
	Reach    core.ReachConditions
	Coverage float64
	FPR      float64
}

// KnobAblationResult compares the two reach knobs at matched aggressiveness.
type KnobAblationResult struct {
	IntervalOnly KnobPoint // +Δt, +0°C
	TempOnly     KnobPoint // +0s, +ΔT
	Combined     KnobPoint // +Δt/2, +ΔT/2
}

// AblationReachKnobs measures interval-only, temperature-only, and combined
// reach at roughly equivalent strengths (using the paper's ~1s-per-10°C
// equivalence at these conditions), demonstrating Section 5.5's claim that
// the two knobs are interchangeable. All three are scored against the
// oracle truth at the target conditions on identically seeded chips.
func AblationReachKnobs(ctx context.Context, chip ChipSpec, target, deltaInterval, deltaTemp float64, iterations int) (*KnobAblationResult, error) {
	measure := func(reach core.ReachConditions) (KnobPoint, error) {
		st, err := chip.NewStation()
		if err != nil {
			return KnobPoint{}, err
		}
		truth := core.Truth(st, target, 45)
		res, err := core.Reach(st, target, reach, core.Options{
			Iterations:              iterations,
			FreshRandomPerIteration: true,
			Seed:                    chip.Seed,
		})
		if err != nil {
			return KnobPoint{}, err
		}
		return KnobPoint{
			Reach:    reach,
			Coverage: core.Coverage(res.Failures, truth),
			FPR:      core.FalsePositiveRate(res.Failures, truth),
		}, nil
	}
	// The three knob settings profile independent identically-seeded chips.
	points, err := parallel.Map(ctx, 3, 0,
		func(_ context.Context, i int) (KnobPoint, error) {
			switch i {
			case 0:
				return measure(core.ReachConditions{DeltaInterval: deltaInterval})
			case 1:
				return measure(core.ReachConditions{DeltaTempC: deltaTemp})
			default:
				return measure(core.ReachConditions{
					DeltaInterval: deltaInterval / 2,
					DeltaTempC:    deltaTemp / 2,
				})
			}
		})
	if err != nil {
		return nil, err
	}
	return &KnobAblationResult{
		IntervalOnly: points[0],
		TempOnly:     points[1],
		Combined:     points[2],
	}, nil
}
