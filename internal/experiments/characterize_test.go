package experiments

import (
	"context"
	"math"
	"strings"
	"testing"

	"reaper/internal/dram"
)

func smallChip(seed uint64) ChipSpec {
	c := DefaultChipSpec(seed)
	c.Bits = 16 << 20
	c.WeakScale = 30
	return c
}

func TestFig2ShapesMatchPaper(t *testing.T) {
	cfg := DefaultFig2Config()
	cfg.Iterations = 3
	cfg.Chip = func(v dram.VendorParams, seed uint64) ChipSpec {
		c := smallChip(seed)
		c.Vendor = v
		return c
	}
	rows, err := Fig2RetentionDistribution(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3*len(cfg.Intervals) {
		t.Fatalf("got %d rows", len(rows))
	}
	vendors := map[string]bool{}
	for _, r := range rows {
		vendors[r.Vendor] = true
	}
	if len(vendors) != 3 {
		t.Errorf("expected 3 vendors, got %v", vendors)
	}
	// BER must grow monotonically with interval for each vendor.
	perVendor := map[string][]Fig2Row{}
	for _, r := range rows {
		perVendor[r.Vendor] = append(perVendor[r.Vendor], r)
	}
	for v, rs := range perVendor {
		for i := 1; i < len(rs); i++ {
			if rs[i].BER < rs[i-1].BER {
				t.Errorf("vendor %s: BER fell from %v to %v at %v",
					v, rs[i-1].BER, rs[i].BER, rs[i].IntervalS)
			}
		}
		// Observation 1: cells observed at lower intervals overwhelmingly
		// fail again at the top interval — repeats dominate non-repeats.
		last := rs[len(rs)-1]
		lowerSet := last.Repeat + last.NonRepeat
		if lowerSet == 0 {
			t.Fatalf("vendor %s: empty lower-interval population", v)
		}
		if frac := float64(last.Repeat) / float64(lowerSet); frac < 0.8 {
			t.Errorf("vendor %s: only %v of lower-interval cells repeat at %v; Observation 1 violated",
				v, frac, last.IntervalS)
		}
		// Model BER at 1024ms must be near the vendor's calibration.
		for _, r := range rs {
			if r.IntervalS == 1.024 {
				want := dram.VendorB().BERAt1024ms
				if v == "A" {
					want = dram.VendorA().BERAt1024ms
				}
				if v == "C" {
					want = dram.VendorC().BERAt1024ms
				}
				if r.BER < want/4 || r.BER > want*2 {
					t.Errorf("vendor %s BER@1024ms = %v, calibration %v", v, r.BER, want)
				}
			}
		}
	}
	// Table renders.
	var sb strings.Builder
	Fig2Table(rows).Render(&sb)
	if !strings.Contains(sb.String(), "Figure 2") {
		t.Error("table did not render")
	}
}

func TestFig3VRTAccumulation(t *testing.T) {
	cfg := Fig3Config{
		Chip:          ChipSpec{Bits: 16 << 20, WeakScale: 100, Vendor: dram.VendorB(), Seed: 31},
		IntervalS:     2.048,
		Iterations:    60,
		TotalSimHours: 36,
	}
	res, err := Fig3VRTAccumulation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != cfg.Iterations {
		t.Fatalf("got %d points", len(res.Points))
	}
	// Cumulative must be non-decreasing and keep growing in the second
	// half (Observation 2: the failing population never stops changing).
	half := res.Points[len(res.Points)/2]
	last := res.Points[len(res.Points)-1]
	if last.Cumulative <= half.Cumulative {
		t.Errorf("no new failures in the second half: %d -> %d",
			half.Cumulative, last.Cumulative)
	}
	if res.SteadyStateCellsPerHour <= 0 {
		t.Errorf("steady-state rate = %v, want > 0", res.SteadyStateCellsPerHour)
	}
	// The failures-per-iteration total stays roughly constant (the rate
	// of cells entering the failing set matches the rate leaving it).
	if res.PerIterationMean <= 0 {
		t.Error("per-iteration mean should be positive")
	}
	for i := 1; i < len(res.Points); i++ {
		if res.Points[i].Cumulative < res.Points[i-1].Cumulative {
			t.Fatal("cumulative count decreased")
		}
		if res.Points[i].SimHours <= res.Points[i-1].SimHours {
			t.Fatal("sim time not advancing")
		}
	}
	if _, err := Fig3VRTAccumulation(Fig3Config{Chip: cfg.Chip, IntervalS: 1, Iterations: 2}); err == nil {
		t.Error("too-few iterations not rejected")
	}
}

func TestFig4RatesGrowPolynomially(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-vendor accumulation sweep is slow")
	}
	cfg := Fig4Config{
		Intervals:  []float64{2.048, 4.096},
		Iterations: 30,
		SimHours:   36,
		Seed:       41,
		ChipBits:   8 << 20,
		WeakScale:  150,
	}
	rows, err := Fig4AccumulationRates(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d vendor rows", len(rows))
	}
	for _, r := range rows {
		if len(r.RatesPerHour) != 2 {
			t.Fatalf("vendor %s: %d rates", r.Vendor, len(r.RatesPerHour))
		}
		if r.RatesPerHour[1] <= r.RatesPerHour[0] {
			t.Errorf("vendor %s: rate did not grow with interval: %v",
				r.Vendor, r.RatesPerHour)
		}
		// Polynomial growth: the measured exponent should be well above
		// linear (the calibrated exponents are 3.6-4.2).
		if r.Fit.B < 1.5 {
			t.Errorf("vendor %s: fit exponent %v, want super-linear", r.Vendor, r.Fit.B)
		}
	}
	var sb strings.Builder
	Fig4Table(rows).Render(&sb)
	if !strings.Contains(sb.String(), "Figure 4") {
		t.Error("table did not render")
	}
}

func TestFig5RandomPatternWins(t *testing.T) {
	cfg := Fig5Config{
		IntervalS:  2.048,
		Iterations: 24,
		Seed:       51,
		Vendors:    []dram.VendorParams{dram.VendorB()},
		ChipBits:   16 << 20,
		WeakScale:  30,
	}
	rows, err := Fig5PatternCoverage(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("got %d rows, want 6 pattern families", len(rows))
	}
	var random, best Fig5Row
	for _, r := range rows {
		if r.Coverage < 0 || r.Coverage > 1 {
			t.Errorf("coverage out of range: %+v", r)
		}
		if r.Found > r.Total {
			t.Errorf("found > total: %+v", r)
		}
		if r.Pattern == "random" {
			random = r
		}
		if r.Coverage > best.Coverage {
			best = r
		}
	}
	// Observation 3: random leads but does not reach 100%.
	if best.Pattern != "random" {
		t.Errorf("best pattern = %s (%.3f), want random (%.3f)",
			best.Pattern, best.Coverage, random.Coverage)
	}
	if random.Coverage >= 1 {
		t.Error("random pattern should not reach full coverage alone")
	}
	if !Fig5RandomWins(rows) {
		t.Error("Fig5RandomWins disagrees with manual check")
	}
	var sb strings.Builder
	Fig5Table(rows).Render(&sb)
	if !strings.Contains(sb.String(), "Figure 5") {
		t.Error("table did not render")
	}
}

func TestFig5RandomWinsEmpty(t *testing.T) {
	if Fig5RandomWins(nil) {
		t.Error("empty rows should not claim a random win")
	}
}

func TestFig6NormalCDFsAndLognormalSigmas(t *testing.T) {
	cfg := DefaultFig6Config()
	cfg.Chip.Bits = 16 << 20
	cfg.Chip.WeakScale = 30
	cfg.SampleCells = 12
	cfg.TrialsPerPoint = 16
	cfg.PointsPerCell = 5
	res, err := Fig6CellCDFs(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.CellsMeasured < 8 {
		t.Fatalf("only %d cells measured", res.CellsMeasured)
	}
	// Measured failure fractions track the normal CDF within binomial
	// noise (16 trials -> ~0.125 standard error).
	if res.MedianKS > 0.3 {
		t.Errorf("median deviation from normal CDF = %v, too large", res.MedianKS)
	}
	// Figure 6b: sigma population is lognormal with most cells under
	// 200 ms.
	if res.FracSigmaBelow200ms < 0.5 {
		t.Errorf("only %v of sigmas below 200ms; paper says the majority",
			res.FracSigmaBelow200ms)
	}
	if res.SigmaLogSigma <= 0 {
		t.Error("lognormal sigma fit degenerate")
	}
	// The fitted lognormal median should be near the calibrated one
	// (80 ms at 45C, scaled to 40C).
	median := math.Exp(res.SigmaLogMu)
	if median < 0.04 || median > 0.3 {
		t.Errorf("sigma median = %v s, want ~0.1", median)
	}
}

func TestFig7DistributionsShiftLeftWithTemperature(t *testing.T) {
	rows, err := Fig7TemperatureShift(smallChip(71), []float64{40, 45, 50, 55})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].MedianMuS >= rows[i-1].MedianMuS {
			t.Errorf("median mu did not shift left: %v", rows)
		}
		if rows[i].MedianSigma >= rows[i-1].MedianSigma {
			t.Errorf("median sigma did not narrow: %v", rows)
		}
	}
}

func TestFig8TemperatureIntervalEquivalence(t *testing.T) {
	res, err := Fig8CombinedDistribution(smallChip(81),
		[]float64{40, 45, 50, 55}, []float64{0.512, 1.024, 2.048, 4.096})
	if err != nil {
		t.Fatal(err)
	}
	// Mean failure probability must increase along both axes.
	for ti := range res.Temps {
		for ii := 1; ii < len(res.Intervals); ii++ {
			if res.MeanFailProb[ti][ii] < res.MeanFailProb[ti][ii-1] {
				t.Errorf("prob not increasing in interval at temp %v", res.Temps[ti])
			}
		}
	}
	for ii := range res.Intervals {
		for ti := 1; ti < len(res.Temps); ti++ {
			if res.MeanFailProb[ti][ii] < res.MeanFailProb[ti-1][ii] {
				t.Errorf("prob not increasing in temperature at interval %v", res.Intervals[ii])
			}
		}
	}
	// The paper: at 45°C, ~1 s of interval is equivalent to ~10°C.
	if res.EquivalentDeltaIntervalPer10C < 0.3 || res.EquivalentDeltaIntervalPer10C > 3 {
		t.Errorf("+10°C equivalent interval delta = %v s, want ~1 s",
			res.EquivalentDeltaIntervalPer10C)
	}
}
