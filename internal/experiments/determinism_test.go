package experiments

import (
	"context"
	"reflect"
	"testing"
)

// Determinism regression tests: the headline guarantee of the parallel
// fleet engine is that results are byte-identical to sequential execution
// at any worker count. These tests run the two flagship fleet sweeps
// (PopulationSweep and the Fig 9/10 tradeoff grid) at workers=1 and
// workers=8 and require deep-equal results. They also run under
// `go test -race`, exercising the pool paths for data races.

func TestPopulationSweepDeterministic(t *testing.T) {
	cfg := DefaultPopulationConfig()
	cfg.ChipsPerVendor = 3
	cfg.ChipBits = 8 << 20

	cfg.Workers = 1
	seq, err := PopulationSweep(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 8
	par, err := PopulationSweep(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("population sweep differs between workers=1 and workers=8:\nseq: %+v\npar: %+v", seq, par)
	}
}

func TestTradeoffGridDeterministic(t *testing.T) {
	cfg := DefaultFig9Config()
	cfg.Chip.Bits = 8 << 20
	cfg.DeltaIntervals = []float64{0, 0.25, 0.5}
	cfg.DeltaTemps = []float64{0, 5}
	cfg.Iterations = 4
	cfg.MaxIterations = 8

	cfg.Workers = 1
	seq, err := Fig9Fig10Tradeoff(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 8
	par, err := Fig9Fig10Tradeoff(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("tradeoff grid differs between workers=1 and workers=8:\nseq: %+v\npar: %+v", seq, par)
	}
}

// TestFig13Deterministic covers the shared-cache case: parallel mixes
// share an AloneIPCCache, which must not make results order-dependent.
func TestFig13Deterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := DefaultFig13Config()
	cfg.ChipGbs = []int{8}
	cfg.Intervals = []float64{0.512, 1.024}
	cfg.Mixes = 4
	cfg.InstructionsPerCore = 50_000

	cfg.Workers = 1
	seq, err := Fig13EndToEnd(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 8
	par, err := Fig13EndToEnd(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("fig13 differs between workers=1 and workers=8:\nseq: %+v\npar: %+v", seq, par)
	}
}
