package experiments

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"

	"reaper/internal/telemetry"
)

// telemetrySoak runs the pinned telemetry campaign (seed 1, two chips, one
// simulated day) with a fresh registry and returns the report.
func telemetrySoak(t *testing.T, workers int) *SoakReport {
	t.Helper()
	cfg := DefaultSoakConfig(1)
	cfg.Chips = 2
	cfg.Hours = 24
	cfg.Workers = workers
	cfg.Telemetry = telemetry.New()
	rep, err := Soak(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// snapshotJSON serializes a report's embedded telemetry snapshot.
func snapshotJSON(t *testing.T, rep *SoakReport) []byte {
	t.Helper()
	if rep.Telemetry == nil {
		t.Fatal("instrumented soak produced no telemetry snapshot")
	}
	var buf bytes.Buffer
	if err := rep.Telemetry.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestSoakTelemetryDeterministicAcrossWorkers is the tentpole's determinism
// guarantee: the metrics snapshot and the merged trace timeline of an
// instrumented soak are byte-identical between sequential and 8-way
// concurrent execution, and the snapshot is pinned against a golden file so
// any drift in the registered series shows up as a diff. Regenerate
// intentionally with: go test ./internal/experiments/ -run Telemetry -update
func TestSoakTelemetryDeterministicAcrossWorkers(t *testing.T) {
	seq := telemetrySoak(t, 1)
	par := telemetrySoak(t, 8)

	seqSnap, parSnap := snapshotJSON(t, seq), snapshotJSON(t, par)
	if !bytes.Equal(seqSnap, parSnap) {
		t.Fatalf("telemetry snapshot differs between workers=1 and workers=8:\n--- workers=1\n%s\n--- workers=8\n%s",
			seqSnap, parSnap)
	}

	var seqTrace, parTrace bytes.Buffer
	if err := telemetry.WriteJSONL(&seqTrace, seq.TraceEvents); err != nil {
		t.Fatal(err)
	}
	if err := telemetry.WriteJSONL(&parTrace, par.TraceEvents); err != nil {
		t.Fatal(err)
	}
	if seqTrace.String() != parTrace.String() {
		t.Fatal("merged trace timeline differs between workers=1 and workers=8")
	}
	if len(seq.TraceEvents) == 0 {
		t.Fatal("instrumented soak emitted no trace events")
	}

	golden := filepath.Join("testdata", "soak_telemetry_seed1.json")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, seqSnap, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", golden)
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if !bytes.Equal(seqSnap, want) {
		t.Fatalf("telemetry snapshot drifted from golden %s (regenerate with -update if intentional):\n%s",
			golden, seqSnap)
	}
}

// TestSoakUninstrumentedReportUnchanged pins the opt-in contract: with no
// registry configured the report carries no telemetry section at all, so
// pre-existing golden reports stay byte-identical.
func TestSoakUninstrumentedReportUnchanged(t *testing.T) {
	cfg := DefaultSoakConfig(1)
	cfg.Chips = 1
	cfg.Hours = 6
	rep, err := Soak(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Telemetry != nil || rep.TraceEvents != nil {
		t.Fatal("uninstrumented soak emitted telemetry")
	}
}
