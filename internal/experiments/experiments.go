// Package experiments implements one reproducible harness per table and
// figure of the paper's evaluation. Each Fig*/Table* function builds the
// workloads, runs the sweep on the simulated substrate, and returns a
// structured result that renders as the same rows/series the paper reports;
// cmd/characterize, cmd/tradeoff, cmd/endtoend, and the repository's
// benchmark suite are thin wrappers around these functions.
//
// Scale note: the characterization experiments run on scale-model chips
// (tens of Mbit with amplified weak-cell density) so that a full sweep
// finishes in seconds; all reported rates are normalized back through the
// amplification factor. EXPERIMENTS.md records, for every experiment, the
// paper's numbers next to the numbers these harnesses produce.
package experiments

import (
	"fmt"
	"io"
	"strings"

	"reaper/internal/dram"
	"reaper/internal/memctrl"
	"reaper/internal/thermal"
)

// ChipSpec configures the scale-model chips experiments run on.
type ChipSpec struct {
	// Bits is the chip capacity; WeakScale amplifies weak-cell density.
	Bits      int64
	WeakScale float64
	Vendor    dram.VendorParams
	Seed      uint64
	// Chamber couples the station to the simulated thermal chamber.
	Chamber bool
	// DisableVRT/DisableDPD build ablated chips.
	DisableVRT bool
	DisableDPD bool
}

// DefaultChipSpec is the standard scale-model chip: 64 Mbit with 20x
// weak-cell amplification, vendor B (the paper's representative vendor).
func DefaultChipSpec(seed uint64) ChipSpec {
	return ChipSpec{
		Bits:      64 << 20,
		WeakScale: 20,
		Vendor:    dram.VendorB(),
		Seed:      seed,
	}
}

// withDefaults resolves the zero-value conveniences to the standard
// scale-model chip parameters.
func (c ChipSpec) withDefaults() ChipSpec {
	if c.Bits == 0 {
		c.Bits = 64 << 20
	}
	if c.WeakScale == 0 {
		c.WeakScale = 20
	}
	if c.Vendor.Name == "" {
		c.Vendor = dram.VendorB()
	}
	return c
}

// Ref returns the compact seed-derived handle for this spec's device. The
// ref — not a live *dram.Device — is the unit of fleet state: a sweep over
// a million chips holds a million refs (a few words each) and materializes
// only the shard currently being swept.
func (c ChipSpec) Ref() (dram.ChipRef, error) {
	c = c.withDefaults()
	return dram.NewChipRef(dram.Config{
		Geometry:   dram.GeometryForBits(c.Bits),
		Vendor:     c.Vendor,
		Seed:       c.Seed,
		WeakScale:  c.WeakScale,
		DisableVRT: c.DisableVRT,
		DisableDPD: c.DisableDPD,
	})
}

// NewStation builds the station for a spec by materializing its ref.
func (c ChipSpec) NewStation() (*memctrl.Station, error) {
	c = c.withDefaults()
	ref, err := c.Ref()
	if err != nil {
		return nil, err
	}
	dev, err := ref.Materialize()
	if err != nil {
		return nil, err
	}
	var chamber *thermal.Chamber
	if c.Chamber {
		cfg := thermal.DefaultChamberConfig()
		cfg.Seed = c.Seed ^ 0x7EA8
		chamber, err = thermal.NewChamber(cfg)
		if err != nil {
			return nil, err
		}
		chamber.SettleTo(dram.RefTempC, 0.25, 7200)
	}
	return memctrl.NewStation(dev, chamber, memctrl.DefaultTiming())
}

// EffectiveBER converts a raw failing-cell count on a scale-model chip back
// to the bit error rate of an unamplified device.
func (c ChipSpec) EffectiveBER(cells int) float64 {
	scale := c.WeakScale
	if scale == 0 {
		scale = 1
	}
	return float64(cells) / (float64(c.Bits) * scale)
}

// Table is a small text-table builder shared by the experiment harnesses.
type Table struct {
	Title   string
	Header  []string
	Rows    [][]string
	Caption string
}

// AddRow appends formatted cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "== %s ==\n", t.Title)
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(t.Header)
	for _, row := range t.Rows {
		line(row)
	}
	if t.Caption != "" {
		fmt.Fprintf(w, "  -- %s\n", t.Caption)
	}
	fmt.Fprintln(w)
}

// F formats a float compactly for table cells.
func F(v float64) string { return fmt.Sprintf("%.4g", v) }

// Pct formats a fraction as a percentage.
func Pct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }

// Ms formats seconds as milliseconds.
func Ms(sec float64) string { return fmt.Sprintf("%.0fms", sec*1000) }
