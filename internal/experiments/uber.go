package experiments

import (
	"cmp"
	"fmt"
	"slices"

	"reaper/internal/dram"
	"reaper/internal/patterns"
)

// UBER model validation: the paper's Equation 5 rests on the assumption
// that retention failures within an ECC word are independent, so the
// probability of a multi-bit word error is the product form
// P(all of the word's weak cells fail) given per-cell probabilities. This
// experiment validates that assumption *empirically inside the model*: it
// finds words containing two or more true failing cells, predicts the
// multi-bit-failure probability per test round from the per-cell worst-case
// probabilities, and compares against the measured frequency over many
// rounds. Agreement means Equation 6's arithmetic transfers to the device
// the profilers actually run against.

// UBERValidationResult reports predicted vs measured multi-bit rates.
type UBERValidationResult struct {
	WordsTested     int
	Rounds          int
	PredictedPerRnd float64 // expected multi-bit word failures per round
	MeasuredPerRnd  float64 // observed multi-bit word failures per round
	Ratio           float64 // measured / predicted
}

// UBERValidationConfig drives the experiment.
type UBERValidationConfig struct {
	Chip      ChipSpec
	IntervalS float64
	Rounds    int
	MaxWords  int
}

// DefaultUBERValidationConfig uses a long interval so multi-cell words have
// measurable joint failure probability.
func DefaultUBERValidationConfig() UBERValidationConfig {
	chip := DefaultChipSpec(77)
	chip.Bits = 16 << 20
	chip.WeakScale = 60
	chip.DisableVRT = true // keep per-round probabilities stationary
	return UBERValidationConfig{
		Chip:      chip,
		IntervalS: 3.0,
		Rounds:    300,
		MaxWords:  200,
	}
}

// UBERValidation runs the experiment.
func UBERValidation(cfg UBERValidationConfig) (*UBERValidationResult, error) {
	st, err := cfg.Chip.NewStation()
	if err != nil {
		return nil, err
	}
	dev := st.Device()
	geom := dev.Geometry()

	// Collect words with >= 2 charged-high weak cells, with each cell's
	// worst-case single-read failure probability at the test interval.
	type wordInfo struct {
		row        uint32
		word       int
		bits       []int // bit positions within the word
		cellProbs  []float64
		multiProb  float64 // P(>= 2 of the word's cells fail in one round)
		globalBits []uint64
	}
	cellsByWord := map[[2]uint64][]dram.CellInfo{}
	for _, c := range dev.Cells(st.Clock()) {
		if c.ChargedVal != 1 {
			continue
		}
		a := geom.AddrOf(c.Bit)
		key := [2]uint64{uint64(geom.GlobalRow(a.Bank, a.Row)), uint64(a.Word)}
		cellsByWord[key] = append(cellsByWord[key], c)
	}
	// Iterate words in sorted key order: map order is randomized, and with
	// the MaxWords cut below a random order would make the selected word set
	// (and the whole experiment) nondeterministic run to run.
	keys := make([][2]uint64, 0, len(cellsByWord))
	for key := range cellsByWord {
		keys = append(keys, key)
	}
	slices.SortFunc(keys, func(a, b [2]uint64) int {
		if c := cmp.Compare(a[0], b[0]); c != 0 {
			return c
		}
		return cmp.Compare(a[1], b[1])
	})
	var words []wordInfo
	for _, key := range keys {
		cells := cellsByWord[key]
		if len(cells) < 2 {
			continue
		}
		w := wordInfo{row: uint32(key[0]), word: int(key[1])}
		for _, c := range cells {
			p := dev.CellFailProb(c.Bit, cfg.IntervalS, 45, st.Clock())
			a := geom.AddrOf(c.Bit)
			w.bits = append(w.bits, a.Bit)
			w.cellProbs = append(w.cellProbs, p)
			w.globalBits = append(w.globalBits, c.Bit)
		}
		// P(>= 2 failures) under independence: 1 - P(0) - P(exactly 1).
		p0 := 1.0
		for _, p := range w.cellProbs {
			p0 *= 1 - p
		}
		p1 := 0.0
		for i, pi := range w.cellProbs {
			term := pi
			for j, pj := range w.cellProbs {
				if j != i {
					term *= 1 - pj
				}
			}
			p1 += term
		}
		w.multiProb = 1 - p0 - p1
		if w.multiProb > 1e-6 {
			words = append(words, w)
		}
		if len(words) >= cfg.MaxWords {
			break
		}
	}
	if len(words) == 0 {
		return nil, fmt.Errorf("experiments: no multi-cell words with measurable joint probability")
	}

	predicted := 0.0
	for _, w := range words {
		predicted += w.multiProb
	}

	// Measure: repeated solid-1 write / wait / read rounds; count rounds
	// in which >= 2 of a word's cells failed together. The worst-case
	// probability is an upper bound under arbitrary data; solid-1 with
	// solid neighbourhoods is one fixed context, so we compare against
	// per-cell probabilities measured in the same context by tallying
	// per-cell rates too and re-predicting from them.
	cellFailCount := map[uint64]int{}
	measuredMulti := 0
	for round := 0; round < cfg.Rounds; round++ {
		st.WritePattern(patterns.Solid1())
		st.DisableRefresh()
		st.Wait(cfg.IntervalS)
		st.EnableRefresh()
		failed := map[uint64]bool{}
		for _, b := range st.ReadCompare() {
			failed[b] = true
		}
		for _, w := range words {
			n := 0
			for _, g := range w.globalBits {
				if failed[g] {
					n++
					cellFailCount[g]++
				}
			}
			if n >= 2 {
				measuredMulti++
			}
		}
	}

	// Re-predict from the *measured* per-cell rates (removing the
	// worst-case-context gap) and compare joint behaviour.
	repredicted := 0.0
	for _, w := range words {
		p0, p1 := 1.0, 0.0
		var ps []float64
		for _, g := range w.globalBits {
			ps = append(ps, float64(cellFailCount[g])/float64(cfg.Rounds))
		}
		for _, p := range ps {
			p0 *= 1 - p
		}
		for i, pi := range ps {
			term := pi
			for j, pj := range ps {
				if j != i {
					term *= 1 - pj
				}
			}
			p1 += term
		}
		repredicted += 1 - p0 - p1
	}

	res := &UBERValidationResult{
		WordsTested:     len(words),
		Rounds:          cfg.Rounds,
		PredictedPerRnd: repredicted,
		MeasuredPerRnd:  float64(measuredMulti) / float64(cfg.Rounds),
	}
	if res.PredictedPerRnd > 0 {
		res.Ratio = res.MeasuredPerRnd / res.PredictedPerRnd
	}
	return res, nil
}
