package experiments

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"reaper/internal/checkpoint"
	"reaper/internal/faultinject"
	"reaper/internal/parallel"
	"reaper/internal/telemetry"
)

// ckTestConfig is the reduced campaign the checkpoint tests run: two chips,
// one simulated day, so a segment of 6 windows gives several barriers.
func ckTestConfig(seed uint64, instrumented bool) SoakConfig {
	cfg := DefaultSoakConfig(seed)
	cfg.Chips = 2
	cfg.Hours = 24
	if instrumented {
		cfg.Telemetry = telemetry.New()
	}
	return cfg
}

func reportJSON(t *testing.T, rep *SoakReport) string {
	t.Helper()
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// noSleep is the retry policy used by tests: tolerate failures without
// real backoff delays.
func tolerant(attempts int) parallel.RetryPolicy {
	return parallel.RetryPolicy{Attempts: attempts, Sleep: func(time.Duration) {}}
}

// TestSoakCheckpointMatchesPlainCampaign proves segmentation alone changes
// nothing: an uninstrumented checkpointed campaign produces a report
// byte-identical to the plain single-shot path.
func TestSoakCheckpointMatchesPlainCampaign(t *testing.T) {
	ctx := context.Background()
	plainCfg := ckTestConfig(11, false)
	plain, err := Soak(ctx, plainCfg)
	if err != nil {
		t.Fatal(err)
	}
	ckCfg := ckTestConfig(11, false)
	ckCfg.Checkpoint = &CheckpointOptions{Dir: t.TempDir(), EveryWindows: 6}
	checkpointed, err := Soak(ctx, ckCfg)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := reportJSON(t, checkpointed), reportJSON(t, plain); got != want {
		t.Fatal("checkpointed campaign report differs from the plain single-shot campaign")
	}
}

// TestSoakCheckpointResumeByteIdentical is the tentpole property test: for
// every barrier k, a campaign killed after its k-th checkpoint and resumed
// in a fresh process state produces a final report byte-identical to the
// uninterrupted run — including the telemetry snapshot and fleet trace —
// at worker counts 1 and 8.
func TestSoakCheckpointResumeByteIdentical(t *testing.T) {
	ctx := context.Background()
	const every = 6
	for _, workers := range []int{1, 8} {
		refCfg := ckTestConfig(11, true)
		refCfg.Workers = workers
		refCfg.Checkpoint = &CheckpointOptions{Dir: t.TempDir(), EveryWindows: every}
		ref, err := Soak(ctx, refCfg)
		if err != nil {
			t.Fatal(err)
		}
		refJSON := reportJSON(t, ref)

		killed := 0
		for k := 1; k <= 64; k++ {
			dir := t.TempDir()
			run1 := ckTestConfig(11, true)
			run1.Workers = workers
			run1.Checkpoint = &CheckpointOptions{Dir: dir, EveryWindows: every, StopAfterSegments: k}
			rep, err := Soak(ctx, run1)
			if err == nil {
				// The campaign has fewer than k barriers: it completed
				// uninterrupted, closing the property sweep.
				if got := reportJSON(t, rep); got != refJSON {
					t.Fatalf("workers=%d k=%d: uninterrupted tail run differs from reference", workers, k)
				}
				break
			}
			if !errors.Is(err, ErrInterrupted) {
				t.Fatalf("workers=%d k=%d: %v", workers, k, err)
			}
			killed++
			run2 := ckTestConfig(11, true)
			run2.Workers = workers
			run2.Checkpoint = &CheckpointOptions{Dir: dir, EveryWindows: every, Resume: true}
			resumed, err := Soak(ctx, run2)
			if err != nil {
				t.Fatalf("workers=%d k=%d: resume: %v", workers, k, err)
			}
			if got := reportJSON(t, resumed); got != refJSON {
				t.Fatalf("workers=%d: report after kill at barrier %d and resume is not byte-identical to the uninterrupted run", workers, k)
			}
		}
		if killed < 2 {
			t.Fatalf("workers=%d: campaign produced only %d interruptible barriers; property sweep is degenerate", workers, killed)
		}
	}
}

// TestSoakCheckpointCrashInjectionByteIdentical drives the crash-injection
// harness: seed-driven worker kills at segment starts are retried from the
// start-of-segment state, and the final report is byte-identical to a
// crash-free run.
func TestSoakCheckpointCrashInjectionByteIdentical(t *testing.T) {
	ctx := context.Background()
	clean := ckTestConfig(13, false)
	clean.Workers = 8
	clean.ShardPolicy = tolerant(3)
	clean.Checkpoint = &CheckpointOptions{Dir: t.TempDir(), EveryWindows: 6}
	ref, err := Soak(ctx, clean)
	if err != nil {
		t.Fatal(err)
	}

	plan := faultinject.NewCrashPlan(0xC4A54, 0.9)
	crashy := ckTestConfig(13, false)
	crashy.Workers = 8
	crashy.ShardPolicy = tolerant(3)
	crashy.Checkpoint = &CheckpointOptions{Dir: t.TempDir(), EveryWindows: 6, CrashPlan: plan}
	rep, err := Soak(ctx, crashy)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Fired() == 0 {
		t.Fatal("crash plan never fired; the harness tested nothing")
	}
	if rep.PartialCoverage || len(rep.Quarantined) != 0 {
		t.Fatalf("transient crashes must heal via retry, got quarantine %+v", rep.Quarantined)
	}
	if got, want := reportJSON(t, rep), reportJSON(t, ref); got != want {
		t.Fatalf("crash-injected campaign (%d kills) not byte-identical to crash-free run", plan.Fired())
	}
	t.Logf("recovered from %d injected crashes with a byte-identical report", plan.Fired())
}

// TestSoakPoisonShardQuarantined proves a persistently failing shard no
// longer aborts the campaign: it exhausts its retries, lands in quarantine,
// and the surviving chips report exactly what a healthy campaign reports
// for them.
func TestSoakPoisonShardQuarantined(t *testing.T) {
	ctx := context.Background()
	healthy := ckTestConfig(17, false)
	healthy.Checkpoint = &CheckpointOptions{Dir: t.TempDir(), EveryWindows: 6}
	ref, err := Soak(ctx, healthy)
	if err != nil {
		t.Fatal(err)
	}

	plan := faultinject.NewCrashPlan(0, 0)
	plan.PoisonChips(1)
	poisoned := ckTestConfig(17, false)
	poisoned.ShardPolicy = tolerant(2)
	poisoned.Checkpoint = &CheckpointOptions{Dir: t.TempDir(), EveryWindows: 6, CrashPlan: plan}
	rep, err := Soak(ctx, poisoned)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.PartialCoverage || len(rep.Quarantined) != 1 {
		t.Fatalf("poisoned shard not quarantined: %+v", rep.Quarantined)
	}
	q := rep.Quarantined[0]
	if q.Chip != 1 || q.Attempts != 2 || !strings.Contains(q.Reason, "injected crash") {
		t.Fatalf("quarantine record = %+v", q)
	}
	if len(rep.ChipReports) != 1 || rep.ChipReports[0].Chip != 0 {
		t.Fatalf("surviving chip reports = %+v", rep.ChipReports)
	}
	if got, want := reportJSON(t, &SoakReport{ChipReports: rep.ChipReports}), reportJSON(t, &SoakReport{ChipReports: ref.ChipReports[:1]}); got != want {
		t.Fatal("surviving chip's report differs from the healthy campaign")
	}

	// Without a shard policy the historical fail-fast contract holds: the
	// poisoned shard aborts the campaign with its error.
	abortCfg := ckTestConfig(17, false)
	abortCfg.Checkpoint = &CheckpointOptions{Dir: t.TempDir(), EveryWindows: 6, CrashPlan: func() *faultinject.CrashPlan {
		p := faultinject.NewCrashPlan(0, 0)
		p.PoisonChips(1)
		return p
	}()}
	if _, err := Soak(ctx, abortCfg); err == nil || !strings.Contains(err.Error(), "chip 1") {
		t.Fatalf("fail-fast campaign error = %v, want poisoned chip 1 abort", err)
	}
}

// TestSoakCheckpointCorruptionFallback corrupts the newest snapshot's state
// files and checks resume falls back to the previous manifest generation,
// still finishing with a byte-identical report; with both generations
// corrupted, resume refuses to run.
func TestSoakCheckpointCorruptionFallback(t *testing.T) {
	ctx := context.Background()
	refCfg := ckTestConfig(11, false)
	refCfg.Checkpoint = &CheckpointOptions{Dir: t.TempDir(), EveryWindows: 6}
	ref, err := Soak(ctx, refCfg)
	if err != nil {
		t.Fatal(err)
	}
	refJSON := reportJSON(t, ref)

	dir := t.TempDir()
	run1 := ckTestConfig(11, false)
	run1.Checkpoint = &CheckpointOptions{Dir: dir, EveryWindows: 6, StopAfterSegments: 2}
	if _, err := Soak(ctx, run1); !errors.Is(err, ErrInterrupted) {
		t.Fatalf("expected interruption after 2 barriers, got %v", err)
	}

	// Flip one byte in every newest-generation (seq 2) state file: checksum
	// verification must reject the whole generation and fall back to seq 1.
	corrupted := 0
	for _, name := range []string{chipFile(0, 2), chipFile(1, 2), campaignFileName(2)} {
		path := filepath.Join(dir, name)
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)/2] ^= 0x40
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		corrupted++
	}
	if corrupted == 0 {
		t.Fatal("no state files corrupted; test is vacuous")
	}

	run2 := ckTestConfig(11, false)
	run2.Checkpoint = &CheckpointOptions{Dir: dir, EveryWindows: 6, Resume: true}
	rep, err := Soak(ctx, run2)
	if err != nil {
		t.Fatalf("resume after corrupting newest generation: %v", err)
	}
	if got := reportJSON(t, rep); got != refJSON {
		t.Fatal("report resumed from the fallback generation is not byte-identical")
	}

	// Truncate the previous generation's files too: now no loadable
	// snapshot remains and resume must fail loudly rather than restart.
	dir2 := t.TempDir()
	run3 := ckTestConfig(11, false)
	run3.Checkpoint = &CheckpointOptions{Dir: dir2, EveryWindows: 6, StopAfterSegments: 2}
	if _, err := Soak(ctx, run3); !errorsIsInterrupted(err) {
		t.Fatalf("expected interruption, got %v", err)
	}
	for _, seq := range []int{1, 2} {
		for _, name := range []string{chipFile(0, seq), chipFile(1, seq), campaignFileName(seq)} {
			path := filepath.Join(dir2, name)
			data, err := os.ReadFile(path)
			if err != nil {
				continue // seq-1 files may have been pruned
			}
			if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	run4 := ckTestConfig(11, false)
	run4.Checkpoint = &CheckpointOptions{Dir: dir2, EveryWindows: 6, Resume: true}
	if _, err := Soak(ctx, run4); err == nil {
		t.Fatal("resume with every generation truncated did not fail")
	}
}

func errorsIsInterrupted(err error) bool { return errors.Is(err, ErrInterrupted) }

// TestSoakCheckpointIdentityMismatch pins the config-binding guard: a
// checkpoint directory written by one campaign refuses a different one.
func TestSoakCheckpointIdentityMismatch(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	run1 := ckTestConfig(11, false)
	run1.Checkpoint = &CheckpointOptions{Dir: dir, EveryWindows: 6, StopAfterSegments: 1}
	if _, err := Soak(ctx, run1); !errors.Is(err, ErrInterrupted) {
		t.Fatalf("expected interruption, got %v", err)
	}
	other := ckTestConfig(12, false) // different campaign seed
	other.Checkpoint = &CheckpointOptions{Dir: dir, EveryWindows: 6, Resume: true}
	if _, err := Soak(ctx, other); !errors.Is(err, checkpoint.ErrIdentityMismatch) {
		t.Fatalf("resume with mismatched config = %v, want ErrIdentityMismatch", err)
	}
}

// TestPopulationSweepPartialQuarantine checks the fault-tolerant population
// sweep masks a poisoned shard and reports it, while the fail-fast sweep
// and the tolerant sweep agree on every healthy chip.
func TestPopulationSweepPartialQuarantine(t *testing.T) {
	ctx := context.Background()
	cfg := DefaultPopulationConfig()
	cfg.ChipsPerVendor = 2
	cfg.ChipBits = 2 << 20
	cfg.Iterations = 2

	full, err := PopulationSweep(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	partial, failures, err := PopulationSweepPartial(ctx, cfg, tolerant(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(failures) != 0 {
		t.Fatalf("healthy sweep reported failures: %+v", failures)
	}
	a, _ := json.Marshal(full)
	b, _ := json.Marshal(partial)
	if string(a) != string(b) {
		t.Fatal("tolerant sweep differs from fail-fast sweep on a healthy fleet")
	}
}
