package experiments

// Checkpointed soak execution: the campaign runs in segments of a fixed
// number of scrub windows, with a barrier after each segment where every
// live chip's state is serialized and the whole fleet snapshot is written
// through the two-generation checkpoint store. A campaign killed at any
// barrier resumes from its checkpoint directory and produces a final report
// byte-identical to an uninterrupted run; a shard that panics or errors
// mid-segment is retried from its start-of-segment state and, if it keeps
// failing, quarantined so the rest of the fleet completes.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sort"

	"reaper/internal/checkpoint"
	"reaper/internal/faultinject"
	"reaper/internal/parallel"
	"reaper/internal/telemetry"
)

// ErrInterrupted is returned by Soak when a checkpointed campaign stopped at
// a segment barrier on request (CheckpointOptions.ShouldStop or
// StopAfterSegments). The checkpoint directory holds a complete snapshot;
// rerunning with Resume continues the campaign exactly where it stopped.
var ErrInterrupted = errors.New("soak: interrupted at checkpoint barrier; resume to continue")

// DefaultCheckpointEveryWindows is the default segment length.
const DefaultCheckpointEveryWindows = 24

// CheckpointOptions configures crash-safe segment execution for Soak.
type CheckpointOptions struct {
	// Dir is the checkpoint directory (empty disables checkpointing).
	Dir string
	// EveryWindows is the segment length in scrub windows between
	// checkpoint barriers. Defaults to DefaultCheckpointEveryWindows.
	// It participates in the campaign identity: resuming with a different
	// segmentation would change batch-level telemetry.
	EveryWindows int
	// Resume loads the newest valid snapshot from Dir before running. A
	// directory with no checkpoint starts a fresh campaign; a checkpoint
	// written by a different configuration is refused
	// (checkpoint.ErrIdentityMismatch).
	Resume bool
	// StopAfterSegments, when positive, stops the campaign with
	// ErrInterrupted once that many segment barriers have been saved in
	// this process. It is the deterministic "kill at round k" hook the
	// resume property tests and `make soak-resume-quick` use.
	StopAfterSegments int
	// ShouldStop is polled at every segment barrier (after the save); a
	// true return stops the campaign with ErrInterrupted. The signal
	// handler in cmd/soak uses this for SIGINT/SIGTERM: the in-flight
	// segment completes, the checkpoint is written, then the process exits.
	ShouldStop func() bool
	// CrashPlan, when non-nil, is the crash-injection harness: it kills
	// (panics) workers at seed-chosen (segment, chip) points to prove the
	// retry path restores start-of-segment state exactly.
	CrashPlan *faultinject.CrashPlan
}

// State file names carry the checkpoint sequence number so the previous
// generation's files survive a new save intact: corruption of the newest
// snapshot falls back to a fully verifiable older one instead of finding
// its files overwritten. The store prunes files referenced by neither
// manifest generation.
func campaignFileName(seq int) string { return fmt.Sprintf("campaign-%06d.ckpt", seq) }

func chipFile(i, seq int) string { return fmt.Sprintf("chip-%03d-%06d.ckpt", i, seq) }

// soakIdentity fingerprints every configuration field that shapes the
// campaign's results, binding a checkpoint directory to one campaign.
func soakIdentity(cfg SoakConfig, everyWindows int) (string, error) {
	e := checkpoint.NewEncoder()
	e.Section("soak.identity")
	e.Int(cfg.Chips)
	e.U64(cfg.Seed)
	e.F64(cfg.Hours)
	e.F64(cfg.WindowHours)
	e.F64(cfg.TargetInterval)
	e.F64(cfg.CadenceHours)
	if cfg.Scenario != nil {
		e.Bool(true)
		b, err := json.Marshal(cfg.Scenario)
		if err != nil {
			return "", fmt.Errorf("soak: identity: %w", err)
		}
		e.Bytes(b)
	} else {
		e.Bool(false)
	}
	e.Bool(cfg.Controller)
	e.F64(cfg.MaxUBER)
	e.I64(cfg.Chip.Bits)
	e.F64(cfg.Chip.WeakScale)
	vb, err := json.Marshal(cfg.Chip.Vendor)
	if err != nil {
		return "", fmt.Errorf("soak: identity: %w", err)
	}
	e.Bytes(vb)
	e.Bool(cfg.Chip.DisableVRT)
	e.Bool(cfg.Chip.DisableDPD)
	e.F64(cfg.SpareFraction)
	e.Int(cfg.ResidentWords)
	e.Bool(cfg.Telemetry != nil)
	e.Int(cfg.TraceCapacity)
	e.Int(everyWindows)
	return checkpoint.Identity(e.Data()), nil
}

// campaignMeta is the fleet-level state saved at every barrier alongside
// the per-chip blobs.
type campaignMeta struct {
	segments    int // completed segment barriers
	done        []bool
	windowsDone []int
	quarantined []QuarantinedShard
	snapshot    *telemetry.Snapshot // nil when the campaign is uninstrumented
}

func encodeCampaignMeta(m *campaignMeta) []byte {
	e := checkpoint.NewEncoder()
	e.Section("soak.campaign")
	e.Int(m.segments)
	e.Len(len(m.done))
	for i := range m.done {
		e.Bool(m.done[i])
		e.Int(m.windowsDone[i])
	}
	e.Len(len(m.quarantined))
	for _, q := range m.quarantined {
		e.Int(q.Chip)
		e.U64(q.Seed)
		e.Int(q.Windows)
		e.Int(q.Attempts)
		e.Str(q.Reason)
	}
	if m.snapshot != nil {
		e.Bool(true)
		m.snapshot.EncodeState(e)
	} else {
		e.Bool(false)
	}
	return e.Data()
}

func decodeCampaignMeta(blob []byte, chips int) (*campaignMeta, error) {
	d := checkpoint.NewDecoder(blob)
	d.Section("soak.campaign")
	m := &campaignMeta{segments: d.Int()}
	n := d.Len(1 << 20)
	if err := d.Err(); err != nil {
		return nil, err
	}
	if n != chips {
		return nil, fmt.Errorf("soak: campaign meta covers %d chips, config has %d", n, chips)
	}
	m.done = make([]bool, n)
	m.windowsDone = make([]int, n)
	for i := 0; i < n; i++ {
		m.done[i] = d.Bool()
		m.windowsDone[i] = d.Int()
	}
	nq := d.Len(1 << 20)
	if err := d.Err(); err != nil {
		return nil, err
	}
	for i := 0; i < nq; i++ {
		m.quarantined = append(m.quarantined, QuarantinedShard{
			Chip:     d.Int(),
			Seed:     d.U64(),
			Windows:  d.Int(),
			Attempts: d.Int(),
			Reason:   d.Str(),
		})
	}
	if d.Bool() {
		snap, err := telemetry.DecodeSnapshot(d)
		if err != nil {
			return nil, err
		}
		m.snapshot = snap
	}
	return m, d.Err()
}

// restoreSoakRunner rebuilds one chip runner: a fresh construction for a
// nil blob (segment 0 retry, or a fresh campaign), otherwise construction
// plus state restore from the start-of-segment blob.
func restoreSoakRunner(cfg SoakConfig, idx int, seed uint64, blob []byte) (*soakRunner, error) {
	r, err := newSoakRunner(cfg, idx, seed)
	if err != nil {
		return nil, fmt.Errorf("soak chip %d: %w", idx, err)
	}
	if blob != nil {
		if err := r.restoreState(blob); err != nil {
			return nil, err
		}
	}
	return r, nil
}

// soakCheckpointed runs the campaign in checkpointed segments.
func soakCheckpointed(ctx context.Context, cfg SoakConfig, seeds []uint64) (*SoakReport, error) {
	ck := *cfg.Checkpoint
	if ck.EveryWindows <= 0 {
		ck.EveryWindows = DefaultCheckpointEveryWindows
	}
	identity, err := soakIdentity(cfg, ck.EveryWindows)
	if err != nil {
		return nil, err
	}
	store, err := checkpoint.NewStore(ck.Dir)
	if err != nil {
		return nil, err
	}

	n := cfg.Chips
	// The shard-size bound caps concurrent materializations; barrier
	// eviction below caps what survives between segments.
	workers := cfg.Workers
	if cfg.ShardSize > 0 {
		workers = fleetWorkers(workers, cfg.ShardSize)
	}
	runners := make([]*soakRunner, n)
	blobs := make([][]byte, n)
	done := make([]bool, n)
	windowsDone := make([]int, n)
	quarantined := map[int]QuarantinedShard{}
	segments := 0

	if ck.Resume {
		man, files, err := store.Load(identity)
		switch {
		case err == nil:
			meta, err := decodeCampaignMeta(files[campaignFileName(man.Seq)], n)
			if err != nil {
				return nil, fmt.Errorf("soak: resume: %w", err)
			}
			segments = meta.segments
			done = meta.done
			windowsDone = meta.windowsDone
			for _, q := range meta.quarantined {
				quarantined[q.Chip] = q
			}
			for i := 0; i < n; i++ {
				if b, ok := files[chipFile(i, man.Seq)]; ok {
					blobs[i] = b
				}
			}
			if cfg.Telemetry != nil {
				cfg.Telemetry.RestoreSnapshot(meta.snapshot)
			}
		case errors.Is(err, checkpoint.ErrNoCheckpoint):
			// Fresh directory: start from the beginning.
		default:
			return nil, err
		}
	}

	savedThisProcess := 0
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// The active set: chips still short of the horizon and not
		// quarantined. Deterministic at every segment regardless of how
		// the campaign was split across processes.
		var active []int
		for i := 0; i < n; i++ {
			if _, q := quarantined[i]; !done[i] && !q {
				active = append(active, i)
			}
		}
		if len(active) == 0 {
			break
		}

		segDone, failures, err := parallel.MapPartial(ctx, len(active), workers, cfg.ShardPolicy,
			func(ctx context.Context, k int) (bool, error) {
				i := active[k]
				if ck.CrashPlan != nil && ck.CrashPlan.Fire(segments, i) {
					//lint:ignore no-panic crash-injection harness: simulates a worker killed mid-campaign; the retry path must recover from the start-of-segment blob
					panic(fmt.Sprintf("injected crash: segment %d chip %d", segments, i))
				}
				// Take the live runner; a panic or error below leaves the
				// slot nil, so the retry (or the next segment after a
				// quarantine decision) rebuilds from the start-of-segment
				// blob instead of trusting half-advanced state.
				r := runners[i]
				runners[i] = nil
				if r == nil {
					var rerr error
					if r, rerr = restoreSoakRunner(cfg, i, seeds[i], blobs[i]); rerr != nil {
						return false, rerr
					}
				}
				finished, rerr := r.runWindows(ctx, ck.EveryWindows)
				if rerr != nil {
					return false, fmt.Errorf("soak chip %d: %w", i, rerr)
				}
				runners[i] = r
				return finished, nil
			})
		if err != nil {
			return nil, err
		}
		if len(failures) > 0 && cfg.ShardPolicy.Attempts == 0 {
			// No shard tolerance requested: preserve fail-fast semantics.
			f := failures[0]
			return nil, fmt.Errorf("soak chip %d: %s", active[f.Job], f.Reason())
		}
		failed := make(map[int]bool, len(failures))
		for _, f := range failures {
			i := active[f.Job]
			failed[i] = true
			quarantined[i] = QuarantinedShard{
				Chip: i, Seed: seeds[i], Windows: windowsDone[i],
				Attempts: f.Attempts, Reason: f.Reason(),
			}
		}
		for k, i := range active {
			if failed[i] {
				continue
			}
			done[i] = segDone[k]
			windowsDone[i] = runners[i].rep.Windows
			blob, err := runners[i].encodeState()
			if err != nil {
				return nil, fmt.Errorf("soak chip %d: encode: %w", i, err)
			}
			blobs[i] = blob
		}
		segments++

		meta := &campaignMeta{
			segments:    segments,
			done:        done,
			windowsDone: windowsDone,
			quarantined: sortedQuarantine(quarantined),
		}
		if cfg.Telemetry != nil {
			meta.snapshot = cfg.Telemetry.Snapshot()
		}
		files := map[string][]byte{campaignFileName(segments): encodeCampaignMeta(meta)}
		for i := 0; i < n; i++ {
			if blobs[i] != nil {
				files[chipFile(i, segments)] = blobs[i]
			}
		}
		if err := store.Save(segments, identity, files); err != nil {
			return nil, err
		}
		if cfg.ShardSize > 0 {
			// Shard eviction: drop every runner's dense simulator state at the
			// barrier. The next segment re-materializes each chip from its seed
			// plus start-of-segment blob — the identical code path a
			// cross-process resume takes (restoreSoakRunner), which the resume
			// property tests prove byte-equivalent to keeping the runner live.
			// Between segments the campaign therefore holds only blobs:
			// O(active shard + summaries) instead of O(fleet).
			for i := range runners {
				runners[i] = nil
			}
		}
		savedThisProcess++
		if ck.StopAfterSegments > 0 && savedThisProcess >= ck.StopAfterSegments {
			return nil, ErrInterrupted
		}
		if ck.ShouldStop != nil && ck.ShouldStop() {
			return nil, ErrInterrupted
		}
	}

	// Finalize every covered chip. A chip that completed in an earlier
	// process has no live runner; rebuild it from its final blob so a
	// resumed campaign reports exactly what the uninterrupted one would.
	results := make([]chipSoakResult, n)
	for i := 0; i < n; i++ {
		if _, q := quarantined[i]; q {
			results[i] = chipSoakResult{rep: ChipSoakReport{Chip: i, Seed: seeds[i]}}
			continue
		}
		r := runners[i]
		if r == nil {
			if blobs[i] == nil {
				return nil, fmt.Errorf("soak chip %d: marked done but no state blob", i)
			}
			if r, err = restoreSoakRunner(cfg, i, seeds[i], blobs[i]); err != nil {
				return nil, err
			}
		}
		results[i] = r.finalize()
	}
	return assembleSoakReport(cfg, results, sortedQuarantine(quarantined)), nil
}

func sortedQuarantine(m map[int]QuarantinedShard) []QuarantinedShard {
	if len(m) == 0 {
		return nil
	}
	out := make([]QuarantinedShard, 0, len(m))
	for _, q := range m {
		out = append(out, q)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Chip < out[j].Chip })
	return out
}
