package experiments

import (
	"reaper/internal/core"
)

// The paper's fourth contribution bullet: DRAM cells "cannot easily be
// classified as weak or strong" — any finite observation window labels some
// cells strong that later fail, because per-read failures are probabilistic
// (normal CDFs), pattern-gated (DPD), and time-varying (VRT). This
// experiment quantifies that: profile for a classification window, label
// the discovered cells "weak" and everything else "strong", then keep
// profiling and count "strong"-labelled cells that fail anyway.

// ClassificationResult reports the fallacy quantitatively.
type ClassificationResult struct {
	// LabelledWeak is the size of the classification-window profile.
	LabelledWeak int
	// LateFailures is how many cells failed in the observation window
	// despite being labelled strong.
	LateFailures int
	// LateFailureRatio is LateFailures / LabelledWeak.
	LateFailureRatio float64
}

// ClassificationConfig drives the experiment.
type ClassificationConfig struct {
	Chip ChipSpec
	// IntervalS is the tested refresh interval.
	IntervalS float64
	// ClassifyIterations is the observation window used to build the
	// weak/strong labels.
	ClassifyIterations int
	// ObserveIterations continues testing after labelling.
	ObserveIterations int
	// ObserveHours spreads the post-label iterations over simulated time
	// (letting VRT act).
	ObserveHours float64
}

// DefaultClassificationConfig is a bench-scale setup.
func DefaultClassificationConfig() ClassificationConfig {
	chip := DefaultChipSpec(55)
	chip.Bits = 16 << 20
	chip.WeakScale = 50
	return ClassificationConfig{
		Chip:               chip,
		IntervalS:          2.048,
		ClassifyIterations: 8,
		ObserveIterations:  24,
		ObserveHours:       12,
	}
}

// ClassificationFallacy runs the experiment.
func ClassificationFallacy(cfg ClassificationConfig) (*ClassificationResult, error) {
	st, err := cfg.Chip.NewStation()
	if err != nil {
		return nil, err
	}
	// Classification window.
	classified, err := core.BruteForce(st, cfg.IntervalS, core.Options{
		Iterations:              cfg.ClassifyIterations,
		FreshRandomPerIteration: true,
		Seed:                    1,
	})
	if err != nil {
		return nil, err
	}
	weak := classified.Failures

	// Observation window: everything newly failing was labelled strong.
	res := &ClassificationResult{LabelledWeak: weak.Len()}
	gap := cfg.ObserveHours * 3600 / float64(cfg.ObserveIterations)
	late := core.NewFailureSet()
	for it := 0; it < cfg.ObserveIterations; it++ {
		r, err := core.BruteForce(st, cfg.IntervalS, core.Options{
			Iterations:              1,
			FreshRandomPerIteration: true,
			Seed:                    uint64(it) + 1000,
		})
		if err != nil {
			return nil, err
		}
		for _, b := range r.Failures.Sorted() {
			if !weak.Contains(b) {
				late.Add(b)
			}
		}
		if idle := gap - r.RuntimeSeconds(); idle > 0 {
			st.Wait(idle)
		}
	}
	res.LateFailures = late.Len()
	if res.LabelledWeak > 0 {
		res.LateFailureRatio = float64(res.LateFailures) / float64(res.LabelledWeak)
	}
	return res, nil
}
