package experiments

import (
	"context"
	"encoding/json"
	"errors"
	"testing"

	"reaper/internal/telemetry"
)

// fleetTestPopConfig is the reduced fleet the parity tests sweep: 2 chips
// per vendor on small chips, so the dense arm stays cheap.
func fleetTestPopConfig(workers int) PopulationConfig {
	cfg := DefaultPopulationConfig()
	cfg.ChipsPerVendor = 2
	cfg.ChipBits = 4 << 20
	cfg.Workers = workers
	return cfg
}

func popJSON(t *testing.T, results []PopulationResult) string {
	t.Helper()
	b, err := json.Marshal(results)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestPopulationSweepLazyDenseParity is the dense-vs-lazy acceptance
// property: the historical single-batch path, shard-evicting execution (at
// several shard sizes, including one that doesn't divide the fleet), and
// the dense materialize-everything-up-front mode all produce byte-identical
// results, at workers 1 and 8.
func TestPopulationSweepLazyDenseParity(t *testing.T) {
	ctx := context.Background()
	var ref string
	for _, workers := range []int{1, 8} {
		legacy, err := PopulationSweep(ctx, fleetTestPopConfig(workers))
		if err != nil {
			t.Fatal(err)
		}
		legacyJSON := popJSON(t, legacy)
		if ref == "" {
			ref = legacyJSON
		}
		if legacyJSON != ref {
			t.Fatalf("workers=%d: legacy sweep differs across worker counts", workers)
		}
		for _, shard := range []int{1, 4, 100} {
			cfg := fleetTestPopConfig(workers)
			cfg.ShardSize = shard
			lazy, err := PopulationSweep(ctx, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if got := popJSON(t, lazy); got != ref {
				t.Fatalf("workers=%d shard=%d: lazy sweep not byte-identical to legacy", workers, shard)
			}
		}
		dcfg := fleetTestPopConfig(workers)
		dcfg.Dense = true
		dense, err := PopulationSweep(ctx, dcfg)
		if err != nil {
			t.Fatal(err)
		}
		if got := popJSON(t, dense); got != ref {
			t.Fatalf("workers=%d: dense sweep not byte-identical to legacy", workers)
		}
	}
}

// TestPopulationFleetCounters pins the fleet lifecycle metrics: over a full
// sharded sweep every chip is materialized exactly once and evicted exactly
// once, and no shard is left active — at any worker count, since the shard
// walk (not the scheduler) drives the counters.
func TestPopulationFleetCounters(t *testing.T) {
	for _, workers := range []int{1, 8} {
		reg := telemetry.New()
		ctx := telemetry.WithRegistry(context.Background(), reg)
		cfg := fleetTestPopConfig(workers)
		cfg.ShardSize = 4
		if _, err := PopulationSweep(ctx, cfg); err != nil {
			t.Fatal(err)
		}
		snap := reg.Snapshot()
		n := int64(cfg.ChipsPerVendor * 3)
		if got := snap.Counter("fleet_chips_materialized"); got != n {
			t.Errorf("workers=%d: fleet_chips_materialized = %d, want %d", workers, got, n)
		}
		if got := snap.Counter("fleet_evictions"); got != n {
			t.Errorf("workers=%d: fleet_evictions = %d, want %d", workers, got, n)
		}
		if got := reg.Gauge("fleet_shards_active").Value(); got != 0 {
			t.Errorf("workers=%d: fleet_shards_active = %v after sweep, want 0", workers, got)
		}
	}
}

// TestPopulationSweepPartialSharded proves the fault-tolerant sweep is also
// shard-size invariant.
func TestPopulationSweepPartialSharded(t *testing.T) {
	ctx := context.Background()
	flat, _, err := PopulationSweepPartial(ctx, fleetTestPopConfig(8), tolerant(2))
	if err != nil {
		t.Fatal(err)
	}
	cfg := fleetTestPopConfig(8)
	cfg.ShardSize = 2
	sharded, failures, err := PopulationSweepPartial(ctx, cfg, tolerant(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(failures) != 0 {
		t.Fatalf("healthy fleet reported failures: %+v", failures)
	}
	if popJSON(t, sharded) != popJSON(t, flat) {
		t.Fatal("sharded partial sweep not byte-identical to flat partial sweep")
	}
}

// TestPopulationConfigShardValidation pins the new knob's entry validation.
func TestPopulationConfigShardValidation(t *testing.T) {
	cfg := DefaultPopulationConfig()
	cfg.ShardSize = -1
	if _, err := PopulationSweep(context.Background(), cfg); err == nil {
		t.Error("negative shard size not rejected")
	}
	cfg = DefaultPopulationConfig()
	cfg.ShardSize = 2
	cfg.Dense = true
	if _, err := PopulationSweep(context.Background(), cfg); err == nil {
		t.Error("dense + shard size not rejected as mutually exclusive")
	}
	cfg = DefaultPopulationConfig()
	cfg.ChipsPerVendor = -3
	if _, _, err := PopulationSweepPartial(context.Background(), cfg, tolerant(1)); err == nil {
		t.Error("negative fleet not rejected by partial sweep")
	}
}

// TestSoakShardEvictionByteIdentical extends the kill-after-round-k harness
// to shard eviction: a checkpointed campaign that evicts every runner at
// every barrier (ShardSize bound) produces a final report — including the
// telemetry snapshot and fleet trace — byte-identical to the keep-alive
// campaign, at workers 1 and 8; and a mid-campaign kill+resume under
// eviction still lands on the same bytes.
func TestSoakShardEvictionByteIdentical(t *testing.T) {
	ctx := context.Background()
	const every = 6
	for _, workers := range []int{1, 8} {
		refCfg := ckTestConfig(11, true)
		refCfg.Workers = workers
		refCfg.Checkpoint = &CheckpointOptions{Dir: t.TempDir(), EveryWindows: every}
		ref, err := Soak(ctx, refCfg)
		if err != nil {
			t.Fatal(err)
		}
		refJSON := reportJSON(t, ref)

		evictCfg := ckTestConfig(11, true)
		evictCfg.Workers = workers
		evictCfg.ShardSize = 1
		evictCfg.Checkpoint = &CheckpointOptions{Dir: t.TempDir(), EveryWindows: every}
		evicted, err := Soak(ctx, evictCfg)
		if err != nil {
			t.Fatal(err)
		}
		if got := reportJSON(t, evicted); got != refJSON {
			t.Fatalf("workers=%d: shard-evicting campaign not byte-identical to keep-alive campaign", workers)
		}

		// Kill mid-campaign with eviction on, resume with a different shard
		// size (the knob is not part of the campaign identity): still the
		// same bytes.
		dir := t.TempDir()
		killCfg := ckTestConfig(11, true)
		killCfg.Workers = workers
		killCfg.ShardSize = 1
		killCfg.Checkpoint = &CheckpointOptions{Dir: dir, EveryWindows: every, StopAfterSegments: 2}
		if _, err := Soak(ctx, killCfg); !errors.Is(err, ErrInterrupted) {
			t.Fatalf("workers=%d: want ErrInterrupted, got %v", workers, err)
		}
		resumeCfg := ckTestConfig(11, true)
		resumeCfg.Workers = workers
		resumeCfg.ShardSize = 2
		resumeCfg.Checkpoint = &CheckpointOptions{Dir: dir, EveryWindows: every, Resume: true}
		resumed, err := Soak(ctx, resumeCfg)
		if err != nil {
			t.Fatalf("workers=%d: resume: %v", workers, err)
		}
		if got := reportJSON(t, resumed); got != refJSON {
			t.Fatalf("workers=%d: kill+resume under eviction not byte-identical to keep-alive campaign", workers)
		}
	}
}

// TestSoakPlainShardSizeParity covers the non-checkpointed path: ShardSize
// only clamps the pool there, so the report must be byte-identical with and
// without it.
func TestSoakPlainShardSizeParity(t *testing.T) {
	ctx := context.Background()
	base := testSoakConfig(9)
	base.Workers = 8
	ref, err := Soak(ctx, base)
	if err != nil {
		t.Fatal(err)
	}
	bounded := testSoakConfig(9)
	bounded.Workers = 8
	bounded.ShardSize = 1
	rep, err := Soak(ctx, bounded)
	if err != nil {
		t.Fatal(err)
	}
	if reportJSON(t, rep) != reportJSON(t, ref) {
		t.Fatal("shard-size-bounded plain campaign not byte-identical to unbounded")
	}
}

// TestSoakConfigShardValidation pins the soak knob's entry validation.
func TestSoakConfigShardValidation(t *testing.T) {
	cfg := testSoakConfig(1)
	cfg.ShardSize = -2
	if _, err := Soak(context.Background(), cfg); err == nil {
		t.Error("negative soak shard size not rejected")
	}
}
