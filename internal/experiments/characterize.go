package experiments

import (
	"cmp"
	"context"
	"fmt"
	"math"
	"slices"

	"reaper/internal/core"
	"reaper/internal/dram"
	"reaper/internal/parallel"
	"reaper/internal/patterns"
	"reaper/internal/stats"
)

// ---------------------------------------------------------------------------
// Figure 2: retention failure rates vs refresh interval, with cells split
// into unique / repeat / non-repeat against the lower-interval population.
// ---------------------------------------------------------------------------

// Fig2Row is one (vendor, interval) sample.
type Fig2Row struct {
	Vendor    string
	IntervalS float64
	BER       float64 // normalized to an unamplified device
	Unique    int     // failing here, never at lower intervals
	Repeat    int     // failing here and at lower intervals
	NonRepeat int     // failing at lower intervals but not here
}

// Fig2Config drives the sweep.
type Fig2Config struct {
	Intervals  []float64
	Iterations int
	Chip       func(vendor dram.VendorParams, seed uint64) ChipSpec
	Seed       uint64

	// Workers bounds the pool running vendors concurrently; <= 0 means one
	// worker per CPU. The per-vendor interval chain stays sequential (each
	// interval's unique/repeat split depends on the lower intervals).
	Workers int
}

// DefaultFig2Config mirrors the paper's interval range.
func DefaultFig2Config() Fig2Config {
	return Fig2Config{
		Intervals:  []float64{0.256, 0.512, 1.024, 2.048, 4.096},
		Iterations: 4,
		Seed:       2,
	}
}

// Fig2RetentionDistribution runs the Figure 2 experiment across the three
// vendors. Cancelling ctx aborts the sweep.
func Fig2RetentionDistribution(ctx context.Context, cfg Fig2Config) ([]Fig2Row, error) {
	if cfg.Chip == nil {
		cfg.Chip = func(v dram.VendorParams, seed uint64) ChipSpec {
			c := DefaultChipSpec(seed)
			c.Vendor = v
			return c
		}
	}
	vendors := dram.Vendors()
	perVendor, err := parallel.Map(ctx, len(vendors), cfg.Workers,
		func(_ context.Context, vi int) ([]Fig2Row, error) {
			vendor := vendors[vi]
			spec := cfg.Chip(vendor, cfg.Seed+uint64(vi))
			st, err := spec.NewStation()
			if err != nil {
				return nil, err
			}
			var rows []Fig2Row
			lower := core.NewFailureSet()
			for _, interval := range cfg.Intervals {
				res, err := core.BruteForce(st, interval, core.Options{
					Iterations:              cfg.Iterations,
					FreshRandomPerIteration: true,
					Seed:                    cfg.Seed,
				})
				if err != nil {
					return nil, err
				}
				f := res.Failures
				repeat := f.Intersect(lower).Len()
				rows = append(rows, Fig2Row{
					Vendor:    vendor.Name,
					IntervalS: interval,
					BER:       spec.EffectiveBER(f.Len()),
					Unique:    f.Len() - repeat,
					Repeat:    repeat,
					NonRepeat: lower.Diff(f).Len(),
				})
				lower = lower.Union(f)
			}
			return rows, nil
		})
	if err != nil {
		return nil, err
	}
	var rows []Fig2Row
	for _, vr := range perVendor {
		rows = append(rows, vr...)
	}
	return rows, nil
}

// Fig2Table renders the rows.
func Fig2Table(rows []Fig2Row) *Table {
	t := &Table{
		Title:  "Figure 2: retention failure rates vs refresh interval",
		Header: []string{"vendor", "tREFI", "BER", "unique", "repeat", "non-repeat", "repeat frac"},
		Caption: "paper: BER grows polynomially with interval; repeat cells dominate " +
			"(Observation 1: cells failing at an interval keep failing at higher ones)",
	}
	for _, r := range rows {
		total := r.Unique + r.Repeat
		frac := 0.0
		if total > 0 {
			frac = float64(r.Repeat) / float64(total)
		}
		t.AddRow(r.Vendor, Ms(r.IntervalS), fmt.Sprintf("%.3g", r.BER),
			fmt.Sprint(r.Unique), fmt.Sprint(r.Repeat), fmt.Sprint(r.NonRepeat), Pct(frac))
	}
	return t
}

// ---------------------------------------------------------------------------
// Figure 3: failures discovered over days of continuous brute-force
// profiling — VRT keeps the set growing at a steady rate.
// ---------------------------------------------------------------------------

// Fig3Point is one profiling iteration's accounting.
type Fig3Point struct {
	Iteration  int
	SimHours   float64
	Cumulative int
	NewCells   int
	Repeats    int
}

// Fig3Result carries the series plus the steady-state fit.
type Fig3Result struct {
	Points []Fig3Point
	// SteadyStateCellsPerHour is the new-failure accumulation rate over
	// the second half of the run.
	SteadyStateCellsPerHour float64
	// PerIterationMean is the mean failures (new+repeat) per iteration in
	// the second half — the paper observes this stays nearly constant.
	PerIterationMean float64
}

// Fig3Config drives the run.
type Fig3Config struct {
	Chip       ChipSpec
	IntervalS  float64
	Iterations int
	// TotalSimHours spreads the iterations across this much simulated
	// time (the paper's six days), with idle refresh-on gaps between
	// iterations.
	TotalSimHours float64
}

// DefaultFig3Config is a bench-scale version of the paper's 6-day run.
func DefaultFig3Config() Fig3Config {
	return Fig3Config{
		Chip:          DefaultChipSpec(3),
		IntervalS:     2.048,
		Iterations:    200,
		TotalSimHours: 48,
	}
}

// Fig3VRTAccumulation runs the experiment.
func Fig3VRTAccumulation(cfg Fig3Config) (*Fig3Result, error) {
	st, err := cfg.Chip.NewStation()
	if err != nil {
		return nil, err
	}
	if cfg.Iterations < 4 {
		return nil, fmt.Errorf("experiments: Fig3 needs >= 4 iterations")
	}
	gap := cfg.TotalSimHours * 3600 / float64(cfg.Iterations)
	seen := core.NewFailureSet()
	res := &Fig3Result{}
	for it := 1; it <= cfg.Iterations; it++ {
		r, err := core.BruteForce(st, cfg.IntervalS, core.Options{
			Iterations:              1,
			FreshRandomPerIteration: true,
			Seed:                    uint64(it),
		})
		if err != nil {
			return nil, err
		}
		newCells := 0
		for _, b := range r.Failures.Sorted() {
			if seen.Add(b) {
				newCells++
			}
		}
		res.Points = append(res.Points, Fig3Point{
			Iteration:  it,
			SimHours:   st.Clock() / 3600,
			Cumulative: seen.Len(),
			NewCells:   newCells,
			Repeats:    r.Failures.Len() - newCells,
		})
		// Idle (refresh enabled) until the next iteration slot.
		idle := gap - r.RuntimeSeconds()
		if idle > 0 {
			st.Wait(idle)
		}
	}
	// Steady state over the second half.
	half := res.Points[len(res.Points)/2:]
	newSum := 0
	perIter := 0.0
	for _, p := range half {
		newSum += p.NewCells
		perIter += float64(p.NewCells + p.Repeats)
	}
	hours := half[len(half)-1].SimHours - half[0].SimHours
	if hours > 0 {
		res.SteadyStateCellsPerHour = float64(newSum) / hours
	}
	res.PerIterationMean = perIter / float64(len(half))
	return res, nil
}

// ---------------------------------------------------------------------------
// Figure 4: steady-state accumulation rate vs refresh interval per vendor,
// fit as y = a * x^b.
// ---------------------------------------------------------------------------

// Fig4Row is one vendor's sweep plus power-law fit.
type Fig4Row struct {
	Vendor    string
	Intervals []float64
	// RatesPerHour are measured on the scale-model chip, normalized back
	// to an unamplified device of the same capacity.
	RatesPerHour []float64
	Fit          stats.PowerLawFit
	// AnalyticAnchor is the calibrated model rate at each interval for
	// comparison.
	AnalyticAnchor []float64
}

// Fig4Config drives the sweep.
type Fig4Config struct {
	Intervals  []float64
	Iterations int
	SimHours   float64
	Seed       uint64
	ChipBits   int64
	WeakScale  float64

	// Workers bounds the pool running (vendor, interval) cells concurrently;
	// <= 0 means one worker per CPU. Each cell builds its own chip.
	Workers int
}

// DefaultFig4Config is a bench-scale sweep.
func DefaultFig4Config() Fig4Config {
	return Fig4Config{
		Intervals:  []float64{1.024, 2.048, 4.096},
		Iterations: 60,
		SimHours:   24,
		Seed:       4,
		ChipBits:   64 << 20,
		WeakScale:  50,
	}
}

// Fig4AccumulationRates measures and fits the per-vendor rates. Every
// (vendor, interval) cell simulates an independent chip, so the whole grid
// fans out on the pool.
func Fig4AccumulationRates(ctx context.Context, cfg Fig4Config) ([]Fig4Row, error) {
	vendors := dram.Vendors()
	nI := len(cfg.Intervals)
	rates, err := parallel.Map(ctx, len(vendors)*nI, cfg.Workers,
		func(_ context.Context, job int) (float64, error) {
			vi, interval := job/nI, cfg.Intervals[job%nI]
			spec := ChipSpec{
				Bits:      cfg.ChipBits,
				WeakScale: cfg.WeakScale,
				Vendor:    vendors[vi],
				Seed:      cfg.Seed + uint64(vi)*97 + uint64(interval*1000),
			}
			r, err := Fig3VRTAccumulation(Fig3Config{
				Chip:          spec,
				IntervalS:     interval,
				Iterations:    cfg.Iterations,
				TotalSimHours: cfg.SimHours,
			})
			if err != nil {
				return 0, err
			}
			return r.SteadyStateCellsPerHour / cfg.WeakScale, nil
		})
	if err != nil {
		return nil, err
	}
	var out []Fig4Row
	for vi, vendor := range vendors {
		row := Fig4Row{Vendor: vendor.Name, Intervals: cfg.Intervals}
		row.RatesPerHour = rates[vi*nI : (vi+1)*nI]
		for _, interval := range cfg.Intervals {
			row.AnalyticAnchor = append(row.AnalyticAnchor,
				vendor.VRTRate(interval, dram.RefTempC, cfg.ChipBits/8))
		}
		if fit, err := stats.FitPowerLaw(row.Intervals, row.RatesPerHour); err == nil {
			row.Fit = fit
		}
		out = append(out, row)
	}
	return out, nil
}

// Fig4Table renders the rows.
func Fig4Table(rows []Fig4Row) *Table {
	t := &Table{
		Title:   "Figure 4: steady-state failure accumulation rate vs refresh interval (y = a*x^b)",
		Header:  []string{"vendor", "tREFI", "measured cells/hr", "model cells/hr", "fit a", "fit b", "R2"},
		Caption: "paper: polynomial growth of the accumulation rate with refresh interval",
	}
	for _, r := range rows {
		for i := range r.Intervals {
			a, b, r2 := "", "", ""
			if i == 0 {
				a, b, r2 = F(r.Fit.A), F(r.Fit.B), F(r.Fit.R2)
			}
			t.AddRow(r.Vendor, Ms(r.Intervals[i]), F(r.RatesPerHour[i]),
				F(r.AnalyticAnchor[i]), a, b, r2)
		}
	}
	return t
}

// ---------------------------------------------------------------------------
// Figure 5: per-pattern coverage of the unique failure population.
// ---------------------------------------------------------------------------

// Fig5Row reports one pattern's share of all discovered failures.
type Fig5Row struct {
	Vendor   string
	Pattern  string
	Found    int
	Total    int
	Coverage float64
}

// Fig5Config drives the run.
type Fig5Config struct {
	IntervalS  float64
	Iterations int
	Seed       uint64
	Vendors    []dram.VendorParams
	ChipBits   int64
	WeakScale  float64

	// Workers bounds the pool running vendors concurrently; <= 0 means one
	// worker per CPU.
	Workers int
}

// DefaultFig5Config is a bench-scale version of the paper's 800-iteration,
// six-day pattern study.
func DefaultFig5Config() Fig5Config {
	return Fig5Config{
		IntervalS:  2.048,
		Iterations: 64,
		Seed:       5,
		Vendors:    dram.Vendors(),
		ChipBits:   64 << 20,
		WeakScale:  20,
	}
}

// Fig5PatternCoverage measures what fraction of all discovered failing
// cells each data pattern finds on its own.
func Fig5PatternCoverage(ctx context.Context, cfg Fig5Config) ([]Fig5Row, error) {
	perVendor, err := parallel.Map(ctx, len(cfg.Vendors), cfg.Workers,
		func(_ context.Context, vi int) ([]Fig5Row, error) {
			return fig5Vendor(cfg, vi)
		})
	if err != nil {
		return nil, err
	}
	var out []Fig5Row
	for _, vr := range perVendor {
		out = append(out, vr...)
	}
	return out, nil
}

// fig5Vendor runs the Figure 5 pattern study for one vendor's chip.
func fig5Vendor(cfg Fig5Config, vi int) ([]Fig5Row, error) {
	var out []Fig5Row
	{
		vendor := cfg.Vendors[vi]
		spec := ChipSpec{Bits: cfg.ChipBits, WeakScale: cfg.WeakScale,
			Vendor: vendor, Seed: cfg.Seed + uint64(vi)*31}
		st, err := spec.NewStation()
		if err != nil {
			return nil, err
		}
		// Pattern families: solid/checker/colstripe/rowstripe/walk/random,
		// each tested with its inverse, tracked per family as the paper
		// plots them.
		families := [][]patterns.Pattern{
			{patterns.Solid0(), patterns.Solid1()},
			{patterns.Checkerboard(), patterns.Invert(patterns.Checkerboard())},
			{patterns.ColStripe(), patterns.Invert(patterns.ColStripe())},
			{patterns.RowStripe(), patterns.Invert(patterns.RowStripe())},
			{patterns.WalkingOnes(), patterns.Invert(patterns.WalkingOnes())},
			nil, // random: freshly seeded per iteration
		}
		names := []string{"solid", "checker", "colstripe", "rowstripe", "walk", "random"}
		perFamily := make([]*core.FailureSet, len(families))
		for i := range perFamily {
			perFamily[i] = core.NewFailureSet()
		}
		total := core.NewFailureSet()
		for it := 0; it < cfg.Iterations; it++ {
			for fi, fam := range families {
				ps := fam
				if ps == nil {
					s := cfg.Seed ^ uint64(it)*0x9e3779b97f4a7c15
					ps = []patterns.Pattern{patterns.Random(s), patterns.Invert(patterns.Random(s))}
				}
				for _, p := range ps {
					st.WritePattern(p)
					st.DisableRefresh()
					st.Wait(cfg.IntervalS)
					st.EnableRefresh()
					fails := st.ReadCompare()
					perFamily[fi].AddAll(fails)
					total.AddAll(fails)
				}
			}
		}
		for fi := range families {
			cov := 0.0
			if total.Len() > 0 {
				cov = float64(perFamily[fi].Intersect(total).Len()) / float64(total.Len())
			}
			out = append(out, Fig5Row{
				Vendor:   vendor.Name,
				Pattern:  names[fi],
				Found:    perFamily[fi].Len(),
				Total:    total.Len(),
				Coverage: cov,
			})
		}
	}
	return out, nil
}

// Fig5Table renders the rows.
func Fig5Table(rows []Fig5Row) *Table {
	t := &Table{
		Title:   "Figure 5: unique-failure coverage by data pattern",
		Header:  []string{"vendor", "pattern", "found", "of total", "coverage"},
		Caption: "paper (Observation 3): on LPDDR4 the random pattern comes closest to full coverage but no single pattern finds everything",
	}
	for _, r := range rows {
		t.AddRow(r.Vendor, r.Pattern, fmt.Sprint(r.Found), fmt.Sprint(r.Total), Pct(r.Coverage))
	}
	return t
}

// Fig5RandomWins reports whether the random pattern found the most failures
// for every vendor in the result set — the paper's headline observation.
func Fig5RandomWins(rows []Fig5Row) bool {
	best := map[string]Fig5Row{}
	for _, r := range rows {
		if cur, ok := best[r.Vendor]; !ok || r.Coverage > cur.Coverage {
			best[r.Vendor] = r
		}
	}
	for _, r := range best {
		if r.Pattern != "random" {
			return false
		}
	}
	return len(best) > 0
}

// ---------------------------------------------------------------------------
// Figure 6: per-cell failure CDFs are normal; their sigmas are lognormal.
// ---------------------------------------------------------------------------

// Fig6Result summarizes the per-cell distribution measurements.
type Fig6Result struct {
	// CellsMeasured is how many weak cells had their CDF sampled.
	CellsMeasured int
	// MedianKS / P90KS are quantiles of the per-cell Kolmogorov-Smirnov
	// statistic of measured failure fractions against the cell's normal
	// CDF (small = normal, the paper's Figure 6a).
	MedianKS, P90KS float64
	// SigmaLogMu / SigmaLogSigma are the lognormal fit of the per-cell
	// sigma population in seconds (Figure 6b).
	SigmaLogMu, SigmaLogSigma float64
	// FracSigmaBelow200ms is the fraction of cells with sigma < 200 ms
	// (the paper: "the majority of cells").
	FracSigmaBelow200ms float64
}

// Fig6Config drives the measurement.
type Fig6Config struct {
	Chip Y6Chip
	// SampleCells is how many weak cells get a measured CDF.
	SampleCells int
	// TrialsPerPoint is the paper's 16 iterations per interval point.
	TrialsPerPoint int
	// PointsPerCell is how many intervals around each cell's mean are
	// sampled.
	PointsPerCell int
}

// Y6Chip aliases ChipSpec (kept separate so Fig6's ablated default is
// explicit: VRT and DPD off, matching the paper's Figure 6 exclusions).
type Y6Chip = ChipSpec

// DefaultFig6Config uses an ablated chip at 40°C, as the paper does
// (Figure 6 data is taken at 40°C with VRT cells excluded).
func DefaultFig6Config() Fig6Config {
	chip := DefaultChipSpec(6)
	chip.DisableVRT = true
	chip.DisableDPD = true
	return Fig6Config{
		Chip:           chip,
		SampleCells:    40,
		TrialsPerPoint: 16,
		PointsPerCell:  7,
	}
}

// Fig6CellCDFs measures per-cell failure CDFs empirically and checks their
// normality, and fits the latent sigma population.
func Fig6CellCDFs(cfg Fig6Config) (*Fig6Result, error) {
	st, err := cfg.Chip.NewStation()
	if err != nil {
		return nil, err
	}
	st.SetAmbient(40)
	dev := st.Device()
	cells := dev.Cells(st.Clock())
	if len(cells) == 0 {
		return nil, fmt.Errorf("experiments: no weak cells")
	}
	// Pick sample cells spread across the retention domain, charged-high
	// for simplicity.
	var sample []dram.CellInfo
	for _, c := range cells {
		if c.ChargedVal == 1 && c.Mu > 0.5 && c.Mu < 6 {
			sample = append(sample, c)
		}
	}
	slices.SortFunc(sample, func(a, b dram.CellInfo) int { return cmp.Compare(a.Mu, b.Mu) })
	if len(sample) > cfg.SampleCells {
		stride := len(sample) / cfg.SampleCells
		picked := make([]dram.CellInfo, 0, cfg.SampleCells)
		for i := 0; i < len(sample) && len(picked) < cfg.SampleCells; i += stride {
			picked = append(picked, sample[i])
		}
		sample = picked
	}
	if len(sample) == 0 {
		return nil, fmt.Errorf("experiments: no suitable sample cells")
	}

	tempScale := math.Exp(-cfg.Chip.Vendor.TempCoeff / cfg.Chip.Vendor.BERExponent * (40 - dram.RefTempC))
	var ksStats []float64
	for _, cell := range sample {
		// Measure the failure fraction at PointsPerCell intervals around
		// the cell's (temperature-adjusted) mean.
		mu := cell.Mu * tempScale
		sigma := cell.Sigma * tempScale
		var measured []float64 // one synthetic sample per observed failure position
		for pi := 0; pi < cfg.PointsPerCell; pi++ {
			z := -1.5 + 3*float64(pi)/float64(cfg.PointsPerCell-1)
			interval := mu + z*sigma
			if interval <= 0.065 {
				continue
			}
			fails := 0
			for trial := 0; trial < cfg.TrialsPerPoint; trial++ {
				st.WritePattern(patterns.Solid1())
				st.DisableRefresh()
				st.Wait(interval)
				st.EnableRefresh()
				for _, b := range st.ReadCompare() {
					if b == cell.Bit {
						fails++
						break
					}
				}
			}
			frac := float64(fails) / float64(cfg.TrialsPerPoint)
			// Compare measured fraction against the normal CDF via a KS
			// contribution: |frac - Phi(z)|.
			measured = append(measured, math.Abs(frac-stats.NormalCDF(interval, mu, sigma)))
		}
		if len(measured) == 0 {
			continue
		}
		worst := 0.0
		for _, m := range measured {
			if m > worst {
				worst = m
			}
		}
		ksStats = append(ksStats, worst)
	}
	if len(ksStats) == 0 {
		return nil, fmt.Errorf("experiments: no CDFs measured")
	}

	// Latent sigma population (Figure 6b).
	var sigmas []float64
	below := 0
	for _, c := range cells {
		s := c.Sigma * tempScale
		sigmas = append(sigmas, s)
		if s < 0.2 {
			below++
		}
	}
	mu, sg := stats.FitLogNormal(sigmas)

	return &Fig6Result{
		CellsMeasured:       len(ksStats),
		MedianKS:            stats.Percentile(ksStats, 50),
		P90KS:               stats.Percentile(ksStats, 90),
		SigmaLogMu:          mu,
		SigmaLogSigma:       sg,
		FracSigmaBelow200ms: float64(below) / float64(len(sigmas)),
	}, nil
}

// ---------------------------------------------------------------------------
// Figure 7: the (mu, sigma) distributions shift left and narrow as
// temperature rises.
// ---------------------------------------------------------------------------

// Fig7Row summarizes the latent parameter distribution at one temperature.
type Fig7Row struct {
	TempC       float64
	MedianMuS   float64
	MedianSigma float64
}

// Fig7TemperatureShift samples the distributions at several temperatures.
func Fig7TemperatureShift(chip ChipSpec, temps []float64) ([]Fig7Row, error) {
	st, err := chip.NewStation()
	if err != nil {
		return nil, err
	}
	cells := st.Device().Cells(st.Clock())
	if len(cells) == 0 {
		return nil, fmt.Errorf("experiments: no weak cells")
	}
	v := st.Device().Vendor()
	var out []Fig7Row
	for _, temp := range temps {
		scale := math.Exp(-v.TempCoeff / v.BERExponent * (temp - dram.RefTempC))
		var mus, sigmas []float64
		for _, c := range cells {
			mus = append(mus, c.Mu*scale)
			sigmas = append(sigmas, c.Sigma*scale)
		}
		out = append(out, Fig7Row{
			TempC:       temp,
			MedianMuS:   stats.Percentile(mus, 50),
			MedianSigma: stats.Percentile(sigmas, 50),
		})
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Figure 8: the combined failure distribution over temperature and refresh
// interval — raising temperature is interchangeable with lengthening the
// interval.
// ---------------------------------------------------------------------------

// Fig8Result reports the equivalence between the two reach knobs.
type Fig8Result struct {
	// MeanFailProb[ti][ii] is the population mean single-read failure
	// probability at Temps[ti] and Intervals[ii].
	Temps        []float64
	Intervals    []float64
	MeanFailProb [][]float64
	// EquivalentDeltaIntervalPer10C is the interval extension (seconds)
	// that produces the same mean failure probability increase as +10°C,
	// evaluated at 45°C / 2.048 s (the paper: ~1 s at these conditions).
	EquivalentDeltaIntervalPer10C float64
}

// Fig8CombinedDistribution evaluates the combined distribution on a grid.
func Fig8CombinedDistribution(chip ChipSpec, temps, intervals []float64) (*Fig8Result, error) {
	st, err := chip.NewStation()
	if err != nil {
		return nil, err
	}
	dev := st.Device()
	cells := dev.Cells(st.Clock())
	if len(cells) == 0 {
		return nil, fmt.Errorf("experiments: no weak cells")
	}
	res := &Fig8Result{Temps: temps, Intervals: intervals}
	meanProb := func(tempC, interval float64) float64 {
		sum := 0.0
		for _, c := range cells {
			sum += dev.CellFailProb(c.Bit, interval, tempC, st.Clock())
		}
		return sum / float64(len(cells))
	}
	for _, temp := range temps {
		var row []float64
		for _, interval := range intervals {
			row = append(row, meanProb(temp, interval))
		}
		res.MeanFailProb = append(res.MeanFailProb, row)
	}
	// Find the interval delta at 45°C matching the probability at 55°C.
	base := meanProb(55, 2.048)
	lo, hi := 0.0, 6.0
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		if meanProb(45, 2.048+mid) < base {
			lo = mid
		} else {
			hi = mid
		}
	}
	res.EquivalentDeltaIntervalPer10C = (lo + hi) / 2
	return res, nil
}
