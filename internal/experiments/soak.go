package experiments

// Long-horizon soak campaigns: a fleet of chips runs for simulated weeks at
// an extended refresh interval while a fault injector drives the Section
// 2.3 hazards against them, and the firmware resilience controller (or,
// for the baseline, nothing) defends the ECC budget. The survival report
// quantifies what the paper argues qualitatively: active profiling plus a
// closed loop on scrub telemetry keeps the uncorrectable bit error rate
// inside the target, while an open-loop system accumulates escapes until
// SECDED is overwhelmed.

import (
	"context"
	"fmt"
	"math"
	"slices"
	"strconv"

	"reaper/internal/dram"
	"reaper/internal/faultinject"
	"reaper/internal/firmware"
	"reaper/internal/memctrl"
	"reaper/internal/mitigate"
	"reaper/internal/parallel"
	"reaper/internal/rng"
	"reaper/internal/telemetry"
)

// SoakConfig configures a fleet soak campaign.
type SoakConfig struct {
	// Chips is the fleet size; each chip gets a derived seed, its own
	// station, injector, mitigation stack, and firmware manager.
	Chips int `json:"chips"`
	// Seed drives the whole campaign (chip seeds and scenario seeds are
	// split from it).
	Seed uint64 `json:"seed"`
	// Hours is the soak horizon in simulated hours.
	Hours float64 `json:"hours"`
	// WindowHours is the scrub window (one ECC sweep + telemetry report
	// per window). Defaults to 1.
	WindowHours float64 `json:"window_hours"`
	// TargetInterval is the extended refresh interval under test.
	TargetInterval float64 `json:"target_interval"`
	// CadenceHours is the open-loop reprofiling cadence.
	CadenceHours float64 `json:"cadence_hours"`
	// Scenario overrides the fault scenario; nil uses DefaultScenario
	// (per-chip seeds are always re-derived from Seed).
	Scenario *faultinject.Scenario `json:"scenario,omitempty"`
	// Controller enables the firmware resilience controller. Off = the
	// open-loop baseline arm.
	Controller bool `json:"controller"`
	// MaxUBER is the survival criterion: a chip survives if its
	// cumulative uncorrectable bit error rate stays at or below this.
	MaxUBER float64 `json:"max_uber"`
	// Workers sizes the fleet worker pool (0 = NumCPU). Results are
	// identical at any worker count.
	Workers int `json:"workers"`
	// ShardSize, when positive, bounds how many chips may hold dense
	// simulator state at once. The worker pool is clamped to it in every
	// execution path (a non-checkpointed chip's dense state lives exactly
	// as long as its job runs, so the clamp alone bounds residency); the
	// checkpointed path additionally evicts every live runner at each
	// segment barrier, so between segments the campaign holds only the
	// compact per-chip state blobs and the next segment re-materializes
	// each chip from its seed plus blob — the same restore path a
	// cross-process resume takes. Reports are byte-identical at every
	// shard size, and a checkpoint directory written at one shard size
	// resumes cleanly at another (ShardSize does not join the campaign
	// identity because it cannot shape results). <= 0 keeps every runner
	// live for the whole campaign.
	ShardSize int `json:"shard_size,omitempty"`
	// Chip is the base chip spec; Seed and Chamber are overridden per
	// chip (soak chips are chamber-less so injected thermal excursions
	// control the ambient directly).
	Chip ChipSpec `json:"-"`
	// SpareFraction sizes the ArchShield reserved segment. Defaults 0.04.
	SpareFraction float64 `json:"spare_fraction"`
	// ResidentWords caps the resident data set per chip. Defaults to 96.
	ResidentWords int `json:"resident_words"`
	// Telemetry, when non-nil, instruments the campaign: every chip's
	// firmware manager, fault injector, and scrubber record into it, each
	// chip gets its own trace ring, and the final report embeds the
	// registry snapshot plus the merged fleet timeline. The snapshot is
	// byte-identical at any worker count (see internal/telemetry). Nil
	// (the default) leaves the report exactly as before.
	Telemetry *telemetry.Registry `json:"-"`
	// TraceCapacity sizes each chip's trace ring when Telemetry is set.
	// Defaults to telemetry.DefaultTraceCapacity.
	TraceCapacity int `json:"-"`
	// ShardPolicy bounds per-chip fault tolerance. The zero value keeps the
	// historical fail-fast behavior: the first chip error aborts the whole
	// campaign. With Attempts >= 1, a failing or panicking chip is retried
	// up to Attempts times (deterministic exponential backoff) and then
	// quarantined: the campaign completes with PartialCoverage set and the
	// poisoned shards enumerated in the report instead of aborting.
	ShardPolicy parallel.RetryPolicy `json:"-"`
	// Checkpoint, when non-nil with a Dir, runs the campaign in checkpointed
	// segments (see CheckpointOptions).
	Checkpoint *CheckpointOptions `json:"-"`
}

// DefaultSoakConfig is the standard two-week fleet soak at 1024 ms under
// the default fault scenario.
func DefaultSoakConfig(seed uint64) SoakConfig {
	return SoakConfig{
		Chips:          4,
		Seed:           seed,
		Hours:          14 * 24,
		WindowHours:    1,
		TargetInterval: 1.024,
		CadenceHours:   24,
		Controller:     true,
		MaxUBER:        1e-4,
		Chip:           ChipSpec{Bits: 8 << 20, WeakScale: 20, Vendor: dram.VendorB()},
		SpareFraction:  0.04,
		ResidentWords:  96,
	}
}

func (c *SoakConfig) fillDefaults() error {
	if c.Chips <= 0 {
		return fmt.Errorf("soak: need at least one chip")
	}
	if c.Hours <= 0 {
		return fmt.Errorf("soak: non-positive horizon")
	}
	if c.TargetInterval <= 0 {
		return fmt.Errorf("soak: non-positive target interval")
	}
	if c.ShardSize < 0 {
		return fmt.Errorf("soak: shard size must be non-negative (got %d)", c.ShardSize)
	}
	if c.WindowHours <= 0 {
		c.WindowHours = 1
	}
	if c.CadenceHours <= 0 {
		c.CadenceHours = 24
	}
	if c.MaxUBER <= 0 {
		c.MaxUBER = 1e-4
	}
	if c.SpareFraction <= 0 {
		c.SpareFraction = 0.04
	}
	if c.ResidentWords <= 0 {
		c.ResidentWords = 96
	}
	if c.Chip.Bits == 0 {
		c.Chip = DefaultSoakConfig(c.Seed).Chip
	}
	return nil
}

// ChipSoakReport is one chip's survival record.
type ChipSoakReport struct {
	Chip int    `json:"chip"` //lint:serialized-elsewhere shard identity; assigned by newSoakRunner from the campaign layout
	Seed uint64 `json:"seed"` //lint:serialized-elsewhere shard identity; assigned by newSoakRunner from the campaign layout

	Windows          int     `json:"windows"`
	ViolationWindows int     `json:"violation_windows"` // windows with >= 1 UE
	UEEvents         int     `json:"ue_events"`         // word-level UE observations
	CorrectedTotal   int     `json:"corrected_total"`
	WordsScanned     int64   `json:"words_scanned"`
	UBER             float64 `json:"uber"`     //lint:serialized-elsewhere recomputed by finalize from the restored window counters
	Survived         bool    `json:"survived"` //lint:serialized-elsewhere recomputed by finalize from the restored window counters

	Rounds            int     `json:"rounds"`              //lint:serialized-elsewhere recomputed by finalize from restored firmware.Manager state
	EarlyRounds       int     `json:"early_rounds"`        //lint:serialized-elsewhere recomputed by finalize from restored firmware.Manager state
	Aborts            int     `json:"aborts"`              //lint:serialized-elsewhere recomputed by finalize from restored firmware.Manager state
	WidenSteps        int     `json:"widen_steps"`         //lint:serialized-elsewhere recomputed by finalize from restored firmware.Manager state
	DegradeEvents     int     `json:"degrade_events"`      //lint:serialized-elsewhere recomputed by finalize from the restored controller event log
	RecoverEvents     int     `json:"recover_events"`      //lint:serialized-elsewhere recomputed by finalize from the restored controller event log
	FinalDegradeLevel int     `json:"final_degrade_level"` //lint:serialized-elsewhere recomputed by finalize from restored firmware.Manager state
	FinalIntervalMs   float64 `json:"final_interval_ms"`   //lint:serialized-elsewhere recomputed by finalize from restored firmware.Manager state
	SparesExhausted   bool    `json:"spares_exhausted"`    //lint:serialized-elsewhere recomputed by finalize from restored firmware.Manager state
	ExtendedFraction  float64 `json:"extended_fraction"`   //lint:serialized-elsewhere recomputed by finalize from restored interval accounting

	FaultCounts      map[string]int      `json:"fault_counts"`      //lint:serialized-elsewhere drained from the restored Injector by finalize
	FaultEvents      []faultinject.Event `json:"fault_events"`      //lint:serialized-elsewhere drained from the restored Injector by finalize
	ControllerEvents []firmware.Event    `json:"controller_events"` //lint:serialized-elsewhere drained from the restored Manager by finalize
}

// SoakReport is the campaign's survival report (serializable to JSON).
type SoakReport struct {
	Chips          int     `json:"chips"`
	Seed           uint64  `json:"seed"`
	Hours          float64 `json:"hours"`
	WindowHours    float64 `json:"window_hours"`
	TargetInterval float64 `json:"target_interval"`
	Controller     bool    `json:"controller"`
	MaxUBER        float64 `json:"max_uber"`

	Survived             bool    `json:"survived"` // every chip within MaxUBER
	WorstUBER            float64 `json:"worst_uber"`
	TotalUEEvents        int     `json:"total_ue_events"`
	TotalViolationWindow int     `json:"total_violation_windows"`
	MeanExtendedFraction float64 `json:"mean_extended_fraction"`

	ChipReports []ChipSoakReport `json:"chip_reports"`

	// Telemetry and TraceEvents are present only when SoakConfig.Telemetry
	// was set: the final metrics snapshot and the fleet trace timeline,
	// merged across chips in (clock, source, seq) order. Both serialize
	// with omitempty so uninstrumented reports are unchanged byte for byte.
	Telemetry   *telemetry.Snapshot `json:"telemetry,omitempty"`
	TraceEvents []telemetry.Event   `json:"trace_events,omitempty"`

	// Quarantined enumerates chips that exhausted their retry budget and
	// were excluded from the campaign (ShardPolicy fault tolerance). When
	// non-empty, PartialCoverage is set and the aggregate statistics cover
	// only the surviving chips. Both fields serialize with omitempty so
	// full-coverage reports are unchanged byte for byte.
	Quarantined     []QuarantinedShard `json:"quarantined,omitempty"`
	PartialCoverage bool               `json:"partial_coverage,omitempty"`
}

// QuarantinedShard records one chip shard that was excluded from the
// campaign after exhausting its retry budget.
type QuarantinedShard struct {
	// Chip is the fleet index of the quarantined shard.
	Chip int `json:"chip"`
	// Seed is the chip's derived campaign seed.
	Seed uint64 `json:"seed"`
	// Windows is how many scrub windows the chip completed before the last
	// checkpoint barrier (always 0 in non-checkpointed campaigns, which
	// lose a failed shard's partial progress).
	Windows int `json:"windows"`
	// Attempts is how many times the shard was tried.
	Attempts int `json:"attempts"`
	// Reason is the final failure in its stable form (panic values keep
	// their message but lose the stack, so reports stay deterministic).
	Reason string `json:"reason"`
}

// soakSeeds derives the per-chip seeds up front so the fleet order is fixed.
func soakSeeds(cfg SoakConfig) []uint64 {
	root := rng.New(cfg.Seed)
	seeds := make([]uint64, cfg.Chips)
	for i := range seeds {
		seeds[i] = root.Split(uint64(i) + 1).Uint64()
	}
	return seeds
}

// Soak runs the campaign. Chips run concurrently on a worker pool; each
// chip's simulation is fully sequential and seeded independently, so the
// report is bit-for-bit identical at any worker count. With a ShardPolicy,
// failing chips are retried and then quarantined instead of aborting the
// campaign; with Checkpoint set, the campaign runs in resumable segments
// (see CheckpointOptions) and may return ErrInterrupted.
func Soak(ctx context.Context, cfg SoakConfig) (*SoakReport, error) {
	if err := cfg.fillDefaults(); err != nil {
		return nil, err
	}
	seeds := soakSeeds(cfg)
	ctx = telemetry.WithRegistry(ctx, cfg.Telemetry)
	if cfg.Checkpoint != nil && cfg.Checkpoint.Dir != "" {
		return soakCheckpointed(ctx, cfg, seeds)
	}
	// With a shard-size bound, clamping the pool is all the eviction this
	// path needs: a chip's dense state is built inside its job and becomes
	// garbage when the job returns, so at most min(workers, ShardSize)
	// devices are ever live.
	workers := cfg.Workers
	if cfg.ShardSize > 0 {
		workers = fleetWorkers(workers, cfg.ShardSize)
	}
	var (
		results     []chipSoakResult
		quarantined []QuarantinedShard
		err         error
	)
	if cfg.ShardPolicy.Attempts >= 1 {
		var failures []parallel.JobFailure
		results, failures, err = parallel.MapPartial(ctx, cfg.Chips, workers, cfg.ShardPolicy,
			func(ctx context.Context, i int) (chipSoakResult, error) {
				return soakChip(ctx, cfg, i, seeds[i])
			})
		for _, f := range failures {
			quarantined = append(quarantined, QuarantinedShard{
				Chip: f.Job, Seed: seeds[f.Job], Attempts: f.Attempts, Reason: f.Reason(),
			})
		}
	} else {
		results, err = parallel.Map(ctx, cfg.Chips, workers,
			func(ctx context.Context, i int) (chipSoakResult, error) {
				return soakChip(ctx, cfg, i, seeds[i])
			})
	}
	if err != nil {
		return nil, err
	}
	return assembleSoakReport(cfg, results, quarantined), nil
}

// assembleSoakReport aggregates the fleet results into the campaign report.
// Quarantined chips are excluded from the per-chip reports and from every
// aggregate statistic; coverage is flagged as partial.
func assembleSoakReport(cfg SoakConfig, results []chipSoakResult, quarantined []QuarantinedShard) *SoakReport {
	excluded := make(map[int]bool, len(quarantined))
	for _, q := range quarantined {
		excluded[q.Chip] = true
	}
	chips := make([]ChipSoakReport, 0, len(results))
	for i, r := range results {
		if !excluded[i] {
			chips = append(chips, r.rep)
		}
	}
	rep := &SoakReport{
		Chips:           cfg.Chips,
		Seed:            cfg.Seed,
		Hours:           cfg.Hours,
		WindowHours:     cfg.WindowHours,
		TargetInterval:  cfg.TargetInterval,
		Controller:      cfg.Controller,
		MaxUBER:         cfg.MaxUBER,
		Survived:        true,
		ChipReports:     chips,
		Quarantined:     quarantined,
		PartialCoverage: len(quarantined) > 0,
	}
	for _, c := range chips {
		rep.Survived = rep.Survived && c.Survived
		rep.WorstUBER = math.Max(rep.WorstUBER, c.UBER)
		rep.TotalUEEvents += c.UEEvents
		rep.TotalViolationWindow += c.ViolationWindows
		rep.MeanExtendedFraction += c.ExtendedFraction / float64(len(chips))
	}
	if reg := cfg.Telemetry; reg != nil {
		// Campaign-level series are written here, sequentially, after the
		// fleet joins — single-writer gauges, so no chip labels needed.
		reg.Counter("soak_chips_total").Add(int64(cfg.Chips))
		for _, c := range chips {
			if c.Survived {
				reg.Counter("soak_chips_survived_total").Inc()
			}
		}
		reg.Gauge("soak_worst_uber").Set(rep.WorstUBER)
		reg.Gauge("soak_mean_extended_fraction").Set(rep.MeanExtendedFraction)
		rep.Telemetry = reg.Snapshot()
		traces := make([]telemetry.Trace, len(results))
		for i, r := range results {
			traces[i] = telemetry.Trace{Source: "chip" + strconv.Itoa(i), Events: r.trace}
		}
		rep.TraceEvents = telemetry.Merge(traces...)
	}
	return rep
}

// chipSoakResult carries one chip's report plus its trace ring contents
// (nil when the campaign is uninstrumented) back from the worker pool.
type chipSoakResult struct {
	rep   ChipSoakReport
	trace []telemetry.Event
}

// soakChip runs one chip's full campaign in one shot (the non-checkpointed
// path): construct the stack, run every window, finalize.
func soakChip(ctx context.Context, cfg SoakConfig, idx int, seed uint64) (chipSoakResult, error) {
	r, err := newSoakRunner(cfg, idx, seed)
	if err != nil {
		return chipSoakResult{rep: ChipSoakReport{Chip: idx, Seed: seed}},
			fmt.Errorf("soak chip %d: %w", idx, err)
	}
	if _, err := r.runWindows(ctx, 0); err != nil {
		return chipSoakResult{rep: r.rep}, fmt.Errorf("soak chip %d: %w", idx, err)
	}
	return r.finalize(), nil
}

// selectResidentWords picks the resident data set: the words whose contents
// are hardest to keep alive at the extended interval, in address order.
//   - words holding VRT cells (they escape profiles in their long state and
//     come back as escapes when a burst forces them low, §2.3.1);
//   - words with >= 2 cells marginal at the target (they only fail when a
//     temperature excursion shortens retention, Equation 1);
//   - words with a true failing cell at the target (profiling finds and
//     remaps these, populating the spare segment with live data).
func selectResidentWords(st *memctrl.Station, shield *mitigate.ArchShield, target float64, limit int) []mitigate.WordAddr {
	g := st.Device().Geometry()
	type wordClass struct{ vrt, marginal, failing int }
	classes := map[mitigate.WordAddr]*wordClass{}
	for _, c := range st.Device().Cells(st.Clock()) {
		a := g.AddrOf(c.Bit)
		wa := mitigate.WordAddr{Bank: a.Bank, Row: a.Row, Word: a.Word}
		if shield.InReservedSegment(wa) {
			continue
		}
		cl := classes[wa]
		if cl == nil {
			cl = &wordClass{}
			classes[wa] = cl
		}
		switch {
		case c.VRT:
			cl.vrt++
		case c.Mu <= target*1.25:
			cl.failing++
		case c.Mu <= target*2:
			cl.marginal++
		}
	}
	addrs := make([]mitigate.WordAddr, 0, len(classes))
	for wa := range classes {
		addrs = append(addrs, wa)
	}
	sortWordAddrs(addrs)
	pick := func(keep func(*wordClass) bool, quota int, out []mitigate.WordAddr) []mitigate.WordAddr {
		for _, wa := range addrs {
			if quota <= 0 || len(out) >= limit {
				break
			}
			if keep(classes[wa]) && !containsAddr(out, wa) {
				out = append(out, wa)
				quota--
			}
		}
		return out
	}
	// Half the residency goes to words profiling will find and remap
	// (populating the spare segment with live data — the targeted-arrival
	// channel's substrate); the rest splits between VRT words (§2.3.1
	// escapes) and excursion-marginal words (Equation 1).
	var out []mitigate.WordAddr
	out = pick(func(c *wordClass) bool { return c.failing > 0 }, limit/2, out)
	out = pick(func(c *wordClass) bool { return c.vrt > 0 }, limit/4, out)
	out = pick(func(c *wordClass) bool { return c.marginal >= 2 }, limit-len(out), out)
	sortWordAddrs(out)
	return out
}

func containsAddr(s []mitigate.WordAddr, wa mitigate.WordAddr) bool {
	for _, a := range s {
		if a == wa {
			return true
		}
	}
	return false
}

func sortWordAddrs(addrs []mitigate.WordAddr) {
	slices.SortFunc(addrs, func(a, b mitigate.WordAddr) int {
		if a.Bank != b.Bank {
			return a.Bank - b.Bank
		}
		if a.Row != b.Row {
			return a.Row - b.Row
		}
		return a.Word - b.Word
	})
}

// cellsByPhysicalWord groups the device's current weak cells by the word
// that physically contains them.
func cellsByPhysicalWord(st *memctrl.Station) map[mitigate.WordAddr][]dram.CellInfo {
	g := st.Device().Geometry()
	out := map[mitigate.WordAddr][]dram.CellInfo{}
	for _, c := range st.Device().Cells(st.Clock()) {
		a := g.AddrOf(c.Bit)
		wa := mitigate.WordAddr{Bank: a.Bank, Row: a.Row, Word: a.Word}
		out[wa] = append(out[wa], c)
	}
	return out
}

// stressPayload builds the resident value for a word: a per-word base
// pattern with every known weak cell's bit set to its charged (leak-prone)
// value, so retention failures in the physical word actually corrupt data.
func stressPayload(wa mitigate.WordAddr, cells []dram.CellInfo) uint64 {
	h := uint64(wa.Bank)<<40 ^ uint64(wa.Row)<<20 ^ uint64(wa.Word)
	h *= 0x9e3779b97f4a7c15
	val := 0xa5a5a5a5a5a5a5a5 ^ h
	for _, c := range cells {
		bit := c.Bit % 64
		if c.ChargedVal == 1 {
			val |= 1 << bit
		} else {
			val &^= 1 << bit
		}
	}
	return val
}
