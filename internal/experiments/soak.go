package experiments

// Long-horizon soak campaigns: a fleet of chips runs for simulated weeks at
// an extended refresh interval while a fault injector drives the Section
// 2.3 hazards against them, and the firmware resilience controller (or,
// for the baseline, nothing) defends the ECC budget. The survival report
// quantifies what the paper argues qualitatively: active profiling plus a
// closed loop on scrub telemetry keeps the uncorrectable bit error rate
// inside the target, while an open-loop system accumulates escapes until
// SECDED is overwhelmed.

import (
	"context"
	"fmt"
	"math"
	"slices"
	"strconv"

	"reaper/internal/core"
	"reaper/internal/dram"
	"reaper/internal/faultinject"
	"reaper/internal/firmware"
	"reaper/internal/memctrl"
	"reaper/internal/mitigate"
	"reaper/internal/parallel"
	"reaper/internal/rng"
	"reaper/internal/scrub"
	"reaper/internal/telemetry"
)

// SoakConfig configures a fleet soak campaign.
type SoakConfig struct {
	// Chips is the fleet size; each chip gets a derived seed, its own
	// station, injector, mitigation stack, and firmware manager.
	Chips int `json:"chips"`
	// Seed drives the whole campaign (chip seeds and scenario seeds are
	// split from it).
	Seed uint64 `json:"seed"`
	// Hours is the soak horizon in simulated hours.
	Hours float64 `json:"hours"`
	// WindowHours is the scrub window (one ECC sweep + telemetry report
	// per window). Defaults to 1.
	WindowHours float64 `json:"window_hours"`
	// TargetInterval is the extended refresh interval under test.
	TargetInterval float64 `json:"target_interval"`
	// CadenceHours is the open-loop reprofiling cadence.
	CadenceHours float64 `json:"cadence_hours"`
	// Scenario overrides the fault scenario; nil uses DefaultScenario
	// (per-chip seeds are always re-derived from Seed).
	Scenario *faultinject.Scenario `json:"scenario,omitempty"`
	// Controller enables the firmware resilience controller. Off = the
	// open-loop baseline arm.
	Controller bool `json:"controller"`
	// MaxUBER is the survival criterion: a chip survives if its
	// cumulative uncorrectable bit error rate stays at or below this.
	MaxUBER float64 `json:"max_uber"`
	// Workers sizes the fleet worker pool (0 = NumCPU). Results are
	// identical at any worker count.
	Workers int `json:"workers"`
	// Chip is the base chip spec; Seed and Chamber are overridden per
	// chip (soak chips are chamber-less so injected thermal excursions
	// control the ambient directly).
	Chip ChipSpec `json:"-"`
	// SpareFraction sizes the ArchShield reserved segment. Defaults 0.04.
	SpareFraction float64 `json:"spare_fraction"`
	// ResidentWords caps the resident data set per chip. Defaults to 96.
	ResidentWords int `json:"resident_words"`
	// Telemetry, when non-nil, instruments the campaign: every chip's
	// firmware manager, fault injector, and scrubber record into it, each
	// chip gets its own trace ring, and the final report embeds the
	// registry snapshot plus the merged fleet timeline. The snapshot is
	// byte-identical at any worker count (see internal/telemetry). Nil
	// (the default) leaves the report exactly as before.
	Telemetry *telemetry.Registry `json:"-"`
	// TraceCapacity sizes each chip's trace ring when Telemetry is set.
	// Defaults to telemetry.DefaultTraceCapacity.
	TraceCapacity int `json:"-"`
}

// DefaultSoakConfig is the standard two-week fleet soak at 1024 ms under
// the default fault scenario.
func DefaultSoakConfig(seed uint64) SoakConfig {
	return SoakConfig{
		Chips:          4,
		Seed:           seed,
		Hours:          14 * 24,
		WindowHours:    1,
		TargetInterval: 1.024,
		CadenceHours:   24,
		Controller:     true,
		MaxUBER:        1e-4,
		Chip:           ChipSpec{Bits: 8 << 20, WeakScale: 20, Vendor: dram.VendorB()},
		SpareFraction:  0.04,
		ResidentWords:  96,
	}
}

func (c *SoakConfig) fillDefaults() error {
	if c.Chips <= 0 {
		return fmt.Errorf("soak: need at least one chip")
	}
	if c.Hours <= 0 {
		return fmt.Errorf("soak: non-positive horizon")
	}
	if c.TargetInterval <= 0 {
		return fmt.Errorf("soak: non-positive target interval")
	}
	if c.WindowHours <= 0 {
		c.WindowHours = 1
	}
	if c.CadenceHours <= 0 {
		c.CadenceHours = 24
	}
	if c.MaxUBER <= 0 {
		c.MaxUBER = 1e-4
	}
	if c.SpareFraction <= 0 {
		c.SpareFraction = 0.04
	}
	if c.ResidentWords <= 0 {
		c.ResidentWords = 96
	}
	if c.Chip.Bits == 0 {
		c.Chip = DefaultSoakConfig(c.Seed).Chip
	}
	return nil
}

// ChipSoakReport is one chip's survival record.
type ChipSoakReport struct {
	Chip int    `json:"chip"`
	Seed uint64 `json:"seed"`

	Windows          int     `json:"windows"`
	ViolationWindows int     `json:"violation_windows"` // windows with >= 1 UE
	UEEvents         int     `json:"ue_events"`         // word-level UE observations
	CorrectedTotal   int     `json:"corrected_total"`
	WordsScanned     int64   `json:"words_scanned"`
	UBER             float64 `json:"uber"`
	Survived         bool    `json:"survived"`

	Rounds            int     `json:"rounds"`
	EarlyRounds       int     `json:"early_rounds"`
	Aborts            int     `json:"aborts"`
	WidenSteps        int     `json:"widen_steps"`
	DegradeEvents     int     `json:"degrade_events"`
	RecoverEvents     int     `json:"recover_events"`
	FinalDegradeLevel int     `json:"final_degrade_level"`
	FinalIntervalMs   float64 `json:"final_interval_ms"`
	SparesExhausted   bool    `json:"spares_exhausted"`
	ExtendedFraction  float64 `json:"extended_fraction"`

	FaultCounts      map[string]int      `json:"fault_counts"`
	FaultEvents      []faultinject.Event `json:"fault_events"`
	ControllerEvents []firmware.Event    `json:"controller_events"`
}

// SoakReport is the campaign's survival report (serializable to JSON).
type SoakReport struct {
	Chips          int     `json:"chips"`
	Seed           uint64  `json:"seed"`
	Hours          float64 `json:"hours"`
	WindowHours    float64 `json:"window_hours"`
	TargetInterval float64 `json:"target_interval"`
	Controller     bool    `json:"controller"`
	MaxUBER        float64 `json:"max_uber"`

	Survived             bool    `json:"survived"` // every chip within MaxUBER
	WorstUBER            float64 `json:"worst_uber"`
	TotalUEEvents        int     `json:"total_ue_events"`
	TotalViolationWindow int     `json:"total_violation_windows"`
	MeanExtendedFraction float64 `json:"mean_extended_fraction"`

	ChipReports []ChipSoakReport `json:"chip_reports"`

	// Telemetry and TraceEvents are present only when SoakConfig.Telemetry
	// was set: the final metrics snapshot and the fleet trace timeline,
	// merged across chips in (clock, source, seq) order. Both serialize
	// with omitempty so uninstrumented reports are unchanged byte for byte.
	Telemetry   *telemetry.Snapshot `json:"telemetry,omitempty"`
	TraceEvents []telemetry.Event   `json:"trace_events,omitempty"`
}

// Soak runs the campaign. Chips run concurrently on a worker pool; each
// chip's simulation is fully sequential and seeded independently, so the
// report is bit-for-bit identical at any worker count.
func Soak(ctx context.Context, cfg SoakConfig) (*SoakReport, error) {
	if err := cfg.fillDefaults(); err != nil {
		return nil, err
	}
	// Derive per-chip seeds up front so the fleet order is fixed.
	root := rng.New(cfg.Seed)
	seeds := make([]uint64, cfg.Chips)
	for i := range seeds {
		seeds[i] = root.Split(uint64(i) + 1).Uint64()
	}
	ctx = telemetry.WithRegistry(ctx, cfg.Telemetry)
	results, err := parallel.Map(ctx, cfg.Chips, cfg.Workers,
		func(ctx context.Context, i int) (chipSoakResult, error) {
			return soakChip(ctx, cfg, i, seeds[i])
		})
	if err != nil {
		return nil, err
	}
	chips := make([]ChipSoakReport, len(results))
	for i, r := range results {
		chips[i] = r.rep
	}
	rep := &SoakReport{
		Chips:          cfg.Chips,
		Seed:           cfg.Seed,
		Hours:          cfg.Hours,
		WindowHours:    cfg.WindowHours,
		TargetInterval: cfg.TargetInterval,
		Controller:     cfg.Controller,
		MaxUBER:        cfg.MaxUBER,
		Survived:       true,
		ChipReports:    chips,
	}
	for _, c := range chips {
		rep.Survived = rep.Survived && c.Survived
		rep.WorstUBER = math.Max(rep.WorstUBER, c.UBER)
		rep.TotalUEEvents += c.UEEvents
		rep.TotalViolationWindow += c.ViolationWindows
		rep.MeanExtendedFraction += c.ExtendedFraction / float64(cfg.Chips)
	}
	if reg := cfg.Telemetry; reg != nil {
		// Campaign-level series are written here, sequentially, after the
		// fleet joins — single-writer gauges, so no chip labels needed.
		reg.Counter("soak_chips_total").Add(int64(cfg.Chips))
		for _, c := range chips {
			if c.Survived {
				reg.Counter("soak_chips_survived_total").Inc()
			}
		}
		reg.Gauge("soak_worst_uber").Set(rep.WorstUBER)
		reg.Gauge("soak_mean_extended_fraction").Set(rep.MeanExtendedFraction)
		rep.Telemetry = reg.Snapshot()
		traces := make([]telemetry.Trace, len(results))
		for i, r := range results {
			traces[i] = telemetry.Trace{Source: "chip" + strconv.Itoa(i), Events: r.trace}
		}
		rep.TraceEvents = telemetry.Merge(traces...)
	}
	return rep, nil
}

// chipSoakResult carries one chip's report plus its trace ring contents
// (nil when the campaign is uninstrumented) back from the worker pool.
type chipSoakResult struct {
	rep   ChipSoakReport
	trace []telemetry.Event
}

// soakChip runs one chip's full campaign.
func soakChip(ctx context.Context, cfg SoakConfig, idx int, seed uint64) (chipSoakResult, error) {
	rep := ChipSoakReport{Chip: idx, Seed: seed}
	fail := func(err error) (chipSoakResult, error) {
		return chipSoakResult{rep: rep}, fmt.Errorf("soak chip %d: %w", idx, err)
	}

	spec := cfg.Chip
	spec.Seed = seed
	spec.Chamber = false
	st, err := spec.NewStation()
	if err != nil {
		return fail(err)
	}
	st.SetRefreshInterval(cfg.TargetInterval)

	shield, err := mitigate.NewArchShield(st, cfg.SpareFraction)
	if err != nil {
		return fail(err)
	}
	mem, err := scrub.NewECCMemory(st)
	if err != nil {
		return fail(err)
	}
	mem.SetMapper(shield.Resolve)
	scr, err := scrub.NewScrubber(mem)
	if err != nil {
		return fail(err)
	}

	scen := faultinject.DefaultScenario(seed^0xFA177, cfg.TargetInterval)
	if cfg.Scenario != nil {
		scen = *cfg.Scenario
		scen.Seed = scen.Seed ^ (uint64(idx)+1)*0x9e3779b97f4a7c15
	}
	inj, err := faultinject.New(st, cfg.TargetInterval, scen)
	if err != nil {
		return fail(err)
	}
	inj.AttachShield(shield)

	resident := selectResidentWords(st, shield, cfg.TargetInterval, cfg.ResidentWords)
	writeResident := func() error {
		cells := cellsByPhysicalWord(st)
		for _, wa := range resident {
			if err := mem.Write(wa, stressPayload(wa, cells[shield.Resolve(wa)])); err != nil {
				return err
			}
		}
		return nil
	}

	mgr, err := firmware.New(st, firmware.Config{
		TargetInterval: cfg.TargetInterval,
		Reach:          core.ReachConditions{DeltaInterval: 0.25},
		Profiling:      core.Options{Iterations: 4, FreshRandomPerIteration: true, Seed: seed},
		CadenceHours:   cfg.CadenceHours,
		PreRound:       inj.RoundGate(),
		Install:        shield.Install,
		AfterRound:     writeResident,
		Resilience:     firmware.ResilienceConfig{Enabled: cfg.Controller},
	})
	if err != nil {
		return fail(err)
	}

	// Instrument the chip's components: counters aggregate commutatively
	// across the fleet, gauges carry the chip label, and the chip owns its
	// trace ring outright (merged into the fleet timeline by Soak).
	var tracer *telemetry.Tracer
	if reg := cfg.Telemetry; reg != nil {
		capacity := cfg.TraceCapacity
		if capacity <= 0 {
			capacity = telemetry.DefaultTraceCapacity
		}
		tracer = telemetry.NewTracer(capacity)
		chipLabel := telemetry.L("chip", strconv.Itoa(idx))
		mgr.Instrument(reg, tracer, chipLabel)
		inj.Instrument(reg, tracer, chipLabel)
		scr.Instrument(reg, tracer, chipLabel)
	}

	if err := writeResident(); err != nil {
		return fail(err)
	}

	windowSec := cfg.WindowHours * 3600
	end := st.Clock() + cfg.Hours*3600
	for st.Clock() < end-1e-6 {
		if err := ctx.Err(); err != nil {
			return fail(err)
		}
		inj.RunUntil(math.Min(st.Clock()+windowSec, end))
		if _, err := mgr.Tick(ctx); err != nil {
			return fail(err)
		}
		srep, err := scr.Scrub()
		if err != nil {
			return fail(err)
		}
		rep.Windows++
		rep.CorrectedTotal += srep.Corrected
		rep.WordsScanned += int64(srep.WordsScanned)
		if srep.Uncorrectable > 0 {
			rep.ViolationWindows++
			rep.UEEvents += srep.Uncorrectable
			// Page-reload model: the OS restores each SECDED-fatal word
			// from backing store, so the word is stressed again next
			// window rather than staying frozen at its corrupted value.
			cells := cellsByPhysicalWord(st)
			for _, wa := range srep.Uncorrectables {
				if err := mem.Write(wa, stressPayload(wa, cells[shield.Resolve(wa)])); err != nil {
					return fail(err)
				}
			}
		}
		mgr.ReportScrub(firmware.Telemetry{
			WindowSeconds: windowSec,
			Corrected:     srep.Corrected,
			Uncorrectable: srep.Uncorrectable,
		})
	}

	// UBER: a word-level UE is ~2 wrong bits out of the 64 data bits read.
	if rep.WordsScanned > 0 {
		rep.UBER = 2 * float64(rep.UEEvents) / (64 * float64(rep.WordsScanned))
	}
	rep.Survived = rep.UBER <= cfg.MaxUBER
	rep.Rounds = mgr.Rounds()
	rep.EarlyRounds = mgr.EarlyRounds()
	rep.Aborts = mgr.Aborts()
	rep.WidenSteps = mgr.WidenSteps()
	rep.FinalDegradeLevel = mgr.DegradeLevel()
	rep.FinalIntervalMs = mgr.CurrentInterval() * 1000
	rep.SparesExhausted = mgr.SparesExhausted()
	rep.ExtendedFraction = mgr.ExtendedFraction()
	rep.FaultCounts = inj.Counts()
	rep.FaultEvents = inj.Events()
	rep.ControllerEvents = mgr.Events()
	for _, e := range rep.ControllerEvents {
		switch e.Kind {
		case firmware.EventDegrade:
			rep.DegradeEvents++
		case firmware.EventRecover:
			rep.RecoverEvents++
		}
	}
	return chipSoakResult{rep: rep, trace: tracer.Events()}, nil
}

// selectResidentWords picks the resident data set: the words whose contents
// are hardest to keep alive at the extended interval, in address order.
//   - words holding VRT cells (they escape profiles in their long state and
//     come back as escapes when a burst forces them low, §2.3.1);
//   - words with >= 2 cells marginal at the target (they only fail when a
//     temperature excursion shortens retention, Equation 1);
//   - words with a true failing cell at the target (profiling finds and
//     remaps these, populating the spare segment with live data).
func selectResidentWords(st *memctrl.Station, shield *mitigate.ArchShield, target float64, limit int) []mitigate.WordAddr {
	g := st.Device().Geometry()
	type wordClass struct{ vrt, marginal, failing int }
	classes := map[mitigate.WordAddr]*wordClass{}
	for _, c := range st.Device().Cells(st.Clock()) {
		a := g.AddrOf(c.Bit)
		wa := mitigate.WordAddr{Bank: a.Bank, Row: a.Row, Word: a.Word}
		if shield.InReservedSegment(wa) {
			continue
		}
		cl := classes[wa]
		if cl == nil {
			cl = &wordClass{}
			classes[wa] = cl
		}
		switch {
		case c.VRT:
			cl.vrt++
		case c.Mu <= target*1.25:
			cl.failing++
		case c.Mu <= target*2:
			cl.marginal++
		}
	}
	addrs := make([]mitigate.WordAddr, 0, len(classes))
	for wa := range classes {
		addrs = append(addrs, wa)
	}
	sortWordAddrs(addrs)
	pick := func(keep func(*wordClass) bool, quota int, out []mitigate.WordAddr) []mitigate.WordAddr {
		for _, wa := range addrs {
			if quota <= 0 || len(out) >= limit {
				break
			}
			if keep(classes[wa]) && !containsAddr(out, wa) {
				out = append(out, wa)
				quota--
			}
		}
		return out
	}
	// Half the residency goes to words profiling will find and remap
	// (populating the spare segment with live data — the targeted-arrival
	// channel's substrate); the rest splits between VRT words (§2.3.1
	// escapes) and excursion-marginal words (Equation 1).
	var out []mitigate.WordAddr
	out = pick(func(c *wordClass) bool { return c.failing > 0 }, limit/2, out)
	out = pick(func(c *wordClass) bool { return c.vrt > 0 }, limit/4, out)
	out = pick(func(c *wordClass) bool { return c.marginal >= 2 }, limit-len(out), out)
	sortWordAddrs(out)
	return out
}

func containsAddr(s []mitigate.WordAddr, wa mitigate.WordAddr) bool {
	for _, a := range s {
		if a == wa {
			return true
		}
	}
	return false
}

func sortWordAddrs(addrs []mitigate.WordAddr) {
	slices.SortFunc(addrs, func(a, b mitigate.WordAddr) int {
		if a.Bank != b.Bank {
			return a.Bank - b.Bank
		}
		if a.Row != b.Row {
			return a.Row - b.Row
		}
		return a.Word - b.Word
	})
}

// cellsByPhysicalWord groups the device's current weak cells by the word
// that physically contains them.
func cellsByPhysicalWord(st *memctrl.Station) map[mitigate.WordAddr][]dram.CellInfo {
	g := st.Device().Geometry()
	out := map[mitigate.WordAddr][]dram.CellInfo{}
	for _, c := range st.Device().Cells(st.Clock()) {
		a := g.AddrOf(c.Bit)
		wa := mitigate.WordAddr{Bank: a.Bank, Row: a.Row, Word: a.Word}
		out[wa] = append(out[wa], c)
	}
	return out
}

// stressPayload builds the resident value for a word: a per-word base
// pattern with every known weak cell's bit set to its charged (leak-prone)
// value, so retention failures in the physical word actually corrupt data.
func stressPayload(wa mitigate.WordAddr, cells []dram.CellInfo) uint64 {
	h := uint64(wa.Bank)<<40 ^ uint64(wa.Row)<<20 ^ uint64(wa.Word)
	h *= 0x9e3779b97f4a7c15
	val := 0xa5a5a5a5a5a5a5a5 ^ h
	for _, c := range cells {
		bit := c.Bit % 64
		if c.ChargedVal == 1 {
			val |= 1 << bit
		} else {
			val &^= 1 << bit
		}
	}
	return val
}
