package experiments

import (
	"context"
	"fmt"
	"math"
	"strconv"

	"reaper/internal/checkpoint"
	"reaper/internal/core"
	"reaper/internal/dram"
	"reaper/internal/faultinject"
	"reaper/internal/firmware"
	"reaper/internal/memctrl"
	"reaper/internal/mitigate"
	"reaper/internal/patterns"
	"reaper/internal/scrub"
	"reaper/internal/telemetry"
)

// soakRunner is one chip's live campaign state: the full simulation stack
// plus the report accumulators the window loop maintains. The non-checkpoint
// path constructs one, runs every window, and finalizes; the checkpointed
// path keeps runners alive across segment barriers, encoding each one's
// state after every segment so a killed campaign resumes — or a panicked
// shard retries — from the last barrier with bit-identical behavior.
type soakRunner struct {
	cfg  SoakConfig //lint:serialized-elsewhere campaign config; resume requires the identical config, guarded by the campaign-meta digest
	idx  int
	seed uint64

	st       *memctrl.Station
	shield   *mitigate.ArchShield
	mem      *scrub.ECCMemory
	scr      *scrub.Scrubber
	inj      *faultinject.Injector
	mgr      *firmware.Manager
	tracer   *telemetry.Tracer
	resident []mitigate.WordAddr

	rep ChipSoakReport
	end float64 // station clock at campaign end
}

// newSoakRunner builds the chip stack. The construction sequence (and thus
// every rng draw) is identical to the original monolithic soakChip, so
// pre-existing campaign goldens are unchanged.
func newSoakRunner(cfg SoakConfig, idx int, seed uint64) (*soakRunner, error) {
	r := &soakRunner{cfg: cfg, idx: idx, seed: seed}
	r.rep = ChipSoakReport{Chip: idx, Seed: seed}

	spec := cfg.Chip
	spec.Seed = seed
	spec.Chamber = false
	st, err := spec.NewStation()
	if err != nil {
		return nil, err
	}
	r.st = st
	st.SetRefreshInterval(cfg.TargetInterval)

	r.shield, err = mitigate.NewArchShield(st, cfg.SpareFraction)
	if err != nil {
		return nil, err
	}
	r.mem, err = scrub.NewECCMemory(st)
	if err != nil {
		return nil, err
	}
	r.mem.SetMapper(r.shield.Resolve)
	r.scr, err = scrub.NewScrubber(r.mem)
	if err != nil {
		return nil, err
	}

	scen := faultinject.DefaultScenario(seed^0xFA177, cfg.TargetInterval)
	if cfg.Scenario != nil {
		scen = *cfg.Scenario
		scen.Seed = scen.Seed ^ (uint64(idx)+1)*0x9e3779b97f4a7c15
	}
	r.inj, err = faultinject.New(st, cfg.TargetInterval, scen)
	if err != nil {
		return nil, err
	}
	r.inj.AttachShield(r.shield)

	r.resident = selectResidentWords(st, r.shield, cfg.TargetInterval, cfg.ResidentWords)

	r.mgr, err = firmware.New(st, firmware.Config{
		TargetInterval: cfg.TargetInterval,
		Reach:          core.ReachConditions{DeltaInterval: 0.25},
		Profiling:      core.Options{Iterations: 4, FreshRandomPerIteration: true, Seed: seed},
		CadenceHours:   cfg.CadenceHours,
		PreRound:       r.inj.RoundGate(),
		Install:        r.shield.Install,
		AfterRound:     r.writeResident,
		Resilience:     firmware.ResilienceConfig{Enabled: cfg.Controller},
	})
	if err != nil {
		return nil, err
	}

	// Instrument the chip's components: counters aggregate commutatively
	// across the fleet, gauges carry the chip label, and the chip owns its
	// trace ring outright (merged into the fleet timeline by Soak).
	if reg := cfg.Telemetry; reg != nil {
		capacity := cfg.TraceCapacity
		if capacity <= 0 {
			capacity = telemetry.DefaultTraceCapacity
		}
		r.tracer = telemetry.NewTracer(capacity)
		chipLabel := telemetry.L("chip", strconv.Itoa(idx))
		r.mgr.Instrument(reg, r.tracer, chipLabel)
		r.inj.Instrument(reg, r.tracer, chipLabel)
		r.scr.Instrument(reg, r.tracer, chipLabel)
	}

	if err := r.writeResident(); err != nil {
		return nil, err
	}
	r.end = st.Clock() + cfg.Hours*3600
	return r, nil
}

// writeResident rewrites the resident data set (the AfterRound hook).
func (r *soakRunner) writeResident() error {
	cells := cellsByPhysicalWord(r.st)
	for _, wa := range r.resident {
		if err := r.mem.Write(wa, stressPayload(wa, cells[r.shield.Resolve(wa)])); err != nil {
			return err
		}
	}
	return nil
}

// done reports whether the campaign horizon has been reached.
func (r *soakRunner) done() bool { return r.st.Clock() >= r.end-1e-6 }

// runWindows advances the campaign by up to maxWindows scrub windows
// (maxWindows <= 0 means run to the horizon) and reports whether the
// horizon was reached. The loop body is byte-identical regardless of how
// the windows are batched into calls.
func (r *soakRunner) runWindows(ctx context.Context, maxWindows int) (bool, error) {
	windowSec := r.cfg.WindowHours * 3600
	for ran := 0; !r.done() && (maxWindows <= 0 || ran < maxWindows); ran++ {
		if err := ctx.Err(); err != nil {
			return false, err
		}
		r.inj.RunUntil(math.Min(r.st.Clock()+windowSec, r.end))
		if _, err := r.mgr.Tick(ctx); err != nil {
			return false, err
		}
		srep, err := r.scr.Scrub()
		if err != nil {
			return false, err
		}
		r.rep.Windows++
		r.rep.CorrectedTotal += srep.Corrected
		r.rep.WordsScanned += int64(srep.WordsScanned)
		if srep.Uncorrectable > 0 {
			r.rep.ViolationWindows++
			r.rep.UEEvents += srep.Uncorrectable
			// Page-reload model: the OS restores each SECDED-fatal word
			// from backing store, so the word is stressed again next
			// window rather than staying frozen at its corrupted value.
			cells := cellsByPhysicalWord(r.st)
			for _, wa := range srep.Uncorrectables {
				if err := r.mem.Write(wa, stressPayload(wa, cells[r.shield.Resolve(wa)])); err != nil {
					return false, err
				}
			}
		}
		r.mgr.ReportScrub(firmware.Telemetry{
			WindowSeconds: windowSec,
			Corrected:     srep.Corrected,
			Uncorrectable: srep.Uncorrectable,
		})
	}
	return r.done(), nil
}

// finalize computes the chip's survival record from the accumulated state.
func (r *soakRunner) finalize() chipSoakResult {
	rep := r.rep
	// UBER: a word-level UE is ~2 wrong bits out of the 64 data bits read.
	if rep.WordsScanned > 0 {
		rep.UBER = 2 * float64(rep.UEEvents) / (64 * float64(rep.WordsScanned))
	}
	rep.Survived = rep.UBER <= r.cfg.MaxUBER
	rep.Rounds = r.mgr.Rounds()
	rep.EarlyRounds = r.mgr.EarlyRounds()
	rep.Aborts = r.mgr.Aborts()
	rep.WidenSteps = r.mgr.WidenSteps()
	rep.FinalDegradeLevel = r.mgr.DegradeLevel()
	rep.FinalIntervalMs = r.mgr.CurrentInterval() * 1000
	rep.SparesExhausted = r.mgr.SparesExhausted()
	rep.ExtendedFraction = r.mgr.ExtendedFraction()
	rep.FaultCounts = r.inj.Counts()
	rep.FaultEvents = r.inj.Events()
	rep.ControllerEvents = r.mgr.Events()
	for _, e := range rep.ControllerEvents {
		switch e.Kind {
		case firmware.EventDegrade:
			rep.DegradeEvents++
		case firmware.EventRecover:
			rep.RecoverEvents++
		}
	}
	return chipSoakResult{rep: rep, trace: r.tracer.Events()}
}

// resolveRowData adapts patterns.Parse to the dram restore resolver.
func resolveRowData(name string) (dram.RowData, error) {
	p, err := patterns.Parse(name)
	if err != nil {
		return nil, err
	}
	return p, nil
}

// encodeState serializes the runner's full campaign state: the report
// accumulators, the resident set, and every component's checkpoint surface.
func (r *soakRunner) encodeState() ([]byte, error) {
	e := checkpoint.NewEncoder()
	e.Section("soak.runner")
	e.Int(r.idx)
	e.U64(r.seed)
	e.F64(r.end)
	e.Int(r.rep.Windows)
	e.Int(r.rep.ViolationWindows)
	e.Int(r.rep.UEEvents)
	e.Int(r.rep.CorrectedTotal)
	e.I64(r.rep.WordsScanned)
	e.Len(len(r.resident))
	for _, wa := range r.resident {
		e.Int(wa.Bank)
		e.Int(wa.Row)
		e.Int(wa.Word)
	}
	r.st.EncodeState(e)
	// The device travels as a delta against its seed-derived construction
	// (dram.EncodeDelta), not as the dense population dump: a soak chip's
	// divergence is a handful of injected cells, forced VRT schedules and
	// stuck bits, so per-chip blobs stay small enough to write at every
	// barrier even at million-chip scale. restoreState rebuilds the same
	// fresh device (newSoakRunner) before replaying the delta.
	if err := r.st.Device().EncodeDelta(e); err != nil {
		return nil, err
	}
	r.shield.EncodeState(e)
	r.mem.EncodeState(e)
	if err := r.scr.EncodeState(e); err != nil {
		return nil, err
	}
	r.inj.EncodeState(e)
	if err := r.mgr.EncodeState(e); err != nil {
		return nil, err
	}
	r.tracer.EncodeState(e)
	return e.Data(), nil
}

// restoreState loads a blob produced by encodeState into a freshly
// constructed runner for the same (cfg, idx, seed).
func (r *soakRunner) restoreState(blob []byte) error {
	d := checkpoint.NewDecoder(blob)
	d.Section("soak.runner")
	idx, seed := d.Int(), d.U64()
	if err := d.Err(); err != nil {
		return err
	}
	if idx != r.idx || seed != r.seed {
		return fmt.Errorf("soak: restore: blob is chip %d seed %#x, runner is chip %d seed %#x",
			idx, seed, r.idx, r.seed)
	}
	r.end = d.F64()
	r.rep.Windows = d.Int()
	r.rep.ViolationWindows = d.Int()
	r.rep.UEEvents = d.Int()
	r.rep.CorrectedTotal = d.Int()
	r.rep.WordsScanned = d.I64()
	nr := d.Len(1 << 24)
	if err := d.Err(); err != nil {
		return err
	}
	r.resident = make([]mitigate.WordAddr, nr)
	for i := range r.resident {
		r.resident[i] = mitigate.WordAddr{Bank: d.Int(), Row: d.Int(), Word: d.Int()}
	}
	if err := r.st.RestoreState(d); err != nil {
		return fmt.Errorf("soak chip %d: station: %w", r.idx, err)
	}
	if err := r.st.Device().RestoreDelta(d, resolveRowData); err != nil {
		return fmt.Errorf("soak chip %d: device: %w", r.idx, err)
	}
	if err := r.shield.RestoreState(d); err != nil {
		return fmt.Errorf("soak chip %d: shield: %w", r.idx, err)
	}
	if err := r.mem.RestoreState(d); err != nil {
		return fmt.Errorf("soak chip %d: ecc memory: %w", r.idx, err)
	}
	if err := r.scr.RestoreState(d); err != nil {
		return fmt.Errorf("soak chip %d: scrubber: %w", r.idx, err)
	}
	if err := r.inj.RestoreState(d); err != nil {
		return fmt.Errorf("soak chip %d: injector: %w", r.idx, err)
	}
	if err := r.mgr.RestoreState(d); err != nil {
		return fmt.Errorf("soak chip %d: firmware: %w", r.idx, err)
	}
	// RestoreState on a nil tracer decodes and discards the serialized ring
	// (an uninstrumented campaign still carries the section marker).
	if err := r.tracer.RestoreState(d); err != nil {
		return fmt.Errorf("soak chip %d: tracer: %w", r.idx, err)
	}
	return d.Err()
}
