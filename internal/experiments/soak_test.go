package experiments

import (
	"context"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden soak report snapshots")

// testSoakConfig is the reduced campaign used by the acceptance tests: two
// chips, five simulated days, default fault scenario.
func testSoakConfig(seed uint64) SoakConfig {
	cfg := DefaultSoakConfig(seed)
	cfg.Chips = 2
	cfg.Hours = 120
	return cfg
}

// TestSoakControllerSurvivesWhereBaselineViolates is the PR's acceptance
// criterion: under the default fault scenario the closed-loop resilience
// controller keeps every chip's UBER within the configured target for the
// full horizon, while the identical open-loop system demonstrably violates
// it.
func TestSoakControllerSurvivesWhereBaselineViolates(t *testing.T) {
	ctx := context.Background()

	base := testSoakConfig(5)
	base.Controller = false
	baseline, err := Soak(ctx, base)
	if err != nil {
		t.Fatal(err)
	}
	if baseline.Survived {
		t.Fatalf("open-loop baseline survived (worst UBER %.3g <= %.3g); the scenario is too weak to mean anything",
			baseline.WorstUBER, baseline.MaxUBER)
	}

	ctl := testSoakConfig(5)
	ctl.Controller = true
	controlled, err := Soak(ctx, ctl)
	if err != nil {
		t.Fatal(err)
	}
	if !controlled.Survived {
		t.Fatalf("resilience controller failed the soak: worst UBER %.3g > %.3g",
			controlled.WorstUBER, controlled.MaxUBER)
	}
	if controlled.WorstUBER >= baseline.WorstUBER {
		t.Errorf("controller worst UBER %.3g not below baseline %.3g",
			controlled.WorstUBER, baseline.WorstUBER)
	}
	// The controller must actually have *done* something: early rounds,
	// and degradation on the chips that needed it.
	var early, degrades int
	for _, c := range controlled.ChipReports {
		early += c.EarlyRounds
		degrades += c.DegradeEvents
	}
	if early == 0 {
		t.Error("controller never scheduled an early reprofile")
	}
	if degrades == 0 {
		t.Error("controller never degraded the refresh interval")
	}
	t.Logf("baseline worst UBER %.3g (%d UE windows) vs controller %.3g (%d UE windows), %d early rounds, %d degrades",
		baseline.WorstUBER, baseline.TotalViolationWindow,
		controlled.WorstUBER, controlled.TotalViolationWindow, early, degrades)
}

// TestSoakDeterministicAcrossWorkers pins the fault-injection determinism
// guarantee: a fixed campaign seed produces a bit-for-bit identical
// survival report (including every fault event and controller event) at
// any worker count.
func TestSoakDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) *SoakReport {
		cfg := DefaultSoakConfig(9)
		cfg.Chips = 2
		cfg.Hours = 48
		cfg.Workers = workers
		rep, err := Soak(context.Background(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	seq := run(1)
	par := run(8)
	if !reflect.DeepEqual(seq, par) {
		t.Fatal("soak reports differ between workers=1 and workers=8")
	}
	seqJSON, err := json.Marshal(seq)
	if err != nil {
		t.Fatal(err)
	}
	parJSON, err := json.Marshal(par)
	if err != nil {
		t.Fatal(err)
	}
	if string(seqJSON) != string(parJSON) {
		t.Fatal("serialized soak reports not byte-identical across worker counts")
	}
}

// TestSoakReportSnapshot locks the pinned-seed quick-soak report against a
// golden file, so any change to the fault injector's draw sequence, the
// controller's policy ladder, or the report schema shows up as a diff.
// Regenerate intentionally with: go test ./internal/experiments/ -run
// Snapshot -update
func TestSoakReportSnapshot(t *testing.T) {
	cfg := DefaultSoakConfig(1)
	cfg.Chips = 2
	cfg.Hours = 48
	rep, err := Soak(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')

	golden := filepath.Join("testdata", "soak_quick_seed1.json")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", golden)
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if string(got) != string(want) {
		t.Fatalf("soak report drifted from golden snapshot %s (regenerate with -update if intentional)", golden)
	}
}

func TestSoakConfigValidation(t *testing.T) {
	ctx := context.Background()
	if _, err := Soak(ctx, SoakConfig{Chips: 0, Hours: 1, TargetInterval: 1}); err == nil {
		t.Error("zero chips not rejected")
	}
	if _, err := Soak(ctx, SoakConfig{Chips: 1, Hours: 0, TargetInterval: 1}); err == nil {
		t.Error("zero horizon not rejected")
	}
	if _, err := Soak(ctx, SoakConfig{Chips: 1, Hours: 1, TargetInterval: 0}); err == nil {
		t.Error("zero target interval not rejected")
	}
}
