package experiments

import (
	"context"
	"fmt"

	"reaper/internal/core"
	"reaper/internal/memctrl"
)

// ---------------------------------------------------------------------------
// Figures 9 and 10: the reach-condition tradeoff space — coverage and false
// positive contours (Fig 9) and runtime contours (Fig 10) over a grid of
// (Δ refresh interval, Δ temperature) reach conditions.
// ---------------------------------------------------------------------------

// Fig9Config drives the grid exploration.
type Fig9Config struct {
	Chip           ChipSpec
	TargetInterval float64
	TargetTempC    float64
	DeltaIntervals []float64
	DeltaTemps     []float64
	Iterations     int
	CoverageGoal   float64
	MaxIterations  int
	Seed           uint64

	// Workers bounds the pool exploring grid points concurrently; <= 0
	// means one worker per CPU. Results are identical at any worker count.
	Workers int
}

// DefaultFig9Config mirrors the paper's grid around a 1024 ms target.
func DefaultFig9Config() Fig9Config {
	return Fig9Config{
		Chip:           DefaultChipSpec(9),
		TargetInterval: 1.024,
		TargetTempC:    45,
		DeltaIntervals: []float64{0, 0.128, 0.25, 0.5, 1.0},
		DeltaTemps:     []float64{0, 2.5, 5, 10},
		Iterations:     16,
		CoverageGoal:   0.90,
		MaxIterations:  64,
		Seed:           9,
	}
}

// Fig9Fig10Tradeoff runs the grid; the returned points carry both the
// Figure 9 quantities (coverage, FPR at 16 iterations) and the Figure 10
// quantity (runtime to the coverage goal, normalized to brute force).
func Fig9Fig10Tradeoff(ctx context.Context, cfg Fig9Config) ([]core.TradeoffPoint, error) {
	mk := func() (*memctrl.Station, error) { return cfg.Chip.NewStation() }
	return core.ExploreTradeoffs(ctx, mk, core.TradeoffConfig{
		TargetInterval: cfg.TargetInterval,
		TargetTempC:    cfg.TargetTempC,
		DeltaIntervals: cfg.DeltaIntervals,
		DeltaTemps:     cfg.DeltaTemps,
		Iterations:     cfg.Iterations,
		CoverageGoal:   cfg.CoverageGoal,
		MaxIterations:  cfg.MaxIterations,
		Workers:        cfg.Workers,
		Options: core.Options{
			FreshRandomPerIteration: true,
			Seed:                    cfg.Seed,
		},
	})
}

// Fig9Table renders the coverage/FPR grid.
func Fig9Table(points []core.TradeoffPoint) *Table {
	t := &Table{
		Title:  "Figures 9-10: reach-condition tradeoff grid",
		Header: []string{"ΔtREFI", "ΔT", "coverage", "FPR", "iters->goal", "runtime rel", "speedup"},
		Caption: "paper: coverage and FPR grow with reach; runtime-to-goal shrinks " +
			"(2.5x at ~+250ms with <50% FPR; >3.5x at aggressive reach with >75% FPR)",
	}
	for _, p := range points {
		t.AddRow(
			Ms(p.Reach.DeltaInterval),
			fmt.Sprintf("+%.1f°C", p.Reach.DeltaTempC),
			fmt.Sprintf("%.4f", p.Coverage),
			fmt.Sprintf("%.3f", p.FalsePositiveRate),
			fmt.Sprint(p.IterationsToGoal),
			fmt.Sprintf("%.3f", p.RuntimeRelative),
			fmt.Sprintf("%.2fx", p.Speedup()),
		)
	}
	return t
}

// HeadlineResult captures the paper's Section 6.1.2 headline measurement.
type HeadlineResult struct {
	Coverage          float64
	FalsePositiveRate float64
	Speedup           float64
	// AggressiveSpeedup and AggressiveFPR are the "+3.5x at >75% FPR"
	// companion point at the most aggressive reach condition in the grid.
	AggressiveSpeedup float64
	AggressiveFPR     float64
}

// Headline extracts the +250 ms point and the most aggressive point from a
// tradeoff grid.
func Headline(points []core.TradeoffPoint) (HeadlineResult, error) {
	var out HeadlineResult
	found := false
	for _, p := range points {
		if p.Reach.DeltaTempC == 0 && p.Reach.DeltaInterval == 0.25 {
			out.Coverage = p.Coverage
			out.FalsePositiveRate = p.FalsePositiveRate
			out.Speedup = p.Speedup()
			found = true
		}
		if p.FalsePositiveRate > out.AggressiveFPR {
			out.AggressiveFPR = p.FalsePositiveRate
			out.AggressiveSpeedup = p.Speedup()
		}
	}
	if !found {
		return out, fmt.Errorf("experiments: grid lacks the +250ms/+0°C point")
	}
	return out, nil
}
