package experiments

import (
	"context"
	"strings"
	"testing"

	"reaper/internal/dram"
)

func TestPopulationSweep(t *testing.T) {
	cfg := DefaultPopulationConfig()
	cfg.ChipsPerVendor = 3
	cfg.ChipBits = 8 << 20
	results, err := PopulationSweep(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("got %d vendor results", len(results))
	}
	vendorBER := map[string]float64{}
	for _, r := range results {
		if len(r.Chips) != 3 {
			t.Fatalf("vendor %s has %d chips", r.Vendor, len(r.Chips))
		}
		if !r.AllChipsAgree {
			t.Errorf("vendor %s: not every chip showed the reach tradeoff trend: %+v",
				r.Vendor, r.Chips)
		}
		if r.CoverageMean < 0.9 {
			t.Errorf("vendor %s: mean coverage %v too low", r.Vendor, r.CoverageMean)
		}
		if r.FPRMean <= 0 {
			t.Errorf("vendor %s: mean FPR %v should be positive", r.Vendor, r.FPRMean)
		}
		if r.BERStd < 0 {
			t.Errorf("vendor %s: negative BER std", r.Vendor)
		}
		vendorBER[r.Vendor] = r.BERMean
	}
	// Vendor C is calibrated with the highest BER, vendor A the lowest
	// (at 1024ms the anchor ordering holds).
	if !(vendorBER["A"] < vendorBER["C"]) {
		t.Errorf("vendor BER ordering violated: %v", vendorBER)
	}
	// Per-chip BER must be near the vendor calibration on average.
	for _, r := range results {
		var want float64
		for _, v := range dram.Vendors() {
			if v.Name == r.Vendor {
				want = v.BERAt1024ms
			}
		}
		if r.BERMean < want/4 || r.BERMean > want*4 {
			t.Errorf("vendor %s fleet BER %v far from calibration %v", r.Vendor, r.BERMean, want)
		}
	}

	var sb strings.Builder
	PopulationTable(results).Render(&sb)
	if !strings.Contains(sb.String(), "Population sweep") {
		t.Error("table did not render")
	}
}

func TestPopulationSweepValidation(t *testing.T) {
	cfg := DefaultPopulationConfig()
	cfg.ChipsPerVendor = 0
	if _, err := PopulationSweep(context.Background(), cfg); err == nil {
		t.Error("zero fleet not rejected")
	}
}
