package experiments

import (
	"context"
	"testing"

	"reaper/internal/dram"
)

func TestAblationVRT(t *testing.T) {
	chip := ChipSpec{Bits: 16 << 20, WeakScale: 100, Vendor: dram.VendorB(), Seed: 101}
	res, err := AblationVRT(context.Background(), chip, 2.048, 50, 30)
	if err != nil {
		t.Fatal(err)
	}
	if res.NewCellsPerHourWithVRT <= 0 {
		t.Errorf("with VRT, accumulation rate = %v, want > 0", res.NewCellsPerHourWithVRT)
	}
	// Without VRT the base population is eventually exhausted; the
	// steady-state rate must collapse (a small residue of low-probability
	// stragglers is acceptable).
	if res.NewCellsPerHourWithoutVRT > res.NewCellsPerHourWithVRT/2 {
		t.Errorf("without VRT, rate %v not well below with-VRT rate %v",
			res.NewCellsPerHourWithoutVRT, res.NewCellsPerHourWithVRT)
	}
}

func TestAblationDPD(t *testing.T) {
	chip := ChipSpec{Bits: 16 << 20, WeakScale: 30, Vendor: dram.VendorB(), Seed: 102}
	res, err := AblationDPD(context.Background(), chip, 1.024, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Without DPD a single pattern pair finds essentially everything.
	if res.SinglePatternCoverageWithoutDPD < 0.95 {
		t.Errorf("no-DPD single-pattern coverage = %v, want >= 0.95",
			res.SinglePatternCoverageWithoutDPD)
	}
	// With DPD it cannot: the worst-case contexts of many cells are never
	// exercised by solid data.
	if res.SinglePatternCoverageWithDPD >= res.SinglePatternCoverageWithoutDPD {
		t.Errorf("DPD did not reduce single-pattern coverage: %v vs %v",
			res.SinglePatternCoverageWithDPD, res.SinglePatternCoverageWithoutDPD)
	}
}

func TestAblationReachKnobs(t *testing.T) {
	chip := ChipSpec{Bits: 16 << 20, WeakScale: 30, Vendor: dram.VendorB(), Seed: 103}
	// ~1s per 10°C at these conditions: +0.5s should roughly match +5°C.
	res, err := AblationReachKnobs(context.Background(), chip, 1.024, 0.5, 5, 8)
	if err != nil {
		t.Fatal(err)
	}
	for name, p := range map[string]KnobPoint{
		"interval": res.IntervalOnly, "temp": res.TempOnly, "combined": res.Combined,
	} {
		if p.Coverage < 0.95 {
			t.Errorf("%s reach coverage = %v, want >= 0.95", name, p.Coverage)
		}
		if p.FPR <= 0 || p.FPR >= 1 {
			t.Errorf("%s reach FPR = %v out of (0,1)", name, p.FPR)
		}
	}
	// Interchangeability: the knobs land within a band of each other.
	if d := res.IntervalOnly.Coverage - res.TempOnly.Coverage; d > 0.05 || d < -0.05 {
		t.Errorf("knob coverages diverge: interval %v vs temp %v",
			res.IntervalOnly.Coverage, res.TempOnly.Coverage)
	}
}
