package experiments

import (
	"context"
	"math"
	"strings"
	"testing"

	"reaper/internal/dram"
	"reaper/internal/ecc"
)

func TestTable1Shape(t *testing.T) {
	rows := Table1TolerableRBER(ecc.UBERConsumer)
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	// Ordered by strength, each tolerating more.
	for i := 1; i < len(rows); i++ {
		if rows[i].TolerableRBER <= rows[i-1].TolerableRBER {
			t.Error("tolerable RBER not increasing with ECC strength")
		}
	}
	// Error counts scale linearly with capacity across the columns.
	for _, r := range rows {
		if len(r.TolerableErrors) != len(Table1Sizes) {
			t.Fatalf("row %s has %d columns", r.Code.Name, len(r.TolerableErrors))
		}
		for i := 1; i < len(r.TolerableErrors); i++ {
			ratio := r.TolerableErrors[i] / r.TolerableErrors[i-1]
			if math.Abs(ratio-2) > 1e-6 {
				t.Errorf("%s: column ratio %v, want 2", r.Code.Name, ratio)
			}
		}
	}
	// Paper anchor: SECDED at 2GB tolerates tens of errors.
	secded := rows[1]
	if secded.TolerableErrors[2] < 40 || secded.TolerableErrors[2] > 130 {
		t.Errorf("SECDED @2GB tolerates %v errors, want tens (paper: 65.3)",
			secded.TolerableErrors[2])
	}
	var sb strings.Builder
	Table1Render(rows).Render(&sb)
	if !strings.Contains(sb.String(), "SECDED") {
		t.Error("table did not render")
	}
}

func TestFig11Fig12Anchors(t *testing.T) {
	rows, err := Fig11Fig12ProfilingOverhead(DefaultFig11Config())
	if err != nil {
		t.Fatal(err)
	}
	var anchor *Fig11Row
	for i, r := range rows {
		if r.ChipGb == 64 && r.IntervalHours == 4 {
			anchor = &rows[i]
		}
		// REAPER is always cheaper than brute force.
		if r.ReaperFrac > r.BruteFraction {
			t.Errorf("REAPER fraction above brute at %+v", r)
		}
		if r.ReaperProfilingW > r.BruteProfilingW {
			t.Errorf("REAPER power above brute at %+v", r)
		}
	}
	if anchor == nil {
		t.Fatal("missing 64Gb/4h anchor row")
	}
	// Paper: 22.7% brute, 9.1% REAPER.
	if math.Abs(anchor.BruteFraction-0.227) > 0.02 {
		t.Errorf("brute fraction = %v, want ~0.227", anchor.BruteFraction)
	}
	if math.Abs(anchor.ReaperFrac-0.091) > 0.01 {
		t.Errorf("REAPER fraction = %v, want ~0.091", anchor.ReaperFrac)
	}
	// Overheads grow with chip size at fixed interval and shrink with the
	// profiling interval.
	frac := func(gb int, h float64) float64 {
		for _, r := range rows {
			if r.ChipGb == gb && r.IntervalHours == h {
				return r.BruteFraction
			}
		}
		t.Fatalf("missing row %dGb %vh", gb, h)
		return 0
	}
	if !(frac(8, 4) < frac(16, 4) && frac(16, 4) < frac(64, 4)) {
		t.Error("overhead not growing with chip size")
	}
	if !(frac(64, 32) < frac(64, 4) && frac(64, 4) < frac(64, 1)) {
		t.Error("overhead not shrinking with profiling interval")
	}
	var sb strings.Builder
	Fig11Table(rows).Render(&sb)
	if !strings.Contains(sb.String(), "64Gb") {
		t.Error("table did not render")
	}
}

func TestPaperImpliedCadence(t *testing.T) {
	// Anchored at ~9.4h for 1024ms, shrinking steeply with the interval.
	if got := PaperImpliedCadenceHours(1.024); math.Abs(got-9.4) > 0.01 {
		t.Errorf("cadence @1024ms = %v, want 9.4", got)
	}
	if PaperImpliedCadenceHours(1.280) >= PaperImpliedCadenceHours(1.024) {
		t.Error("cadence must shrink with interval")
	}
}

func fastFig13() Fig13Config {
	cfg := DefaultFig13Config()
	cfg.ChipGbs = []int{64}
	cfg.Intervals = []float64{0.512, 1.024, 1.280, 0}
	cfg.Mixes = 4
	cfg.InstructionsPerCore = 300_000
	return cfg
}

func TestFig13EndToEndShape(t *testing.T) {
	cells, err := Fig13EndToEnd(context.Background(), fastFig13())
	if err != nil {
		t.Fatal(err)
	}
	// 4 intervals x 3 mechanisms.
	if len(cells) != 12 {
		t.Fatalf("got %d cells", len(cells))
	}

	get := func(interval float64, mech string) Fig13Cell {
		c, ok := FindCell(cells, 64, interval, mech)
		if !ok {
			t.Fatalf("missing cell %v/%s", interval, mech)
		}
		return c
	}

	// Ideal profiling: gains grow with the interval and no-refresh is the
	// ceiling.
	i512 := get(0.512, "ideal")
	i1024 := get(1.024, "ideal")
	noref := get(0, "ideal")
	if !(i512.PerfGain.Mean > 0 && i1024.PerfGain.Mean >= i512.PerfGain.Mean*0.95) {
		t.Errorf("ideal gains not sensible: 512ms=%v 1024ms=%v",
			i512.PerfGain.Mean, i1024.PerfGain.Mean)
	}
	if noref.PerfGain.Mean < i1024.PerfGain.Mean*0.95 {
		t.Errorf("no-refresh (%v) should be at/above 1024ms ideal (%v)",
			noref.PerfGain.Mean, i1024.PerfGain.Mean)
	}

	// REAPER dominates brute force at every interval; both below ideal.
	for _, interval := range []float64{0.512, 1.024, 1.280} {
		b, r, i := get(interval, "brute"), get(interval, "reaper"), get(interval, "ideal")
		if r.PerfGain.Mean < b.PerfGain.Mean {
			t.Errorf("REAPER below brute at %v: %v vs %v",
				interval, r.PerfGain.Mean, b.PerfGain.Mean)
		}
		if r.PerfGain.Mean > i.PerfGain.Mean+1e-9 {
			t.Errorf("REAPER above ideal at %v", interval)
		}
		if b.OverheadFraction < r.OverheadFraction {
			t.Errorf("brute overhead below REAPER at %v", interval)
		}
	}

	// The paper's crossover: at 1280ms brute-force profiling overhead is
	// large enough to visibly separate the mechanisms.
	b1280, r1280 := get(1.280, "brute"), get(1.280, "reaper")
	if r1280.PerfGain.Mean-b1280.PerfGain.Mean < 0.05 {
		t.Errorf("1280ms REAPER-brute gap = %v, want pronounced (paper: ~14 points)",
			r1280.PerfGain.Mean-b1280.PerfGain.Mean)
	}

	// Power reduction grows with interval and is unaffected by mechanism
	// (profiling power is negligible).
	if !(i512.PowerReduction.Mean > 0 && noref.PowerReduction.Mean > i512.PowerReduction.Mean) {
		t.Errorf("power reductions not ordered: 512ms=%v noref=%v",
			i512.PowerReduction.Mean, noref.PowerReduction.Mean)
	}
	if math.Abs(b1280.PowerReduction.Mean-r1280.PowerReduction.Mean) > 1e-9 {
		t.Error("mechanism changed DRAM power reduction; profiling power should be negligible")
	}

	var sb strings.Builder
	Fig13Table(cells).Render(&sb)
	if !strings.Contains(sb.String(), "no-ref") {
		t.Error("table did not render")
	}
}

func TestFig13LongevityCadence(t *testing.T) {
	cfg := fastFig13()
	cfg.Intervals = []float64{1.024}
	cfg.Cadence = CadenceLongevity
	cells, err := Fig13EndToEnd(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, ok := FindCell(cells, 64, 1.024, "brute")
	if !ok {
		t.Fatal("missing cell")
	}
	// The Equation 7 longevity cadence is far laxer than the
	// paper-implied cadence, so overhead should be small.
	if b.OverheadFraction > 0.05 {
		t.Errorf("longevity-cadence overhead = %v, want small", b.OverheadFraction)
	}
	if b.CadenceHours < 24 {
		t.Errorf("longevity cadence = %vh, want days", b.CadenceHours)
	}
}

func TestFig13RejectsBadConfig(t *testing.T) {
	cfg := fastFig13()
	cfg.Mixes = 0
	if _, err := Fig13EndToEnd(context.Background(), cfg); err == nil {
		t.Error("zero mixes not rejected")
	}
	cfg = fastFig13()
	cfg.ChipGbs = []int{7}
	if _, err := Fig13EndToEnd(context.Background(), cfg); err == nil {
		t.Error("unsupported chip density not rejected")
	}
}

func TestFindCellMissing(t *testing.T) {
	if _, ok := FindCell(nil, 8, 1, "brute"); ok {
		t.Error("FindCell on empty set returned ok")
	}
}

func TestChipSpecHelpers(t *testing.T) {
	spec := DefaultChipSpec(1)
	if spec.EffectiveBER(0) != 0 {
		t.Error("zero cells should give zero BER")
	}
	got := spec.EffectiveBER(1000)
	want := 1000.0 / (float64(spec.Bits) * spec.WeakScale)
	if math.Abs(got-want) > 1e-18 {
		t.Errorf("EffectiveBER = %v, want %v", got, want)
	}
	// Unscaled spec falls back to scale 1.
	raw := ChipSpec{Bits: 1 << 20, Vendor: dram.VendorB(), Seed: 1}
	if raw.EffectiveBER(10) != 10.0/float64(1<<20) {
		t.Error("unscaled EffectiveBER wrong")
	}
	// Chambered spec builds.
	spec.Chamber = true
	spec.Bits = 8 << 20
	st, err := spec.NewStation()
	if err != nil {
		t.Fatal(err)
	}
	if a := st.Ambient(); a < 44 || a > 46 {
		t.Errorf("chambered ambient = %v", a)
	}
}
