package experiments

import "testing"

func TestClassificationFallacy(t *testing.T) {
	cfg := DefaultClassificationConfig()
	cfg.ObserveIterations = 16
	cfg.ObserveHours = 8
	res, err := ClassificationFallacy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.LabelledWeak == 0 {
		t.Fatal("classification window found nothing")
	}
	// The paper's claim: the weak/strong boundary does not hold. A
	// non-trivial number of "strong"-labelled cells must fail later.
	if res.LateFailures == 0 {
		t.Error("no strong-labelled cell ever failed; weak/strong classification would be valid")
	}
	if res.LateFailureRatio <= 0.01 {
		t.Errorf("late-failure ratio %v too small to demonstrate the fallacy", res.LateFailureRatio)
	}
	t.Logf("labelled weak: %d; later failures among 'strong' cells: %d (ratio %.3f)",
		res.LabelledWeak, res.LateFailures, res.LateFailureRatio)
}
