package experiments

import (
	"context"
	"fmt"

	"reaper/internal/core"
	"reaper/internal/dram"
	"reaper/internal/memctrl"
	"reaper/internal/parallel"
	"reaper/internal/stats"
	"reaper/internal/telemetry"
)

// The paper's evidence is population-level: 368 chips across three vendors,
// with every chip showing the same tradeoff trends (Section 6.1.1: "We
// repeat this analysis for all 368 of our DRAM chips and find that each
// chip demonstrates the same trends"). PopulationSweep reproduces that
// aggregation over a configurable fleet of simulated chips.

// PopulationConfig drives the sweep.
type PopulationConfig struct {
	// ChipsPerVendor is the fleet size per vendor (the paper's fleet is
	// ~123 per vendor; benches use a dozen).
	ChipsPerVendor int
	// TargetInterval and Reach are the conditions every chip is evaluated
	// at (+250ms is the paper's headline point).
	TargetInterval float64
	Reach          core.ReachConditions
	Iterations     int
	ChipBits       int64
	WeakScale      float64
	Seed           uint64

	// Workers bounds the worker pool evaluating chips concurrently; <= 0
	// means one worker per CPU. Each chip owns its own device and RNG seed,
	// so the results are identical at any worker count.
	Workers int

	// ShardSize caps how many chips may hold dense device state at once:
	// the fleet is swept in consecutive shards of at most ShardSize chips,
	// each materialized from its seed on spin-up and evicted after its
	// summary is folded, so peak memory is O(ShardSize), not O(fleet).
	// <= 0 (with Dense false) keeps the historical single-batch execution.
	// Results are byte-identical at every shard size and worker count.
	ShardSize int
	// Dense pre-materializes every chip's station before any evaluation
	// starts — the pre-ShardSize behavior, kept as an explicit mode so
	// benchmarks can measure exactly what lazy execution saves. O(fleet)
	// memory; mutually exclusive with ShardSize > 0.
	Dense bool
}

// DefaultPopulationConfig is a bench-scale fleet.
func DefaultPopulationConfig() PopulationConfig {
	return PopulationConfig{
		ChipsPerVendor: 4,
		TargetInterval: 1.024,
		Reach:          core.ReachConditions{DeltaInterval: 0.25},
		Iterations:     8,
		ChipBits:       16 << 20,
		WeakScale:      30,
		Seed:           500,
	}
}

// ChipResult is one chip's evaluation. JSON field names follow the
// repository-wide lower_snake_case convention (API.md "Naming convention").
type ChipResult struct {
	Vendor   string  `json:"vendor"`
	Seed     uint64  `json:"seed"`
	BER1024  float64 `json:"ber_1024"` // normalized BER at 1024ms/45°C
	Coverage float64 `json:"coverage"` // at the reach conditions vs oracle truth
	FPR      float64 `json:"fpr"`
}

// PopulationResult aggregates a vendor's fleet.
type PopulationResult struct {
	Vendor        string       `json:"vendor"`
	Chips         []ChipResult `json:"chips"`
	BERMean       float64      `json:"ber_mean"`
	BERStd        float64      `json:"ber_std"`
	CoverageMean  float64      `json:"coverage_mean"`
	CoverageMin   float64      `json:"coverage_min"`
	FPRMean       float64      `json:"fpr_mean"`
	FPRMax        float64      `json:"fpr_max"`
	AllChipsAgree bool         `json:"all_chips_agree"` // every chip individually beats brute-force-like coverage
}

// validate rejects configurations before any fleet state is allocated.
func (c PopulationConfig) validate() error {
	if c.ChipsPerVendor <= 0 {
		return fmt.Errorf("experiments: fleet size must be positive (chips per vendor %d)", c.ChipsPerVendor)
	}
	if c.ShardSize < 0 {
		return fmt.Errorf("experiments: shard size must be non-negative (got %d)", c.ShardSize)
	}
	if c.Dense && c.ShardSize > 0 {
		return fmt.Errorf("experiments: dense materialization and shard size %d are mutually exclusive", c.ShardSize)
	}
	return nil
}

// populationSpec is the compact, seed-derived description of one flattened
// (vendor, chip) job — the only per-chip state a fleet sweep holds for chips
// outside the active shard.
func populationSpec(cfg PopulationConfig, vendors []dram.VendorParams, job int) ChipSpec {
	vi, c := job/cfg.ChipsPerVendor, job%cfg.ChipsPerVendor
	return ChipSpec{
		Bits:      cfg.ChipBits,
		WeakScale: cfg.WeakScale,
		Vendor:    vendors[vi],
		Seed:      cfg.Seed + uint64(vi)*1000 + uint64(c),
	}
}

// evalPopulationChip folds one materialized chip into its compact summary.
// Every profiling draw comes from streams derived from the chip's own seed,
// so evaluation order across chips cannot affect any result.
func evalPopulationChip(cfg PopulationConfig, spec ChipSpec, st *memctrl.Station) (ChipResult, error) {
	truth := core.Truth(st, cfg.TargetInterval, 45)
	prof, err := core.Reach(st, cfg.TargetInterval, cfg.Reach, core.Options{
		Iterations:              cfg.Iterations,
		FreshRandomPerIteration: true,
		Seed:                    spec.Seed,
	})
	if err != nil {
		return ChipResult{}, err
	}
	return ChipResult{
		Vendor:   spec.Vendor.Name,
		Seed:     spec.Seed,
		BER1024:  spec.EffectiveBER(truth.Len()),
		Coverage: core.Coverage(prof.Failures, truth),
		FPR:      core.FalsePositiveRate(prof.Failures, truth),
	}, nil
}

// populationChip materializes, evaluates and releases one job's chip.
func populationChip(cfg PopulationConfig, vendors []dram.VendorParams, job int) (ChipResult, error) {
	spec := populationSpec(cfg, vendors, job)
	st, err := spec.NewStation()
	if err != nil {
		return ChipResult{}, err
	}
	return evalPopulationChip(cfg, spec, st)
}

// populationDense is the pre-change execution shape: every station in the
// fleet is materialized before the first evaluation starts and stays
// resident until the sweep finishes. It exists so cmd/benchfleet can put a
// number on the memory the lazy path avoids; it fails fast like
// PopulationSweep. The fleet lifecycle metrics see one fleet-wide shard.
func populationDense(ctx context.Context, cfg PopulationConfig, vendors []dram.VendorParams, n int) ([]ChipResult, error) {
	reg := telemetry.FromContext(ctx)
	reg.Gauge("fleet_shards_active").Set(1)
	reg.Counter("fleet_chips_materialized").Add(int64(n))
	stations, err := parallel.Map(ctx, n, cfg.Workers,
		func(_ context.Context, job int) (*memctrl.Station, error) {
			return populationSpec(cfg, vendors, job).NewStation()
		})
	if err != nil {
		return nil, err
	}
	chips, err := parallel.Map(ctx, n, cfg.Workers,
		func(_ context.Context, job int) (ChipResult, error) {
			return evalPopulationChip(cfg, populationSpec(cfg, vendors, job), stations[job])
		})
	if err != nil {
		return nil, err
	}
	reg.Counter("fleet_evictions").Add(int64(n))
	reg.Gauge("fleet_shards_active").Set(0)
	return chips, nil
}

// aggregatePopulation folds the flattened chip results into per-vendor
// aggregates, skipping jobs listed in excluded (quarantined shards).
func aggregatePopulation(cfg PopulationConfig, vendors []dram.VendorParams, chips []ChipResult, excluded map[int]bool) []PopulationResult {
	var out []PopulationResult
	for vi, vendor := range vendors {
		res := PopulationResult{Vendor: vendor.Name, AllChipsAgree: true, CoverageMin: 1}
		var bers, covs, fprs []float64
		for c := 0; c < cfg.ChipsPerVendor; c++ {
			job := vi*cfg.ChipsPerVendor + c
			if excluded[job] {
				// A quarantined chip contributes no data; the fleet cannot
				// claim full agreement over chips it never measured.
				res.AllChipsAgree = false
				continue
			}
			cr := chips[job]
			res.Chips = append(res.Chips, cr)
			bers = append(bers, cr.BER1024)
			covs = append(covs, cr.Coverage)
			fprs = append(fprs, cr.FPR)
			if cr.Coverage < res.CoverageMin {
				res.CoverageMin = cr.Coverage
			}
			if cr.FPR > res.FPRMax {
				res.FPRMax = cr.FPR
			}
			// "Same trend" criterion: reach profiling on this chip
			// achieves high coverage with a nonzero but bounded FPR.
			if cr.Coverage < 0.85 || cr.FPR <= 0 || cr.FPR >= 0.95 {
				res.AllChipsAgree = false
			}
		}
		res.BERMean = stats.Mean(bers)
		res.BERStd = stats.StdDev(bers)
		res.CoverageMean = stats.Mean(covs)
		res.FPRMean = stats.Mean(fprs)
		out = append(out, res)
	}
	return out
}

// PopulationSweep evaluates a fleet of chips per vendor and aggregates.
// Chips are evaluated on the parallel fleet engine; every chip owns a
// disjoint simulated device and RNG seed, so results are byte-identical to
// a sequential sweep regardless of cfg.Workers. The first chip error aborts
// the sweep; use PopulationSweepPartial for fault-tolerant execution.
func PopulationSweep(ctx context.Context, cfg PopulationConfig) ([]PopulationResult, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	vendors := dram.Vendors()
	// Flatten the vendor x chip fleet into one job list so a small fleet of
	// large chips still saturates the pool.
	n := len(vendors) * cfg.ChipsPerVendor
	var chips []ChipResult
	var err error
	switch {
	case cfg.Dense:
		chips, err = populationDense(ctx, cfg, vendors, n)
	case cfg.ShardSize > 0:
		var failures []parallel.JobFailure
		chips, failures, err = runFleetShards(ctx, n, cfg.ShardSize, cfg.Workers, parallel.RetryPolicy{},
			func(_ context.Context, job int) (ChipResult, error) {
				return populationChip(cfg, vendors, job)
			})
		// PopulationSweep's contract is fail-fast: surface the lowest-index
		// chip failure as the sweep error, as the flat parallel.Map path does.
		if err == nil && len(failures) > 0 {
			err = failures[0].Err
		}
	default:
		chips, err = parallel.Map(ctx, n, cfg.Workers,
			func(_ context.Context, job int) (ChipResult, error) {
				return populationChip(cfg, vendors, job)
			})
	}
	if err != nil {
		return nil, err
	}
	return aggregatePopulation(cfg, vendors, chips, nil), nil
}

// PopulationSweepPartial is the fault-tolerant sweep: a chip shard that
// fails or panics is retried per policy and then quarantined rather than
// aborting the fleet. The returned failures enumerate the quarantined
// shards (sorted by job index); the aggregates cover only the measured
// chips, and a vendor missing any chip reports AllChipsAgree = false.
func PopulationSweepPartial(ctx context.Context, cfg PopulationConfig, policy parallel.RetryPolicy) ([]PopulationResult, []parallel.JobFailure, error) {
	if err := cfg.validate(); err != nil {
		return nil, nil, err
	}
	vendors := dram.Vendors()
	n := len(vendors) * cfg.ChipsPerVendor
	eval := func(_ context.Context, job int) (ChipResult, error) {
		return populationChip(cfg, vendors, job)
	}
	var chips []ChipResult
	var failures []parallel.JobFailure
	var err error
	if cfg.ShardSize > 0 {
		chips, failures, err = runFleetShards(ctx, n, cfg.ShardSize, cfg.Workers, policy, eval)
	} else {
		chips, failures, err = parallel.MapPartial(ctx, n, cfg.Workers, policy, eval)
	}
	if err != nil {
		return nil, nil, err
	}
	excluded := make(map[int]bool, len(failures))
	for _, f := range failures {
		excluded[f.Job] = true
	}
	return aggregatePopulation(cfg, vendors, chips, excluded), failures, nil
}

// PopulationTable renders the aggregation.
func PopulationTable(results []PopulationResult) *Table {
	t := &Table{
		Title:  "Population sweep: per-vendor fleets at +250ms reach",
		Header: []string{"vendor", "chips", "BER@1024 mean", "BER std", "cov mean", "cov min", "FPR mean", "FPR max", "same trend"},
		Caption: "paper: 368 chips; every chip shows the same coverage/FPR/runtime tradeoff " +
			"trends (Section 6.1.1)",
	}
	for _, r := range results {
		t.AddRow(r.Vendor, fmt.Sprint(len(r.Chips)),
			fmt.Sprintf("%.3g", r.BERMean), fmt.Sprintf("%.2g", r.BERStd),
			fmt.Sprintf("%.4f", r.CoverageMean), fmt.Sprintf("%.4f", r.CoverageMin),
			fmt.Sprintf("%.3f", r.FPRMean), fmt.Sprintf("%.3f", r.FPRMax),
			fmt.Sprint(r.AllChipsAgree))
	}
	return t
}
