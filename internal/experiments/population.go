package experiments

import (
	"context"
	"fmt"

	"reaper/internal/core"
	"reaper/internal/dram"
	"reaper/internal/parallel"
	"reaper/internal/stats"
)

// The paper's evidence is population-level: 368 chips across three vendors,
// with every chip showing the same tradeoff trends (Section 6.1.1: "We
// repeat this analysis for all 368 of our DRAM chips and find that each
// chip demonstrates the same trends"). PopulationSweep reproduces that
// aggregation over a configurable fleet of simulated chips.

// PopulationConfig drives the sweep.
type PopulationConfig struct {
	// ChipsPerVendor is the fleet size per vendor (the paper's fleet is
	// ~123 per vendor; benches use a dozen).
	ChipsPerVendor int
	// TargetInterval and Reach are the conditions every chip is evaluated
	// at (+250ms is the paper's headline point).
	TargetInterval float64
	Reach          core.ReachConditions
	Iterations     int
	ChipBits       int64
	WeakScale      float64
	Seed           uint64

	// Workers bounds the worker pool evaluating chips concurrently; <= 0
	// means one worker per CPU. Each chip owns its own device and RNG seed,
	// so the results are identical at any worker count.
	Workers int
}

// DefaultPopulationConfig is a bench-scale fleet.
func DefaultPopulationConfig() PopulationConfig {
	return PopulationConfig{
		ChipsPerVendor: 4,
		TargetInterval: 1.024,
		Reach:          core.ReachConditions{DeltaInterval: 0.25},
		Iterations:     8,
		ChipBits:       16 << 20,
		WeakScale:      30,
		Seed:           500,
	}
}

// ChipResult is one chip's evaluation. JSON field names follow the
// repository-wide lower_snake_case convention (API.md "Naming convention").
type ChipResult struct {
	Vendor   string  `json:"vendor"`
	Seed     uint64  `json:"seed"`
	BER1024  float64 `json:"ber_1024"` // normalized BER at 1024ms/45°C
	Coverage float64 `json:"coverage"` // at the reach conditions vs oracle truth
	FPR      float64 `json:"fpr"`
}

// PopulationResult aggregates a vendor's fleet.
type PopulationResult struct {
	Vendor        string       `json:"vendor"`
	Chips         []ChipResult `json:"chips"`
	BERMean       float64      `json:"ber_mean"`
	BERStd        float64      `json:"ber_std"`
	CoverageMean  float64      `json:"coverage_mean"`
	CoverageMin   float64      `json:"coverage_min"`
	FPRMean       float64      `json:"fpr_mean"`
	FPRMax        float64      `json:"fpr_max"`
	AllChipsAgree bool         `json:"all_chips_agree"` // every chip individually beats brute-force-like coverage
}

// populationChip evaluates one flattened (vendor, chip) job.
func populationChip(cfg PopulationConfig, vendors []dram.VendorParams, job int) (ChipResult, error) {
	vi, c := job/cfg.ChipsPerVendor, job%cfg.ChipsPerVendor
	vendor := vendors[vi]
	seed := cfg.Seed + uint64(vi)*1000 + uint64(c)
	spec := ChipSpec{
		Bits:      cfg.ChipBits,
		WeakScale: cfg.WeakScale,
		Vendor:    vendor,
		Seed:      seed,
	}
	st, err := spec.NewStation()
	if err != nil {
		return ChipResult{}, err
	}
	truth := core.Truth(st, cfg.TargetInterval, 45)
	prof, err := core.Reach(st, cfg.TargetInterval, cfg.Reach, core.Options{
		Iterations:              cfg.Iterations,
		FreshRandomPerIteration: true,
		Seed:                    seed,
	})
	if err != nil {
		return ChipResult{}, err
	}
	return ChipResult{
		Vendor:   vendor.Name,
		Seed:     seed,
		BER1024:  spec.EffectiveBER(truth.Len()),
		Coverage: core.Coverage(prof.Failures, truth),
		FPR:      core.FalsePositiveRate(prof.Failures, truth),
	}, nil
}

// aggregatePopulation folds the flattened chip results into per-vendor
// aggregates, skipping jobs listed in excluded (quarantined shards).
func aggregatePopulation(cfg PopulationConfig, vendors []dram.VendorParams, chips []ChipResult, excluded map[int]bool) []PopulationResult {
	var out []PopulationResult
	for vi, vendor := range vendors {
		res := PopulationResult{Vendor: vendor.Name, AllChipsAgree: true, CoverageMin: 1}
		var bers, covs, fprs []float64
		for c := 0; c < cfg.ChipsPerVendor; c++ {
			job := vi*cfg.ChipsPerVendor + c
			if excluded[job] {
				// A quarantined chip contributes no data; the fleet cannot
				// claim full agreement over chips it never measured.
				res.AllChipsAgree = false
				continue
			}
			cr := chips[job]
			res.Chips = append(res.Chips, cr)
			bers = append(bers, cr.BER1024)
			covs = append(covs, cr.Coverage)
			fprs = append(fprs, cr.FPR)
			if cr.Coverage < res.CoverageMin {
				res.CoverageMin = cr.Coverage
			}
			if cr.FPR > res.FPRMax {
				res.FPRMax = cr.FPR
			}
			// "Same trend" criterion: reach profiling on this chip
			// achieves high coverage with a nonzero but bounded FPR.
			if cr.Coverage < 0.85 || cr.FPR <= 0 || cr.FPR >= 0.95 {
				res.AllChipsAgree = false
			}
		}
		res.BERMean = stats.Mean(bers)
		res.BERStd = stats.StdDev(bers)
		res.CoverageMean = stats.Mean(covs)
		res.FPRMean = stats.Mean(fprs)
		out = append(out, res)
	}
	return out
}

// PopulationSweep evaluates a fleet of chips per vendor and aggregates.
// Chips are evaluated on the parallel fleet engine; every chip owns a
// disjoint simulated device and RNG seed, so results are byte-identical to
// a sequential sweep regardless of cfg.Workers. The first chip error aborts
// the sweep; use PopulationSweepPartial for fault-tolerant execution.
func PopulationSweep(ctx context.Context, cfg PopulationConfig) ([]PopulationResult, error) {
	if cfg.ChipsPerVendor <= 0 {
		return nil, fmt.Errorf("experiments: fleet size must be positive")
	}
	vendors := dram.Vendors()
	// Flatten the vendor x chip fleet into one job list so a small fleet of
	// large chips still saturates the pool.
	n := len(vendors) * cfg.ChipsPerVendor
	chips, err := parallel.Map(ctx, n, cfg.Workers,
		func(_ context.Context, job int) (ChipResult, error) {
			return populationChip(cfg, vendors, job)
		})
	if err != nil {
		return nil, err
	}
	return aggregatePopulation(cfg, vendors, chips, nil), nil
}

// PopulationSweepPartial is the fault-tolerant sweep: a chip shard that
// fails or panics is retried per policy and then quarantined rather than
// aborting the fleet. The returned failures enumerate the quarantined
// shards (sorted by job index); the aggregates cover only the measured
// chips, and a vendor missing any chip reports AllChipsAgree = false.
func PopulationSweepPartial(ctx context.Context, cfg PopulationConfig, policy parallel.RetryPolicy) ([]PopulationResult, []parallel.JobFailure, error) {
	if cfg.ChipsPerVendor <= 0 {
		return nil, nil, fmt.Errorf("experiments: fleet size must be positive")
	}
	vendors := dram.Vendors()
	n := len(vendors) * cfg.ChipsPerVendor
	chips, failures, err := parallel.MapPartial(ctx, n, cfg.Workers, policy,
		func(_ context.Context, job int) (ChipResult, error) {
			return populationChip(cfg, vendors, job)
		})
	if err != nil {
		return nil, nil, err
	}
	excluded := make(map[int]bool, len(failures))
	for _, f := range failures {
		excluded[f.Job] = true
	}
	return aggregatePopulation(cfg, vendors, chips, excluded), failures, nil
}

// PopulationTable renders the aggregation.
func PopulationTable(results []PopulationResult) *Table {
	t := &Table{
		Title:  "Population sweep: per-vendor fleets at +250ms reach",
		Header: []string{"vendor", "chips", "BER@1024 mean", "BER std", "cov mean", "cov min", "FPR mean", "FPR max", "same trend"},
		Caption: "paper: 368 chips; every chip shows the same coverage/FPR/runtime tradeoff " +
			"trends (Section 6.1.1)",
	}
	for _, r := range results {
		t.AddRow(r.Vendor, fmt.Sprint(len(r.Chips)),
			fmt.Sprintf("%.3g", r.BERMean), fmt.Sprintf("%.2g", r.BERStd),
			fmt.Sprintf("%.4f", r.CoverageMean), fmt.Sprintf("%.4f", r.CoverageMin),
			fmt.Sprintf("%.3f", r.FPRMean), fmt.Sprintf("%.3f", r.FPRMax),
			fmt.Sprint(r.AllChipsAgree))
	}
	return t
}
