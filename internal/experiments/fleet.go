package experiments

import (
	"context"

	"reaper/internal/parallel"
	"reaper/internal/telemetry"
)

// Fleet-scale execution: the shard executor that lets population sweeps run
// over arbitrarily large fleets in O(active shard + summaries) memory.
//
// The unit of fleet state is a compact, seed-derived description of a chip
// (a ChipSpec / dram.ChipRef — a few words), not a live *dram.Device (tens
// of megabytes of sampled weak cells and content bits). The executor walks
// the flattened job list in consecutive shards: each shard materializes at
// most shardSize devices (the worker pool is clamped to the shard size, so
// at most min(workers, shardSize) are ever live at once), folds each chip
// into its compact per-chip summary, and drops every dense structure before
// the next shard begins. Nothing about a chip's evaluation depends on any
// other chip — every job is independently seeded — so sharded execution is
// byte-identical to a single flat map at any worker count and shard size;
// only the parallel_* batch telemetry reflects the shard structure.

// fleetShardSize normalizes a shard-size knob against a fleet of n jobs:
// values <= 0 or >= n collapse to one shard spanning the whole fleet.
func fleetShardSize(shardSize, n int) int {
	if shardSize <= 0 || shardSize > n {
		return n
	}
	return shardSize
}

// fleetWorkers bounds a worker pool by the shard size so the number of
// concurrently materialized devices never exceeds the shard window. A
// shardSize <= 0 (keep-alive mode) leaves workers untouched; workers <= 0
// resolves to the parallel package's default first so the clamp applies to
// the real pool size.
func fleetWorkers(workers, shardSize int) int {
	if workers <= 0 {
		workers = parallel.DefaultWorkers()
	}
	if shardSize > 0 && workers > shardSize {
		workers = shardSize
	}
	return workers
}

// runFleetShards drives fn over n jobs in consecutive shards of shardSize
// jobs each, recording the fleet lifecycle metrics on the context registry:
// fleet_shards_active flips to 1 while a shard's devices are live,
// fleet_chips_materialized counts spin-ups, and fleet_evictions counts
// devices whose dense state was dropped at a shard boundary. Failures are
// reindexed to fleet-global job numbers. The counters are driven by the
// shard walk, not the scheduler, so their final values are identical at any
// worker count.
func runFleetShards[T any](ctx context.Context, n, shardSize, workers int, policy parallel.RetryPolicy,
	fn func(ctx context.Context, job int) (T, error)) ([]T, []parallel.JobFailure, error) {
	shard := fleetShardSize(shardSize, n)
	reg := telemetry.FromContext(ctx)
	out := make([]T, 0, n)
	var failures []parallel.JobFailure
	for lo := 0; lo < n; lo += shard {
		hi := lo + shard
		if hi > n {
			hi = n
		}
		reg.Gauge("fleet_shards_active").Set(1)
		reg.Counter("fleet_chips_materialized").Add(int64(hi - lo))
		res, fails, err := parallel.MapPartial(ctx, hi-lo, fleetWorkers(workers, shard), policy,
			func(ctx context.Context, k int) (T, error) { return fn(ctx, lo+k) })
		if err != nil {
			return nil, nil, err
		}
		out = append(out, res...)
		for _, f := range fails {
			f.Job += lo
			failures = append(failures, f)
		}
		// The shard's results are folded; its dense devices are garbage from
		// here on. Evictions are counted per chip so operators can cross-check
		// materializations against evictions (equal when a sweep completes).
		reg.Counter("fleet_evictions").Add(int64(hi - lo))
		reg.Gauge("fleet_shards_active").Set(0)
	}
	return out, failures, nil
}
