package experiments

import "testing"

func TestUBERValidationIndependenceHolds(t *testing.T) {
	cfg := DefaultUBERValidationConfig()
	cfg.Rounds = 200
	res, err := UBERValidation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.WordsTested == 0 || res.Rounds != 200 {
		t.Fatalf("degenerate run: %+v", res)
	}
	if res.MeasuredPerRnd <= 0 {
		t.Fatal("no multi-bit word failures observed; experiment vacuous")
	}
	// The independence-based prediction (Equation 5's assumption) must
	// match the measured joint rate within sampling noise.
	if res.Ratio < 0.7 || res.Ratio > 1.4 {
		t.Errorf("measured/predicted multi-bit rate = %.3f (measured %.3f, predicted %.3f per round); "+
			"Equation 5's independence assumption violated",
			res.Ratio, res.MeasuredPerRnd, res.PredictedPerRnd)
	}
}

func TestUBERValidationNeedsMultiCellWords(t *testing.T) {
	cfg := DefaultUBERValidationConfig()
	cfg.Chip.Bits = 1 << 20
	cfg.Chip.WeakScale = 1 // essentially no weak cells -> no multi-cell words
	if _, err := UBERValidation(cfg); err == nil {
		t.Error("expected an error when no multi-cell words exist")
	}
}
