package experiments

import (
	"context"
	"strings"
	"testing"
)

func TestFig9Fig10Grid(t *testing.T) {
	cfg := DefaultFig9Config()
	cfg.Chip = smallChip(91)
	cfg.DeltaIntervals = []float64{0, 0.25, 0.5}
	cfg.DeltaTemps = []float64{0, 5}
	cfg.Iterations = 8
	cfg.MaxIterations = 32
	points, err := Fig9Fig10Tradeoff(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 6 {
		t.Fatalf("got %d points", len(points))
	}
	// Brute-force reference point: perfect self-coverage, relative
	// runtime 1.
	brute := points[0]
	if brute.Coverage != 1 || brute.FalsePositiveRate != 0 || brute.RuntimeRelative != 1 {
		t.Errorf("reference point wrong: %+v", brute)
	}
	// Along the pure-interval axis, FPR grows.
	if !(points[1].FalsePositiveRate > 0 && points[2].FalsePositiveRate > points[1].FalsePositiveRate) {
		t.Errorf("FPR not growing along reach axis: %v, %v",
			points[1].FalsePositiveRate, points[2].FalsePositiveRate)
	}
	// Temperature reach also produces false positives (row 2 of the grid).
	if points[3].FalsePositiveRate <= 0 {
		t.Error("+5°C reach produced no false positives")
	}
	// Reach profiling is faster to the coverage goal.
	for _, p := range points[1:] {
		if p.ReachedGoal && p.RuntimeRelative >= 1.2 {
			t.Errorf("reach point %+v slower than brute force", p.Reach)
		}
	}
	var sb strings.Builder
	Fig9Table(points).Render(&sb)
	if !strings.Contains(sb.String(), "ΔtREFI") {
		t.Error("table did not render")
	}
}

func TestHeadline(t *testing.T) {
	cfg := DefaultFig9Config()
	cfg.Chip = smallChip(92)
	cfg.DeltaIntervals = []float64{0, 0.25, 1.0}
	cfg.DeltaTemps = []float64{0, 10}
	cfg.Iterations = 8
	cfg.MaxIterations = 32
	points, err := Fig9Fig10Tradeoff(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	h, err := Headline(points)
	if err != nil {
		t.Fatal(err)
	}
	// Paper headline: >99% coverage, <~50% FPR, ~2.5x speedup at +250ms.
	if h.Coverage < 0.97 {
		t.Errorf("+250ms coverage = %v, want >= 0.97", h.Coverage)
	}
	if h.FalsePositiveRate <= 0 || h.FalsePositiveRate > 0.65 {
		t.Errorf("+250ms FPR = %v, want in (0, 0.65]", h.FalsePositiveRate)
	}
	if h.Speedup < 1.5 {
		t.Errorf("+250ms speedup = %v, want >= 1.5x", h.Speedup)
	}
	// Aggressive reach trades FPR for more speed.
	if h.AggressiveFPR <= h.FalsePositiveRate {
		t.Errorf("aggressive FPR %v not above headline FPR %v",
			h.AggressiveFPR, h.FalsePositiveRate)
	}

	// Missing +250ms point is an error.
	if _, err := Headline(points[:1]); err == nil {
		t.Error("missing headline point not reported")
	}
}
