package testprog

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

// minimalDevice returns a small valid device program as JSON.
func minimalDevice() string {
	return `{
  "version": 1,
  "name": "smoke",
  "seed": 7,
  "fleet": {"bits": 1048576, "weak_scale": 40},
  "stages": [
    {"type": "write_pattern", "pattern": "checker"},
    {"type": "set_temp", "ambient_c": 50},
    {"type": "disable_refresh"},
    {"type": "wait", "seconds": 2},
    {"type": "enable_refresh"},
    {"type": "read_compare", "label": "after-2s"},
    {"type": "classify", "target_interval_s": 1.024, "target_temp_c": 45}
  ],
  "output": {"failing_bits": 8}
}`
}

func TestLoadMinimalDevice(t *testing.T) {
	p, err := Load([]byte(minimalDevice()))
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if p.Kind() != KindDevice {
		t.Fatalf("kind = %q, want device", p.Kind())
	}
	if len(p.Stages) != 7 {
		t.Fatalf("got %d stages, want 7", len(p.Stages))
	}
	if got := p.Stages[0].(*WritePatternStage).Pattern; got != "checker" {
		t.Fatalf("pattern = %q", got)
	}
	// Load normalizes every stage's declared type token.
	for i, s := range p.Stages {
		declared := reflect.ValueOf(s).Elem().FieldByName("Type").String()
		if declared != s.StageType() {
			t.Fatalf("stage %d: type field %q != token %q", i, declared, s.StageType())
		}
	}
}

func TestLoadRejects(t *testing.T) {
	cases := []struct {
		name string
		json string
		want string // substring of the error
	}{
		{"unknown top-level field", `{"version":1,"seed":1,"bogus":2,"stages":[{"type":"disable_refresh"}]}`, "bogus"},
		{"unknown stage type", `{"version":1,"seed":1,"stages":[{"type":"warp_drive"}]}`, "unknown stage type"},
		{"unknown stage field", `{"version":1,"seed":1,"stages":[{"type":"wait","seconds":1,"minutes":2}]}`, "minutes"},
		{"missing stage type", `{"version":1,"seed":1,"stages":[{"seconds":1}]}`, "missing \"type\""},
		{"wrong field type in stage", `{"version":1,"seed":1,"stages":[{"type":"wait","seconds":"soon"}]}`, "cannot unmarshal"},
		{"trailing content", minimalDevice() + `{"version":1}`, "trailing content"},
		{"bad version", `{"version":2,"seed":1,"stages":[{"type":"disable_refresh"}]}`, "unsupported program version"},
		{"no stages", `{"version":1,"seed":1,"stages":[]}`, "no stages"},
		{"unknown vendor", `{"version":1,"seed":1,"fleet":{"vendor":"Z"},"stages":[{"type":"disable_refresh"}]}`, "unknown vendor"},
		{"tiny chip", `{"version":1,"seed":1,"fleet":{"bits":4096},"stages":[{"type":"disable_refresh"}]}`, "fleet.bits"},
		{"negative wait", `{"version":1,"seed":1,"stages":[{"type":"wait","seconds":-1}]}`, "seconds"},
		{"bad pattern", `{"version":1,"seed":1,"stages":[{"type":"write_pattern","pattern":"plaid"}]}`, "plaid"},
		{"read before write", `{"version":1,"seed":1,"stages":[{"type":"read_compare"}]}`, "prior write_pattern"},
		{"classify before read", `{"version":1,"seed":1,"stages":[
			{"type":"write_pattern","pattern":"solid1"},
			{"type":"classify","target_interval_s":1,"target_temp_c":45}]}`, "prior read_compare or profile"},
		{"mixed families", `{"version":1,"seed":1,"stages":[
			{"type":"disable_refresh"},
			{"type":"soak","hours":1,"target_interval_s":1,"controller":true}]}`, "cannot mix"},
		{"inject kind", `{"version":1,"seed":1,"stages":[{"type":"inject_fault","kind":"gamma_ray","cells":3}]}`, "unknown kind"},
		{"inject missing mu", `{"version":1,"seed":1,"stages":[{"type":"inject_fault","kind":"vrt_burst","cells":3}]}`, "max_mu_s"},
		{"inject stray mu", `{"version":1,"seed":1,"stages":[{"type":"inject_fault","kind":"dpd_rescramble","cells":3,"max_mu_s":1}]}`, "does not take max_mu_s"},
		{"unknown soak scenario", `{"version":1,"seed":1,"stages":[{"type":"soak","hours":1,"target_interval_s":1,"controller":true,"scenario":"apocalyptic"}]}`, "unknown scenario"},
		{"empty grid", `{"version":1,"seed":1,"stages":[{"type":"tradeoff_grid","target_interval_s":1,"target_temp_c":45,"delta_intervals_s":[],"delta_temps_c":[0]}]}`, "empty reach grid"},
		{"trace on campaign", `{"version":1,"seed":1,"output":{"include_trace":true},"stages":[{"type":"soak","hours":1,"target_interval_s":1,"controller":true}]}`, "include_trace"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Load([]byte(tc.json))
			if err == nil {
				t.Fatalf("Load accepted %s", tc.name)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestCanonicalRoundTrip(t *testing.T) {
	p, err := Load([]byte(minimalDevice()))
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	canon, err := p.Canonical()
	if err != nil {
		t.Fatalf("Canonical: %v", err)
	}
	back, err := Load(canon)
	if err != nil {
		t.Fatalf("Load(Canonical): %v", err)
	}
	if !reflect.DeepEqual(p, back) {
		t.Fatalf("round trip diverged:\n%+v\nvs\n%+v", p, back)
	}
	canon2, err := back.Canonical()
	if err != nil {
		t.Fatalf("second Canonical: %v", err)
	}
	if string(canon) != string(canon2) {
		t.Fatalf("canonical form not stable:\n%s\nvs\n%s", canon, canon2)
	}
}

func TestCanonicalFillsStageTypes(t *testing.T) {
	// A Go-constructed program may leave the Type fields empty; Canonical
	// normalizes them.
	p := &Program{
		Version: Version,
		Seed:    3,
		Stages: []Stage{
			&WritePatternStage{Pattern: "solid1"},
			&ReadCompareStage{},
		},
	}
	canon, err := p.Canonical()
	if err != nil {
		t.Fatalf("Canonical: %v", err)
	}
	if !strings.Contains(string(canon), `"type": "write_pattern"`) {
		t.Fatalf("canonical form lacks normalized type token:\n%s", canon)
	}
}

func TestValidateRejectsMismatchedTypeField(t *testing.T) {
	p := &Program{
		Version: Version,
		Seed:    3,
		Stages:  []Stage{&WaitStage{Type: "write_pattern", Seconds: 1}},
	}
	if err := p.Validate(); err == nil || !strings.Contains(err.Error(), "does not match") {
		t.Fatalf("want type-mismatch error, got %v", err)
	}
}

func TestStageTypesSortedAndClosed(t *testing.T) {
	types := StageTypes()
	if len(types) != len(stageCodecs) {
		t.Fatalf("StageTypes returned %d of %d types", len(types), len(stageCodecs))
	}
	for i := 1; i < len(types); i++ {
		if types[i-1] >= types[i] {
			t.Fatalf("StageTypes not sorted: %v", types)
		}
	}
	// Every registered constructor produces a stage whose token maps back
	// to itself, so the decode dispatch is consistent.
	for _, token := range types {
		if got := stageCodecs[token]().StageType(); got != token {
			t.Fatalf("stage registered as %q reports type %q", token, got)
		}
	}
}

func TestCampaignProgramLoads(t *testing.T) {
	src := `{
  "version": 1,
  "seed": 11,
  "fleet": {"bits": 1048576, "weak_scale": 40},
  "stages": [
    {"type": "tradeoff_grid", "target_interval_s": 1.024, "target_temp_c": 45,
     "delta_intervals_s": [0, 0.25], "delta_temps_c": [0],
     "iterations": 4, "coverage_goal": 0.9, "max_iterations": 8}
  ],
  "output": {}
}`
	p, err := Load([]byte(src))
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if p.Kind() != KindCampaign {
		t.Fatalf("kind = %q, want campaign", p.Kind())
	}
}

// TestResultJSONDeterministic pins that marshaling a Result twice gives
// identical bytes (encoding/json struct order is declaration order; no
// maps are involved anywhere in the result schema).
func TestResultJSONDeterministic(t *testing.T) {
	r := &Result{Name: "x", Seed: 1, Version: Version, Kind: KindDevice}
	a, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatalf("marshal not deterministic")
	}
}
