package testprog_test

import (
	"fmt"

	"reaper/internal/testprog"
)

// ExampleLoad loads a small device program from JSON, shows the strict
// validation result, and re-encodes it canonically.
func ExampleLoad() {
	src := `{
  "version": 1,
  "name": "retention-smoke",
  "seed": 42,
  "fleet": {"bits": 1048576, "weak_scale": 40},
  "stages": [
    {"type": "write_pattern", "pattern": "checker"},
    {"type": "disable_refresh"},
    {"type": "wait", "seconds": 2},
    {"type": "enable_refresh"},
    {"type": "read_compare", "label": "after-2s"}
  ],
  "output": {"failing_bits": 4}
}`
	p, err := testprog.Load([]byte(src))
	if err != nil {
		fmt.Println("load failed:", err)
		return
	}
	fmt.Println("name:", p.Name)
	fmt.Println("kind:", p.Kind())
	fmt.Println("stages:", len(p.Stages))

	// Unknown stage fields are rejected, not ignored.
	_, err = testprog.Load([]byte(`{
  "version": 1, "seed": 1,
  "stages": [{"type": "wait", "seconds": 1, "retries": 3}]
}`))
	fmt.Println("strict:", err != nil)
	// Output:
	// name: retention-smoke
	// kind: device
	// stages: 5
	// strict: true
}
