package testprog

import (
	"reaper/internal/core"
	"reaper/internal/experiments"
	"reaper/internal/telemetry"
)

// Result is the outcome of running a program. It serializes with the
// repository-wide lower_snake_case convention and is deterministic: for a
// given program (and thus seed), the JSON encoding is byte-identical at
// any worker count.
type Result struct {
	// Name, Seed, and Version echo the program.
	Name    string `json:"name,omitempty"`
	Seed    uint64 `json:"seed"`
	Version int    `json:"version"`
	// Kind is the program's stage family: "device" or "campaign".
	Kind Kind `json:"kind"`
	// Chips holds per-chip pipelines for device programs, in chip order.
	Chips []ChipRun `json:"chips,omitempty"`
	// Stages holds campaign stage results for campaign programs, in
	// stage order.
	Stages []StageResult `json:"stages,omitempty"`
	// Metrics is the telemetry registry snapshot, present when the
	// program's output.include_metrics is set.
	Metrics *telemetry.Snapshot `json:"metrics,omitempty"`
	// Trace is the merged per-chip trace timeline in (clock, source,
	// seq) order, present when output.include_trace is set.
	Trace []telemetry.Event `json:"trace,omitempty"`
}

// ChipRun is one chip's pass through a device program's stages.
type ChipRun struct {
	// Chip is the fleet index; Seed is the chip's derived device seed
	// (program seed + chip index — see API.md "Determinism contract").
	Chip int    `json:"chip"`
	Seed uint64 `json:"seed"`
	// Stages holds one result per program stage, in order.
	Stages []StageResult `json:"stages"`
	// ClockS is the chip's final simulated clock, in seconds.
	ClockS float64 `json:"clock_s"`
	// UniqueFailures is the size of the chip's cumulative failure set
	// after the last stage.
	UniqueFailures int `json:"unique_failures"`
}

// StageResult is the outcome of one stage. Stage carries the stage-type
// token and exactly one of the optional payloads is populated, matching
// the stage family (stages with no measurement — write_pattern, wait,
// refresh control, set_temp — carry only the token and the clock).
type StageResult struct {
	// Stage is the stage-type token; Index its position in the program.
	Stage string `json:"stage"`
	Index int    `json:"index"`
	// ClockS is the chip's simulated clock after the stage, in seconds.
	// Device stages only.
	ClockS float64 `json:"clock_s,omitempty"`
	// ReadCompare is set for read_compare stages.
	ReadCompare *ReadCompareResult `json:"read_compare,omitempty"`
	// Classify is set for classify stages.
	Classify *ClassifyResult `json:"classify,omitempty"`
	// Profile is set for profile stages.
	Profile *ProfileResult `json:"profile,omitempty"`
	// Inject is set for inject_fault stages.
	Inject *InjectResult `json:"inject,omitempty"`
	// Tradeoff is set for tradeoff_grid stages: the Figure 9/10 grid in
	// row-major order, byte-identical to the Go API path
	// (experiments.Fig9Fig10Tradeoff) for the same configuration.
	Tradeoff []core.TradeoffPoint `json:"tradeoff,omitempty"`
	// Soak is set for soak stages.
	Soak *experiments.SoakReport `json:"soak,omitempty"`
	// Population is set for population_sweep stages, one entry per
	// vendor.
	Population []experiments.PopulationResult `json:"population,omitempty"`
}

// ReadCompareResult reports one read-back.
type ReadCompareResult struct {
	// Label echoes the stage's label.
	Label string `json:"label,omitempty"`
	// Failures is how many cells failed this read; NewFailures how many
	// of them were not already in the chip's cumulative set.
	Failures    int `json:"failures"`
	NewFailures int `json:"new_failures"`
	// FailingBits lists up to output.failing_bits failing cell addresses
	// (sorted global bit indices) from this read.
	FailingBits []uint64 `json:"failing_bits,omitempty"`
}

// ClassifyResult scores the cumulative failure set against ground truth.
type ClassifyResult struct {
	// TruthSize is the oracle failing-cell count at the target
	// conditions; Found the cumulative set size being scored.
	TruthSize int `json:"truth_size"`
	Found     int `json:"found"`
	// Coverage and FalsePositiveRate are the Figure 9 quantities.
	Coverage          float64 `json:"coverage"`
	FalsePositiveRate float64 `json:"false_positive_rate"`
}

// ProfileResult reports one profile stage (a full Algorithm-1 round at
// reach conditions).
type ProfileResult struct {
	// IntervalS and TempC are the conditions profiling actually ran at
	// (target + reach deltas).
	IntervalS float64 `json:"interval_s"`
	TempC     float64 `json:"temp_c"`
	// Iterations actually executed.
	Iterations int `json:"iterations"`
	// Failures is the run's own failing-cell count; NewFailures how many
	// were new to the chip's cumulative set.
	Failures    int `json:"failures"`
	NewFailures int `json:"new_failures"`
	// RuntimeS is the simulated profiling time consumed.
	RuntimeS float64 `json:"runtime_s"`
	// Records holds the per-(iteration, pattern) passes when
	// output.include_records is set.
	Records []PassRecord `json:"records,omitempty"`
}

// PassRecord is one (iteration, pattern) pass of a profile stage.
type PassRecord struct {
	// Iteration is 1-based; Pattern the data-pattern name.
	Iteration int    `json:"iteration"`
	Pattern   string `json:"pattern"`
	// Failures and NewFailures count this pass's failing cells and how
	// many were first seen here; ClockS is the simulated clock after the
	// pass.
	Failures    int     `json:"failures"`
	NewFailures int     `json:"new_failures"`
	ClockS      float64 `json:"clock_s"`
}

// InjectResult reports one fault injection.
type InjectResult struct {
	// Kind echoes the stage's fault kind; Cells is how many cells were
	// actually perturbed (injection can touch fewer than requested when
	// the random stream collides with existing weak cells).
	Kind  string `json:"kind"`
	Cells int    `json:"cells"`
}
