package testprog

import (
	"bytes"
	"encoding/json"
	"fmt"
	"reflect"
	"sort"
	"strings"
)

// Bounds enforced by Validate on the fleet spec, so a malformed program
// cannot request an absurd simulation. The fleet ceiling assumes lazy
// shard execution (stages accept shard_size): chips outside the active
// shard cost a few words each, so million-chip programs are admissible —
// the bound only rejects obvious typos, not large campaigns.
const (
	maxFleetChips = 1 << 20
	minChipBits   = 1 << 20 // 1 Mbit
	maxChipBits   = 1 << 32 // 4 Gbit
	maxWeakScale  = 1000
	maxNameLen    = 128
)

// StageTypes returns every registered stage-type token, sorted.
func StageTypes() []string {
	out := make([]string, 0, len(stageCodecs))
	for token := range stageCodecs {
		out = append(out, token)
	}
	sort.Strings(out)
	return out
}

// programWire mirrors Program with raw stages, so Load can dispatch each
// stage to its concrete type and strict-decode it individually.
type programWire struct {
	Version int               `json:"version"`
	Name    string            `json:"name,omitempty"`
	Seed    uint64            `json:"seed"`
	Fleet   Fleet             `json:"fleet"`
	Stages  []json.RawMessage `json:"stages"`
	Output  Output            `json:"output"`
}

// Load parses and validates a JSON test program. It is strict: unknown
// top-level fields, unknown fleet/output fields, unknown stage types, and
// unknown fields inside any stage are all errors, as is trailing content
// after the program object. The returned program is validated and
// normalized (every stage's "type" field is filled).
func Load(data []byte) (*Program, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var w programWire
	if err := dec.Decode(&w); err != nil {
		return nil, fmt.Errorf("testprog: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("testprog: trailing content after program object")
	}
	p := &Program{
		Version: w.Version,
		Name:    w.Name,
		Seed:    w.Seed,
		Fleet:   w.Fleet,
		Output:  w.Output,
	}
	for i, raw := range w.Stages {
		s, err := decodeStage(raw, i)
		if err != nil {
			return nil, err
		}
		p.Stages = append(p.Stages, s)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// decodeStage strict-decodes one raw stage: probe the "type" token, look
// up the concrete stage type in the closed registry, and reject unknown
// fields against that type.
func decodeStage(raw json.RawMessage, i int) (Stage, error) {
	var probe struct {
		Type string `json:"type"`
	}
	if err := json.Unmarshal(raw, &probe); err != nil {
		return nil, fmt.Errorf("testprog: stage %d: %w", i, err)
	}
	if probe.Type == "" {
		return nil, fmt.Errorf("testprog: stage %d: missing \"type\" field", i)
	}
	mk, ok := stageCodecs[probe.Type]
	if !ok {
		return nil, fmt.Errorf("testprog: stage %d: unknown stage type %q (valid: %s)",
			i, probe.Type, strings.Join(StageTypes(), ", "))
	}
	s := mk()
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(s); err != nil {
		return nil, fmt.Errorf("testprog: stage %d (%s): %w", i, probe.Type, err)
	}
	return s, nil
}

// fillType normalizes a stage's "type" JSON field to its token. All stage
// types are pointer structs with a Type string field.
func fillType(s Stage) {
	reflect.ValueOf(s).Elem().FieldByName("Type").SetString(s.StageType())
}

// Validate checks the whole program — version, name, fleet bounds, stage
// family consistency, and every stage's own constraints — and normalizes
// it (fills each stage's "type" field). Load calls it; programs
// constructed in Go should call it (or Canonical, which does) before Run.
func (p *Program) Validate() error {
	if p.Version != Version {
		return fmt.Errorf("testprog: unsupported program version %d (this build supports %d)",
			p.Version, Version)
	}
	if len(p.Name) > maxNameLen {
		return fmt.Errorf("testprog: name longer than %d bytes", maxNameLen)
	}
	for _, r := range p.Name {
		if r < 0x20 || r == 0x7f {
			return fmt.Errorf("testprog: name contains control character %q", r)
		}
	}
	if err := p.Fleet.validate(); err != nil {
		return err
	}
	if len(p.Stages) == 0 {
		return fmt.Errorf("testprog: program has no stages")
	}
	campaigns := 0
	for _, s := range p.Stages {
		if campaignStage(s.StageType()) {
			campaigns++
		}
	}
	if campaigns != 0 && campaigns != len(p.Stages) {
		return fmt.Errorf("testprog: device stages and campaign stages cannot mix in one program")
	}
	for i, s := range p.Stages {
		if s == nil {
			return fmt.Errorf("testprog: stage %d is nil", i)
		}
		declared := reflect.ValueOf(s).Elem().FieldByName("Type").String()
		if declared != "" && declared != s.StageType() {
			return fmt.Errorf("testprog: stage %d: type field %q does not match stage type %q",
				i, declared, s.StageType())
		}
		if err := s.validate(p, i); err != nil {
			return fmt.Errorf("testprog: %w", err)
		}
		fillType(s)
	}
	if p.Output.FailingBits < 0 {
		return fmt.Errorf("testprog: output.failing_bits must be non-negative")
	}
	if p.Output.IncludeTrace && p.Kind() == KindCampaign {
		return fmt.Errorf("testprog: output.include_trace is only supported for device programs")
	}
	return nil
}

func (f Fleet) validate() error {
	if f.Chips < 0 || f.Chips > maxFleetChips {
		return fmt.Errorf("testprog: fleet.chips %d out of [0, %d]", f.Chips, maxFleetChips)
	}
	if f.Bits != 0 && (f.Bits < minChipBits || f.Bits > maxChipBits) {
		return fmt.Errorf("testprog: fleet.bits %d out of [%d, %d] (or 0 for the default)",
			f.Bits, int64(minChipBits), int64(maxChipBits))
	}
	if f.WeakScale < 0 || f.WeakScale > maxWeakScale {
		return fmt.Errorf("testprog: fleet.weak_scale %v out of [0, %d]", f.WeakScale, maxWeakScale)
	}
	if _, err := f.vendor(); err != nil {
		return err
	}
	return nil
}

// Canonical validates and normalizes the program, then encodes it in the
// canonical deterministic form: two-space-indented JSON with struct fields
// in schema order and a trailing newline. Load(Canonical(p)) returns a
// program deeply equal to the validated p, and two programs are
// semantically identical iff their canonical bytes are equal.
func (p *Program) Canonical() ([]byte, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	enc, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("testprog: %w", err)
	}
	return append(enc, '\n'), nil
}
