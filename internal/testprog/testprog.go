// Package testprog defines the versioned JSON test-program representation:
// DRAM characterization campaigns expressed as data instead of Go code, in
// the SoftMC tradition of declarative stage pipelines (write pattern →
// disable refresh → wait → read back → classify).
//
// A Program is a seed, a fleet specification, an ordered list of stages,
// and an output selection. Two stage families exist:
//
//   - Device stages (write_pattern, set_temp, disable_refresh,
//     enable_refresh, wait, read_compare, classify, inject_fault, profile)
//     lower onto internal/memctrl station primitives and run once per chip
//     in the fleet, fanned out on the deterministic worker pool.
//   - Campaign stages (tradeoff_grid, soak, population_sweep) lower onto
//     the internal/experiments harnesses and run once per program.
//
// The two families cannot be mixed in one program.
//
// Loading is strict: unknown top-level fields, unknown stage types, and
// unknown fields inside any stage are all rejected (Load). Canonical
// re-encodes a program deterministically so that Load∘Canonical is the
// identity and byte comparison of canonical forms is semantic comparison.
//
// Execution (Run) is deterministic: given the same program bytes, the
// result is byte-identical at any worker count. All randomness derives
// from the program seed via internal/rng streams — chip c uses seed
// program.seed + c, and fault-injection streams are derived per chip via
// rng.Derive. API.md documents the JSON schema, the seed-derivation
// contract, and the shared lower_snake_case field-naming convention.
package testprog

import (
	"fmt"

	"reaper/internal/dram"
	"reaper/internal/experiments"
)

// Version is the current (and only) test-program schema version; programs
// must declare it in their "version" field.
const Version = 1

// Program is one declarative test program. See the package comment and
// API.md for the schema; construct programs in Go or load them from JSON
// with Load.
type Program struct {
	// Version is the schema version; must equal Version.
	Version int `json:"version"`
	// Name labels the program in results and server listings. Optional.
	Name string `json:"name,omitempty"`
	// Seed drives every random stream in the program. Two runs of the
	// same program bytes produce byte-identical results (see API.md
	// "Determinism contract").
	Seed uint64 `json:"seed"`
	// Fleet describes the simulated chips the stages run against.
	Fleet Fleet `json:"fleet"`
	// Stages execute in order. All stages must belong to one family
	// (device or campaign).
	Stages []Stage `json:"stages"`
	// Output selects what the result includes beyond the per-stage
	// summaries.
	Output Output `json:"output"`
}

// Fleet describes the simulated chip population a program runs against.
// The zero value means one default chip (64 Mbit, 20x weak-cell
// amplification, vendor B) — the same defaults as
// experiments.DefaultChipSpec.
type Fleet struct {
	// Chips is the fleet size for device programs and the soak stage;
	// 0 means 1. The tradeoff_grid stage profiles a single chip and the
	// population_sweep stage sizes its fleet with chips_per_vendor, so
	// both ignore this field.
	Chips int `json:"chips,omitempty"`
	// Bits is the per-chip capacity; 0 means 64 Mbit. Small programs
	// should set this (e.g. 8388608 = 8 Mbit) — simulated profiling time
	// scales with it.
	Bits int64 `json:"bits,omitempty"`
	// WeakScale amplifies weak-cell density (scale-model chips, see
	// EXPERIMENTS.md); 0 means 20.
	WeakScale float64 `json:"weak_scale,omitempty"`
	// Vendor selects the retention model: "A", "B", or "C". Empty means
	// "B" (the paper's representative vendor).
	Vendor string `json:"vendor,omitempty"`
	// Chamber couples each station to a simulated thermal chamber.
	Chamber bool `json:"chamber,omitempty"`
	// DisableVRT and DisableDPD build ablated chips without the
	// variable-retention-time / data-pattern-dependence mechanisms.
	DisableVRT bool `json:"disable_vrt,omitempty"`
	DisableDPD bool `json:"disable_dpd,omitempty"`
}

// Units returns the number of progress units Run reports for the
// program: chips × stages for device programs (each stage runs once per
// chip), stage count for campaigns. Callers that display progress before
// a run starts — e.g. the reaperd scheduler — use this as the fixed
// Total of the run's ProgressEvents.
func (p *Program) Units() int64 {
	if p.Kind() == KindCampaign {
		return int64(len(p.Stages))
	}
	return int64(p.Fleet.chips()) * int64(len(p.Stages))
}

// chips returns the effective device-program fleet size.
func (f Fleet) chips() int {
	if f.Chips <= 0 {
		return 1
	}
	return f.Chips
}

// vendor resolves the vendor name; empty selects vendor B.
func (f Fleet) vendor() (dram.VendorParams, error) {
	if f.Vendor == "" {
		return dram.VendorB(), nil
	}
	for _, v := range dram.Vendors() {
		if v.Name == f.Vendor {
			return v, nil
		}
	}
	return dram.VendorParams{}, fmt.Errorf("testprog: unknown vendor %q (valid: A, B, C)", f.Vendor)
}

// chipSpec builds the experiments.ChipSpec for one chip of the fleet.
// Validation has already established the vendor name resolves.
func (f Fleet) chipSpec(seed uint64) experiments.ChipSpec {
	v, _ := f.vendor()
	return experiments.ChipSpec{
		Bits:       f.Bits,
		WeakScale:  f.WeakScale,
		Vendor:     v,
		Seed:       seed,
		Chamber:    f.Chamber,
		DisableVRT: f.DisableVRT,
		DisableDPD: f.DisableDPD,
	}
}

// Output selects optional result payload beyond the per-stage summaries.
type Output struct {
	// IncludeRecords embeds the per-(iteration, pattern) pass records in
	// profile stage results.
	IncludeRecords bool `json:"include_records,omitempty"`
	// FailingBits caps how many failing cell addresses (sorted global bit
	// indices) read_compare results embed; 0 embeds none.
	FailingBits int `json:"failing_bits,omitempty"`
	// IncludeMetrics embeds the deterministic telemetry snapshot
	// (internal/telemetry registry, sorted) in the result.
	IncludeMetrics bool `json:"include_metrics,omitempty"`
	// IncludeTrace embeds the merged per-chip trace timeline in the
	// result. Device programs only.
	IncludeTrace bool `json:"include_trace,omitempty"`
}
