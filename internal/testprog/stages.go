package testprog

import (
	"fmt"

	"reaper/internal/faultinject"
	"reaper/internal/patterns"
)

// Stage is one step of a test program. Concrete stage types are the
// exported *Stage structs in this package; each carries a "type" JSON
// field holding its stage-type token (the value StageType returns).
// Programs constructed in Go may leave the Type field empty — Validate
// and Canonical fill it.
type Stage interface {
	// StageType returns the stage's type token, e.g. "write_pattern".
	StageType() string
	// validate checks the stage's own fields and its position inside the
	// program (index i). The closed stage set keeps the loader strict:
	// only types registered in stageCodecs decode.
	validate(p *Program, i int) error
}

// Stage-type tokens, in the shared lower_snake_case naming convention
// (API.md "Naming convention").
const (
	StageWritePattern    = "write_pattern"
	StageSetTemp         = "set_temp"
	StageDisableRefresh  = "disable_refresh"
	StageEnableRefresh   = "enable_refresh"
	StageWait            = "wait"
	StageReadCompare     = "read_compare"
	StageClassify        = "classify"
	StageInjectFault     = "inject_fault"
	StageProfile         = "profile"
	StageTradeoffGrid    = "tradeoff_grid"
	StageSoak            = "soak"
	StagePopulationSweep = "population_sweep"
)

// stageCodecs is the closed registry of stage types: token → constructor
// of an empty stage to strict-decode into. Load rejects any token not
// present here.
var stageCodecs = map[string]func() Stage{
	StageWritePattern:    func() Stage { return &WritePatternStage{} },
	StageSetTemp:         func() Stage { return &SetTempStage{} },
	StageDisableRefresh:  func() Stage { return &DisableRefreshStage{} },
	StageEnableRefresh:   func() Stage { return &EnableRefreshStage{} },
	StageWait:            func() Stage { return &WaitStage{} },
	StageReadCompare:     func() Stage { return &ReadCompareStage{} },
	StageClassify:        func() Stage { return &ClassifyStage{} },
	StageInjectFault:     func() Stage { return &InjectFaultStage{} },
	StageProfile:         func() Stage { return &ProfileStage{} },
	StageTradeoffGrid:    func() Stage { return &TradeoffGridStage{} },
	StageSoak:            func() Stage { return &SoakStage{} },
	StagePopulationSweep: func() Stage { return &PopulationSweepStage{} },
}

// campaignStage reports whether a stage type token names a campaign stage
// (runs once per program over experiment harnesses) rather than a device
// stage (runs once per chip over station primitives).
func campaignStage(token string) bool {
	switch token {
	case StageTradeoffGrid, StageSoak, StagePopulationSweep:
		return true
	}
	return false
}

// Kind labels the two stage families a program can be built from.
type Kind string

// The two program kinds; Program.Kind in results carries one of these.
const (
	KindDevice   Kind = "device"
	KindCampaign Kind = "campaign"
)

// Kind returns the program's stage family. It assumes a validated program
// (mixed families fail Validate); an empty program returns KindDevice.
func (p *Program) Kind() Kind {
	for _, s := range p.Stages {
		if campaignStage(s.StageType()) {
			return KindCampaign
		}
	}
	return KindDevice
}

// Temperature bounds accepted by set_temp and the classify/grid targets:
// the thermal model is calibrated for this operating envelope.
const (
	MinTempC = 0
	MaxTempC = 120
)

// maxWaitSeconds bounds a single wait stage (~4 simulated months) so a
// typo cannot request an unbounded simulation.
const maxWaitSeconds = 1e7

// WritePatternStage writes a data pattern to every row of the chip.
type WritePatternStage struct {
	// Type is the stage-type token, StageWritePattern.
	Type string `json:"type"`
	// Pattern names the data pattern in the internal/patterns grammar:
	// solid0, solid1, checker, colstripe, rowstripe, walk1,
	// random(0x9e37), and any of these prefixed with "~" for the inverse.
	Pattern string `json:"pattern"`
}

// StageType implements Stage.
func (s *WritePatternStage) StageType() string { return StageWritePattern }

func (s *WritePatternStage) validate(_ *Program, i int) error {
	if _, err := patterns.Parse(s.Pattern); err != nil {
		return fmt.Errorf("stage %d (%s): %w", i, s.StageType(), err)
	}
	return nil
}

// SetTempStage sets the ambient temperature of the chip's environment.
type SetTempStage struct {
	// Type is the stage-type token, StageSetTemp.
	Type string `json:"type"`
	// AmbientC is the new ambient temperature in °C, in (MinTempC,
	// MaxTempC].
	AmbientC float64 `json:"ambient_c"`
}

// StageType implements Stage.
func (s *SetTempStage) StageType() string { return StageSetTemp }

func (s *SetTempStage) validate(_ *Program, i int) error {
	if s.AmbientC <= MinTempC || s.AmbientC > MaxTempC {
		return fmt.Errorf("stage %d (%s): ambient_c %v out of (%d, %d]",
			i, s.StageType(), s.AmbientC, MinTempC, MaxTempC)
	}
	return nil
}

// DisableRefreshStage pauses DRAM refresh so cells begin to decay.
type DisableRefreshStage struct {
	// Type is the stage-type token, StageDisableRefresh.
	Type string `json:"type"`
}

// StageType implements Stage.
func (s *DisableRefreshStage) StageType() string { return StageDisableRefresh }

func (s *DisableRefreshStage) validate(*Program, int) error { return nil }

// EnableRefreshStage re-enables refresh, locking in any decay that
// happened while it was off (the station restores all rows).
type EnableRefreshStage struct {
	// Type is the stage-type token, StageEnableRefresh.
	Type string `json:"type"`
}

// StageType implements Stage.
func (s *EnableRefreshStage) StageType() string { return StageEnableRefresh }

func (s *EnableRefreshStage) validate(*Program, int) error { return nil }

// WaitStage advances simulated time.
type WaitStage struct {
	// Type is the stage-type token, StageWait.
	Type string `json:"type"`
	// Seconds is the simulated wait, in (0, 1e7].
	Seconds float64 `json:"seconds"`
}

// StageType implements Stage.
func (s *WaitStage) StageType() string { return StageWait }

func (s *WaitStage) validate(_ *Program, i int) error {
	if s.Seconds <= 0 || s.Seconds > maxWaitSeconds {
		return fmt.Errorf("stage %d (%s): seconds %v out of (0, %g]",
			i, s.StageType(), s.Seconds, float64(maxWaitSeconds))
	}
	return nil
}

// ReadCompareStage reads every row back and records the cells whose
// contents no longer match the last written pattern. Failing cells
// accumulate into the program's cumulative failure set (which classify
// scores).
type ReadCompareStage struct {
	// Type is the stage-type token, StageReadCompare.
	Type string `json:"type"`
	// Label tags this read-back in the result (optional).
	Label string `json:"label,omitempty"`
}

// StageType implements Stage.
func (s *ReadCompareStage) StageType() string { return StageReadCompare }

func (s *ReadCompareStage) validate(p *Program, i int) error {
	for _, prior := range p.Stages[:i] {
		if prior.StageType() == StageWritePattern {
			return nil
		}
	}
	return fmt.Errorf("stage %d (%s): requires a prior write_pattern stage", i, s.StageType())
}

// ClassifyStage scores the cumulative failure set against the simulator's
// ground-truth failing set at the given target conditions — coverage and
// false positive rate, the paper's Figure 9 quantities.
type ClassifyStage struct {
	// Type is the stage-type token, StageClassify.
	Type string `json:"type"`
	// TargetIntervalS is the refresh interval the system would actually
	// run at, in seconds.
	TargetIntervalS float64 `json:"target_interval_s"`
	// TargetTempC is the operating temperature to score at.
	TargetTempC float64 `json:"target_temp_c"`
}

// StageType implements Stage.
func (s *ClassifyStage) StageType() string { return StageClassify }

func (s *ClassifyStage) validate(p *Program, i int) error {
	if s.TargetIntervalS <= 0 {
		return fmt.Errorf("stage %d (%s): target_interval_s must be positive", i, s.StageType())
	}
	if s.TargetTempC <= MinTempC || s.TargetTempC > MaxTempC {
		return fmt.Errorf("stage %d (%s): target_temp_c %v out of (%d, %d]",
			i, s.StageType(), s.TargetTempC, MinTempC, MaxTempC)
	}
	for _, prior := range p.Stages[:i] {
		switch prior.StageType() {
		case StageReadCompare, StageProfile:
			return nil
		}
	}
	return fmt.Errorf("stage %d (%s): requires a prior read_compare or profile stage", i, s.StageType())
}

// Fault kinds accepted by inject_fault, lowering onto the internal/dram
// injection primitives (Section 2.3 hazards).
const (
	// FaultWeakArrival injects new weak cells (Fig 4 arrival process).
	FaultWeakArrival = "weak_arrival"
	// FaultVRTBurst forces existing cells into their low-retention VRT
	// state (Section 2.3.1 escapes).
	FaultVRTBurst = "vrt_burst"
	// FaultDPDRescramble rescrambles data-pattern-dependence coupling
	// (Section 2.3.2).
	FaultDPDRescramble = "dpd_rescramble"
)

// InjectFaultStage perturbs the chip with one of the Section 2.3 hazard
// mechanisms, deterministically: each chip owns an rng stream derived
// from the program seed, consumed by its inject stages in program order.
type InjectFaultStage struct {
	// Type is the stage-type token, StageInjectFault.
	Type string `json:"type"`
	// Kind selects the mechanism: FaultWeakArrival, FaultVRTBurst, or
	// FaultDPDRescramble.
	Kind string `json:"kind"`
	// Cells is how many cells to perturb.
	Cells int `json:"cells"`
	// MaxMuS bounds the injected retention time in seconds (the weakest
	// cell injected). Required for weak_arrival and vrt_burst; must be
	// omitted for dpd_rescramble.
	MaxMuS float64 `json:"max_mu_s,omitempty"`
}

// StageType implements Stage.
func (s *InjectFaultStage) StageType() string { return StageInjectFault }

func (s *InjectFaultStage) validate(_ *Program, i int) error {
	if s.Cells <= 0 {
		return fmt.Errorf("stage %d (%s): cells must be positive", i, s.StageType())
	}
	switch s.Kind {
	case FaultWeakArrival, FaultVRTBurst:
		if s.MaxMuS <= 0 {
			return fmt.Errorf("stage %d (%s): kind %q requires max_mu_s > 0", i, s.StageType(), s.Kind)
		}
	case FaultDPDRescramble:
		if s.MaxMuS != 0 {
			return fmt.Errorf("stage %d (%s): kind %q does not take max_mu_s", i, s.StageType(), s.Kind)
		}
	default:
		return fmt.Errorf("stage %d (%s): unknown kind %q (valid: %s, %s, %s)",
			i, s.StageType(), s.Kind, FaultWeakArrival, FaultVRTBurst, FaultDPDRescramble)
	}
	return nil
}

// maxProfileIterations bounds a profile stage's testing rounds.
const maxProfileIterations = 1024

// ProfileStage runs a full reach-profiling round (the paper's Algorithm 1
// at reach conditions): the standard pattern set, iterated, at target
// interval + delta and ambient + delta. It is the macro equivalent of a
// hand-written write/disable/wait/enable/read loop, and its failures
// accumulate into the cumulative set like read_compare's.
type ProfileStage struct {
	// Type is the stage-type token, StageProfile.
	Type string `json:"type"`
	// TargetIntervalS is the target refresh interval in seconds.
	TargetIntervalS float64 `json:"target_interval_s"`
	// DeltaIntervalS and DeltaTempC are the reach conditions (both >= 0;
	// zero means brute-force profiling at the target).
	DeltaIntervalS float64 `json:"delta_interval_s,omitempty"`
	DeltaTempC     float64 `json:"delta_temp_c,omitempty"`
	// Iterations is the number of testing rounds; 0 means 16 (the
	// paper's standard).
	Iterations int `json:"iterations,omitempty"`
	// FreshRandom re-seeds the random patterns every iteration, per the
	// paper's methodology.
	FreshRandom bool `json:"fresh_random,omitempty"`
	// Seed overrides the pattern-seed for this stage; 0 derives it from
	// the program seed (chip seed), which is what campaigns normally
	// want.
	Seed uint64 `json:"seed,omitempty"`
}

// StageType implements Stage.
func (s *ProfileStage) StageType() string { return StageProfile }

func (s *ProfileStage) validate(_ *Program, i int) error {
	if s.TargetIntervalS <= 0 {
		return fmt.Errorf("stage %d (%s): target_interval_s must be positive", i, s.StageType())
	}
	if s.DeltaIntervalS < 0 || s.DeltaTempC < 0 {
		return fmt.Errorf("stage %d (%s): reach deltas must be non-negative", i, s.StageType())
	}
	if s.Iterations < 0 || s.Iterations > maxProfileIterations {
		return fmt.Errorf("stage %d (%s): iterations %d out of [0, %d]",
			i, s.StageType(), s.Iterations, maxProfileIterations)
	}
	return nil
}

// TradeoffGridStage runs the Figure 9/10 reach-condition grid — the
// campaign equivalent of experiments.Fig9Fig10Tradeoff with an identical
// configuration, so results are byte-identical to the Go API path.
// It profiles one chip built from the program fleet spec (fleet.chips is
// ignored) seeded with the program seed.
type TradeoffGridStage struct {
	// Type is the stage-type token, StageTradeoffGrid.
	Type string `json:"type"`
	// TargetIntervalS and TargetTempC are the operating conditions every
	// grid point is scored against.
	TargetIntervalS float64 `json:"target_interval_s"`
	TargetTempC     float64 `json:"target_temp_c"`
	// DeltaIntervalsS and DeltaTempsC span the reach grid; include 0 in
	// both to get the brute-force reference point.
	DeltaIntervalsS []float64 `json:"delta_intervals_s"`
	DeltaTempsC     []float64 `json:"delta_temps_c"`
	// Iterations samples coverage/FPR (0 means 16); CoverageGoal is the
	// Figure 10 runtime criterion (0 means 0.90); MaxIterations caps the
	// runtime search (0 means 4*Iterations).
	Iterations    int     `json:"iterations,omitempty"`
	CoverageGoal  float64 `json:"coverage_goal,omitempty"`
	MaxIterations int     `json:"max_iterations,omitempty"`
}

// StageType implements Stage.
func (s *TradeoffGridStage) StageType() string { return StageTradeoffGrid }

func (s *TradeoffGridStage) validate(_ *Program, i int) error {
	if s.TargetIntervalS <= 0 {
		return fmt.Errorf("stage %d (%s): target_interval_s must be positive", i, s.StageType())
	}
	if s.TargetTempC <= MinTempC || s.TargetTempC > MaxTempC {
		return fmt.Errorf("stage %d (%s): target_temp_c %v out of (%d, %d]",
			i, s.StageType(), s.TargetTempC, MinTempC, MaxTempC)
	}
	if len(s.DeltaIntervalsS) == 0 || len(s.DeltaTempsC) == 0 {
		return fmt.Errorf("stage %d (%s): empty reach grid", i, s.StageType())
	}
	for _, d := range s.DeltaIntervalsS {
		if d < 0 {
			return fmt.Errorf("stage %d (%s): negative delta interval %v", i, s.StageType(), d)
		}
	}
	for _, d := range s.DeltaTempsC {
		if d < 0 {
			return fmt.Errorf("stage %d (%s): negative delta temperature %v", i, s.StageType(), d)
		}
	}
	if s.CoverageGoal < 0 || s.CoverageGoal > 1 {
		return fmt.Errorf("stage %d (%s): coverage_goal %v out of [0, 1]", i, s.StageType(), s.CoverageGoal)
	}
	if s.Iterations < 0 || s.MaxIterations < 0 {
		return fmt.Errorf("stage %d (%s): negative iteration bound", i, s.StageType())
	}
	if s.MaxIterations > 0 && s.Iterations > s.MaxIterations {
		return fmt.Errorf("stage %d (%s): iterations %d exceeds max_iterations %d",
			i, s.StageType(), s.Iterations, s.MaxIterations)
	}
	return nil
}

// SoakStage runs a long-horizon fault-injection soak (experiments.Soak):
// the program fleet (fleet.chips chips built from the fleet spec) holds an
// extended refresh interval for simulated hours while a named fault
// scenario drives the Section 2.3 hazards, with or without the firmware
// resilience controller.
type SoakStage struct {
	// Type is the stage-type token, StageSoak.
	Type string `json:"type"`
	// Hours is the soak horizon in simulated hours.
	Hours float64 `json:"hours"`
	// TargetIntervalS is the extended refresh interval under test.
	TargetIntervalS float64 `json:"target_interval_s"`
	// WindowHours is the scrub window (0 means 1) and CadenceHours the
	// open-loop reprofiling cadence (0 means 24).
	WindowHours  float64 `json:"window_hours,omitempty"`
	CadenceHours float64 `json:"cadence_hours,omitempty"`
	// Scenario names a fault preset from internal/faultinject
	// (faultinject.ScenarioNames: default, quiet, harsh). Empty means
	// "default". The scenario seed derives from the program seed exactly
	// as cmd/soak derives it, so a named scenario here is bit-identical
	// to the same name on the cmd/soak command line.
	Scenario string `json:"scenario,omitempty"`
	// Controller enables the firmware resilience controller; false is
	// the open-loop baseline arm.
	Controller bool `json:"controller"`
	// MaxUBER is the survival criterion (0 means 1e-4).
	MaxUBER float64 `json:"max_uber,omitempty"`
	// ShardSize caps how many chips hold dense simulator state at once
	// (experiments.SoakConfig.ShardSize). 0 means no bound. Reports are
	// byte-identical at any value, so programs may set it purely to fit
	// large fleets in memory.
	ShardSize int `json:"shard_size,omitempty"`
}

// StageType implements Stage.
func (s *SoakStage) StageType() string { return StageSoak }

func (s *SoakStage) validate(_ *Program, i int) error {
	if s.Hours <= 0 {
		return fmt.Errorf("stage %d (%s): hours must be positive", i, s.StageType())
	}
	if s.TargetIntervalS <= 0 {
		return fmt.Errorf("stage %d (%s): target_interval_s must be positive", i, s.StageType())
	}
	if s.WindowHours < 0 || s.CadenceHours < 0 || s.MaxUBER < 0 {
		return fmt.Errorf("stage %d (%s): negative parameter", i, s.StageType())
	}
	if s.ShardSize < 0 {
		return fmt.Errorf("stage %d (%s): shard_size must be non-negative", i, s.StageType())
	}
	if s.Scenario != "" {
		if _, err := faultinject.NamedScenario(s.Scenario, 0, 1); err != nil {
			return fmt.Errorf("stage %d (%s): %w", i, s.StageType(), err)
		}
	}
	return nil
}

// PopulationSweepStage evaluates a fleet of chips per vendor at one reach
// condition and aggregates per-vendor statistics
// (experiments.PopulationSweep). Chip capacity and weak-cell scale come
// from the program fleet spec; fleet.chips and fleet.vendor are ignored
// (the sweep always covers all three vendors).
type PopulationSweepStage struct {
	// Type is the stage-type token, StagePopulationSweep.
	Type string `json:"type"`
	// ChipsPerVendor sizes the per-vendor fleet.
	ChipsPerVendor int `json:"chips_per_vendor"`
	// TargetIntervalS is the operating refresh interval in seconds.
	TargetIntervalS float64 `json:"target_interval_s"`
	// DeltaIntervalS and DeltaTempC are the reach condition every chip
	// profiles at (both >= 0).
	DeltaIntervalS float64 `json:"delta_interval_s,omitempty"`
	DeltaTempC     float64 `json:"delta_temp_c,omitempty"`
	// Iterations is the per-chip profiling rounds; 0 means 16.
	Iterations int `json:"iterations,omitempty"`
	// ShardSize caps how many chips are materialized at once
	// (experiments.PopulationConfig.ShardSize): the sweep runs in
	// consecutive shards of at most this many devices, so peak memory is
	// O(shard), not O(fleet). 0 means one fleet-wide batch. Results are
	// byte-identical at any value.
	ShardSize int `json:"shard_size,omitempty"`
}

// StageType implements Stage.
func (s *PopulationSweepStage) StageType() string { return StagePopulationSweep }

func (s *PopulationSweepStage) validate(_ *Program, i int) error {
	if s.ChipsPerVendor <= 0 {
		return fmt.Errorf("stage %d (%s): chips_per_vendor must be positive", i, s.StageType())
	}
	if s.ShardSize < 0 {
		return fmt.Errorf("stage %d (%s): shard_size must be non-negative", i, s.StageType())
	}
	if s.TargetIntervalS <= 0 {
		return fmt.Errorf("stage %d (%s): target_interval_s must be positive", i, s.StageType())
	}
	if s.DeltaIntervalS < 0 || s.DeltaTempC < 0 {
		return fmt.Errorf("stage %d (%s): reach deltas must be non-negative", i, s.StageType())
	}
	if s.Iterations < 0 || s.Iterations > maxProfileIterations {
		return fmt.Errorf("stage %d (%s): iterations %d out of [0, %d]",
			i, s.StageType(), s.Iterations, maxProfileIterations)
	}
	return nil
}
