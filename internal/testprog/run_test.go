package testprog

import (
	"context"
	"encoding/json"
	"strings"
	"sync/atomic"
	"testing"

	"reaper/internal/dram"
	"reaper/internal/experiments"
	"reaper/internal/faultinject"
	"reaper/internal/patterns"
)

func mustLoad(t *testing.T, src string) *Program {
	t.Helper()
	p, err := Load([]byte(src))
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	return p
}

func runJSON(t *testing.T, p *Program, workers int) []byte {
	t.Helper()
	res, err := Run(context.Background(), p, RunOptions{Workers: workers})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	enc, err := json.Marshal(res)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return enc
}

// TestDevicePipelineMatchesHandCoded proves the compiler lowers device
// stages onto exactly the station primitives a hand-written Go harness
// would call: same failures, same simulated clock.
func TestDevicePipelineMatchesHandCoded(t *testing.T) {
	p := mustLoad(t, minimalDevice())
	res, err := Run(context.Background(), p, RunOptions{Workers: 2})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(res.Chips) != 1 {
		t.Fatalf("got %d chips, want 1", len(res.Chips))
	}
	run := res.Chips[0]

	// The same pipeline, hand-coded (chip 0 seed = program seed + 0).
	spec := experiments.ChipSpec{Bits: 1 << 20, WeakScale: 40, Vendor: dram.VendorB(), Seed: 7}
	st, err := spec.NewStation()
	if err != nil {
		t.Fatalf("NewStation: %v", err)
	}
	st.WritePattern(patterns.Checkerboard())
	st.SetAmbient(50)
	st.DisableRefresh()
	st.Wait(2)
	st.EnableRefresh()
	fails := st.ReadCompare()

	rc := run.Stages[5].ReadCompare
	if rc == nil {
		t.Fatalf("stage 5 has no read_compare result: %+v", run.Stages[5])
	}
	if rc.Failures != len(fails) {
		t.Fatalf("program found %d failures, hand-coded %d", rc.Failures, len(fails))
	}
	if rc.NewFailures != len(fails) {
		t.Fatalf("first read: new %d != total %d", rc.NewFailures, len(fails))
	}
	if len(fails) > 0 && len(rc.FailingBits) == 0 {
		t.Fatalf("output.failing_bits=8 but no bits embedded")
	}
	if len(rc.FailingBits) > 8 {
		t.Fatalf("failing_bits cap exceeded: %d", len(rc.FailingBits))
	}
	if run.ClockS != st.Clock() {
		t.Fatalf("program clock %v != hand-coded clock %v", run.ClockS, st.Clock())
	}
	cl := run.Stages[6].Classify
	if cl == nil || cl.Found != run.UniqueFailures {
		t.Fatalf("classify result inconsistent: %+v vs %d unique", cl, run.UniqueFailures)
	}
}

// TestRunDeterministicAcrossWorkers is the program-level determinism
// contract: same program bytes → byte-identical result JSON at any
// worker count, including inject and profile stages over several chips.
func TestRunDeterministicAcrossWorkers(t *testing.T) {
	src := `{
  "version": 1,
  "name": "det",
  "seed": 21,
  "fleet": {"chips": 3, "bits": 1048576, "weak_scale": 40},
  "stages": [
    {"type": "write_pattern", "pattern": "rowstripe"},
    {"type": "inject_fault", "kind": "weak_arrival", "cells": 16, "max_mu_s": 1.5},
    {"type": "profile", "target_interval_s": 1.024, "delta_interval_s": 0.25,
     "iterations": 2, "fresh_random": true},
    {"type": "inject_fault", "kind": "dpd_rescramble", "cells": 8},
    {"type": "read_compare"},
    {"type": "classify", "target_interval_s": 1.024, "target_temp_c": 45}
  ],
  "output": {"include_records": true, "failing_bits": 4, "include_metrics": true, "include_trace": true}
}`
	a := runJSON(t, mustLoad(t, src), 1)
	b := runJSON(t, mustLoad(t, src), 4)
	if string(a) != string(b) {
		t.Fatalf("result differs between workers=1 and workers=4")
	}
	c := runJSON(t, mustLoad(t, src), 4)
	if string(b) != string(c) {
		t.Fatalf("result differs between two identical runs")
	}
}

// TestTradeoffGridMatchesGoAPI is the acceptance-criteria check: a
// program expressing the Fig 9/10 grid produces byte-identical points to
// the existing Go API path (experiments.Fig9Fig10Tradeoff) for the same
// configuration.
func TestTradeoffGridMatchesGoAPI(t *testing.T) {
	src := `{
  "version": 1,
  "seed": 11,
  "fleet": {"bits": 1048576, "weak_scale": 40},
  "stages": [
    {"type": "tradeoff_grid", "target_interval_s": 1.024, "target_temp_c": 45,
     "delta_intervals_s": [0, 0.25], "delta_temps_c": [0],
     "iterations": 4, "coverage_goal": 0.9, "max_iterations": 8}
  ],
  "output": {}
}`
	res, err := Run(context.Background(), mustLoad(t, src), RunOptions{Workers: 2})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(res.Stages) != 1 || res.Stages[0].Tradeoff == nil {
		t.Fatalf("no tradeoff result: %+v", res.Stages)
	}

	direct, err := experiments.Fig9Fig10Tradeoff(context.Background(), experiments.Fig9Config{
		Chip:           experiments.ChipSpec{Bits: 1 << 20, WeakScale: 40, Vendor: dram.VendorB(), Seed: 11},
		TargetInterval: 1.024,
		TargetTempC:    45,
		DeltaIntervals: []float64{0, 0.25},
		DeltaTemps:     []float64{0},
		Iterations:     4,
		CoverageGoal:   0.9,
		MaxIterations:  8,
		Seed:           11,
		Workers:        2,
	})
	if err != nil {
		t.Fatalf("Fig9Fig10Tradeoff: %v", err)
	}
	got, err := json.Marshal(res.Stages[0].Tradeoff)
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(direct)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatalf("program grid != Go API grid:\n%s\nvs\n%s", got, want)
	}
}

// TestSoakStageMatchesGoAPI pins the soak lowering (including the named
// scenario seed split) against a direct experiments.Soak call.
func TestSoakStageMatchesGoAPI(t *testing.T) {
	src := `{
  "version": 1,
  "seed": 5,
  "fleet": {"chips": 1, "bits": 1048576},
  "stages": [
    {"type": "soak", "hours": 6, "target_interval_s": 1.024,
     "scenario": "quiet", "controller": true}
  ],
  "output": {}
}`
	res, err := Run(context.Background(), mustLoad(t, src), RunOptions{Workers: 2})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	rep := res.Stages[0].Soak
	if rep == nil {
		t.Fatalf("no soak report")
	}

	cfg := experiments.DefaultSoakConfig(5)
	cfg.Chips = 1
	cfg.Hours = 6
	cfg.TargetInterval = 1.024
	cfg.Controller = true
	cfg.Workers = 2
	cfg.Chip.Bits = 1 << 20
	sc, err := faultinject.NamedScenario("quiet", 5^0xFA177, 1.024)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Scenario = sc
	direct, err := experiments.Soak(context.Background(), cfg)
	if err != nil {
		t.Fatalf("Soak: %v", err)
	}
	got, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(direct)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatalf("program soak != Go API soak:\n%s\nvs\n%s", got, want)
	}
}

// TestRunRejectsInvalidProgram covers Run's validation entry.
func TestRunRejectsInvalidProgram(t *testing.T) {
	p := &Program{Version: Version, Seed: 1}
	if _, err := Run(context.Background(), p, RunOptions{}); err == nil ||
		!strings.Contains(err.Error(), "no stages") {
		t.Fatalf("want validation error, got %v", err)
	}
}

// TestRunProgress checks the progress callback sees every (chip, stage)
// unit exactly once and a monotonically complete Done count.
func TestRunProgress(t *testing.T) {
	src := `{
  "version": 1,
  "seed": 2,
  "fleet": {"chips": 2, "bits": 1048576, "weak_scale": 40},
  "stages": [
    {"type": "write_pattern", "pattern": "solid1"},
    {"type": "read_compare"}
  ],
  "output": {}
}`
	var calls atomic.Int64
	var sawTotal atomic.Int64
	_, err := Run(context.Background(), mustLoad(t, src), RunOptions{
		Workers: 2,
		OnProgress: func(ev ProgressEvent) {
			calls.Add(1)
			if ev.Done == ev.Total {
				sawTotal.Add(1)
			}
		},
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if calls.Load() != 4 {
		t.Fatalf("progress called %d times, want 4", calls.Load())
	}
	if sawTotal.Load() != 1 {
		t.Fatalf("Done==Total observed %d times, want exactly once", sawTotal.Load())
	}
}

// TestRunCancellation aborts a device program via context.
func TestRunCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Run(ctx, mustLoad(t, minimalDevice()), RunOptions{Workers: 1})
	if err == nil {
		t.Fatalf("Run ignored cancelled context")
	}
}
