package testprog

import (
	"reflect"
	"regexp"
	"strings"
	"testing"

	"reaper/internal/benchfmt"
	"reaper/internal/core"
	"reaper/internal/experiments"
)

// snakeCase is the repository-wide JSON field convention documented in
// API.md "Naming convention": lower_snake_case, digits allowed.
var snakeCase = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)

// TestJSONFieldNamingConvention walks every struct reachable from the
// program/result schema — plus the benchfmt schema and the experiment
// result types the program schema embeds — and asserts every JSON field
// name is lower_snake_case. This is the guard against the benchfmt and
// testprog schemas forking conventions (ISSUE 9 satellite).
func TestJSONFieldNamingConvention(t *testing.T) {
	roots := []any{
		Program{}, Fleet{}, Output{}, Result{}, ChipRun{}, StageResult{},
		ReadCompareResult{}, ClassifyResult{}, ProfileResult{}, PassRecord{},
		InjectResult{},
		WritePatternStage{}, SetTempStage{}, DisableRefreshStage{},
		EnableRefreshStage{}, WaitStage{}, ReadCompareStage{},
		ClassifyStage{}, InjectFaultStage{}, ProfileStage{},
		TradeoffGridStage{}, SoakStage{}, PopulationSweepStage{},
		benchfmt.Baseline{}, benchfmt.SweepResult{}, benchfmt.MicroResult{},
		core.TradeoffPoint{}, core.ReachConditions{},
		experiments.PopulationResult{}, experiments.ChipResult{},
		experiments.SoakConfig{}, experiments.SoakReport{},
	}
	seen := map[reflect.Type]bool{}
	for _, root := range roots {
		checkNaming(t, reflect.TypeOf(root), seen)
	}
}

func checkNaming(t *testing.T, typ reflect.Type, seen map[reflect.Type]bool) {
	t.Helper()
	for typ.Kind() == reflect.Pointer || typ.Kind() == reflect.Slice || typ.Kind() == reflect.Array {
		typ = typ.Elem()
	}
	if typ.Kind() != reflect.Struct || seen[typ] {
		return
	}
	seen[typ] = true
	for i := 0; i < typ.NumField(); i++ {
		f := typ.Field(i)
		if !f.IsExported() {
			continue
		}
		tag := f.Tag.Get("json")
		name, _, _ := strings.Cut(tag, ",")
		switch {
		case tag == "":
			t.Errorf("%s.%s: exported field without a json tag", typ, f.Name)
		case name == "-":
			// Explicitly excluded from serialization: fine.
		case !snakeCase.MatchString(name):
			t.Errorf("%s.%s: json name %q is not lower_snake_case", typ, f.Name, name)
		}
		// Recurse into the field's type so nested result payloads are
		// covered without listing them all as roots.
		if name != "-" {
			checkNaming(t, f.Type, seen)
		}
	}
}
