package testprog

import (
	"context"
	"fmt"
	"slices"
	"sync/atomic"

	"reaper/internal/core"
	"reaper/internal/experiments"
	"reaper/internal/faultinject"
	"reaper/internal/memctrl"
	"reaper/internal/parallel"
	"reaper/internal/patterns"
	"reaper/internal/rng"
	"reaper/internal/telemetry"
)

// injectSalt separates the per-chip fault-injection rng streams from the
// chip device seeds (API.md "Determinism contract"): chip c's injection
// stream is rng.Derive(program.seed, injectSalt + c).
const injectSalt = 0x17EC7

// RunOptions tunes program execution without affecting the result bytes:
// for a fixed program, the result is byte-identical at any Workers count.
type RunOptions struct {
	// Workers bounds the worker pool fanning chips (device programs) or
	// grid points / fleet shards (campaign stages) out; <= 0 means one
	// worker per CPU.
	Workers int
	// Telemetry, when non-nil, receives commutative testprog_* execution
	// counters (programs and stages run). It may be shared across
	// concurrent Run calls — e.g. a server-wide registry — and is never
	// embedded in the result; the snapshot embedded when the program's
	// output.include_metrics is set comes from a per-run registry, so
	// results stay deterministic per program.
	Telemetry *telemetry.Registry
	// TraceCapacity sizes each chip's trace ring when the program's
	// output.include_trace is set; <= 0 means
	// telemetry.DefaultTraceCapacity.
	TraceCapacity int
	// OnProgress, when non-nil, is invoked after every completed
	// (chip, stage) unit. It may be called concurrently from worker
	// goroutines; Done is monotonic across the run.
	OnProgress func(ProgressEvent)
}

// ProgressEvent reports one completed unit of program execution.
type ProgressEvent struct {
	// Chip is the fleet index for device programs, 0 for campaigns.
	Chip int
	// Stage is the stage index; StageType its type token.
	Stage     int
	StageType string
	// Done counts completed (chip, stage) units so far; Total is the
	// run's unit count (chips × stages for device programs, stage count
	// for campaigns).
	Done, Total int64
}

// chipOut carries one chip's run plus its raw trace events; traces merge
// deterministically after the parallel join.
type chipOut struct {
	run    ChipRun
	events []telemetry.Event
}

// Run validates the program and executes it: device programs fan the
// fleet out on the deterministic worker pool and run the stage pipeline
// once per chip; campaign programs run each campaign stage in order over
// the experiment harnesses. The result is byte-identical for a given
// program at any opt.Workers count. Cancelling ctx aborts the run.
func Run(ctx context.Context, p *Program, opt RunOptions) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	res := &Result{Name: p.Name, Seed: p.Seed, Version: p.Version, Kind: p.Kind()}
	var reg *telemetry.Registry
	if p.Output.IncludeMetrics {
		reg = telemetry.New()
	}
	opt.Telemetry.Counter("testprog_programs_total", telemetry.L("kind", string(res.Kind))).Inc()

	var err error
	if res.Kind == KindCampaign {
		err = runCampaign(ctx, p, opt, reg, res)
	} else {
		err = runDevice(ctx, p, opt, reg, res)
	}
	if err != nil {
		return nil, err
	}
	if reg != nil {
		res.Metrics = reg.Snapshot()
	}
	return res, nil
}

// runDevice executes a device program: one stage pipeline per chip,
// fanned out on the pool in chip order.
func runDevice(ctx context.Context, p *Program, opt RunOptions, reg *telemetry.Registry, res *Result) error {
	chips := p.Fleet.chips()
	total := p.Units()
	var done atomic.Int64
	runs, err := parallel.Map(ctx, chips, opt.Workers, func(ctx context.Context, chip int) (chipOut, error) {
		return runChip(ctx, p, chip, opt, reg, &done, total)
	})
	if err != nil {
		return err
	}
	res.Chips = make([]ChipRun, 0, len(runs))
	for _, r := range runs {
		res.Chips = append(res.Chips, r.run)
	}
	if p.Output.IncludeTrace {
		traces := make([]telemetry.Trace, 0, len(runs))
		for i, r := range runs {
			traces = append(traces, telemetry.Trace{
				Source: fmt.Sprintf("chip-%03d", i),
				Events: r.events,
			})
		}
		res.Trace = telemetry.Merge(traces...)
	}
	return nil
}

// runChip executes every stage against one chip's station. All
// randomness is derived inside this call (which runs inside the worker
// closure): the station from the chip seed, the injection stream from
// rng.Derive(seed, injectSalt+chip).
func runChip(ctx context.Context, p *Program, chip int, opt RunOptions, reg *telemetry.Registry, done *atomic.Int64, total int64) (chipOut, error) {
	chipSeed := p.Seed + uint64(chip)
	st, err := p.Fleet.chipSpec(chipSeed).NewStation()
	if err != nil {
		return chipOut{}, fmt.Errorf("testprog: chip %d: %w", chip, err)
	}
	var tracer *telemetry.Tracer
	if p.Output.IncludeTrace {
		tracer = telemetry.NewTracer(opt.TraceCapacity)
	}
	injectSrc := rng.Derive(p.Seed, injectSalt+uint64(chip))
	acc := core.NewFailureSet()
	out := chipOut{run: ChipRun{Chip: chip, Seed: chipSeed}}
	for i, s := range p.Stages {
		if err := ctx.Err(); err != nil {
			return chipOut{}, err
		}
		sr, err := runDeviceStage(p, s, st, acc, injectSrc, chipSeed, reg, tracer)
		if err != nil {
			return chipOut{}, fmt.Errorf("testprog: chip %d stage %d (%s): %w", chip, i, s.StageType(), err)
		}
		sr.Stage = s.StageType()
		sr.Index = i
		sr.ClockS = st.Clock()
		tracer.Emit(st.Clock(), "stage-done", fmt.Sprintf("index=%d type=%s", i, s.StageType()))
		out.run.Stages = append(out.run.Stages, sr)
		recordStage(opt, reg, s.StageType())
		progress(opt, ProgressEvent{
			Chip: chip, Stage: i, StageType: s.StageType(),
			Done: done.Add(1), Total: total,
		})
	}
	out.run.ClockS = st.Clock()
	out.run.UniqueFailures = acc.Len()
	if tracer != nil {
		out.events = tracer.Events()
	}
	return out, nil
}

// runDeviceStage lowers one device stage onto the station primitives.
// acc is the chip's cumulative failure set; injectSrc the chip's
// fault-injection stream, consumed in stage order.
func runDeviceStage(p *Program, s Stage, st *memctrl.Station, acc *core.FailureSet, injectSrc *rng.Source, chipSeed uint64, reg *telemetry.Registry, tracer *telemetry.Tracer) (StageResult, error) {
	var sr StageResult
	switch s := s.(type) {
	case *WritePatternStage:
		pat, err := patterns.Parse(s.Pattern)
		if err != nil {
			return sr, err
		}
		st.WritePattern(pat)
	case *SetTempStage:
		st.SetAmbient(s.AmbientC)
	case *DisableRefreshStage:
		st.DisableRefresh()
	case *EnableRefreshStage:
		st.EnableRefresh()
	case *WaitStage:
		st.Wait(s.Seconds)
	case *ReadCompareStage:
		fails := st.ReadCompare()
		added := acc.AddAll(fails)
		rc := &ReadCompareResult{Label: s.Label, Failures: len(fails), NewFailures: added}
		if n := p.Output.FailingBits; n > 0 {
			bits := slices.Clone(fails)
			slices.Sort(bits)
			if len(bits) > n {
				bits = bits[:n]
			}
			rc.FailingBits = bits
		}
		sr.ReadCompare = rc
	case *ClassifyStage:
		truth := core.Truth(st, s.TargetIntervalS, s.TargetTempC)
		sr.Classify = &ClassifyResult{
			TruthSize:         truth.Len(),
			Found:             acc.Len(),
			Coverage:          core.Coverage(acc, truth),
			FalsePositiveRate: core.FalsePositiveRate(acc, truth),
		}
	case *InjectFaultStage:
		now := st.Clock()
		var bits []uint64
		switch s.Kind {
		case FaultWeakArrival:
			bits = st.Device().InjectWeakCells(injectSrc, s.Cells, s.MaxMuS, now)
		case FaultVRTBurst:
			bits = st.Device().ForceVRTLowBurst(injectSrc, s.Cells, s.MaxMuS, now)
		case FaultDPDRescramble:
			bits = st.Device().RescrambleDPD(injectSrc, s.Cells)
		}
		sr.Inject = &InjectResult{Kind: s.Kind, Cells: len(bits)}
	case *ProfileStage:
		seed := s.Seed
		if seed == 0 {
			seed = chipSeed
		}
		reach := core.ReachConditions{DeltaInterval: s.DeltaIntervalS, DeltaTempC: s.DeltaTempC}
		r, err := core.Reach(st, s.TargetIntervalS, reach, core.Options{
			Iterations:              s.Iterations,
			FreshRandomPerIteration: s.FreshRandom,
			Seed:                    seed,
			Telemetry:               reg,
			Tracer:                  tracer,
		})
		if err != nil {
			return sr, err
		}
		added := acc.AddAll(r.Failures.Sorted())
		pr := &ProfileResult{
			IntervalS:   r.ProfilingInterval,
			TempC:       r.ProfilingTempC,
			Iterations:  r.Iterations,
			Failures:    r.Failures.Len(),
			NewFailures: added,
			RuntimeS:    r.RuntimeSeconds(),
		}
		if p.Output.IncludeRecords {
			pr.Records = make([]PassRecord, 0, len(r.Records))
			for _, rec := range r.Records {
				pr.Records = append(pr.Records, PassRecord{
					Iteration:   rec.Iteration,
					Pattern:     rec.PatternName,
					Failures:    rec.Failures,
					NewFailures: rec.NewFailures,
					ClockS:      rec.ClockSeconds,
				})
			}
		}
		sr.Profile = pr
	default:
		return sr, fmt.Errorf("testprog: stage type %q is not a device stage", s.StageType())
	}
	return sr, nil
}

// runCampaign executes a campaign program: each stage lowers onto its
// experiments harness, in order, sharing the run's worker budget.
func runCampaign(ctx context.Context, p *Program, opt RunOptions, reg *telemetry.Registry, res *Result) error {
	runCtx := ctx
	if reg != nil {
		runCtx = telemetry.WithRegistry(ctx, reg)
	}
	total := int64(len(p.Stages))
	for i, s := range p.Stages {
		if err := ctx.Err(); err != nil {
			return err
		}
		sr := StageResult{Stage: s.StageType(), Index: i}
		switch s := s.(type) {
		case *TradeoffGridStage:
			pts, err := experiments.Fig9Fig10Tradeoff(runCtx, experiments.Fig9Config{
				Chip:           p.Fleet.chipSpec(p.Seed),
				TargetInterval: s.TargetIntervalS,
				TargetTempC:    s.TargetTempC,
				DeltaIntervals: s.DeltaIntervalsS,
				DeltaTemps:     s.DeltaTempsC,
				Iterations:     s.Iterations,
				CoverageGoal:   s.CoverageGoal,
				MaxIterations:  s.MaxIterations,
				Seed:           p.Seed,
				Workers:        opt.Workers,
			})
			if err != nil {
				return fmt.Errorf("testprog: stage %d (%s): %w", i, s.StageType(), err)
			}
			sr.Tradeoff = pts
		case *SoakStage:
			rep, err := runSoakStage(runCtx, p, s, opt, reg)
			if err != nil {
				return fmt.Errorf("testprog: stage %d (%s): %w", i, s.StageType(), err)
			}
			sr.Soak = rep
		case *PopulationSweepStage:
			results, err := experiments.PopulationSweep(runCtx, experiments.PopulationConfig{
				ChipsPerVendor: s.ChipsPerVendor,
				TargetInterval: s.TargetIntervalS,
				Reach:          core.ReachConditions{DeltaInterval: s.DeltaIntervalS, DeltaTempC: s.DeltaTempC},
				Iterations:     s.Iterations,
				ChipBits:       p.Fleet.Bits,
				WeakScale:      p.Fleet.WeakScale,
				Seed:           p.Seed,
				Workers:        opt.Workers,
				ShardSize:      s.ShardSize,
			})
			if err != nil {
				return fmt.Errorf("testprog: stage %d (%s): %w", i, s.StageType(), err)
			}
			sr.Population = results
		default:
			return fmt.Errorf("testprog: stage type %q is not a campaign stage", s.StageType())
		}
		res.Stages = append(res.Stages, sr)
		recordStage(opt, reg, s.StageType())
		progress(opt, ProgressEvent{
			Stage: i, StageType: s.StageType(),
			Done: int64(i + 1), Total: total,
		})
	}
	return nil
}

// runSoakStage builds the soak configuration from the stage and the
// program fleet, mirroring cmd/soak's derivations (scenario seed split,
// default chip) so named scenarios are bit-identical across entry points.
func runSoakStage(ctx context.Context, p *Program, s *SoakStage, opt RunOptions, reg *telemetry.Registry) (*experiments.SoakReport, error) {
	cfg := experiments.DefaultSoakConfig(p.Seed)
	cfg.Chips = p.Fleet.chips()
	cfg.Hours = s.Hours
	cfg.TargetInterval = s.TargetIntervalS
	cfg.Controller = s.Controller
	cfg.Workers = opt.Workers
	cfg.ShardSize = s.ShardSize
	if s.WindowHours > 0 {
		cfg.WindowHours = s.WindowHours
	}
	if s.CadenceHours > 0 {
		cfg.CadenceHours = s.CadenceHours
	}
	if s.MaxUBER > 0 {
		cfg.MaxUBER = s.MaxUBER
	}
	if p.Fleet.Bits != 0 {
		cfg.Chip.Bits = p.Fleet.Bits
	}
	if p.Fleet.WeakScale != 0 {
		cfg.Chip.WeakScale = p.Fleet.WeakScale
	}
	if p.Fleet.Vendor != "" {
		v, err := p.Fleet.vendor()
		if err != nil {
			return nil, err
		}
		cfg.Chip.Vendor = v
	}
	cfg.Chip.DisableVRT = p.Fleet.DisableVRT
	cfg.Chip.DisableDPD = p.Fleet.DisableDPD
	name := s.Scenario
	if name == "" {
		name = "default"
	}
	// Same seed split as cmd/soak, so a named scenario in a program is
	// bit-identical to the same -scenario flag.
	sc, err := faultinject.NamedScenario(name, p.Seed^0xFA177, cfg.TargetInterval)
	if err != nil {
		return nil, err
	}
	cfg.Scenario = sc
	cfg.Telemetry = reg
	rep, err := experiments.Soak(ctx, cfg)
	if err != nil {
		return nil, err
	}
	// The program-level metrics snapshot already carries the registry;
	// drop the report's own embedded copy so the result stays compact
	// (and identical whether or not other stages also recorded metrics).
	rep.Telemetry = nil
	rep.TraceEvents = nil
	return rep, nil
}

// recordStage bumps the per-stage execution counters on both the per-run
// registry (embedded in the result when requested) and the caller's
// shared registry. Both handles are nil-safe.
func recordStage(opt RunOptions, reg *telemetry.Registry, stageType string) {
	reg.Counter("testprog_stages_total", telemetry.L("stage", stageType)).Inc()
	opt.Telemetry.Counter("testprog_stages_total", telemetry.L("stage", stageType)).Inc()
}

// progress invokes the progress callback when set.
func progress(opt RunOptions, ev ProgressEvent) {
	if opt.OnProgress != nil {
		opt.OnProgress(ev)
	}
}
