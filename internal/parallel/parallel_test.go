package parallel

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"strconv"
	"sync/atomic"
	"testing"
)

// goid returns the current goroutine's id, parsed from the runtime stack
// header ("goroutine N [running]:"). Test-only: production code must never
// branch on goroutine identity.
func goid(t *testing.T) uint64 {
	t.Helper()
	buf := make([]byte, 64)
	buf = buf[:runtime.Stack(buf, false)]
	fields := bytes.Fields(buf)
	if len(fields) < 2 {
		t.Fatalf("unparseable stack header %q", buf)
	}
	id, err := strconv.ParseUint(string(fields[1]), 10, 64)
	if err != nil {
		t.Fatalf("unparseable goroutine id in %q: %v", buf, err)
	}
	return id
}

// TestMapWorkersOneRunsInline pins the inline fast path: a workers==1 batch
// must execute every job on the caller's goroutine, spawning none.
func TestMapWorkersOneRunsInline(t *testing.T) {
	caller := goid(t)
	ids, err := Map(context.Background(), 64, 1, func(_ context.Context, i int) (uint64, error) {
		return goid(t), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, id := range ids {
		if id != caller {
			t.Fatalf("job %d ran on goroutine %d, want caller %d", i, id, caller)
		}
	}
}

// TestMapSmallBatchRunsInline pins the chunking threshold: batches below
// minChunkJobs run inline even when many workers are requested, because a
// single job cannot overlap any work across workers.
func TestMapSmallBatchRunsInline(t *testing.T) {
	caller := goid(t)
	for n := 1; n < minChunkJobs; n++ {
		ids, err := Map(context.Background(), n, 8, func(_ context.Context, i int) (uint64, error) {
			return goid(t), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, id := range ids {
			if id != caller {
				t.Fatalf("n=%d: job %d ran on goroutine %d, want caller %d", n, i, id, caller)
			}
		}
	}
}

func TestMapMatchesSequential(t *testing.T) {
	const n = 257
	want := make([]int, n)
	for i := range want {
		want[i] = i * i
	}
	for _, workers := range []int{1, 2, 3, 8, 64, n + 5} {
		got, err := Map(context.Background(), n, workers, func(_ context.Context, i int) (int, error) {
			return i * i, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: results differ from sequential", workers)
		}
	}
}

func TestMapZeroJobs(t *testing.T) {
	got, err := Map(context.Background(), 0, 8, func(_ context.Context, i int) (int, error) {
		t.Fatal("fn called for n=0")
		return 0, nil
	})
	if err != nil || got != nil {
		t.Fatalf("got %v, %v; want nil, nil", got, err)
	}
}

func TestMapLowestIndexError(t *testing.T) {
	// Jobs 10, 40, 70 fail; the reported error must be job 10's at any
	// worker count (the error sequential execution would hit first).
	wantErr := errors.New("job 10")
	for _, workers := range []int{1, 4, 16} {
		_, err := Map(context.Background(), 100, workers, func(_ context.Context, i int) (int, error) {
			switch i {
			case 10:
				return 0, wantErr
			case 40, 70:
				return 0, fmt.Errorf("job %d", i)
			}
			return i, nil
		})
		if !errors.Is(err, wantErr) {
			t.Fatalf("workers=%d: err = %v, want %v", workers, err, wantErr)
		}
	}
}

func TestMapPanicCapture(t *testing.T) {
	_, err := Map(context.Background(), 8, 4, func(_ context.Context, i int) (int, error) {
		if i == 3 {
			panic("boom")
		}
		return i, nil
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
	if pe.Value != "boom" || len(pe.Stack) == 0 {
		t.Fatalf("PanicError = {%v, %d stack bytes}", pe.Value, len(pe.Stack))
	}
}

func TestMapCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int64
	_, err := Map(ctx, 10_000, 4, func(ctx context.Context, i int) (int, error) {
		if started.Add(1) == 10 {
			cancel()
		}
		return i, ctx.Err()
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if started.Load() == 10_000 {
		t.Fatal("cancellation did not stop job dispatch")
	}
}

func TestForEachAndDo(t *testing.T) {
	out := make([]int, 50)
	if err := ForEach(context.Background(), len(out), 8, func(_ context.Context, i int) error {
		out[i] = i + 1
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i+1 {
			t.Fatalf("slot %d = %d", i, v)
		}
	}

	var a, b atomic.Bool
	if err := Do(context.Background(), 2,
		func(context.Context) error { a.Store(true); return nil },
		func(context.Context) error { b.Store(true); return nil },
	); err != nil {
		t.Fatal(err)
	}
	if !a.Load() || !b.Load() {
		t.Fatal("Do skipped a thunk")
	}
}

func TestDefaultWorkers(t *testing.T) {
	if DefaultWorkers() < 1 {
		t.Fatalf("DefaultWorkers() = %d", DefaultWorkers())
	}
}
