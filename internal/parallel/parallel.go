// Package parallel is the fleet execution engine: a bounded worker pool
// that runs independent jobs concurrently while preserving deterministic,
// submission-ordered results.
//
// The determinism contract every caller in this repository relies on:
// results are byte-identical to sequential execution at any worker count.
// That holds by construction when each job owns disjoint state — in the
// REAPER experiments every simulated chip or grid point owns its own
// dram.Device and rng.Source seed, so jobs never share mutable state — and
// because this package always delivers results in submission order, never
// completion order.
package parallel

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"reaper/internal/telemetry"
)

// DefaultWorkers returns the worker count used when a caller passes a
// non-positive count: one worker per logical CPU.
func DefaultWorkers() int { return runtime.NumCPU() }

// clampWorkers resolves a requested worker count against the job count.
func clampWorkers(workers, jobs int) int {
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > jobs {
		workers = jobs
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// PanicError wraps a panic recovered from a worker goroutine so callers see
// it as an error (with the worker's stack) instead of a crashed process.
type PanicError struct {
	Value any
	Stack []byte
}

// Error renders the recovered value and the worker's stack trace.
func (e *PanicError) Error() string {
	return fmt.Sprintf("parallel: job panicked: %v\n%s", e.Value, e.Stack)
}

// batchJobBounds buckets the jobs-per-batch histogram: most campaigns fan
// out over a handful of chips or a few hundred grid points.
var batchJobBounds = []float64{1, 2, 4, 8, 16, 64, 256, 1024}

// Map runs fn(ctx, i) for i in [0, n) on at most workers goroutines and
// returns the results indexed by i — exactly what sequential execution
// would produce, regardless of worker count or completion order.
//
// On the first error (or panic, surfaced as *PanicError) the context passed
// to jobs is cancelled and Map returns the error from the lowest job index
// that failed, so the reported error is deterministic too. Results computed
// before cancellation are discarded.
//
// When ctx carries a telemetry.Registry, Map records batch and job counts.
// Only worker-count-invariant series are recorded — jobs queued, batches
// run, jobs completed on success — never goroutine or occupancy figures,
// which would differ between workers=1 and workers=8 and break the repo's
// snapshot determinism contract.
func Map[T any](ctx context.Context, n, workers int, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	if ctx == nil {
		//lint:ignore ctx-first nil-ctx convenience default at the pool boundary, not a severed cancellation chain
		ctx = context.Background()
	}
	reg := telemetry.FromContext(ctx)
	reg.Counter("parallel_batches_total").Inc()
	reg.Counter("parallel_jobs_queued_total").Add(int64(n))
	reg.Histogram("parallel_batch_jobs", batchJobBounds).Observe(float64(n))
	out, err := mapJobs(ctx, n, workers, fn)
	if err != nil {
		reg.Counter("parallel_batches_failed_total").Inc()
		return nil, err
	}
	// Completed jobs are credited per batch, not per job: under cancellation
	// the number of jobs that finished depends on scheduling, so a per-job
	// increment would vary with worker count.
	reg.Counter("parallel_jobs_completed_total").Add(int64(n))
	return out, nil
}

// minChunkJobs is the batch size below which the pool always runs inline: a
// batch that cannot spread at least this many jobs across workers has no
// work to overlap, so spawning goroutines for it is pure overhead.
const minChunkJobs = 2

// mapJobs is Map without the telemetry bookkeeping.
func mapJobs[T any](ctx context.Context, n, workers int, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	workers = clampWorkers(workers, n)
	out := make([]T, n) // one result buffer per batch, preallocated
	if workers == 1 || n < minChunkJobs {
		// Inline fast path: a single worker (or a batch too small to chunk)
		// runs on the caller's goroutine with zero goroutine, channel, or
		// scheduling overhead — the plain sequential loop whose semantics
		// the pool must match at every worker count.
		for i := 0; i < n; i++ {
			v, err := run(ctx, i, fn)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		next     atomic.Int64 // next job index to claim
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstI   = n // lowest failed job index seen so far
		firstErr error
	)
	fail := func(i int, err error) {
		mu.Lock()
		if i < firstI {
			firstI, firstErr = i, err
		}
		mu.Unlock()
		cancel()
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if ctx.Err() != nil {
					fail(i, ctx.Err())
					return
				}
				v, err := run(ctx, i, fn)
				if err != nil {
					fail(i, err)
					return
				}
				out[i] = v
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// run invokes fn for one job index, converting a panic into a *PanicError.
func run[T any](ctx context.Context, i int, fn func(ctx context.Context, i int) (T, error)) (v T, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	return fn(ctx, i)
}

// ForEach is Map for jobs that write their results into caller-owned slots
// (each job must touch only its own index's state).
func ForEach(ctx context.Context, n, workers int, fn func(ctx context.Context, i int) error) error {
	_, err := Map(ctx, n, workers, func(ctx context.Context, i int) (struct{}, error) {
		return struct{}{}, fn(ctx, i)
	})
	return err
}

// Do runs a fixed set of independent thunks (e.g. the arms of an ablation)
// and returns the first error by position.
func Do(ctx context.Context, workers int, fns ...func(ctx context.Context) error) error {
	return ForEach(ctx, len(fns), workers, func(ctx context.Context, i int) error {
		return fns[i](ctx)
	})
}

// ShardLoop runs fn(i) for i in [0, n) on at most workers goroutines and
// waits for all of them: the inner-loop variant of ForEach for shards with no
// error path of their own (e.g. the per-bank halves of one device sweep).
// Each shard must own disjoint state, and the caller must merge shard results
// in shard order, so the outcome is identical at every worker count. A panic
// inside a shard is re-raised on the caller's goroutine, exactly as the
// sequential loop would have propagated it.
func ShardLoop(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	// Shards run microsecond-scale device steps below the layers that carry
	// a ctx; cancellation happens at experiment granularity above them.
	//lint:ignore ctx-first inner-loop shard dispatch; cancellation is experiment-granular above the device layer
	err := ForEach(context.Background(), n, workers, func(_ context.Context, i int) error {
		fn(i)
		return nil
	})
	if err != nil {
		//lint:ignore no-panic re-raises a shard panic the equivalent sequential loop would have propagated
		panic(err)
	}
}
