package parallel

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"reaper/internal/telemetry"
)

// Reason renders the recovered panic value without the worker stack trace.
// Stacks embed goroutine ids and addresses, so two identical panics never
// render the same Error() string; Reason is the stable form campaign
// reports and checkpoint manifests record.
func (e *PanicError) Reason() string {
	return fmt.Sprintf("panic: %v", e.Value)
}

// RetryPolicy bounds how a fault-tolerant batch treats a failing job.
// The zero value means one attempt, no timeout, no backoff — exactly the
// semantics Map gives a job, minus the batch abort.
type RetryPolicy struct {
	// Attempts is the total number of tries per job (first run included).
	// Values below 1 mean 1.
	Attempts int
	// BackoffBase is the delay before the second attempt; each further
	// attempt doubles it. The sequence is deterministic — no jitter — so a
	// retried campaign schedules identically every run.
	BackoffBase time.Duration
	// BackoffMax caps the doubled backoff. Zero means no cap.
	BackoffMax time.Duration
	// AttemptTimeout, when positive, bounds each attempt via a context
	// deadline. Jobs must be context-aware for the bound to bite: the pool
	// cannot kill a goroutine, it can only cancel cooperatively.
	AttemptTimeout time.Duration
	// Sleep is called to realize backoff delays; nil uses time.Sleep.
	// Tests inject a recorder to assert the schedule without waiting.
	Sleep func(time.Duration)
}

// attempts normalizes the configured attempt count.
func (p RetryPolicy) attempts() int {
	if p.Attempts < 1 {
		return 1
	}
	return p.Attempts
}

// backoff returns the deterministic delay before the given retry (retry 1 =
// second attempt).
func (p RetryPolicy) backoff(retry int) time.Duration {
	if p.BackoffBase <= 0 {
		return 0
	}
	d := p.BackoffBase << (retry - 1)
	if d <= 0 || (p.BackoffMax > 0 && d > p.BackoffMax) {
		// The shift overflowed, or the cap applies.
		if p.BackoffMax > 0 {
			return p.BackoffMax
		}
		return p.BackoffBase
	}
	return d
}

// JobFailure records one job that exhausted its attempts.
type JobFailure struct {
	// Job is the job index within the batch.
	Job int
	// Attempts is how many times the job was tried.
	Attempts int
	// Err is the error from the final attempt.
	Err error
}

// Reason renders the failure's error in its stable form: panics lose their
// stack (see PanicError.Reason), other errors render as Error().
func (f JobFailure) Reason() string {
	if pe, ok := f.Err.(*PanicError); ok {
		return pe.Reason()
	}
	if f.Err == nil {
		return ""
	}
	return f.Err.Error()
}

// MapPartial runs fn(ctx, i) for i in [0, n) like Map, but a failing job
// does not abort the batch: each job is retried per policy, and jobs that
// exhaust their attempts are returned as JobFailures (sorted by job index)
// while every other job's result is delivered normally. A failed job's slot
// in the result slice holds the zero value.
//
// The batch-level error is non-nil only when ctx is cancelled; in that case
// results and failures are meaningless and the caller should stop. As with
// Map, results and failures are identical at every worker count provided
// each job owns disjoint state.
func MapPartial[T any](ctx context.Context, n, workers int, policy RetryPolicy, fn func(ctx context.Context, i int) (T, error)) ([]T, []JobFailure, error) {
	if n <= 0 {
		return nil, nil, nil
	}
	if ctx == nil {
		//lint:ignore ctx-first nil-ctx convenience default at the pool boundary, not a severed cancellation chain
		ctx = context.Background()
	}
	reg := telemetry.FromContext(ctx)
	reg.Counter("parallel_batches_total").Inc()
	reg.Counter("parallel_jobs_queued_total").Add(int64(n))
	reg.Histogram("parallel_batch_jobs", batchJobBounds).Observe(float64(n))

	sleep := policy.Sleep
	if sleep == nil {
		sleep = time.Sleep
	}
	out := make([]T, n)
	var (
		mu       sync.Mutex
		failures []JobFailure
		retries  int64
	)
	runJob := func(i int) error {
		var lastErr error
		for attempt := 1; attempt <= policy.attempts(); attempt++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if attempt > 1 {
				sleep(policy.backoff(attempt - 1))
				mu.Lock()
				retries++
				mu.Unlock()
			}
			attemptCtx, cancel := ctx, context.CancelFunc(nil)
			if policy.AttemptTimeout > 0 {
				attemptCtx, cancel = context.WithTimeout(ctx, policy.AttemptTimeout)
			}
			v, err := run(attemptCtx, i, fn)
			if cancel != nil {
				cancel()
			}
			if err == nil {
				out[i] = v
				return nil
			}
			lastErr = err
			// A batch-level cancellation surfacing through the job is not a
			// job fault; stop retrying and report the cancellation.
			if ctx.Err() != nil {
				return ctx.Err()
			}
		}
		mu.Lock()
		failures = append(failures, JobFailure{Job: i, Attempts: policy.attempts(), Err: lastErr})
		mu.Unlock()
		return nil
	}

	workers = clampWorkers(workers, n)
	if workers == 1 || n < minChunkJobs {
		for i := 0; i < n; i++ {
			if err := runJob(i); err != nil {
				return nil, nil, err
			}
		}
	} else {
		var (
			next      atomic.Int64
			wg        sync.WaitGroup
			ctxErr    error
			ctxErrsMu sync.Mutex
		)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= n {
						return
					}
					if err := runJob(i); err != nil {
						ctxErrsMu.Lock()
						if ctxErr == nil {
							ctxErr = err
						}
						ctxErrsMu.Unlock()
						return
					}
				}
			}()
		}
		wg.Wait()
		if ctxErr != nil {
			return nil, nil, ctxErr
		}
	}

	sort.Slice(failures, func(i, j int) bool { return failures[i].Job < failures[j].Job })
	reg.Counter("parallel_job_retries_total").Add(retries)
	reg.Counter("parallel_jobs_failed_total").Add(int64(len(failures)))
	reg.Counter("parallel_jobs_completed_total").Add(int64(n - len(failures)))
	return out, failures, nil
}
