package parallel

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestMapPartialAllSucceed checks the happy path matches Map exactly.
func TestMapPartialAllSucceed(t *testing.T) {
	for _, workers := range []int{1, 4} {
		out, failures, err := MapPartial(context.Background(), 10, workers, RetryPolicy{},
			func(_ context.Context, i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatal(err)
		}
		if len(failures) != 0 {
			t.Fatalf("workers=%d: unexpected failures %v", workers, failures)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d", workers, i, v)
			}
		}
	}
}

// TestMapPartialQuarantinesPersistentFailure checks a job that fails every
// attempt is reported without aborting the batch, identically at every
// worker count.
func TestMapPartialQuarantinesPersistentFailure(t *testing.T) {
	for _, workers := range []int{1, 4} {
		var attempts atomic.Int64
		out, failures, err := MapPartial(context.Background(), 8, workers,
			RetryPolicy{Attempts: 3, Sleep: func(time.Duration) {}},
			func(_ context.Context, i int) (int, error) {
				if i == 3 {
					attempts.Add(1)
					return 0, fmt.Errorf("shard %d is poisoned", i)
				}
				if i == 5 {
					// no-panic does not govern test files; this panic is the
					// fixture the pool must convert to a JobFailure.
					panic("boom")
				}
				return i, nil
			})
		if err != nil {
			t.Fatal(err)
		}
		if got := attempts.Load(); got != 3 {
			t.Errorf("workers=%d: poisoned job tried %d times, want 3", workers, got)
		}
		if len(failures) != 2 || failures[0].Job != 3 || failures[1].Job != 5 {
			t.Fatalf("workers=%d: failures = %+v, want jobs 3 and 5", workers, failures)
		}
		if failures[0].Attempts != 3 || failures[0].Reason() != "shard 3 is poisoned" {
			t.Errorf("workers=%d: failure 0 = %+v", workers, failures[0])
		}
		if failures[1].Reason() != "panic: boom" {
			t.Errorf("workers=%d: panic reason = %q", workers, failures[1].Reason())
		}
		for i, v := range out {
			want := i
			if i == 3 || i == 5 {
				want = 0 // failed slots hold the zero value
			}
			if v != want {
				t.Errorf("workers=%d: out[%d] = %d, want %d", workers, i, v, want)
			}
		}
	}
}

// TestMapPartialRetrySucceeds checks a transient failure is healed by retry
// and does not surface as a failure.
func TestMapPartialRetrySucceeds(t *testing.T) {
	var sleeps []time.Duration
	var mu sync.Mutex
	calls := make([]int, 4)
	out, failures, err := MapPartial(context.Background(), 4, 1,
		RetryPolicy{Attempts: 4, BackoffBase: 100 * time.Millisecond, BackoffMax: 250 * time.Millisecond,
			Sleep: func(d time.Duration) { mu.Lock(); sleeps = append(sleeps, d); mu.Unlock() }},
		func(_ context.Context, i int) (int, error) {
			calls[i]++
			if i == 2 && calls[i] < 3 {
				return 0, errors.New("transient")
			}
			return i + 100, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(failures) != 0 {
		t.Fatalf("transient failure not healed: %+v", failures)
	}
	if out[2] != 102 || calls[2] != 3 {
		t.Fatalf("out[2]=%d calls=%d, want 102 after 3 calls", out[2], calls[2])
	}
	// Deterministic exponential backoff: 100ms then 200ms (capped at 250ms).
	want := []time.Duration{100 * time.Millisecond, 200 * time.Millisecond}
	if len(sleeps) != len(want) || sleeps[0] != want[0] || sleeps[1] != want[1] {
		t.Errorf("backoff schedule = %v, want %v", sleeps, want)
	}
}

// TestRetryPolicyBackoffSchedule pins the deterministic schedule, including
// the cap and the overflow guard.
func TestRetryPolicyBackoffSchedule(t *testing.T) {
	p := RetryPolicy{BackoffBase: time.Second, BackoffMax: 10 * time.Second}
	for retry, want := range map[int]time.Duration{
		1: time.Second, 2: 2 * time.Second, 3: 4 * time.Second,
		4: 8 * time.Second, 5: 10 * time.Second, 62: 10 * time.Second,
	} {
		if got := p.backoff(retry); got != want {
			t.Errorf("backoff(%d) = %v, want %v", retry, got, want)
		}
	}
	if got := (RetryPolicy{}).backoff(1); got != 0 {
		t.Errorf("zero-policy backoff = %v, want 0", got)
	}
}

// TestMapPartialCancellation checks cancellation surfaces as the batch
// error, not as per-job failures.
func TestMapPartialCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	_, _, err := MapPartial(ctx, 64, 4, RetryPolicy{Attempts: 5, Sleep: func(time.Duration) {}},
		func(ctx context.Context, i int) (int, error) {
			if ran.Add(1) == 3 {
				cancel()
			}
			return 0, ctx.Err()
		})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// settleGoroutines polls until the goroutine count returns to the baseline
// (workers need a moment to observe cancellation and exit).
func settleGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines leaked: %d now vs %d before", runtime.NumGoroutine(), baseline)
}

// TestMapDrainsWorkersOnCancellation is the goroutine-leak regression test:
// cancelling a batch mid-flight must not strand worker goroutines — Map and
// MapPartial both return only after every in-flight worker has exited.
func TestMapDrainsWorkersOnCancellation(t *testing.T) {
	baseline := runtime.NumGoroutine()
	for round := 0; round < 10; round++ {
		ctx, cancel := context.WithCancel(context.Background())
		started := make(chan struct{}, 64)
		go func() {
			// Cancel once every worker has a job in flight, so each worker
			// is blocked inside a job when the cancellation lands.
			for i := 0; i < 8; i++ {
				<-started
			}
			cancel()
		}()
		_, err := Map(ctx, 64, 8, func(ctx context.Context, i int) (int, error) {
			started <- struct{}{}
			<-ctx.Done() // simulate in-flight work interrupted by cancellation
			return 0, ctx.Err()
		})
		cancel()
		if err == nil {
			t.Fatal("cancelled batch returned no error")
		}
	}
	settleGoroutines(t, baseline)
}

// TestMapPartialDrainsWorkersOnCancellation is the same regression for the
// fault-tolerant pool.
func TestMapPartialDrainsWorkersOnCancellation(t *testing.T) {
	baseline := runtime.NumGoroutine()
	for round := 0; round < 10; round++ {
		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			time.Sleep(time.Millisecond)
			cancel()
		}()
		_, _, err := MapPartial(ctx, 64, 8, RetryPolicy{Attempts: 3, Sleep: func(time.Duration) {}},
			func(ctx context.Context, i int) (int, error) {
				<-ctx.Done()
				return 0, ctx.Err()
			})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("round %d: err = %v, want context.Canceled", round, err)
		}
		cancel()
	}
	settleGoroutines(t, baseline)
}

// TestMapPartialAttemptTimeout checks a context-aware job that outlives the
// per-attempt deadline is retried and then quarantined, while the batch
// itself completes.
func TestMapPartialAttemptTimeout(t *testing.T) {
	out, failures, err := MapPartial(context.Background(), 4, 2,
		RetryPolicy{Attempts: 2, AttemptTimeout: 20 * time.Millisecond, Sleep: func(time.Duration) {}},
		func(ctx context.Context, i int) (int, error) {
			if i == 1 {
				<-ctx.Done() // hung shard: only the attempt deadline frees it
				return 0, ctx.Err()
			}
			return i, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(failures) != 1 || failures[0].Job != 1 || failures[0].Attempts != 2 {
		t.Fatalf("failures = %+v, want job 1 after 2 attempts", failures)
	}
	if !errors.Is(failures[0].Err, context.DeadlineExceeded) {
		t.Errorf("failure err = %v, want deadline exceeded", failures[0].Err)
	}
	if out[0] != 0 || out[2] != 2 || out[3] != 3 {
		t.Errorf("healthy jobs disturbed: %v", out)
	}
}
