package rng

import "testing"

// TestStateRoundTrip pins the checkpoint contract: capturing State mid-
// stream and restoring it (into the same source, a fresh FromState source,
// or via SetState on an unrelated source) replays the identical remaining
// draw sequence, including through Split children derived after the capture
// point.
func TestStateRoundTrip(t *testing.T) {
	ref := New(12345)
	for i := 0; i < 1000; i++ {
		ref.Uint64()
	}
	st := ref.State()

	// The reference continues; the twins must match it draw for draw.
	twinFrom := FromState(st)
	twinSet := New(999) // deliberately different position before SetState
	twinSet.Uint64()
	twinSet.SetState(st)

	for i := 0; i < 1000; i++ {
		want := ref.Uint64()
		if got := twinFrom.Uint64(); got != want {
			t.Fatalf("draw %d: FromState twin %d, want %d", i, got, want)
		}
		if got := twinSet.Uint64(); got != want {
			t.Fatalf("draw %d: SetState twin %d, want %d", i, got, want)
		}
	}

	// Splits taken after restore match splits taken by the reference.
	wantChild := ref.Split(7)
	gotChild := twinFrom.Split(7)
	for i := 0; i < 100; i++ {
		if w, g := wantChild.Uint64(), gotChild.Uint64(); w != g {
			t.Fatalf("child draw %d: %d != %d", i, g, w)
		}
	}
}

// TestStateCapturesPosition verifies State is a snapshot, not a live view:
// advancing the source after capture does not change the captured value.
func TestStateCapturesPosition(t *testing.T) {
	s := New(42)
	st := s.State()
	s.Uint64()
	if st != ([4]uint64{}) && st == s.State() {
		t.Fatal("State did not advance after a draw")
	}
	s.SetState(st)
	if s.State() != st {
		t.Fatal("SetState round trip mismatch")
	}
}

// TestSetStateZeroRecovers documents the degenerate-state guard: the
// all-zero xoshiro state (which would emit zeros forever) is replaced by a
// usable freshly seeded state.
func TestSetStateZeroRecovers(t *testing.T) {
	s := New(1)
	s.SetState([4]uint64{})
	if s.State() == ([4]uint64{}) {
		t.Fatal("zero state accepted verbatim")
	}
	if a, b := s.Uint64(), s.Uint64(); a == 0 && b == 0 {
		t.Fatal("generator stuck at zero")
	}
}
