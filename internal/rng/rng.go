// Package rng provides a small, fast, deterministic pseudo-random number
// generator used throughout the simulator.
//
// Every stochastic component of the DRAM model (weak-cell sampling, VRT state
// transitions, sense-amplifier noise, thermal sensor jitter, workload
// generation) draws from an rng.Source seeded explicitly by the caller, so
// that every experiment in this repository is reproducible bit-for-bit.
//
// The generator is xoshiro256**, which has a 256-bit state, passes BigCrush,
// and — unlike math/rand's global source — is cheaply *splittable*: Split
// derives an independent child stream from a parent stream and a 64-bit key.
// Splitting is what lets a device with millions of weak cells give each cell
// its own stable stream without storing per-cell generator state.
package rng

import "math"

// Source is a xoshiro256** pseudo-random number generator. The zero value is
// not usable; construct one with New or Split.
type Source struct {
	s0, s1, s2, s3 uint64
}

// splitMix64 is the recommended seeding generator for xoshiro: it decorrelates
// arbitrary user seeds (including small integers and related keys).
func splitMix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a Source deterministically derived from seed.
func New(seed uint64) *Source {
	var s Source
	s.reseed(seed)
	return &s
}

func (s *Source) reseed(seed uint64) {
	x := seed
	s.s0 = splitMix64(&x)
	s.s1 = splitMix64(&x)
	s.s2 = splitMix64(&x)
	s.s3 = splitMix64(&x)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 pseudo-random bits.
func (s *Source) Uint64() uint64 {
	result := rotl(s.s1*5, 7) * 9
	t := s.s1 << 17
	s.s2 ^= s.s0
	s.s3 ^= s.s1
	s.s1 ^= s.s2
	s.s0 ^= s.s3
	s.s2 ^= t
	s.s3 = rotl(s.s3, 45)
	return result
}

// Split returns a new Source whose stream is independent of the parent for
// practical purposes. The child depends only on the parent's *current* state
// and the key, so calling Split with distinct keys from a freshly seeded
// parent yields a stable family of streams.
func (s *Source) Split(key uint64) *Source {
	// Mix the key with fresh output so children with different keys differ
	// even when the parent state is reused, and children of different
	// parents differ even for equal keys.
	h := s.Uint64()
	x := h ^ (key * 0x9e3779b97f4a7c15)
	var c Source
	c.reseed(splitMix64(&x))
	return &c
}

// Derive returns a Source that is a pure function of (seed, key): it does not
// advance any parent state. It is used to give immutable per-cell streams.
func Derive(seed, key uint64) *Source {
	x := seed ^ rotl(key, 32) ^ 0xd1b54a32d192ed03
	mixed := splitMix64(&x) ^ splitMix64(&x)
	return New(mixed)
}

// State returns the generator's full 256-bit internal state, for
// checkpointing. Restoring it with SetState or FromState resumes the stream
// at exactly the position it was captured, so a checkpointed campaign
// replays the identical draw sequence.
func (s *Source) State() [4]uint64 {
	return [4]uint64{s.s0, s.s1, s.s2, s.s3}
}

// SetState overwrites the generator's internal state with a value captured
// by State. The all-zero state is never produced by New, Split or Derive
// (splitMix64 of any seed is non-degenerate), so a zero state here indicates
// a corrupted checkpoint; it is replaced by a freshly seeded state to keep
// the generator usable rather than stuck emitting zeros.
func (s *Source) SetState(st [4]uint64) {
	if st == ([4]uint64{}) {
		s.reseed(0)
		return
	}
	s.s0, s.s1, s.s2, s.s3 = st[0], st[1], st[2], st[3]
}

// FromState constructs a Source positioned at a state captured by State.
func FromState(st [4]uint64) *Source {
	var s Source
	s.SetState(st)
	return &s
}

// Float64 returns a uniformly distributed float64 in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniformly distributed int in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		//lint:ignore no-panic math/rand-style API precondition, kept for drop-in compatibility
		panic("rng: Intn with non-positive n")
	}
	return int(s.Uint64n(uint64(n)))
}

// Uint64n returns a uniformly distributed uint64 in [0, n). It panics if
// n == 0. Uses Lemire's multiply-shift rejection method.
func (s *Source) Uint64n(n uint64) uint64 {
	if n == 0 {
		//lint:ignore no-panic math/rand-style API precondition, kept for drop-in compatibility
		panic("rng: Uint64n with zero n")
	}
	// Fast path for powers of two.
	if n&(n-1) == 0 {
		return s.Uint64() & (n - 1)
	}
	// Rejection sampling on the top bits avoids modulo bias.
	max := math.MaxUint64 - math.MaxUint64%n
	for {
		v := s.Uint64()
		if v < max {
			return v % n
		}
	}
}

// Norm returns a standard normally distributed float64 (mean 0, stddev 1)
// using the polar Box-Muller method.
func (s *Source) Norm() float64 {
	for {
		u := 2*s.Float64() - 1
		v := 2*s.Float64() - 1
		q := u*u + v*v
		if q > 0 && q < 1 {
			return u * math.Sqrt(-2*math.Log(q)/q)
		}
	}
}

// LogNormal returns a lognormally distributed value where the underlying
// normal has the given mean mu and standard deviation sigma (both in log
// space).
func (s *Source) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*s.Norm())
}

// Exp returns an exponentially distributed value with the given mean.
// It panics if mean <= 0.
func (s *Source) Exp(mean float64) float64 {
	if mean <= 0 {
		//lint:ignore no-panic math/rand-style API precondition, kept for drop-in compatibility
		panic("rng: Exp with non-positive mean")
	}
	u := s.Float64()
	// Float64 is in [0,1); guard the log argument away from zero.
	return -mean * math.Log(1-u)
}

// Bernoulli returns true with probability p (clamped to [0, 1]).
func (s *Source) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return s.Float64() < p
}

// Poisson returns a Poisson-distributed count with the given mean lambda.
// For large lambda it uses the normal approximation, which is accurate to
// well under a percent for lambda > 64 and keeps sampling O(1).
func (s *Source) Poisson(lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda > 64 {
		v := lambda + math.Sqrt(lambda)*s.Norm() + 0.5
		if v < 0 {
			return 0
		}
		return int(v)
	}
	// Knuth's method for small lambda.
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= s.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Perm fills p with a uniformly random permutation of [0, len(p)).
func (s *Source) Perm(p []int) {
	for i := range p {
		p[i] = i
	}
	for i := len(p) - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
}
