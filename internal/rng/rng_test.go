package rng

import (
	"math"
	"math/bits"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 produced %d identical outputs in 100 draws", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split(1)
	c2 := parent.Split(2)
	for i := 0; i < 100; i++ {
		if c1.Uint64() == c2.Uint64() {
			t.Fatalf("split children matched at step %d", i)
		}
	}
}

func TestDeriveIsPure(t *testing.T) {
	a := Derive(99, 12345)
	b := Derive(99, 12345)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("Derive is not a pure function of (seed, key)")
		}
	}
	c := Derive(99, 12346)
	a2 := Derive(99, 12345)
	diff := false
	for i := 0; i < 100; i++ {
		if a2.Uint64() != c.Uint64() {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("Derive with different keys produced identical streams")
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(3)
	for i := 0; i < 100000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(4)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestIntnUniform(t *testing.T) {
	s := New(5)
	const buckets = 10
	const n = 100000
	counts := make([]int, buckets)
	for i := 0; i < n; i++ {
		counts[s.Intn(buckets)]++
	}
	for b, c := range counts {
		expect := float64(n) / buckets
		if math.Abs(float64(c)-expect) > 5*math.Sqrt(expect) {
			t.Errorf("bucket %d count %d deviates too far from %v", b, c, expect)
		}
	}
}

func TestUint64nBounds(t *testing.T) {
	s := New(6)
	f := func(n uint64) bool {
		if n == 0 {
			n = 1
		}
		v := s.Uint64n(n)
		return v < n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestNormMoments(t *testing.T) {
	s := New(8)
	const n = 200000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := s.Norm()
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Errorf("Norm mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Errorf("Norm variance = %v, want ~1", variance)
	}
}

func TestLogNormalMedian(t *testing.T) {
	s := New(9)
	const n = 100001
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = s.LogNormal(math.Log(0.1), 0.5)
	}
	// Median of lognormal(mu, sigma) is exp(mu).
	below := 0
	for _, v := range vals {
		if v < 0.1 {
			below++
		}
	}
	frac := float64(below) / n
	if math.Abs(frac-0.5) > 0.01 {
		t.Errorf("lognormal median fraction below exp(mu) = %v, want ~0.5", frac)
	}
}

func TestExpMean(t *testing.T) {
	s := New(10)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := s.Exp(3.5)
		if v < 0 {
			t.Fatalf("Exp returned negative value %v", v)
		}
		sum += v
	}
	mean := sum / n
	if math.Abs(mean-3.5) > 0.05 {
		t.Errorf("Exp mean = %v, want ~3.5", mean)
	}
}

func TestBernoulliEdge(t *testing.T) {
	s := New(11)
	for i := 0; i < 100; i++ {
		if s.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !s.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
}

func TestBernoulliRate(t *testing.T) {
	s := New(12)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if s.Bernoulli(0.3) {
			hits++
		}
	}
	rate := float64(hits) / n
	if math.Abs(rate-0.3) > 0.01 {
		t.Errorf("Bernoulli(0.3) rate = %v", rate)
	}
}

func TestPoissonMean(t *testing.T) {
	s := New(13)
	for _, lambda := range []float64{0.5, 3, 20, 500} {
		const n = 50000
		sum := 0
		for i := 0; i < n; i++ {
			sum += s.Poisson(lambda)
		}
		mean := float64(sum) / n
		tol := 4 * math.Sqrt(lambda/float64(n)) * 3
		if tol < 0.05 {
			tol = 0.05
		}
		if math.Abs(mean-lambda) > tol+lambda*0.02 {
			t.Errorf("Poisson(%v) mean = %v", lambda, mean)
		}
	}
}

func TestPoissonZero(t *testing.T) {
	s := New(14)
	if s.Poisson(0) != 0 || s.Poisson(-1) != 0 {
		t.Fatal("Poisson of non-positive lambda must be 0")
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(15)
	p := make([]int, 100)
	s.Perm(p)
	seen := make(map[int]bool)
	for _, v := range p {
		if v < 0 || v >= len(p) || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

// TestSplitSiblingsUncorrelated checks bit-level decorrelation between
// sibling child streams split from one parent: across many draws the
// fraction of agreeing bits must sit near 1/2, as it would for truly
// independent streams. A bias here would couple per-cell retention draws
// across the millions of cells that share a parent stream.
func TestSplitSiblingsUncorrelated(t *testing.T) {
	parent := New(2024)
	children := make([]*Source, 8)
	for k := range children {
		children[k] = parent.Split(uint64(k))
	}
	const draws = 4096
	for a := 0; a < len(children); a++ {
		for b := a + 1; b < len(children); b++ {
			ca, cb := *children[a], *children[b] // copy state: re-walk each pair
			agree := 0
			for i := 0; i < draws; i++ {
				x := ca.Uint64() ^ cb.Uint64()
				agree += 64 - bits.OnesCount64(x)
			}
			frac := float64(agree) / float64(64*draws)
			// 64*4096 fair coin flips: stddev ~0.001, so ±0.01 is >9 sigma.
			if math.Abs(frac-0.5) > 0.01 {
				t.Errorf("children %d,%d agree on %.4f of bits, want ~0.5", a, b, frac)
			}
		}
	}
}

// TestResplitStability checks that the split family is stable: a parent
// reconstructed from the same seed and advanced identically yields
// bit-identical children for the same key. Device reconstruction (e.g. a
// fresh mkStation per tradeoff grid point) depends on this.
func TestResplitStability(t *testing.T) {
	mk := func() *Source {
		p := New(7)
		p.Uint64() // advance: children depend on the parent's current state
		return p
	}
	c1 := mk().Split(99)
	c2 := mk().Split(99)
	for i := 0; i < 256; i++ {
		if a, b := c1.Uint64(), c2.Uint64(); a != b {
			t.Fatalf("re-split child diverged at draw %d: %#x != %#x", i, a, b)
		}
	}
	// ... and the child must also differ from a differently-advanced parent's
	// child with the same key (state sensitivity, not key sensitivity alone).
	p3 := New(7)
	p3.Uint64()
	p3.Uint64()
	c3 := p3.Split(99)
	c4 := mk().Split(99)
	same := 0
	for i := 0; i < 100; i++ {
		if c3.Uint64() == c4.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("children of differently-advanced parents matched %d/100 draws", same)
	}
}

// TestGoldenDraws pins the first outputs of the generator family. Every
// pinned experiment snapshot in this repository (determinism, soak,
// seed-stability) transitively depends on these exact sequences; an
// accidental change to xoshiro256**, splitMix64 seeding, Split, or Derive
// must fail here, loudly, before it silently invalidates those snapshots.
func TestGoldenDraws(t *testing.T) {
	check := func(name string, s *Source, want []uint64) {
		t.Helper()
		for i, w := range want {
			if got := s.Uint64(); got != w {
				t.Errorf("%s draw %d = %#x, want %#x", name, i, got, w)
			}
		}
	}
	check("New(42)", New(42), []uint64{
		0x15780b2e0c2ec716, 0x6104d9866d113a7e, 0xae17533239e499a1, 0xecb8ad4703b360a1,
		0xfde6dc7fe2ec5e64, 0xc50da53101795238, 0xb82154855a65ddb2, 0xd99a2743ebe60087,
	})
	check("New(7).Split(3)", New(7).Split(3), []uint64{
		0x74f8018564319547, 0x823651eedb9a8d2f, 0x5eaaa624784c7c5, 0x551b7be2e2bf2c71,
	})
	check("Derive(99, 12345)", Derive(99, 12345), []uint64{
		0x6fe479c0d3360b14, 0x16a678be4bcbc442, 0x65b0e9a17a6d417e, 0x3266a1f989171c9,
	})
	f := New(1)
	wantF := []float64{
		0.70292183315885048, 0.52043661993885693, 0.5741057000197225, 0.39132860204190445,
	}
	for i, w := range wantF {
		if got := f.Float64(); got != w {
			t.Errorf("New(1) Float64 draw %d = %.17g, want %.17g", i, got, w)
		}
	}
}
