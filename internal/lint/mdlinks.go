package lint

import (
	"bufio"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// mdLink matches inline markdown links and images: [text](target) with an
// optional title. Reference-style links are out of scope — the repository's
// docs use inline links only.
var mdLink = regexp.MustCompile(`!?\[[^\]]*\]\(([^)\s]+)(?:\s+"[^"]*")?\)`)

// CheckMarkdownLinks walks every .md file under root (skipping .git,
// testdata, and vendor directories) and reports a finding for each relative
// link whose target does not exist on disk. Absolute URLs (http, https,
// mailto), pure fragments (#section), and absolute paths are ignored: the
// rule guards the repo-internal cross-references that silently rot when
// files move. Fenced code blocks are skipped so documentation may quote
// link syntax.
func CheckMarkdownLinks(root string) ([]Finding, error) {
	var files []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			switch d.Name() {
			case ".git", "testdata", "vendor", "node_modules":
				if path != root {
					return filepath.SkipDir
				}
			}
			return nil
		}
		if strings.EqualFold(filepath.Ext(path), ".md") {
			files = append(files, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(files)

	var findings []Finding
	for _, path := range files {
		found, err := checkMarkdownFile(path)
		if err != nil {
			return nil, err
		}
		findings = append(findings, found...)
	}
	return findings, nil
}

// checkMarkdownFile scans one markdown file for broken relative links.
func checkMarkdownFile(path string) ([]Finding, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	var findings []Finding
	inFence := false
	lineNo := 0
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		if inFence {
			continue
		}
		for _, m := range mdLink.FindAllStringSubmatchIndex(line, -1) {
			target := line[m[2]:m[3]]
			if !relativeLink(target) {
				continue
			}
			// Strip a #fragment; a bare-fragment link was already skipped.
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			resolved := filepath.Join(filepath.Dir(path), filepath.FromSlash(target))
			if _, err := os.Stat(resolved); err != nil {
				findings = append(findings, Finding{
					Pos:     token.Position{Filename: path, Line: lineNo, Column: m[2] + 1},
					Rule:    "md-links",
					Message: "broken relative link: " + line[m[2]:m[3]],
				})
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return findings, nil
}

// relativeLink reports whether a link target is a repo-relative path this
// checker should verify.
func relativeLink(target string) bool {
	switch {
	case target == "",
		strings.HasPrefix(target, "#"),
		strings.HasPrefix(target, "/"),
		strings.Contains(target, "://"),
		strings.HasPrefix(target, "mailto:"):
		return false
	}
	return true
}
