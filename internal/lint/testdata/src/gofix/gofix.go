// Package gofix exercises the naked-goroutine rule: concurrency must flow
// through the deterministic ordered pool in internal/parallel. The tests
// load this package once as an ordinary simulation package (flagged) and
// once under the internal/parallel path (allowed).
package gofix

import "sync"

// FanOut spawns raw goroutines: completion order races, so any reduction
// over results is nondeterministic.
func FanOut(jobs []func()) {
	var wg sync.WaitGroup
	for _, job := range jobs {
		wg.Add(1)
		go func() { // WANT naked-goroutine
			defer wg.Done()
			job()
		}()
	}
	wg.Wait()
}

// Sequential is the allowed negative: plain ordered execution.
func Sequential(jobs []func()) {
	for _, job := range jobs {
		job()
	}
}
