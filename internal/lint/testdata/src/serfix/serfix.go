// Package serfix is the serialize-exhaustive fixture: one checkpointed
// struct exercising every disposition the analyzer distinguishes — the
// round-trip, the two one-sided drift cases, derived-on-restore resets,
// justified and stale waivers, and codec-named helper expansion.
package serfix

import "reaper/internal/checkpoint"

// config is read by the codec only as an in-band guard; no field of it is
// an assignment target on restore, so it is not a checkpoint surface and
// its fields are never flagged.
type config struct {
	seed  uint64
	knobs uint64
}

// inner round-trips through encodeInner/decodeInner helpers; the analyzer
// must follow codec-named same-package calls to see x covered.
type inner struct {
	x uint64
	y uint64 // WANT serialize-exhaustive
}

type widget struct {
	cfg config
	in  inner

	a uint64
	b uint64 // WANT serialize-exhaustive
	c uint64 // WANT serialize-exhaustive
	d uint64 // WANT serialize-exhaustive
	e uint64 //lint:serialized-elsewhere rebuilt from cfg by construction
	f uint64
	//lint:serialized-elsewhere stale on purpose: g is in fact encoded
	g uint64 // WANT serialize-exhaustive
	//lint:serialized-elsewhere
	h uint64 // WANT serialize-exhaustive
}

// EncodeState writes the widget's mutable state.
func (w *widget) EncodeState(e *checkpoint.Encoder) error {
	e.U64(w.cfg.seed) // in-band guard
	e.U64(w.a)
	e.U64(w.d) // drift: never restored
	e.U64(w.g) // makes the waiver on g stale
	e.U64(w.h)
	encodeInner(e, &w.in)
	return nil
}

// RestoreState reads state written by EncodeState.
func (w *widget) RestoreState(d *checkpoint.Decoder) error {
	if d.U64() != w.cfg.seed {
		return d.Err()
	}
	w.a = d.U64()
	w.c = d.U64() // drift: never encoded
	w.h = d.U64()
	w.f = 0 // derived: reset without consuming the stream
	decodeInner(d, &w.in)
	return d.Err()
}

func encodeInner(e *checkpoint.Encoder, in *inner) {
	e.U64(in.x)
}

func decodeInner(d *checkpoint.Decoder, in *inner) {
	in.x = d.U64()
}
