package docfix // WANT exported-doc

// Documented has a doc comment, so it is clean.
type Documented struct{}

// Get is documented.
func (Documented) Get() int { return 0 }

func (Documented) Bare() int { return 1 } // WANT exported-doc

type Bare struct{} // WANT exported-doc

// unexported types need no docs, and neither do their exported methods.
type hidden struct{}

func (hidden) Visible() int { return 2 }

func Exported() {} // WANT exported-doc

func unexported() {}

// Grouped declarations are covered by the group doc.
const (
	GroupedA = 1
	GroupedB = 2
)

const LoneConst = 3 // WANT exported-doc

var (
	LoneVar int // WANT exported-doc

	// DocumentedVar carries its own spec doc inside an undocumented group.
	DocumentedVar int
)

var _ = unexported
