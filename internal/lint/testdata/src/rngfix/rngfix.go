// Package rngfix is the rng-stream-discipline fixture: every concurrency
// boundary the analyzer guards (goroutine bodies, parallel job closures),
// with the two legal stream disciplines (derive inside the closure, select
// a per-job slot by the job index) and the shared-capture violations.
package rngfix

import (
	"context"

	"reaper/internal/parallel"
	"reaper/internal/rng"
)

type sim struct {
	src   *rng.Source
	banks []*rng.Source
}

func legalDisciplines(ctx context.Context, seeds []*rng.Source, seed uint64) error {
	// Legal: each job derives its own stream from pure (seed, key) inputs.
	_, err := parallel.Map(ctx, 4, 2, func(ctx context.Context, i int) (uint64, error) {
		s := rng.Derive(seed, uint64(i))
		return s.Uint64(), nil
	})
	if err != nil {
		return err
	}
	// Legal: each job reads only its per-job slot, selected by the index.
	return parallel.ForEach(ctx, len(seeds), 2, func(ctx context.Context, i int) error {
		_ = seeds[i].Uint64()
		return nil
	})
}

func sharedCaptures(ctx context.Context, src *rng.Source, seeds []*rng.Source, done chan struct{}) error {
	go func() {
		_ = src.Uint64() // WANT rng-stream-discipline
		close(done)
	}()
	// A fixed slot is as shared as a bare capture: every job draws from it.
	err := parallel.ForEach(ctx, 4, 2, func(ctx context.Context, i int) error {
		_ = seeds[0].Uint64() // WANT rng-stream-discipline
		return nil
	})
	if err != nil {
		return err
	}
	return parallel.Do(ctx, 2,
		func(ctx context.Context) error {
			_ = src.Uint64() // WANT rng-stream-discipline
			return nil
		},
		func(ctx context.Context) error {
			s := src.Split(1) // WANT rng-stream-discipline
			_ = s.Uint64()
			return nil
		},
	)
}

func (m *sim) shardSweep(vals []float64) {
	// Legal: per-bank slot selected by the shard index.
	parallel.ShardLoop(len(m.banks), 2, func(i int) {
		vals[i] = m.banks[i].Float64()
	})
	// Illegal: the receiver's shared stream reached every shard.
	parallel.ShardLoop(len(vals), 2, func(i int) {
		vals[i] = m.src.Float64() // WANT rng-stream-discipline
	})
	// Illegal: ranging a captured container hands every stream to one job.
	parallel.ShardLoop(1, 1, func(i int) {
		for _, s := range m.banks { // WANT rng-stream-discipline
			_ = s.Uint64()
		}
	})
}
