// Command panicmain is the no-panic rule's allowed negative: package main
// may crash at the process edge.
package main

func main() {
	panic("panicmain: commands may crash at the edge")
}
