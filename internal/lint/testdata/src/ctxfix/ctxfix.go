// Package ctxfix exercises the ctx-first rule: exported functions take
// their context first, and library code never mints its own background
// context — cancellation flows down from main or the test.
package ctxfix

import "context"

// RunFirst is the allowed negative: ctx in position zero.
func RunFirst(ctx context.Context, hours float64) error {
	return ctx.Err()
}

// RunLast buries the context behind other parameters.
func RunLast(hours float64, ctx context.Context) error { // WANT ctx-first
	return ctx.Err()
}

// runLast is allowed: the rule governs the exported API surface.
func runLast(hours float64, ctx context.Context) error {
	return ctx.Err()
}

// Detached mints its own root context, cutting the caller's cancellation
// chain.
func Detached() error {
	ctx := context.Background() // WANT ctx-first
	return ctx.Err()
}

// Forward is the allowed negative for call sites: deriving from the
// caller's context keeps the chain intact.
func Forward(ctx context.Context) (context.Context, context.CancelFunc) {
	return context.WithCancel(ctx)
}
