// Package panicfix exercises the no-panic rule: library packages return
// errors; only commands may crash at the edge.
package panicfix

import "errors"

// MustPositive is the true positive: a library function crashing the
// process instead of returning the error.
func MustPositive(n int) int {
	if n <= 0 {
		panic("panicfix: non-positive n") // WANT no-panic
	}
	return n
}

// CheckedPositive is the allowed negative: the same guard, returned.
func CheckedPositive(n int) (int, error) {
	if n <= 0 {
		return 0, errors.New("panicfix: non-positive n")
	}
	return n, nil
}
