// Package mapfix exercises the map-order rule: map iteration may not leak
// Go's randomized iteration order into appended slices, float accumulators,
// or output streams. Order-independent bodies are allowed.
package mapfix

import (
	"fmt"
	"sort"
)

// KeysUnsorted is the classic silent determinism killer.
func KeysUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // WANT map-order
	}
	return keys
}

// KeysSorted is the allowed idiom: collect, then sort before use.
func KeysSorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// KeysHelperSorted is allowed via a local sort helper, the idiom the soak
// harness uses (sortWordAddrs).
func KeysHelperSorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sortKeys(keys)
	return keys
}

func sortKeys(keys []string) { sort.Strings(keys) }

// SumFloats accumulates floats: addition is not associative, so the result
// depends on iteration order in the low bits.
func SumFloats(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // WANT map-order
	}
	return sum
}

// SumFloatsPlain is the spelled-out accumulation form of the same bug.
func SumFloatsPlain(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum = sum + v // WANT map-order
	}
	return sum
}

// CountInts is allowed: integer addition is associative and commutative, so
// any iteration order yields the same total.
func CountInts(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// Dump writes lines straight from the loop.
func Dump(m map[string]int) {
	for k, v := range m {
		fmt.Printf("%s=%d\n", k, v) // WANT map-order
	}
}

// Copy is allowed: writing m[k] slots is order-independent.
func Copy(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// SliceAppend is allowed: ranging over a slice is ordered.
func SliceAppend(xs []int) []int {
	var out []int
	for _, x := range xs {
		out = append(out, x*2)
	}
	return out
}
