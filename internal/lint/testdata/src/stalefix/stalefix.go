// Package stalefix is the stale-suppression fixture. Directives whose
// reason contains the word STALE are the ones the analyzer must flag; the
// dedicated test derives its expectations from that convention rather than
// from WANT markers, because a stale finding lands on the directive's own
// line — where a second marker comment cannot go.
package stalefix

import "fmt"

// guard carries a directive that still suppresses a live finding: used,
// therefore not stale.
func guard(ok bool) error {
	if !ok {
		//lint:ignore no-panic fixture: this suppression is exercised and stays used
		panic("unreachable")
	}
	return fmt.Errorf("stalefix: not ok")
}

// healed once panicked; the panic was fixed but the directive was left
// behind — exactly the rot stale-suppression exists to catch.
func healed() int {
	//lint:ignore no-panic STALE the panic this excused was removed
	return 1
}
