package stalefix

// Analyzers never run on _test.go files, so a directive here can never
// suppress anything: stale-suppression must flag it unconditionally.

func helper() int {
	//lint:ignore no-panic STALE directives cannot fire in test files
	return 2
}
