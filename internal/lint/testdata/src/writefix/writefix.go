// Package writefix exercises the raw-artifact-write rule: raw file
// creation is forbidden outside internal/checkpoint (the same file is
// loaded under a checkpoint import path by the tests, where it is legal).
package writefix

import "os"

// Report writes a report the raw, truncation-prone way.
func Report(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644) // WANT raw-artifact-write
}

// Open creates an artifact stream the raw way.
func Open(path string) (*os.File, error) {
	return os.Create(path) // WANT raw-artifact-write
}

// ReadBack is the allowed negative: reads are not artifact writes.
func ReadBack(path string) ([]byte, error) {
	return os.ReadFile(path)
}

// Stream is the allowed negative for justified live streams.
func Stream(path string) (*os.File, error) {
	return os.Create(path) //lint:ignore raw-artifact-write live profile stream cannot be buffered then renamed
}
