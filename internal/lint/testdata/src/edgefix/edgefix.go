// Package edgefix exercises //lint:ignore edge cases: a multi-rule
// directive (comma-separated rule list, one shared reason) silencing two
// different findings on one line, and a directive governing a declaration
// rather than a statement.
package edgefix

import (
	"context"
	"time"
)

// Exported keeps a legacy trailing-context signature for ABI comparison.
//lint:ignore ctx-first fixture: legacy signature retained deliberately
func Exported(n int, ctx context.Context) {}

func both() {
	//lint:ignore no-panic,nondeterm-time fixture: one directive silences both rules
	panic(time.Now())
}
