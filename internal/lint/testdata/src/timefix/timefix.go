// Package timefix exercises the nondeterm-time rule: wall-clock reads are
// forbidden in simulation packages but fine in command front-ends (the same
// file is loaded under both kinds of import path by the tests).
package timefix

import "time"

// SimulatedClock is the allowed negative: durations and time arithmetic on
// caller-supplied instants are deterministic.
func SimulatedClock(seconds float64) time.Duration {
	return time.Duration(seconds * float64(time.Second))
}

// Elapsed is the allowed negative for explicit instants: pure arithmetic.
func Elapsed(start, end time.Time) time.Duration { return end.Sub(start) }

// Stamp reads the wall clock.
func Stamp() time.Time {
	return time.Now() // WANT nondeterm-time
}

// Age measures real elapsed time.
func Age(start time.Time) time.Duration {
	return time.Since(start) // WANT nondeterm-time
}

// Nap sleeps in real time.
func Nap() {
	time.Sleep(time.Millisecond) // WANT nondeterm-time
}
