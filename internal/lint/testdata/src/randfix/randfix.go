// Package randfix exercises the raw-rand rule: math/rand is forbidden
// outside internal/rng. The tests load this package once as a simulation
// package (the import is flagged) and once as internal/rng/compat (allowed).
package randfix

import (
	"math/rand" // WANT raw-rand
	"sort"
)

// Shuffled is the true positive's use site: an ad-hoc generator seeded from
// a constant, exactly the pattern that breaks the seed-split discipline.
func Shuffled(n int) []int {
	r := rand.New(rand.NewSource(1))
	out := make([]int, n)
	for i := range out {
		out[i] = r.Intn(n)
	}
	return out
}

// Deterministic is the allowed negative: no randomness at all.
func Deterministic(xs []int) []int {
	out := append([]int(nil), xs...)
	sort.Ints(out)
	return out
}
