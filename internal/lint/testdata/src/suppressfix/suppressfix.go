// Package suppressfix exercises //lint:ignore handling: a justified
// directive silences its rule (and is counted), a directive without a
// reason is itself a finding, and justifications work both trailing the
// offending line and standing alone above it.
package suppressfix

// Guarded carries a trailing justified suppression: no finding, counted.
func Guarded(n int) int {
	if n < 0 {
		panic("suppressfix: negative n") //lint:ignore no-panic invariant guard exercised only by harness bugs
	}
	return n
}

// GuardedAbove carries a standalone justified suppression on the line
// above: no finding, counted.
func GuardedAbove(n int) int {
	if n < 0 {
		//lint:ignore no-panic invariant guard exercised only by harness bugs
		panic("suppressfix: negative n")
	}
	return n
}

// Unjustified has a directive with no reason: the panic still fires the
// rule, and the directive itself is a lint-directive finding.
func Unjustified(n int) int {
	if n < 0 {
		panic("suppressfix: negative n") //lint:ignore no-panic
	}
	return n
}

// WrongRule suppresses a different rule than the one that fires: the panic
// finding must survive.
func WrongRule(n int) int {
	if n < 0 {
		panic("suppressfix: negative n") //lint:ignore map-order misdirected justification
	}
	return n
}
