package lint

import (
	"path/filepath"
	"testing"
)

// TestCheckMarkdownLinks drives the checker over the fixture tree: exactly
// the three broken relative links fire; good links, absolute URLs,
// fragments, and fenced quotations do not.
func TestCheckMarkdownLinks(t *testing.T) {
	findings, err := CheckMarkdownLinks(filepath.Join("testdata", "md"))
	if err != nil {
		t.Fatal(err)
	}
	wantLines := map[int]int{5: 2, 14: 1} // line → broken links on it
	gotLines := map[int]int{}
	for _, f := range findings {
		if f.Rule != "md-links" {
			t.Errorf("unexpected rule %q", f.Rule)
		}
		gotLines[f.Pos.Line]++
	}
	if len(findings) != 3 {
		t.Errorf("want 3 findings, got %d: %v", len(findings), findings)
	}
	for line, n := range wantLines {
		if gotLines[line] != n {
			t.Errorf("line %d: want %d findings, got %d", line, n, gotLines[line])
		}
	}
}

// TestRepoMarkdownClean is the tier-1 hook for the docs themselves: every
// relative link in the repository's markdown must resolve.
func TestRepoMarkdownClean(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	findings, err := CheckMarkdownLinks(l.Root)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}
