package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file implements serialize-exhaustive, the checkpoint-drift guard.
//
// The repository's resume guarantee ("a resumed campaign is byte-identical
// to an uninterrupted one", DESIGN.md §8) rests on hand-written binary
// codecs: EncodeState/RestoreState method pairs and encodeX/decodeX helper
// pairs in the packages that own checkpoint surfaces. The classic failure
// mode is silent drift: a struct grows a field, the codec pair is not
// updated, and nothing fails until a multi-week soak resumes differently.
//
// The analyzer turns that into a build-time error. For every codec pair it
// computes, via go/types, the full field set of each struct the restore
// side writes into, and requires every field to be either
//
//   - encoded and restored (the normal round-trip),
//   - reset or reconstructed on restore without consuming decoder data
//     (derived state, e.g. caches that refill deterministically), or
//   - explicitly waived with a //lint:serialized-elsewhere <reason>
//     directive on the field declaration.
//
// Two asymmetries are also findings: a field decoded but never encoded
// (the codec would desynchronize the byte stream — and this is exactly
// what deleting one field-encode statement produces, which the mutation
// self-test exercises), and a field encoded but never restored (bytes
// written that no reader consumes). A waiver on a field the encoder does
// cover is itself a finding, so waivers cannot rot.
//
// The analysis is package-local and name-driven: it follows calls from the
// pair's bodies into same-package helpers whose names look like codec code
// (encode*/decode*/restore*/serialize*/...), but does not cross package
// boundaries — each package owning a checkpoint surface is checked against
// its own structs.

// waiverPrefix is the field-level waiver directive, matched after "//" with
// no space (like //go:generate and //lint:ignore).
const waiverPrefix = "lint:serialized-elsewhere"

// SerializeExhaustive reports struct fields missed by a checkpoint codec
// pair: not encoded, not restored, and not waived — plus the one-sided
// drift cases (decoded-but-never-encoded, encoded-but-never-restored) and
// stale waivers.
var SerializeExhaustive = &Analyzer{
	Name: "serialize-exhaustive",
	Doc:  "every field of a checkpointed struct must be encoded+restored, reset on restore, or waived with //lint:serialized-elsewhere",
	Run:  serializeExhaustiveRun,
}

// codecPair is one encode/restore surface: the two function declarations
// whose bodies (plus codec-named same-package helpers they call) form the
// closure the field analysis walks.
type codecPair struct {
	label          string // e.g. "Device.EncodeState/RestoreState"
	encode, decode *ast.FuncDecl
}

// codecCoverage aggregates, across every pair in the package, how each
// struct field is touched.
type codecCoverage struct {
	encoded  map[*types.Var]bool // referenced anywhere in an encode closure
	restored map[*types.Var]bool // referenced anywhere in a restore closure
	written  map[*types.Var]bool // assignment target (or composite-lit key) in a restore closure
	decoded  map[*types.Var]bool // written from an expression that consumes the Decoder
}

func serializeExhaustiveRun(p *Package, report func(ast.Node, string, ...any)) {
	pairs, helpers := findCodecPairs(p)
	if len(pairs) == 0 {
		return
	}
	cov := &codecCoverage{
		encoded:  map[*types.Var]bool{},
		restored: map[*types.Var]bool{},
		written:  map[*types.Var]bool{},
		decoded:  map[*types.Var]bool{},
	}
	for _, pair := range pairs {
		for _, fn := range codecClosure(p, pair.encode, helpers) {
			collectFieldRefs(p, fn.Body, cov.encoded)
		}
		for _, fn := range codecClosure(p, pair.decode, helpers) {
			collectFieldRefs(p, fn.Body, cov.restored)
			collectRestoreWrites(p, fn.Body, cov)
		}
	}
	checkStructs(p, cov, report)
}

// codecNamed reports whether a function name looks like serialization code;
// closure expansion follows only such helpers so ordinary logic (which
// touches many fields for other reasons) never masks missing codec lines.
func codecNamed(name string) bool {
	n := strings.ToLower(name)
	for _, prefix := range []string{"encode", "decode", "restore", "serialize", "deserialize", "marshal", "unmarshal"} {
		if strings.HasPrefix(n, prefix) {
			return true
		}
	}
	return false
}

// recvNamed resolves a method declaration's receiver base named type.
func recvNamed(p *Package, fd *ast.FuncDecl) *types.Named {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return nil
	}
	tv, ok := p.Info.Types[fd.Recv.List[0].Type]
	if !ok || tv.Type == nil {
		return nil
	}
	t := tv.Type
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// findCodecPairs discovers the package's codec surfaces and indexes every
// package-level function/method declaration by its object for closure
// expansion.
func findCodecPairs(p *Package) ([]codecPair, map[types.Object]*ast.FuncDecl) {
	byObj := map[types.Object]*ast.FuncDecl{}
	type methodSide struct {
		named *types.Named
		fd    *ast.FuncDecl
	}
	var encMethods, decMethods []methodSide
	encFuncs := map[string]*ast.FuncDecl{} // lowered suffix after "encode"
	decFuncs := map[string]*ast.FuncDecl{} // lowered suffix after "decode"/"restore"
	topFuncs := map[string]*ast.FuncDecl{} // lowered name -> decl, for Decode<T>/Restore<T> lookups

	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if obj := p.Info.Defs[fd.Name]; obj != nil {
				byObj[obj] = fd
			}
			name := strings.ToLower(fd.Name.Name)
			if fd.Recv != nil {
				named := recvNamed(p, fd)
				if named == nil {
					continue
				}
				switch name {
				case "encodestate", "serialize":
					encMethods = append(encMethods, methodSide{named, fd})
				case "restorestate", "deserialize":
					decMethods = append(decMethods, methodSide{named, fd})
				}
				continue
			}
			topFuncs[name] = fd
			if rest, ok := strings.CutPrefix(name, "encode"); ok && rest != "" {
				encFuncs[rest] = fd
			}
			if rest, ok := strings.CutPrefix(name, "decode"); ok && rest != "" {
				decFuncs[rest] = fd
			}
			if rest, ok := strings.CutPrefix(name, "restore"); ok && rest != "" {
				if _, taken := decFuncs[rest]; !taken {
					decFuncs[rest] = fd
				}
			}
		}
	}

	var pairs []codecPair
	for _, enc := range encMethods {
		var dec *ast.FuncDecl
		for _, d := range decMethods {
			if d.named == enc.named {
				dec = d.fd
				break
			}
		}
		if dec == nil {
			// Method encoder with a package-function restorer, e.g.
			// Snapshot.EncodeState paired with DecodeSnapshot.
			tn := strings.ToLower(enc.named.Obj().Name())
			if fd, ok := topFuncs["decode"+tn]; ok {
				dec = fd
			} else if fd, ok := topFuncs["restore"+tn]; ok {
				dec = fd
			}
		}
		if dec == nil {
			continue
		}
		pairs = append(pairs, codecPair{
			label:  enc.named.Obj().Name(),
			encode: enc.fd,
			decode: dec,
		})
	}
	var suffixes []string
	for suffix := range encFuncs {
		suffixes = append(suffixes, suffix)
	}
	sort.Strings(suffixes)
	for _, suffix := range suffixes {
		if dec, ok := decFuncs[suffix]; ok {
			pairs = append(pairs, codecPair{label: suffix, encode: encFuncs[suffix], decode: dec})
		}
	}
	return pairs, byObj
}

// codecClosure returns start plus every same-package codec-named function
// transitively called from it (bounded; cycles are harmless).
func codecClosure(p *Package, start *ast.FuncDecl, helpers map[types.Object]*ast.FuncDecl) []*ast.FuncDecl {
	seen := map[*ast.FuncDecl]bool{start: true}
	queue := []*ast.FuncDecl{start}
	out := []*ast.FuncDecl{start}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			var callee types.Object
			switch f := call.Fun.(type) {
			case *ast.Ident:
				callee = p.Info.Uses[f]
			case *ast.SelectorExpr:
				callee = p.Info.Uses[f.Sel]
			}
			if callee == nil || !codecNamed(callee.Name()) {
				return true
			}
			if fd, ok := helpers[callee]; ok && !seen[fd] {
				seen[fd] = true
				queue = append(queue, fd)
				out = append(out, fd)
			}
			return true
		})
	}
	return out
}

// recordSelectionPath records every struct field along a field selection's
// index path (s.stats.WriteSeconds touches both Station.stats and
// Stats.WriteSeconds; promoted fields record the embedded hop too).
func recordSelectionPath(p *Package, se *ast.SelectorExpr, set map[*types.Var]bool) {
	sel, ok := p.Info.Selections[se]
	if !ok || sel.Kind() != types.FieldVal {
		return
	}
	t := sel.Recv()
	for _, idx := range sel.Index() {
		if ptr, ok := t.Underlying().(*types.Pointer); ok {
			t = ptr.Elem()
		}
		st, ok := t.Underlying().(*types.Struct)
		if !ok {
			return
		}
		if idx >= st.NumFields() {
			return
		}
		f := st.Field(idx)
		set[f] = true
		t = f.Type()
	}
}

// structOfCompositeLit resolves a composite literal's struct type, if any.
func structOfCompositeLit(p *Package, lit *ast.CompositeLit) *types.Struct {
	tv, ok := p.Info.Types[lit]
	if !ok || tv.Type == nil {
		return nil
	}
	t := tv.Type
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	st, _ := t.Underlying().(*types.Struct)
	return st
}

// collectFieldRefs records every struct field referenced in the body: via
// selector expressions and via composite-literal construction (keyed and
// positional).
func collectFieldRefs(p *Package, body ast.Node, set map[*types.Var]bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.SelectorExpr:
			recordSelectionPath(p, x, set)
		case *ast.CompositeLit:
			st := structOfCompositeLit(p, x)
			if st == nil {
				return true
			}
			keyed := false
			for _, el := range x.Elts {
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					keyed = true
					if id, ok := kv.Key.(*ast.Ident); ok {
						if v, ok := p.Info.Uses[id].(*types.Var); ok {
							set[v] = true
						}
					}
				}
			}
			if !keyed && len(x.Elts) > 0 {
				for i := 0; i < st.NumFields(); i++ {
					set[st.Field(i)] = true
				}
			}
		}
		return true
	})
}

// isDecoderType reports whether t is (a pointer to) checkpoint.Decoder.
func isDecoderType(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Name() == "Decoder" && obj.Pkg() != nil &&
		strings.HasSuffix(obj.Pkg().Path(), "internal/checkpoint")
}

// consumesDecoder reports whether the expression subtree mentions a value
// of type *checkpoint.Decoder — i.e. whether evaluating it advances the
// decode stream (d.F64(), decodeLabels(d), telemetry.DecodeSnapshot(d)).
func consumesDecoder(p *Package, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		x, ok := n.(ast.Expr)
		if !ok {
			return true
		}
		if tv, ok := p.Info.Types[x]; ok && isDecoderType(tv.Type) {
			found = true
			return false
		}
		return true
	})
	return found
}

// markLHSFields records the fields along every selector path in an
// assignment target into written (and decoded when fed by the stream).
func markLHSFields(p *Package, lhs ast.Expr, cov *codecCoverage, fromDecoder bool) {
	tmp := map[*types.Var]bool{}
	collectFieldRefs(p, lhs, tmp)
	for f := range tmp {
		cov.written[f] = true
		if fromDecoder {
			cov.decoded[f] = true
		}
	}
}

// collectRestoreWrites classifies restore-side mutations: which fields are
// assignment targets, and which of those consume decoder data (as opposed
// to derived resets like `d.shards = nil`).
func collectRestoreWrites(p *Package, body ast.Node, cov *codecCoverage) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range x.Lhs {
				rhs := x.Rhs
				if len(x.Rhs) == len(x.Lhs) {
					rhs = x.Rhs[i : i+1]
				}
				from := false
				for _, r := range rhs {
					if consumesDecoder(p, r) {
						from = true
						break
					}
				}
				markLHSFields(p, lhs, cov, from)
			}
		case *ast.IncDecStmt:
			markLHSFields(p, x.X, cov, false)
		case *ast.CompositeLit:
			st := structOfCompositeLit(p, x)
			if st == nil {
				return true
			}
			keyed := false
			for _, el := range x.Elts {
				kv, ok := el.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				keyed = true
				id, ok := kv.Key.(*ast.Ident)
				if !ok {
					continue
				}
				v, ok := p.Info.Uses[id].(*types.Var)
				if !ok {
					continue
				}
				cov.written[v] = true
				if consumesDecoder(p, kv.Value) {
					cov.decoded[v] = true
				}
			}
			if !keyed {
				for i, el := range x.Elts {
					if i >= st.NumFields() {
						break
					}
					cov.written[st.Field(i)] = true
					if consumesDecoder(p, el) {
						cov.decoded[st.Field(i)] = true
					}
				}
			}
		}
		return true
	})
}

// fieldWaiver is one parsed //lint:serialized-elsewhere directive.
type fieldWaiver struct {
	comment *ast.Comment
	reason  string
}

// waiverFor extracts a serialized-elsewhere directive from a field's doc or
// trailing comment group.
func waiverFor(field *ast.Field) *fieldWaiver {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			text, ok := strings.CutPrefix(c.Text, "//"+waiverPrefix)
			if !ok {
				continue
			}
			return &fieldWaiver{comment: c, reason: strings.TrimSpace(text)}
		}
	}
	return nil
}

// checkStructs walks every named struct type declared in the package and
// reports codec-coverage violations for those the restore side writes into.
func checkStructs(p *Package, cov *codecCoverage, report func(ast.Node, string, ...any)) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				stAST, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				obj := p.Info.Defs[ts.Name]
				if obj == nil {
					continue
				}
				st, ok := obj.Type().Underlying().(*types.Struct)
				if !ok {
					continue
				}
				checkOneStruct(p, ts.Name.Name, stAST, st, cov, report)
			}
		}
	}
}

func checkOneStruct(p *Package, name string, stAST *ast.StructType, st *types.Struct, cov *codecCoverage, report func(ast.Node, string, ...any)) {
	// Only structs the restore side writes into are checkpoint surfaces;
	// config/geometry structs that codecs merely read (guard comparisons)
	// are construction inputs, out of scope.
	roped := false
	for i := 0; i < st.NumFields(); i++ {
		if cov.written[st.Field(i)] {
			roped = true
			break
		}
	}
	if !roped {
		return
	}
	idx := 0
	for _, field := range stAST.Fields.List {
		n := len(field.Names)
		if n == 0 {
			n = 1 // embedded
		}
		waiver := waiverFor(field)
		if waiver != nil && waiver.reason == "" {
			report(fieldNode(field, 0), "malformed directive: want //%s <reason>", waiverPrefix)
		}
		for j := 0; j < n; j++ {
			if idx >= st.NumFields() {
				return
			}
			fv := st.Field(idx)
			idx++
			enc, res, dec := cov.encoded[fv], cov.restored[fv], cov.decoded[fv]
			switch {
			case waiver != nil && waiver.reason != "":
				if enc {
					report(fieldNode(field, j), "stale waiver: field %s.%s is encoded by the codec pair; remove the //%s directive", name, fv.Name(), waiverPrefix)
				}
			case enc && res:
				// Round-trips (or is guarded) on both sides.
			case enc && !res:
				report(fieldNode(field, j), "field %s.%s is encoded but never restored: the decode side skips bytes the encode side writes", name, fv.Name())
			case !enc && dec:
				report(fieldNode(field, j), "field %s.%s is decoded but never encoded: the codec pair would desynchronize the checkpoint stream", name, fv.Name())
			case !enc && res:
				// Reset or reconstructed on restore without consuming the
				// stream: derived state, observation-equivalent by contract.
			default:
				report(fieldNode(field, j), "field %s.%s is neither encoded, restored, nor waived: new-field checkpoint drift (encode it or add //%s <reason>)", name, fv.Name(), waiverPrefix)
			}
		}
	}
}

// fieldNode picks the j-th name of a field declaration for reporting (the
// whole field when embedded).
func fieldNode(field *ast.Field, j int) ast.Node {
	if j < len(field.Names) {
		return field.Names[j]
	}
	return field
}

// String satisfies fmt.Stringer for debugging pair discovery.
func (c codecPair) String() string {
	return fmt.Sprintf("%s: %s/%s", c.label, c.encode.Name.Name, c.decode.Name.Name)
}
