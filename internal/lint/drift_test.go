package lint

import (
	"go/ast"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// staleMarkedLines returns the source lines of //lint:ignore directives
// whose reason contains the word STALE — the stalefix convention for "the
// analyzer must flag this one" (a stale finding lands on the directive's
// own line, where a second WANT marker comment cannot also go).
func staleMarkedLines(p *Package) []int {
	var lines []int
	scan := func(files []*ast.File) {
		for _, f := range files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					if strings.HasPrefix(c.Text, "//"+directivePrefix) && strings.Contains(c.Text, "STALE") {
						lines = append(lines, p.Fset.Position(c.Pos()).Line)
					}
				}
			}
		}
	}
	scan(p.Files)
	scan(p.TestFiles)
	sort.Ints(lines)
	return lines
}

// TestStaleSuppressionFixture checks the rot guard end to end: a directive
// that still silences a finding stays quiet, a directive whose violation
// was fixed is flagged on its own line, and a directive stranded in a
// _test.go file (where analyzers never run) is flagged unconditionally.
func TestStaleSuppressionFixture(t *testing.T) {
	p := loadFixture(t, "stalefix", "reaper/internal/stalefix")
	if len(p.TestFiles) != 1 {
		t.Fatalf("want the fixture's _test.go parsed into TestFiles, got %d files", len(p.TestFiles))
	}
	res := Run([]*Package{p}, []*Analyzer{NoPanic, StaleSuppression})
	got := findingLines(res.Findings)

	if n := len(got["no-panic"]); n != 0 {
		t.Errorf("want the live no-panic finding suppressed, got %d at %v", n, got["no-panic"])
	}
	if res.Suppressed["no-panic"] != 1 {
		t.Errorf("want 1 used no-panic suppression, got %d", res.Suppressed["no-panic"])
	}
	want := staleMarkedLines(p)
	if len(want) == 0 {
		t.Fatal("fixture has no STALE-marked directives")
	}
	if describe(map[string][]int{"stale-suppression": got["stale-suppression"]}) !=
		describe(map[string][]int{"stale-suppression": want}) {
		t.Errorf("stale findings mismatch:\n got %v\nwant %v", got["stale-suppression"], want)
	}
}

// TestStaleSuppressionScopedRun checks the deliberate non-finding: a
// directive for a rule that was filtered out of the run is NOT stale — it
// may be load-bearing under the full suite.
func TestStaleSuppressionScopedRun(t *testing.T) {
	p := loadFixture(t, "stalefix", "reaper/internal/stalefix")
	// no-panic is not in this run, so neither shipped-file directive can be
	// judged; only the test-file directive (stale under any rule set) fires.
	res := Run([]*Package{p}, []*Analyzer{StaleSuppression})
	for _, f := range res.Findings {
		if strings.HasSuffix(f.Pos.Filename, "_test.go") {
			continue
		}
		t.Errorf("directive for a filtered-out rule flagged as stale: %s", f)
	}
}

// TestDirectiveEdgeCases covers the multi-rule directive form and a
// directive governing a declaration rather than a statement.
func TestDirectiveEdgeCases(t *testing.T) {
	p := loadFixture(t, "edgefix", "reaper/internal/edgefix")
	res := Run([]*Package{p}, []*Analyzer{NoPanic, NondetermTime, CtxFirst, StaleSuppression})

	if len(res.Findings) != 0 {
		for _, f := range res.Findings {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for rule, want := range map[string]int{"no-panic": 1, "nondeterm-time": 1, "ctx-first": 1} {
		if res.Suppressed[rule] != want {
			t.Errorf("suppressed[%s] = %d, want %d", rule, res.Suppressed[rule], want)
		}
	}
	// The comma list expands to one parsed Suppression per rule, all used.
	if len(res.Suppressions) != 3 {
		t.Errorf("want 3 parsed directives (a,b expands to two), got %d", len(res.Suppressions))
	}
	for _, s := range res.Suppressions {
		if !s.Used() {
			t.Errorf("directive at %s:%d [%s] unexpectedly unused", s.Pos.Filename, s.Pos.Line, s.Rule)
		}
		if strings.Contains(s.Rule, ",") {
			t.Errorf("unsplit multi-rule directive: %q", s.Rule)
		}
	}
}

// TestByNameNewRules pins the registry wiring of the three types-aware
// analyzers: discoverable by name, and present in the default suite.
func TestByNameNewRules(t *testing.T) {
	for name, want := range map[string]*Analyzer{
		"serialize-exhaustive":  SerializeExhaustive,
		"rng-stream-discipline": RngStreamDiscipline,
		"stale-suppression":     StaleSuppression,
	} {
		if got := ByName(name); got != want {
			t.Errorf("ByName(%q) = %v, want the registered analyzer", name, got)
		}
	}
}

// TestSerializeExhaustiveMutation is the self-test demanded by the rule's
// reason to exist: copy internal/dram, delete one field-encode statement,
// and require the analyzer to report exactly that field. A clean copy must
// stay clean — proving the rule detects drift, not merely that the shipped
// tree happens to pass.
func TestSerializeExhaustiveMutation(t *testing.T) {
	const mutatedStmt = "e.U64(d.readsDone)"

	srcDir := filepath.Join("..", "dram")
	entries, err := os.ReadDir(srcDir)
	if err != nil {
		t.Fatal(err)
	}
	writeCopy := func(dir string, mutate bool) {
		t.Helper()
		removed := false
		for _, e := range entries {
			name := e.Name()
			if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			data, err := os.ReadFile(filepath.Join(srcDir, name))
			if err != nil {
				t.Fatal(err)
			}
			if mutate && strings.Contains(string(data), mutatedStmt) {
				var kept []string
				for _, line := range strings.Split(string(data), "\n") {
					if strings.Contains(line, mutatedStmt) {
						removed = true
						continue
					}
					kept = append(kept, line)
				}
				data = []byte(strings.Join(kept, "\n"))
			}
			if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		if mutate && !removed {
			t.Fatalf("mutation target %q not found in %s — update the test", mutatedStmt, srcDir)
		}
	}

	l := fixtureLoader(t)

	cleanDir := t.TempDir()
	writeCopy(cleanDir, false)
	clean, err := l.LoadDirAs("reaper/internal/drammutclean", cleanDir)
	if err != nil {
		t.Fatalf("loading clean copy: %v", err)
	}
	if res := Run([]*Package{clean}, []*Analyzer{SerializeExhaustive}); len(res.Findings) != 0 {
		for _, f := range res.Findings {
			t.Errorf("clean copy not clean: %s", f)
		}
		t.Fatal("control failed; mutation result would be meaningless")
	}

	mutDir := t.TempDir()
	writeCopy(mutDir, true)
	mutant, err := l.LoadDirAs("reaper/internal/drammut", mutDir)
	if err != nil {
		t.Fatalf("loading mutated copy: %v", err)
	}
	res := Run([]*Package{mutant}, []*Analyzer{SerializeExhaustive})
	if len(res.Findings) != 1 {
		for _, f := range res.Findings {
			t.Logf("finding: %s", f)
		}
		t.Fatalf("want exactly 1 finding for the deleted encode line, got %d", len(res.Findings))
	}
	f := res.Findings[0]
	if f.Rule != "serialize-exhaustive" ||
		!strings.Contains(f.Message, "Device.readsDone") ||
		!strings.Contains(f.Message, "decoded but never encoded") {
		t.Errorf("finding does not name the mutated field: %s", f)
	}
}
