package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Loader discovers, parses, and type-checks every package of the module so
// analyzers can reason with full type information. It is deliberately
// stdlib-only: module-internal import paths are resolved against the module
// root directly, and standard-library imports are delegated to the source
// importer (which type-checks $GOROOT/src, so it needs no pre-built export
// data). Test files (*_test.go) and testdata directories are excluded — the
// lint invariants govern shipped simulator code; tests are the layer that
// verifies them.
type Loader struct {
	// ModulePath is the module's import path from go.mod (e.g. "reaper").
	ModulePath string
	// Root is the absolute path of the module root directory.
	Root string

	fset *token.FileSet
	std  types.Importer
	pkgs map[string]*Package // keyed by import path; nil while in-flight
}

// NewLoader locates the module root at or above dir and reads the module
// path from go.mod.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("lint: no go.mod at or above %s", abs)
		}
		root = parent
	}
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	modPath := ""
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			modPath = strings.TrimSpace(rest)
			break
		}
	}
	if modPath == "" {
		return nil, fmt.Errorf("lint: no module directive in %s/go.mod", root)
	}
	fset := token.NewFileSet()
	return &Loader{
		ModulePath: modPath,
		Root:       root,
		fset:       fset,
		std:        importer.ForCompiler(fset, "source", nil),
		pkgs:       map[string]*Package{},
	}, nil
}

// Fset returns the file set shared by every package this loader checks.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// LoadAll loads every package under the module root (the "./..." pattern).
func (l *Loader) LoadAll() ([]*Package, error) { return l.LoadUnder(".") }

// LoadUnder loads every package in the subtree rooted at rel (a path
// relative to the module root; "." means the whole module).
func (l *Loader) LoadUnder(rel string) ([]*Package, error) {
	start := filepath.Join(l.Root, rel)
	var dirs []string
	err := filepath.WalkDir(start, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != start && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
			return filepath.SkipDir
		}
		if hasGoFiles(path) {
			dirs = append(dirs, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	var out []*Package
	for _, dir := range dirs {
		p, err := l.LoadDir(dir)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// LoadDir loads (and memoizes) the single package in dir, which must be
// inside the module root.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	rel, err := filepath.Rel(l.Root, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return nil, fmt.Errorf("lint: %s is outside module root %s", dir, l.Root)
	}
	path := l.ModulePath
	if rel != "." {
		path = l.ModulePath + "/" + filepath.ToSlash(rel)
	}
	return l.check(path, abs)
}

// Import resolves an import path for the type checker: module-internal
// paths load from the module tree, everything else falls through to the
// standard-library source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/")
		p, err := l.check(path, filepath.Join(l.Root, filepath.FromSlash(rel)))
		if err != nil {
			return nil, err
		}
		return p.Pkg, nil
	}
	return l.std.Import(path)
}

func (l *Loader) check(path, dir string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		if p == nil {
			return nil, fmt.Errorf("lint: import cycle through %s", path)
		}
		return p, nil
	}
	l.pkgs[path] = nil // in-flight marker

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files, testFiles []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") {
			continue
		}
		if strings.HasSuffix(name, "_test.go") {
			// Test files are parsed but never type-checked: analyzers do
			// not run on them, but stale-suppression inspects their
			// //lint:ignore directives (which can never fire there). An
			// unparseable test file is the compiler's problem, not ours.
			if f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments); err == nil {
				testFiles = append(testFiles, f)
			}
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no buildable Go files in %s", dir)
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	var typeErrs []error
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("lint: type-checking %s: %v", path, typeErrs[0])
	}
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %v", path, err)
	}

	p := &Package{
		Path:      path,
		Dir:       dir,
		Fset:      l.fset,
		Files:     files,
		Pkg:       tpkg,
		Info:      info,
		TestFiles: testFiles,
	}
	l.pkgs[path] = p
	return p, nil
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}
