package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzers returns the registry of invariant checks, in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		NondetermTime,
		RawRand,
		MapOrder,
		NoPanic,
		NakedGoroutine,
		CtxFirst,
		ExportedDoc,
		RawArtifactWrite,
		SerializeExhaustive,
		RngStreamDiscipline,
		StaleSuppression,
	}
}

// ByName returns the named analyzer, or nil.
func ByName(name string) *Analyzer {
	for _, a := range Analyzers() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// underInternal reports whether the package lives in an internal/ subtree —
// the simulator library packages whose state must be a pure function of
// seeds and configuration.
func underInternal(p *Package) bool {
	return strings.Contains(p.Path+"/", "/internal/")
}

// pkgFuncCall resolves a call of the form pkg.Fn where pkg is an imported
// package, returning the package path and function name.
func pkgFuncCall(p *Package, call *ast.CallExpr) (pkgPath, name string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	id, isID := sel.X.(*ast.Ident)
	if !isID {
		return "", "", false
	}
	pn, isPkg := p.Info.Uses[id].(*types.PkgName)
	if !isPkg {
		return "", "", false
	}
	return pn.Imported().Path(), sel.Sel.Name, true
}

// NondetermTime forbids wall-clock reads (and timer construction) in the
// internal/ simulation packages. Simulated time must advance only through
// the simulated clocks (memctrl.Clock and friends); a single time.Now in a
// hot loop silently couples results to the host machine. Command-line
// front-ends (cmd/, examples/) may stamp reports and measure wall time.
var NondetermTime = &Analyzer{
	Name: "nondeterm-time",
	Doc:  "forbid time.Now/time.Since and timers in internal simulation packages",
	Run: func(p *Package, report func(ast.Node, string, ...any)) {
		if !underInternal(p) {
			return
		}
		banned := map[string]bool{
			"Now": true, "Since": true, "Until": true, "Sleep": true,
			"After": true, "Tick": true, "NewTicker": true, "NewTimer": true,
			"AfterFunc": true,
		}
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if pkg, name, ok := pkgFuncCall(p, call); ok && pkg == "time" && banned[name] {
					report(call, "time.%s in simulation package %s: simulated state must not depend on the wall clock", name, p.Path)
				}
				return true
			})
		}
	},
}

// RawRand forbids math/rand (v1 and v2) everywhere outside internal/rng.
// All randomness must flow through rng.Source seeds and splits so that
// every experiment replays bit-for-bit and parallel fleets stay
// worker-count invariant.
var RawRand = &Analyzer{
	Name: "raw-rand",
	Doc:  "forbid math/rand outside internal/rng; randomness flows through seeded rng.Source splits",
	Run: func(p *Package, report func(ast.Node, string, ...any)) {
		if strings.Contains(p.Path+"/", "/internal/rng/") {
			return
		}
		for _, f := range p.Files {
			for _, imp := range f.Imports {
				path := strings.Trim(imp.Path.Value, `"`)
				if path == "math/rand" || path == "math/rand/v2" {
					report(imp, "import of %s: use the seed-split discipline of internal/rng instead", path)
				}
			}
		}
	},
}

// MapOrder flags iteration over a map whose body leaks Go's randomized
// iteration order into results: appending to an outer slice that is never
// sorted afterwards, accumulating floats (addition is not associative), or
// writing output directly from the loop. Order-independent bodies — copying
// into another map, writing m[k] slots, integer counting — are allowed.
var MapOrder = &Analyzer{
	Name: "map-order",
	Doc:  "flag map iteration whose body is sensitive to Go's randomized map order",
	Run:  mapOrderRun,
}

func mapOrderRun(p *Package, report func(ast.Node, string, ...any)) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var list []ast.Stmt
			switch b := n.(type) {
			case *ast.BlockStmt:
				list = b.List
			case *ast.CaseClause:
				list = b.Body
			case *ast.CommClause:
				list = b.Body
			default:
				return true
			}
			for i, st := range list {
				for {
					if ls, ok := st.(*ast.LabeledStmt); ok {
						st = ls.Stmt
						continue
					}
					break
				}
				if rs, ok := st.(*ast.RangeStmt); ok {
					checkMapRange(p, rs, list[i+1:], report)
				}
			}
			return true
		})
	}
}

func checkMapRange(p *Package, rs *ast.RangeStmt, following []ast.Stmt, report func(ast.Node, string, ...any)) {
	tv, ok := p.Info.Types[rs.X]
	if !ok || tv.Type == nil {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	declaredOutside := func(obj types.Object) bool {
		return obj != nil && (obj.Pos() < rs.Pos() || obj.Pos() > rs.End())
	}
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			switch s.Tok {
			case token.ASSIGN, token.DEFINE:
				for i, rhs := range s.Rhs {
					if i >= len(s.Lhs) {
						break
					}
					if !isAppendCall(p, rhs) {
						// Self-referential float accumulation: sum = sum + v.
						if s.Tok == token.ASSIGN && isFloatExpr(p, s.Lhs[i]) &&
							exprUsesObj(p, rhs, rootObject(p, s.Lhs[i])) &&
							declaredOutside(rootObject(p, s.Lhs[i])) {
							report(s, "float accumulation over map iteration: addition order follows Go's randomized map order")
						}
						continue
					}
					obj := rootObject(p, s.Lhs[i])
					if !declaredOutside(obj) {
						continue
					}
					if !sortedAfter(p, obj, following) {
						report(s, "append to %s inside map iteration without a subsequent sort: element order follows Go's randomized map order", obj.Name())
					}
				}
			case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
				obj := rootObject(p, s.Lhs[0])
				if isFloatExpr(p, s.Lhs[0]) && declaredOutside(obj) {
					report(s, "float accumulation over map iteration: addition order follows Go's randomized map order")
				}
			}
		case *ast.CallExpr:
			if pkg, name, ok := pkgFuncCall(p, s); ok && pkg == "fmt" &&
				(strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Fprint")) {
				report(s, "output written inside map iteration: line order follows Go's randomized map order")
			}
		}
		return true
	})
}

func isAppendCall(p *Package, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := p.Info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

func isFloatExpr(p *Package, e ast.Expr) bool {
	tv, ok := p.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// rootObject resolves the variable at the base of an lvalue expression
// (strip selectors, indexes, stars, parens).
func rootObject(p *Package, e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			if obj := p.Info.Uses[x]; obj != nil {
				return obj
			}
			return p.Info.Defs[x]
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

func exprUsesObj(p *Package, e ast.Expr, obj types.Object) bool {
	if obj == nil {
		return false
	}
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && p.Info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

// sortedAfter reports whether any statement after the range sorts the
// appended-to variable: a call whose name mentions "sort" (sort.Slice,
// slices.Sort, a local sortFoo helper) with the variable among its
// arguments or as the base of a selector argument.
func sortedAfter(p *Package, obj types.Object, following []ast.Stmt) bool {
	for _, st := range following {
		found := false
		ast.Inspect(st, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || found {
				return !found
			}
			var name string
			switch fn := call.Fun.(type) {
			case *ast.Ident:
				name = fn.Name
			case *ast.SelectorExpr:
				name = fn.Sel.Name
				if x, ok := fn.X.(*ast.Ident); ok {
					name = x.Name + "." + name // catch sort.Strings etc.
				}
			}
			if !strings.Contains(strings.ToLower(name), "sort") {
				return true
			}
			for _, arg := range call.Args {
				if exprUsesObj(p, arg, obj) {
					found = true
				}
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

// NoPanic forbids panic in library packages: internal/ and the public root
// package must return errors (PR 2 converted internal/module; this rule
// keeps it that way). Commands and examples may panic or log.Fatal at the
// edge. Invariant guards that are genuinely unreachable carry a
// //lint:ignore no-panic justification.
var NoPanic = &Analyzer{
	Name: "no-panic",
	Doc:  "forbid panic in library packages; errors must be returned",
	Run: func(p *Package, report func(ast.Node, string, ...any)) {
		if p.IsMain() {
			return
		}
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				id, ok := call.Fun.(*ast.Ident)
				if !ok {
					return true
				}
				if b, ok := p.Info.Uses[id].(*types.Builtin); ok && b.Name() == "panic" {
					report(call, "panic in library package %s: return an error instead", p.Path)
				}
				return true
			})
		}
	},
}

// NakedGoroutine forbids go statements outside internal/parallel, so all
// concurrency flows through the deterministic submission-ordered pool and
// results stay byte-identical at any worker count.
var NakedGoroutine = &Analyzer{
	Name: "naked-goroutine",
	Doc:  "forbid go statements outside internal/parallel",
	Run: func(p *Package, report func(ast.Node, string, ...any)) {
		if strings.Contains(p.Path+"/", "/internal/parallel/") {
			return
		}
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if g, ok := n.(*ast.GoStmt); ok {
					report(g, "naked goroutine: route concurrency through internal/parallel so results stay deterministic")
				}
				return true
			})
		}
	},
}

// CtxFirst enforces the context discipline: exported functions that accept
// a context.Context take it as the first parameter, and library packages
// never mint their own context.Background()/TODO() — cancellation must flow
// down from the caller (main or the test).
var CtxFirst = &Analyzer{
	Name: "ctx-first",
	Doc:  "context.Context first in exported signatures; no context.Background() in library packages",
	Run: func(p *Package, report func(ast.Node, string, ...any)) {
		if p.IsMain() {
			return
		}
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch d := n.(type) {
				case *ast.FuncDecl:
					if !d.Name.IsExported() || d.Type.Params == nil {
						return true
					}
					idx := 0
					for _, field := range d.Type.Params.List {
						width := len(field.Names)
						if width == 0 {
							width = 1
						}
						if isContextType(p, field.Type) && idx != 0 {
							report(field, "%s: context.Context must be the first parameter", d.Name.Name)
						}
						idx += width
					}
				case *ast.CallExpr:
					if pkg, name, ok := pkgFuncCall(p, d); ok && pkg == "context" &&
						(name == "Background" || name == "TODO") {
						report(d, "context.%s in library package %s: accept a ctx from the caller instead", name, p.Path)
					}
				}
				return true
			})
		}
	},
}

// RawArtifactWrite forbids raw os.WriteFile/os.Create outside
// internal/checkpoint: campaign artifacts (reports, metrics snapshots,
// traces, bench baselines) must go through checkpoint.WriteFileAtomic so a
// crash mid-write never leaves a truncated file that a resume — or any
// later reader — would trust. Streams that genuinely cannot be buffered
// (the live pprof CPU profile handed to runtime/pprof) carry a
// //lint:ignore raw-artifact-write justification.
var RawArtifactWrite = &Analyzer{
	Name: "raw-artifact-write",
	Doc:  "forbid os.WriteFile/os.Create outside internal/checkpoint; artifacts are written atomically",
	Run: func(p *Package, report func(ast.Node, string, ...any)) {
		if strings.Contains(p.Path+"/", "/internal/checkpoint/") {
			return
		}
		banned := map[string]bool{"WriteFile": true, "Create": true}
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if pkg, name, ok := pkgFuncCall(p, call); ok && pkg == "os" && banned[name] {
					report(call, "os.%s outside internal/checkpoint: write artifacts through checkpoint.WriteFileAtomic so a crash never leaves a truncated file", name)
				}
				return true
			})
		}
	},
}

func isContextType(p *Package, e ast.Expr) bool {
	tv, ok := p.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	n, ok := tv.Type.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
