package lint

// LoadDirAs loads the single package in dir under an assumed import path.
// The fixture tests use this to exercise path-based allowlists: the same
// fixture package is loaded once as an internal simulation package (where a
// rule fires) and once under an allowlisted path (where it must not).
func (l *Loader) LoadDirAs(path, dir string) (*Package, error) {
	return l.check(path, dir)
}
