package lint

import (
	"go/ast"
	"strings"
)

// ExportedDoc requires that library packages document their API surface: a
// package doc comment on at least one file, and a doc comment on every
// exported top-level identifier — functions, methods on exported receiver
// types, type declarations, and exported const/var names. For grouped
// declarations the group's doc comment suffices, matching godoc's
// association rules; trailing line comments do not count. Commands (package
// main) document themselves through their command doc and -h output and are
// exempt.
var ExportedDoc = &Analyzer{
	Name: "exported-doc",
	Doc:  "require package docs and doc comments on exported identifiers in library packages",
	Run: func(p *Package, report func(ast.Node, string, ...any)) {
		if p.IsMain() {
			return
		}
		hasPkgDoc := false
		for _, f := range p.Files {
			if docText(f.Doc) {
				hasPkgDoc = true
				break
			}
		}
		if !hasPkgDoc && len(p.Files) > 0 {
			report(p.Files[0].Name, "package %s has no package doc comment", p.Pkg.Name())
		}
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if !d.Name.IsExported() || docText(d.Doc) {
						continue
					}
					if recv, isMethod := receiverName(d); isMethod {
						if !ast.IsExported(recv) {
							continue // method of an unexported type: not API surface
						}
						report(d.Name, "exported method %s.%s is missing a doc comment", recv, d.Name.Name)
					} else {
						report(d.Name, "exported function %s is missing a doc comment", d.Name.Name)
					}
				case *ast.GenDecl:
					groupDoc := docText(d.Doc)
					for _, spec := range d.Specs {
						switch s := spec.(type) {
						case *ast.TypeSpec:
							if s.Name.IsExported() && !groupDoc && !docText(s.Doc) {
								report(s.Name, "exported type %s is missing a doc comment", s.Name.Name)
							}
						case *ast.ValueSpec:
							documented := groupDoc || docText(s.Doc)
							for _, name := range s.Names {
								if name.IsExported() && !documented {
									report(name, "exported %s %s is missing a doc comment", d.Tok, name.Name)
								}
							}
						}
					}
				}
			}
		}
	},
}

// docText reports whether a comment group carries actual documentation text.
func docText(cg *ast.CommentGroup) bool {
	return cg != nil && strings.TrimSpace(cg.Text()) != ""
}

// receiverName resolves the base type name of a method receiver, stripping
// pointers and type parameters.
func receiverName(d *ast.FuncDecl) (string, bool) {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return "", false
	}
	t := d.Recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr:
			t = x.X
		case *ast.IndexListExpr:
			t = x.X
		case *ast.ParenExpr:
			t = x.X
		case *ast.Ident:
			return x.Name, true
		default:
			return "", true
		}
	}
}
