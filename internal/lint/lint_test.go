package lint

import (
	"fmt"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"
)

// sharedLoader memoizes stdlib type-checking across fixture loads.
var (
	loaderOnce sync.Once
	loader     *Loader
	loaderErr  error
)

func fixtureLoader(t *testing.T) *Loader {
	t.Helper()
	loaderOnce.Do(func() { loader, loaderErr = NewLoader(".") })
	if loaderErr != nil {
		t.Fatalf("NewLoader: %v", loaderErr)
	}
	return loader
}

func loadFixture(t *testing.T, dir, asPath string) *Package {
	t.Helper()
	l := fixtureLoader(t)
	p, err := l.LoadDirAs(asPath, filepath.Join("testdata", "src", dir))
	if err != nil {
		t.Fatalf("loading fixture %s as %s: %v", dir, asPath, err)
	}
	return p
}

// wantMarkers extracts "// WANT rule..." comments: rule name → source lines
// expected to carry a finding.
func wantMarkers(p *Package) map[string][]int {
	want := map[string][]int{}
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				fields := strings.Fields(strings.TrimPrefix(c.Text, "//"))
				if len(fields) < 2 || fields[0] != "WANT" {
					continue
				}
				line := p.Fset.Position(c.Pos()).Line
				for _, rule := range fields[1:] {
					want[rule] = append(want[rule], line)
				}
			}
		}
	}
	return want
}

func findingLines(findings []Finding) map[string][]int {
	got := map[string][]int{}
	for _, f := range findings {
		got[f.Rule] = append(got[f.Rule], f.Pos.Line)
	}
	for _, lines := range got {
		sort.Ints(lines)
	}
	return got
}

func describe(m map[string][]int) string {
	if len(m) == 0 {
		return "(none)"
	}
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, " %s@%v", k, m[k])
	}
	return b.String()
}

// TestAnalyzerFixtures drives every rule against its fixture package twice
// where the rule is path-scoped: once under a path where violations must
// fire, once under an allowlisted path where the very same code is legal.
func TestAnalyzerFixtures(t *testing.T) {
	cases := []struct {
		name     string
		dir      string
		asPath   string
		analyzer *Analyzer
		// wantFired: compare against the fixture's WANT markers; when
		// false the load is an allowlist check expecting zero findings.
		wantFired bool
	}{
		{"nondeterm-time/internal", "timefix", "reaper/internal/timefix", NondetermTime, true},
		{"nondeterm-time/cmd-allowed", "timefix", "reaper/cmd/timefix", NondetermTime, false},
		{"raw-rand/internal", "randfix", "reaper/internal/randfix", RawRand, true},
		{"raw-rand/rng-allowed", "randfix", "reaper/internal/rng/compat", RawRand, false},
		{"map-order", "mapfix", "reaper/internal/mapfix", MapOrder, true},
		{"no-panic/library", "panicfix", "reaper/internal/panicfix", NoPanic, true},
		{"no-panic/main-allowed", "panicmain", "reaper/cmd/panicmain", NoPanic, false},
		{"naked-goroutine/internal", "gofix", "reaper/internal/gofix", NakedGoroutine, true},
		{"naked-goroutine/pool-allowed", "gofix", "reaper/internal/parallel", NakedGoroutine, false},
		{"ctx-first", "ctxfix", "reaper/internal/ctxfix", CtxFirst, true},
		{"exported-doc/library", "docfix", "reaper/internal/docfix", ExportedDoc, true},
		{"exported-doc/main-allowed", "panicmain", "reaper/cmd/panicmain", ExportedDoc, false},
		{"raw-artifact-write/library", "writefix", "reaper/internal/writefix", RawArtifactWrite, true},
		{"raw-artifact-write/checkpoint-allowed", "writefix", "reaper/internal/checkpoint", RawArtifactWrite, false},
		{"serialize-exhaustive", "serfix", "reaper/internal/serfix", SerializeExhaustive, true},
		{"rng-stream-discipline", "rngfix", "reaper/internal/rngfix", RngStreamDiscipline, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := loadFixture(t, tc.dir, tc.asPath)
			res := Run([]*Package{p}, []*Analyzer{tc.analyzer})
			got := findingLines(res.Findings)
			want := map[string][]int{}
			if tc.wantFired {
				for rule, lines := range wantMarkers(p) {
					if rule == tc.analyzer.Name {
						sort.Ints(lines)
						want[rule] = lines
					}
				}
				if len(want) == 0 {
					t.Fatalf("fixture %s has no WANT %s markers", tc.dir, tc.analyzer.Name)
				}
			}
			if describe(got) != describe(want) {
				t.Errorf("findings mismatch:\n got%s\nwant%s", describe(got), describe(want))
			}
		})
	}
}

// TestSuppression checks the //lint:ignore contract: a justified directive
// silences exactly its rule on exactly its line (trailing or standalone
// above), is counted, and a reason-less directive is itself a finding.
func TestSuppression(t *testing.T) {
	p := loadFixture(t, "suppressfix", "reaper/internal/suppressfix")
	res := Run([]*Package{p}, []*Analyzer{NoPanic})

	got := findingLines(res.Findings)
	if n := len(got["no-panic"]); n != 2 {
		t.Errorf("want 2 surviving no-panic findings (unjustified + wrong-rule), got %d at %v",
			n, got["no-panic"])
	}
	if n := len(got["lint-directive"]); n != 1 {
		t.Errorf("want 1 malformed-directive finding, got %d at %v", n, got["lint-directive"])
	}
	if res.Suppressed["no-panic"] != 2 {
		t.Errorf("want 2 counted no-panic suppressions (trailing + standalone), got %d",
			res.Suppressed["no-panic"])
	}
	if len(res.Suppressions) != 4 {
		t.Errorf("want 4 parsed directives, got %d", len(res.Suppressions))
	}
}

// TestRepoClean is the tier-1 hook: the shipped tree itself must pass the
// whole analyzer suite. Any new violation fails `go test ./...` directly,
// not just `make lint`.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module scan skipped in -short mode (run by make lint)")
	}
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("suspiciously few packages loaded: %d", len(pkgs))
	}
	res := Run(pkgs, Analyzers())
	for _, f := range res.Findings {
		t.Errorf("%s", f)
	}
}
