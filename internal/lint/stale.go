package lint

import (
	"go/ast"
)

// This file implements stale-suppression, the rot guard for the
// suppression machinery itself.
//
// Every //lint:ignore directive in the tree is a standing exception to an
// invariant, justified in place. Exceptions age badly: the code it excused
// moves or is rewritten, the directive stays behind, and a year later
// nobody can tell which of the "justified" suppressions still suppress
// anything. stale-suppression closes the loop — a directive that names an
// active rule but silenced no finding in the run is itself a finding, so
// the set of exceptions can only shrink as violations are fixed.
//
// Two directive classes are unconditionally stale:
//
//   - directives naming a rule that ran and matched nothing, and
//   - any directive in a _test.go file: analyzers only run on shipped
//     package files, so a test-file directive can never suppress anything.
//
// A directive naming a rule that was filtered out of the run (e.g.
// `reaperlint -rules exported-doc`) is NOT flagged — it may well be load-
// bearing under the full suite, and only a full run can tell.

// StaleSuppression flags //lint:ignore directives that no longer suppress
// any finding. Its Run is a no-op: the check needs the used flags of every
// directive after all other analyzers finish, so the framework special-
// cases it at the end of each package's run (see Run in lint.go).
var StaleSuppression = &Analyzer{
	Name: "stale-suppression",
	Doc:  "//lint:ignore directives that suppress nothing are themselves findings",
	Run:  func(p *Package, report func(ast.Node, string, ...any)) {},
}

// staleSuppressionPass emits stale findings for one package after every
// other analyzer has run. Findings are suppressible like any other — a
// trailing `//lint:ignore stale-suppression <reason>` on the directive's
// own line keeps a deliberately dormant exception.
func staleSuppressionPass(p *Package, idx suppressionIndex, all []*Suppression, active map[string]bool, res *Result) {
	emit := func(f Finding) {
		if s := idx.match(f); s != nil {
			s.used = true
			res.Suppressed[StaleSuppression.Name]++
			return
		}
		res.Findings = append(res.Findings, f)
	}
	for _, s := range all {
		// Malformed directives are lint-directive findings already.
		if s.Rule == "" || s.Reason == "" {
			continue
		}
		if s.used || !active[s.Rule] {
			continue
		}
		emit(Finding{
			Pos:  s.Pos,
			Rule: StaleSuppression.Name,
			Message: "stale suppression: //lint:ignore " + s.Rule +
				" no longer matches any finding; delete the directive",
		})
	}
	// Directives stranded in test files can never fire at all. A
	// multi-rule directive expands to one Suppression per rule at one
	// position; report the comment once.
	seen := map[string]bool{}
	for _, f := range p.TestFiles {
		for _, s := range parseSuppressions(p.Fset, f) {
			key := s.Pos.String()
			if seen[key] {
				continue
			}
			seen[key] = true
			emit(Finding{
				Pos:     s.Pos,
				Rule:    StaleSuppression.Name,
				Message: "//lint:ignore in a _test.go file has no effect: analyzers run only on shipped package files; delete the directive",
			})
		}
	}
}
