package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// This file implements rng-stream-discipline, the worker-count-invariance
// guard for randomness.
//
// Every random draw in the simulator comes from a seeded xoshiro
// rng.Source. Sources are cheap to fork (rng.Split advances the parent,
// rng.Derive is a pure function of seed and key) precisely so that
// concurrent jobs never share one: a *rng.Source captured by a parallel
// job closure or a goroutine body is mutated in whatever order the
// scheduler runs the jobs, and the draw sequence — and therefore every
// downstream result — varies with worker count and machine load.
//
// The discipline the repository follows (DESIGN.md §3) is intra-procedural
// and checkable: inside a job closure, a *rng.Source must either be
// created there (rng.Derive/Split called inside the closure) or selected
// from a per-job slot indexed by the job's own index parameter
// (seeds[i], d.bankSrcs[bank]). The analyzer flags any other use of a
// Source that flows in from the enclosing function.

// RngStreamDiscipline flags shared *rng.Source values captured by parallel
// job closures and goroutine bodies.
var RngStreamDiscipline = &Analyzer{
	Name: "rng-stream-discipline",
	Doc:  "a *rng.Source used in a goroutine or parallel job closure must be derived inside it or indexed by the job index",
	Run:  rngStreamRun,
}

// isRngSourceType reports whether t is *rng.Source (internal/rng.Source).
func isRngSourceType(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Name() == "Source" && obj.Pkg() != nil &&
		strings.HasSuffix(obj.Pkg().Path(), "internal/rng")
}

// elemIsRngSource reports whether a container type holds *rng.Source
// elements (slice, array, or map value).
func elemIsRngSource(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Slice:
		return isRngSourceType(u.Elem())
	case *types.Array:
		return isRngSourceType(u.Elem())
	case *types.Map:
		return isRngSourceType(u.Elem())
	}
	return false
}

// jobClosure is one concurrency boundary the analyzer inspects: a function
// literal that parallel machinery (or a go statement) will run on another
// goroutine, plus the closure's job-index parameter when the API provides
// one.
type jobClosure struct {
	lit      *ast.FuncLit
	indexObj types.Object // the int job-index parameter, nil for Do/go
	kind     string       // for the finding message
}

// intParamObj returns the object of the first int-typed parameter of the
// literal — the job index in the parallel.Map/ForEach/ShardLoop signatures.
func intParamObj(p *Package, lit *ast.FuncLit) types.Object {
	if lit.Type.Params == nil {
		return nil
	}
	for _, field := range lit.Type.Params.List {
		tv, ok := p.Info.Types[field.Type]
		if !ok || tv.Type == nil {
			continue
		}
		b, ok := tv.Type.Underlying().(*types.Basic)
		if !ok || b.Kind() != types.Int {
			continue
		}
		for _, name := range field.Names {
			if obj := p.Info.Defs[name]; obj != nil {
				return obj
			}
		}
	}
	return nil
}

// collectJobClosures finds every concurrency boundary in the file.
func collectJobClosures(p *Package, f *ast.File) []jobClosure {
	var out []jobClosure
	ast.Inspect(f, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.GoStmt:
			if lit, ok := x.Call.Fun.(*ast.FuncLit); ok {
				out = append(out, jobClosure{lit: lit, kind: "goroutine body"})
			}
		case *ast.CallExpr:
			pkg, name, ok := pkgFuncCall(p, x)
			if !ok || !strings.HasSuffix(pkg, "internal/parallel") {
				return true
			}
			switch name {
			case "Map", "MapPartial", "ForEach", "ShardLoop":
				if len(x.Args) == 0 {
					return true
				}
				lit, ok := x.Args[len(x.Args)-1].(*ast.FuncLit)
				if !ok {
					return true
				}
				out = append(out, jobClosure{
					lit:      lit,
					indexObj: intParamObj(p, lit),
					kind:     "parallel." + name + " job closure",
				})
			case "Do":
				for _, arg := range x.Args {
					if lit, ok := arg.(*ast.FuncLit); ok {
						out = append(out, jobClosure{lit: lit, kind: "parallel.Do closure"})
					}
				}
			}
		}
		return true
	})
	return out
}

func rngStreamRun(p *Package, report func(ast.Node, string, ...any)) {
	for _, f := range p.Files {
		for _, jc := range collectJobClosures(p, f) {
			checkJobClosure(p, jc, report)
		}
	}
}

// declaredInside reports whether obj's declaration lies within the closure.
func declaredInside(obj types.Object, lit *ast.FuncLit) bool {
	return obj != nil && obj.Pos() >= lit.Pos() && obj.Pos() <= lit.End()
}

// indexedByJob reports whether the expression (or any index step inside it)
// selects a per-job slot using the closure's index parameter: seeds[i],
// d.bankSrcs[bank] where bank derives from i stays flagged — only the
// index parameter itself (or an expression mentioning it) qualifies.
func indexedByJob(p *Package, e ast.Expr, indexObj types.Object) bool {
	if indexObj == nil {
		return false
	}
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if ie, ok := n.(*ast.IndexExpr); ok && exprUsesObj(p, ie.Index, indexObj) {
			found = true
			return false
		}
		return true
	})
	return found
}

// checkJobClosure walks the closure body for shared-stream uses. A
// *rng.Source expression is legal when its root variable is declared
// inside the closure (covers s := rng.Derive(...), s := src.Split(k),
// and loop variables of an inner derivation) or when the expression
// selects a per-job slot by the job index.
func checkJobClosure(p *Package, jc jobClosure, report func(ast.Node, string, ...any)) {
	// Nested closures are checked by their own jobClosure entry when they
	// are themselves concurrency boundaries; uses inside them still execute
	// on this job's goroutine, so they are not skipped here.
	ast.Inspect(jc.lit.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr:
			e := n.(ast.Expr)
			tv, ok := p.Info.Types[e]
			if !ok || !isRngSourceType(tv.Type) {
				return true
			}
			if declaredInside(rootObject(p, e), jc.lit) {
				return false
			}
			if indexedByJob(p, e, jc.indexObj) {
				return false
			}
			report(e, "shared *rng.Source in %s: draw order would depend on goroutine scheduling; derive a per-job stream with rng.Derive/Split inside the closure or index a per-job slice by the job index", jc.kind)
			return false
		case *ast.RangeStmt:
			// Iterating a captured container of sources hands every shared
			// stream to this job at once.
			tv, ok := p.Info.Types[x.X]
			if !ok || tv.Type == nil || !elemIsRngSource(tv.Type) {
				return true
			}
			if declaredInside(rootObject(p, x.X), jc.lit) {
				return true
			}
			report(x.X, "range over captured *rng.Source container in %s: jobs would share every stream; give each job its own derived source", jc.kind)
			return true
		}
		return true
	})
}
