// Package lint is reaperlint's analysis framework: a stdlib-only analyzer
// harness (go/parser + go/ast + go/types) that machine-checks the
// determinism and safety invariants every pinned result in this repository
// depends on — seeded rng splits, ordered reduction through
// internal/parallel, and no wall-clock or map-iteration-order leakage into
// simulated state.
//
// Each Analyzer is a named rule. The driver (cmd/reaperlint) loads every
// package of the module with full type information, runs the registry, and
// fails on any unsuppressed finding. A finding can be suppressed, with a
// recorded justification, by placing
//
//	//lint:ignore <rule> <reason>
//
// on the offending line or the line immediately above it. Suppressions
// without a reason are themselves findings: the whole point is that every
// exception to an invariant carries its justification in the source.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Package is one type-checked package presented to analyzers.
type Package struct {
	Path  string // import path, e.g. "reaper/internal/dram"
	Dir   string // absolute directory
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
	// TestFiles are the package's _test.go files, parsed but not
	// type-checked. Analyzers do not run on them; they exist so
	// stale-suppression can flag //lint:ignore directives that can never
	// have any effect there.
	TestFiles []*ast.File
}

// IsMain reports whether the package is a command (package main).
func (p *Package) IsMain() bool { return p.Pkg != nil && p.Pkg.Name() == "main" }

// Finding is one rule violation.
type Finding struct {
	Pos     token.Position
	Rule    string
	Message string
}

// String formats the finding in the conventional file:line:col style.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Rule, f.Message)
}

// Suppression is one parsed //lint:ignore directive.
type Suppression struct {
	Pos    token.Position
	Rule   string
	Reason string
	used   bool
}

// Used reports whether the directive silenced at least one finding in the
// run it was collected from. An unused directive is not an error (the rule
// it guards may be filtered out), but -v surfaces it so stale exceptions
// can be pruned.
func (s Suppression) Used() bool { return s.used }

// Analyzer is one named invariant check.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(p *Package, report func(n ast.Node, format string, args ...any))
}

// Result aggregates a run over a set of packages.
type Result struct {
	// Findings are the unsuppressed violations, ordered by position.
	Findings []Finding
	// Suppressed counts findings silenced per rule.
	Suppressed map[string]int
	// Suppressions are every parsed directive (used or not), for reporting.
	Suppressions []Suppression
}

// directivePrefix is matched after "//" with no space, mirroring Go's own
// directive comment convention (//go:generate, //line, ...).
const directivePrefix = "lint:ignore"

// parseSuppressions extracts //lint:ignore directives from a file, keyed by
// the source line they govern. A directive governs its own line; when it is
// the only thing on its line, it governs the next line instead. The rule
// field may name several comma-separated rules (//lint:ignore a,b reason);
// each becomes its own Suppression sharing the directive's position.
func parseSuppressions(fset *token.FileSet, f *ast.File) []*Suppression {
	var out []*Suppression
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text, ok := strings.CutPrefix(c.Text, "//"+directivePrefix)
			if !ok {
				continue
			}
			pos := fset.Position(c.Pos())
			fields := strings.Fields(text)
			reason := ""
			if len(fields) > 1 {
				reason = strings.TrimSpace(strings.Join(fields[1:], " "))
			}
			var rules []string
			if len(fields) > 0 {
				for _, r := range strings.Split(fields[0], ",") {
					if r != "" {
						rules = append(rules, r)
					}
				}
			}
			if len(rules) == 0 {
				// Bare (or comma-only) directive: keep one malformed entry
				// so the lint-directive check can flag it.
				rules = []string{""}
			}
			for _, r := range rules {
				out = append(out, &Suppression{Pos: pos, Rule: r, Reason: reason})
			}
		}
	}
	return out
}

// suppressionIndex maps file:line → directives governing that line.
type suppressionIndex map[string]map[int][]*Suppression

func buildSuppressionIndex(p *Package) (suppressionIndex, []*Suppression) {
	idx := suppressionIndex{}
	var all []*Suppression
	for _, f := range p.Files {
		for _, s := range parseSuppressions(p.Fset, f) {
			all = append(all, s)
			line := s.Pos.Line
			// A directive alone on its line shields the next line; a
			// trailing directive shields its own line.
			governed := line
			if !sameLineCode(p, f, s.Pos) {
				governed = line + 1
			}
			byLine := idx[s.Pos.Filename]
			if byLine == nil {
				byLine = map[int][]*Suppression{}
				idx[s.Pos.Filename] = byLine
			}
			byLine[governed] = append(byLine[governed], s)
		}
	}
	return idx, all
}

// sameLineCode reports whether any non-comment token starts on the
// directive's line before the directive itself (i.e. the directive trails
// code rather than standing alone).
func sameLineCode(p *Package, f *ast.File, pos token.Position) bool {
	found := false
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil || found {
			return false
		}
		switch n.(type) {
		case *ast.Comment, *ast.CommentGroup:
			return false
		case *ast.File:
			return true // the root; its Pos is the package clause
		}
		np := p.Fset.Position(n.Pos())
		if np.Filename == pos.Filename && np.Line == pos.Line && np.Column < pos.Column {
			found = true
			return false
		}
		return true
	})
	return found
}

func (idx suppressionIndex) match(f Finding) *Suppression {
	byLine := idx[f.Pos.Filename]
	if byLine == nil {
		return nil
	}
	for _, s := range byLine[f.Pos.Line] {
		if s.Rule == f.Rule && s.Reason != "" {
			return s
		}
	}
	return nil
}

// Run executes the analyzers over the packages, applying suppressions.
func Run(pkgs []*Package, analyzers []*Analyzer) Result {
	res := Result{Suppressed: map[string]int{}}
	active := map[string]bool{}
	staleOn := false
	for _, a := range analyzers {
		active[a.Name] = true
		if a.Name == StaleSuppression.Name {
			staleOn = true
		}
	}
	for _, p := range pkgs {
		idx, all := buildSuppressionIndex(p)
		malformedAt := map[token.Position]bool{}
		for _, s := range all {
			if s.Rule == "" || s.Reason == "" {
				// A multi-rule directive without a reason expands to several
				// Suppressions at one position; report the comment once.
				if malformedAt[s.Pos] {
					continue
				}
				malformedAt[s.Pos] = true
				res.Findings = append(res.Findings, Finding{
					Pos:     s.Pos,
					Rule:    "lint-directive",
					Message: "malformed directive: want //lint:ignore <rule> <reason>",
				})
			}
		}
		for _, a := range analyzers {
			a := a
			report := func(n ast.Node, format string, args ...any) {
				f := Finding{
					Pos:     p.Fset.Position(n.Pos()),
					Rule:    a.Name,
					Message: fmt.Sprintf(format, args...),
				}
				if s := idx.match(f); s != nil {
					s.used = true
					res.Suppressed[a.Name]++
					return
				}
				res.Findings = append(res.Findings, f)
			}
			a.Run(p, report)
		}
		// stale-suppression runs after every other analyzer so the used
		// flags reflect the whole run: a well-formed directive for an
		// active rule that silenced nothing is itself rot.
		if staleOn {
			staleSuppressionPass(p, idx, all, active, &res)
		}
		// Snapshot the directives only after every analyzer has run, so
		// each copy's used flag reflects this run.
		for _, s := range all {
			res.Suppressions = append(res.Suppressions, *s)
		}
	}
	sort.Slice(res.Findings, func(i, j int) bool {
		a, b := res.Findings[i].Pos, res.Findings[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return res.Findings[i].Rule < res.Findings[j].Rule
	})
	return res
}
