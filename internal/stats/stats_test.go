package stats

import (
	"math"
	"testing"
	"testing/quick"

	"reaper/internal/rng"
)

func almost(t *testing.T, got, want, tol float64, what string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %v, want %v (tol %v)", what, got, want, tol)
	}
}

func TestNormalCDFKnownValues(t *testing.T) {
	almost(t, NormalCDF(0, 0, 1), 0.5, 1e-12, "Phi(0)")
	almost(t, NormalCDF(1.959963985, 0, 1), 0.975, 1e-6, "Phi(1.96)")
	almost(t, NormalCDF(-1.959963985, 0, 1), 0.025, 1e-6, "Phi(-1.96)")
	almost(t, NormalCDF(3, 0, 1), 0.9986501, 1e-6, "Phi(3)")
	almost(t, NormalCDF(5, 2, 3), 0.8413447, 1e-6, "Phi((5-2)/3)")
}

func TestNormalCDFDegenerateSigma(t *testing.T) {
	if NormalCDF(1, 2, 0) != 0 {
		t.Error("CDF below mean with sigma=0 should be 0")
	}
	if NormalCDF(3, 2, 0) != 1 {
		t.Error("CDF above mean with sigma=0 should be 1")
	}
	if NormalCDF(2, 2, 0) != 1 {
		t.Error("CDF at mean with sigma=0 should be 1")
	}
}

func TestNormalQuantileRoundTrip(t *testing.T) {
	f := func(raw float64) bool {
		p := math.Abs(math.Mod(raw, 1))
		if p < 1e-10 || p > 1-1e-10 {
			return true
		}
		x := NormalQuantile(p, 3, 2)
		back := NormalCDF(x, 3, 2)
		return math.Abs(back-p) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

func TestNormalQuantileTails(t *testing.T) {
	// Deep tails should still round-trip.
	for _, p := range []float64{1e-12, 1e-9, 1e-6, 0.5, 1 - 1e-6, 1 - 1e-9} {
		x := NormalQuantile(p, 0, 1)
		almost(t, NormalCDF(x, 0, 1), p, p*1e-3+1e-15, "roundtrip")
	}
}

func TestNormalQuantileDegenerate(t *testing.T) {
	// Out-of-range p follows the mathematical limits instead of panicking.
	for _, p := range []float64{0, -0.5} {
		if got := NormalQuantile(p, 0, 1); !math.IsInf(got, -1) {
			t.Errorf("NormalQuantile(%v) = %v, want -Inf", p, got)
		}
	}
	for _, p := range []float64{1, 2} {
		if got := NormalQuantile(p, 0, 1); !math.IsInf(got, 1) {
			t.Errorf("NormalQuantile(%v) = %v, want +Inf", p, got)
		}
	}
	// A point mass (sigma == 0) concentrates everything at mu.
	if got := NormalQuantile(0, 3, 0); got != 3 {
		t.Errorf("NormalQuantile(0, 3, 0) = %v, want 3", got)
	}
	if got := Percentile(nil, 50); !math.IsNaN(got) {
		t.Errorf("Percentile(nil) = %v, want NaN", got)
	}
	b := Box(nil)
	if !math.IsNaN(b.Median) || !math.IsNaN(b.Min) || !math.IsNaN(b.Mean) {
		t.Errorf("Box(nil) = %+v, want all NaN", b)
	}
	if e, c := Histogram([]float64{1, 2}, 5, 5, 4); e != nil || c != nil {
		t.Errorf("Histogram with max <= min = %v, %v, want nil, nil", e, c)
	}
	if e, c := Histogram([]float64{1, 2}, 0, 5, 0); e != nil || c != nil {
		t.Errorf("Histogram with nbins <= 0 = %v, %v, want nil, nil", e, c)
	}
}

func TestLogNormal(t *testing.T) {
	// Median of lognormal(mu, sigma) is exp(mu).
	almost(t, LogNormalCDF(math.Exp(1.5), 1.5, 0.7), 0.5, 1e-12, "lognormal median")
	if LogNormalCDF(-1, 0, 1) != 0 || LogNormalCDF(0, 0, 1) != 0 {
		t.Error("lognormal CDF must be 0 for x <= 0")
	}
	almost(t, LogNormalQuantile(0.5, 2, 0.3), math.Exp(2), 1e-9, "lognormal quantile")
}

func TestLogBinomialPMFMatchesDirect(t *testing.T) {
	// Compare against direct computation where it is feasible.
	direct := func(n, k int, p float64) float64 {
		c := 1.0
		for i := 0; i < k; i++ {
			c = c * float64(n-i) / float64(i+1)
		}
		return c * math.Pow(p, float64(k)) * math.Pow(1-p, float64(n-k))
	}
	for _, tc := range []struct {
		n, k int
		p    float64
	}{{10, 3, 0.2}, {72, 2, 0.001}, {64, 0, 0.5}, {64, 64, 0.5}, {20, 10, 0.5}} {
		got := math.Exp(LogBinomialPMF(tc.n, tc.k, tc.p))
		want := direct(tc.n, tc.k, tc.p)
		almost(t, got, want, want*1e-10+1e-300, "binomial pmf")
	}
}

func TestLogBinomialPMFEdges(t *testing.T) {
	if !math.IsInf(LogBinomialPMF(10, -1, 0.5), -1) {
		t.Error("k<0 should have log-prob -Inf")
	}
	if !math.IsInf(LogBinomialPMF(10, 11, 0.5), -1) {
		t.Error("k>n should have log-prob -Inf")
	}
	if LogBinomialPMF(10, 0, 0) != 0 {
		t.Error("P(K=0|p=0) should be 1")
	}
	if LogBinomialPMF(10, 10, 1) != 0 {
		t.Error("P(K=n|p=1) should be 1")
	}
}

func TestBinomialTailTinyP(t *testing.T) {
	// For tiny p, P(K > 1) ~ C(n,2) p^2.
	n := 72
	p := 1e-9
	want := float64(n*(n-1)/2) * p * p
	got := BinomialTail(n, 1, p)
	almost(t, got, want, want*1e-3, "binomial tail tiny p")
}

func TestBinomialTailBounds(t *testing.T) {
	if BinomialTail(10, 10, 0.5) != 0 {
		t.Error("P(K > n) must be 0")
	}
	if BinomialTail(10, -1, 0.5) != 1 {
		t.Error("P(K > -1) must be 1")
	}
	// Complement check: P(K>k) + P(K<=k) == 1 for moderate p.
	tail := BinomialTail(20, 5, 0.3)
	head := 0.0
	for i := 0; i <= 5; i++ {
		head += math.Exp(LogBinomialPMF(20, i, 0.3))
	}
	almost(t, tail+head, 1, 1e-9, "tail+head")
}

func TestMeanStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	almost(t, Mean(xs), 5, 1e-12, "mean")
	almost(t, StdDev(xs), 2.138089935, 1e-6, "stddev")
	if Mean(nil) != 0 || StdDev(nil) != 0 || StdDev([]float64{1}) != 0 {
		t.Error("degenerate Mean/StdDev should be 0")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	almost(t, Percentile(xs, 0), 1, 0, "p0")
	almost(t, Percentile(xs, 50), 3, 0, "p50")
	almost(t, Percentile(xs, 100), 5, 0, "p100")
	almost(t, Percentile(xs, 25), 2, 1e-12, "p25")
	almost(t, Percentile(xs, 10), 1.4, 1e-12, "p10 interpolated")
	// Must not modify input.
	unsorted := []float64{5, 1, 3}
	Percentile(unsorted, 50)
	if unsorted[0] != 5 {
		t.Error("Percentile modified its input")
	}
}

func TestBox(t *testing.T) {
	b := Box([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	if b.Min != 1 || b.Max != 10 {
		t.Errorf("box range wrong: %+v", b)
	}
	almost(t, b.Median, 5.5, 1e-12, "median")
	almost(t, b.Mean, 5.5, 1e-12, "mean")
	if !(b.P25 < b.Median && b.Median < b.P75) {
		t.Errorf("box quartiles out of order: %+v", b)
	}
}

func TestFitPowerLawExact(t *testing.T) {
	xs := []float64{0.064, 0.128, 0.512, 1.024, 2.048, 4.096}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3.5 * math.Pow(x, 2.25)
	}
	fit, err := FitPowerLaw(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	almost(t, fit.A, 3.5, 1e-9, "A")
	almost(t, fit.B, 2.25, 1e-9, "B")
	almost(t, fit.R2, 1, 1e-9, "R2")
	almost(t, fit.Eval(2), 3.5*math.Pow(2, 2.25), 1e-9, "Eval")
}

func TestFitPowerLawNoisy(t *testing.T) {
	src := rng.New(77)
	xs := make([]float64, 50)
	ys := make([]float64, 50)
	for i := range xs {
		xs[i] = 0.1 + float64(i)*0.1
		ys[i] = 2 * math.Pow(xs[i], 3) * math.Exp(0.05*src.Norm())
	}
	fit, err := FitPowerLaw(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	almost(t, fit.B, 3, 0.1, "B noisy")
	if fit.R2 < 0.98 {
		t.Errorf("noisy fit R2 = %v, want > 0.98", fit.R2)
	}
}

func TestFitPowerLawRejectsBadInput(t *testing.T) {
	if _, err := FitPowerLaw([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch not rejected")
	}
	if _, err := FitPowerLaw([]float64{-1, 0}, []float64{1, 2}); err == nil {
		t.Error("all-nonpositive xs not rejected")
	}
}

func TestLinearFit(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	ys := []float64{1, 3, 5, 7}
	slope, intercept, r2, err := LinearFit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	almost(t, slope, 2, 1e-12, "slope")
	almost(t, intercept, 1, 1e-12, "intercept")
	almost(t, r2, 1, 1e-12, "r2")
	if _, _, _, err := LinearFit([]float64{1}, []float64{1}); err == nil {
		t.Error("single point not rejected")
	}
}

func TestFitNormalRecovers(t *testing.T) {
	src := rng.New(5)
	xs := make([]float64, 50000)
	for i := range xs {
		xs[i] = 1.5 + 0.4*src.Norm()
	}
	mu, sigma := FitNormal(xs)
	almost(t, mu, 1.5, 0.01, "fit mu")
	almost(t, sigma, 0.4, 0.01, "fit sigma")
}

func TestFitLogNormalRecovers(t *testing.T) {
	src := rng.New(6)
	xs := make([]float64, 50000)
	for i := range xs {
		xs[i] = src.LogNormal(-2.5, 0.6)
	}
	xs = append(xs, 0, -1) // must be ignored
	mu, sigma := FitLogNormal(xs)
	almost(t, mu, -2.5, 0.02, "fit log mu")
	almost(t, sigma, 0.6, 0.02, "fit log sigma")
}

func TestHistogram(t *testing.T) {
	edges, counts := Histogram([]float64{0.5, 1.5, 1.6, 2.5, -10, 10}, 0, 3, 3)
	if len(edges) != 4 || len(counts) != 3 {
		t.Fatalf("bad shapes: %v %v", edges, counts)
	}
	if counts[0] != 2 { // 0.5 and clamped -10
		t.Errorf("bin0 = %d, want 2", counts[0])
	}
	if counts[1] != 2 {
		t.Errorf("bin1 = %d, want 2", counts[1])
	}
	if counts[2] != 2 { // 2.5 and clamped 10
		t.Errorf("bin2 = %d, want 2", counts[2])
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 6 {
		t.Errorf("histogram lost samples: %d", total)
	}
}

func TestECDF(t *testing.T) {
	x, y := ECDF([]float64{3, 1, 2})
	if x[0] != 1 || x[1] != 2 || x[2] != 3 {
		t.Errorf("ECDF x not sorted: %v", x)
	}
	almost(t, y[2], 1, 1e-12, "last ECDF value")
	almost(t, y[0], 1.0/3, 1e-12, "first ECDF value")
}

func TestKSNormalSmallForNormalData(t *testing.T) {
	src := rng.New(7)
	xs := make([]float64, 2000)
	for i := range xs {
		xs[i] = 5 + 2*src.Norm()
	}
	d := KSNormal(xs, 5, 2)
	// KS critical value at alpha=0.01 for n=2000 is ~0.0364.
	if d > 0.05 {
		t.Errorf("KS statistic %v too large for genuinely normal data", d)
	}
	// And clearly large for uniform data against a normal reference.
	for i := range xs {
		xs[i] = src.Float64() * 20
	}
	if KSNormal(xs, 5, 2) < 0.2 {
		t.Error("KS statistic should be large for non-normal data")
	}
}

func TestKSNormalEmpty(t *testing.T) {
	if KSNormal(nil, 0, 1) != 0 {
		t.Error("KS of empty sample should be 0")
	}
}
