// Package stats implements the statistical machinery the REAPER reproduction
// rests on: normal and lognormal distributions (per-cell retention failure
// CDFs, Section 5.5 of the paper), log-space binomial tail probabilities (the
// ECC/UBER model, Section 6.2.2), power-law least-squares fits (the Figure 4
// steady-state failure accumulation fits of the form y = a*x^b), and the
// descriptive statistics used by the experiment harness (histograms, ECDFs,
// percentiles, box-plot summaries).
//
// Everything here is pure math on float64 with no hidden state, so it is
// trivially testable and reusable across the device model, the profiler, and
// the benchmark harness.
package stats

import (
	"errors"
	"math"
	"sort"
)

// NormalCDF returns P(X <= x) for X ~ Normal(mu, sigma).
// For sigma == 0 it degenerates to a step function at mu.
func NormalCDF(x, mu, sigma float64) float64 {
	if sigma <= 0 {
		if x < mu {
			return 0
		}
		return 1
	}
	return 0.5 * math.Erfc(-(x-mu)/(sigma*math.Sqrt2))
}

// NormalQuantile returns the x such that NormalCDF(x, mu, sigma) == p.
// It uses the Acklam rational approximation refined by one Halley step,
// accurate to ~1e-15 over (0, 1). Out-of-range p follows the math
// convention of the standard library (no panics in library code): the
// limits -Inf at p <= 0 and +Inf at p >= 1 (or mu when sigma == 0, the
// point-mass degenerate).
func NormalQuantile(p, mu, sigma float64) float64 {
	if p <= 0 || p >= 1 {
		if sigma == 0 {
			return mu
		}
		if p <= 0 {
			return math.Inf(-1)
		}
		return math.Inf(1)
	}
	z := standardNormalQuantile(p)
	return mu + sigma*z
}

func standardNormalQuantile(p float64) float64 {
	// Coefficients for the Acklam approximation.
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02,
		-2.759285104469687e+02, 1.383577518672690e+02,
		-3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02,
		-1.556989798598866e+02, 6.680131188771972e+01,
		-1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01,
		-2.400758277161838e+00, -2.549732539343734e+00,
		4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01,
		2.445134137142996e+00, 3.754408661907416e+00}

	const plow = 0.02425
	var z float64
	switch {
	case p < plow:
		q := math.Sqrt(-2 * math.Log(p))
		z = (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= 1-plow:
		q := p - 0.5
		r := q * q
		z = (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		z = -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
	// One Halley refinement step.
	e := NormalCDF(z, 0, 1) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(z*z/2)
	z = z - u/(1+z*u/2)
	return z
}

// LogNormalCDF returns P(X <= x) for X lognormal with log-space parameters
// (mu, sigma). Returns 0 for x <= 0.
func LogNormalCDF(x, mu, sigma float64) float64 {
	if x <= 0 {
		return 0
	}
	return NormalCDF(math.Log(x), mu, sigma)
}

// LogNormalQuantile returns the x such that LogNormalCDF(x, mu, sigma) == p.
func LogNormalQuantile(p, mu, sigma float64) float64 {
	return math.Exp(NormalQuantile(p, mu, sigma))
}

// LogBinomialPMF returns ln P(K == k) for K ~ Binomial(n, p).
// It is stable for the astronomically small probabilities the UBER model
// needs (e.g. P of a 3-bit error in a 72-bit word at RBER 1e-9).
func LogBinomialPMF(n, k int, p float64) float64 {
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	if p <= 0 {
		if k == 0 {
			return 0
		}
		return math.Inf(-1)
	}
	if p >= 1 {
		if k == n {
			return 0
		}
		return math.Inf(-1)
	}
	return logChoose(n, k) + float64(k)*math.Log(p) + float64(n-k)*math.Log1p(-p)
}

// BinomialTail returns P(K > k) = sum_{i=k+1}^{n} P(K == i) for
// K ~ Binomial(n, p), computed in a numerically safe way for tiny p.
func BinomialTail(n, k int, p float64) float64 {
	if k >= n {
		return 0
	}
	if k < 0 {
		return 1
	}
	// For tiny p the first term dominates utterly; summing in linear space
	// from the largest term down is safe because terms decay geometrically
	// with ratio roughly n*p.
	sum := 0.0
	for i := k + 1; i <= n; i++ {
		term := math.Exp(LogBinomialPMF(n, i, p))
		sum += term
		if term < sum*1e-18 && i > k+3 {
			break
		}
	}
	if sum > 1 {
		sum = 1
	}
	return sum
}

func logChoose(n, k int) float64 {
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	lgN, _ := math.Lgamma(float64(n) + 1)
	lgK, _ := math.Lgamma(float64(k) + 1)
	lgNK, _ := math.Lgamma(float64(n-k) + 1)
	return lgN - lgK - lgNK
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the sample standard deviation (n-1 denominator) of xs,
// or 0 if len(xs) < 2.
func StdDev(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(n-1))
}

// Percentile returns the p-th percentile (p in [0, 100]) of xs using linear
// interpolation between closest ranks. It sorts a copy; xs is not modified.
// The percentile of no data is NaN.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return percentileSorted(sorted, p)
}

func percentileSorted(sorted []float64, p float64) float64 {
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// BoxStats is the five-number summary plus mean used to render the paper's
// Figure 13 style box plots (25th-75th percentile boxes, whisker data range,
// median and mean lines).
type BoxStats struct {
	Min, P25, Median, P75, Max, Mean float64
}

// Box computes BoxStats for xs. The summary of no data is all NaN.
func Box(xs []float64) BoxStats {
	if len(xs) == 0 {
		nan := math.NaN()
		return BoxStats{Min: nan, P25: nan, Median: nan, P75: nan, Max: nan, Mean: nan}
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return BoxStats{
		Min:    sorted[0],
		P25:    percentileSorted(sorted, 25),
		Median: percentileSorted(sorted, 50),
		P75:    percentileSorted(sorted, 75),
		Max:    sorted[len(sorted)-1],
		Mean:   Mean(xs),
	}
}

// PowerLawFit is the result of fitting y = A * x^B by least squares in
// log-log space, as the paper does for the Figure 4 steady-state failure
// accumulation rates.
type PowerLawFit struct {
	A, B float64
	// R2 is the coefficient of determination of the fit in log-log space.
	R2 float64
}

// Eval returns A * x^B.
func (f PowerLawFit) Eval(x float64) float64 { return f.A * math.Pow(x, f.B) }

// FitPowerLaw fits y = A*x^B to the given points, ignoring any point with
// non-positive x or y (which cannot be represented in log space). It returns
// an error if fewer than two usable points remain.
func FitPowerLaw(xs, ys []float64) (PowerLawFit, error) {
	if len(xs) != len(ys) {
		return PowerLawFit{}, errors.New("stats: FitPowerLaw length mismatch")
	}
	var lx, ly []float64
	for i := range xs {
		if xs[i] > 0 && ys[i] > 0 {
			lx = append(lx, math.Log(xs[i]))
			ly = append(ly, math.Log(ys[i]))
		}
	}
	if len(lx) < 2 {
		return PowerLawFit{}, errors.New("stats: FitPowerLaw needs >= 2 positive points")
	}
	slope, intercept, r2 := linearFit(lx, ly)
	return PowerLawFit{A: math.Exp(intercept), B: slope, R2: r2}, nil
}

// LinearFit fits y = slope*x + intercept by ordinary least squares and
// returns the fit together with its R^2.
func LinearFit(xs, ys []float64) (slope, intercept, r2 float64, err error) {
	if len(xs) != len(ys) {
		return 0, 0, 0, errors.New("stats: LinearFit length mismatch")
	}
	if len(xs) < 2 {
		return 0, 0, 0, errors.New("stats: LinearFit needs >= 2 points")
	}
	slope, intercept, r2 = linearFit(xs, ys)
	return slope, intercept, r2, nil
}

func linearFit(xs, ys []float64) (slope, intercept, r2 float64) {
	n := float64(len(xs))
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	denom := n*sxx - sx*sx
	if denom == 0 {
		return 0, sy / n, 0
	}
	slope = (n*sxy - sx*sy) / denom
	intercept = (sy - slope*sx) / n
	// R^2
	my := sy / n
	var ssTot, ssRes float64
	for i := range xs {
		pred := slope*xs[i] + intercept
		ssRes += (ys[i] - pred) * (ys[i] - pred)
		ssTot += (ys[i] - my) * (ys[i] - my)
	}
	if ssTot == 0 {
		return slope, intercept, 1
	}
	return slope, intercept, 1 - ssRes/ssTot
}

// FitNormal estimates (mu, sigma) of a normal distribution by sample moments.
func FitNormal(xs []float64) (mu, sigma float64) {
	return Mean(xs), StdDev(xs)
}

// FitLogNormal estimates the log-space (mu, sigma) of a lognormal
// distribution from samples, ignoring non-positive values.
func FitLogNormal(xs []float64) (mu, sigma float64) {
	var logs []float64
	for _, x := range xs {
		if x > 0 {
			logs = append(logs, math.Log(x))
		}
	}
	return Mean(logs), StdDev(logs)
}

// Histogram bins xs into nbins equal-width bins over [min, max] and returns
// the bin edges (nbins+1 values) and counts (nbins values). Values outside
// the range are clamped into the first/last bin. A degenerate request
// (nbins <= 0 or max <= min) has no bins: both results are nil.
func Histogram(xs []float64, min, max float64, nbins int) (edges []float64, counts []int) {
	if nbins <= 0 || max <= min {
		return nil, nil
	}
	edges = make([]float64, nbins+1)
	width := (max - min) / float64(nbins)
	for i := range edges {
		edges[i] = min + float64(i)*width
	}
	counts = make([]int, nbins)
	for _, x := range xs {
		b := int((x - min) / width)
		if b < 0 {
			b = 0
		}
		if b >= nbins {
			b = nbins - 1
		}
		counts[b]++
	}
	return edges, counts
}

// ECDF returns the empirical CDF of xs evaluated at each of the sorted sample
// points: the i-th returned y equals (i+1)/n for the i-th sorted x.
func ECDF(xs []float64) (sortedX, y []float64) {
	sortedX = append([]float64(nil), xs...)
	sort.Float64s(sortedX)
	y = make([]float64, len(sortedX))
	n := float64(len(sortedX))
	for i := range y {
		y[i] = float64(i+1) / n
	}
	return sortedX, y
}

// KSNormal returns the Kolmogorov-Smirnov statistic of xs against a
// Normal(mu, sigma) reference — the maximum absolute gap between the
// empirical CDF and the reference CDF. Used by the characterization harness
// to verify that measured per-cell failure CDFs are normal (Figure 6a).
func KSNormal(xs []float64, mu, sigma float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	n := float64(len(sorted))
	maxGap := 0.0
	for i, x := range sorted {
		ref := NormalCDF(x, mu, sigma)
		lo := float64(i) / n
		hi := float64(i+1) / n
		if g := math.Abs(ref - lo); g > maxGap {
			maxGap = g
		}
		if g := math.Abs(ref - hi); g > maxGap {
			maxGap = g
		}
	}
	return maxGap
}
