package longevity

import (
	"math"
	"testing"
	"time"

	"reaper/internal/dram"
	"reaper/internal/ecc"
)

func paperModel() Model {
	return Model{
		Code:       ecc.SECDED(),
		TargetUBER: ecc.UBERConsumer,
		Bytes:      2 << 30,
		Vendor:     dram.VendorB(),
		TempC:      45,
	}
}

func TestValidate(t *testing.T) {
	m := paperModel()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := m
	bad.TargetUBER = 0
	if bad.Validate() == nil {
		t.Error("zero UBER not rejected")
	}
	bad = m
	bad.Bytes = 0
	if bad.Validate() == nil {
		t.Error("zero capacity not rejected")
	}
	bad = m
	bad.Code = ecc.Code{K: -1, WordBits: 1, DataBits: 1}
	if bad.Validate() == nil {
		t.Error("bad code not rejected")
	}
}

func TestExpectedFailuresMatchesPaperExample(t *testing.T) {
	// Paper Section 6.2.3: 2464 retention failures observed at 1024 ms,
	// 45°C, in 2GB.
	m := paperModel()
	got := m.ExpectedFailures(1.024)
	if got < 2300 || got > 2600 {
		t.Errorf("expected failures = %v, want ~2464", got)
	}
}

func TestMissedFailures(t *testing.T) {
	m := paperModel()
	e := m.ExpectedFailures(1.024)
	if got := m.MissedFailures(1.024, 0.99); math.Abs(got-e*0.01) > 1e-9 {
		t.Errorf("missed at 99%% coverage = %v, want %v", got, e*0.01)
	}
	if m.MissedFailures(1.024, 1) != 0 {
		t.Error("perfect coverage should miss nothing")
	}
	if m.MissedFailures(1.024, -5) != e {
		t.Error("coverage below 0 should clamp")
	}
	if m.MissedFailures(1.024, 2) != 0 {
		t.Error("coverage above 1 should clamp")
	}
}

func TestAccumulationRateAnchor(t *testing.T) {
	// Paper: A = 0.73 cells/hour for 2GB at 1024 ms, 45°C.
	m := paperModel()
	got := m.AccumulationRate(1.024)
	if math.Abs(got-0.73) > 0.01 {
		t.Errorf("accumulation rate = %v, want 0.73", got)
	}
}

func TestPaperWorkedExampleWithBudget(t *testing.T) {
	// With the paper's own Table 1 budget (N = 65), Equation 7 gives
	// T = (65 - 24.6) / 0.73 h ≈ 55 h ≈ 2.3 days.
	m := paperModel()
	d, err := m.LongevityWithBudget(1.024, 0.99, 65)
	if err != nil {
		t.Fatal(err)
	}
	days := d.Hours() / 24
	if math.Abs(days-2.3) > 0.15 {
		t.Errorf("paper worked example: %.2f days, want ~2.3", days)
	}
}

func TestLongevityWithDerivedBudget(t *testing.T) {
	// With our exact Equation 6 solver the SECDED budget is ~90 cells for
	// 2GB (the paper quotes 65 from its 3.8e-9 RBER figure), so the
	// longevity comes out slightly longer but the same order: 2-5 days.
	m := paperModel()
	d, err := m.Longevity(1.024, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	days := d.Hours() / 24
	if days < 1.5 || days > 6 {
		t.Errorf("derived longevity = %.2f days, want the paper's order (~2-5)", days)
	}
}

func TestLongevityFailsWhenCoverageInsufficient(t *testing.T) {
	m := paperModel()
	// 50% coverage misses ~1232 cells against a budget of ~90: impossible.
	if _, err := m.Longevity(1.024, 0.5); err == nil {
		t.Error("insufficient coverage not rejected")
	}
	if _, err := m.LongevityWithBudget(1.024, 0.5, 65); err == nil {
		t.Error("insufficient coverage not rejected with explicit budget")
	}
}

func TestLongevityShrinksWithInterval(t *testing.T) {
	m := paperModel()
	a, err := m.Longevity(1.024, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Longevity(1.536, 1)
	if err != nil {
		t.Fatal(err)
	}
	if b >= a {
		t.Errorf("longevity did not shrink with interval: %v -> %v", a, b)
	}
}

func TestLongevityCapacityInvariance(t *testing.T) {
	// Both the budget N and the accumulation rate A scale linearly with
	// capacity, so full-coverage longevity is capacity-invariant.
	small := paperModel()
	big := paperModel()
	big.Bytes = 64 << 30
	a, err := small.Longevity(1.024, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := big.Longevity(1.024, 1)
	if err != nil {
		t.Fatal(err)
	}
	ratio := a.Hours() / b.Hours()
	if math.Abs(ratio-1) > 0.01 {
		t.Errorf("longevity not capacity invariant: %v vs %v", a, b)
	}
}

func TestMinimumCoverage(t *testing.T) {
	m := paperModel()
	min := m.MinimumCoverage(1.024)
	if min <= 0.9 || min >= 1 {
		t.Errorf("minimum coverage = %v, want high but below 1", min)
	}
	// Just above the minimum must work; just below must fail.
	if _, err := m.Longevity(1.024, min+0.005); err != nil {
		t.Errorf("coverage just above minimum rejected: %v", err)
	}
	if _, err := m.Longevity(1.024, min-0.005); err == nil {
		t.Error("coverage just below minimum accepted")
	}
	// A short interval with almost no failures needs no coverage at all.
	if got := m.MinimumCoverage(0.3); got != 0 {
		t.Errorf("minimum coverage at 300ms = %v, want 0", got)
	}
}

func TestReprofilesPerDay(t *testing.T) {
	m := paperModel()
	perDay, err := m.ReprofilesPerDay(1.536, 1)
	if err != nil {
		t.Fatal(err)
	}
	if perDay <= 0 {
		t.Error("expected a positive reprofiling frequency at 1536ms")
	}
	long, err := m.Longevity(1.536, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := 24 / long.Hours()
	if math.Abs(perDay-want) > 1e-9 {
		t.Errorf("ReprofilesPerDay = %v, want %v", perDay, want)
	}
}

func TestLongevityErrorsOnBadInterval(t *testing.T) {
	m := paperModel()
	if _, err := m.Longevity(0, 1); err == nil {
		t.Error("zero interval not rejected")
	}
	if _, err := m.LongevityWithBudget(-1, 1, 65); err == nil {
		t.Error("negative interval not rejected")
	}
}

func TestLongevityNeverExpiresWithoutAccumulation(t *testing.T) {
	m := paperModel()
	m.Vendor.VRTRatePer2GBAt1024 = 0
	d, err := m.Longevity(1.024, 1)
	if err != nil {
		t.Fatal(err)
	}
	if d < 100*365*24*time.Hour {
		t.Errorf("zero accumulation should give effectively infinite longevity, got %v", d)
	}
}
