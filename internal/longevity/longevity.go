// Package longevity implements the paper's profile-longevity model
// (Section 6.2.3, Equation 7): how long a retention failure profile remains
// valid before reprofiling is required.
//
// Given the maximum tolerable number of retention failures N (from the ECC
// strength and target UBER, Table 1), the number of failures C missed by
// profiling due to imperfect coverage, and the steady-state new-failure
// accumulation rate A (Figure 4), the time before the accumulated and missed
// failures exceed the ECC budget is
//
//	T = (N - C) / A
//
// The paper's worked example — 2GB DRAM, SECDED, target 1024 ms at 45°C,
// 99% coverage — yields T ≈ 2.3 days.
package longevity

import (
	"fmt"
	"time"

	"reaper/internal/dram"
	"reaper/internal/ecc"
)

// Model bundles the system parameters longevity depends on.
type Model struct {
	// Code is the ECC used as the retention failure mitigation backstop.
	Code ecc.Code
	// TargetUBER is the acceptable uncorrectable bit error rate
	// (ecc.UBERConsumer or ecc.UBEREnterprise).
	TargetUBER float64
	// Bytes is the DRAM capacity protected.
	Bytes int64
	// Vendor supplies the failure-rate and accumulation-rate calibration.
	Vendor dram.VendorParams
	// TempC is the operating ambient temperature.
	TempC float64
}

// Validate reports whether the model parameters are usable.
func (m Model) Validate() error {
	if err := m.Code.Validate(); err != nil {
		return err
	}
	if m.TargetUBER <= 0 {
		return fmt.Errorf("longevity: non-positive target UBER")
	}
	if m.Bytes <= 0 {
		return fmt.Errorf("longevity: non-positive capacity")
	}
	return m.Vendor.Validate()
}

// TolerableFailures returns N: the number of failing cells the ECC can
// absorb while meeting the target UBER (Table 1 scaled to the capacity).
func (m Model) TolerableFailures() float64 {
	return m.Code.TolerableBitErrors(m.TargetUBER, m.Bytes)
}

// ExpectedFailures returns the expected number of failing cells at the
// target refresh interval (seconds) — the population the profiler must find.
func (m Model) ExpectedFailures(tREFI float64) float64 {
	return m.Vendor.BER(tREFI, m.TempC) * float64(m.Bytes) * 8
}

// MissedFailures returns C: the expected number of failing cells a profiler
// with the given coverage leaves undiscovered at the target interval.
func (m Model) MissedFailures(tREFI, coverage float64) float64 {
	if coverage < 0 {
		coverage = 0
	}
	if coverage > 1 {
		coverage = 1
	}
	return m.ExpectedFailures(tREFI) * (1 - coverage)
}

// AccumulationRate returns A in cells per hour: the steady-state rate at
// which new failures appear at the target interval (Figure 4's fits).
func (m Model) AccumulationRate(tREFI float64) float64 {
	return m.Vendor.VRTRate(tREFI, m.TempC, m.Bytes)
}

// Longevity returns T = (N - C) / A as a duration. It returns an error when
// the profiler's coverage is insufficient — the missed failures alone
// already exceed the ECC budget, so no reprofiling interval is safe.
func (m Model) Longevity(tREFI, coverage float64) (time.Duration, error) {
	if err := m.Validate(); err != nil {
		return 0, err
	}
	if tREFI <= 0 {
		return 0, fmt.Errorf("longevity: non-positive target interval")
	}
	n := m.TolerableFailures()
	c := m.MissedFailures(tREFI, coverage)
	if c >= n {
		return 0, fmt.Errorf("longevity: coverage %.4f misses %.1f cells, exceeding the ECC budget of %.1f; minimum viable coverage is %.6f",
			coverage, c, n, m.MinimumCoverage(tREFI))
	}
	a := m.AccumulationRate(tREFI)
	if a <= 0 {
		// No accumulation: the profile never expires.
		return time.Duration(1<<62 - 1), nil
	}
	hours := (n - c) / a
	return time.Duration(hours * float64(time.Hour)), nil
}

// LongevityWithBudget is Longevity with an explicit tolerable-failure budget
// N instead of the one derived from the ECC model — useful to reproduce the
// paper's worked example with its own Table 1 figure (N = 65 for 2GB under
// SECDED at UBER 1e-15).
func (m Model) LongevityWithBudget(tREFI, coverage, n float64) (time.Duration, error) {
	if tREFI <= 0 {
		return 0, fmt.Errorf("longevity: non-positive target interval")
	}
	c := m.MissedFailures(tREFI, coverage)
	if c >= n {
		return 0, fmt.Errorf("longevity: missed failures %.1f exceed budget %.1f", c, n)
	}
	a := m.AccumulationRate(tREFI)
	if a <= 0 {
		return time.Duration(1<<62 - 1), nil
	}
	return time.Duration((n - c) / a * float64(time.Hour)), nil
}

// MinimumCoverage returns the smallest profiling coverage at which the
// missed failures stay within the ECC budget (C < N), i.e. the coverage
// below which no reprofiling frequency can keep the system correct.
func (m Model) MinimumCoverage(tREFI float64) float64 {
	n := m.TolerableFailures()
	e := m.ExpectedFailures(tREFI)
	if e <= 0 {
		return 0
	}
	min := 1 - n/e
	if min < 0 {
		return 0
	}
	return min
}

// ReprofilesPerDay returns how many profiling rounds per day the longevity
// implies (0 when the profile never expires).
func (m Model) ReprofilesPerDay(tREFI, coverage float64) (float64, error) {
	t, err := m.Longevity(tREFI, coverage)
	if err != nil {
		return 0, err
	}
	if t >= time.Duration(1<<62-1) {
		return 0, nil
	}
	return float64(24*time.Hour) / float64(t), nil
}
