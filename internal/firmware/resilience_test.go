package firmware

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"reaper/internal/core"
)

// quickCfg is a cheap manager configuration for controller unit tests.
func quickCfg() Config {
	return Config{
		TargetInterval: 1.024,
		Reach:          core.ReachConditions{DeltaInterval: 0.25},
		Profiling:      core.Options{Iterations: 1, FreshRandomPerIteration: true},
		CadenceHours:   48,
	}
}

func TestContextCancellationStopsCampaign(t *testing.T) {
	st := newStation(t, 20)
	m, err := New(st, quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := m.Tick(ctx); !errors.Is(err, context.Canceled) {
		t.Errorf("Tick with cancelled context: err = %v, want context.Canceled", err)
	}
	if m.Rounds() != 0 {
		t.Error("round ran under a cancelled context")
	}
	if err := m.RunFor(ctx, 10, 900); !errors.Is(err, context.Canceled) {
		t.Errorf("RunFor with cancelled context: err = %v, want context.Canceled", err)
	}
}

func TestPreRoundAbortBacksOffAndRetries(t *testing.T) {
	st := newStation(t, 21)
	fail := true
	cfg := quickCfg()
	cfg.PreRound = func() error {
		if fail {
			return fmt.Errorf("profiling window preempted")
		}
		return nil
	}
	m, err := New(st, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	ran, err := m.Tick(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if ran || m.Aborts() != 1 || m.Rounds() != 0 {
		t.Fatalf("aborted tick: ran=%v aborts=%d rounds=%d", ran, m.Aborts(), m.Rounds())
	}
	// Within the backoff the manager is not due, even with no profile.
	if m.Due() {
		t.Error("manager due during abort backoff")
	}
	st.Wait(abortBackoffBaseSeconds / 2)
	if ran, _ := m.Tick(ctx); ran {
		t.Error("round ran inside the abort backoff")
	}
	// After the backoff it retries; a second failure doubles the backoff.
	st.Wait(abortBackoffBaseSeconds/2 + 1)
	if ran, _ := m.Tick(ctx); ran || m.Aborts() != 2 {
		t.Fatalf("retry tick: ran=%v aborts=%d, want abort #2", ran, m.Aborts())
	}
	st.Wait(abortBackoffBaseSeconds + 1)
	if ran, _ := m.Tick(ctx); ran {
		t.Error("round ran inside the doubled backoff")
	}
	st.Wait(abortBackoffBaseSeconds + 1)
	fail = false
	ran, err = m.Tick(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !ran || m.Rounds() != 1 {
		t.Fatalf("round did not run once PreRound recovered: ran=%v rounds=%d", ran, m.Rounds())
	}
	abortEvents := 0
	for _, e := range m.Events() {
		if e.Kind == EventRoundAbort {
			abortEvents++
		}
	}
	if abortEvents != 2 {
		t.Errorf("logged %d round-abort events, want 2", abortEvents)
	}
}

func TestInstallErrorMidCampaignPropagates(t *testing.T) {
	// Without resilience, an Install failure partway through a campaign
	// (spares exhausted on the Nth round) surfaces from RunFor.
	st := newStation(t, 22)
	calls := 0
	cfg := quickCfg()
	cfg.CadenceHours = 4
	cfg.Install = func(*core.FailureSet) error {
		calls++
		if calls >= 2 {
			return fmt.Errorf("spare rows exhausted")
		}
		return nil
	}
	m, err := New(st, cfg)
	if err != nil {
		t.Fatal(err)
	}
	err = m.RunFor(context.Background(), 12, 1800)
	if err == nil || calls != 2 {
		t.Fatalf("RunFor err = %v after %d installs, want install error on round 2", err, calls)
	}
	if m.Rounds() != 2 {
		t.Errorf("rounds = %d, want 2 (campaign stopped at the failing round)", m.Rounds())
	}
}

func TestAfterRoundErrorMidCampaignPropagates(t *testing.T) {
	st := newStation(t, 23)
	calls := 0
	cfg := quickCfg()
	cfg.CadenceHours = 4
	cfg.AfterRound = func() error {
		calls++
		if calls >= 3 {
			return fmt.Errorf("host restore failed")
		}
		return nil
	}
	m, err := New(st, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.RunFor(context.Background(), 16, 1800); err == nil {
		t.Fatal("AfterRound error mid-campaign not propagated")
	}
	if calls != 3 {
		t.Errorf("AfterRound ran %d times, want 3", calls)
	}
}

func TestInstallExhaustionDegradesWhenResilient(t *testing.T) {
	// With the controller enabled, mitigation capacity exhaustion is a
	// survivable event: the manager degrades to the last ladder rung and
	// keeps the campaign alive instead of erroring out.
	st := newStation(t, 24)
	cfg := quickCfg()
	cfg.Resilience = ResilienceConfig{Enabled: true}
	cfg.Install = func(*core.FailureSet) error { return fmt.Errorf("spare segment full") }
	m, err := New(st, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ran, err := m.Tick(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !ran || !m.SparesExhausted() {
		t.Fatalf("ran=%v sparesExhausted=%v, want survivable exhaustion", ran, m.SparesExhausted())
	}
	def := st.Timing().DefaultTREFI
	if m.CurrentInterval() != def {
		t.Errorf("interval after exhaustion = %v, want default tREFI %v", m.CurrentInterval(), def)
	}
	if st.Device().AutoRefresh() != def {
		t.Errorf("station refresh = %v, want %v", st.Device().AutoRefresh(), def)
	}
	found := false
	for _, e := range m.Events() {
		if e.Kind == EventSparesExhausted {
			found = true
		}
	}
	if !found {
		t.Error("no spares-exhausted event logged")
	}
}

func TestResilienceLadderEscalatesAndRecovers(t *testing.T) {
	st := newStation(t, 25)
	cfg := quickCfg()
	cfg.Resilience = ResilienceConfig{
		Enabled:                  true,
		CorrectableBudget:        1,
		BackoffBaseHours:         0.5,
		BackoffMaxHours:          2,
		WidenAfterEscapes:        2,
		RecoverAfterCleanWindows: 3,
	}
	m, err := New(st, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := m.Tick(ctx); err != nil { // initial profile
		t.Fatal(err)
	}
	baseReach := m.reach.DeltaInterval
	baseIters := m.prof.Iterations

	// Window 1: correctable errors over budget -> early reprofile scheduled.
	m.ReportScrub(Telemetry{WindowSeconds: 3600, Corrected: 5})
	if !m.earlyPending {
		t.Fatal("unclean window did not schedule an early reprofile")
	}
	if m.Due() {
		t.Error("early reprofile due before its backoff elapsed")
	}
	st.Wait(0.5*3600 + 1)
	if !m.Due() {
		t.Fatal("early reprofile not due after its backoff")
	}
	if ran, _ := m.Tick(ctx); !ran || m.EarlyRounds() != 1 {
		t.Fatalf("early round: ran=%v earlyRounds=%d", ran, m.EarlyRounds())
	}

	// Window 2: second consecutive escape -> widen reach conditions.
	m.ReportScrub(Telemetry{WindowSeconds: 3600, Corrected: 5})
	if m.WidenSteps() != 1 {
		t.Fatalf("widen steps = %d after 2 escapes, want 1", m.WidenSteps())
	}
	if m.reach.DeltaInterval <= baseReach || m.prof.Iterations <= baseIters {
		t.Error("widening did not grow reach conditions")
	}

	// Window 3: an uncorrectable error -> degrade one rung immediately.
	m.ReportScrub(Telemetry{WindowSeconds: 3600, Uncorrectable: 1})
	if m.DegradeLevel() != 1 {
		t.Fatalf("degrade level = %d after UE, want 1", m.DegradeLevel())
	}
	if got := st.Device().AutoRefresh(); got != m.CurrentInterval() || got >= cfg.TargetInterval {
		t.Errorf("station refresh %v not degraded below target %v", got, cfg.TargetInterval)
	}

	// Recovery needs 2x the base clean windows after a UE (hysteresis).
	for i := 0; i < 5; i++ {
		m.ReportScrub(Telemetry{WindowSeconds: 3600})
		if m.DegradeLevel() != 1 {
			t.Fatalf("recovered after only %d clean windows (hysteresis broken)", i+1)
		}
	}
	m.ReportScrub(Telemetry{WindowSeconds: 3600})
	if m.DegradeLevel() != 0 {
		t.Fatalf("degrade level = %d after 6 clean windows, want recovery to 0", m.DegradeLevel())
	}
	if st.Device().AutoRefresh() != cfg.TargetInterval {
		t.Error("recovery did not restore the target interval on the station")
	}

	kinds := map[EventKind]int{}
	for _, e := range m.Events() {
		kinds[e.Kind]++
	}
	for _, k := range []EventKind{EventEarlyReprofile, EventWiden, EventDegrade, EventRecover} {
		if kinds[k] == 0 {
			t.Errorf("no %s event logged", k)
		}
	}
	total, unclean := m.Windows()
	if total != 9 || unclean != 3 {
		t.Errorf("windows = %d/%d unclean, want 9/3", total, unclean)
	}
}

func TestExtendedTimeAccounting(t *testing.T) {
	st := newStation(t, 26)
	cfg := quickCfg()
	cfg.Resilience = ResilienceConfig{Enabled: true, RecoverAfterCleanWindows: 1}
	m, err := New(st, cfg)
	if err != nil {
		t.Fatal(err)
	}
	st.Wait(3600) // 1h at the extended interval
	m.ReportScrub(Telemetry{WindowSeconds: 3600, Uncorrectable: 1})
	st.Wait(3600) // 1h degraded
	m.ReportScrub(Telemetry{WindowSeconds: 3600})
	m.ReportScrub(Telemetry{WindowSeconds: 3600}) // recover (need doubled to 2)
	st.Wait(3600)                                 // 1h extended again
	got := m.ExtendedSeconds()
	if got < 2*3600-1 || got > 2*3600+1 {
		t.Errorf("extended seconds = %v, want ~%v", got, 2*3600)
	}
	if f := m.ExtendedFraction(); f < 0.6 || f > 0.7 {
		t.Errorf("extended fraction = %v, want ~2/3", f)
	}
}

func TestResilienceConfigValidation(t *testing.T) {
	st := newStation(t, 27)
	bad := quickCfg()
	bad.Resilience = ResilienceConfig{Enabled: true, DegradeLadder: []float64{0.256, 0.512}}
	if _, err := New(st, bad); err == nil {
		t.Error("non-decreasing degrade ladder not rejected")
	}
	bad.Resilience = ResilienceConfig{Enabled: true, DegradeLadder: []float64{2.0}}
	if _, err := New(st, bad); err == nil {
		t.Error("ladder rung above the target interval not rejected")
	}
	bad.Resilience = ResilienceConfig{Enabled: true, BackoffBaseHours: 4, BackoffMaxHours: 1}
	if _, err := New(st, bad); err == nil {
		t.Error("inverted backoff bounds not rejected")
	}

	// Defaults: the derived ladder halves down to the JEDEC default.
	good := quickCfg()
	good.Resilience = ResilienceConfig{Enabled: true}
	m, err := New(st, good)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(m.ladder); n < 2 {
		t.Fatalf("derived ladder has %d rungs, want several", n)
	}
	if last := m.ladder[len(m.ladder)-1]; last != st.Timing().DefaultTREFI {
		t.Errorf("ladder bottom = %v, want default tREFI %v", last, st.Timing().DefaultTREFI)
	}
}
