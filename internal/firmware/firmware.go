// Package firmware implements REAPER as the paper's Section 7.1 describes
// it: profiling logic running in the memory controller that periodically
// re-profiles DRAM online and feeds the discovered failing cells to a
// retention failure mitigation mechanism, enabling reliable operation at an
// extended refresh interval.
//
// The manager follows the paper's worst-case assumptions: each profiling
// round takes exclusive DRAM access (a full system pause, charged on the
// simulated clock), and rounds recur at a cadence derived from the profile
// longevity model (Equation 7) or fixed by configuration. Profiling
// overwrites DRAM contents; per the paper's footnote 4, saving and
// restoring resident data is the system's job — the AfterRound hook is
// where a host restores its data.
//
// Beyond the open-loop cadence, the manager can run closed-loop: feed it
// per-window ECC scrub telemetry through ReportScrub and it escalates
// through the resilience policy ladder (see ResilienceConfig) — early
// reprofiling, widened reach conditions, graceful refresh degradation, and
// recovery to the extended interval after sustained clean windows.
package firmware

import (
	"context"
	"fmt"

	"reaper/internal/core"
	"reaper/internal/dram"
	"reaper/internal/longevity"
	"reaper/internal/memctrl"
	"reaper/internal/telemetry"
)

// memctrlPass returns the station's full-device pass time.
func memctrlPass(st *memctrl.Station) float64 {
	return st.Timing().PassSeconds(st.Device().Geometry().TotalBytes())
}

// Config configures an online profiling manager.
type Config struct {
	// TargetInterval is the refresh interval (seconds) the system runs at.
	TargetInterval float64
	// Reach are the profiling deltas above target conditions; zero deltas
	// give an online brute-force manager.
	Reach core.ReachConditions
	// Profiling configures each round (iterations, patterns, seed).
	Profiling core.Options
	// CadenceHours fixes the reprofiling period. Zero derives it from
	// Longevity and AssumedCoverage.
	CadenceHours float64
	// Longevity supplies the Equation 7 model when CadenceHours is 0, and
	// the default correctable-error budget of the resilience controller.
	Longevity *longevity.Model
	// AssumedCoverage is the coverage credited to each round when
	// deriving the cadence (real firmware cannot measure true coverage).
	// Defaults to 0.99.
	AssumedCoverage float64
	// SafetyFactor divides the derived longevity to reprofile early.
	// Defaults to 2.
	SafetyFactor float64
	// PreRound runs immediately before each profiling round starts. A
	// returned error aborts the round — modelling profiling-round aborts
	// and timeouts: the manager counts the abort, backs off, retries
	// later, and keeps running rather than failing the campaign.
	PreRound func() error
	// Install receives each fresh profile (e.g. ArchShield.Install).
	Install func(*core.FailureSet) error
	// AfterRound runs after each round completes (refresh restored,
	// profile installed) — the hook where the host restores resident
	// data that profiling overwrote.
	AfterRound func() error
	// PreserveData makes each round save the device contents to
	// (notional) secondary storage before profiling and restore them
	// afterwards, charging two extra data passes per round (the paper's
	// footnote-4 save/restore, made explicit). With PreserveData set, an
	// AfterRound data rewrite is unnecessary.
	PreserveData bool
	// Resilience enables and tunes the closed-loop controller; the zero
	// value leaves the manager open-loop (pre-existing behaviour).
	Resilience ResilienceConfig
}

// abort-retry backoff bounds used when a PreRound hook rejects a round.
const (
	abortBackoffBaseSeconds = 1800
	abortBackoffMaxSeconds  = 4 * 3600
)

// Manager runs online profiling on one station.
type Manager struct {
	st  *memctrl.Station //lint:serialized-elsewhere station wiring; the stack is rebuilt by construction before RestoreState
	cfg Config

	profile          *core.FailureSet
	rounds           int
	lastRoundEnd     float64 // station clock, seconds
	profilingSeconds float64
	startClock       float64
	cadenceSeconds   float64 //lint:serialized-elsewhere pure function of Config; reconstructed by New

	// Effective profiling conditions; start at cfg.Reach/cfg.Profiling and
	// are widened by the resilience controller on repeated escapes.
	reach core.ReachConditions
	prof  core.Options

	// Round-abort state (PreRound hook).
	aborts       int
	abortBackoff float64
	retryAt      float64

	// Resilience controller state (see resilience.go).
	res             ResilienceConfig //lint:serialized-elsewhere thresholds are a pure function of Config; reconstructed by New
	ladder          []float64        // degraded intervals, most extended first
	degradeLevel    int              // 0 = target interval, len(ladder) = last rung
	cleanWindows    int
	escapeStreak    int
	widenSteps      int
	backoffSeconds  float64
	earlyPending    bool
	earlyAt         float64
	earlyRounds     int
	recoverNeed     int
	windows         int
	uncleanWindows  int
	sparesExhausted bool
	events          []Event

	// Extended-interval time accounting.
	intervalSince float64
	extendedAccum float64

	// Telemetry (see Instrument). All fields stay nil on an uninstrumented
	// manager; nil handles are no-ops.
	tele       *telemetry.Registry //lint:serialized-elsewhere telemetry wiring; re-attached by Instrument, nil-safe when absent
	tracer     *telemetry.Tracer   //lint:serialized-elsewhere telemetry wiring; the tracer checkpoints through its own codec
	teleLabels []telemetry.Label   //lint:serialized-elsewhere telemetry wiring; re-attached by Instrument, nil-safe when absent
	cRounds    *telemetry.Counter  //lint:serialized-elsewhere telemetry handle; counter state lives in the Registry snapshot
	gDegrade   *telemetry.Gauge    //lint:serialized-elsewhere telemetry handle; gauge state lives in the Registry snapshot
	gInterval  *telemetry.Gauge    //lint:serialized-elsewhere telemetry handle; gauge state lives in the Registry snapshot
}

// New builds a manager and computes its cadence.
func New(st *memctrl.Station, cfg Config) (*Manager, error) {
	if st == nil {
		return nil, fmt.Errorf("firmware: nil station")
	}
	if cfg.TargetInterval <= 0 {
		return nil, fmt.Errorf("firmware: non-positive target interval")
	}
	if cfg.Reach.DeltaInterval < 0 || cfg.Reach.DeltaTempC < 0 {
		return nil, fmt.Errorf("firmware: negative reach deltas")
	}
	if cfg.AssumedCoverage == 0 {
		cfg.AssumedCoverage = 0.99
	}
	if cfg.AssumedCoverage <= 0 || cfg.AssumedCoverage > 1 {
		return nil, fmt.Errorf("firmware: assumed coverage %v out of (0,1]", cfg.AssumedCoverage)
	}
	if cfg.SafetyFactor == 0 {
		cfg.SafetyFactor = 2
	}
	if cfg.SafetyFactor < 1 {
		return nil, fmt.Errorf("firmware: safety factor must be >= 1")
	}
	m := &Manager{
		st:            st,
		cfg:           cfg,
		profile:       core.NewFailureSet(),
		startClock:    st.Clock(),
		reach:         cfg.Reach,
		prof:          cfg.Profiling,
		abortBackoff:  abortBackoffBaseSeconds,
		intervalSince: st.Clock(),
	}
	switch {
	case cfg.CadenceHours > 0:
		m.cadenceSeconds = cfg.CadenceHours * 3600
	case cfg.Longevity != nil:
		d, err := cfg.Longevity.Longevity(cfg.TargetInterval, cfg.AssumedCoverage)
		if err != nil {
			return nil, fmt.Errorf("firmware: cannot derive cadence: %w", err)
		}
		m.cadenceSeconds = d.Seconds() / cfg.SafetyFactor
	default:
		return nil, fmt.Errorf("firmware: need CadenceHours or a Longevity model")
	}
	if err := m.initResilience(); err != nil {
		return nil, err
	}
	return m, nil
}

// Instrument attaches a telemetry registry and (optionally) a per-manager
// tracer. Counters aggregate commutatively across all instrumented managers
// sharing the registry; the degrade-level and operating-interval gauges are
// last-write-wins, so callers running several managers concurrently must
// pass distinguishing labels (e.g. chip=3) — that makes each gauge series
// single-writer. The registry and tracer are also threaded into the
// profiling options, so each round's core_profiling_* metrics and trace
// events are recorded too. Call before the first Tick.
func (m *Manager) Instrument(reg *telemetry.Registry, tracer *telemetry.Tracer, labels ...telemetry.Label) {
	m.tele = reg
	m.tracer = tracer
	m.teleLabels = labels
	m.cRounds = reg.Counter("firmware_rounds_total")
	m.gDegrade = reg.Gauge("firmware_degrade_level", labels...)
	m.gInterval = reg.Gauge("firmware_interval_ms", labels...)
	m.prof.Telemetry = reg
	m.prof.Tracer = tracer
	m.updateGauges()
}

// updateGauges publishes the operating point after any transition.
func (m *Manager) updateGauges() {
	m.gDegrade.Set(float64(m.degradeLevel))
	m.gInterval.Set(m.currentInterval() * 1000)
}

// CadenceHours returns the reprofiling period in hours.
func (m *Manager) CadenceHours() float64 { return m.cadenceSeconds / 3600 }

// Profile returns the current failing-cell profile (a copy).
func (m *Manager) Profile() *core.FailureSet { return m.profile.Clone() }

// Rounds returns how many profiling rounds have completed.
func (m *Manager) Rounds() int { return m.rounds }

// Aborts returns how many profiling rounds the PreRound hook aborted.
func (m *Manager) Aborts() int { return m.aborts }

// ProfilingSeconds returns the simulated time consumed by profiling so far.
func (m *Manager) ProfilingSeconds() float64 { return m.profilingSeconds }

// OverheadFraction returns the fraction of elapsed simulated time spent
// profiling — the empirical counterpart of the paper's Figure 11.
func (m *Manager) OverheadFraction() float64 {
	elapsed := m.st.Clock() - m.startClock
	if elapsed <= 0 {
		return 0
	}
	return m.profilingSeconds / elapsed
}

// Due reports whether a profiling round is needed now (no profile yet, an
// early reprofile fell due, or the current profile outlived the cadence).
// A pending abort backoff suppresses rounds until its retry time.
func (m *Manager) Due() bool {
	now := m.st.Clock()
	if now < m.retryAt {
		return false
	}
	if m.rounds == 0 {
		return true
	}
	if m.earlyPending && now >= m.earlyAt {
		return true
	}
	return now-m.lastRoundEnd >= m.cadenceSeconds
}

// Tick runs one profiling round if one is due. It returns whether a round
// ran. After the round the station's refresh interval is restored to the
// current operating interval (the target, unless the resilience controller
// has degraded it) and the Install and AfterRound hooks have run.
//
// The context is checked on entry; profiling rounds themselves are atomic
// units of simulated time and are not interrupted midway.
func (m *Manager) Tick(ctx context.Context) (bool, error) {
	if err := ctx.Err(); err != nil {
		return false, err
	}
	if !m.Due() {
		return false, nil
	}
	now := m.st.Clock()
	if m.cfg.PreRound != nil {
		if err := m.cfg.PreRound(); err != nil {
			m.aborts++
			m.retryAt = now + m.abortBackoff
			m.event(EventRoundAbort, fmt.Sprintf("retry in %.2f h: %v", m.abortBackoff/3600, err))
			m.abortBackoff = min(m.abortBackoff*2, abortBackoffMaxSeconds)
			return false, nil
		}
	}
	m.abortBackoff = abortBackoffBaseSeconds
	var snap *dram.ContentSnapshot
	if m.cfg.PreserveData {
		snap = m.st.SaveData()
	}
	res, err := core.Reach(m.st, m.cfg.TargetInterval, m.reach, m.prof)
	if err != nil {
		return false, err
	}
	if snap != nil {
		if err := m.st.RestoreData(snap); err != nil {
			return false, err
		}
		// The save and restore passes are part of the round's cost.
		m.profilingSeconds += 2 * memctrlPass(m.st)
	}
	// Each round replaces the working profile with the union of old and
	// new discoveries: cells once seen failing stay mitigated (dropping
	// them would re-expose VRT cells currently in their long state).
	m.profile = m.profile.Union(res.Failures)
	m.profilingSeconds += res.RuntimeSeconds()
	m.rounds++
	m.lastRoundEnd = m.st.Clock()
	m.cRounds.Inc()
	if m.earlyPending {
		m.earlyPending = false
		m.earlyRounds++
		m.tele.Counter("firmware_early_rounds_total").Inc()
	}
	m.tracer.Emit(m.st.Clock(), "profiling-round",
		fmt.Sprintf("round=%d profile_cells=%d", m.rounds, m.profile.Len()), m.teleLabels...)

	// Resume operation at the current (possibly degraded) interval.
	m.st.SetRefreshInterval(m.currentInterval())
	m.updateGauges()
	if m.cfg.Install != nil && !m.sparesExhausted {
		if err := m.cfg.Install(m.profile); err != nil {
			if !m.res.Enabled {
				return true, fmt.Errorf("firmware: install: %w", err)
			}
			// Mitigation capacity exhausted: newly found cells can no
			// longer be remapped, so extended-interval operation is
			// unsafe. Degrade to the last rung and keep running.
			m.sparesExhausted = true
			m.setDegradeLevel(len(m.ladder))
			m.event(EventSparesExhausted, err.Error())
		}
	}
	if m.cfg.AfterRound != nil {
		if err := m.cfg.AfterRound(); err != nil {
			return true, fmt.Errorf("firmware: after-round hook: %w", err)
		}
	}
	return true, nil
}

// RunFor advances simulated time by simHours, ticking the manager every
// stepSeconds. The system runs at the current operating interval between
// rounds. Cancelling the context stops the campaign at the next step.
func (m *Manager) RunFor(ctx context.Context, simHours, stepSeconds float64) error {
	if stepSeconds <= 0 {
		return fmt.Errorf("firmware: non-positive step")
	}
	end := m.st.Clock() + simHours*3600
	for m.st.Clock() < end {
		if err := ctx.Err(); err != nil {
			return err
		}
		if _, err := m.Tick(ctx); err != nil {
			return err
		}
		m.st.Wait(stepSeconds)
	}
	return nil
}
