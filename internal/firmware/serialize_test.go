package firmware

import (
	"bytes"
	"context"
	"fmt"
	"slices"
	"testing"

	"reaper/internal/checkpoint"
	"reaper/internal/core"
	"reaper/internal/memctrl"
)

// resilientCfg is a controller configuration with small thresholds so a
// short drive sequence walks the whole policy ladder: escapes, widening,
// UE degradation, and recovery.
func resilientCfg(preRound func() error) Config {
	return Config{
		TargetInterval: 1.024,
		Reach:          core.ReachConditions{DeltaInterval: 0.25},
		Profiling:      core.Options{Iterations: 2, FreshRandomPerIteration: true, Seed: 42},
		CadenceHours:   12,
		PreRound:       preRound,
		Resilience: ResilienceConfig{
			Enabled:                  true,
			CorrectableBudget:        1,
			BackoffBaseHours:         0.5,
			BackoffMaxHours:          4,
			WidenAfterEscapes:        2,
			RecoverAfterCleanWindows: 2,
		},
	}
}

// abortSecondCall returns a PreRound hook that rejects exactly the second
// round attempt, so both twins exercise the abort backoff identically.
func abortSecondCall() func() error {
	calls := 0
	return func() error {
		calls++
		if calls == 2 {
			return fmt.Errorf("profiling window preempted")
		}
		return nil
	}
}

// driveManager pushes a manager through a deterministic mixed sequence of
// scrub windows and round opportunities covering every controller rung.
func driveManager(t *testing.T, m *Manager, st *memctrl.Station) {
	t.Helper()
	ctx := context.Background()
	step := func(tele Telemetry, waitSeconds float64) {
		t.Helper()
		if _, err := m.Tick(ctx); err != nil {
			t.Fatal(err)
		}
		m.ReportScrub(tele)
		st.Wait(waitSeconds)
	}
	step(Telemetry{WindowSeconds: 1800, Corrected: 0}, 1800)                   // clean
	step(Telemetry{WindowSeconds: 1800, Corrected: 5}, 1800)                   // escape 1
	step(Telemetry{WindowSeconds: 1800, Corrected: 7}, 1800)                   // escape 2 -> widen
	step(Telemetry{WindowSeconds: 1800, Corrected: 2, Uncorrectable: 1}, 1800) // UE -> degrade
	step(Telemetry{WindowSeconds: 1800, Corrected: 0}, 2400)                   // clean 1
	step(Telemetry{WindowSeconds: 1800, Corrected: 0}, 2400)                   // clean 2 -> recover
	step(Telemetry{WindowSeconds: 1800, Corrected: 0}, 3600)
}

// compareManagers asserts two managers are observation-identical.
func compareManagers(t *testing.T, label string, a, b *Manager) {
	t.Helper()
	if a.Rounds() != b.Rounds() || a.Aborts() != b.Aborts() {
		t.Errorf("%s: rounds/aborts %d/%d vs %d/%d", label, a.Rounds(), a.Aborts(), b.Rounds(), b.Aborts())
	}
	if a.DegradeLevel() != b.DegradeLevel() || a.CurrentInterval() != b.CurrentInterval() {
		t.Errorf("%s: ladder position %d@%v vs %d@%v", label,
			a.DegradeLevel(), a.CurrentInterval(), b.DegradeLevel(), b.CurrentInterval())
	}
	if a.WidenSteps() != b.WidenSteps() || a.EarlyRounds() != b.EarlyRounds() {
		t.Errorf("%s: widen/early %d/%d vs %d/%d", label,
			a.WidenSteps(), a.EarlyRounds(), b.WidenSteps(), b.EarlyRounds())
	}
	aw, au := a.Windows()
	bw, bu := b.Windows()
	if aw != bw || au != bu {
		t.Errorf("%s: windows %d(%d unclean) vs %d(%d unclean)", label, aw, au, bw, bu)
	}
	if a.ExtendedSeconds() != b.ExtendedSeconds() {
		t.Errorf("%s: extended seconds %v vs %v", label, a.ExtendedSeconds(), b.ExtendedSeconds())
	}
	if !slices.Equal(a.Profile().Sorted(), b.Profile().Sorted()) {
		t.Errorf("%s: profiles differ: %d vs %d cells", label, a.Profile().Len(), b.Profile().Len())
	}
	if ae, be := fmt.Sprint(a.Events()), fmt.Sprint(b.Events()); ae != be {
		t.Errorf("%s: event logs differ:\n%s\nvs\n%s", label, ae, be)
	}
}

// TestManagerStateRoundTrip is the controller's never-serialized-twin
// property: drive two identical managers through the full policy ladder,
// checkpoint one and restore it into a fresh manager over the same station,
// then continue both — every subsequent Tick/ReportScrub decision, the
// event log, and the re-encoded state must match the twin that was never
// serialized.
func TestManagerStateRoundTrip(t *testing.T) {
	stA := newStation(t, 33)
	stB := newStation(t, 33)
	mA, err := New(stA, resilientCfg(abortSecondCall()))
	if err != nil {
		t.Fatal(err)
	}
	mB, err := New(stB, resilientCfg(abortSecondCall()))
	if err != nil {
		t.Fatal(err)
	}

	// Phase 1: both twins walk the ladder identically.
	driveManager(t, mA, stA)
	driveManager(t, mB, stB)
	compareManagers(t, "pre-checkpoint", mA, mB)
	if mA.DegradeLevel() == 0 && mA.WidenSteps() == 0 {
		t.Fatal("degenerate drive: controller never left the initial state")
	}

	// Checkpoint mA and restore into a fresh manager over the same station.
	// The fresh PreRound hook's call counter restarts, so the twin gets a
	// matching fresh hook before phase 2.
	enc := checkpoint.NewEncoder()
	if err := mA.EncodeState(enc); err != nil {
		t.Fatal(err)
	}
	restored, err := New(stA, resilientCfg(abortSecondCall()))
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.RestoreState(checkpoint.NewDecoder(enc.Data())); err != nil {
		t.Fatal(err)
	}
	mB.cfg.PreRound = abortSecondCall()
	compareManagers(t, "post-restore", restored, mB)

	// Restored state must re-encode byte-identically.
	enc2 := checkpoint.NewEncoder()
	if err := restored.EncodeState(enc2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc.Data(), enc2.Data()) {
		t.Fatal("re-encoded manager state differs")
	}

	// Phase 2: the restored manager and the never-serialized twin must make
	// identical decisions from here on.
	driveManager(t, restored, stA)
	driveManager(t, mB, stB)
	compareManagers(t, "post-restore drive", restored, mB)

	encA, encB := checkpoint.NewEncoder(), checkpoint.NewEncoder()
	if err := restored.EncodeState(encA); err != nil {
		t.Fatal(err)
	}
	if err := mB.EncodeState(encB); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encA.Data(), encB.Data()) {
		t.Fatal("final states encode differently after lockstep phase 2")
	}
}

// TestManagerRestoreRejectsMismatch pins the in-band config guard.
func TestManagerRestoreRejectsMismatch(t *testing.T) {
	st := newStation(t, 34)
	m, err := New(st, resilientCfg(nil))
	if err != nil {
		t.Fatal(err)
	}
	enc := checkpoint.NewEncoder()
	if err := m.EncodeState(enc); err != nil {
		t.Fatal(err)
	}
	other := resilientCfg(nil)
	other.TargetInterval = 2.048
	m2, err := New(newStation(t, 34), other)
	if err != nil {
		t.Fatal(err)
	}
	if err := m2.RestoreState(checkpoint.NewDecoder(enc.Data())); err == nil {
		t.Error("target-interval mismatch not rejected")
	}
}

// TestManagerRestoreTruncated checks truncation surfaces as an error.
func TestManagerRestoreTruncated(t *testing.T) {
	st := newStation(t, 35)
	m, err := New(st, resilientCfg(nil))
	if err != nil {
		t.Fatal(err)
	}
	driveManager(t, m, st)
	enc := checkpoint.NewEncoder()
	if err := m.EncodeState(enc); err != nil {
		t.Fatal(err)
	}
	blob := enc.Data()
	for _, cut := range []int{0, 3, len(blob) / 2, len(blob) - 1} {
		fresh, err := New(newStation(t, 35), resilientCfg(nil))
		if err != nil {
			t.Fatal(err)
		}
		if err := fresh.RestoreState(checkpoint.NewDecoder(blob[:cut])); err == nil {
			t.Errorf("truncation at %d not detected", cut)
		}
	}
}
