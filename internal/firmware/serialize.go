package firmware

import (
	"bytes"
	"fmt"

	"reaper/internal/checkpoint"
	"reaper/internal/core"
)

// Checkpoint surface of the manager: the accumulated profile, the round and
// abort bookkeeping, the widened effective profiling conditions, and the
// full resilience-controller position (degrade ladder rung, hysteresis
// windows, backoff clocks, event log). Everything derived purely from the
// Config — the cadence, the ladder rungs, the resilience thresholds — is
// reconstructed by New and not written; a restored manager's next Tick and
// ReportScrub behave identically to a never-serialized twin's.

const maxRestoreManagerEvents = 1 << 24

// EncodeState serializes the manager's mutable state.
func (m *Manager) EncodeState(e *checkpoint.Encoder) error {
	e.Section("firmware.manager")
	e.F64(m.cfg.TargetInterval) // in-band guard

	var buf bytes.Buffer
	if _, err := m.profile.WriteTo(&buf); err != nil {
		return fmt.Errorf("firmware: encode profile: %w", err)
	}
	e.Bytes(buf.Bytes())
	e.Int(m.rounds)
	e.F64(m.lastRoundEnd)
	e.F64(m.profilingSeconds)
	e.F64(m.startClock)

	// Effective conditions (widened from cfg by the controller).
	e.F64(m.reach.DeltaInterval)
	e.F64(m.reach.DeltaTempC)
	e.Int(m.prof.Iterations)

	// Abort-retry state.
	e.Int(m.aborts)
	e.F64(m.abortBackoff)
	e.F64(m.retryAt)

	// Resilience ladder position.
	e.Int(m.degradeLevel)
	e.Int(m.cleanWindows)
	e.Int(m.escapeStreak)
	e.Int(m.widenSteps)
	e.F64(m.backoffSeconds)
	e.Bool(m.earlyPending)
	e.F64(m.earlyAt)
	e.Int(m.earlyRounds)
	e.Int(m.recoverNeed)
	e.Int(m.windows)
	e.Int(m.uncleanWindows)
	e.Bool(m.sparesExhausted)
	e.Len(len(m.events))
	for _, ev := range m.events {
		e.F64(ev.ClockHours)
		e.Str(string(ev.Kind))
		e.Str(ev.Detail)
	}

	// Extended-interval accounting.
	e.F64(m.intervalSince)
	e.F64(m.extendedAccum)
	return nil
}

// RestoreState loads state serialized by EncodeState into a freshly
// constructed manager with the same Config and station. The station's
// refresh interval is not touched: the restored device already carries the
// operating interval the campaign was running at.
func (m *Manager) RestoreState(d *checkpoint.Decoder) error {
	d.Section("firmware.manager")
	if ti := d.F64(); d.Err() == nil && ti != m.cfg.TargetInterval {
		return fmt.Errorf("firmware: restore: blob target interval %v, manager %v", ti, m.cfg.TargetInterval)
	}
	blob := d.Bytes()
	if d.Err() != nil {
		return d.Err()
	}
	profile, err := core.ReadFailureSet(bytes.NewReader(blob))
	if err != nil {
		return fmt.Errorf("firmware: restore profile: %w", err)
	}
	m.profile = profile
	m.rounds = d.Int()
	m.lastRoundEnd = d.F64()
	m.profilingSeconds = d.F64()
	m.startClock = d.F64()

	m.reach.DeltaInterval = d.F64()
	m.reach.DeltaTempC = d.F64()
	m.prof.Iterations = d.Int()

	m.aborts = d.Int()
	m.abortBackoff = d.F64()
	m.retryAt = d.F64()

	m.degradeLevel = d.Int()
	m.cleanWindows = d.Int()
	m.escapeStreak = d.Int()
	m.widenSteps = d.Int()
	m.backoffSeconds = d.F64()
	m.earlyPending = d.Bool()
	m.earlyAt = d.F64()
	m.earlyRounds = d.Int()
	m.recoverNeed = d.Int()
	m.windows = d.Int()
	m.uncleanWindows = d.Int()
	m.sparesExhausted = d.Bool()
	n := d.Len(maxRestoreManagerEvents)
	if d.Err() != nil {
		return d.Err()
	}
	m.events = make([]Event, 0, n)
	for i := 0; i < n; i++ {
		m.events = append(m.events, Event{
			ClockHours: d.F64(),
			Kind:       EventKind(d.Str()),
			Detail:     d.Str(),
		})
	}

	m.intervalSince = d.F64()
	m.extendedAccum = d.F64()
	if err := d.Err(); err != nil {
		return err
	}
	if m.degradeLevel < 0 || m.degradeLevel > len(m.ladder) {
		return fmt.Errorf("firmware: restore: degrade level %d outside ladder of %d rungs",
			m.degradeLevel, len(m.ladder))
	}
	m.updateGauges()
	return nil
}
