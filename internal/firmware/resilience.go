package firmware

import (
	"fmt"
	"math"

	"reaper/internal/telemetry"
)

// ResilienceConfig tunes the closed-loop resilience controller. The
// controller consumes per-window ECC scrub telemetry (ReportScrub) and
// escalates through a policy ladder when the extended-interval operating
// point shows signs of failing:
//
//  1. Early reprofile — an unclean window schedules an out-of-cadence
//     profiling round, with exponential backoff between successive early
//     rounds so a persistent fault cannot trap the system in back-to-back
//     full-device profiling passes.
//  2. Widen reach — repeated escapes in a row mean the current reach
//     conditions under-cover the failure distribution tail (Section 2.3
//     escape mechanisms); the controller widens the profiling delta
//     interval and adds iterations, up to MaxWidenSteps.
//  3. Graceful degradation — an uncorrectable error means the ECC budget
//     (Equation 7's N) is breached, so the controller steps the refresh
//     interval down the degrade ladder toward the JEDEC default, where
//     retention failures are not expected at all.
//  4. Recovery — after enough consecutive clean windows the controller
//     climbs back one ladder rung toward the extended interval. Each
//     UE-triggered degrade doubles the clean-window requirement
//     (hysteresis), so an oscillating marginal chip settles at a safe
//     rung instead of bouncing.
type ResilienceConfig struct {
	// Enabled turns the controller on. When false ReportScrub is a no-op
	// and the manager behaves exactly like the open-loop original.
	Enabled bool
	// CorrectableBudget is the number of corrected errors a scrub window
	// may report and still count as clean. Zero derives it from the
	// longevity model (a fraction of Equation 7's tolerable failures N)
	// or falls back to 2; set -1 for zero tolerance.
	CorrectableBudget int
	// BackoffBaseHours is the delay before the first early reprofile
	// after an unclean window; doubles per consecutive unclean window up
	// to BackoffMaxHours. Defaults 0.5 and 8.
	BackoffBaseHours float64
	BackoffMaxHours  float64
	// WidenAfterEscapes is the consecutive-unclean-window streak that
	// triggers a reach widening step. Defaults to 2.
	WidenAfterEscapes int
	// WidenDeltaInterval is added to the profiling delta interval per
	// widening step (seconds). Defaults to 0.128.
	WidenDeltaInterval float64
	// WidenExtraIterations is added to the profiling iteration count per
	// widening step. Defaults to 4.
	WidenExtraIterations int
	// MaxWidenSteps caps the widening steps. Defaults to 2.
	MaxWidenSteps int
	// DegradeLadder lists refresh intervals (seconds) to fall back to,
	// most extended first. Empty derives successive halvings of the
	// target down to the station's default tREFI.
	DegradeLadder []float64
	// RecoverAfterCleanWindows is the base number of consecutive clean
	// scrub windows required to climb one rung back up. Defaults to 6.
	RecoverAfterCleanWindows int
}

// recoverNeedCap bounds the hysteresis doubling of the clean-window
// requirement so recovery never becomes unreachable.
const recoverNeedCap = 64

// Telemetry is one ECC scrub window's error summary, as a scrubber or
// in-band ECC reports it to the resilience controller.
type Telemetry struct {
	// WindowSeconds is the wall (simulated) length of the window.
	WindowSeconds float64
	// Corrected counts single-bit (correctable) errors the window found.
	Corrected int
	// Uncorrectable counts multi-bit (uncorrectable) errors.
	Uncorrectable int
}

// EventKind classifies resilience controller actions.
type EventKind string

// The controller's action vocabulary: schedule tightening, reach widening,
// interval fallback and recovery, aborted profiling rounds, and spare-row
// exhaustion.
const (
	EventEarlyReprofile  EventKind = "early-reprofile"
	EventWiden           EventKind = "widen-reach"
	EventDegrade         EventKind = "degrade-interval"
	EventRecover         EventKind = "recover-interval"
	EventRoundAbort      EventKind = "round-abort"
	EventSparesExhausted EventKind = "spares-exhausted"
)

// Event is one logged controller action, stamped with the station clock.
type Event struct {
	ClockHours float64   `json:"clock_hours"`
	Kind       EventKind `json:"kind"`
	Detail     string    `json:"detail"`
}

// initResilience validates and defaults the resilience configuration and
// builds the degrade ladder. Called from New.
func (m *Manager) initResilience() error {
	r := m.cfg.Resilience
	if !r.Enabled {
		m.res = r
		return nil
	}
	if r.CorrectableBudget == 0 {
		r.CorrectableBudget = 2
		if m.cfg.Longevity != nil {
			if n := int(m.cfg.Longevity.TolerableFailures() / 8); n > r.CorrectableBudget {
				r.CorrectableBudget = n
			}
		}
	}
	if r.CorrectableBudget < 0 {
		r.CorrectableBudget = 0
	}
	if r.BackoffBaseHours == 0 {
		r.BackoffBaseHours = 0.5
	}
	if r.BackoffMaxHours == 0 {
		r.BackoffMaxHours = 8
	}
	if r.BackoffBaseHours < 0 || r.BackoffMaxHours < r.BackoffBaseHours {
		return fmt.Errorf("firmware: invalid resilience backoff bounds [%v, %v]",
			r.BackoffBaseHours, r.BackoffMaxHours)
	}
	if r.WidenAfterEscapes == 0 {
		r.WidenAfterEscapes = 2
	}
	if r.WidenDeltaInterval == 0 {
		r.WidenDeltaInterval = 0.128
	}
	if r.WidenExtraIterations == 0 {
		r.WidenExtraIterations = 4
	}
	if r.MaxWidenSteps == 0 {
		r.MaxWidenSteps = 2
	}
	if r.RecoverAfterCleanWindows == 0 {
		r.RecoverAfterCleanWindows = 6
	}
	if r.RecoverAfterCleanWindows < 1 || r.WidenAfterEscapes < 1 {
		return fmt.Errorf("firmware: resilience thresholds must be positive")
	}
	if len(r.DegradeLadder) == 0 {
		def := m.st.Timing().DefaultTREFI
		for iv := m.cfg.TargetInterval / 2; iv > def*1.5; iv /= 2 {
			r.DegradeLadder = append(r.DegradeLadder, iv)
		}
		r.DegradeLadder = append(r.DegradeLadder, def)
	}
	prev := math.Inf(1)
	for _, iv := range r.DegradeLadder {
		if iv <= 0 || iv >= prev || iv >= m.cfg.TargetInterval {
			return fmt.Errorf("firmware: degrade ladder must strictly decrease below the target interval")
		}
		prev = iv
	}
	m.res = r
	m.ladder = r.DegradeLadder
	m.backoffSeconds = r.BackoffBaseHours * 3600
	m.recoverNeed = r.RecoverAfterCleanWindows
	return nil
}

// currentInterval returns the operating refresh interval at the current
// degrade level: the target at level 0, else the matching ladder rung.
func (m *Manager) currentInterval() float64 {
	if m.degradeLevel == 0 {
		return m.cfg.TargetInterval
	}
	return m.ladder[m.degradeLevel-1]
}

// setDegradeLevel moves the operating point, applies the new interval to
// the station, and keeps the extended-interval time accounting straight.
func (m *Manager) setDegradeLevel(level int) {
	now := m.st.Clock()
	if m.degradeLevel == 0 {
		m.extendedAccum += now - m.intervalSince
	}
	m.intervalSince = now
	m.degradeLevel = level
	m.st.SetRefreshInterval(m.currentInterval())
	m.updateGauges()
}

// event appends a controller event stamped with the station clock, and
// mirrors it to the telemetry registry (as firmware_events_total{kind}) and
// trace ring when the manager is instrumented.
func (m *Manager) event(kind EventKind, detail string) {
	m.events = append(m.events, Event{
		ClockHours: (m.st.Clock() - m.startClock) / 3600,
		Kind:       kind,
		Detail:     detail,
	})
	m.tele.Counter("firmware_events_total", telemetry.L("kind", string(kind))).Inc()
	m.tracer.Emit(m.st.Clock(), string(kind), detail, m.teleLabels...)
}

// ReportScrub feeds one scrub window's telemetry to the resilience
// controller. Call it once per scrub pass, after Tick, with the window's
// corrected/uncorrectable counts. A no-op unless Resilience.Enabled.
func (m *Manager) ReportScrub(t Telemetry) {
	if !m.res.Enabled {
		return
	}
	m.windows++
	clean := t.Uncorrectable == 0 && t.Corrected <= m.res.CorrectableBudget
	m.tele.Counter("firmware_scrub_windows_total", telemetry.L("clean", fmt.Sprintf("%t", clean))).Inc()
	m.tele.Counter("firmware_scrub_corrected_total").Add(int64(t.Corrected))
	m.tele.Counter("firmware_scrub_uncorrectable_total").Add(int64(t.Uncorrectable))
	if clean {
		m.escapeStreak = 0
		m.cleanWindows++
		m.backoffSeconds = m.res.BackoffBaseHours * 3600
		if m.degradeLevel > 0 && m.cleanWindows >= m.recoverNeed {
			m.cleanWindows = 0
			m.setDegradeLevel(m.degradeLevel - 1)
			m.event(EventRecover, fmt.Sprintf("after %d clean windows, interval %.0f ms (level %d)",
				m.recoverNeed, m.currentInterval()*1000, m.degradeLevel))
		}
		return
	}

	m.uncleanWindows++
	m.cleanWindows = 0
	m.escapeStreak++
	if t.Uncorrectable > 0 && m.degradeLevel < len(m.ladder) {
		// Rung 3: the ECC budget is breached — degrade immediately, and
		// double the clean-window requirement for the climb back.
		m.setDegradeLevel(m.degradeLevel + 1)
		m.recoverNeed = min(m.recoverNeed*2, recoverNeedCap)
		m.event(EventDegrade, fmt.Sprintf("%d UE in window, interval %.0f ms (level %d)",
			t.Uncorrectable, m.currentInterval()*1000, m.degradeLevel))
	}
	if m.escapeStreak >= m.res.WidenAfterEscapes && m.widenSteps < m.res.MaxWidenSteps {
		// Rung 2: repeated escapes — profile wider and harder.
		m.widenSteps++
		m.reach.DeltaInterval += m.res.WidenDeltaInterval
		m.prof.Iterations += m.res.WidenExtraIterations
		m.event(EventWiden, fmt.Sprintf("step %d: delta interval %.0f ms, %d iterations",
			m.widenSteps, m.reach.DeltaInterval*1000, m.prof.Iterations))
	}
	if !m.earlyPending {
		// Rung 1: schedule an early reprofile with exponential backoff.
		m.earlyPending = true
		m.earlyAt = m.st.Clock() + m.backoffSeconds
		m.event(EventEarlyReprofile, fmt.Sprintf("scheduled in %.2f h (%d corrected, %d UE)",
			m.backoffSeconds/3600, t.Corrected, t.Uncorrectable))
		m.backoffSeconds = min(m.backoffSeconds*2, m.res.BackoffMaxHours*3600)
	}
}

// Events returns a copy of the controller's event log.
func (m *Manager) Events() []Event {
	out := make([]Event, len(m.events))
	copy(out, m.events)
	return out
}

// DegradeLevel returns the current rung on the degrade ladder (0 = the
// extended target interval).
func (m *Manager) DegradeLevel() int { return m.degradeLevel }

// CurrentInterval returns the refresh interval the system operates at
// between profiling rounds.
func (m *Manager) CurrentInterval() float64 { return m.currentInterval() }

// WidenSteps returns how many reach-widening steps the controller took.
func (m *Manager) WidenSteps() int { return m.widenSteps }

// EarlyRounds returns how many profiling rounds ran because the controller
// scheduled them early (out of cadence).
func (m *Manager) EarlyRounds() int { return m.earlyRounds }

// Windows returns how many scrub windows have been reported, and how many
// of those were unclean.
func (m *Manager) Windows() (total, unclean int) { return m.windows, m.uncleanWindows }

// SparesExhausted reports whether mitigation capacity ran out.
func (m *Manager) SparesExhausted() bool { return m.sparesExhausted }

// ExtendedSeconds returns the simulated time spent operating at the
// extended target interval (degrade level 0) since the manager started.
func (m *Manager) ExtendedSeconds() float64 {
	s := m.extendedAccum
	if m.degradeLevel == 0 {
		s += m.st.Clock() - m.intervalSince
	}
	return s
}

// ExtendedFraction returns ExtendedSeconds over the total elapsed time —
// the soak report's "time at extended interval" metric.
func (m *Manager) ExtendedFraction() float64 {
	elapsed := m.st.Clock() - m.startClock
	if elapsed <= 0 {
		return 1
	}
	return m.ExtendedSeconds() / elapsed
}
