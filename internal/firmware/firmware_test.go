package firmware

import (
	"context"
	"fmt"
	"testing"

	"reaper/internal/core"
	"reaper/internal/dram"
	"reaper/internal/ecc"
	"reaper/internal/longevity"
	"reaper/internal/memctrl"
	"reaper/internal/mitigate"
)

func newStation(t testing.TB, seed uint64) *memctrl.Station {
	t.Helper()
	dev, err := dram.NewDevice(dram.Config{
		Geometry:  dram.Geometry{Banks: 8, RowsPerBank: 128, WordsPerRow: 256},
		Vendor:    dram.VendorB(),
		Seed:      seed,
		WeakScale: 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := memctrl.NewStation(dev, nil, memctrl.DefaultTiming())
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// moduleLongevity is the Equation 7 model for a notional production module;
// the cadence it implies is capacity-invariant at fixed coverage.
func moduleLongevity() *longevity.Model {
	return &longevity.Model{
		Code:       ecc.SECDED(),
		TargetUBER: ecc.UBERConsumer,
		Bytes:      2 << 30,
		Vendor:     dram.VendorB(),
		TempC:      45,
	}
}

func TestNewValidation(t *testing.T) {
	st := newStation(t, 1)
	if _, err := New(nil, Config{TargetInterval: 1, CadenceHours: 1}); err == nil {
		t.Error("nil station not rejected")
	}
	if _, err := New(st, Config{TargetInterval: 0, CadenceHours: 1}); err == nil {
		t.Error("zero target not rejected")
	}
	if _, err := New(st, Config{TargetInterval: 1}); err == nil {
		t.Error("missing cadence and longevity not rejected")
	}
	if _, err := New(st, Config{TargetInterval: 1, CadenceHours: 1, AssumedCoverage: 1.5}); err == nil {
		t.Error("coverage > 1 not rejected")
	}
	if _, err := New(st, Config{TargetInterval: 1, CadenceHours: 1, SafetyFactor: 0.5}); err == nil {
		t.Error("safety factor < 1 not rejected")
	}
	if _, err := New(st, Config{TargetInterval: 1,
		Reach: core.ReachConditions{DeltaInterval: -1}, CadenceHours: 1}); err == nil {
		t.Error("negative reach not rejected")
	}
}

func TestCadenceFromLongevity(t *testing.T) {
	st := newStation(t, 2)
	m, err := New(st, Config{
		TargetInterval:  1.024,
		Longevity:       moduleLongevity(),
		AssumedCoverage: 0.99,
		SafetyFactor:    2,
		Profiling:       core.Options{Iterations: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	// 2GB/SECDED/1024ms/99% coverage gives ~91h longevity; halved, ~45h.
	if m.CadenceHours() < 30 || m.CadenceHours() > 60 {
		t.Errorf("derived cadence = %vh, want ~45h", m.CadenceHours())
	}
	// Infeasible coverage is surfaced at construction.
	if _, err := New(newStation(t, 2), Config{
		TargetInterval:  1.024,
		Longevity:       moduleLongevity(),
		AssumedCoverage: 0.5,
	}); err == nil {
		t.Error("infeasible coverage not rejected")
	}
}

func TestTickRunsOnCadence(t *testing.T) {
	st := newStation(t, 3)
	m, err := New(st, Config{
		TargetInterval: 1.024,
		Reach:          core.ReachConditions{DeltaInterval: 0.25},
		Profiling:      core.Options{Iterations: 2, FreshRandomPerIteration: true},
		CadenceHours:   6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !m.Due() {
		t.Fatal("fresh manager should be due")
	}
	ran, err := m.Tick(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !ran || m.Rounds() != 1 {
		t.Fatalf("first tick: ran=%v rounds=%d", ran, m.Rounds())
	}
	if m.Profile().Len() == 0 {
		t.Error("round produced no profile")
	}
	if m.ProfilingSeconds() <= 0 {
		t.Error("no profiling time recorded")
	}
	// The station must be back at the target interval.
	if st.Device().AutoRefresh() != 1.024 {
		t.Errorf("refresh interval after round = %v, want 1.024", st.Device().AutoRefresh())
	}
	// Immediately after, nothing is due.
	if m.Due() {
		t.Error("manager due right after a round")
	}
	if ran, _ := m.Tick(context.Background()); ran {
		t.Error("tick ran a round before the cadence elapsed")
	}
	// After the cadence passes, a round is due again.
	st.Wait(6*3600 + 1)
	if !m.Due() {
		t.Error("manager not due after cadence")
	}
	ran, err = m.Tick(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !ran || m.Rounds() != 2 {
		t.Error("second round did not run")
	}
}

func TestProfileAccumulatesAcrossRounds(t *testing.T) {
	st := newStation(t, 4)
	m, err := New(st, Config{
		TargetInterval: 1.024,
		Reach:          core.ReachConditions{DeltaInterval: 0.25},
		Profiling:      core.Options{Iterations: 2, FreshRandomPerIteration: true},
		CadenceHours:   2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Tick(context.Background()); err != nil {
		t.Fatal(err)
	}
	first := m.Profile().Len()
	st.Wait(2*3600 + 1)
	if _, err := m.Tick(context.Background()); err != nil {
		t.Fatal(err)
	}
	if m.Profile().Len() < first {
		t.Error("profile shrank across rounds; union semantics violated")
	}
}

func TestHooksRunAndErrorsPropagate(t *testing.T) {
	st := newStation(t, 5)
	installs, afters := 0, 0
	m, err := New(st, Config{
		TargetInterval: 1.024,
		Profiling:      core.Options{Iterations: 1},
		CadenceHours:   1,
		Install: func(p *core.FailureSet) error {
			installs++
			if p.Len() == 0 {
				t.Error("install hook got empty profile")
			}
			return nil
		},
		AfterRound: func() error { afters++; return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Tick(context.Background()); err != nil {
		t.Fatal(err)
	}
	if installs != 1 || afters != 1 {
		t.Errorf("hooks ran %d/%d times, want 1/1", installs, afters)
	}

	bad, err := New(newStation(t, 5), Config{
		TargetInterval: 1.024,
		Profiling:      core.Options{Iterations: 1},
		CadenceHours:   1,
		Install:        func(*core.FailureSet) error { return fmt.Errorf("boom") },
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bad.Tick(context.Background()); err == nil {
		t.Error("install error not propagated")
	}
}

func TestRunForTicksPeriodically(t *testing.T) {
	st := newStation(t, 6)
	m, err := New(st, Config{
		TargetInterval: 1.024,
		Reach:          core.ReachConditions{DeltaInterval: 0.25},
		Profiling:      core.Options{Iterations: 1, FreshRandomPerIteration: true},
		CadenceHours:   4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.RunFor(context.Background(), 13, 900); err != nil {
		t.Fatal(err)
	}
	// 13 hours at a 4-hour cadence: the initial round plus ~3 more.
	if m.Rounds() < 3 || m.Rounds() > 5 {
		t.Errorf("rounds = %d, want ~4", m.Rounds())
	}
	if m.OverheadFraction() <= 0 || m.OverheadFraction() > 0.2 {
		t.Errorf("overhead fraction = %v out of plausible range", m.OverheadFraction())
	}
	if err := m.RunFor(context.Background(), 1, 0); err == nil {
		t.Error("zero step not rejected")
	}
}

func TestReachManagerBeatsBruteForceEndToEnd(t *testing.T) {
	// The repository's flagship firmware comparison: to reach at least
	// brute-force coverage, the reach manager spends less profiling time.
	const target = 1.024
	runMgr := func(reach core.ReachConditions, iters int) (cov, overhead float64) {
		st := newStation(t, 7)
		truth := core.Truth(st, target, 45)
		m, err := New(st, Config{
			TargetInterval: target,
			Reach:          reach,
			Profiling:      core.Options{Iterations: iters, FreshRandomPerIteration: true},
			CadenceHours:   8,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := m.RunFor(context.Background(), 24, 1800); err != nil {
			t.Fatal(err)
		}
		return core.Coverage(m.Profile(), truth), m.OverheadFraction()
	}
	bruteCov, bruteOver := runMgr(core.ReachConditions{}, 32)
	reachCov, reachOver := runMgr(core.ReachConditions{DeltaInterval: 0.25}, 8)
	if reachCov < bruteCov {
		t.Errorf("reach manager coverage %v below brute %v", reachCov, bruteCov)
	}
	if reachOver >= bruteOver {
		t.Errorf("reach manager overhead %v not below brute %v", reachOver, bruteOver)
	}
	t.Logf("brute: cov=%.4f overhead=%.4f; reach: cov=%.4f overhead=%.4f (speedup %.2fx)",
		bruteCov, bruteOver, reachCov, reachOver, bruteOver/reachOver)
}

func TestPreserveDataAcrossRounds(t *testing.T) {
	// With PreserveData, resident data survives a profiling round without
	// any AfterRound rewrite, and the round's cost includes the two extra
	// passes.
	st := newStation(t, 9)
	if err := st.WriteWord(0, 1, 2, 0x1234567890abcdef); err != nil {
		t.Fatal(err)
	}
	m, err := New(st, Config{
		TargetInterval: 1.024,
		Reach:          core.ReachConditions{DeltaInterval: 0.25},
		Profiling:      core.Options{Iterations: 2, FreshRandomPerIteration: true},
		CadenceHours:   8,
		PreserveData:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Tick(context.Background()); err != nil {
		t.Fatal(err)
	}
	got, err := st.ReadWord(0, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0x1234567890abcdef {
		t.Fatalf("resident data lost through a preserving round: %x", got)
	}

	// The preserving manager's round costs more than a bare one.
	st2 := newStation(t, 9)
	bare, err := New(st2, Config{
		TargetInterval: 1.024,
		Reach:          core.ReachConditions{DeltaInterval: 0.25},
		Profiling:      core.Options{Iterations: 2, FreshRandomPerIteration: true},
		CadenceHours:   8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bare.Tick(context.Background()); err != nil {
		t.Fatal(err)
	}
	if m.ProfilingSeconds() <= bare.ProfilingSeconds() {
		t.Errorf("preserving round (%v s) not costlier than bare round (%v s)",
			m.ProfilingSeconds(), bare.ProfilingSeconds())
	}
}

func TestFirmwareWithArchShieldMultiDay(t *testing.T) {
	// End-to-end: the manager keeps an ArchShield-protected system correct
	// across three simulated days at a 1024 ms refresh interval, rewriting
	// resident data after every round (paper footnote 4's save/restore).
	const target = 1.024
	st := newStation(t, 8)
	shield, err := mitigate.NewArchShield(st, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	truth := core.Truth(st, target, 45)
	geom := st.Device().Geometry()
	var victims []mitigate.WordAddr
	seen := map[mitigate.WordAddr]bool{}
	for _, bit := range truth.Sorted() {
		a := geom.AddrOf(bit)
		wa := mitigate.WordAddr{Bank: a.Bank, Row: a.Row, Word: a.Word}
		if !seen[wa] && !shield.InReservedSegment(wa) {
			seen[wa] = true
			victims = append(victims, wa)
		}
		if len(victims) >= 60 {
			break
		}
	}
	payload := func(i int) uint64 { return 0x0f0f0f0f0f0f0f0f ^ uint64(i)*0x9e3779b97f4a7c15 }
	writeData := func() error {
		for i, wa := range victims {
			if err := shield.Write(wa, payload(i)); err != nil {
				return err
			}
		}
		return nil
	}

	m, err := New(st, Config{
		TargetInterval: target,
		Reach:          core.ReachConditions{DeltaInterval: 0.75},
		Profiling:      core.Options{Iterations: 24, FreshRandomPerIteration: true},
		CadenceHours:   24,
		Install:        shield.Install,
		AfterRound:     writeData,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.RunFor(context.Background(), 72, 3600); err != nil {
		t.Fatal(err)
	}
	if m.Rounds() < 3 {
		t.Fatalf("expected >= 3 rounds over 72h at 24h cadence, got %d", m.Rounds())
	}
	corrupted := 0
	for i, wa := range victims {
		got, err := shield.Read(wa)
		if err != nil {
			t.Fatal(err)
		}
		if got != payload(i) {
			corrupted++
		}
	}
	if corrupted != 0 {
		t.Errorf("%d/%d protected words corrupted across 3 days at %vms",
			corrupted, len(victims), target*1000)
	}
}
