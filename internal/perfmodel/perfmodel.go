// Package perfmodel implements the paper's analytic performance models:
//
//   - Equation 9, the end-to-end profiling-round runtime:
//     T_profile = (T_REFI + T_wr + T_rd) * N_dp * N_it
//     with the read/write pass times scaled by DRAM capacity from the
//     empirically measured 0.125 s per 2GB (Section 7.3.1).
//
//   - Equation 8, the throughput model accounting for online profiling:
//     IPC_real = IPC_ideal * (1 - profiling_overhead)
//     under the paper's worst-case assumption that the system makes zero
//     forward progress while a profiling round runs.
package perfmodel

import (
	"fmt"
	"time"
)

// PassSecondsPer2GB is the empirically measured time to write (or read and
// compare) one data pattern across 2GB of LPDDR4 (paper Section 7.3.1
// footnote). Pass times scale linearly with capacity.
const PassSecondsPer2GB = 0.125

// RoundConfig describes one online profiling round.
type RoundConfig struct {
	// TREFI is the profiling refresh interval in seconds (the time spent
	// with refresh disabled per pass).
	TREFI float64
	// NumPatterns is N_dp, the number of data patterns per iteration.
	NumPatterns int
	// NumIterations is N_it.
	NumIterations int
	// TotalBytes is the capacity profiled (e.g. 32 chips x 8 Gb).
	TotalBytes int64
	// SpeedupFactor divides the round time; 1 for brute-force profiling,
	// 2.5 for REAPER's experimentally measured reach-profiling speedup
	// (Section 6.1.2). Zero is treated as 1.
	SpeedupFactor float64
}

// Validate reports whether the configuration is usable.
func (c RoundConfig) Validate() error {
	if c.TREFI <= 0 || c.NumPatterns <= 0 || c.NumIterations <= 0 || c.TotalBytes <= 0 {
		return fmt.Errorf("perfmodel: invalid round config %+v", c)
	}
	if c.SpeedupFactor < 0 {
		return fmt.Errorf("perfmodel: negative speedup factor")
	}
	return nil
}

// PassSeconds returns T_wr (== T_rd): one full data pass over the capacity.
func (c RoundConfig) PassSeconds() float64 {
	return PassSecondsPer2GB * float64(c.TotalBytes) / float64(2<<30)
}

// RoundSeconds evaluates Equation 9, divided by the speedup factor.
func (c RoundConfig) RoundSeconds() float64 {
	pass := c.PassSeconds()
	t := (c.TREFI + 2*pass) * float64(c.NumPatterns) * float64(c.NumIterations)
	if c.SpeedupFactor > 1 {
		t /= c.SpeedupFactor
	}
	return t
}

// RoundDuration returns RoundSeconds as a time.Duration.
func (c RoundConfig) RoundDuration() time.Duration {
	return time.Duration(c.RoundSeconds() * float64(time.Second))
}

// OverheadFraction returns the proportion of total system time consumed by
// profiling when one round runs every profilingInterval seconds — the
// quantity plotted in Figure 11. The result is capped at 1 (profiling that
// takes longer than its own interval leaves no time for anything else).
func (c RoundConfig) OverheadFraction(profilingIntervalSeconds float64) float64 {
	if profilingIntervalSeconds <= 0 {
		return 1
	}
	f := c.RoundSeconds() / profilingIntervalSeconds
	if f > 1 {
		return 1
	}
	return f
}

// RealIPC evaluates Equation 8: the throughput the system actually achieves
// given the ideal (no-profiling) throughput and the profiling overhead
// fraction.
func RealIPC(idealIPC, overheadFraction float64) float64 {
	if overheadFraction < 0 {
		overheadFraction = 0
	}
	if overheadFraction > 1 {
		overheadFraction = 1
	}
	return idealIPC * (1 - overheadFraction)
}

// CommandCounts estimates the DRAM command volume of one profiling round,
// for the power model: every pass writes and then reads/compares the whole
// capacity once per pattern per iteration.
type CommandCounts struct {
	BytesWritten int64
	BytesRead    int64
	// RowActivations is the number of row activate/precharge pairs.
	RowActivations int64
}

// Commands returns the command volume of one round. rowBytes is the row
// size used to count activations (a full sequential pass activates each row
// once per pass).
func (c RoundConfig) Commands(rowBytes int64) CommandCounts {
	if rowBytes <= 0 {
		rowBytes = 2048
	}
	passes := int64(c.NumPatterns) * int64(c.NumIterations)
	perPassRows := c.TotalBytes / rowBytes
	return CommandCounts{
		BytesWritten:   c.TotalBytes * passes,
		BytesRead:      c.TotalBytes * passes,
		RowActivations: perPassRows * passes * 2, // one for write, one for read
	}
}
