package perfmodel

import (
	"math"
	"testing"
)

func TestValidate(t *testing.T) {
	good := RoundConfig{TREFI: 1, NumPatterns: 6, NumIterations: 6, TotalBytes: 1 << 30}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []RoundConfig{
		{TREFI: 0, NumPatterns: 1, NumIterations: 1, TotalBytes: 1},
		{TREFI: 1, NumPatterns: 0, NumIterations: 1, TotalBytes: 1},
		{TREFI: 1, NumPatterns: 1, NumIterations: 0, TotalBytes: 1},
		{TREFI: 1, NumPatterns: 1, NumIterations: 1, TotalBytes: 0},
		{TREFI: 1, NumPatterns: 1, NumIterations: 1, TotalBytes: 1, SpeedupFactor: -1},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("config %+v not rejected", bad)
		}
	}
}

func TestEquation9PaperAnchors(t *testing.T) {
	// Paper Section 7.3.1: "For 32 8Gb DRAM chips with T_REFI = 1024ms,
	// T_rd/wr = 0.125s (per 2GB, scaled), N_dp = 6, and N_it = 6, we find
	// T_profile ~= 3.01 minutes, and for 32 64Gb chips ~= 19.8 minutes."
	c8 := RoundConfig{
		TREFI: 1.024, NumPatterns: 6, NumIterations: 6,
		TotalBytes: 32 * (8 << 30) / 8, // 32 chips x 8 Gb = 32 GB
	}
	gotMin := c8.RoundSeconds() / 60
	if math.Abs(gotMin-3.01) > 0.03 {
		t.Errorf("32x8Gb round = %.3f min, want ~3.01", gotMin)
	}

	c64 := c8
	c64.TotalBytes = 32 * (64 << 30) / 8 // 256 GB
	gotMin = c64.RoundSeconds() / 60
	if math.Abs(gotMin-19.8) > 0.2 {
		t.Errorf("32x64Gb round = %.3f min, want ~19.8", gotMin)
	}
}

func TestFigure11Anchor(t *testing.T) {
	// Paper Figure 11: "for a profiling interval of 4 hours and a 64Gb
	// chip size, 22.7% of total system time is spent profiling with
	// brute-force profiling while 9.1% with REAPER" (16 iterations, 6
	// data patterns, 1024ms).
	brute := RoundConfig{
		TREFI: 1.024, NumPatterns: 6, NumIterations: 16,
		TotalBytes: 32 * (64 << 30) / 8,
	}
	bruteFrac := brute.OverheadFraction(4 * 3600)
	if math.Abs(bruteFrac-0.227) > 0.015 {
		t.Errorf("brute-force overhead at 4h = %.4f, want ~0.227", bruteFrac)
	}
	reaper := brute
	reaper.SpeedupFactor = 2.5
	reaperFrac := reaper.OverheadFraction(4 * 3600)
	if math.Abs(reaperFrac-0.091) > 0.006 {
		t.Errorf("REAPER overhead at 4h = %.4f, want ~0.091", reaperFrac)
	}
}

func TestSpeedupFactorSemantics(t *testing.T) {
	base := RoundConfig{TREFI: 1, NumPatterns: 6, NumIterations: 6, TotalBytes: 2 << 30}
	fast := base
	fast.SpeedupFactor = 2.5
	if r := base.RoundSeconds() / fast.RoundSeconds(); math.Abs(r-2.5) > 1e-9 {
		t.Errorf("speedup ratio = %v, want 2.5", r)
	}
	// Factor <= 1 is a no-op (including the zero default).
	slow := base
	slow.SpeedupFactor = 0.5
	if slow.RoundSeconds() != base.RoundSeconds() {
		t.Error("speedup < 1 should not slow the round down")
	}
}

func TestOverheadFractionBounds(t *testing.T) {
	c := RoundConfig{TREFI: 1.024, NumPatterns: 6, NumIterations: 16, TotalBytes: 256 << 30}
	if f := c.OverheadFraction(0); f != 1 {
		t.Errorf("zero interval overhead = %v, want 1", f)
	}
	if f := c.OverheadFraction(1); f != 1 {
		t.Errorf("interval shorter than round should cap at 1, got %v", f)
	}
	if f := c.OverheadFraction(1e12); f >= 0.001 {
		t.Errorf("huge interval overhead = %v, want ~0", f)
	}
}

func TestRealIPC(t *testing.T) {
	if got := RealIPC(2.0, 0.25); got != 1.5 {
		t.Errorf("RealIPC = %v, want 1.5", got)
	}
	if RealIPC(2.0, 0) != 2.0 {
		t.Error("zero overhead should preserve IPC")
	}
	if RealIPC(2.0, 1.5) != 0 {
		t.Error("overhead > 1 should clamp to zero IPC")
	}
	if RealIPC(2.0, -0.5) != 2.0 {
		t.Error("negative overhead should clamp")
	}
}

func TestRoundDuration(t *testing.T) {
	c := RoundConfig{TREFI: 1, NumPatterns: 1, NumIterations: 1, TotalBytes: 2 << 30}
	want := c.RoundSeconds()
	if got := c.RoundDuration().Seconds(); math.Abs(got-want) > 1e-9 {
		t.Errorf("RoundDuration = %v s, want %v", got, want)
	}
}

func TestCommands(t *testing.T) {
	c := RoundConfig{TREFI: 1, NumPatterns: 6, NumIterations: 2, TotalBytes: 1 << 20}
	cc := c.Commands(2048)
	if cc.BytesWritten != 12<<20 || cc.BytesRead != 12<<20 {
		t.Errorf("byte counts wrong: %+v", cc)
	}
	wantActs := int64(1<<20/2048) * 12 * 2
	if cc.RowActivations != wantActs {
		t.Errorf("activations = %d, want %d", cc.RowActivations, wantActs)
	}
	// Zero row size falls back to the 2KB default.
	if c.Commands(0) != cc {
		t.Error("default row size not applied")
	}
}
