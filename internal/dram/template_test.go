package dram

import (
	"slices"
	"testing"

	"reaper/internal/patterns"
)

// TestTemplateDeterministic pins that template-built devices are a pure
// function of (template, config): two devices from the same template and seed
// must have identical populations, sweep results, and seed-stream positions.
func TestTemplateDeterministic(t *testing.T) {
	cfg := sparseTestConfig(9)
	tpl, err := NewPopulationTemplate(cfg, 4096, 77)
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewDeviceFromTemplate(tpl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewDeviceFromTemplate(tpl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.WeakCellCount() != b.WeakCellCount() {
		t.Fatalf("population sizes diverged: %d vs %d", a.WeakCellCount(), b.WeakCellCount())
	}
	for i := range a.weak {
		ac, bc := a.weak[i], b.weak[i]
		if ac.bit != bc.bit || ac.mu != bc.mu || ac.sigma != bc.sigma ||
			ac.dpdSens != bc.dpdSens || ac.dpdSeed != bc.dpdSeed || ac.chargedVal != bc.chargedVal {
			t.Fatalf("cell %d diverged between identically seeded template devices", i)
		}
	}
	now := 0.0
	a.WriteAll(patterns.Checkerboard(), now)
	b.WriteAll(patterns.Checkerboard(), now)
	for i := 0; i < 5; i++ {
		now += 2.048
		if !slices.Equal(a.ReadCompareAll(now), b.ReadCompareAll(now)) {
			t.Fatalf("sweep %d diverged between identically seeded template devices", i)
		}
	}
	if av, bv := a.src.Uint64(), b.src.Uint64(); av != bv {
		t.Fatalf("seed streams diverged: %#x vs %#x", av, bv)
	}
}

// TestTemplateFleetIndependence checks distinct seeds against one shared
// template give distinct chips: different populations, drawn concurrently
// safe (the template is read-only after construction).
func TestTemplateFleetIndependence(t *testing.T) {
	cfg := sparseTestConfig(1)
	tpl, err := NewPopulationTemplate(cfg, 4096, 77)
	if err != nil {
		t.Fatal(err)
	}
	bits := make(map[uint64]int)
	total := 0
	for seed := uint64(1); seed <= 4; seed++ {
		c := cfg
		c.Seed = seed
		d, err := NewDeviceFromTemplate(tpl, c)
		if err != nil {
			t.Fatal(err)
		}
		if d.WeakCellCount() == 0 {
			t.Fatalf("seed %d: empty population", seed)
		}
		total += d.WeakCellCount()
		for _, c := range d.weak {
			bits[c.bit]++
		}
	}
	// Populations must not be clones of each other: the overwhelming majority
	// of bit positions should be unique to one chip.
	if len(bits) < total*3/4 {
		t.Fatalf("fleet populations overlap too much: %d distinct bits from %d cells", len(bits), total)
	}
}

// TestTemplateStatisticalFidelity compares the weak-population statistics of
// template-built devices against NewDevice over a handful of seeds: counts in
// the same Poisson regime and retention means inside the configured domain.
func TestTemplateStatisticalFidelity(t *testing.T) {
	cfg := sparseTestConfig(1)
	tpl, err := NewPopulationTemplate(cfg, 8192, 13)
	if err != nil {
		t.Fatal(err)
	}
	var analytic, templated int
	for seed := uint64(1); seed <= 6; seed++ {
		c := cfg
		c.Seed = seed
		da, err := NewDevice(c)
		if err != nil {
			t.Fatal(err)
		}
		dt, err := NewDeviceFromTemplate(tpl, c)
		if err != nil {
			t.Fatal(err)
		}
		analytic += da.WeakCellCount()
		templated += dt.WeakCellCount()
		for _, cell := range dt.weak {
			if cell.mu <= 0 {
				t.Fatalf("seed %d: non-positive retention mean %v", seed, cell.mu)
			}
			if cell.sigma > cell.mu/5*1.0000001 {
				t.Fatalf("seed %d: sigma %v above cap for mu %v", seed, cell.sigma, cell.mu)
			}
		}
	}
	if templated < analytic/2 || templated > analytic*2 {
		t.Fatalf("template population count %d implausible vs analytic %d", templated, analytic)
	}
}

// TestTemplateConfigMismatch checks the template refuses configs it was not
// drawn for: vendor, retention domain, and DPD ablation must all agree.
func TestTemplateConfigMismatch(t *testing.T) {
	cfg := sparseTestConfig(1)
	tpl, err := NewPopulationTemplate(cfg, 256, 1)
	if err != nil {
		t.Fatal(err)
	}
	bad := cfg
	bad.Vendor = VendorA()
	if _, err := NewDeviceFromTemplate(tpl, bad); err == nil {
		t.Fatal("vendor mismatch accepted")
	}
	bad = cfg
	bad.DisableDPD = true
	if _, err := NewDeviceFromTemplate(tpl, bad); err == nil {
		t.Fatal("DPD ablation mismatch accepted")
	}
	if _, err := NewDeviceFromTemplate(nil, cfg); err == nil {
		t.Fatal("nil template accepted")
	}
	if _, err := NewPopulationTemplate(cfg, 0, 1); err == nil {
		t.Fatal("zero-size template accepted")
	}
}
