package dram

import (
	"fmt"
	"sort"

	"reaper/internal/checkpoint"
	"reaper/internal/rng"
)

// This file is the device's checkpoint surface: EncodeState captures every
// piece of mutable device state — the weak population (including injected
// cells and per-cell VRT stream positions), the stuck overlay in its live
// list order, row deviations, the sampling stream positions, the sparse-
// index/round-cache/bank counters, and the incremental round cache itself —
// so that RestoreState into a freshly constructed device of the same Config
// yields a device whose future behavior (reads, draws, counters, cache
// hits) is bit-identical to the original's.
//
// The round cache is serialized in full rather than dropped because its
// state is observable: dram_incr_* telemetry counters distinguish fast from
// full sweeps, so a resume that silently lost the cache would report
// different counter values than an uninterrupted run.
//
// Per-cell scratch that is a pure function of serialized state is NOT
// serialized: neighbourhood-code caches restore as invalid (nbrEpoch 0 can
// never equal the restored contentEpoch, which starts at 1) and round-entry
// draw-probability memos restore empty — both refill deterministically
// without consuming rng draws, so dropping them is observation-equivalent.

// sanity ceilings for decoded lengths; beyond these the blob is corrupt.
const (
	maxRestoreCells   = 1 << 28
	maxRestoreRows    = 1 << 28
	maxRestoreEntries = 4 * maxRoundEntries
)

// rowData content descriptor kinds on the wire.
const (
	contentNil   = 0 // rowState.data nil (bulk content applies)
	contentZero  = 1 // zeroData: power-up state
	contentSlice = 2 // sliceRowData: explicitly written words
	contentNamed = 3 // named pattern, reconstructed via the resolver
)

// Namer is the optional naming facet of a RowData descriptor. Pattern
// descriptors (internal/patterns) satisfy it; their name is what the
// checkpoint stores and the resolver turns back into a ==-identical value.
type Namer interface {
	Name() string
}

// encodeRowData writes one content descriptor.
func encodeRowData(e *checkpoint.Encoder, data RowData) error {
	switch v := data.(type) {
	case nil:
		e.Byte(contentNil)
	case zeroData:
		e.Byte(contentZero)
	case sliceRowData:
		e.Byte(contentSlice)
		e.Len(len(v))
		for _, w := range v {
			e.U64(w)
		}
	default:
		n, ok := data.(Namer)
		if !ok {
			return fmt.Errorf("dram: content descriptor %T is neither named nor serializable", data)
		}
		e.Byte(contentNamed)
		e.Str(n.Name())
	}
	return nil
}

// decodeRowData reads one content descriptor; named patterns go through the
// caller's resolver (typically patterns.Parse) so the reconstructed value is
// == to the original.
func decodeRowData(d *checkpoint.Decoder, resolve func(string) (RowData, error)) (RowData, error) {
	switch kind := d.Byte(); kind {
	case contentNil:
		return nil, nil
	case contentZero:
		return zeroData{}, nil
	case contentSlice:
		n := d.Len(1 << 20)
		words := make(sliceRowData, n)
		for i := range words {
			words[i] = d.U64()
		}
		return words, nil
	case contentNamed:
		name := d.Str()
		if err := d.Err(); err != nil {
			return nil, err
		}
		if resolve == nil {
			return nil, fmt.Errorf("dram: named content %q but no resolver provided", name)
		}
		data, err := resolve(name)
		if err != nil {
			return nil, fmt.Errorf("dram: resolving content: %w", err)
		}
		return data, nil
	default:
		if err := d.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("dram: unknown content descriptor kind %d", kind)
	}
}

func encodeSrcState(e *checkpoint.Encoder, s *rng.Source) {
	st := s.State()
	e.U64(st[0])
	e.U64(st[1])
	e.U64(st[2])
	e.U64(st[3])
}

func decodeSrcState(d *checkpoint.Decoder) [4]uint64 {
	return [4]uint64{d.U64(), d.U64(), d.U64(), d.U64()}
}

// cellIndexOf returns c's index in the bit-sorted weak slice.
func (d *Device) cellIndexOf(c *weakCell) int {
	return sort.Search(len(d.weak), func(i int) bool { return d.weak[i].bit >= c.bit })
}

// EncodeState serializes the device's mutable state.
func (d *Device) EncodeState(e *checkpoint.Encoder) error {
	e.Section("dram.device")
	// Config guard: a blob restored into a device built from a different
	// config would be garbage; the campaign identity hash is the real
	// defense, this is the cheap in-band tripwire.
	e.U64(d.cfg.Seed)
	e.U64(uint64(d.geom.TotalBits()))

	// Weak population, bit order, every cell in full (construction-sampled
	// and injected cells are not distinguished: restore rebuilds the
	// population from these records verbatim).
	e.Len(len(d.weak))
	for _, c := range d.weak {
		e.U64(c.bit)
		e.F64(c.mu)
		e.F64(c.sigma)
		e.Byte(c.chargedVal)
		e.F64(c.dpdSens)
		e.U64(c.dpdSeed)
		e.I64(int64(c.stuck))
		if c.vrt == nil {
			e.Bool(false)
			continue
		}
		e.Bool(true)
		e.F64(c.vrt.muLow)
		e.F64(c.vrt.muHigh)
		e.F64(c.vrt.dwellLow)
		e.F64(c.vrt.dwellHigh)
		e.Bool(c.vrt.inLow)
		e.F64(c.vrt.nextSwitch)
		encodeSrcState(e, c.vrt.src)
	}

	// Stuck overlay, in live list order (append order, which a resumed sweep
	// must walk identically; membership can be stale after partial writes,
	// so it cannot be derived from per-cell stuck values).
	e.Len(len(d.stuckList))
	for _, c := range d.stuckList {
		e.Int(d.cellIndexOf(c))
	}

	// Divergence journals (delta.go), as indices into the bit-sorted weak
	// slice. The per-cell values already travel in the population records
	// above; the journals carry membership and order, so a dense-restored
	// device can still emit a faithful EncodeDelta later.
	e.Len(len(d.injected))
	for _, c := range d.injected {
		e.Int(d.cellIndexOf(c))
	}
	e.Len(len(d.dpdReseeded))
	for _, c := range d.dpdReseeded {
		e.Int(d.cellIndexOf(c))
	}
	e.Len(len(d.vrtForced))
	for _, c := range d.vrtForced {
		e.Int(d.cellIndexOf(c))
	}

	return d.encodeDeviceTail(e)
}

// encodeDeviceTail serializes the population-independent remainder of the
// device state — content and clocks, row deviations, stream positions,
// counters, and the incremental round cache. It is shared verbatim between
// the dense codec (EncodeState) and the delta codec (EncodeDelta): both
// reference cells by index into the bit-sorted weak slice, which the two
// codecs' restore paths reconstruct identically.
func (d *Device) encodeDeviceTail(e *checkpoint.Encoder) error {
	// Content and clocks.
	if err := encodeRowData(e, d.bulkData); err != nil {
		return err
	}
	e.F64(d.bulkTime)
	e.U64(d.contentEpoch)
	e.F64(d.tempC)
	e.F64(d.autoRef)
	e.U64(d.readsDone)
	e.U64(d.flipsSoFar)

	// Row deviations, sorted by global row.
	rows := make([]uint32, 0, len(d.rows))
	for r := range d.rows {
		rows = append(rows, r)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i] < rows[j] })
	e.Len(len(rows))
	for _, r := range rows {
		rs := d.rows[r]
		e.U64(uint64(r))
		e.F64(rs.restoredAt)
		if err := encodeRowData(e, rs.data); err != nil {
			return err
		}
		words := make([]int, 0, len(rs.overrides))
		for w := range rs.overrides {
			words = append(words, w)
		}
		sort.Ints(words)
		e.Len(len(words))
		for _, w := range words {
			e.Int(w)
			e.U64(rs.overrides[w])
		}
	}

	// Stream positions.
	encodeSrcState(e, d.src)
	e.Len(len(d.bankSrcs))
	for _, s := range d.bankSrcs {
		encodeSrcState(e, s)
	}

	// Counters.
	e.U64(d.idx.Skipped)
	e.U64(d.idx.Flipped)
	e.U64(d.idx.Sampled)
	e.U64(d.idx.Slowpath)
	e.U64(d.bank.BankedSweeps)
	e.U64(d.bank.BankShards)
	e.U64(d.incr.FastSweeps)
	e.U64(d.incr.FullSweeps)
	e.U64(d.incr.ReusedCells)
	e.U64(d.incr.DirtyCells)

	// Incremental round cache: entries sorted by key signature so the
	// encoding is deterministic; cells referenced by index into the
	// bit-sorted weak slice. Draw-probability memos are not stored (they
	// refill deterministically and draw-free on first replay).
	e.Bool(d.cacheOn)
	type keyedEntry struct {
		name    string
		key     roundKey
		dataNil bool
	}
	keys := make([]keyedEntry, 0, len(d.rounds))
	for k := range d.rounds {
		ke := keyedEntry{key: k}
		if k.data == nil {
			ke.dataNil = true
		} else if n, ok := k.data.(Namer); ok {
			ke.name = n.Name()
		} else if _, ok := k.data.(zeroData); !ok {
			// Unidentifiable key content cannot round-trip; entries are an
			// optimization, so drop just this entry rather than fail.
			continue
		}
		keys = append(keys, ke)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.name != b.name {
			return a.name < b.name
		}
		if a.key.tempC != b.key.tempC {
			return a.key.tempC < b.key.tempC
		}
		if a.key.elapsed != b.key.elapsed {
			return a.key.elapsed < b.key.elapsed
		}
		return a.key.autoRef < b.key.autoRef
	})
	e.Len(len(keys))
	for _, ke := range keys {
		if err := encodeRowData(e, ke.key.data); err != nil {
			return err
		}
		e.F64(ke.key.tempC)
		e.F64(ke.key.elapsed)
		e.F64(ke.key.autoRef)
		ent := d.rounds[ke.key]
		e.U64(ent.skipped)
		e.Int(ent.dirtyLen)
		e.Len(len(ent.flips))
		for _, f := range ent.flips {
			e.Int(d.cellIndexOf(f.c))
			e.Byte(f.wrong)
		}
		e.Len(len(ent.band))
		for _, c := range ent.band {
			e.Int(d.cellIndexOf(c))
		}
	}
	e.Len(len(d.dirtyCells))
	for _, c := range d.dirtyCells {
		e.Int(d.cellIndexOf(c))
	}
	return nil
}

// RestoreState loads a blob produced by EncodeState into d, which must have
// been constructed with the same Config. The constructed population is
// discarded and rebuilt verbatim from the blob (this is what lets injected
// cells, VRT stream positions and DPD reseeds round-trip without diffing
// against the construction-sampled population). resolve reconstructs named
// pattern content (pass patterns.Parse adapted to RowData).
func (d *Device) RestoreState(dec *checkpoint.Decoder, resolve func(string) (RowData, error)) error {
	dec.Section("dram.device")
	if seed := dec.U64(); dec.Err() == nil && seed != d.cfg.Seed {
		return fmt.Errorf("dram: restore: blob seed %#x, device seed %#x", seed, d.cfg.Seed)
	}
	if bits := dec.U64(); dec.Err() == nil && bits != uint64(d.geom.TotalBits()) {
		return fmt.Errorf("dram: restore: blob geometry %d bits, device %d", bits, d.geom.TotalBits())
	}

	n := dec.Len(maxRestoreCells)
	if dec.Err() != nil {
		return dec.Err()
	}
	d.weak = make([]*weakCell, 0, n)
	d.byRow = make(map[uint32][]*weakCell, n)
	var prevBit uint64
	for i := 0; i < n; i++ {
		c := d.allocCell()
		c.bit = dec.U64()
		c.mu = dec.F64()
		c.sigma = dec.F64()
		c.chargedVal = dec.Byte()
		c.dpdSens = dec.F64()
		c.dpdSeed = dec.U64()
		c.stuck = int8(dec.I64())
		if dec.Bool() {
			vs := &vrtState{
				muLow:     dec.F64(),
				muHigh:    dec.F64(),
				dwellLow:  dec.F64(),
				dwellHigh: dec.F64(),
				inLow:     dec.Bool(),
			}
			vs.nextSwitch = dec.F64()
			vs.src = rng.FromState(decodeSrcState(dec))
			c.vrt = vs
		}
		if dec.Err() != nil {
			return dec.Err()
		}
		if i > 0 && c.bit <= prevBit {
			return fmt.Errorf("dram: restore: weak cells not in ascending bit order at %d", i)
		}
		prevBit = c.bit
		d.weak = append(d.weak, c)
		row := d.geom.rowOfBit(c.bit)
		d.byRow[row] = append(d.byRow[row], c)
	}

	ns := dec.Len(maxRestoreCells)
	d.stuckList = make([]*weakCell, 0, ns)
	for i := 0; i < ns; i++ {
		c, err := d.decodeCellAt(dec, "stuck-list")
		if err != nil {
			return err
		}
		c.inStuckList = true
		d.stuckList = append(d.stuckList, c)
	}

	// Divergence journals: membership lists over the rebuilt population.
	// The tracked flags are derived from membership, so they reset here
	// rather than traveling on the wire.
	nj := dec.Len(maxRestoreCells)
	d.injected = nil
	for i := 0; i < nj; i++ {
		c, err := d.decodeCellAt(dec, "injected")
		if err != nil {
			return err
		}
		d.injected = append(d.injected, c)
	}
	nj = dec.Len(maxRestoreCells)
	d.dpdReseeded = nil
	for i := 0; i < nj; i++ {
		c, err := d.decodeCellAt(dec, "dpd-reseeded")
		if err != nil {
			return err
		}
		c.dpdTracked = true
		d.dpdReseeded = append(d.dpdReseeded, c)
	}
	nj = dec.Len(maxRestoreCells)
	d.vrtForced = nil
	for i := 0; i < nj; i++ {
		c, err := d.decodeCellAt(dec, "vrt-forced")
		if err != nil {
			return err
		}
		c.vrtTracked = true
		d.vrtForced = append(d.vrtForced, c)
	}

	return d.restoreDeviceTail(dec, resolve)
}

// decodeCellAt reads a weak-slice index and resolves it to the cell.
func (d *Device) decodeCellAt(dec *checkpoint.Decoder, label string) (*weakCell, error) {
	i := dec.Int()
	if dec.Err() != nil {
		return nil, dec.Err()
	}
	if i < 0 || i >= len(d.weak) {
		return nil, fmt.Errorf("dram: restore: %s cell index %d out of range", label, i)
	}
	return d.weak[i], nil
}

// restoreDeviceTail decodes the encodeDeviceTail region into d, whose weak
// population must already be final (dense rebuild or fresh construction plus
// delta replay), then rebuilds the activation index and resets the run-time
// scratch. Shared by RestoreState and RestoreDelta.
func (d *Device) restoreDeviceTail(dec *checkpoint.Decoder, resolve func(string) (RowData, error)) error {
	bulk, err := decodeRowData(dec, resolve)
	if err != nil {
		return err
	}
	if bulk == nil {
		return fmt.Errorf("dram: restore: nil bulk content")
	}
	d.bulkData = bulk
	d.bulkComparable = comparableRowData(bulk)
	d.bulkTime = dec.F64()
	d.contentEpoch = dec.U64()
	d.tempC = dec.F64()
	d.autoRef = dec.F64()
	d.readsDone = dec.U64()
	d.flipsSoFar = dec.U64()

	nr := dec.Len(maxRestoreRows)
	d.rows = make(map[uint32]*rowState, nr)
	for i := 0; i < nr; i++ {
		row := uint32(dec.U64())
		rs := &rowState{restoredAt: dec.F64()}
		rs.data, err = decodeRowData(dec, resolve)
		if err != nil {
			return err
		}
		no := dec.Len(1 << 20)
		if no > 0 {
			rs.overrides = make(map[int]uint64, no)
			for j := 0; j < no; j++ {
				w := dec.Int()
				rs.overrides[w] = dec.U64()
			}
		}
		if dec.Err() != nil {
			return dec.Err()
		}
		d.rows[row] = rs
	}

	d.src.SetState(decodeSrcState(dec))
	nb := dec.Len(1 << 16)
	if dec.Err() != nil {
		return dec.Err()
	}
	if nb != len(d.bankSrcs) {
		return fmt.Errorf("dram: restore: %d bank streams in blob, device has %d", nb, len(d.bankSrcs))
	}
	for i := 0; i < nb; i++ {
		d.bankSrcs[i].SetState(decodeSrcState(dec))
	}

	d.idx.Skipped = dec.U64()
	d.idx.Flipped = dec.U64()
	d.idx.Sampled = dec.U64()
	d.idx.Slowpath = dec.U64()
	d.bank.BankedSweeps = dec.U64()
	d.bank.BankShards = dec.U64()
	d.incr.FastSweeps = dec.U64()
	d.incr.FullSweeps = dec.U64()
	d.incr.ReusedCells = dec.U64()
	d.incr.DirtyCells = dec.U64()

	d.cacheOn = dec.Bool()
	ne := dec.Len(maxRestoreEntries)
	d.rounds = nil
	if ne > 0 {
		d.rounds = make(map[roundKey]*roundEntry, ne)
	}
	for i := 0; i < ne; i++ {
		data, err := decodeRowData(dec, resolve)
		if err != nil {
			return err
		}
		key := roundKey{data: data, tempC: dec.F64(), elapsed: dec.F64(), autoRef: dec.F64()}
		ent := &roundEntry{skipped: dec.U64(), dirtyLen: dec.Int()}
		nf := dec.Len(maxRestoreCells)
		ent.flips = make([]flipRec, 0, nf)
		for j := 0; j < nf; j++ {
			c, err := d.decodeCellAt(dec, "flip")
			if err != nil {
				return err
			}
			ent.flips = append(ent.flips, flipRec{c: c, wrong: dec.Byte()})
		}
		nbd := dec.Len(maxRestoreCells)
		ent.band = make([]*weakCell, 0, nbd)
		for j := 0; j < nbd; j++ {
			c, err := d.decodeCellAt(dec, "band")
			if err != nil {
				return err
			}
			ent.band = append(ent.band, c)
		}
		ent.probs = make([]bandProb, len(ent.band))
		d.rounds[key] = ent
	}
	nd := dec.Len(maxDirtyCells)
	d.dirtyCells = nil
	for i := 0; i < nd; i++ {
		c, err := d.decodeCellAt(dec, "dirty")
		if err != nil {
			return err
		}
		d.dirtyCells = append(d.dirtyCells, c)
	}
	if err := dec.Err(); err != nil {
		return err
	}

	d.rebuildIndex()
	d.shards = nil
	d.band = d.band[:0]
	d.failScratch = d.failScratch[:0]
	return nil
}
