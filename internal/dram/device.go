package dram

import (
	"cmp"
	"fmt"
	"math"
	"slices"

	"reaper/internal/rng"
)

// RowData supplies the logical content of device rows. Implementations must
// be deterministic: Word(row, w) must always return the same value for the
// same arguments, because the device re-derives stored content from the
// descriptor instead of materializing it. The patterns package provides the
// standard retention-test patterns as RowData values.
type RowData interface {
	Word(globalRow uint32, word int) uint64
}

// sliceRowData wraps explicitly written row contents.
type sliceRowData []uint64

func (s sliceRowData) Word(_ uint32, w int) uint64 { return s[w] }

// zeroData is the all-zero content a device holds after power-up.
type zeroData struct{}

func (zeroData) Word(uint32, int) uint64 { return 0 }

// zClip bounds the per-read normal failure CDF: a cell cannot fail before
// mu - zClip*sigma and always fails after mu + zClip*sigma. Physically the
// normal spread models sense-amplifier marginality near the cell's retention
// point; far from it the outcome is deterministic. The clip is what makes
// operation at the default 64 ms interval lossless for the weak-cell
// population (min retention 256 ms), as on real (non-defective) devices.
const zClip = 3.5

// vrtDomainMaxS caps the retention domain (seconds) of the latent VRT
// reservoir; see sampleWeakPopulation.
const vrtDomainMaxS = 6.5

// Config configures a simulated device.
type Config struct {
	Geometry Geometry
	Vendor   VendorParams
	Seed     uint64

	// WeakScale multiplies the weak-cell density. Scaled-down test chips
	// use WeakScale > 1 so that a megabit-sized device carries a
	// statistically meaningful weak population; the default is 1.
	WeakScale float64

	// MinRetention / MaxRetention bound the modelled retention-mean domain
	// in seconds at the reference temperature. Cells outside the domain
	// are "strong" and never fail. Defaults: 0.256 s and 8 s.
	MinRetention float64
	MaxRetention float64

	// AmbientTempC is the initial ambient temperature; default RefTempC.
	AmbientTempC float64

	// DisableVRT / DisableDPD switch off those phenomena for ablation
	// experiments.
	DisableVRT bool
	DisableDPD bool

	// BankStreams gives every bank its own read-sampling stream, derived as a
	// pure function of (Seed, bank) via rng.Derive, instead of all banks
	// sharing the device stream. This is what makes bank-sharded parallel
	// sweeps possible (SetSweepWorkers): per-bank draws are independent of the
	// other banks' sampling order. Population sampling still uses the device
	// stream, so the chip identity is unchanged; read outcomes differ from the
	// default single-stream mode but are byte-identical at every worker count
	// within banked mode.
	BankStreams bool
}

func (c *Config) fillDefaults() {
	if c.WeakScale == 0 {
		c.WeakScale = 1
	}
	if c.MinRetention == 0 {
		c.MinRetention = 0.256
	}
	if c.MaxRetention == 0 {
		c.MaxRetention = 8
	}
	if c.AmbientTempC == 0 {
		c.AmbientTempC = RefTempC
	}
}

// rowState records how a row deviates from the device-wide bulk state:
// different content and/or a different last-restore time.
type rowState struct {
	data       RowData // nil: use the device bulk content
	restoredAt float64
	overrides  map[int]uint64 // word index -> value, for partial writes
}

// Device is a simulated LPDDR4 DRAM device. It is not safe for concurrent
// use; experiments drive one device from one goroutine (matching the single
// command bus of a real chip).
type Device struct {
	cfg  Config
	geom Geometry
	vend VendorParams //lint:serialized-elsewhere pure function of cfg; rebuilt by construction, guarded by the in-band cfg.Seed check

	weak  []*weakCell // all weak cells, sorted by bit index
	byRow map[uint32][]*weakCell

	// cellArena backs weakCell storage in pointer-stable chunks: full
	// chunks are abandoned (the cells carved from them keep them alive),
	// never grown, so &cellArena[i] stays valid for the device's lifetime
	// while construction pays ~1 allocation per chunk instead of per cell.
	//lint:serialized-elsewhere allocation backing store; restore re-carves cells through the same arena allocator
	cellArena []weakCell

	// Sparse active-window index (see index.go): the weak population sorted
	// by activation key, the parallel key array binary-searched per sweep,
	// the overlay of currently stuck cells, a reusable band scratch slice,
	// and the cumulative disposition counters.
	actCells  []*weakCell //lint:serialized-elsewhere active-window index; rebuilt from the restored weak population by rebuildIndex
	actKeys   []float64   //lint:serialized-elsewhere parallel key array of actCells; rebuilt by rebuildIndex
	stuckList []*weakCell
	band      []*weakCell
	idx       IndexStats

	bulkData   RowData
	bulkTime   float64
	rows       map[uint32]*rowState
	tempC      float64
	autoRef    float64 // auto-refresh interval in seconds; 0 = refresh disabled
	src        *rng.Source
	readsDone  uint64
	flipsSoFar uint64

	// contentEpoch increments on every operation that changes stored
	// (written) data. Per-cell neighbourhood codes are cached against it:
	// reads never change written content, so the code computed on the first
	// sample after a write stays valid until the next write.
	contentEpoch uint64

	// Banked sampling streams (bank.go): non-nil only in BankStreams mode.
	// bankBits is the number of bit addresses per bank; sweepWorkers bounds
	// the shard fan-out of banked full-device sweeps; shards is the reusable
	// per-bank scratch.
	bankSrcs     []*rng.Source
	bankBits     uint64 //lint:serialized-elsewhere pure function of geometry and bank count; recomputed by construction
	sweepWorkers int    //lint:serialized-elsewhere execution-tuning knob, not simulated state; results are worker-count invariant
	shards       []bankShard
	bank         BankStats

	// Incremental round cache (incremental.go): classification results keyed
	// by the sweep's (content, temperature, elapsed, auto-refresh) signature,
	// the list of cells injected since the cache last emptied, and the
	// fast/full round counters. bulkComparable records whether bulkData's
	// dynamic type supports ==, the cheap content-identity test the cache
	// keys rely on.
	cacheOn        bool
	rounds         map[roundKey]*roundEntry
	dirtyCells     []*weakCell
	incr           IncrStats
	bulkComparable bool

	// failScratch is the reusable failing-bit accumulator of full-device
	// sweeps; collecting sweeps copy it into an exact-size result.
	failScratch []uint64

	// Delta-codec divergence journals (delta.go): the cells injected since
	// construction (in insertion order), and the cells whose dpdSeed or VRT
	// state an injection hook overwrote. Together with the stuck overlay,
	// row deviations, and stream positions, these are the only ways a live
	// device diverges from its seed-derived construction — naturally drifted
	// VRT cells need no journal entry because vrtState.advance is a pure
	// catch-up function of (construction state, max time seen). This is what
	// lets EncodeDelta checkpoint a chip as O(deviations) bytes instead of
	// O(weak cells).
	injected    []*weakCell
	dpdReseeded []*weakCell
	vrtForced   []*weakCell
}

// validate fills defaults and checks the config is usable; it is the shared
// front door of NewDevice and NewDeviceFromTemplate.
func (c *Config) validate() error {
	c.fillDefaults()
	if err := c.Geometry.Validate(); err != nil {
		return err
	}
	if err := c.Vendor.Validate(); err != nil {
		return err
	}
	if c.MinRetention <= 0 || c.MaxRetention <= c.MinRetention {
		return fmt.Errorf("dram: invalid retention domain [%v, %v]", c.MinRetention, c.MaxRetention)
	}
	return nil
}

// NewDevice builds a device and samples its weak-cell population.
func NewDevice(cfg Config) (*Device, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	d := newDeviceShell(cfg)
	d.sampleWeakPopulation()
	return d, nil
}

// newDeviceShell builds an empty device from a validated config; the caller
// samples the weak population (NewDevice from the vendor distributions,
// NewDeviceFromTemplate from a pre-drawn template).
func newDeviceShell(cfg Config) *Device {
	d := &Device{
		cfg:            cfg,
		geom:           cfg.Geometry,
		vend:           cfg.Vendor,
		byRow:          make(map[uint32][]*weakCell),
		bulkData:       zeroData{},
		bulkComparable: true,
		rows:           make(map[uint32]*rowState),
		tempC:          cfg.AmbientTempC,
		src:            rng.New(cfg.Seed),
		cacheOn:        true,
		contentEpoch:   1, // so zero-valued per-cell caches start invalid
		bankBits:       uint64(cfg.Geometry.RowsPerBank * cfg.Geometry.RowBits()),
	}
	if cfg.BankStreams {
		d.bankSrcs = make([]*rng.Source, cfg.Geometry.Banks)
		for b := range d.bankSrcs {
			d.bankSrcs[b] = rng.Derive(cfg.Seed, bankStreamSalt+uint64(b))
		}
	}
	return d
}

// sampleWeakPopulation draws the base weak cells and the latent VRT
// reservoir from the vendor's calibrated distributions.
func (d *Device) sampleWeakPopulation() {
	v := &d.vend
	bits := float64(d.geom.TotalBits())
	tmin, tmax := d.cfg.MinRetention, d.cfg.MaxRetention

	// Base weak cells: retention means follow the power-law tail that
	// produces BER(t) = BERAt1024ms * (t/1.024s)^beta at 45C.
	expected := bits * v.BER(tmax, RefTempC) * d.cfg.WeakScale
	n := d.src.Poisson(expected)
	taken := make(map[uint64]struct{}, n)
	for i := 0; i < n; i++ {
		mu := d.samplePowerLaw(tmin, tmax, v.BERExponent)
		d.addWeakCell(taken, mu, !d.cfg.DisableVRT && d.src.Bernoulli(v.VRTFraction), 0)
	}

	// Latent VRT reservoir: cells whose high-retention state is beyond the
	// domain (they never fail "normally") but whose low-retention state is
	// inside it. In steady state they enter the failing population at rate
	// A(t) = count(muLow <= t) / (dwellLow + dwellHigh), so the reservoir
	// size is A(tmax) * (dwellLow + dwellHigh).
	if !d.cfg.DisableVRT {
		// The reservoir's low-retention domain is capped below the overall
		// retention domain: the steep VRT rate power law (Figure 4) is a
		// fit over the paper's tested intervals (<= ~4 s) and extrapolating
		// it to tens of seconds would produce a nonphysical reservoir.
		vrtMax := tmax
		if vrtMax > vrtDomainMaxS {
			vrtMax = vrtDomainMaxS
		}
		dwellSum := v.VRTDwellLowHours + v.VRTDwellHighHours // hours
		latent := v.VRTRate(vrtMax, RefTempC, d.geom.TotalBytes()) * dwellSum * d.cfg.WeakScale
		m := d.src.Poisson(latent)
		for i := 0; i < m; i++ {
			muLow := d.samplePowerLaw(tmin, vrtMax, v.VRTRateExponent)
			d.addWeakCell(taken, muLow, true, tmax*10)
		}
	}

	slices.SortFunc(d.weak, func(a, b *weakCell) int { return cmp.Compare(a.bit, b.bit) })
	for _, c := range d.weak {
		r := d.geom.rowOfBit(c.bit)
		d.byRow[r] = append(d.byRow[r], c)
	}
	d.rebuildIndex()
}

// samplePowerLaw draws t in [tmin, tmax] with CDF proportional to t^beta.
func (d *Device) samplePowerLaw(tmin, tmax, beta float64) float64 {
	return powerLawSample(d.src, tmin, tmax, beta)
}

// cellArenaChunk is the cell count per arena chunk: large enough that a
// bench-scale population costs tens of allocations, small enough that a
// sparse device does not strand much memory.
const cellArenaChunk = 1024

// allocCell returns a zeroed weakCell carved from the device's chunked
// arena. Chunks are never reallocated once a cell has been handed out, so
// the returned pointer is stable.
func (d *Device) allocCell() *weakCell {
	if len(d.cellArena) == cap(d.cellArena) {
		d.cellArena = make([]weakCell, 0, cellArenaChunk)
	}
	d.cellArena = append(d.cellArena, weakCell{})
	return &d.cellArena[len(d.cellArena)-1]
}

// addWeakCell creates one weak cell at a fresh random bit position.
// muHighOverride > 0 forces the VRT high-retention state to that value
// (used for the latent reservoir); otherwise a VRT cell's high state is a
// random multiple of its low state.
func (d *Device) addWeakCell(taken map[uint64]struct{}, mu float64, vrt bool, muHighOverride float64) {
	var bit uint64
	for {
		bit = d.src.Uint64n(uint64(d.geom.TotalBits()))
		if _, dup := taken[bit]; !dup {
			taken[bit] = struct{}{}
			break
		}
	}
	v := &d.vend
	sigma := d.src.LogNormal(math.Log(v.SigmaLogMedianMS/1000), v.SigmaLogSigma)
	if sigmaCap := mu / 5; sigma > sigmaCap {
		sigma = sigmaCap
	}
	sens := 0.0
	if !d.cfg.DisableDPD {
		u := d.src.Float64()
		sens = v.DPDStrength * u * u
	}
	c := d.allocCell()
	*c = weakCell{
		bit:        bit,
		mu:         mu,
		sigma:      sigma,
		chargedVal: uint8(d.src.Intn(2)),
		dpdSens:    sens,
		dpdSeed:    d.src.Uint64(),
		stuck:      -1,
	}
	if vrt {
		muHigh := muHighOverride
		if muHigh <= 0 {
			muHigh = mu * (3 + 5*d.src.Float64())
		}
		vs := &vrtState{
			muLow:     mu,
			muHigh:    muHigh,
			dwellLow:  d.src.Exp(d.vend.VRTDwellLowHours) * 3600,
			dwellHigh: d.src.Exp(d.vend.VRTDwellHighHours) * 3600,
			src:       d.src.Split(bit),
		}
		if vs.dwellLow < 600 {
			vs.dwellLow = 600
		}
		if vs.dwellHigh < 600 {
			vs.dwellHigh = 600
		}
		// Stationary initial state.
		vs.inLow = vs.src.Bernoulli(vs.dwellLow / (vs.dwellLow + vs.dwellHigh))
		mean := vs.dwellHigh
		if vs.inLow {
			mean = vs.dwellLow
		}
		vs.nextSwitch = vs.src.Exp(mean)
		c.vrt = vs
	}
	d.weak = append(d.weak, c)
}

// Geometry returns the device geometry.
func (d *Device) Geometry() Geometry { return d.geom }

// Vendor returns the device's vendor parameter set.
func (d *Device) Vendor() VendorParams { return d.vend }

// WeakCellCount returns the number of modelled weak cells (including the
// latent VRT reservoir).
func (d *Device) WeakCellCount() int { return len(d.weak) }

// SetTemperature sets the ambient temperature the device currently sees.
// Retention scales exponentially with it per Equation 1.
func (d *Device) SetTemperature(c float64) { d.tempC = c }

// Temperature returns the current ambient temperature.
func (d *Device) Temperature() float64 { return d.tempC }

// SetAutoRefresh configures the device-side model of auto-refresh: interval
// is the per-row refresh interval in seconds, or 0 to model refresh being
// disabled. Under auto-refresh, reads account for possible failures sticking
// at any of the intervening refresh points (a refresh restores whatever the
// sense amplifiers read, including a wrong value — the paper's Figure 1c).
func (d *Device) SetAutoRefresh(interval float64) {
	if interval < 0 {
		interval = 0
	}
	d.autoRef = interval
}

// AutoRefresh returns the configured auto-refresh interval (0 if disabled).
func (d *Device) AutoRefresh() float64 { return d.autoRef }

// stateOf returns the row's content source and last-restore time.
func (d *Device) stateOf(row uint32) (RowData, float64, *rowState) {
	if rs, ok := d.rows[row]; ok {
		data := rs.data
		if data == nil {
			data = d.bulkData
		}
		return data, rs.restoredAt, rs
	}
	return d.bulkData, d.bulkTime, nil
}

// wordAt returns the logical (written) value of a word, honouring overrides.
// The no-deviation fast path matters: right after a bulk pattern write —
// the state every profiling pass reads from — there are no per-row records,
// and the word comes straight out of the pattern descriptor with no map
// lookups at all.
func (d *Device) wordAt(row uint32, word int) uint64 {
	if len(d.rows) == 0 {
		return d.bulkData.Word(row, word)
	}
	data, _, rs := d.stateOf(row)
	if rs != nil && rs.overrides != nil {
		if v, ok := rs.overrides[word]; ok {
			return v
		}
	}
	return data.Word(row, word)
}

// bitAt returns the logical (written) value of a single bit.
func (d *Device) bitAt(row uint32, word, bit int) uint8 {
	return uint8(d.wordAt(row, word) >> uint(bit) & 1)
}

// neighborhoodCode encodes the stored values of a cell's four neighbours
// (left, right, above, below) as a 4-bit code for the DPD model. Neighbours
// outside the device read as 0.
func (d *Device) neighborhoodCode(bit uint64) uint64 {
	a := d.geom.AddrOf(bit)
	row := d.geom.GlobalRow(a.Bank, a.Row)
	rowBits := d.geom.RowBits()
	pos := a.Word*WordBits + a.Bit

	var code uint64
	if p := pos - 1; p >= 0 {
		code |= uint64(d.bitAt(row, p/WordBits, p%WordBits))
	}
	if p := pos + 1; p < rowBits {
		code |= uint64(d.bitAt(row, p/WordBits, p%WordBits)) << 1
	}
	if a.Row > 0 {
		code |= uint64(d.bitAt(row-1, pos/WordBits, pos%WordBits)) << 2
	}
	if a.Row < d.geom.RowsPerBank-1 {
		code |= uint64(d.bitAt(row+1, pos/WordBits, pos%WordBits)) << 3
	}
	return code
}

// neighborhoodCodeOf returns the cell's neighbourhood code, reusing the
// per-cell cache when the stored content has not changed since the last
// computation. Reads (including failures sticking) never change written
// content, so within one write epoch the code is a constant of the cell.
func (d *Device) neighborhoodCodeOf(c *weakCell) uint64 {
	if c.nbrEpoch == d.contentEpoch {
		return c.nbrCode
	}
	c.nbrCode = d.neighborhoodCode(c.bit)
	c.nbrEpoch = d.contentEpoch
	return c.nbrCode
}

// sampleRead determines the value read from a weak cell at simulated time
// now, given the row's last-restore time, and updates the cell's stuck state
// (reading restores what was read). It returns the read bit value.
func (d *Device) sampleRead(c *weakCell, row uint32, now, restoredAt float64) uint8 {
	a := d.geom.AddrOf(c.bit)
	written := d.bitAt(row, a.Word, a.Bit)
	return d.sampleReadBit(c, written, now, restoredAt)
}

// sampleReadBit is sampleRead with the cell's written value already in hand
// (the bulk read path fetches it once per cell while walking rows). It must
// consume RNG draws exactly as the sequential seed implementation did: a
// draw happens only for probabilities strictly inside (0, 1), so the early
// exits below skip no draws.
func (d *Device) sampleReadBit(c *weakCell, written uint8, now, restoredAt float64) uint8 {
	got, flipped := d.sampleReadBitOn(c, written, now, restoredAt, d.srcFor(c.bit))
	if flipped {
		d.noteStuck(c)
	}
	return got
}

// sampleReadBitOn is sampleReadBit against an explicit sampling stream. It
// mutates only the cell itself (stuck state, VRT advance, neighbourhood-code
// cache), never device-wide state: bank-sharded sweeps call it concurrently
// for cells of different banks and commit the stuck-overlay bookkeeping
// (noteStuck) at the deterministic shard merge. flipped reports that a
// failure stuck on this read.
func (d *Device) sampleReadBitOn(c *weakCell, written uint8, now, restoredAt float64, src *rng.Source) (got uint8, flipped bool) {
	if c.stuck >= 0 {
		return uint8(c.stuck), false
	}
	elapsed := now - restoredAt
	if elapsed <= 0 {
		return written, false
	}
	code := d.neighborhoodCodeOf(c)
	failed := false
	if d.autoRef > 0 && elapsed > d.autoRef {
		// k full refresh cycles have passed; a failure at any of them was
		// restored as a stuck wrong value. Per-cycle outcomes are modelled
		// as independent trials.
		k := math.Floor(elapsed / d.autoRef)
		p := d.clippedFailProb(c, d.autoRef, written, code, now)
		pStick := -math.Expm1(k * math.Log1p(-p))
		if src.Bernoulli(pStick) {
			failed = true
		} else {
			resid := elapsed - k*d.autoRef
			failed = src.Bernoulli(d.clippedFailProb(c, resid, written, code, now))
		}
	} else {
		failed = src.Bernoulli(d.clippedFailProb(c, elapsed, written, code, now))
	}
	if failed {
		c.stuck = int8(written ^ 1)
		return written ^ 1, true
	}
	return written, false
}

// clippedFailProb is the per-read failure probability with the zClip
// deterministic bounds applied.
func (d *Device) clippedFailProb(c *weakCell, elapsed float64, written uint8, code uint64, now float64) float64 {
	if written != c.chargedVal {
		return 0
	}
	scale := d.vend.muTempScale(d.tempC)
	mu := c.muAt(now) * scale * c.dpdFactor(code)
	sigma := c.sigma * scale
	if elapsed < mu-zClip*sigma {
		return 0
	}
	if elapsed > mu+zClip*sigma {
		return 1
	}
	return c.failProb(elapsed, d.tempC, written, code, &d.vend, now)
}

// ensureRowState returns (creating if needed) the deviation record for a row.
func (d *Device) ensureRowState(row uint32) *rowState {
	rs, ok := d.rows[row]
	if !ok {
		rs = &rowState{restoredAt: d.bulkTime}
		d.rows[row] = rs
	}
	return rs
}

// clearStuck resets the stuck state of all weak cells in a row (a write
// replaces the charge, erasing any past failure).
func (d *Device) clearStuck(row uint32) {
	for _, c := range d.byRow[row] {
		c.stuck = -1
	}
}

// WriteAll writes data to every row of the device at simulated time now.
// This is the bulk operation retention-test passes use; it erases all
// per-row deviations and stuck failures.
func (d *Device) WriteAll(data RowData, now float64) {
	// A rewrite of the identical pattern over undeviated content changes no
	// stored bit, so the per-cell neighbourhood-code caches keyed on
	// contentEpoch stay valid — the common steady-state profiling cadence
	// (same pattern every round) then re-reads cached codes instead of
	// recomputing them. The identity test needs ==, which only comparable
	// descriptor types support (patterns are; sliceRowData is not).
	same := len(d.rows) == 0 && d.bulkComparable && comparableRowData(data) && data == d.bulkData
	d.bulkData = data
	d.bulkComparable = comparableRowData(data)
	d.bulkTime = now
	if len(d.rows) > 0 {
		d.rows = make(map[uint32]*rowState)
	}
	d.dropStuckList()
	if !same {
		d.contentEpoch++
	}
}

// ReadCompareAll reads every row at simulated time now, compares the read
// data against the stored (written) content, and returns the global bit
// indices that mismatch. As on real DRAM, the read restores what was read:
// failed bits remain wrong until rewritten. After the call, every row's
// charge is considered restored at time now.
//
// The walk is sparse: the active-window index (index.go) binary-searches to
// the cells whose failure probability can be nonzero at this (elapsed,
// temperature) and only those are classified; deterministic p = 0 / p = 1
// cells never reach the failure CDF or the seed stream, so the result is
// byte-identical to the dense per-cell walk.
func (d *Device) ReadCompareAll(now float64) []uint64 {
	return d.sweep(now, true)
}

// RestoreAll models a full refresh sweep at simulated time now: every row is
// read and written back. Failures present at the sweep stick (they are
// restored as wrong values). It is ReadCompareAll without the failure
// collection — no fails slice is allocated or sorted.
func (d *Device) RestoreAll(now float64) {
	d.sweep(now, false)
}

// WriteRow replaces the content of one row at simulated time now. words must
// have exactly Geometry.WordsPerRow entries (the slice is copied).
func (d *Device) WriteRow(bank, row int, words []uint64, now float64) error {
	if err := d.checkRow(bank, row); err != nil {
		return err
	}
	if len(words) != d.geom.WordsPerRow {
		return fmt.Errorf("dram: WriteRow needs %d words, got %d", d.geom.WordsPerRow, len(words))
	}
	gr := d.geom.GlobalRow(bank, row)
	cp := make(sliceRowData, len(words))
	copy(cp, words)
	d.rows[gr] = &rowState{data: cp, restoredAt: now}
	d.clearStuck(gr)
	d.contentEpoch++
	return nil
}

// ReadRow activates and reads one row at simulated time now, returning its
// current content with any retention failures applied. The activation
// restores the row (wrong values stick until rewritten).
func (d *Device) ReadRow(bank, row int, now float64) ([]uint64, error) {
	if err := d.checkRow(bank, row); err != nil {
		return nil, err
	}
	gr := d.geom.GlobalRow(bank, row)
	_, restoredAt, _ := d.stateOf(gr)
	words := make([]uint64, d.geom.WordsPerRow)
	for w := range words {
		words[w] = d.wordAt(gr, w)
	}
	for _, c := range d.byRow[gr] {
		a := d.geom.AddrOf(c.bit)
		got := d.sampleRead(c, gr, now, restoredAt)
		if got == 1 {
			words[a.Word] |= 1 << uint(a.Bit)
		} else {
			words[a.Word] &^= 1 << uint(a.Bit)
		}
	}
	rs := d.ensureRowState(gr)
	rs.restoredAt = now
	return words, nil
}

// WriteWord writes a single 64-bit word. The implied row activation restores
// the rest of the row first (sampling retention failures), as on hardware.
func (d *Device) WriteWord(bank, row, word int, val uint64, now float64) error {
	if err := d.checkRow(bank, row); err != nil {
		return err
	}
	if word < 0 || word >= d.geom.WordsPerRow {
		return fmt.Errorf("dram: word %d out of range", word)
	}
	gr := d.geom.GlobalRow(bank, row)
	// Activation restores the row: sample failures now so they stick.
	_, restoredAt, _ := d.stateOf(gr)
	for _, c := range d.byRow[gr] {
		d.sampleRead(c, gr, now, restoredAt)
	}
	rs := d.ensureRowState(gr)
	rs.restoredAt = now
	if rs.overrides == nil {
		rs.overrides = make(map[int]uint64)
	}
	rs.overrides[word] = val
	// The write replaces charge in the written word: clear stuck state for
	// weak cells inside it.
	for _, c := range d.byRow[gr] {
		a := d.geom.AddrOf(c.bit)
		if a.Word == word {
			c.stuck = -1
		}
	}
	d.contentEpoch++
	return nil
}

// ReadWord reads a single word (activating and restoring its row).
func (d *Device) ReadWord(bank, row, word int, now float64) (uint64, error) {
	words, err := d.ReadRow(bank, row, now)
	if err != nil {
		return 0, err
	}
	if word < 0 || word >= d.geom.WordsPerRow {
		return 0, fmt.Errorf("dram: word %d out of range", word)
	}
	return words[word], nil
}

func (d *Device) checkRow(bank, row int) error {
	if bank < 0 || bank >= d.geom.Banks || row < 0 || row >= d.geom.RowsPerBank {
		return fmt.Errorf("dram: bank %d row %d out of range for %v", bank, row, d.geom)
	}
	return nil
}

// Stats returns simple operation counters (reads performed, failures that
// have stuck so far).
func (d *Device) Stats() (readPasses, totalFlips uint64) {
	return d.readsDone, d.flipsSoFar
}

// ContentSnapshot captures the logical content of a device at a moment: the
// bulk pattern, per-row deviations, and the stuck state of every weak cell.
// It models the paper's footnote-4 "save all DRAM data to secondary
// storage" step: a controller streams the data out before profiling and
// back in afterwards (the memctrl layer charges the streaming time).
type ContentSnapshot struct {
	bulkData RowData
	rows     map[uint32]*rowState
	stuck    []int8
}

// SnapshotContent captures the device's current logical content.
func (d *Device) SnapshotContent() *ContentSnapshot {
	snap := &ContentSnapshot{
		bulkData: d.bulkData,
		rows:     make(map[uint32]*rowState, len(d.rows)),
		stuck:    make([]int8, len(d.weak)),
	}
	for k, rs := range d.rows {
		cp := &rowState{data: rs.data, restoredAt: rs.restoredAt}
		if rs.overrides != nil {
			cp.overrides = make(map[int]uint64, len(rs.overrides))
			for w, v := range rs.overrides {
				cp.overrides[w] = v
			}
		}
		snap.rows[k] = cp
	}
	for i, c := range d.weak {
		snap.stuck[i] = c.stuck
	}
	return snap
}

// RestoreContent writes a snapshot back into the device at simulated time
// now. Restoring is a full write of every row: charge is fresh everywhere
// (restoredAt = now), exactly as if the controller streamed the saved data
// back in. Previously stuck (corrupted) values are restored verbatim — the
// save captured whatever the cells held, including earlier corruption.
func (d *Device) RestoreContent(snap *ContentSnapshot, now float64) error {
	if snap == nil {
		return fmt.Errorf("dram: nil snapshot")
	}
	if len(snap.stuck) != len(d.weak) {
		return fmt.Errorf("dram: snapshot from a different device (weak population %d vs %d)",
			len(snap.stuck), len(d.weak))
	}
	d.bulkData = snap.bulkData
	d.bulkComparable = comparableRowData(snap.bulkData)
	d.bulkTime = now
	d.rows = make(map[uint32]*rowState, len(snap.rows))
	for k, rs := range snap.rows {
		cp := &rowState{data: rs.data, restoredAt: now}
		if rs.overrides != nil {
			cp.overrides = make(map[int]uint64, len(rs.overrides))
			for w, v := range rs.overrides {
				cp.overrides[w] = v
			}
		}
		d.rows[k] = cp
	}
	// Rebuild the stuck overlay to mirror the snapshot's corruption.
	for _, c := range d.stuckList {
		c.inStuckList = false
	}
	d.stuckList = d.stuckList[:0]
	for i, c := range d.weak {
		c.stuck = snap.stuck[i]
		if c.stuck >= 0 {
			c.inStuckList = true
			d.stuckList = append(d.stuckList, c)
		}
	}
	d.contentEpoch++
	return nil
}
