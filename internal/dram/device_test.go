package dram

import (
	"math"
	"testing"

	"reaper/internal/patterns"
)

// testDevice builds a small chip with an amplified weak population so tests
// have statistically meaningful failure counts.
func testDevice(t testing.TB, seed uint64, mutate func(*Config)) *Device {
	t.Helper()
	cfg := Config{
		Geometry:  Geometry{Banks: 8, RowsPerBank: 64, WordsPerRow: 256},
		Vendor:    VendorB(),
		Seed:      seed,
		WeakScale: 20,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	d, err := NewDevice(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// countFails runs one write/wait/read pass and returns the failing bits.
func countFails(d *Device, p patterns.Pattern, wait float64, now float64) []uint64 {
	d.WriteAll(p, now)
	return d.ReadCompareAll(now + wait)
}

func TestNewDeviceValidation(t *testing.T) {
	_, err := NewDevice(Config{Geometry: Geometry{}, Vendor: VendorB()})
	if err == nil {
		t.Error("invalid geometry not rejected")
	}
	_, err = NewDevice(Config{
		Geometry: Geometry{Banks: 1, RowsPerBank: 1, WordsPerRow: 1},
		Vendor:   VendorParams{},
	})
	if err == nil {
		t.Error("invalid vendor not rejected")
	}
	bad := Config{
		Geometry:     Geometry{Banks: 1, RowsPerBank: 1, WordsPerRow: 1},
		Vendor:       VendorB(),
		MinRetention: 5,
		MaxRetention: 1,
	}
	if _, err = NewDevice(bad); err == nil {
		t.Error("inverted retention domain not rejected")
	}
}

func TestWeakPopulationSize(t *testing.T) {
	d := testDevice(t, 1, nil)
	cfg := d.cfg
	expected := float64(cfg.Geometry.TotalBits()) * cfg.Vendor.BER(cfg.MaxRetention, RefTempC) * cfg.WeakScale
	n := float64(d.WeakCellCount())
	// The latent VRT reservoir adds on top; allow a wide band.
	if n < expected*0.7 || n > expected*2.5 {
		t.Errorf("weak cell count %v far from base expectation %v", n, expected)
	}
	if n < 500 {
		t.Fatalf("test device too small for statistics: %v weak cells", n)
	}
}

func TestDeterministicPopulation(t *testing.T) {
	a := testDevice(t, 42, nil)
	b := testDevice(t, 42, nil)
	if a.WeakCellCount() != b.WeakCellCount() {
		t.Fatal("same seed, different weak populations")
	}
	ca, cb := a.Cells(0), b.Cells(0)
	for i := range ca {
		if ca[i] != cb[i] {
			t.Fatalf("cell %d differs between same-seed devices", i)
		}
	}
	// And the same experiment gives the same failures.
	fa := countFails(a, patterns.Checkerboard(), 2.048, 0)
	fb := countFails(b, patterns.Checkerboard(), 2.048, 0)
	if len(fa) != len(fb) {
		t.Fatalf("same-seed devices fail differently: %d vs %d", len(fa), len(fb))
	}
	for i := range fa {
		if fa[i] != fb[i] {
			t.Fatal("same-seed devices fail at different bits")
		}
	}
}

func TestNoFailuresAtDefaultInterval(t *testing.T) {
	d := testDevice(t, 2, nil)
	fails := countFails(d, patterns.Checkerboard(), 0.064, 0)
	if len(fails) != 0 {
		t.Errorf("%d failures at the default 64ms interval, want 0", len(fails))
	}
}

func TestFailuresGrowWithInterval(t *testing.T) {
	d := testDevice(t, 3, nil)
	prev := -1
	now := 0.0
	for _, wait := range []float64{0.512, 1.024, 2.048, 4.096} {
		fails := countFails(d, patterns.Random(7), wait, now)
		now += wait + 1
		if len(fails) <= prev {
			t.Errorf("failures did not grow: %d at %vs (prev %d)", len(fails), wait, prev)
		}
		prev = len(fails)
	}
	if prev < 50 {
		t.Errorf("too few failures at 4096ms for a meaningful test: %d", prev)
	}
}

func TestFailuresGrowWithTemperature(t *testing.T) {
	d := testDevice(t, 4, nil)
	counts := make(map[float64]int)
	now := 0.0
	for _, temp := range []float64{45, 55} {
		d.SetTemperature(temp)
		// Average over several iterations to smooth Bernoulli noise.
		total := 0
		for it := 0; it < 4; it++ {
			total += len(countFails(d, patterns.Random(uint64(it)), 1.024, now))
			now += 2
		}
		counts[temp] = total
	}
	if counts[55] < counts[45]*4 {
		t.Errorf("temperature scaling too weak: %d @45C vs %d @55C (want ~7x)",
			counts[45], counts[55])
	}
}

func TestChargedValueAsymmetry(t *testing.T) {
	// Solid-1 should find (mostly) true-cells and solid-0 anti-cells, with
	// almost no overlap.
	d := testDevice(t, 5, nil)
	f1 := countFails(d, patterns.Solid1(), 2.048, 0)
	f0 := countFails(d, patterns.Solid0(), 2.048, 10)
	set1 := make(map[uint64]bool, len(f1))
	for _, b := range f1 {
		set1[b] = true
	}
	overlap := 0
	for _, b := range f0 {
		if set1[b] {
			overlap++
		}
	}
	if len(f1) == 0 || len(f0) == 0 {
		t.Fatalf("expected failures from both polarities: %d / %d", len(f1), len(f0))
	}
	if overlap > 0 {
		t.Errorf("solid0 and solid1 failures overlap at %d cells; polarities should be disjoint", overlap)
	}
}

func TestPatternAndInverseCoverMoreThanEither(t *testing.T) {
	d := testDevice(t, 6, nil)
	p := patterns.Checkerboard()
	f := countFails(d, p, 2.048, 0)
	fi := countFails(d, patterns.Invert(p), 2.048, 10)
	union := make(map[uint64]bool)
	for _, b := range f {
		union[b] = true
	}
	for _, b := range fi {
		union[b] = true
	}
	if len(union) <= len(f) || len(union) <= len(fi) {
		t.Errorf("inverse pattern added nothing: %d + %d -> %d", len(f), len(fi), len(union))
	}
}

func TestStuckFailurePersistsUntilRewrite(t *testing.T) {
	d := testDevice(t, 7, nil)
	d.WriteAll(patterns.Solid1(), 0)
	fails := d.ReadCompareAll(4.096)
	if len(fails) == 0 {
		t.Fatal("need at least one failure for this test")
	}
	// An immediate re-read (no retention time elapsed) must still report
	// the same failures: the read restored the wrong values.
	again := d.ReadCompareAll(4.097)
	stillFailing := make(map[uint64]bool)
	for _, b := range again {
		stillFailing[b] = true
	}
	for _, b := range fails {
		if !stillFailing[b] {
			t.Fatalf("bit %d healed without a write", b)
		}
	}
	// Rewriting clears them.
	d.WriteAll(patterns.Solid1(), 5)
	if f := d.ReadCompareAll(5.01); len(f) != 0 {
		t.Errorf("%d failures right after rewrite, want 0", len(f))
	}
}

func TestRowLevelReadWrite(t *testing.T) {
	d := testDevice(t, 8, nil)
	words := make([]uint64, d.Geometry().WordsPerRow)
	for i := range words {
		words[i] = uint64(i) * 0x0101010101010101
	}
	if err := d.WriteRow(0, 5, words, 0); err != nil {
		t.Fatal(err)
	}
	got, err := d.ReadRow(0, 5, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	for i := range words {
		if got[i] != words[i] {
			t.Fatalf("word %d = %x, want %x", i, got[i], words[i])
		}
	}
	// Out-of-range accesses error.
	if err := d.WriteRow(99, 0, words, 0); err == nil {
		t.Error("bad bank not rejected")
	}
	if _, err := d.ReadRow(0, 1<<20, 0); err == nil {
		t.Error("bad row not rejected")
	}
	if err := d.WriteRow(0, 0, words[:1], 0); err == nil {
		t.Error("short row not rejected")
	}
}

func TestWordLevelReadWrite(t *testing.T) {
	d := testDevice(t, 9, nil)
	if err := d.WriteWord(1, 2, 3, 0xdeadbeefcafef00d, 0); err != nil {
		t.Fatal(err)
	}
	v, err := d.ReadWord(1, 2, 3, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0xdeadbeefcafef00d {
		t.Fatalf("ReadWord = %x", v)
	}
	// Unwritten words in the same row read the bulk content (zero).
	v, err = d.ReadWord(1, 2, 4, 0.002)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0 {
		t.Fatalf("unwritten word = %x, want 0", v)
	}
	if err := d.WriteWord(0, 0, -1, 0, 0); err == nil {
		t.Error("bad word index not rejected")
	}
	if _, err := d.ReadWord(0, 0, 1<<20, 0); err == nil {
		t.Error("bad word index not rejected on read")
	}
}

func TestRowWriteIsolatedFromBulk(t *testing.T) {
	d := testDevice(t, 10, nil)
	d.WriteAll(patterns.Solid1(), 0)
	words := make([]uint64, d.Geometry().WordsPerRow)
	if err := d.WriteRow(3, 3, words, 1); err != nil {
		t.Fatal(err)
	}
	got, err := d.ReadRow(3, 3, 1.001)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 0 {
		t.Error("row write did not take effect")
	}
	other, err := d.ReadRow(3, 4, 1.002)
	if err != nil {
		t.Fatal(err)
	}
	if other[0] != ^uint64(0) {
		t.Error("bulk content corrupted by row write")
	}
}

func TestAutoRefreshProtectsData(t *testing.T) {
	d := testDevice(t, 11, nil)
	d.SetAutoRefresh(0.064)
	d.WriteAll(patterns.Checkerboard(), 0)
	// A full simulated hour under 64ms auto-refresh: nothing may fail.
	fails := d.ReadCompareAll(3600)
	if len(fails) != 0 {
		t.Errorf("%d failures after 1h under 64ms auto-refresh, want 0", len(fails))
	}
}

func TestAutoRefreshAtExtendedIntervalAccumulates(t *testing.T) {
	d := testDevice(t, 12, nil)
	d.SetAutoRefresh(2.048)
	d.WriteAll(patterns.Random(1), 0)
	fails := d.ReadCompareAll(3600)
	if len(fails) == 0 {
		t.Error("no failures after 1h at 2048ms auto-refresh; extended-interval operation should fail")
	}
	// And more than a single no-refresh pass of 2.048s would give, because
	// every refresh cycle was a fresh trial.
	d2 := testDevice(t, 12, nil)
	single := countFails(d2, patterns.Random(1), 2.048, 0)
	if len(fails) <= len(single) {
		t.Errorf("auto-refresh accumulation (%d) not above single-pass failures (%d)",
			len(fails), len(single))
	}
}

func TestSetAutoRefreshNegativeClamped(t *testing.T) {
	d := testDevice(t, 13, nil)
	d.SetAutoRefresh(-5)
	if d.AutoRefresh() != 0 {
		t.Error("negative auto-refresh interval not clamped to 0")
	}
}

func TestVRTNewFailuresAccumulate(t *testing.T) {
	d := testDevice(t, 14, func(c *Config) { c.WeakScale = 100 })
	const wait = 2.048
	seen := make(map[uint64]bool)
	now := 0.0
	firstDay := 0
	// Two simulated days of repeated passes, 20 minutes apart.
	var newPerHalf [2]int
	for half := 0; half < 2; half++ {
		for i := 0; i < 72; i++ {
			d.WriteAll(patterns.Random(uint64(i)), now)
			for _, b := range d.ReadCompareAll(now + wait) {
				if !seen[b] {
					seen[b] = true
					newPerHalf[half]++
				}
			}
			now += 1200
		}
		if half == 0 {
			firstDay = len(seen)
		}
	}
	if firstDay == 0 {
		t.Fatal("no failures at all")
	}
	// VRT must keep producing new failures in the second day, after the
	// base population has been fully discovered.
	if newPerHalf[1] == 0 {
		t.Error("no new failures in the second simulated day; VRT accumulation missing")
	}
}

func TestDisableVRTStopsAccumulation(t *testing.T) {
	d := testDevice(t, 15, func(c *Config) { c.DisableVRT = true; c.WeakScale = 100 })
	for _, c := range d.Cells(0) {
		if c.VRT {
			t.Fatal("DisableVRT device has VRT cells")
		}
	}
}

func TestDisableDPDRemovesPatternSensitivity(t *testing.T) {
	d := testDevice(t, 16, func(c *Config) { c.DisableDPD = true })
	for _, c := range d.Cells(0) {
		if c.DPDSens != 0 {
			t.Fatal("DisableDPD device has DPD-sensitive cells")
		}
	}
}

func TestOracleMonotonicInInterval(t *testing.T) {
	d := testDevice(t, 17, nil)
	prev := d.TrueFailingSet(0.512, 45, 0, OracleThreshold)
	for _, tREFI := range []float64{1.024, 2.048, 4.096} {
		cur := d.TrueFailingSet(tREFI, 45, 0, OracleThreshold)
		if len(cur) < len(prev) {
			t.Errorf("oracle set shrank from %d to %d at %vs", len(prev), len(cur), tREFI)
		}
		// Superset check.
		in := make(map[uint64]bool, len(cur))
		for _, b := range cur {
			in[b] = true
		}
		missing := 0
		for _, b := range prev {
			if !in[b] {
				missing++
			}
		}
		// VRT state changes aside (time is frozen here), the set must nest.
		if missing > 0 {
			t.Errorf("%d cells failing at lower interval missing at %vs", missing, tREFI)
		}
		prev = cur
	}
}

func TestOracleMonotonicInTemperature(t *testing.T) {
	d := testDevice(t, 18, nil)
	n45 := len(d.TrueFailingSet(1.024, 45, 0, OracleThreshold))
	n55 := len(d.TrueFailingSet(1.024, 55, 0, OracleThreshold))
	if n55 <= n45 {
		t.Errorf("oracle set did not grow with temperature: %d @45C vs %d @55C", n45, n55)
	}
}

func TestCellFailProbLookup(t *testing.T) {
	d := testDevice(t, 19, nil)
	cells := d.Cells(0)
	if len(cells) == 0 {
		t.Fatal("no weak cells")
	}
	c := cells[0]
	p := d.CellFailProb(c.Bit, c.Mu*2, 45, 0)
	if p < 0.5 {
		t.Errorf("fail prob at 2x the cell's mean = %v, want >= 0.5", p)
	}
	if d.CellFailProb(c.Bit+1, 10, 45, 0) != 0 && d.CellFailProb(c.Bit-1, 10, 45, 0) != 0 {
		// Neighbouring bits are almost surely strong; at least one of the
		// two probes must be a strong cell returning 0.
		t.Error("strong-cell probe returned nonzero probability")
	}
}

func TestMeasuredCDFIsNormalPerCell(t *testing.T) {
	// Reproduce the Figure 6a measurement in miniature: for one weak cell,
	// the fraction of failing reads at interval t must follow the cell's
	// normal CDF.
	d := testDevice(t, 20, func(c *Config) { c.DisableVRT = true; c.DisableDPD = true })
	cells := d.Cells(0)
	var pick CellInfo
	for _, c := range cells {
		if c.Mu > 1 && c.Mu < 3 && c.ChargedVal == 1 {
			pick = c
			break
		}
	}
	if pick.Bit == 0 && pick.Mu == 0 {
		t.Skip("no suitable cell in population")
	}
	const iters = 400
	now := 0.0
	observed := 0
	at := pick.Mu // test exactly at the mean: expect ~50% failure rate
	for i := 0; i < iters; i++ {
		d.WriteAll(patterns.Solid1(), now)
		for _, b := range d.ReadCompareAll(now + at) {
			if b == pick.Bit {
				observed++
			}
		}
		now += at + 1
	}
	frac := float64(observed) / iters
	if math.Abs(frac-0.5) > 0.12 {
		t.Errorf("failure fraction at cell mean = %v, want ~0.5", frac)
	}
}

func TestStatsCounters(t *testing.T) {
	d := testDevice(t, 21, nil)
	d.WriteAll(patterns.Solid1(), 0)
	d.ReadCompareAll(4.096)
	passes, flips := d.Stats()
	if passes != 1 {
		t.Errorf("read passes = %d, want 1", passes)
	}
	if flips == 0 {
		t.Error("expected some flips at 4096ms")
	}
}
