package dram

import (
	"fmt"
	"testing"

	"reaper/internal/patterns"
)

// benchReadDevice builds the chip the read-path benchmarks use: large enough
// that a pass touches thousands of weak cells, matching the per-pass work of
// the experiment harnesses.
func benchReadDevice(b *testing.B) *Device {
	b.Helper()
	return testDevice(b, 7, func(c *Config) {
		c.Geometry = Geometry{Banks: 8, RowsPerBank: 256, WordsPerRow: 256}
		c.WeakScale = 30
	})
}

// BenchmarkReadCompareAll measures one full write/wait/read profiling pass —
// the innermost loop of every experiment in the repository. The 3-pattern
// cycle at a fixed cadence revisits sweep signatures, so from the fourth op
// on this measures the product path with the incremental round cache hot;
// BenchmarkReadCompareAllFresh is the cache-miss (full classification)
// counterpart.
func BenchmarkReadCompareAll(b *testing.B) {
	d := benchReadDevice(b)
	ps := []RowData{patterns.Solid1(), patterns.Checkerboard(), patterns.Random(1)}
	now := 0.0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.WriteAll(ps[i%len(ps)], now)
		now += 2.048
		fails := d.ReadCompareAll(now)
		now += 0.5
		_ = fails
	}
}

// BenchmarkReadCompareAllAutoRefresh measures the refresh-enabled read path
// (the multi-cycle stick-probability branch).
func BenchmarkReadCompareAllAutoRefresh(b *testing.B) {
	d := benchReadDevice(b)
	d.SetAutoRefresh(0.064)
	now := 0.0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.WriteAll(patterns.Checkerboard(), now)
		now += 2.048
		_ = d.ReadCompareAll(now)
		now += 0.5
	}
}

// BenchmarkReadCompareAllFresh measures the full-classification sweep: a
// fresh random pattern every op defeats the round cache, so the per-op cost
// is the sparse-index cursor, per-candidate threshold tests, DPD hashes, and
// band sampling.
func BenchmarkReadCompareAllFresh(b *testing.B) {
	d := benchReadDevice(b)
	now := 0.0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.WriteAll(patterns.Random(uint64(i)), now)
		now += 2.048
		_ = d.ReadCompareAll(now)
		now += 0.5
	}
}

// BenchmarkReadCompareAllSteadyState measures the incremental fast path in
// isolation: a steady profiling cadence (same pattern, wait, and conditions
// every round) after one warm-up round, so every timed op replays a cached
// classification and only the sampling band draws.
func BenchmarkReadCompareAllSteadyState(b *testing.B) {
	d := benchReadDevice(b)
	pat := patterns.Checkerboard()
	now := 0.0
	d.WriteAll(pat, now)
	now += 2.048
	_ = d.ReadCompareAll(now)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.WriteAll(pat, now)
		now += 2.048
		_ = d.ReadCompareAll(now)
	}
	b.StopTimer()
	if d.IncrStats().FastSweeps == 0 {
		b.Fatal("steady-state benchmark never hit the round cache")
	}
}

// BenchmarkReadCompareAllBanked measures the full-classification sweep in
// BankStreams mode at several worker counts. Results are byte-identical
// across the counts; only the wall clock moves (and only on multi-core
// hosts — workers cannot beat the machine).
func BenchmarkReadCompareAllBanked(b *testing.B) {
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			d := testDevice(b, 7, func(c *Config) {
				c.Geometry = Geometry{Banks: 8, RowsPerBank: 256, WordsPerRow: 256}
				c.WeakScale = 30
				c.BankStreams = true
			})
			d.SetSweepWorkers(workers)
			now := 0.0
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d.WriteAll(patterns.Random(uint64(i)), now)
				now += 2.048
				_ = d.ReadCompareAll(now)
				now += 0.5
			}
		})
	}
}

// BenchmarkNewDevice measures fleet-member construction from the analytic
// distributions; BenchmarkNewDeviceFromTemplate is the amortized path that
// replaces the expensive per-cell draws with table picks.
func BenchmarkNewDevice(b *testing.B) {
	cfg := Config{
		Geometry:  Geometry{Banks: 8, RowsPerBank: 256, WordsPerRow: 256},
		Vendor:    VendorB(),
		WeakScale: 100,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i + 1)
		if _, err := NewDevice(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNewDeviceFromTemplate measures template-amortized construction at
// the same density as BenchmarkNewDevice (template build cost excluded: it is
// paid once per vendor, not per chip).
func BenchmarkNewDeviceFromTemplate(b *testing.B) {
	cfg := Config{
		Geometry:  Geometry{Banks: 8, RowsPerBank: 256, WordsPerRow: 256},
		Vendor:    VendorB(),
		WeakScale: 100,
	}
	tpl, err := NewPopulationTemplate(cfg, 1<<16, 99)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i + 1)
		if _, err := NewDeviceFromTemplate(tpl, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRestoreAll measures a full refresh sweep without failure
// collection — RestoreAll used to pay ReadCompareAll's fails-slice
// allocation and sort just to discard them; the no-collect sweep pays
// neither.
func BenchmarkRestoreAll(b *testing.B) {
	d := benchReadDevice(b)
	ps := []RowData{patterns.Solid1(), patterns.Checkerboard(), patterns.Random(1)}
	now := 0.0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.WriteAll(ps[i%len(ps)], now)
		now += 2.048
		d.RestoreAll(now)
		now += 0.5
	}
}

// BenchmarkReadRow measures the single-row activation path used by the
// mitigation and scrubbing layers.
func BenchmarkReadRow(b *testing.B) {
	d := benchReadDevice(b)
	d.WriteAll(patterns.Checkerboard(), 0)
	now := 1.0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.ReadRow(i%d.Geometry().Banks, i%d.Geometry().RowsPerBank, now); err != nil {
			b.Fatal(err)
		}
		now += 0.001
	}
}
