package dram

import (
	"testing"

	"reaper/internal/patterns"
)

// benchReadDevice builds the chip the read-path benchmarks use: large enough
// that a pass touches thousands of weak cells, matching the per-pass work of
// the experiment harnesses.
func benchReadDevice(b *testing.B) *Device {
	b.Helper()
	return testDevice(b, 7, func(c *Config) {
		c.Geometry = Geometry{Banks: 8, RowsPerBank: 256, WordsPerRow: 256}
		c.WeakScale = 30
	})
}

// BenchmarkReadCompareAll measures one full write/wait/read profiling pass —
// the innermost loop of every experiment in the repository. The per-op cost
// is dominated by per-weak-cell sampling: row-state lookup, neighbourhood
// code reconstruction, and the failure CDF.
func BenchmarkReadCompareAll(b *testing.B) {
	d := benchReadDevice(b)
	ps := []RowData{patterns.Solid1(), patterns.Checkerboard(), patterns.Random(1)}
	now := 0.0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.WriteAll(ps[i%len(ps)], now)
		now += 2.048
		fails := d.ReadCompareAll(now)
		now += 0.5
		_ = fails
	}
}

// BenchmarkReadCompareAllAutoRefresh measures the refresh-enabled read path
// (the multi-cycle stick-probability branch).
func BenchmarkReadCompareAllAutoRefresh(b *testing.B) {
	d := benchReadDevice(b)
	d.SetAutoRefresh(0.064)
	now := 0.0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.WriteAll(patterns.Checkerboard(), now)
		now += 2.048
		_ = d.ReadCompareAll(now)
		now += 0.5
	}
}

// BenchmarkRestoreAll measures a full refresh sweep without failure
// collection — RestoreAll used to pay ReadCompareAll's fails-slice
// allocation and sort just to discard them; the no-collect sweep pays
// neither.
func BenchmarkRestoreAll(b *testing.B) {
	d := benchReadDevice(b)
	ps := []RowData{patterns.Solid1(), patterns.Checkerboard(), patterns.Random(1)}
	now := 0.0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.WriteAll(ps[i%len(ps)], now)
		now += 2.048
		d.RestoreAll(now)
		now += 0.5
	}
}

// BenchmarkReadRow measures the single-row activation path used by the
// mitigation and scrubbing layers.
func BenchmarkReadRow(b *testing.B) {
	d := benchReadDevice(b)
	d.WriteAll(patterns.Checkerboard(), 0)
	now := 1.0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.ReadRow(i%d.Geometry().Banks, i%d.Geometry().RowsPerBank, now); err != nil {
			b.Fatal(err)
		}
		now += 0.001
	}
}
