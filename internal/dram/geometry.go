// Package dram implements a behavioural model of an LPDDR4 DRAM device with
// realistic data-retention failures. It is the synthetic stand-in for the 368
// real chips characterized by the REAPER paper (ISCA 2017): profiling code
// interacts with it exactly as it would with hardware — write data, let time
// pass without refresh, read back and compare — while the device's latent
// cell population reproduces the paper's measured statistics:
//
//   - Each weak cell fails with a probability that is a normal CDF in the
//     time since its last restore (paper Section 5.5, Figure 6a).
//   - Per-cell CDF standard deviations are lognormally distributed
//     (Figure 6b), and retention-time means follow a power-law tail
//     calibrated to the paper's bit-error-rate curve (Figure 2).
//   - Raising the temperature scales the failure population exponentially
//     with the per-vendor coefficients of Equation 1, shifting per-cell
//     (mu, sigma) left and narrower (Figure 7).
//   - A subpopulation of cells exhibits variable retention time (VRT):
//     memoryless switching between retention states, which produces the
//     endless steady-state accumulation of new failures (Figure 3) at a
//     polynomial rate in the refresh interval (Figure 4).
//   - Each cell's effective retention depends on the stored data pattern in
//     its neighbourhood (DPD, Figures 5), so no single pattern finds all
//     failures.
//
// Strong cells — the overwhelming majority — never fail, and are therefore
// never materialized: the device stores row contents as pattern descriptors
// plus sparse overrides, which lets it model multi-gigabit chips in a few
// megabytes and lets whole-chip profiling passes run in O(weak cells).
package dram

import "fmt"

// Geometry describes the logical organization of one DRAM device.
// Data is addressed as 64-bit words: a row holds WordsPerRow words.
type Geometry struct {
	Banks       int
	RowsPerBank int
	WordsPerRow int
}

// WordBits is the width of the device's addressable word.
const WordBits = 64

// Validate reports whether the geometry is usable.
func (g Geometry) Validate() error {
	if g.Banks <= 0 || g.RowsPerBank <= 0 || g.WordsPerRow <= 0 {
		return fmt.Errorf("dram: invalid geometry %+v", g)
	}
	return nil
}

// TotalRows returns the number of rows across all banks.
func (g Geometry) TotalRows() int { return g.Banks * g.RowsPerBank }

// RowBits returns the number of bits in one row.
func (g Geometry) RowBits() int { return g.WordsPerRow * WordBits }

// TotalBits returns the device capacity in bits.
func (g Geometry) TotalBits() int64 {
	return int64(g.TotalRows()) * int64(g.RowBits())
}

// TotalBytes returns the device capacity in bytes.
func (g Geometry) TotalBytes() int64 { return g.TotalBits() / 8 }

// String renders the geometry in a human-readable form, e.g. "8b x 4096r x 2KB".
func (g Geometry) String() string {
	return fmt.Sprintf("%d banks x %d rows x %d B/row (%.1f Mbit)",
		g.Banks, g.RowsPerBank, g.RowBits()/8, float64(g.TotalBits())/(1<<20))
}

// GeometryForBits returns a geometry with approximately the requested number
// of bits, using 8 banks and 2KB rows (the LPDDR4 configuration of the
// paper's Table 2). The result is rounded up to a whole number of rows per
// bank, so TotalBits() >= bits.
func GeometryForBits(bits int64) Geometry {
	const banks = 8
	const wordsPerRow = 256 // 2KB rows
	rowBits := int64(wordsPerRow * WordBits)
	rows := (bits + banks*rowBits - 1) / (banks * rowBits)
	if rows < 1 {
		rows = 1
	}
	return Geometry{Banks: banks, RowsPerBank: int(rows), WordsPerRow: wordsPerRow}
}

// Addr identifies a single bit in the device.
type Addr struct {
	Bank int
	Row  int
	Word int // word index within the row
	Bit  int // bit index within the word, 0 = LSB
}

// BitIndex converts an Addr to a global linear bit index.
func (g Geometry) BitIndex(a Addr) uint64 {
	row := uint64(a.Bank)*uint64(g.RowsPerBank) + uint64(a.Row)
	return row*uint64(g.RowBits()) + uint64(a.Word)*WordBits + uint64(a.Bit)
}

// AddrOf converts a global linear bit index back to an Addr.
func (g Geometry) AddrOf(bit uint64) Addr {
	rowBits := uint64(g.RowBits())
	row := bit / rowBits
	inRow := bit % rowBits
	return Addr{
		Bank: int(row / uint64(g.RowsPerBank)),
		Row:  int(row % uint64(g.RowsPerBank)),
		Word: int(inRow / WordBits),
		Bit:  int(inRow % WordBits),
	}
}

// GlobalRow returns the flat row index (bank-major) of an address.
func (g Geometry) GlobalRow(bank, row int) uint32 {
	return uint32(bank*g.RowsPerBank + row)
}

// rowOfBit returns the flat row index containing a global bit index.
func (g Geometry) rowOfBit(bit uint64) uint32 {
	return uint32(bit / uint64(g.RowBits()))
}
