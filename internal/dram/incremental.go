package dram

import (
	"cmp"
	"math"
	"reflect"
	"slices"
	"sort"

	"reaper/internal/rng"
)

// This file implements incremental re-profiling: a cache of sweep
// classifications keyed by the sweep's full condition signature.
//
// Classification — the split of the weak population into skipped (p = 0),
// deterministically flipped (p = 1), and sampling-band (0 < p < 1) cells —
// is a pure function of the stored content, the temperature, the elapsed
// window, the auto-refresh interval, and immutable per-cell parameters. A
// steady-state profiling cadence (same pattern, same wait, same conditions
// every round) therefore reclassifies identically every round; only the band
// sampling actually consumes randomness. The cache stores one entry per
// distinct signature and replays it on a hit, skipping the O(candidates)
// classification (threshold tests, DPD hashes, band sort) entirely.
//
// Replay is byte-identical to the full path by construction, so the cache is
// always on:
//
//   - Draws: only band cells draw, in bit order, and the cached band is the
//     exact bit-sorted band the full path would rebuild.
//   - Fail lists and counters: deterministic flips replay from the entry;
//     stuck cells are skipped exactly where the full path skips them (the
//     entry is built stuck-free, and a small adjustment below reconciles the
//     Skipped counter against the live stuck overlay).
//
// Invalidation rules (what dirties a cell):
//
//   - Content, temperature, elapsed window, auto-refresh: part of the key —
//     a change is a different signature, not an invalidation.
//   - Injected cells (inject.go): appended to a device-wide dirty list; each
//     entry records the list length it has folded in and classifies only the
//     tail on its next hit. The per-cell key test used for that fold is the
//     same conservative activation-key cursor the full path binary-searches.
//   - RescrambleDPD: mutates dpdSeed, which classification hashes — the only
//     event that silently changes an existing cell's classification, so it
//     drops the whole cache.
//   - VRT state and stuck state: deliberately NOT invalidation events. VRT
//     cells are always band-classified (their state matters only at sampling
//     time), and stuck cells are reconciled at replay.
//   - Partial writes (WriteRow/WriteWord) create deviant rows, which block
//     both building and hitting the cache until the next bulk write clears
//     them.
const (
	// maxRoundEntries bounds the cache; profiling cadences cycle a dozen
	// patterns at a handful of conditions. Overflow drops the cache rather
	// than evicting, keeping the dirty-list bookkeeping trivially consistent.
	maxRoundEntries = 64
	// maxDirtyCells bounds the dirty tail an entry may have to fold; beyond
	// it a full reclassification is cheaper than carrying the list.
	maxDirtyCells = 4096
)

// roundKey is the complete condition signature of a full-device sweep over
// undeviated content. Content identity uses the descriptor's == (patterns
// are small comparable structs); non-comparable descriptors simply never
// enter the cache.
type roundKey struct {
	data    RowData
	tempC   float64
	elapsed float64
	autoRef float64
}

// roundEntry is one cached classification: the skip total, the deterministic
// flips (any order), the sampling band (bit order), the band's memoized draw
// probabilities, and how much of the device dirty list it has folded in.
type roundEntry struct {
	skipped  uint64
	flips    []flipRec
	band     []*weakCell
	probs    []bandProb
	dirtyLen int
}

// flipRec is one deterministic flip with its wrong value pre-resolved (the
// stored bit is a pure function of the round key, so replay need not re-read
// the content descriptor).
type flipRec struct {
	c     *weakCell
	wrong uint8
}

// bandProb memoizes one non-VRT band cell's draw probabilities at the
// entry's signature. Everything the sampling branch of sampleReadBitOn
// computes — the neighbourhood code, the DPD hash, the temperature scale,
// the normal CDF — is a pure function of the round key for a non-VRT cell,
// so replay can skip straight to the Bernoulli draws. Filled lazily on first
// replay (ok=false until then; VRT cells never memoize: their retention mean
// moves with simulated time).
type bandProb struct {
	// p1 is the single-read failure probability, or the any-cycle stick
	// probability on the multi-cycle auto-refresh path (two=true); p2 is
	// then the residual-window probability of the second draw. written is
	// the cell's stored bit under the entry's content.
	p1, p2  float64
	written uint8
	two     bool
	ok      bool
}

// IncrStats counts, cumulatively over a device's lifetime, the incremental
// round-cache activity during full-device sweeps.
type IncrStats struct {
	// FastSweeps is sweeps served from a cached classification.
	FastSweeps uint64
	// FullSweeps is sweeps that ran the full classification.
	FullSweeps uint64
	// ReusedCells is flip and band dispositions replayed from cache entries.
	ReusedCells uint64
	// DirtyCells is injected cells classified on demand into live entries.
	DirtyCells uint64
}

// Add returns the element-wise sum of two stats (module-level aggregation).
func (s IncrStats) Add(o IncrStats) IncrStats {
	return IncrStats{
		FastSweeps:  s.FastSweeps + o.FastSweeps,
		FullSweeps:  s.FullSweeps + o.FullSweeps,
		ReusedCells: s.ReusedCells + o.ReusedCells,
		DirtyCells:  s.DirtyCells + o.DirtyCells,
	}
}

// Sub returns the element-wise difference s - o (per-round deltas).
func (s IncrStats) Sub(o IncrStats) IncrStats {
	return IncrStats{
		FastSweeps:  s.FastSweeps - o.FastSweeps,
		FullSweeps:  s.FullSweeps - o.FullSweeps,
		ReusedCells: s.ReusedCells - o.ReusedCells,
		DirtyCells:  s.DirtyCells - o.DirtyCells,
	}
}

// IncrStats returns the device's cumulative round-cache counters.
func (d *Device) IncrStats() IncrStats { return d.incr }

// SetRoundCache enables or disables the incremental round cache (enabled by
// default). Disabling drops any cached classifications. Results are
// byte-identical either way — the cache only skips provably unchanged work —
// which the incremental parity tests pin by running both settings in
// lockstep.
func (d *Device) SetRoundCache(on bool) {
	d.cacheOn = on
	if !on {
		d.rounds = nil
		d.dirtyCells = nil
	}
}

// comparableRowData reports whether a content descriptor's dynamic type
// supports ==, the identity test round keys and the WriteAll rewrite
// detection rely on.
func comparableRowData(data RowData) bool {
	return data != nil && reflect.TypeOf(data).Comparable()
}

// roundCacheable reports whether the classification about to run can be
// recorded: cache on, no deviant rows, no stuck overlay (entries are built
// stuck-free so replay can reconcile against any live overlay), and content
// the key can identify.
func (d *Device) roundCacheable() bool {
	return d.cacheOn && len(d.rows) == 0 && len(d.stuckList) == 0 && d.bulkComparable
}

// lookupRound returns the cached classification for the sweep signature, or
// nil when the sweep must classify in full.
func (d *Device) lookupRound(elapsed float64) *roundEntry {
	if !d.cacheOn || len(d.rounds) == 0 || len(d.rows) != 0 || !d.bulkComparable {
		return nil
	}
	return d.rounds[roundKey{data: d.bulkData, tempC: d.tempC, elapsed: elapsed, autoRef: d.autoRef}]
}

// storeRound records a freshly built classification. On overflow the whole
// cache is dropped first (see maxRoundEntries); the new entry then owns an
// empty dirty list.
func (d *Device) storeRound(key roundKey, e *roundEntry) {
	if d.rounds == nil {
		d.rounds = make(map[roundKey]*roundEntry)
	}
	if len(d.rounds) >= maxRoundEntries {
		clear(d.rounds)
		d.dirtyCells = d.dirtyCells[:0]
		e.dirtyLen = 0
	}
	// Flips are recorded in classification (key) order; bit-sort them once so
	// replay can interleave them with the (bit-sorted) band and emit fails in
	// bit order — the sweep epilogue's sort then sees already-sorted input.
	slices.SortFunc(e.flips, func(a, b flipRec) int { return cmp.Compare(a.c.bit, b.c.bit) })
	e.probs = make([]bandProb, len(e.band))
	d.rounds[key] = e
}

// invalidateRounds drops every cached classification and the dirty list
// (they are only meaningful relative to live entries).
func (d *Device) invalidateRounds() {
	if len(d.rounds) > 0 {
		clear(d.rounds)
	}
	d.dirtyCells = d.dirtyCells[:0]
}

// noteDirtyCell records a newly injected cell for incremental
// reclassification. Tracking is only needed while entries exist — an entry
// built later classifies the full population, injected cells included.
func (d *Device) noteDirtyCell(c *weakCell) {
	if !d.cacheOn || len(d.rounds) == 0 {
		return
	}
	if len(d.dirtyCells) >= maxDirtyCells {
		d.invalidateRounds()
		return
	}
	d.dirtyCells = append(d.dirtyCells, c)
}

// disposition is a cell's classification outcome at one sweep signature.
type disposition uint8

const (
	dispSkip disposition = iota
	dispFlip
	dispBand
)

// classifyBulk reproduces the candidate classification of classifySeq /
// runBankShard for one bulk-context cell, without counters or side effects.
// The expressions must stay bit-exact with those loops: replay correctness
// rests on this function reaching the same disposition the full path
// recorded.
func (d *Device) classifyBulk(c *weakCell, scale, eff float64) disposition {
	if c.vrt != nil {
		return dispBand
	}
	row := d.geom.rowOfBit(c.bit)
	a := d.geom.AddrOf(c.bit)
	written := uint8(d.bulkData.Word(row, a.Word) >> uint(a.Bit) & 1)
	if written != c.chargedVal {
		return dispSkip
	}
	code := d.neighborhoodCodeOf(c)
	mu := c.mu * scale * c.dpdFactor(code)
	sigma := c.sigma * scale
	if eff < mu-zClip*sigma {
		return dispSkip
	}
	if eff > mu+zClip*sigma {
		return dispFlip
	}
	return dispBand
}

// refreshRound folds the dirty-list tail the entry has not seen yet:
// injected cells are classified at the entry's signature and appended to its
// skip total, flips, or band (bit-sorted insert). The per-cell cursor test
// mirrors the binary-search predicate of the full path.
func (d *Device) refreshRound(e *roundEntry, scale, eff float64) {
	if e.dirtyLen >= len(d.dirtyCells) {
		return
	}
	for _, c := range d.dirtyCells[e.dirtyLen:] {
		d.incr.DirtyCells++
		if eff <= 0 || activationKey(c)*scale > eff {
			e.skipped++
			continue
		}
		switch d.classifyBulk(c, scale, eff) {
		case dispSkip:
			e.skipped++
		case dispFlip:
			row := d.geom.rowOfBit(c.bit)
			a := d.geom.AddrOf(c.bit)
			written := uint8(d.bulkData.Word(row, a.Word) >> uint(a.Bit) & 1)
			j := sort.Search(len(e.flips), func(i int) bool { return e.flips[i].c.bit >= c.bit })
			e.flips = slices.Insert(e.flips, j, flipRec{c, written ^ 1})
		case dispBand:
			j := sort.Search(len(e.band), func(i int) bool { return e.band[i].bit >= c.bit })
			e.band = slices.Insert(e.band, j, c)
			e.probs = slices.Insert(e.probs, j, bandProb{})
		}
	}
	e.dirtyLen = len(d.dirtyCells)
}

// sweepFromCache is the fast path of sweep: replay a cached classification
// instead of rebuilding it. Counters, fail lists, stuck bookkeeping, and the
// seed stream advance exactly as sweepClassify would advance them at the
// device's current state.
func (d *Device) sweepFromCache(e *roundEntry, now, scale, eff float64, collect bool, fails []uint64) []uint64 {
	d.refreshRound(e, scale, eff)
	d.incr.FastSweeps++
	d.incr.ReusedCells += uint64(len(e.flips) + len(e.band))

	// Skipped-counter parity with the full path at the live stuck overlay:
	// the full path skips a stuck candidate before any disposition counter,
	// while the (stuck-free) entry counted that cell wherever it classified.
	// Subtract the stuck cells the entry counted as skips; stuck cells beyond
	// the activation cursor are inside the bulk (len - k) skip on both paths
	// and need no adjustment, and stuck flip/band cells were never counted
	// as skips.
	skipped := e.skipped
	for _, c := range d.stuckList {
		if c.stuck < 0 {
			continue // stale entry; the full path classifies it normally too
		}
		if eff <= 0 || activationKey(c)*scale > eff {
			continue
		}
		if d.classifyBulk(c, scale, eff) == dispSkip {
			skipped--
		}
	}
	d.idx.Skipped += skipped

	// Band sampling and flip replay. The cached band is bit-sorted, so the
	// walk consumes the stream(s) exactly as the full path's merged walk
	// would (cache hits imply no deviant rows to merge). Flips consume no
	// draws, so interleaving them by bit is stream-neutral and keeps the
	// emitted fails bit-ordered — the epilogue sort's best case.
	if d.shardedMode() {
		for _, f := range e.flips {
			if f.c.stuck >= 0 {
				continue
			}
			d.markStuck(f.c, f.wrong)
			d.idx.Flipped++
			if collect {
				fails = append(fails, f.c.bit)
			}
		}
		return d.replayBandSharded(e, now, collect, fails)
	}
	fi := 0
	for bi, c := range e.band {
		for fi < len(e.flips) && e.flips[fi].c.bit < c.bit {
			fails = d.replayFlip(e.flips[fi], collect, fails)
			fi++
		}
		if c.stuck >= 0 {
			continue
		}
		d.idx.Sampled++
		got, written, flipped := d.sampleBandCached(e, bi, c, now, d.srcFor(c.bit))
		if flipped {
			d.noteStuck(c)
		}
		if collect && got != written {
			fails = append(fails, c.bit)
		}
	}
	for ; fi < len(e.flips); fi++ {
		fails = d.replayFlip(e.flips[fi], collect, fails)
	}
	return fails
}

// replayFlip commits one cached deterministic flip (no draws).
func (d *Device) replayFlip(f flipRec, collect bool, fails []uint64) []uint64 {
	if f.c.stuck >= 0 {
		return fails
	}
	d.markStuck(f.c, f.wrong)
	d.idx.Flipped++
	if collect {
		fails = append(fails, f.c.bit)
	}
	return fails
}

// sampleBandCached samples one band cell of a cached entry, drawing the
// exact Bernoulli sequence sampleReadBitOn would draw but against memoized
// probabilities and stored bit (computed on the cell's first replay; see
// bandProb). VRT cells fall through to the full sampler — their
// probabilities depend on simulated time. In sharded replay, banks memoize
// disjoint index ranges of e.probs, so concurrent fills never alias.
func (d *Device) sampleBandCached(e *roundEntry, i int, c *weakCell, now float64, src *rng.Source) (got, written uint8, flipped bool) {
	if c.vrt != nil {
		row := d.geom.rowOfBit(c.bit)
		a := d.geom.AddrOf(c.bit)
		written = uint8(d.bulkData.Word(row, a.Word) >> uint(a.Bit) & 1)
		got, flipped = d.sampleReadBitOn(c, written, now, d.bulkTime, src)
		return got, written, flipped
	}
	bp := &e.probs[i]
	if !bp.ok {
		row := d.geom.rowOfBit(c.bit)
		a := d.geom.AddrOf(c.bit)
		bp.written = uint8(d.bulkData.Word(row, a.Word) >> uint(a.Bit) & 1)
		elapsed := now - d.bulkTime
		code := d.neighborhoodCodeOf(c)
		if d.autoRef > 0 && elapsed > d.autoRef {
			k := math.Floor(elapsed / d.autoRef)
			p := d.clippedFailProb(c, d.autoRef, bp.written, code, now)
			bp.p1 = -math.Expm1(k * math.Log1p(-p))
			bp.p2 = d.clippedFailProb(c, elapsed-k*d.autoRef, bp.written, code, now)
			bp.two = true
		} else {
			bp.p1 = d.clippedFailProb(c, elapsed, bp.written, code, now)
		}
		bp.ok = true
	}
	written = bp.written
	failed := false
	if bp.two {
		if src.Bernoulli(bp.p1) {
			failed = true
		} else {
			failed = src.Bernoulli(bp.p2)
		}
	} else {
		failed = src.Bernoulli(bp.p1)
	}
	if failed {
		c.stuck = int8(written ^ 1)
		return written ^ 1, written, true
	}
	return written, written, false
}
