package dram

import (
	"slices"
	"testing"

	"reaper/internal/rng"
)

func newInjectTestDevice(t *testing.T, seed uint64) *Device {
	t.Helper()
	d, err := NewDevice(Config{
		Geometry:  Geometry{Banks: 8, RowsPerBank: 64, WordsPerRow: 256},
		Vendor:    VendorB(),
		Seed:      seed,
		WeakScale: 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestInjectWeakCellAt(t *testing.T) {
	d := newInjectTestDevice(t, 11)
	src := rng.New(99)
	before := d.WeakCellCount()

	// Find a bit that is not already weak.
	bit := uint64(12345)
	for d.CellFailProb(bit, 8, 45, 0) > 0 {
		bit++
	}
	if !d.InjectWeakCellAt(src, bit, 0.5, 0) {
		t.Fatal("injection at fresh bit failed")
	}
	if d.WeakCellCount() != before+1 {
		t.Fatalf("weak count %d, want %d", d.WeakCellCount(), before+1)
	}
	// The injected cell is visible to the oracle and must fail its
	// worst-case pattern at a long interval (mu <= 0.5s, clip at mu+3.5σ).
	if p := d.CellFailProb(bit, 8, 45, 0); p != 1 {
		t.Fatalf("injected cell worst-case fail prob at 8s = %v, want 1", p)
	}
	if d.InjectWeakCellAt(src, bit, 0.5, 0) {
		t.Fatal("duplicate injection not rejected")
	}
	if d.InjectWeakCellAt(src, uint64(d.Geometry().TotalBits()), 0.5, 0) {
		t.Fatal("out-of-range injection not rejected")
	}
	// Sorted-order invariants survive insertion.
	cells := d.Cells(0)
	for i := 1; i < len(cells); i++ {
		if cells[i-1].Bit >= cells[i].Bit {
			t.Fatalf("weak population unsorted at %d", i)
		}
	}
}

func TestInjectWeakCellsDeterministicAndPrivate(t *testing.T) {
	// Same device seed, same injection stream => identical bits.
	d1 := newInjectTestDevice(t, 7)
	d2 := newInjectTestDevice(t, 7)
	bits1 := d1.InjectWeakCells(rng.New(5), 8, 0.4, 0)
	bits2 := d2.InjectWeakCells(rng.New(5), 8, 0.4, 0)
	if !slices.Equal(bits1, bits2) {
		t.Fatalf("injection not deterministic: %v vs %v", bits1, bits2)
	}
	if !slices.IsSorted(bits1) || len(bits1) != 8 {
		t.Fatalf("bad injection result %v", bits1)
	}

	// Injection must not consume the device's own stream: a pristine
	// same-seed device and the injected one read the common population
	// identically. maxMu=0.4s makes injected cells deterministic (p is 0 or
	// 1) at a 4s read, so they consume no draws either.
	d3 := newInjectTestDevice(t, 7)
	now := 4.0
	failsInjected := d1.ReadCompareAll(now)
	failsPristine := d3.ReadCompareAll(now)
	for _, b := range failsPristine {
		if !slices.Contains(failsInjected, b) {
			t.Fatalf("pristine failure %d missing after injection (device stream disturbed)", b)
		}
	}
	for _, b := range failsInjected {
		if !slices.Contains(failsPristine, b) && !slices.Contains(bits1, b) {
			t.Fatalf("unexpected new failure %d not among injected bits", b)
		}
	}
}

func TestForceVRTLowBurst(t *testing.T) {
	d := newInjectTestDevice(t, 3)
	src := rng.New(17)
	lowBefore, total := d.VRTCellsInLow(0, 0)
	if total == 0 {
		t.Skip("no VRT cells sampled at this seed/scale")
	}
	forced := d.ForceVRTLowBurst(src, 5, 0, 0)
	lowAfter, _ := d.VRTCellsInLow(0, 0)
	if len(forced) == 0 {
		t.Fatal("no cells forced despite candidates")
	}
	if lowAfter != lowBefore+len(forced) {
		t.Fatalf("in-low count %d, want %d + %d", lowAfter, lowBefore, len(forced))
	}
	if !slices.IsSorted(forced) {
		t.Fatalf("forced bits unsorted: %v", forced)
	}
}

func TestRescrambleDPD(t *testing.T) {
	d1 := newInjectTestDevice(t, 21)
	d2 := newInjectTestDevice(t, 21)
	bits1 := d1.RescrambleDPD(rng.New(1), 10)
	bits2 := d2.RescrambleDPD(rng.New(1), 10)
	if !slices.Equal(bits1, bits2) {
		t.Fatalf("rescramble not deterministic: %v vs %v", bits1, bits2)
	}
	if len(bits1) == 0 {
		t.Fatal("no DPD-sensitive cells rescrambled")
	}
	// The rescrambled cells are all members of the weak population.
	for _, b := range bits1 {
		if !isWeakBit(d1, b) {
			t.Fatalf("rescrambled bit %d is not a weak cell", b)
		}
	}
}

func isWeakBit(dev *Device, bit uint64) bool {
	for _, c := range dev.weak {
		if c.bit == bit {
			return true
		}
	}
	return false
}
