package dram

import (
	"hash/fnv"
	"testing"

	"reaper/internal/patterns"
)

// Seed-stability pins: these digests freeze the exact RNG draw order and
// failure sampling of the device model for fixed seeds. Any change that
// reorders RNG draws — a reordered loop, a new draw on a hot path, a changed
// sampling shortcut — breaks them. The parallel execution layer and the
// read-path optimizations are required to keep results byte-identical to
// the sequential seed implementation, and these tests are the tripwire.
//
// If a pin breaks because the model itself was *intentionally* changed,
// re-pin by running the test and copying the reported digests.

// failureDigest hashes an ordered failure list.
func failureDigest(h interface{ Write([]byte) (int, error) }, fails []uint64) {
	var buf [8]byte
	for _, b := range fails {
		for i := 0; i < 8; i++ {
			buf[i] = byte(b >> (8 * i))
		}
		h.Write(buf[:])
	}
}

// profileDigest runs a fixed write/wait/read profiling sequence on a device
// and digests every pass's failure list in order.
func profileDigest(t *testing.T, seed uint64, autoRef float64) (uint64, int) {
	t.Helper()
	d := testDevice(t, seed, func(c *Config) {
		c.Geometry = Geometry{Banks: 4, RowsPerBank: 64, WordsPerRow: 128}
		c.WeakScale = 40
	})
	if autoRef > 0 {
		d.SetAutoRefresh(autoRef)
	}
	h := fnv.New64a()
	total := 0
	ps := []RowData{
		patterns.Solid1(),
		patterns.Solid0(),
		patterns.Checkerboard(),
		patterns.RowStripe(),
		patterns.Random(seed ^ 0xBEEF),
	}
	now := 0.0
	for it := 0; it < 3; it++ {
		for _, p := range ps {
			d.WriteAll(p, now)
			now += 2.048
			fails := d.ReadCompareAll(now)
			total += len(fails)
			failureDigest(h, fails)
			now += 0.5
		}
	}
	// Exercise the single-row paths too (they share the sampling code).
	for row := 0; row < 8; row++ {
		words, err := d.ReadRow(0, row, now)
		if err != nil {
			t.Fatal(err)
		}
		failureDigest(h, words[:4])
	}
	return h.Sum64(), total
}

func TestSeedStabilityProfileDigest(t *testing.T) {
	cases := []struct {
		name       string
		seed       uint64
		autoRef    float64
		wantDigest uint64
		wantFails  int
	}{
		{name: "seed7-noref", seed: 7, autoRef: 0, wantDigest: 0x1e47154ee8ecf60d, wantFails: 505},
		{name: "seed23-noref", seed: 23, autoRef: 0, wantDigest: 0x77b7ce6ff9696bdf, wantFails: 464},
		{name: "seed7-autoref", seed: 7, autoRef: 0.064, wantDigest: 0x599a18bc4aca3b9a, wantFails: 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			digest, fails := profileDigest(t, tc.seed, tc.autoRef)
			if tc.wantDigest == 0 {
				t.Logf("pin: {name: %q, seed: %d, autoRef: %v, wantDigest: 0x%x, wantFails: %d}",
					tc.name, tc.seed, tc.autoRef, digest, fails)
				t.Fatal("unpinned seed-stability case; copy the digest above into the table")
			}
			if digest != tc.wantDigest || fails != tc.wantFails {
				t.Errorf("digest = 0x%x (%d failures), want 0x%x (%d): RNG draw order or sampling changed",
					digest, fails, tc.wantDigest, tc.wantFails)
			}
		})
	}
}

// TestSeedStabilityPopulation pins the sampled weak-cell population itself:
// cell count and the digest of the sorted bit positions.
func TestSeedStabilityPopulation(t *testing.T) {
	d := testDevice(t, 99, func(c *Config) {
		c.Geometry = Geometry{Banks: 4, RowsPerBank: 64, WordsPerRow: 128}
		c.WeakScale = 40
	})
	h := fnv.New64a()
	cells := d.Cells(0)
	for _, c := range cells {
		var buf [8]byte
		for i := 0; i < 8; i++ {
			buf[i] = byte(c.Bit >> (8 * i))
		}
		h.Write(buf[:])
	}
	const wantCount = 3954
	const wantDigest = uint64(0xa54218cf2631f03c)
	if wantDigest == 0 {
		t.Logf("pin: count=%d digest=0x%x", len(cells), h.Sum64())
		t.Fatal("unpinned population case; copy the values above")
	}
	if len(cells) != wantCount || h.Sum64() != wantDigest {
		t.Errorf("population = %d cells digest 0x%x, want %d cells digest 0x%x",
			len(cells), h.Sum64(), wantCount, wantDigest)
	}
}
